// Benchmarks that regenerate every table and figure of the paper, one
// testing.B benchmark per artifact, plus component micro-benchmarks.
//
// The artifact benchmarks run the corresponding experiment at the
// quick scale with a reduced sweep so `go test -bench=.` completes in
// minutes; they report simulated-seconds and headline ratios as custom
// metrics. For publication-quality sweeps use:
//
//	go run ./cmd/rampage-bench -exp all -scale default
package rampage_test

import (
	"context"
	"testing"

	"rampage"
	"rampage/internal/checkpoint"
	"rampage/internal/harness"
	"rampage/internal/mem"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// benchRates and benchSizes keep artifact benchmarks fast while
// preserving the sweep endpoints the paper's claims hinge on.
var (
	benchRates = []uint64{200, 4000}
	benchSizes = []uint64{128, 1024, 4096}
)

func benchConfig() rampage.Config { return rampage.QuickScaled() }

// runExperiment drives one registry experiment per iteration. One
// untimed warm-up run precedes the measurement: it populates the
// harness's cross-sweep workload cache (and the page-table arena), so
// timed iterations measure steady-state simulation rather than a mix
// of one cold cell and N-1 warm ones — the cold/warm split is what
// made the ablation benches swing by 2x between runs.
func runExperiment(b *testing.B, id string, rates, sizes []uint64) {
	b.Helper()
	exp, ok := rampage.FindExperiment(id)
	if !ok {
		b.Fatalf("experiment %q missing", id)
	}
	cfg := benchConfig()
	if _, err := exp.Run(context.Background(), cfg, rates, sizes); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(context.Background(), cfg, rates, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact ---

// BenchmarkTable1Efficiency regenerates Table 1 (Direct Rambus vs disk
// bandwidth efficiency). Analytic, so it also reports the headline
// §3.5 costs as metrics.
func BenchmarkTable1Efficiency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := rampage.Table1()
		last := table[len(table)-1]
		b.ReportMetric(float64(last.RambusCost1GHz), "rambus-4KB-insns")
		b.ReportMetric(float64(last.DiskCost1GHz)/1e6, "disk-4KB-Minsns")
	}
}

// BenchmarkTable2Workload generates the full interleaved Table 2
// workload at the benchmark scale and reports generator throughput.
func BenchmarkTable2Workload(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var refs uint64
	for i := 0; i < b.N; i++ {
		readers, err := cfg.Readers()
		if err != nil {
			b.Fatal(err)
		}
		il, err := trace.NewInterleaver(readers, cfg.Quantum)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := il.Next(); err != nil {
				break
			}
			refs++
		}
	}
	b.ReportMetric(float64(refs)/float64(b.N)/1e6, "Mrefs/run")
}

// BenchmarkTable3BaselineVsRAMpage regenerates the Table 3 comparison
// (direct-mapped L2 vs RAMpage) over the reduced sweep and reports the
// best-vs-best RAMpage speedup at each endpoint rate.
func BenchmarkTable3BaselineVsRAMpage(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := rampage.Sweep(context.Background(), cfg, rampage.SystemBaselineDM, benchRates, benchSizes, false)
		if err != nil {
			b.Fatal(err)
		}
		rp, err := rampage.Sweep(context.Background(), cfg, rampage.SystemRAMpage, benchRates, benchSizes, false)
		if err != nil {
			b.Fatal(err)
		}
		_, b200 := harness.Best(base[0])
		_, r200 := harness.Best(rp[0])
		_, b4000 := harness.Best(base[len(benchRates)-1])
		_, r4000 := harness.Best(rp[len(benchRates)-1])
		b.ReportMetric(float64(b200.Cycles)/float64(r200.Cycles), "speedup@200MHz")
		b.ReportMetric(float64(b4000.Cycles)/float64(r4000.Cycles), "speedup@4GHz")
	}
}

// BenchmarkTable4SwitchOnMiss regenerates Table 4 (RAMpage with
// context switches on misses) and reports the best-time speedup over
// plain RAMpage at 4GHz — the paper's headline "up to 16%".
func BenchmarkTable4SwitchOnMiss(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := rampage.Sweep(context.Background(), cfg, rampage.SystemRAMpageCS, benchRates, benchSizes, true)
		if err != nil {
			b.Fatal(err)
		}
		plain, err := rampage.Sweep(context.Background(), cfg, rampage.SystemRAMpage, benchRates, benchSizes, false)
		if err != nil {
			b.Fatal(err)
		}
		_, bc := harness.Best(cs[len(benchRates)-1])
		_, bp := harness.Best(plain[len(benchRates)-1])
		b.ReportMetric(float64(bp.Cycles)/float64(bc.Cycles), "cs-speedup@4GHz")
	}
}

// BenchmarkTable5TwoWayL2 regenerates Table 5 (2-way associative L2
// with context-switch traces).
func BenchmarkTable5TwoWayL2(b *testing.B) {
	runExperiment(b, "table5", benchRates, benchSizes)
}

// BenchmarkFig2LevelBreakdown200MHz regenerates Figure 2 (fraction of
// time per level at 200MHz).
func BenchmarkFig2LevelBreakdown200MHz(b *testing.B) {
	runExperiment(b, "fig2", nil, benchSizes)
}

// BenchmarkFig3LevelBreakdown4GHz regenerates Figure 3 (fraction of
// time per level at 4GHz).
func BenchmarkFig3LevelBreakdown4GHz(b *testing.B) {
	runExperiment(b, "fig3", nil, benchSizes)
}

// BenchmarkFig4Overheads regenerates Figure 4 (TLB miss + page fault
// handling overhead ratios) and reports the RAMpage overhead at the
// extreme page sizes.
func BenchmarkFig4Overheads(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp, err := rampage.Sweep(context.Background(), cfg, rampage.SystemRAMpage, []uint64{1000}, benchSizes, false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rp[0][0].OverheadRatio(), "overhead@128B")
		b.ReportMetric(rp[0][len(benchSizes)-1].OverheadRatio(), "overhead@4KB")
	}
}

// BenchmarkFig5RelativeSpeed regenerates Figure 5 (RAMpage-CS vs 2-way
// L2 relative speed across CPU speeds).
func BenchmarkFig5RelativeSpeed(b *testing.B) {
	runExperiment(b, "fig5", benchRates, benchSizes)
}

// --- Ablation benches (DESIGN.md X1-X3 and the aggressive-L1 probe) ---

func BenchmarkAblationBigTLB(b *testing.B) {
	runExperiment(b, "bigtlb", benchRates, benchSizes)
}

func BenchmarkAblationPipelinedRambus(b *testing.B) {
	runExperiment(b, "pipelined", benchRates, benchSizes)
}

func BenchmarkAblationVictimCache(b *testing.B) {
	runExperiment(b, "victim", benchRates, benchSizes)
}

func BenchmarkAblationAggressiveL1(b *testing.B) {
	runExperiment(b, "biglone", benchRates, benchSizes)
}

func BenchmarkExtensionSDRAM(b *testing.B) {
	runExperiment(b, "sdram", benchRates, benchSizes)
}

func BenchmarkExtensionThreads(b *testing.B) {
	runExperiment(b, "threads", benchRates, benchSizes)
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	runExperiment(b, "adaptive", []uint64{4000}, benchSizes)
}

func BenchmarkExtensionChannels(b *testing.B) {
	runExperiment(b, "channels", benchRates, benchSizes)
}

func BenchmarkExtensionBankedRDRAM(b *testing.B) {
	runExperiment(b, "banked", benchRates, benchSizes)
}

// BenchmarkExtensionPrefetch reports the prefetch speedup and accuracy
// at 4GHz with 1KB pages.
func BenchmarkExtensionPrefetch(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{System: rampage.SystemRAMpage, IssueMHz: 4000, SizeBytes: 1024})
		if err != nil {
			b.Fatal(err)
		}
		pf, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{System: rampage.SystemRAMpage, IssueMHz: 4000, SizeBytes: 1024, PrefetchNext: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(plain.Cycles)/float64(pf.Cycles), "prefetch-speedup")
		if pf.Prefetches > 0 {
			b.ReportMetric(float64(pf.PrefetchHits)/float64(pf.Prefetches), "prefetch-accuracy")
		}
	}
}

// --- Warm-state checkpoint benchmarks (make bench-checkpoint) ---

// checkpointBenchSweep is the sweep the cold/warm pair shares: the
// RAMpage artifact grid at the benchmark scale.
func checkpointBenchSweep(b *testing.B, cfg rampage.Config) {
	b.Helper()
	if _, err := rampage.Sweep(context.Background(), cfg, rampage.SystemRAMpage, benchRates, benchSizes, false); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepCheckpointCold times the sweep with a fresh checkpoint
// store every iteration: each cell simulates from scratch and captures
// its final state, so the delta over the storeless sweep benchmarks is
// the capture-and-store overhead.
func BenchmarkSweepCheckpointCold(b *testing.B) {
	cfg := benchConfig()
	cfg.Checkpoints = checkpoint.NewStore(0, "", nil)
	checkpointBenchSweep(b, cfg) // warm the workload cache, as runExperiment does
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Checkpoints = checkpoint.NewStore(0, "", nil)
		checkpointBenchSweep(b, cfg)
	}
}

// BenchmarkSweepCheckpointWarm times the same sweep against a store
// populated by one untimed cold pass: every cell restores a final
// checkpoint and skips simulation entirely. The committed
// BENCH_checkpoint.json snapshot pins this at well over 3x faster than
// BenchmarkSweepCheckpointCold.
func BenchmarkSweepCheckpointWarm(b *testing.B) {
	cfg := benchConfig()
	cfg.Checkpoints = checkpoint.NewStore(0, "", nil)
	checkpointBenchSweep(b, cfg) // cold pass: populates the store
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checkpointBenchSweep(b, cfg)
	}
}

// BenchmarkRunCheckpointResume times an incremental extension: an
// untimed half-budget run stores its state, and each iteration reaches
// the full budget by restoring and simulating only the second half —
// the single-run analogue of the service's "extend" jobs.
func BenchmarkRunCheckpointResume(b *testing.B) {
	spec := rampage.RunSpec{System: rampage.SystemRAMpage, IssueMHz: 1000, SizeBytes: 1024}
	cfg := benchConfig()
	cfg.MaxRefs = 1_000_000
	half := cfg
	half.Checkpoints = checkpoint.NewStore(0, "", nil)
	half.MaxRefs = cfg.MaxRefs / 2
	if _, err := rampage.Run(context.Background(), half, spec); err != nil {
		b.Fatal(err)
	}
	halfCk, _, ok := half.Checkpoints.Nearest(harness.CheckpointPrefixKey(cfg, spec), cfg.MaxRefs)
	if !ok {
		b.Fatal("half-budget run stored no checkpoint")
	}
	warm := cfg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh store holding only the half checkpoint: every iteration
		// resumes (the full-budget capture of the previous iteration would
		// otherwise turn the rest into complete restores).
		warm.Checkpoints = checkpoint.NewStore(0, "", nil)
		warm.Checkpoints.Put(halfCk)
		if _, err := rampage.Run(context.Background(), warm, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benchmarks ---

// BenchmarkSimRAMpageThroughput measures simulator throughput in
// references per second on the RAMpage machine.
func BenchmarkSimRAMpageThroughput(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var refs uint64
	for i := 0; i < b.N; i++ {
		rep, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
			System: rampage.SystemRAMpage, IssueMHz: 1000, SizeBytes: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		refs += rep.BenchRefs + rep.OSRefs()
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkSimBaselineThroughput measures simulator throughput on the
// conventional machine.
func BenchmarkSimBaselineThroughput(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var refs uint64
	for i := 0; i < b.N; i++ {
		rep, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
			System: rampage.SystemBaselineDM, IssueMHz: 1000, SizeBytes: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		refs += rep.BenchRefs + rep.OSRefs()
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkGeneratorThroughput measures synthetic trace generation,
// restarting the (finite) stream whenever it runs dry.
func BenchmarkGeneratorThroughput(b *testing.B) {
	p, _ := rampage.FindProfile("swm256")
	mk := func() *synth.Generator {
		g, err := synth.NewGenerator(p, synth.Options{Seed: 1, RefScale: 1, SizeScale: 1.0 / 8})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	g := mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Next(); err != nil {
			g = mk()
			i--
		}
	}
}

// BenchmarkTraceFileWrite measures the binary trace encoder.
func BenchmarkTraceFileWrite(b *testing.B) {
	w, err := trace.NewFileWriter(discard{})
	if err != nil {
		b.Fatal(err)
	}
	ref := mem.Ref{Kind: mem.IFetch, Addr: 0x400000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref.Addr += 4
		if err := w.Write(ref); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
