module rampage

go 1.22
