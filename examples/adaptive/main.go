// Adaptive: the §6.2 future-work idea the paper argues only a
// software-managed hierarchy can offer — retuning the SRAM page size
// while the program runs — plus the §3.2 sequential prefetcher.
//
// A fixed hardware cache must commit to a line size at design time
// (the paper's PowerPC 750 example ties line size to cache size). The
// RAMpage machine below starts at the worst page size for the
// workload and climbs to a good one on its own, paying for every
// experiment with a real SRAM flush.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"rampage"
)

func main() {
	cfg := rampage.QuickScaled()
	const mhz = 4000

	fmt.Println("RAMpage at 4GHz on the Table 2 workload, starting from 128B pages:")
	fmt.Println()

	fixedWorst, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System: rampage.SystemRAMpage, IssueMHz: mhz, SizeBytes: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixedBest, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System: rampage.SystemRAMpage, IssueMHz: mhz, SizeBytes: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System: rampage.SystemRAMpage, IssueMHz: mhz, SizeBytes: 128,
		AdaptivePages: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fixed 128B pages:   %.4fs (the worst fixed choice)\n", fixedWorst.Seconds())
	fmt.Printf("  fixed 2KB pages:    %.4fs (a good fixed choice)\n", fixedBest.Seconds())
	fmt.Printf("  adaptive from 128B: %.4fs (%d page-size switches)\n",
		adaptive.Seconds(), adaptive.Resizes)

	fmt.Println()
	fmt.Println("And with the sequential next-page prefetcher on top:")
	prefetch, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System: rampage.SystemRAMpage, IssueMHz: mhz, SizeBytes: 2048,
		PrefetchNext: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  2KB pages + prefetch: %.4fs (%d prefetches, %d hits, %d wasted)\n",
		prefetch.Seconds(), prefetch.Prefetches, prefetch.PrefetchHits, prefetch.PrefetchWasted)
	fmt.Printf("  speedup over demand paging: %.2fx\n",
		float64(fixedBest.Cycles)/float64(prefetch.Cycles))
}
