// Contextswitch: demonstrates the paper's §4.6 idea of taking a
// context switch on a miss. A page fault to DRAM costs thousands of
// instructions at a fast issue rate — enough room to run another
// process while the Rambus transfer is in flight. The example builds
// the machines directly through the public machine API (rather than
// the experiment harness) and compares stalling against switching.
//
//	go run ./examples/contextswitch
package main

import (
	"context"
	"fmt"
	"log"

	"rampage"
)

func main() {
	const (
		issueMHz  = 4000
		pageBytes = 2048
		sramBytes = 256<<10 + 4<<10
	)

	for _, switchOnMiss := range []bool{false, true} {
		rep, err := run(issueMHz, pageBytes, sramBytes, switchOnMiss)
		if err != nil {
			log.Fatal(err)
		}
		mode := "stall on fault"
		if switchOnMiss {
			mode = "switch on fault"
		}
		fmt.Printf("%-16s %.4fs  (faults %d, switches-on-miss %d, idle %d cycles)\n",
			mode, rep.Seconds(), rep.PageFaults, rep.SwitchesOnMiss, rep.IdleCycles)
	}

	fmt.Println()
	fmt.Println("With several ready processes, the DRAM page transfer overlaps other")
	fmt.Println("work; the machine idles only when every process is waiting. The win")
	fmt.Println("grows with the issue rate, because the fixed ~3.3us page transfer")
	fmt.Println("spans more and more issue slots (§5.4 of the paper).")
}

func run(issueMHz, pageBytes, sramBytes uint64, switchOnMiss bool) (*rampage.Report, error) {
	machine, err := rampage.NewRAMpage(rampage.RAMpageConfig{
		Params:       rampage.DefaultParams(issueMHz),
		SRAMBytes:    sramBytes,
		PageBytes:    pageBytes,
		SwitchOnMiss: switchOnMiss,
	})
	if err != nil {
		return nil, err
	}

	// A multiprogrammed workload with enough capacity pressure to
	// fault regularly: six of the Table 2 programs at reduced scale.
	var readers []rampage.TraceReader
	for _, name := range []string{"compress", "swm256", "nasa7", "tex", "wave5", "su2cor"} {
		p, ok := rampage.FindProfile(name)
		if !ok {
			return nil, fmt.Errorf("profile %q missing", name)
		}
		g, err := rampage.NewGenerator(p, rampage.GenOptions{
			Seed: 7, RefScale: 1.0 / 500, SizeScale: 1.0 / 16,
		})
		if err != nil {
			return nil, err
		}
		readers = append(readers, g)
	}

	sched, err := rampage.NewScheduler(machine, readers, rampage.SchedulerConfig{
		Quantum:           30_000,
		InsertSwitchTrace: true,
		Seed:              7,
	})
	if err != nil {
		return nil, err
	}
	return sched.Run(context.Background())
}
