// Quickstart: simulate the RAMpage hierarchy and the conventional
// direct-mapped baseline on the paper's 18-program workload at one
// point of the design space, and print both reports side by side.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rampage"
)

func main() {
	// QuickScaled keeps the run under a second; DefaultScaled is the
	// fidelity configuration, FullScale the paper's exact parameters.
	cfg := rampage.QuickScaled()

	const (
		issueMHz = 1000 // 1 GHz issue rate
		size     = 1024 // 1 KB L2 blocks / SRAM pages
	)

	baseline, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System:    rampage.SystemBaselineDM,
		IssueMHz:  issueMHz,
		SizeBytes: size,
	})
	if err != nil {
		log.Fatal(err)
	}
	rp, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System:    rampage.SystemRAMpage,
		IssueMHz:  issueMHz,
		SizeBytes: size,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— conventional direct-mapped L2 —")
	fmt.Print(baseline.String())
	fmt.Println("\n— RAMpage SRAM main memory —")
	fmt.Print(rp.String())

	speedup := float64(baseline.Cycles) / float64(rp.Cycles)
	fmt.Printf("\nRAMpage is %.2fx the baseline's speed at this point.\n", speedup)
	fmt.Printf("RAMpage misses to DRAM: %d page faults vs the baseline's %d block misses.\n",
		rp.PageFaults, baseline.L2Misses)
}
