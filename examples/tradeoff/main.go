// Tradeoff: the paper's central question — hardware complexity (a
// 2-way associative L2 with on-chip tags) versus software complexity
// (RAMpage's paged SRAM main memory) — swept across the CPU–DRAM speed
// gap. For each issue rate the example prints each system's best
// configuration over the block/page-size sweep, showing how the
// software approach becomes more attractive as CPUs outrun DRAM.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"rampage"
)

func main() {
	cfg := rampage.QuickScaled()
	rates := []uint64{200, 1000, 4000}
	sizes := rampage.BlockSizes

	systems := []struct {
		name string
		kind rampage.SystemKind
	}{
		{"direct-mapped L2 (like-for-like hardware)", rampage.SystemBaselineDM},
		{"2-way associative L2 (more hardware)", rampage.SystemTwoWayL2},
		{"RAMpage (more software)", rampage.SystemRAMpage},
		{"RAMpage + switch on miss (even more software)", rampage.SystemRAMpageCS},
	}

	fmt.Println("Best simulated time (s) over the 128B–4KB size sweep:")
	fmt.Printf("%-48s", "system")
	for _, mhz := range rates {
		fmt.Printf(" %10dMHz", mhz)
	}
	fmt.Println()

	best := make(map[uint64]float64)
	results := make([][]string, 0, len(systems))
	for _, sys := range systems {
		row := []string{sys.name}
		grid, err := rampage.Sweep(context.Background(), cfg, sys.kind, rates, sizes, sys.kind == rampage.SystemRAMpageCS || sys.kind == rampage.SystemTwoWayL2)
		if err != nil {
			log.Fatal(err)
		}
		for i, mhz := range rates {
			b := grid[i][0]
			for _, r := range grid[i] {
				if r.Cycles < b.Cycles {
					b = r
				}
			}
			row = append(row, fmt.Sprintf("%13.4f", b.Seconds()))
			if cur, ok := best[mhz]; !ok || b.Seconds() < cur {
				best[mhz] = b.Seconds()
			}
		}
		results = append(results, row)
	}
	for _, row := range results {
		fmt.Printf("%-48s", row[0])
		for _, cell := range row[1:] {
			fmt.Print(cell)
		}
		fmt.Println()
	}

	fmt.Println("\nThe trade: RAMpage needs no on-chip L2 tags or associativity logic;")
	fmt.Println("it pays with handler execution on misses. As the issue rate grows")
	fmt.Println("(DRAM timing fixed), the miss reduction from full associativity and")
	fmt.Println("global replacement buys more than the handlers cost.")
}
