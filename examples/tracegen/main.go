// Tracegen: the trace-generation pipeline as a library. Generates a
// synthetic benchmark stream, writes it to a binary trace file, reads
// it back, and verifies the round trip — the workflow behind
// rampage-trace, shown through the public API.
//
//	go run ./examples/tracegen
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"rampage"
	"rampage/internal/trace"
)

func main() {
	p, ok := rampage.FindProfile("compress")
	if !ok {
		log.Fatal("compress profile missing")
	}
	fmt.Printf("profile %s: %s (%.1fM ifetches / %.1fM refs at full scale)\n",
		p.Name, p.Description, p.IFetchMillions, p.TotalMillions)

	gen, err := rampage.NewGenerator(p, rampage.GenOptions{
		Seed:     1,
		RefScale: 0.001, // ~10.5k references
	})
	if err != nil {
		log.Fatal(err)
	}

	path := filepath.Join(os.TempDir(), "compress.rmpt")
	n, err := writeTrace(path, gen)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %d references to %s (%d bytes, %.2f bytes/ref)\n",
		n, path, info.Size(), float64(info.Size())/float64(n))

	stats, err := readStats(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s", stats)
	if stats.Total != n {
		log.Fatalf("round trip lost references: wrote %d, read %d", n, stats.Total)
	}
	fmt.Println("round trip OK")
	os.Remove(path)
}

func writeTrace(path string, r rampage.TraceReader) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w, err := trace.NewFileWriter(f)
	if err != nil {
		return 0, err
	}
	n, err := trace.Copy(w, r)
	if err != nil {
		return 0, err
	}
	return n, w.Flush()
}

func readStats(path string) (*trace.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		return nil, err
	}
	s := trace.NewStats()
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, err
		}
		s.Observe(ref)
	}
}
