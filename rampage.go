// Package rampage is a trace-driven simulator of the RAMpage memory
// hierarchy (Machanick, Salverda & Pompe, "Hardware-Software Trade-Offs
// in a Direct Rambus Implementation of the RAMpage Memory Hierarchy",
// ASPLOS VIII, 1998) together with the conventional-cache baselines the
// paper compares against.
//
// RAMpage replaces the lowest-level cache with a software-managed SRAM
// main memory: allocation and replacement happen per page under
// operating-system control, a pinned inverted page table makes TLB
// misses serviceable without touching DRAM, and DRAM itself is demoted
// to a paging device behind a Direct Rambus channel. Full associativity
// falls out of paging, trading hardware complexity (cache tags and
// associativity logic) for software complexity (page-fault handling) —
// a trade that improves as the CPU–DRAM speed gap grows.
//
// # Quick start
//
// Simulate RAMpage on the paper's 18-program workload at one issue
// rate and page size:
//
//	cfg := rampage.DefaultScaled()
//	rep, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
//		System:    rampage.SystemRAMpage,
//		IssueMHz:  1000,
//		SizeBytes: 1024,
//	})
//	if err != nil { ... }
//	fmt.Printf("%.4f simulated seconds\n", rep.Seconds())
//
// Reproduce a paper artifact:
//
//	exp, _ := rampage.FindExperiment("table3")
//	text, err := exp.Run(context.Background(), rampage.DefaultScaled(), nil, nil)
//
// The facade re-exports the pieces most users need; the underlying
// packages live in internal/ (core, sim, cache, tlb, dram, pagetable,
// synth, trace, harness) and are documented individually.
package rampage

import (
	"context"

	"rampage/internal/dram"
	"rampage/internal/harness"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// Config is an experimental setup: workload scaling plus memory
// capacities. Use FullScale for the paper's exact parameters or
// DefaultScaled/QuickScaled for interactive work.
type Config = harness.Config

// FullScale returns the paper's configuration: 4 MB L2, 1.1 billion
// references, 500k-reference scheduling quantum.
func FullScale() Config { return harness.FullScale() }

// DefaultScaled returns the scaled default configuration (memories and
// footprints at 1/8, traces at 1/48) preserving capacity ratios.
func DefaultScaled() Config { return harness.DefaultScaled() }

// QuickScaled returns a small configuration for smoke tests and
// benchmarks (~1.1 M references).
func QuickScaled() Config { return harness.QuickScaled() }

// SystemKind selects which machine a RunSpec simulates.
type SystemKind = harness.SystemKind

// The four systems of the paper's evaluation (§4.4–4.7).
const (
	SystemBaselineDM = harness.BaselineDM
	SystemTwoWayL2   = harness.TwoWayL2
	SystemRAMpage    = harness.RAMpage
	SystemRAMpageCS  = harness.RAMpageCS
)

// RunSpec is one simulation point: a system, an issue rate and a
// block/page size, plus optional ablation knobs.
type RunSpec = harness.RunSpec

// Report is a completed run's measurements: simulated seconds,
// per-level time attribution, and event counts.
type Report = stats.Report

// Run executes one simulation point against the Table 2 workload,
// stopping early with ctx.Err() when the context is canceled.
func Run(ctx context.Context, cfg Config, spec RunSpec) (*Report, error) {
	return harness.Run(ctx, cfg, spec)
}

// Sweep runs a grid of points (issue rates × sizes) for one system,
// in parallel across the available CPUs. Cancelling ctx abandons the
// remaining cells.
func Sweep(ctx context.Context, cfg Config, system SystemKind, rates, sizes []uint64, switchTrace bool) ([][]*Report, error) {
	return harness.Sweep(ctx, cfg, system, rates, sizes, switchTrace)
}

// Experiment reproduces one paper artifact (a table or figure).
type Experiment = harness.Experiment

// Experiments returns all reproducible artifacts in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// FindExperiment looks an artifact up by ID ("table3", "fig4", ...).
func FindExperiment(id string) (Experiment, bool) { return harness.FindExperiment(id) }

// IssueRatesMHz is the paper's issue-rate sweep (200 MHz – 4 GHz).
var IssueRatesMHz = harness.IssueRatesMHz

// BlockSizes is the paper's block/page-size sweep (128 B – 4 KB).
var BlockSizes = harness.BlockSizes

// Profile describes one synthetic Table 2 benchmark.
type Profile = synth.Profile

// GenOptions configures trace generation from a Profile.
type GenOptions = synth.Options

// Table2 returns the 18 benchmark profiles of the paper's workload.
func Table2() []Profile { return synth.Table2() }

// FindProfile returns the Table 2 profile with the given name.
func FindProfile(name string) (Profile, bool) { return synth.FindProfile(name) }

// NewGenerator builds a deterministic reference stream for a profile.
func NewGenerator(p Profile, opts GenOptions) (TraceReader, error) {
	return synth.NewGenerator(p, opts)
}

// TraceReader is a stream of memory references; TraceWriter consumes
// one (typically into a trace file).
type (
	TraceReader = trace.Reader
	TraceWriter = trace.Writer
)

// Machine is a simulated system driven by the Scheduler. Advanced
// users can construct machines directly via the sim configs below.
type Machine = sim.Machine

// Machine and scheduler configuration for direct (non-harness) use.
type (
	Params          = sim.Params
	BaselineConfig  = sim.BaselineConfig
	RAMpageConfig   = sim.RAMpageConfig
	SchedulerConfig = sim.SchedulerConfig
)

// DefaultParams returns the §4.3 common machine parameters at the
// given issue rate.
func DefaultParams(issueMHz uint64) Params { return sim.DefaultParams(issueMHz) }

// NewBaseline builds a conventional-cache machine (direct-mapped or
// N-way L2).
func NewBaseline(cfg BaselineConfig) (Machine, error) { return sim.NewBaseline(cfg) }

// NewRAMpage builds a RAMpage machine.
func NewRAMpage(cfg RAMpageConfig) (Machine, error) { return sim.NewRAMpage(cfg) }

// AdaptiveConfig configures the §6.2 dynamic page-size controller.
type AdaptiveConfig = sim.AdaptiveConfig

// NewAdaptiveRAMpage builds a RAMpage machine that retunes its SRAM
// page size on the fly (§6.2 — a flexibility a hardware cache cannot
// offer).
func NewAdaptiveRAMpage(cfg AdaptiveConfig) (Machine, error) {
	return sim.NewAdaptiveRAMpage(cfg)
}

// NewScheduler builds the multiprogramming driver over one reader per
// process.
func NewScheduler(m Machine, readers []TraceReader, cfg SchedulerConfig) (*sim.Scheduler, error) {
	return sim.NewScheduler(m, readers, cfg)
}

// Device is a timed memory/storage device (Direct Rambus, SDRAM,
// disk); Table1 computes the paper's bandwidth-efficiency comparison.
type Device = dram.Device

// NewDirectRambus returns the paper's DRAM timing: 50 ns + 1.25 ns per
// 2 bytes.
func NewDirectRambus() dram.DirectRambus { return dram.NewDirectRambus() }

// Table1 computes the Table 1 efficiency rows; FormatTable1 renders
// them.
func Table1() []dram.Table1Row { return dram.Table1() }

// FormatTable1 renders Table 1 rows as text.
func FormatTable1(rows []dram.Table1Row) string { return dram.FormatTable1(rows) }
