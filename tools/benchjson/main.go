// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark measurement:
//
//	go test -bench=. -benchmem -run='^$' -count=3 | go run ./tools/benchjson > BENCH.json
//
// Repeated -count measurements appear as separate objects; downstream
// tooling can aggregate, or pass -min to fold them here: one object per
// benchmark name keeping the minimum ns/op (the least-noise sample —
// interference only ever slows a benchmark down). Custom b.ReportMetric
// values land in "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parse reads `go test -bench` output and returns one Result per
// benchmark line, in input order.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// minByName folds repeated -count measurements: for each benchmark
// name, keep the whole sample with the lowest ns/op. First-seen order
// of names is preserved.
func minByName(results []Result) []Result {
	best := make(map[string]int)
	var out []Result
	for _, r := range results {
		i, seen := best[r.Name]
		if !seen {
			best[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i] = r
		}
	}
	return out
}

func main() {
	min := flag.Bool("min", false, "keep only the minimum-ns/op sample per benchmark name")
	flag.Parse()
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *min {
		results = minByName(results)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
