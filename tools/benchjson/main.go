// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark measurement:
//
//	go test -bench=. -benchmem -run='^$' -count=3 | go run ./tools/benchjson > BENCH.json
//
// Repeated -count measurements appear as separate objects; downstream
// tooling can aggregate. Custom b.ReportMetric values land in
// "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
