package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// transcript is a canned `go test -bench -benchmem -count=2` output:
// banner lines, two counts per benchmark, a custom ReportMetric, and a
// trailing summary — everything the parser must skip or capture.
const transcript = `goos: linux
goarch: amd64
pkg: rampage/internal/harness
cpu: Some CPU @ 2.00GHz
BenchmarkTable3Cell/rampage-8         	       3	 412345678 ns/op	     120 B/op	       2 allocs/op
BenchmarkTable3Cell/rampage-8         	       3	 401234567 ns/op	     112 B/op	       2 allocs/op
BenchmarkThroughput-8                 	       5	 200000000 ns/op	        55.25 Mrefs/s
BenchmarkThroughput-8                 	       5	 210000000 ns/op	        52.50 Mrefs/s
not a benchmark line
BenchmarkNoPairs 1
PASS
ok  	rampage/internal/harness	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkTable3Cell/rampage-8" || r.Iterations != 3 {
		t.Errorf("result[0] = %q x%d", r.Name, r.Iterations)
	}
	if r.NsPerOp != 412345678 || r.BytesPerOp != 120 || r.AllocsPerOp != 2 {
		t.Errorf("result[0] measurements = %v/%v/%v", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if got := results[2].Metrics["Mrefs/s"]; got != 55.25 {
		t.Errorf("custom metric = %v, want 55.25", got)
	}
}

func TestMinByName(t *testing.T) {
	results, err := parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	folded := minByName(results)
	if len(folded) != 2 {
		t.Fatalf("folded to %d results, want 2: %+v", len(folded), folded)
	}
	// The min sample wins wholesale — its sibling fields come along.
	if folded[0].NsPerOp != 401234567 || folded[0].BytesPerOp != 112 {
		t.Errorf("folded[0] = %v ns/op, %v B/op; want the second (faster) sample", folded[0].NsPerOp, folded[0].BytesPerOp)
	}
	if folded[1].Name != "BenchmarkThroughput-8" || folded[1].NsPerOp != 200000000 {
		t.Errorf("folded[1] = %q %v ns/op", folded[1].Name, folded[1].NsPerOp)
	}
	if got := folded[1].Metrics["Mrefs/s"]; got != 55.25 {
		t.Errorf("folded[1] metric = %v, want the min sample's 55.25", got)
	}
}

// TestJSONShape pins the emitted field names — BENCH_batch.json
// consumers (tools/regress bench mode) key on them.
func TestJSONShape(t *testing.T) {
	results, err := parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(minByName(results))
	if err != nil {
		t.Fatal(err)
	}
	var docs []map[string]any
	if err := json.Unmarshal(raw, &docs); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "iterations", "ns_per_op"} {
		if _, ok := docs[0][key]; !ok {
			t.Errorf("missing key %q in %v", key, docs[0])
		}
	}
	// omitempty: the throughput benchmark has no B/op measurement.
	if _, ok := docs[1]["bytes_per_op"]; ok {
		t.Errorf("bytes_per_op should be omitted when unmeasured: %v", docs[1])
	}
	if _, ok := docs[1]["metrics"]; !ok {
		t.Errorf("custom metrics missing: %v", docs[1])
	}
}
