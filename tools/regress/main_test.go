package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportModeIdentical(t *testing.T) {
	doc := `{"version":1,"kind":"experiment","id":"table3","systems":[{"system":"rampage","rows":[[{"cycles":123}]]}]}`
	diffs, err := compareReportFiles(writeFile(t, "a.json", doc), writeFile(t, "b.json", doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("identical documents diff: %v", diffs)
	}
}

func TestReportModeFindsDivergence(t *testing.T) {
	golden := `{"version":1,"report":{"cycles":100,"page_faults":7},"extra":[1,2]}`
	got := `{"version":1,"report":{"cycles":101,"page_faults":7,"new_field":1},"extra":[1,2,3]}`
	diffs, err := compareReportFiles(writeFile(t, "a.json", golden), writeFile(t, "b.json", got))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"$.report.cycles", "golden 100, got 101", "$.report.new_field: not in golden", "$.extra: length 2, got 3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diffs missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "page_faults") {
		t.Errorf("equal field reported as diff:\n%s", joined)
	}
}

func TestReportModeVersionMismatch(t *testing.T) {
	golden := writeFile(t, "a.json", `{"version":1,"cycles":1}`)
	got := writeFile(t, "b.json", `{"version":2,"cycles":1}`)
	if _, err := compareReportFiles(golden, got); err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Errorf("want version-mismatch error, got %v", err)
	}
}

// writeDir populates a fresh temp directory with the given files.
func writeDir(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestReportDirMode(t *testing.T) {
	a := `{"version":1,"cycles":100}`
	b := `{"version":1,"cycles":200}`
	golden := writeDir(t, map[string]string{"table3.json": a, "fig2.json": b, "notes.txt": "ignored"})
	got := writeDir(t, map[string]string{"table3.json": a, "fig2.json": b})
	diffs, err := compareReportDirs(golden, got)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("identical trees diff: %v", diffs)
	}

	// A real divergence is reported with the file name prefixed.
	got2 := writeDir(t, map[string]string{"table3.json": a, "fig2.json": `{"version":1,"cycles":999}`})
	diffs, err = compareReportDirs(golden, got2)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "fig2.json: $.cycles") {
		t.Errorf("want one fig2.json diff, got %v", diffs)
	}
}

// TestReportDirModeMissingFileIsHardError pins the satellite guarantee:
// a document present on only one side of a directory comparison is a
// hard error (exit 2 path), never a silent skip — a deleted golden or
// a candidate that failed to produce a file must fail the gate.
func TestReportDirModeMissingFileIsHardError(t *testing.T) {
	doc := `{"version":1,"cycles":100}`
	golden := writeDir(t, map[string]string{"table3.json": doc, "fig2.json": doc})

	// Candidate never produced fig2.json.
	got := writeDir(t, map[string]string{"table3.json": doc})
	if _, err := compareReportDirs(golden, got); err == nil || !strings.Contains(err.Error(), "candidate never produced it") {
		t.Errorf("missing candidate file: want hard error, got %v", err)
	}

	// Candidate has a document with no golden (stale/deleted golden).
	got = writeDir(t, map[string]string{"table3.json": doc, "fig2.json": doc, "fig9.json": doc})
	if _, err := compareReportDirs(golden, got); err == nil || !strings.Contains(err.Error(), "no golden to compare against") {
		t.Errorf("extra candidate file: want hard error, got %v", err)
	}

	// Two trees with no JSON at all cannot be a meaningful gate.
	if _, err := compareReportDirs(t.TempDir(), t.TempDir()); err == nil || !strings.Contains(err.Error(), "no *.json documents") {
		t.Errorf("empty trees: want refusal, got %v", err)
	}

	// An unreadable directory is a hard error too.
	if _, err := compareReportDirs(golden, filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing candidate directory accepted")
	}
}

func TestBenchModeTolerance(t *testing.T) {
	golden := []benchResult{
		{Name: "BenchmarkA", NsPerOp: 110}, // repeated counts: min = 100
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	got := []benchResult{
		{Name: "BenchmarkA", NsPerOp: 104},  // +4%: within 5%
		{Name: "BenchmarkB", NsPerOp: 1100}, // +10%: regression
		{Name: "BenchmarkNew", NsPerOp: 1},  // extra: fine
	}
	diffs, err := compareBench(golden, got, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(diffs, "\n")
	if len(diffs) != 2 {
		t.Fatalf("want 2 diffs, got %d:\n%s", len(diffs), joined)
	}
	if !strings.Contains(joined, "BenchmarkB") || !strings.Contains(joined, "BenchmarkGone: missing") {
		t.Errorf("unexpected diffs:\n%s", joined)
	}
	// The min-of-count fold must compare 104 against 100, not 110.
	if strings.Contains(joined, "BenchmarkA") {
		t.Errorf("BenchmarkA within tolerance but reported:\n%s", joined)
	}
	// Subset mode: missing benchmarks are skipped, regressions still fail.
	if diffs, err := compareBench(golden, got, 0.05, true); err != nil || len(diffs) != 1 || !strings.Contains(diffs[0], "BenchmarkB") {
		t.Errorf("subset mode diffs = %v (err %v), want only the BenchmarkB regression", diffs, err)
	}
	// Improvements never fail.
	got[1].NsPerOp = 500
	if diffs, err := compareBench(golden[:3], got, 0.05, false); err != nil || len(diffs) != 0 {
		t.Errorf("improvement reported as regression: %v (err %v)", diffs, err)
	}
}

// TestBenchModeRefusesMixedTags pins the disjoint-snapshot guard: two
// files with no benchmark names in common are almost certainly from
// different benchmark tags, and comparing them would either fail on
// every entry or (under -subset) vacuously pass.
func TestBenchModeRefusesMixedTags(t *testing.T) {
	golden := []benchResult{
		{Name: "BenchmarkSweepCold", NsPerOp: 100},
		{Name: "BenchmarkSweepWarm", NsPerOp: 10},
	}
	got := []benchResult{
		{Name: "BenchmarkBatchedRAMpage", NsPerOp: 50},
	}
	for _, subset := range []bool{false, true} {
		if _, err := compareBench(golden, got, 0.05, subset); err == nil || !strings.Contains(err.Error(), "different tags?") {
			t.Errorf("subset=%v: want a different-tags refusal, got %v", subset, err)
		}
	}
	// A single shared name makes it a legitimate comparison again.
	got = append(got, benchResult{Name: "BenchmarkSweepWarm", NsPerOp: 10})
	if _, err := compareBench(golden, got, 0.05, true); err != nil {
		t.Errorf("overlapping snapshots refused: %v", err)
	}
	// The refusal surfaces through the file path as a hard error (exit
	// 2), not a diff list (exit 1).
	g := writeFile(t, "g.json", `[{"name":"BenchmarkOld","ns_per_op":100}]`)
	c := writeFile(t, "c.json", `[{"name":"BenchmarkNew","ns_per_op":100}]`)
	if _, err := compareBenchFiles(g, c, 0.05, false); err == nil || !strings.Contains(err.Error(), "different tags?") {
		t.Errorf("file comparison of disjoint snapshots: want refusal, got %v", err)
	}
}

func TestBenchModeFiles(t *testing.T) {
	golden := writeFile(t, "g.json", `[{"name":"BenchmarkX","iterations":3,"ns_per_op":100}]`)
	slow := writeFile(t, "s.json", `[{"name":"BenchmarkX","iterations":3,"ns_per_op":120}]`)
	diffs, err := compareBenchFiles(golden, slow, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Errorf("want 1 regression, got %v", diffs)
	}
	if _, err := compareBenchFiles(writeFile(t, "e.json", `[]`), slow, 0.05, false); err == nil {
		t.Error("empty golden accepted")
	}
}
