// Command regress compares a freshly generated result against a
// committed golden and exits non-zero on divergence. It has two modes:
//
//	# Exact comparison of simulator JSON documents (rampage-bench
//	# -format json / rampage-sim -format json). Simulated data is
//	# deterministic for a given seed, so every field must match.
//	go run ./tools/regress -mode report testdata/golden/table3.json /tmp/table3.json
//
//	# Directory comparison: every *.json in either tree must exist in
//	# the other and match exactly. A file present on only one side —
//	# including a golden that was deleted or never regenerated — is a
//	# hard error (exit 2), so a golden gate cannot silently pass on a
//	# missing file.
//	go run ./tools/regress -mode report testdata/golden /tmp/served
//
//	# Tolerance comparison of BENCH_batch.json-style snapshots
//	# (tools/benchjson output). Wall-clock numbers are noisy, so each
//	# benchmark's best (minimum) ns/op may regress by at most -tol
//	# (relative). Improvements never fail.
//	go run ./tools/regress -mode bench -tol 0.05 BENCH_batch.json /tmp/bench.json
//
// The first path is the golden (want), the second the candidate (got).
//
// The comparator itself lives in internal/regress (the server's
// POST /v1/compare endpoint shares it); this command is a thin CLI
// wrapper around it.
package main

import (
	"flag"
	"fmt"
	"os"

	"rampage/internal/regress"
)

// Aliases into the shared comparator. Keeping the CLI's historical
// names lets the existing output-pinning tests run unchanged against
// the extracted package, proving the extraction changed nothing.
var (
	compareReportFiles = regress.CompareReportFiles
	compareReportDirs  = regress.CompareReportDirs
	compareBench       = regress.CompareBench
	compareBenchFiles  = regress.CompareBenchFiles
	isDir              = regress.IsDir
)

type benchResult = regress.BenchResult

func main() {
	mode := flag.String("mode", "report", "comparison mode: report (exact), bench (ns/op tolerance)")
	tol := flag.Float64("tol", 0.05, "bench mode: allowed relative ns/op regression per benchmark")
	subset := flag.Bool("subset", false, "bench mode: the candidate covers only some golden benchmarks; skip the rest instead of failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: regress [-mode report|bench] [-tol frac] golden.json got.json")
		os.Exit(2)
	}
	goldenPath, gotPath := flag.Arg(0), flag.Arg(1)
	var (
		diffs []string
		err   error
	)
	switch *mode {
	case "report":
		if isDir(goldenPath) || isDir(gotPath) {
			diffs, err = compareReportDirs(goldenPath, gotPath)
		} else {
			diffs, err = compareReportFiles(goldenPath, gotPath)
		}
	case "bench":
		diffs, err = compareBenchFiles(goldenPath, gotPath, *tol, *subset)
	default:
		err = fmt.Errorf("unknown mode %q (want report or bench)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "regress:", err)
		os.Exit(2)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "regress: %s diverges from %s:\n", gotPath, goldenPath)
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("regress: %s matches %s\n", gotPath, goldenPath)
}
