// Command ckptgate gates the warm-state checkpoint payoff: given a
// benchjson snapshot (BENCH_checkpoint.json), it compares the best
// cold-sweep sample against the best warm-sweep sample and fails
// unless the warm sweep is at least -min times faster (default 3, the
// round's claim; the committed snapshot sits around 110x).
//
//	make bench-checkpoint
//	go run ./tools/ckptgate BENCH_checkpoint.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type benchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// bestNs returns the minimum ns/op among results whose name contains
// substr (the least-noise sample — interference only slows a
// benchmark down). Zero means no sample matched.
func bestNs(results []benchResult, substr string) float64 {
	var best float64
	for _, r := range results {
		if !strings.Contains(r.Name, substr) || r.NsPerOp <= 0 {
			continue
		}
		if best == 0 || r.NsPerOp < best {
			best = r.NsPerOp
		}
	}
	return best
}

// check computes the cold/warm speedup from a snapshot and compares it
// against the minimum ratio.
func check(results []benchResult, min float64) (ratio float64, err error) {
	cold := bestNs(results, "SweepCheckpointCold")
	warm := bestNs(results, "SweepCheckpointWarm")
	if cold == 0 || warm == 0 {
		return 0, fmt.Errorf("snapshot is missing the cold or warm sweep benchmark (cold=%v warm=%v)", cold, warm)
	}
	ratio = cold / warm
	if ratio < min {
		return ratio, fmt.Errorf("warm sweep is only %.1fx faster than cold (want >= %.1fx): cold %.0f ns/op, warm %.0f ns/op", ratio, min, cold, warm)
	}
	return ratio, nil
}

func main() {
	min := flag.Float64("min", 3, "minimum cold/warm speedup ratio")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ckptgate [-min ratio] BENCH_checkpoint.json")
		os.Exit(2)
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptgate:", err)
		os.Exit(2)
	}
	var results []benchResult
	if err := json.Unmarshal(b, &results); err != nil {
		fmt.Fprintln(os.Stderr, "ckptgate:", err)
		os.Exit(2)
	}
	ratio, err := check(results, *min)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptgate:", err)
		os.Exit(1)
	}
	fmt.Printf("ckptgate: warm sweep %.1fx faster than cold (>= %.1fx required)\n", ratio, *min)
}
