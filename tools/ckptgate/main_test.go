package main

import (
	"strings"
	"testing"
)

func TestCheckPassesAndFails(t *testing.T) {
	results := []benchResult{
		{Name: "BenchmarkSweepCheckpointCold", NsPerOp: 150e6},
		{Name: "BenchmarkSweepCheckpointCold", NsPerOp: 145e6}, // best cold
		{Name: "BenchmarkSweepCheckpointWarm", NsPerOp: 1.4e6},
		{Name: "BenchmarkSweepCheckpointWarm", NsPerOp: 1.3e6}, // best warm
		{Name: "BenchmarkRunCheckpointResume", NsPerOp: 23e6},  // ignored
	}
	ratio, err := check(results, 3)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	want := 145e6 / 1.3e6
	if ratio != want {
		t.Errorf("ratio = %v, want best-sample ratio %v", ratio, want)
	}
	if _, err := check(results, 200); err == nil {
		t.Error("check passed a 200x requirement the snapshot cannot meet")
	}
}

func TestCheckRefusesIncompleteSnapshot(t *testing.T) {
	onlyCold := []benchResult{{Name: "BenchmarkSweepCheckpointCold", NsPerOp: 150e6}}
	if _, err := check(onlyCold, 3); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("cold-only snapshot: err = %v, want missing-benchmark error", err)
	}
	if _, err := check(nil, 3); err == nil {
		t.Error("empty snapshot accepted")
	}
}
