package rampage_test

import (
	"context"
	"fmt"

	"rampage"
)

// The paper's headline device constant: a 4KB Direct Rambus transfer
// takes 50ns + 2048 x 1.25ns = 2610ns (§3.5: "about 2,600
// instructions" at a 1GHz issue rate).
func ExampleNewDirectRambus() {
	d := rampage.NewDirectRambus()
	fmt.Printf("4KB transfer: %d ns\n", d.TransferTime(4096)/1000)
	// Output:
	// 4KB transfer: 2610 ns
}

// Looking up a Table 2 workload profile.
func ExampleFindProfile() {
	p, ok := rampage.FindProfile("compress")
	if !ok {
		panic("missing")
	}
	fmt.Printf("%s: %s (%.1fM refs at full scale)\n", p.Name, p.Description, p.TotalMillions)
	// Output:
	// compress: file compression (int92) (10.5M refs at full scale)
}

// Running one simulation point. Results are deterministic for a given
// configuration and seed.
func ExampleRun() {
	cfg := rampage.QuickScaled()
	cfg.RefScale = 1.0 / 10000 // ~109k references: fast enough for an example
	rep, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System:    rampage.SystemRAMpage,
		IssueMHz:  1000,
		SizeBytes: 1024,
	})
	if err != nil {
		panic(err)
	}
	again, err := rampage.Run(context.Background(), cfg, rampage.RunSpec{
		System:    rampage.SystemRAMpage,
		IssueMHz:  1000,
		SizeBytes: 1024,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", rep.BenchRefs > 0)
	fmt.Println("faulted:", rep.PageFaults > 0)
	fmt.Println("deterministic:", rep.Cycles == again.Cycles)
	// Output:
	// completed: true
	// faulted: true
	// deterministic: true
}

// Reproducing a paper artifact through the experiment registry.
func ExampleFindExperiment() {
	exp, ok := rampage.FindExperiment("table1")
	if !ok {
		panic("missing")
	}
	fmt.Println(exp.Title)
	// Output:
	// Table 1: % bandwidth efficiency, Direct Rambus vs disk
}
