// Command rampage-server serves the paper's experiments over HTTP.
// Results are the same versioned JSON documents the CLIs emit, served
// from a content-addressed cache: repeating a request never re-runs
// the simulation, and identical concurrent requests share one run.
//
// Usage:
//
//	rampage-server                       # listen on :8080
//	rampage-server -addr :9090 -workers 2
//
//	curl localhost:8080/v1/experiments
//	curl localhost:8080/v1/experiments/table3?scale=quick
//	curl -X POST -d '{"kind":"experiment","id":"table3"}' localhost:8080/v1/jobs
//
// SIGINT/SIGTERM drain gracefully: in-flight simulations finish (up
// to -drain-timeout) while new requests are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rampage/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 1, "concurrently running jobs (each sweep job also parallelizes across its grid cells)")
		queue        = flag.Int("queue", 8, "queued-job bound; beyond it submissions get 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job execution bound (0 = unlimited)")
		cacheMB      = flag.Int64("cache-mb", 256, "result cache budget in MiB (0 = unlimited)")
		sweepWorkers = flag.Int("sweep-parallel", 0, "per-job grid-cell parallelism (0 = one per CPU)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs before canceling them")
		ckptMB       = flag.Int64("checkpoint-mb", 64, "warm-state checkpoint store resident budget in MiB (0 = unlimited)")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint spill directory (empty = evictions are dropped)")
	)
	flag.Parse()

	svc := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		CacheBytes:      *cacheMB << 20,
		SweepParallel:   *sweepWorkers,
		CheckpointBytes: *ckptMB << 20,
		CheckpointDir:   *ckptDir,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("rampage-server: listening on %s", *addr)

	select {
	case err := <-errCh:
		// Listener failed before any signal (e.g. address in use).
		fmt.Fprintln(os.Stderr, "rampage-server:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("rampage-server: draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections and finish in-flight requests, while
	// the jobs manager finishes (or, at the deadline, cancels) the
	// queued and running simulations those requests are waiting on.
	drainErr := svc.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rampage-server: shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("rampage-server: drain canceled in-flight jobs: %v", drainErr)
		os.Exit(1)
	}
	log.Println("rampage-server: drained cleanly")
}
