// Command rampage-server serves the paper's experiments over HTTP.
// Results are the same versioned JSON documents the CLIs emit, served
// from a content-addressed cache: repeating a request never re-runs
// the simulation, and identical concurrent requests share one run.
//
// The same binary is both halves of a fleet. By default it is the
// coordinator: it serves the experiment API, and when workers register
// it shards sweep grids across them (pull-based work stealing with
// leases; a dead worker's cells are requeued). With -store-dir,
// results also persist in a content-addressed disk store that survives
// restarts. With -worker it is a worker instead: it registers with
// -coordinator-url, leases cells, simulates them locally (with its own
// warm-state checkpoint store) and streams results back; -store-dir
// additionally memoizes finished cells on disk, so a re-leased cell
// (coordinator restart, lease churn) is answered without re-simulating.
//
// Usage:
//
//	rampage-server                       # listen on :8080
//	rampage-server -addr :9090 -workers 2
//	rampage-server -store-dir /var/rampage/results -store-mb 512
//	rampage-server -worker -coordinator-url http://host:8080 -fleet-parallel 4
//
//	curl localhost:8080/v1/experiments
//	curl localhost:8080/v1/experiments/table3?scale=quick
//	curl -X POST -d '{"kind":"experiment","id":"table3"}' localhost:8080/v1/jobs
//	curl -N localhost:8080/v1/jobs/j1/events        # live cell stream (NDJSON)
//	curl -N -H 'Accept: text/event-stream' localhost:8080/v1/jobs/j1/events
//	curl localhost:8080/fleet/v1/workers
//
// SIGINT/SIGTERM drain gracefully: the coordinator finishes in-flight
// simulations (up to -drain-timeout) while refusing new requests; a
// worker finishes its leased cells, deregisters and exits (a second
// signal aborts immediately — the coordinator requeues its cells).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rampage/internal/checkpoint"
	"rampage/internal/fleet"
	"rampage/internal/jobs"
	"rampage/internal/metrics"
	"rampage/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 1, "concurrently running jobs (each sweep job also parallelizes across its grid cells)")
		queue        = flag.Int("queue", 8, "queued-job bound; beyond it submissions get 429")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job execution bound (0 = unlimited)")
		cacheMB      = flag.Int64("cache-mb", 256, "result cache budget in MiB (0 = unlimited)")
		sweepWorkers = flag.Int("sweep-parallel", 0, "per-job grid-cell parallelism (0 = one per CPU)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs before canceling them")
		ckptMB       = flag.Int64("checkpoint-mb", 64, "warm-state checkpoint store resident budget in MiB (0 = unlimited)")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint spill directory (empty = evictions are dropped)")
		storeDir     = flag.String("store-dir", "", "persistent result store directory (empty = memory-only caching)")
		storeMB      = flag.Int64("store-mb", 1024, "persistent result store budget in MiB (0 = unlimited)")
		leaseTTL     = flag.Duration("lease-ttl", 0, "fleet lease TTL before a silent worker's cells are requeued (0 = default 15s)")
		tenantRate   = flag.Float64("tenant-rate", 0, "per-tenant job admissions per second (0 = no rate limiting)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = rate rounded up, min 1)")

		workerMode     = flag.Bool("worker", false, "run as a fleet worker instead of a coordinator")
		coordinatorURL = flag.String("coordinator-url", "", "coordinator base URL (worker mode), e.g. http://host:8080")
		workerName     = flag.String("worker-name", "", "worker label in the coordinator's status (default: hostname)")
		fleetParallel  = flag.Int("fleet-parallel", 1, "cells this worker executes concurrently (worker mode)")
	)
	flag.Parse()

	if *workerMode {
		os.Exit(runWorker(*coordinatorURL, *workerName, *fleetParallel, *ckptMB<<20, *ckptDir, *storeDir, *storeMB<<20))
	}

	svc, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		CacheBytes:      *cacheMB << 20,
		SweepParallel:   *sweepWorkers,
		CheckpointBytes: *ckptMB << 20,
		CheckpointDir:   *ckptDir,
		DiskDir:         *storeDir,
		DiskBytes:       *storeMB << 20,
		FleetLeaseTTL:   *leaseTTL,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampage-server:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("rampage-server: listening on %s", *addr)

	select {
	case err := <-errCh:
		// Listener failed before any signal (e.g. address in use).
		fmt.Fprintln(os.Stderr, "rampage-server:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("rampage-server: draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections and finish in-flight requests, while
	// the jobs manager finishes (or, at the deadline, cancels) the
	// queued and running simulations those requests are waiting on.
	drainErr := svc.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("rampage-server: shutdown: %v", err)
	}
	if drainErr != nil {
		log.Printf("rampage-server: drain canceled in-flight jobs: %v", drainErr)
		os.Exit(1)
	}
	log.Println("rampage-server: drained cleanly")
}

// runWorker is the -worker entry point: lease, simulate, stream back,
// until the coordinator drains or we are signaled. The first signal
// drains (finish leased cells, deregister); a second aborts
// immediately and lease expiry hands our cells to the survivors.
func runWorker(url, name string, parallel int, ckptBytes int64, ckptDir, storeDir string, storeBytes int64) int {
	if url == "" {
		fmt.Fprintln(os.Stderr, "rampage-server: -worker requires -coordinator-url")
		return 2
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	stats := &metrics.ServiceStats{}
	var disk *jobs.DiskStore
	if storeDir != "" {
		d, err := jobs.NewDiskStore(storeDir, storeBytes, stats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rampage-server:", err)
			return 2
		}
		disk = d
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		CoordinatorURL: url,
		Name:           name,
		Parallel:       parallel,
		Checkpoints:    checkpoint.NewStore(ckptBytes, ckptDir, stats),
		Disk:           disk,
		Stats:          stats,
		Logf:           log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampage-server:", err)
		return 2
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Println("rampage-worker: draining (finishing leased cells; signal again to abort)")
		w.Drain()
		<-sig
		log.Println("rampage-worker: aborting")
		cancel()
	}()

	log.Printf("rampage-worker: %s -> %s (parallel=%d)", name, url, parallel)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "rampage-worker:", err)
		return 1
	}
	log.Println("rampage-worker: done")
	return 0
}
