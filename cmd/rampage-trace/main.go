// Command rampage-trace works with the synthetic workload traces that
// drive the simulator: listing the Table 2 profiles, generating binary
// trace files, inspecting them, and converting between the binary and
// text formats.
//
// Usage:
//
//	rampage-trace -list
//	rampage-trace -gen compress -refscale 0.001 -o compress.rmpt
//	rampage-trace -gen all -refscale 0.0001 -interleave -o workload.rmpt
//	rampage-trace -stat compress.rmpt
//	rampage-trace -dump compress.rmpt | head
package main

import (
	"flag"
	"fmt"
	"os"

	"rampage/internal/mem"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the Table 2 benchmark profiles")
		gen        = flag.String("gen", "", "generate a trace for this profile name, or 'all'")
		out        = flag.String("o", "", "output file for -gen (binary format)")
		refScale   = flag.Float64("refscale", 0.001, "reference-count scale for -gen (1.0 = paper scale)")
		sizeScale  = flag.Float64("sizescale", 1.0/8, "footprint scale for -gen")
		seed       = flag.Uint64("seed", 42, "deterministic seed for -gen")
		interleave = flag.Bool("interleave", false, "with -gen all: interleave streams with the paper's quantum")
		quantum    = flag.Uint64("quantum", trace.DefaultQuantum, "interleave quantum in references")
		stat       = flag.String("stat", "", "print statistics for a binary trace file")
		dump       = flag.String("dump", "", "dump a binary trace file as text")
	)
	flag.Parse()

	switch {
	case *list:
		listProfiles()
	case *gen != "":
		if *out == "" {
			fatal(fmt.Errorf("-gen requires -o <file>"))
		}
		if err := generate(*gen, *out, *refScale, *sizeScale, *seed, *interleave, *quantum); err != nil {
			fatal(err)
		}
	case *stat != "":
		if err := statFile(*stat); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := dumpFile(*dump); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
	}
}

func listProfiles() {
	fmt.Printf("%-12s %-36s %10s %10s  %s\n", "program", "description", "ifetch(M)", "total(M)", "regions")
	for _, p := range synth.Table2() {
		regions := ""
		for i, r := range p.Regions {
			if i > 0 {
				regions += ","
			}
			regions += fmt.Sprintf("%s(%s/%s)", r.Name, mem.FormatSize(r.Size), r.Pattern)
		}
		fmt.Printf("%-12s %-36s %10.1f %10.1f  %s\n", p.Name, p.Description, p.IFetchMillions, p.TotalMillions, regions)
	}
	fmt.Printf("\ncombined: %.1fM references at full scale (the paper's 1.1 billion)\n", synth.Table2TotalMillions())
}

func generate(name, out string, refScale, sizeScale float64, seed uint64, interleave bool, quantum uint64) error {
	var reader trace.Reader
	if name == "all" {
		var streams []trace.Reader
		for _, p := range synth.Table2() {
			g, err := synth.NewGenerator(p, synth.Options{Seed: seed, RefScale: refScale, SizeScale: sizeScale})
			if err != nil {
				return err
			}
			streams = append(streams, g)
		}
		if interleave {
			il, err := trace.NewInterleaver(streams, quantum)
			if err != nil {
				return err
			}
			reader = il
		} else {
			reader = trace.NewConcat(streams...)
		}
	} else {
		p, ok := synth.FindProfile(name)
		if !ok {
			return fmt.Errorf("unknown profile %q; use -list", name)
		}
		g, err := synth.NewGenerator(p, synth.Options{Seed: seed, RefScale: refScale, SizeScale: sizeScale})
		if err != nil {
			return err
		}
		reader = g
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewFileWriter(f)
	if err != nil {
		return err
	}
	n, err := trace.Copy(w, reader)
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d references to %s (%s, %.2f bytes/ref)\n",
		n, out, mem.FormatSize(uint64(info.Size())), float64(info.Size())/float64(n))
	return nil
}

func statFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		return err
	}
	s, err := trace.Collect(r)
	if err != nil {
		return err
	}
	fmt.Print(s.String())
	return nil
}

func dumpFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		return err
	}
	w := trace.NewTextWriter(os.Stdout)
	if _, err := trace.Copy(w, r); err != nil {
		return err
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rampage-trace:", err)
	os.Exit(1)
}
