package main

import (
	"os"
	"path/filepath"
	"testing"

	"rampage/internal/trace"
)

func TestGenerateSingleProfile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "compress.rmpt")
	if err := generate("compress", out, 0.0005, 1.0/16, 1, false, trace.DefaultQuantum); err != nil {
		t.Fatalf("generate: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		t.Fatalf("generated file unreadable: %v", err)
	}
	s, err := trace.Collect(r)
	if err != nil {
		t.Fatalf("generated file corrupt: %v", err)
	}
	if s.Total == 0 || s.IFetches() == 0 {
		t.Errorf("degenerate trace: %+v", s.ByKind)
	}
}

func TestGenerateInterleavedAll(t *testing.T) {
	out := filepath.Join(t.TempDir(), "all.rmpt")
	if err := generate("all", out, 0.00002, 1.0/16, 1, true, 100); err != nil {
		t.Fatalf("generate all: %v", err)
	}
	f, _ := os.Open(out)
	defer f.Close()
	r, _ := trace.NewFileReader(f)
	s, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	// All 18 PIDs must appear in the interleaved trace.
	if len(s.ByPID) != 18 {
		t.Errorf("interleaved trace has %d PIDs, want 18", len(s.ByPID))
	}
}

func TestGenerateUnknownProfile(t *testing.T) {
	if err := generate("nonesuch", filepath.Join(t.TempDir(), "x"), 0.001, 1, 1, false, 100); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestStatAndDump(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sed.rmpt")
	if err := generate("sed", out, 0.0005, 1.0/16, 1, false, 100); err != nil {
		t.Fatal(err)
	}
	if err := statFile(out); err != nil {
		t.Errorf("statFile: %v", err)
	}
	if err := statFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("statFile on missing file succeeded")
	}
}
