package main

import (
	"context"
	"testing"

	"rampage/internal/harness"
)

// The list/scale/system parsing the flags rely on moved into
// internal/harness (shared with rampage-sim and rampage-server); its
// table-driven tests live there. What remains here is the CSV sweep
// entry point's own error path.

func TestRunSweepCSVRejectsUnknownSystem(t *testing.T) {
	cfg, _ := harness.ConfigForScale("quick")
	if err := runSweepCSV(context.Background(), cfg, "bogus", "", nil, nil); err == nil {
		t.Error("unknown sweep system accepted")
	}
}
