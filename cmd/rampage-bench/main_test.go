package main

import "testing"

func TestParseList(t *testing.T) {
	got, err := parseList("200, 4000")
	if err != nil || len(got) != 2 || got[0] != 200 || got[1] != 4000 {
		t.Errorf("parseList = %v, %v", got, err)
	}
	if got, err := parseList(""); err != nil || got != nil {
		t.Errorf("empty parseList = %v, %v", got, err)
	}
	if _, err := parseList("12,abc"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestScaleConfig(t *testing.T) {
	for _, name := range []string{"quick", "default", "full"} {
		cfg, err := scaleConfig(name)
		if err != nil {
			t.Errorf("scaleConfig(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scaleConfig(%q) invalid: %v", name, err)
		}
	}
	if _, err := scaleConfig("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestRunSweepCSVRejectsUnknownSystem(t *testing.T) {
	cfg, _ := scaleConfig("quick")
	if err := runSweepCSV(cfg, "bogus", nil, nil); err == nil {
		t.Error("unknown sweep system accepted")
	}
}
