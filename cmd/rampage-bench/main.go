// Command rampage-bench regenerates the paper's tables and figures.
// Each experiment runs the corresponding parameter sweep and prints
// the rows/series the paper reports.
//
// Usage:
//
//	rampage-bench -exp table3            # one experiment, scaled default
//	rampage-bench -exp all -scale quick  # everything, fast
//	rampage-bench -list                  # what exists
//
// Experiments: table1 table2 table3 table4 table5 fig2 fig3 fig4 fig5
// plus the ablations bigtlb, pipelined, victim and biglone (see
// DESIGN.md for the per-experiment index).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"rampage/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id, or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.String("scale", "default", "workload scale: quick, default, full")
		rates    = flag.String("rates", "", "comma-separated issue rates in MHz (default: paper sweep)")
		sizes    = flag.String("sizes", "", "comma-separated block/page sizes in bytes (default: paper sweep)")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		sweep    = flag.String("sweep", "", "raw sweep mode: run this system (baseline, 2way, rampage, rampage-cs) over the grid and emit CSV on stdout")
		polFlag  = flag.String("policy", "", "with -sweep on a RAMpage system: SRAM page replacement policy (clock, fifo, random, awrp, bandwidth)")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = one per CPU); results are identical at any setting")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		format   = flag.String("format", "text", "output format: text, json (versioned experiment documents; tables 3-5 and figs 2-4)")
		outDir   = flag.String("outdir", "", "with -format json: write one <id>.json per experiment here instead of stdout")
		verify   = flag.Bool("verify", false, "run under the oracle invariant checker: assert machine invariants online and fail on the first violation (results are unchanged, runs are slower)")
	)
	flag.Parse()

	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
		}()
	}

	if *list || (*exp == "" && *sweep == "") {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" {
			fmt.Println("\nrun one with: rampage-bench -exp <id>")
		}
		return
	}

	cfg, err := harness.ConfigForScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.Workers = *parallel
	cfg.Verify = *verify

	rateList, err := harness.ParseGridList(*rates)
	if err != nil {
		fatal(fmt.Errorf("bad -rates: %w", err))
	}
	sizeList, err := harness.ParseGridList(*sizes)
	if err != nil {
		fatal(fmt.Errorf("bad -sizes: %w", err))
	}

	// Ctrl-C (and SIGTERM) cancel the sweeps so a long run dies cleanly
	// instead of finishing the whole grid after the interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweep != "" {
		if err := runSweepCSV(ctx, cfg, *sweep, *polFlag, rateList, sizeList); err != nil {
			fatalOrInterrupted(err)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments()
	} else {
		e, ok := harness.FindExperiment(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; use -list", *exp))
		}
		selected = []harness.Experiment{e}
	}

	if *format == "json" {
		if err := runJSON(ctx, cfg, selected, rateList, sizeList, *outDir, *exp == "all"); err != nil {
			fatalOrInterrupted(err)
		}
		return
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		out, err := e.Run(ctx, cfg, rateList, sizeList)
		if err != nil {
			fatalOrInterrupted(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Println(out)
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runJSON emits the versioned experiment documents. A single
// experiment with no -outdir goes to stdout (nothing else is printed,
// so the output pipes cleanly into tools/regress); otherwise one
// <id>.json file per experiment lands in the output directory.
// Experiments without a JSON form are skipped with a note when running
// "all" and rejected when named explicitly.
func runJSON(ctx context.Context, cfg harness.Config, selected []harness.Experiment, rates, sizes []uint64, outDir string, all bool) error {
	var ids []string
	for _, e := range selected {
		if !harness.HasJSONForm(e.ID) {
			if all {
				fmt.Fprintf(os.Stderr, "rampage-bench: skipping %s (no JSON form)\n", e.ID)
				continue
			}
			return fmt.Errorf("experiment %q has no JSON form (JSON covers tables 3-5 and figs 2-4)", e.ID)
		}
		ids = append(ids, e.ID)
	}
	if len(ids) == 0 {
		return fmt.Errorf("no selected experiment has a JSON form")
	}
	if outDir == "" && len(ids) > 1 {
		return fmt.Errorf("multiple JSON experiments need -outdir")
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		doc, err := harness.BuildExperimentDoc(ctx, cfg, id, rates, sizes)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if outDir == "" {
			if err := harness.WriteJSON(os.Stdout, doc); err != nil {
				return err
			}
			continue
		}
		path := filepath.Join(outDir, id+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := harness.WriteJSON(f, doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rampage-bench: wrote %s\n", path)
	}
	return nil
}

// runSweepCSV runs one system across the grid and writes CSV rows to
// stdout for external plotting.
func runSweepCSV(ctx context.Context, cfg harness.Config, system, policy string, rates, sizes []uint64) error {
	kind, err := harness.ParseSystemKind(system)
	if err != nil {
		return err
	}
	if len(rates) == 0 {
		rates = harness.IssueRatesMHz
	}
	if len(sizes) == 0 {
		sizes = harness.BlockSizes
	}
	switchTrace := kind == harness.TwoWayL2 || kind == harness.RAMpageCS
	base := harness.RunSpec{System: kind, SwitchTrace: switchTrace, Policy: policy}
	grid, err := harness.SweepSpec(ctx, cfg, base, rates, sizes)
	if err != nil {
		return err
	}
	return harness.WriteSweepCSV(os.Stdout, rates, sizes, grid)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rampage-bench:", err)
	os.Exit(1)
}

// fatalOrInterrupted treats context cancellation (Ctrl-C) as a clean
// interrupt with the conventional 130 exit status.
func fatalOrInterrupted(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "rampage-bench: interrupted")
		os.Exit(130)
	}
	fatal(err)
}
