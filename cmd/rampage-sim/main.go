// Command rampage-sim runs one memory-hierarchy simulation point and
// prints its full report: elapsed simulated time, per-level time
// breakdown, and event counts.
//
// Usage:
//
//	rampage-sim [flags]
//
// Examples:
//
//	# RAMpage with 1KB SRAM pages at a 1GHz issue rate, scaled workload
//	rampage-sim -system rampage -mhz 1000 -size 1024
//
//	# The paper's baseline at 4GHz with 128B L2 blocks, quick scale
//	rampage-sim -system baseline -mhz 4000 -size 128 -scale quick
//
//	# RAMpage with context switches on misses, full paper scale (slow!)
//	rampage-sim -system rampage-cs -mhz 4000 -size 4096 -scale full -switchtrace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rampage/internal/harness"
	"rampage/internal/metrics"
	"rampage/internal/sim"
	"rampage/internal/trace"
)

func main() {
	var (
		system      = flag.String("system", "rampage", "system to simulate: baseline, 2way, rampage, rampage-cs")
		mhz         = flag.Uint64("mhz", 1000, "CPU issue rate in MHz (200..4000)")
		size        = flag.Uint64("size", 1024, "L2 block size / SRAM page size in bytes (128..4096)")
		scale       = flag.String("scale", "default", "workload scale: quick, default, full")
		switchTrace = flag.Bool("switchtrace", false, "interleave the ~400-ref context-switch trace at each switch")
		maxRefs     = flag.Uint64("maxrefs", 0, "stop after this many application references (0 = all)")
		procs       = flag.Int("procs", 0, "limit to the first N Table 2 programs (0 = all 18)")
		seed        = flag.Uint64("seed", 42, "deterministic seed")
		victim      = flag.Int("victim", 0, "attach an N-entry victim cache (conventional systems)")
		tlbEntries  = flag.Int("tlb", 0, "override TLB entries (0 = paper default 64)")
		tlbAssoc    = flag.Int("tlbassoc", 0, "TLB associativity with -tlb (0 = fully associative)")
		pipelined   = flag.Bool("pipelined", false, "pipelined Direct Rambus channel")
		sdram       = flag.Bool("sdram", false, "use the wide SDRAM device instead of Direct Rambus")
		threads     = flag.Bool("threads", false, "lightweight thread switches on misses (with -system rampage-cs)")
		adaptive    = flag.Bool("adaptive", false, "dynamic SRAM page sizing (with -system rampage; -size is the initial page)")
		policyName  = flag.String("policy", "", "SRAM page replacement policy for RAMpage systems: clock (default), fifo, random, awrp, bandwidth")
		prefetch    = flag.Bool("prefetch", false, "sequential next-page prefetch (RAMpage systems)")
		banked      = flag.Bool("banked", false, "banked open-row RDRAM timing instead of the flat model")
		channels    = flag.Int("channels", 1, "stripe the DRAM across N Rambus channels")
		traceFile   = flag.String("tracefile", "", "replay a binary trace file instead of the synthetic workload (no scheduler; not for rampage-cs)")
		format      = flag.String("format", "text", "output format: text, json (versioned report document)")
		snapEvery   = flag.Uint64("snapinterval", 0, "with -format json: cut a metrics snapshot every N simulated cycles (0 = none)")
	)
	flag.Parse()

	if *format != "text" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want text or json)", *format))
	}

	// Ctrl-C (and SIGTERM) cancel the run's context so a long
	// simulation dies cleanly at the next batch boundary instead of
	// running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *traceFile != "" {
		if err := replayFile(*traceFile, *system, *mhz, *size, *seed, *format, *snapEvery); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := harness.ConfigForScale(*scale)
	if err != nil {
		fatal(err)
	}
	cfg.Seed = *seed
	cfg.MaxRefs = *maxRefs
	cfg.Processes = *procs

	var col *metrics.Collector
	if *format == "json" {
		col = metrics.NewCollector(*snapEvery)
		cfg.Observer = col
	}

	kind, err := harness.ParseSystemKind(*system)
	if err != nil {
		fatal(err)
	}
	rep, err := harness.Run(ctx, cfg, harness.RunSpec{
		System:             kind,
		IssueMHz:           *mhz,
		SizeBytes:          *size,
		SwitchTrace:        *switchTrace,
		VictimEntries:      *victim,
		TLBEntries:         *tlbEntries,
		TLBAssoc:           *tlbAssoc,
		PipelinedDRAM:      *pipelined,
		SDRAM:              *sdram,
		LightweightThreads: *threads,
		AdaptivePages:      *adaptive,
		PrefetchNext:       *prefetch,
		BankedDRAM:         *banked,
		DRAMChannels:       *channels,
		Policy:             *policyName,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "rampage-sim: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	if *format == "json" {
		if err := harness.WriteJSON(os.Stdout, harness.NewRunDoc(rep, col)); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(rep.String())
}

// replayFile runs a binary trace file through a machine directly (no
// scheduler, references in file order) and prints the report.
func replayFile(path, system string, mhz, size, seed uint64, format string, snapEvery uint64) error {
	kind, err := harness.ParseSystemKind(system)
	if err != nil {
		return err
	}
	params := sim.DefaultParams(mhz)
	params.Seed = seed
	var machine sim.Machine
	switch kind {
	case harness.BaselineDM, harness.TwoWayL2:
		assoc := 1
		if kind == harness.TwoWayL2 {
			assoc = 2
		}
		machine, err = sim.NewBaseline(sim.BaselineConfig{
			Params: params, L2Bytes: 512 << 10, L2Block: size, L2Assoc: assoc,
		})
	case harness.RAMpage:
		cfg := harness.DefaultScaled()
		machine, err = sim.NewRAMpage(sim.RAMpageConfig{
			Params: params, SRAMBytes: cfg.SRAMBytes(size), PageBytes: size,
		})
	default:
		return fmt.Errorf("-tracefile supports baseline, 2way and rampage (no scheduler for rampage-cs)")
	}
	if err != nil {
		return err
	}
	var col *metrics.Collector
	if format == "json" {
		col = metrics.NewCollector(snapEvery)
		machine.SetObserver(col)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewFileReader(f)
	if err != nil {
		return err
	}
	if err := sim.Replay(machine, r); err != nil {
		return err
	}
	if format == "json" {
		return harness.WriteJSON(os.Stdout, harness.NewRunDoc(machine.Report(), col))
	}
	fmt.Print(machine.Report().String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rampage-sim:", err)
	os.Exit(1)
}
