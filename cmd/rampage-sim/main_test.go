package main

import (
	"testing"

	"rampage/internal/harness"
)

func TestParseSystem(t *testing.T) {
	cases := map[string]harness.SystemKind{
		"baseline":    harness.BaselineDM,
		"baseline-dm": harness.BaselineDM,
		"dm":          harness.BaselineDM,
		"2way":        harness.TwoWayL2,
		"l2-2way":     harness.TwoWayL2,
		"rampage":     harness.RAMpage,
		"rampage-cs":  harness.RAMpageCS,
		"cs":          harness.RAMpageCS,
	}
	for name, want := range cases {
		got, err := parseSystem(name)
		if err != nil || got != want {
			t.Errorf("parseSystem(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
	if _, err := parseSystem("bogus"); err == nil {
		t.Error("bogus system accepted")
	}
}

func TestScaleConfig(t *testing.T) {
	for _, name := range []string{"quick", "default", "full"} {
		if _, err := scaleConfig(name); err != nil {
			t.Errorf("scaleConfig(%q): %v", name, err)
		}
	}
	if _, err := scaleConfig("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}
