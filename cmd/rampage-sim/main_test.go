package main

import (
	"testing"

	"rampage/internal/harness"
)

// System and scale parsing moved into internal/harness (shared with
// rampage-bench and rampage-server); the exhaustive tables live there.
// This smoke test pins that the CLI still reaches them.

func TestSharedParsersReachable(t *testing.T) {
	if kind, err := harness.ParseSystemKind("rampage-cs"); err != nil || kind != harness.RAMpageCS {
		t.Errorf("ParseSystemKind(rampage-cs) = (%v, %v)", kind, err)
	}
	if _, err := harness.ConfigForScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}
