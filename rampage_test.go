// Tests of the public facade: everything a downstream user touches
// must work through package rampage alone.
package rampage_test

import (
	"context"
	"strings"
	"testing"

	"rampage"
	"rampage/internal/trace"
)

func tinyConfig() rampage.Config {
	cfg := rampage.QuickScaled()
	cfg.RefScale = 1.0 / 10000
	return cfg
}

func TestFacadeRun(t *testing.T) {
	rep, err := rampage.Run(context.Background(), tinyConfig(), rampage.RunSpec{
		System:    rampage.SystemRAMpage,
		IssueMHz:  1000,
		SizeBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds() <= 0 || rep.BenchRefs == 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestFacadeSweep(t *testing.T) {
	grid, err := rampage.Sweep(context.Background(), tinyConfig(), rampage.SystemBaselineDM,
		[]uint64{200}, []uint64{512, 4096}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 1 || len(grid[0]) != 2 {
		t.Fatalf("grid shape wrong")
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := rampage.Experiments()
	if len(exps) < 17 {
		t.Errorf("registry has %d experiments, want >= 17", len(exps))
	}
	e, ok := rampage.FindExperiment("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	out, err := e.Run(context.Background(), tinyConfig(), nil, nil)
	if err != nil || out == "" {
		t.Errorf("table1 run failed: %v", err)
	}
}

func TestFacadeTable1(t *testing.T) {
	rows := rampage.Table1()
	if len(rows) == 0 {
		t.Fatal("empty Table 1")
	}
	if s := rampage.FormatTable1(rows); !strings.Contains(s, "rambus") {
		t.Error("FormatTable1 output unexpected")
	}
	d := rampage.NewDirectRambus()
	if d.TransferTime(2) == 0 {
		t.Error("device timing zero")
	}
}

func TestFacadeWorkload(t *testing.T) {
	profiles := rampage.Table2()
	if len(profiles) != 18 {
		t.Fatalf("Table2 has %d profiles", len(profiles))
	}
	p, ok := rampage.FindProfile("compress")
	if !ok {
		t.Fatal("compress missing")
	}
	g, err := rampage.NewGenerator(p, rampage.GenOptions{Seed: 1, RefScale: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := trace.Drain(g)
	if err != nil || len(refs) == 0 {
		t.Errorf("generator produced %d refs, err %v", len(refs), err)
	}
}

func TestFacadeMachineAPI(t *testing.T) {
	m, err := rampage.NewRAMpage(rampage.RAMpageConfig{
		Params:    rampage.DefaultParams(1000),
		SRAMBytes: 264 << 10,
		PageBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := rampage.FindProfile("sed")
	g, _ := rampage.NewGenerator(p, rampage.GenOptions{Seed: 1, RefScale: 0.001})
	sched, err := rampage.NewScheduler(m, []rampage.TraceReader{g}, rampage.SchedulerConfig{Quantum: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sched.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs == 0 {
		t.Error("machine API run executed nothing")
	}
}

func TestFacadeAdaptive(t *testing.T) {
	m, err := rampage.NewAdaptiveRAMpage(rampage.AdaptiveConfig{
		RAMpageConfig: rampage.RAMpageConfig{
			Params:    rampage.DefaultParams(1000),
			SRAMBytes: 264 << 10,
			PageBytes: 128,
		},
		EpochRefs: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := rampage.FindProfile("nasa7")
	g, _ := rampage.NewGenerator(p, rampage.GenOptions{Seed: 1, RefScale: 0.001, SizeScale: 1.0 / 16})
	sched, _ := rampage.NewScheduler(m, []rampage.TraceReader{g}, rampage.SchedulerConfig{Quantum: 50000})
	rep, err := sched.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs == 0 {
		t.Error("adaptive run executed nothing")
	}
}

func TestFacadeSweepConstants(t *testing.T) {
	if len(rampage.IssueRatesMHz) != 6 || len(rampage.BlockSizes) != 6 {
		t.Errorf("paper sweeps wrong: %v, %v", rampage.IssueRatesMHz, rampage.BlockSizes)
	}
}
