package jobs

import (
	"fmt"
	"testing"

	"rampage/internal/metrics"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(0, nil) // unlimited
	if _, ok := c.Get("missing"); ok {
		t.Error("empty cache returned a value")
	}
	c.Put("a", []byte("doc-a"))
	if v, ok := c.Get("a"); !ok || string(v) != "doc-a" {
		t.Errorf("Get(a) = (%q, %v)", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 5 {
		t.Errorf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Replacing a key updates accounting rather than double-counting.
	c.Put("a", []byte("doc-a-longer"))
	if c.Len() != 1 || c.Bytes() != 12 {
		t.Errorf("after replace: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	var stats metrics.ServiceStats
	c := NewCache(30, &stats)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 10))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 at budget", c.Len())
	}
	// Touch k0 so k1 becomes least recently used, then overflow.
	c.Get("k0")
	c.Put("k3", make([]byte, 10))
	if _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted out of order", k)
		}
	}
	if c.Bytes() != 30 {
		t.Errorf("bytes = %d, want 30", c.Bytes())
	}
	if stats.Get(metrics.SvcCacheEvict) != 1 {
		t.Errorf("evictions = %d, want 1", stats.Get(metrics.SvcCacheEvict))
	}
}

func TestCacheRejectsOverBudgetValue(t *testing.T) {
	c := NewCache(10, nil)
	c.Put("small", make([]byte, 4))
	c.Put("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget value was stored")
	}
	if _, ok := c.Get("small"); !ok {
		t.Error("over-budget Put evicted the resident entry")
	}
}

func TestCacheKeepsNewestWhenBudgetTight(t *testing.T) {
	c := NewCache(10, nil)
	c.Put("a", make([]byte, 8))
	c.Put("b", make([]byte, 9))
	if _, ok := c.Get("a"); ok {
		t.Error("old entry survived a displacing insert")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("new entry displaced instead of old")
	}
}
