package jobs

import (
	"encoding/json"
	"sync"
)

// Event is one entry in a job's live event stream. Sequence numbers
// start at 1 and are dense, so a client that saw sequence n can resume
// from n and miss nothing. Cell events carry the serialized cell
// payload the job's Do closure handed to progress (for sweep jobs, a
// cell document tagged with its canonical grid index); the terminal
// event's Type mirrors the job's final state.
type Event struct {
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"` // "cell", "done", "failed" or "canceled"
	Cell  json.RawMessage `json:"cell,omitempty"`
	Error string          `json:"error,omitempty"`
}

// Terminal reports whether the event ends the stream.
func (e Event) Terminal() bool {
	return e.Type == string(StateDone) || e.Type == string(StateFailed) || e.Type == string(StateCanceled)
}

// EventStream is a job's broadcast channel: the full event history
// plus the set of live subscribers. History is bounded by construction
// — a job publishes at most Cells cell events plus one terminal event
// — so retaining it costs little and makes resume-from-sequence
// trivial: Subscribe replays history beyond the cursor and registers
// for the live tail under one lock, so a subscriber sees every event
// exactly once, in order, with no gap between replay and tail.
type EventStream struct {
	mu     sync.Mutex
	events []Event // events[i].Seq == uint64(i+1)
	closed bool    // terminal event published; no more will follow
	subs   map[chan Event]struct{}
}

func newEventStream() *EventStream {
	return &EventStream{subs: make(map[chan Event]struct{})}
}

// publish appends an event (assigning its sequence number) and fans it
// out. A subscriber whose buffer is full is dropped — its channel is
// closed without a terminal event, which tells the reader to resume
// from its last seen sequence rather than stalling the publisher.
func (s *EventStream) publish(typ string, cell json.RawMessage, errText string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	e := Event{Seq: uint64(len(s.events) + 1), Type: typ, Cell: cell, Error: errText}
	s.events = append(s.events, e)
	terminal := e.Terminal()
	if terminal {
		s.closed = true
	}
	for ch := range s.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop it, it can resume by sequence
			delete(s.subs, ch)
			close(ch)
			continue
		}
		if terminal {
			delete(s.subs, ch)
			close(ch)
		}
	}
}

// Subscribe returns the event history beyond the from cursor (0 =
// everything) and, unless the stream has already ended, a live channel
// for the tail plus a cancel function that must be called when the
// reader stops. The channel is closed after the terminal event is
// delivered, or earlier if the reader falls more than buf events
// behind (resume with from = last seen sequence).
func (s *EventStream) Subscribe(from uint64, buf int) (replay []Event, tail <-chan Event, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < uint64(len(s.events)) {
		replay = append(replay, s.events[from:]...)
	}
	if s.closed {
		return replay, nil, func() {}
	}
	ch := make(chan Event, buf)
	s.subs[ch] = struct{}{}
	return replay, ch, func() {
		s.mu.Lock()
		if _, ok := s.subs[ch]; ok {
			delete(s.subs, ch)
			close(ch)
		}
		s.mu.Unlock()
	}
}

// Len returns the number of published events (the latest sequence
// number).
func (s *EventStream) Len() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.events))
}

// Events returns the job's event stream. For jobs answered straight
// from the result cache the stream is empty — the HTTP layer
// synthesizes a replay burst from the cached document instead.
func (j *Job) Events() *EventStream { return j.events }
