// Package jobs runs experiment requests on a bounded worker pool in
// front of a content-addressed result cache. It is the concurrency
// core of the experiment service and knows nothing about HTTP or the
// simulator: a Request carries a canonical cache key, a progress cell
// count, and a closure producing the serialized result document. The
// manager provides the serving guarantees the simulator's determinism
// makes possible — identical requests collapse onto one in-flight
// computation (singleflight), finished results are served from the
// cache without re-simulating, a full queue rejects instead of
// blocking (backpressure), and a drain lets in-flight work finish
// while refusing new work. Multi-tenant serving adds two more: a
// weighted round-robin queue that keeps one tenant's flood from
// starving another, and per-tenant token buckets that bound each
// tenant's admission rate. Every job also carries an EventStream of
// its completed cells so the HTTP layer can stream partial results
// live, with resume-from-sequence.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rampage/internal/metrics"
)

// Submission errors. The HTTP layer maps ErrQueueFull to 429 with a
// Retry-After hint and ErrDraining to 503.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrDraining  = errors.New("jobs: manager is draining")
)

// Request describes one unit of work.
type Request struct {
	// Key is the content address of the result (harness.RunKey or
	// harness.ExperimentKey): requests with equal keys are guaranteed
	// to produce byte-identical documents, which is what licenses both
	// the cache and the singleflight collapse.
	Key string
	// Label names the request for status documents ("experiment:table3").
	Label string
	// Cells is the total progress denominator (grid cells for a sweep,
	// 1 for a single run).
	Cells int
	// Tenant attributes the request to a client for fair queueing, rate
	// limiting and per-tenant counters ("" is the shared anonymous
	// tenant). Cache hits and singleflight joins are free — only
	// submissions that would enqueue real work spend a token.
	Tenant string
	// Do computes the serialized result document. It must honour ctx
	// and call progress after each completed cell (progress is safe for
	// concurrent use and may be called from worker goroutines). A
	// non-nil cell payload is published to the job's event stream for
	// live subscribers; nil records count-only progress.
	Do func(ctx context.Context, progress func(cell []byte)) ([]byte, error)
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one tracked computation. Identical concurrent submissions
// share a single Job.
type Job struct {
	ID     string
	Key    string
	Label  string
	Cells  int
	Tenant string

	cellsDone atomic.Uint64
	events    *EventStream

	run    func(ctx context.Context, progress func(cell []byte)) ([]byte, error)
	jobCtx context.Context    // canceled by Cancel or manager shutdown
	cancel context.CancelFunc // cancels jobCtx

	mu    sync.Mutex
	state State
	err   error
	data  []byte

	done chan struct{} // closed on entering a terminal state
}

// Status is the poll-friendly snapshot of a job, serialized by the
// HTTP layer for GET /v1/jobs/{id}.
type Status struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	Label     string `json:"label"`
	State     State  `json:"state"`
	Cells     int    `json:"cells"`
	CellsDone uint64 `json:"cells_done"`
	Error     string `json:"error,omitempty"`
}

// Status returns the job's current snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:        j.ID,
		Key:       j.Key,
		Label:     j.Label,
		State:     j.state,
		Cells:     j.Cells,
		CellsDone: j.cellsDone.Load(),
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// Result returns the job's document once terminal; calling it before
// the done channel closes returns an error.
func (j *Job) Result() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case !j.state.Terminal():
		return nil, fmt.Errorf("jobs: job %s still %s", j.ID, j.state)
	case j.err != nil:
		return nil, j.err
	default:
		return j.data, nil
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) finish(state State, data []byte, err error) {
	j.mu.Lock()
	j.state = state
	j.data = data
	j.err = err
	j.mu.Unlock()
	close(j.done)
	var errText string
	if err != nil {
		errText = err.Error()
	}
	j.events.publish(string(state), nil, errText)
}

// Config sizes a Manager.
type Config struct {
	// Workers is the number of concurrent jobs (min 1). Note each sweep
	// job additionally parallelizes across grid cells internally, so
	// this bounds admitted jobs, not goroutines.
	Workers int
	// QueueDepth bounds jobs accepted but not yet running (min 1);
	// submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// JobTimeout bounds one job's execution (0 = unlimited).
	JobTimeout time.Duration
	// CacheBytes is the result cache budget (<= 0 = unlimited).
	CacheBytes int64
	// Disk, when non-nil, backs the in-memory LRU with a persistent
	// content-addressed store: lookups that miss memory are answered
	// from disk (and promoted), finished results are written through.
	// Results therefore survive restarts and are shared fleet-wide.
	Disk *DiskStore
	// KeepFinished bounds how many terminal jobs stay pollable (min 1;
	// default 512). Older finished jobs are forgotten FIFO.
	KeepFinished int
	// TenantRate, when positive, applies a per-tenant token bucket to
	// submissions that would enqueue real work: TenantRate jobs per
	// second accrue up to TenantBurst tokens (min 1). An empty bucket
	// rejects with a *RateLimitError carrying the refill time.
	TenantRate  float64
	TenantBurst int
	// TenantWeights sets per-tenant fair-queue weights (entries absent
	// or < 1 mean 1): a tenant with weight w may dequeue up to w jobs
	// per round-robin visit. Dequeue is starvation-free regardless.
	TenantWeights map[string]int
	// Stats receives service counters; may be nil.
	Stats *metrics.ServiceStats
	// Tenants receives per-tenant counters; may be nil.
	Tenants *metrics.TenantStats
}

// Manager owns the queue, the worker pool, the singleflight index and
// the result cache.
type Manager struct {
	cfg     Config
	cache   *Cache
	disk    *DiskStore // nil when no persistent store is attached
	stats   *metrics.ServiceStats
	tenants *metrics.TenantStats
	limiter *rateLimiter // nil when no tenant rate is configured

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	queue    *fairQueue
	inflight map[string]*Job // cache key -> non-terminal job
	jobs     map[string]*Job // job ID -> job (bounded by KeepFinished)
	finished []string        // terminal job IDs, oldest first
	nextID   uint64

	wg sync.WaitGroup
}

// NewManager starts the worker pool.
func NewManager(cfg Config) *Manager {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.KeepFinished < 1 {
		cfg.KeepFinished = 512
	}
	ctx, cancel := context.WithCancel(context.Background())
	var weight func(string) int
	if len(cfg.TenantWeights) > 0 {
		weights := cfg.TenantWeights
		weight = func(tenant string) int { return weights[tenant] }
	}
	m := &Manager{
		cfg:        cfg,
		cache:      NewCache(cfg.CacheBytes, cfg.Stats),
		disk:       cfg.Disk,
		stats:      cfg.Stats,
		tenants:    cfg.Tenants,
		limiter:    newRateLimiter(cfg.TenantRate, cfg.TenantBurst),
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      newFairQueue(cfg.QueueDepth, weight),
		inflight:   make(map[string]*Job),
		jobs:       make(map[string]*Job),
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Cache exposes the result store (the HTTP layer reports its size).
func (m *Manager) Cache() *Cache { return m.cache }

// Disk exposes the persistent result store; nil when none is attached.
func (m *Manager) Disk() *DiskStore { return m.disk }

// lookup answers a key from memory, then from the disk store
// (promoting the hit into memory). The disk store does its own hit
// accounting; memory hits are counted by the caller.
func (m *Manager) lookup(key string) ([]byte, bool, bool) {
	if data, ok := m.cache.Get(key); ok {
		return data, true, true
	}
	if m.disk != nil {
		if data, ok := m.disk.Get(key); ok {
			m.cache.Put(key, data)
			return data, true, false
		}
	}
	return nil, false, false
}

// Lookup serves a result straight from the cache — the in-memory LRU
// first, then the persistent disk store when one is attached. It does
// not create a job; misses are uncounted (the caller follows up with
// Submit, which does the miss accounting).
func (m *Manager) Lookup(key string) ([]byte, bool) {
	data, ok, mem := m.lookup(key)
	if ok && mem {
		m.stats.Add(metrics.SvcCacheHit, 1)
	}
	return data, ok
}

// Submit admits a request. The returned job may already be terminal
// (cache hit), may be shared with earlier identical submissions
// (singleflight), or may be freshly queued. ErrQueueFull and
// ErrDraining reject without a job.
func (m *Manager) Submit(req Request) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	// Cache check (memory, then disk) under the manager lock so a
	// result installed between check and enqueue cannot be missed.
	if data, ok, mem := m.lookup(req.Key); ok {
		if mem {
			m.stats.Add(metrics.SvcCacheHit, 1)
		}
		j := m.newJobLocked(req)
		j.cellsDone.Store(uint64(req.Cells))
		j.state = StateDone
		j.data = data
		close(j.done)
		j.cancel() // release the context before the job is ever run
		m.rememberFinishedLocked(j)
		m.tenants.Add(req.Tenant, metrics.TenantDone, 1)
		return j, nil
	}
	if j, ok := m.inflight[req.Key]; ok {
		m.stats.Add(metrics.SvcCacheDedup, 1)
		return j, nil
	}
	// Real work from here on: charge the tenant's token bucket before
	// allocating anything.
	if m.limiter != nil {
		if wait, ok := m.limiter.take(req.Tenant); !ok {
			m.stats.Add(metrics.SvcRateLimited, 1)
			m.tenants.Add(req.Tenant, metrics.TenantRateLimited, 1)
			return nil, &RateLimitError{Tenant: req.Tenant, RetryAfter: wait}
		}
	}
	j := m.newJobLocked(req)
	if !m.queue.push(j) {
		delete(m.jobs, j.ID)
		j.cancel()
		if m.limiter != nil {
			m.limiter.refund(req.Tenant) // the tenant shouldn't pay for our full queue
		}
		m.stats.Add(metrics.SvcJobsRejected, 1)
		m.tenants.Add(req.Tenant, metrics.TenantRejected, 1)
		return nil, ErrQueueFull
	}
	m.inflight[req.Key] = j
	m.stats.Add(metrics.SvcCacheMiss, 1)
	m.stats.Add(metrics.SvcJobsAccepted, 1)
	m.tenants.Add(req.Tenant, metrics.TenantAccepted, 1)
	return j, nil
}

// newJobLocked allocates and registers a job; m.mu must be held.
func (m *Manager) newJobLocked(req Request) *Job {
	m.nextID++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		ID:     fmt.Sprintf("j%06d", m.nextID),
		Key:    req.Key,
		Label:  req.Label,
		Cells:  req.Cells,
		Tenant: req.Tenant,
		events: newEventStream(),
		cancel: cancel,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	j.run = req.Do
	j.jobCtx = ctx
	m.jobs[j.ID] = j
	return j
}

// rememberFinishedLocked records a terminal job for polling and
// forgets the oldest beyond the retention bound; m.mu must be held.
func (m *Manager) rememberFinishedLocked(j *Job) {
	m.finished = append(m.finished, j.ID)
	for len(m.finished) > m.cfg.KeepFinished {
		delete(m.jobs, m.finished[0])
		m.finished = m.finished[1:]
	}
}

// Get returns a tracked job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a queued or running job. It returns
// false if the job is unknown or already terminal. The job reaches
// StateCanceled asynchronously (a running simulation stops at its next
// cancellation check).
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if terminal {
		return false
	}
	j.cancel()
	return true
}

// Wait blocks until the job is terminal or ctx expires, returning the
// result document. A ctx expiry abandons the wait, not the job.
func (m *Manager) Wait(ctx context.Context, j *Job) ([]byte, error) {
	select {
	case <-j.Done():
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth reports capacity and current length, for Retry-After
// estimates and /healthz documents.
func (m *Manager) QueueDepth() (length, capacity int) {
	return m.queue.len(), m.cfg.QueueDepth
}

// Drain stops admissions, lets queued and running jobs finish, and
// returns when the pool is idle. If ctx expires first, remaining jobs
// are canceled and ctx.Err() is returned after the workers exit.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.queue.close() // queued jobs stay poppable; workers drain them
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		m.baseCancel() // hard-cancel in-flight jobs
		<-idle
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *Job) {
	defer j.cancel()
	finish := func(state State, data []byte, err error) {
		m.mu.Lock()
		delete(m.inflight, j.Key)
		j.finish(state, data, err)
		m.rememberFinishedLocked(j)
		m.mu.Unlock()
	}
	ctx := j.jobCtx
	if err := ctx.Err(); err != nil {
		// Canceled while still queued.
		m.stats.Add(metrics.SvcJobsCanceled, 1)
		finish(StateCanceled, nil, context.Canceled)
		return
	}
	if m.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
		defer cancel()
	}
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	m.stats.Add(metrics.SvcSimRuns, 1)
	data, err := j.run(ctx, func(cell []byte) {
		j.cellsDone.Add(1)
		if cell != nil {
			j.events.publish("cell", cell, "")
		}
	})
	switch {
	case err == nil:
		m.cache.Put(j.Key, data)
		if m.disk != nil {
			m.disk.Put(j.Key, data)
		}
		m.stats.Add(metrics.SvcJobsDone, 1)
		m.tenants.Add(j.Tenant, metrics.TenantDone, 1)
		finish(StateDone, data, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.stats.Add(metrics.SvcJobsCanceled, 1)
		finish(StateCanceled, nil, err)
	default:
		m.stats.Add(metrics.SvcJobsFailed, 1)
		finish(StateFailed, nil, err)
	}
}
