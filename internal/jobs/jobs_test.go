package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rampage/internal/metrics"
)

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// countedRequest returns a request whose Do records its invocations.
func countedRequest(key string, calls *int, mu *sync.Mutex) Request {
	return Request{
		Key:   key,
		Label: "test:" + key,
		Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			mu.Lock()
			*calls++
			mu.Unlock()
			progress(nil)
			return []byte("result-" + key), nil
		},
	}
}

func TestSubmitComputesThenServesFromCache(t *testing.T) {
	var stats metrics.ServiceStats
	var mu sync.Mutex
	calls := 0
	m := NewManager(Config{Workers: 2, QueueDepth: 8, Stats: &stats})
	defer m.Drain(waitCtx(t))

	j1, err := m.Submit(countedRequest("k1", &calls, &mu))
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Wait(waitCtx(t), j1)
	if err != nil || string(data) != "result-k1" {
		t.Fatalf("first run = (%q, %v)", data, err)
	}
	if st := j1.Status(); st.State != StateDone || st.CellsDone != 1 {
		t.Errorf("first job status = %+v", st)
	}

	// Second identical submission: a cache hit, served as an
	// already-terminal job with no new simulation.
	j2, err := m.Submit(countedRequest("k1", &calls, &mu))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	default:
		t.Fatal("cache-hit job not immediately terminal")
	}
	data2, err := j2.Result()
	if err != nil || !bytes.Equal(data, data2) {
		t.Fatalf("cached result = (%q, %v)", data2, err)
	}
	if calls != 1 {
		t.Errorf("Do ran %d times, want 1", calls)
	}
	if stats.Get(metrics.SvcCacheHit) != 1 || stats.Get(metrics.SvcCacheMiss) != 1 || stats.Get(metrics.SvcSimRuns) != 1 {
		t.Errorf("counters = %v", stats.Snapshot())
	}
}

// TestSingleflight pins the headline concurrency guarantee: 16
// concurrent identical submissions run exactly one computation and all
// observe the same bytes.
func TestSingleflight(t *testing.T) {
	var stats metrics.ServiceStats
	var mu sync.Mutex
	calls := 0
	release := make(chan struct{})
	m := NewManager(Config{Workers: 4, QueueDepth: 32, Stats: &stats})
	defer m.Drain(waitCtx(t))

	req := Request{
		Key:   "shared",
		Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			<-release // hold the job in-flight until all submissions land
			progress(nil)
			return []byte("shared-result"), nil
		},
	}

	const n = 16
	jobsCh := make(chan *Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := m.Submit(req)
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			jobsCh <- j
		}()
	}
	wg.Wait()
	close(release)
	close(jobsCh)

	got := 0
	for j := range jobsCh {
		data, err := m.Wait(waitCtx(t), j)
		if err != nil || string(data) != "shared-result" {
			t.Errorf("wait = (%q, %v)", data, err)
		}
		got++
	}
	if got != n {
		t.Fatalf("got %d results, want %d", got, n)
	}
	if calls != 1 {
		t.Errorf("computation ran %d times, want 1", calls)
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != 1 {
		t.Errorf("sim_runs = %d, want 1", runs)
	}
	if dedups := stats.Get(metrics.SvcCacheDedup); dedups != n-1 {
		t.Errorf("dedups = %d, want %d", dedups, n-1)
	}
}

func TestQueueFullRejects(t *testing.T) {
	var stats metrics.ServiceStats
	block := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 1, Stats: &stats})
	defer func() {
		close(block)
		m.Drain(waitCtx(t))
	}()

	blocking := func(key string) Request {
		return Request{Key: key, Cells: 1, Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return []byte(key), nil
		}}
	}
	// First job occupies the worker (poll until it leaves the queue),
	// second fills the one-deep queue, third must bounce.
	if _, err := m.Submit(blocking("a")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n, _ := m.QueueDepth(); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(blocking("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(blocking("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if rej := stats.Get(metrics.SvcJobsRejected); rej != 1 {
		t.Errorf("jobs_rejected = %d, want 1", rej)
	}
}

func TestCancelRunningJob(t *testing.T) {
	var stats metrics.ServiceStats
	started := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	defer m.Drain(waitCtx(t))

	j, err := m.Submit(Request{Key: "slow", Cells: 1, Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !m.Cancel(j.ID) {
		t.Fatal("cancel refused")
	}
	if _, err := m.Wait(waitCtx(t), j); !errors.Is(err, context.Canceled) {
		t.Errorf("wait err = %v, want Canceled", err)
	}
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
	if m.Cancel(j.ID) {
		t.Error("cancel of terminal job reported true")
	}
	if stats.Get(metrics.SvcJobsCanceled) != 1 {
		t.Errorf("jobs_canceled = %d, want 1", stats.Get(metrics.SvcJobsCanceled))
	}
}

func TestJobTimeout(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 2, JobTimeout: 20 * time.Millisecond})
	defer m.Drain(waitCtx(t))
	j, err := m.Submit(Request{Key: "stuck", Cells: 1, Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), j); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("wait err = %v, want DeadlineExceeded", err)
	}
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
}

func TestFailedJobNotCached(t *testing.T) {
	var stats metrics.ServiceStats
	var mu sync.Mutex
	calls := 0
	m := NewManager(Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	defer m.Drain(waitCtx(t))

	failing := Request{Key: "flaky", Cells: 1, Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return []byte("recovered"), nil
	}}
	j1, err := m.Submit(failing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), j1); err == nil {
		t.Fatal("first attempt should fail")
	}
	if st := j1.Status(); st.State != StateFailed || st.Error == "" {
		t.Errorf("status = %+v", st)
	}
	// Failure must not poison the cache: a retry re-runs and succeeds.
	j2, err := m.Submit(failing)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := m.Wait(waitCtx(t), j2); err != nil || string(data) != "recovered" {
		t.Fatalf("retry = (%q, %v)", data, err)
	}
	if stats.Get(metrics.SvcJobsFailed) != 1 || stats.Get(metrics.SvcJobsDone) != 1 {
		t.Errorf("counters = %v", stats.Snapshot())
	}
}

func TestDrainRefusesNewWorkAndFinishesOld(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	j, err := m.Submit(countedRequest("d1", &calls, &mu))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(waitCtx(t)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Queued work finished during the drain.
	if data, err := j.Result(); err != nil || string(data) != "result-d1" {
		t.Errorf("drained job result = (%q, %v)", data, err)
	}
	if _, err := m.Submit(countedRequest("d2", &calls, &mu)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit err = %v, want ErrDraining", err)
	}
	// Drain is idempotent.
	if err := m.Drain(waitCtx(t)); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestDrainDeadlineCancelsStuckJobs(t *testing.T) {
	started := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 2})
	j, err := m.Submit(Request{Key: "stuck", Cells: 1, Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
		close(started)
		<-ctx.Done() // only cancellation releases this job
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err = %v, want DeadlineExceeded", err)
	}
	<-j.Done()
	if st := j.Status(); st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
}

func TestGetAndFinishedRetention(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	m := NewManager(Config{Workers: 1, QueueDepth: 8, KeepFinished: 2})
	defer m.Drain(waitCtx(t))

	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		j, err := m.Submit(countedRequest(fmt.Sprintf("r%d", i), &calls, &mu))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(waitCtx(t), j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest finished job still tracked beyond KeepFinished")
	}
	for _, id := range ids[1:] {
		if _, ok := m.Get(id); !ok {
			t.Errorf("job %s fell out of retention early", id)
		}
	}
	if _, ok := m.Get("j999999"); ok {
		t.Error("unknown ID resolved")
	}
}

// TestCancelQueuedJobDuringDrain pins the shutdown ordering when a
// cancel races a drain: with the queue closed and a job still queued
// behind a running one, Cancel must take effect (the queued job ends
// canceled, never runs) and Drain must still return cleanly — the
// worker drains the closed queue, observing the pre-canceled context,
// rather than deadlocking or running canceled work. Run under -race.
func TestCancelQueuedJobDuringDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	a, err := m.Submit(Request{Key: "a", Label: "test:a", Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			close(started)
			select {
			case <-release:
				progress(nil)
				return []byte("result-a"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // a occupies the sole worker
	ranB := false
	b, err := m.Submit(Request{Key: "b", Label: "test:b", Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			ranB = true
			return []byte("result-b"), nil
		}})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- m.Drain(waitCtx(t)) }()
	// Wait until the drain has closed admissions, so the cancel below
	// genuinely lands while Drain is in flight.
	for {
		m.mu.Lock()
		draining := m.draining
		m.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if !m.Cancel(b.ID) {
		t.Fatal("Cancel(b) = false for a queued job mid-drain")
	}
	close(release) // let a finish; the worker then drains b

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if data, err := a.Result(); err != nil || string(data) != "result-a" {
		t.Errorf("running job a = (%q, %v), want it to finish during drain", data, err)
	}
	<-b.Done()
	if st := b.Status(); st.State != StateCanceled {
		t.Errorf("queued job b state = %s, want canceled", st.State)
	}
	if _, err := b.Result(); !errors.Is(err, context.Canceled) {
		t.Errorf("b result err = %v, want context.Canceled", err)
	}
	if ranB {
		t.Error("canceled queued job b still executed its Do")
	}
}
