package jobs

import (
	"fmt"
	"sync"
	"time"
)

// RateLimitError rejects a submission whose tenant token bucket is
// empty. RetryAfter is the time until the bucket refills enough for
// one job; the HTTP layer rounds it up into a Retry-After header.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("jobs: tenant %q rate limited (retry in %s)", e.Tenant, e.RetryAfter)
}

// tenantFIFO is one tenant's queued jobs plus its round-robin state.
type tenantFIFO struct {
	name   string
	jobs   []*Job
	served int // dequeues consumed in the current ring visit
}

// fairQueue is a bounded multi-tenant job queue with weighted
// round-robin dequeue. Each tenant gets its own FIFO; pop visits
// tenants in ring order, letting a tenant dequeue up to its weight
// before the cursor advances, so a tenant that floods the queue can
// never starve another — the light tenant's next job is at the head of
// its own FIFO and at most one ring rotation away. The total capacity
// bound is shared (a full queue rejects regardless of tenant); the
// fairness property is about ordering, the per-tenant token buckets
// about admission.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	size     int
	closed   bool
	byName   map[string]*tenantFIFO
	ring     []*tenantFIFO // tenants with queued jobs, visit order
	cursor   int
	weight   func(tenant string) int // nil or <1 results mean weight 1
}

func newFairQueue(capacity int, weight func(string) int) *fairQueue {
	q := &fairQueue{
		capacity: capacity,
		byName:   make(map[string]*tenantFIFO),
		weight:   weight,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job under its tenant. It reports false when the
// queue is at capacity or closed.
func (q *fairQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size >= q.capacity {
		return false
	}
	t := q.byName[j.Tenant]
	if t == nil {
		t = &tenantFIFO{name: j.Tenant}
		q.byName[j.Tenant] = t
	}
	if len(t.jobs) == 0 {
		t.served = 0
		q.ring = append(q.ring, t)
	}
	t.jobs = append(t.jobs, j)
	q.size++
	q.cond.Signal()
	return true
}

// pop blocks until a job is available or the queue is closed and
// empty. After close it keeps returning queued jobs until the queue
// drains — the manager's Drain relies on that.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	if q.cursor >= len(q.ring) {
		q.cursor = 0
	}
	t := q.ring[q.cursor]
	j := t.jobs[0]
	t.jobs[0] = nil // release the reference for GC
	t.jobs = t.jobs[1:]
	t.served++
	q.size--
	w := 1
	if q.weight != nil {
		if v := q.weight(t.name); v > 0 {
			w = v
		}
	}
	if len(t.jobs) == 0 {
		q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
		delete(q.byName, t.name)
		// The cursor now indexes the tenant that followed t.
	} else if t.served >= w {
		t.served = 0
		q.cursor++
	}
	if q.cursor >= len(q.ring) {
		q.cursor = 0
	}
	return j, true
}

// close stops admissions and wakes blocked poppers; queued jobs remain
// poppable until drained.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// len returns the number of queued jobs.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// tokenBucket is one tenant's admission budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter applies a classic token bucket per tenant: rate tokens
// per second accrue up to burst, one token per admitted job. The map
// is bounded the same way TenantStats is — a client inventing fresh
// tenant names per request shares the overflow bucket rather than
// growing the map and dodging the limit.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time // test hook; time.Now when nil
}

const maxTrackedBuckets = 256

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

func (l *rateLimiter) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

// take spends one token from the tenant's bucket. On an empty bucket
// it reports false with the refill time for one token.
func (l *rateLimiter) take(tenant string) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTrackedBuckets {
			tenant = overflowBucket
			b = l.buckets[tenant]
		}
		if b == nil {
			b = &tokenBucket{tokens: l.burst, last: now}
			l.buckets[tenant] = b
		}
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return wait, false
	}
	b.tokens--
	return 0, true
}

// refund returns one token — used when a charged submission then fails
// admission for a reason the tenant should not pay for (queue full).
func (l *rateLimiter) refund(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = l.buckets[overflowBucket] // where take folded the charge
	}
	if b != nil {
		b.tokens++
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
}

const overflowBucket = "other"
