package jobs

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rampage/internal/metrics"
)

func newDisk(t *testing.T, budget int64) (*DiskStore, string, *metrics.ServiceStats) {
	t.Helper()
	dir := t.TempDir()
	stats := &metrics.ServiceStats{}
	s, err := NewDiskStore(dir, budget, stats)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir, stats
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s, _, stats := newDisk(t, 0)
	want := []byte(`{"doc":"payload"}`)
	s.Put("key-a", want)
	got, ok := s.Get("key-a")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, want)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) hit")
	}
	if h := stats.Get(metrics.SvcDiskHit); h != 1 {
		t.Errorf("disk_hits = %d, want 1", h)
	}
	if st := stats.Get(metrics.SvcDiskStore); st != 1 {
		t.Errorf("disk_stores = %d, want 1", st)
	}
}

// TestDiskStoreCrashSafety pins the serving guarantee: a partial or
// corrupted write must never come back from Get. Torn files read as
// misses and are deleted; leftover temp files from a crashed writer
// are swept on open.
func TestDiskStoreCrashSafety(t *testing.T) {
	s, dir, _ := newDisk(t, 0)
	payload := []byte(strings.Repeat("x", 4096))
	s.Put("victim", payload)

	// Find the published file and tear it: truncate to half, as if the
	// machine died mid-write of a non-atomic writer.
	files, err := filepath.Glob(filepath.Join(dir, "*"+diskFileExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, %d files", err, len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("victim"); ok {
		t.Fatal("Get served a truncated file")
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Errorf("truncated file not deleted: %v", err)
	}

	// Corrupt one payload byte (size unchanged): checksum must catch it.
	s.Put("victim2", payload)
	files, _ = filepath.Glob(filepath.Join(dir, "*"+diskFileExt))
	if len(files) != 1 {
		t.Fatalf("%d files, want 1", len(files))
	}
	raw, _ = os.ReadFile(files[0])
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("victim2"); ok {
		t.Fatal("Get served a corrupted file")
	}

	// A crashed writer's temp file must be cleaned on open and a torn
	// published file must not be indexed.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn"+diskFileExt), []byte("RRS1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 0 {
		t.Errorf("recovered %d entries from torn files, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Error("temp file survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "torn"+diskFileExt)); !os.IsNotExist(err) {
		t.Error("torn file survived recovery")
	}
}

// TestDiskStoreGC pins the byte budget: least-recently-used documents
// (files included) go first, the footprint lands under budget, and
// evictions are counted.
func TestDiskStoreGC(t *testing.T) {
	val := []byte(strings.Repeat("v", 1000))
	one := int64(len(encodeDisk("k00", val))) // all keys same length
	s, dir, stats := newDisk(t, 3*one)
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%02d", i), val)
	}
	if got := s.Bytes(); got > 3*one {
		t.Errorf("Bytes = %d, want <= %d", got, 3*one)
	}
	if n := s.Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+diskFileExt))
	if len(files) != 3 {
		t.Errorf("%d files on disk, want 3", len(files))
	}
	// Oldest two evicted; newest three remain.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%02d", i)); ok {
			t.Errorf("k%02d survived GC", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%02d", i)); !ok {
			t.Errorf("k%02d evicted, want kept", i)
		}
	}
	if ev := stats.Get(metrics.SvcDiskEvict); ev != 2 {
		t.Errorf("disk_evictions = %d, want 2", ev)
	}

	// A Get refreshes recency: touch the oldest survivor, add one more,
	// and the untouched middle entry is the eviction victim.
	s.Get("k02")
	s.Put("k05", val)
	if _, ok := s.Get("k03"); ok {
		t.Error("k03 survived; want it evicted as LRU")
	}
	if _, ok := s.Get("k02"); !ok {
		t.Error("recently read k02 evicted")
	}

	// A value bigger than the whole budget is refused outright.
	s.Put("huge", bytes.Repeat([]byte("h"), int(4*one)))
	if _, ok := s.Get("huge"); ok {
		t.Error("over-budget value stored")
	}
}

// TestDiskStoreRestartRecovery pins persistence: a new store over the
// same directory re-indexes everything with identical bytes, and its
// LRU order (from mtimes) matches the writing store's.
func TestDiskStoreRestartRecovery(t *testing.T) {
	s, dir, _ := newDisk(t, 0)
	vals := map[string][]byte{}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("key-%d", i)
		vals[key] = []byte(strings.Repeat(fmt.Sprintf("%d", i), 100+i))
		s.Put(key, vals[key])
	}

	s2, err := NewDiskStore(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 4 {
		t.Fatalf("recovered Len = %d, want 4", n)
	}
	if s2.Bytes() != s.Bytes() {
		t.Errorf("recovered Bytes = %d, want %d", s2.Bytes(), s.Bytes())
	}
	for key, want := range vals {
		got, ok := s2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("recovered Get(%s) = %q, %v; want %q", key, got, ok, want)
		}
	}

	// Recovery must preserve LRU order, which it reads from mtimes.
	// Spread them explicitly (Get above just refreshed them all in map
	// order), then reopen with a budget that only fits the two newest
	// entries and confirm the two oldest fall out.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(fmt.Sprintf("key-%d", i)), when, when); err != nil {
			t.Fatal(err)
		}
	}
	budget := int64(len(encodeDisk("key-2", vals["key-2"])) + len(encodeDisk("key-3", vals["key-3"])))
	s3, err := NewDiskStore(dir, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s3.Get("key-0"); ok {
		t.Error("key-0 (oldest mtime) survived budgeted recovery")
	}
	if _, ok := s3.Get("key-3"); !ok {
		t.Error("key-3 (newest mtime) evicted by budgeted recovery")
	}
}

// TestManagerDiskIntegration pins the lookup chain: a result computed
// once is written through to disk; after the in-memory cache is gone
// (fresh manager, same disk), the disk answers and the job never
// re-runs.
func TestManagerDiskIntegration(t *testing.T) {
	dir := t.TempDir()
	stats := &metrics.ServiceStats{}
	disk, err := NewDiskStore(dir, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	var runs int
	req := Request{
		Key:   "cell-1",
		Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			runs++
			progress(nil)
			return []byte("result-bytes"), nil
		},
	}

	m1 := NewManager(Config{Workers: 1, QueueDepth: 4, Stats: stats, Disk: disk})
	j, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m1.Wait(context.Background(), j)
	if err != nil || !bytes.Equal(data, []byte("result-bytes")) {
		t.Fatalf("Wait = %q, %v", data, err)
	}
	drain(t, m1)
	if runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
	if _, ok := disk.Get("cell-1"); !ok {
		t.Fatal("result not written through to disk")
	}

	// Fresh manager, same disk: Lookup hits disk, promotes to memory,
	// and Submit never executes.
	disk2, err := NewDiskStore(dir, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Config{Workers: 1, QueueDepth: 4, Stats: stats, Disk: disk2})
	got, ok := m2.Lookup("cell-1")
	if !ok || !bytes.Equal(got, []byte("result-bytes")) {
		t.Fatalf("Lookup after restart = %q, %v", got, ok)
	}
	j2, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if data, err := m2.Wait(context.Background(), j2); err != nil || !bytes.Equal(data, []byte("result-bytes")) {
		t.Fatalf("Wait after restart = %q, %v", data, err)
	}
	drain(t, m2)
	if runs != 1 {
		t.Errorf("runs = %d after restart, want 1 (disk hit should skip execution)", runs)
	}
}

func drain(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}
