package jobs

import (
	"container/list"
	"sync"

	"rampage/internal/metrics"
)

// Cache is the content-addressed result store: serialized report
// documents keyed by the canonical request hash (harness.RunKey /
// harness.ExperimentKey). Because keys cover every result-affecting
// field and the simulator is deterministic, a cached document is
// byte-identical to what re-running the request would produce — so the
// cache can answer requests forever, bounded only by the byte budget.
// Recency-ordered (LRU) eviction keeps the hot experiments resident.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64 // <= 0 means unlimited
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	stats  *metrics.ServiceStats
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns a cache that evicts least-recently-used entries
// once stored bytes exceed budgetBytes (<= 0 disables the budget).
// stats may be nil; evictions are counted under SvcCacheEvict.
func NewCache(budgetBytes int64, stats *metrics.ServiceStats) *Cache {
	return &Cache{
		budget: budgetBytes,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		stats:  stats,
	}
}

// Get returns the cached document for a key and marks it recently
// used. The caller owns hit/miss accounting (the jobs manager counts a
// miss only when it actually starts a computation).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a document under its content hash. A value larger than
// the whole budget is not stored (it would evict everything and still
// break the bound). Callers must not mutate val after handing it over.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := int64(len(val))
	if c.budget > 0 && size > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		// Same key means same content, but replace anyway so a
		// re-serialized document refreshes recency.
		c.used += size - int64(len(el.Value.(*cacheEntry).val))
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.used += size
	}
	for c.budget > 0 && c.used > c.budget && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= int64(len(ent.val))
	c.stats.Add(metrics.SvcCacheEvict, 1)
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident byte total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
