package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// TestEventStreamReplayAndTail checks the core subscribe contract:
// history beyond the cursor is replayed, the live tail follows in
// order, and the channel closes after the terminal event.
func TestEventStreamReplayAndTail(t *testing.T) {
	s := newEventStream()
	s.publish("cell", json.RawMessage(`{"index":0}`), "")
	s.publish("cell", json.RawMessage(`{"index":1}`), "")

	replay, tail, cancel := s.Subscribe(0, 8)
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 1 || replay[1].Seq != 2 {
		t.Fatalf("replay = %+v, want seqs 1,2", replay)
	}
	s.publish("cell", json.RawMessage(`{"index":2}`), "")
	s.publish(string(StateDone), nil, "")

	e := <-tail
	if e.Seq != 3 || e.Type != "cell" {
		t.Fatalf("tail event = %+v, want cell seq 3", e)
	}
	e = <-tail
	if e.Seq != 4 || !e.Terminal() {
		t.Fatalf("tail event = %+v, want terminal seq 4", e)
	}
	if _, ok := <-tail; ok {
		t.Fatal("channel still open after the terminal event")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

// TestEventStreamResume checks a cursor skips already-seen history and
// that subscribing to an ended stream returns no live tail.
func TestEventStreamResume(t *testing.T) {
	s := newEventStream()
	for i := 0; i < 3; i++ {
		s.publish("cell", json.RawMessage(fmt.Sprintf(`{"index":%d}`, i)), "")
	}
	s.publish(string(StateDone), nil, "")

	replay, tail, cancel := s.Subscribe(2, 8)
	defer cancel()
	if tail != nil {
		t.Fatal("ended stream returned a live tail")
	}
	if len(replay) != 2 || replay[0].Seq != 3 || !replay[1].Terminal() {
		t.Fatalf("resumed replay = %+v, want seqs 3,4 ending terminal", replay)
	}
	// Publishing after the terminal event is a no-op.
	s.publish("cell", nil, "")
	if s.Len() != 4 {
		t.Fatalf("Len after post-terminal publish = %d, want 4", s.Len())
	}
}

// TestEventStreamSlowSubscriberDropped checks the backpressure rule: a
// subscriber that falls more than its buffer behind is dropped (its
// channel closes without a terminal event) and can resume by sequence
// without missing anything.
func TestEventStreamSlowSubscriberDropped(t *testing.T) {
	s := newEventStream()
	_, tail, cancel := s.Subscribe(0, 1)
	defer cancel()

	s.publish("cell", json.RawMessage(`{"index":0}`), "") // fills the buffer
	s.publish("cell", json.RawMessage(`{"index":1}`), "") // overflows: subscriber dropped

	e, ok := <-tail
	if !ok || e.Seq != 1 {
		t.Fatalf("first receive = (%+v, %v), want seq 1", e, ok)
	}
	if _, ok := <-tail; ok {
		t.Fatal("dropped subscriber's channel still open")
	}

	// Resume from the last seen sequence: nothing is missed.
	replay, _, cancel2 := s.Subscribe(e.Seq, 8)
	defer cancel2()
	if len(replay) != 1 || replay[0].Seq != 2 {
		t.Fatalf("resumed replay = %+v, want seq 2", replay)
	}
}

// TestJobPublishesCellsAndTerminal runs a job through the manager and
// checks its stream carries the cell payloads in order plus the done
// terminal event, while count-only progress (nil payload) bumps the
// counter without an event.
func TestJobPublishesCellsAndTerminal(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	defer m.Drain(waitCtx(t))

	j, err := m.Submit(Request{Key: "stream-job", Cells: 3,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			progress([]byte(`{"index":0}`))
			progress(nil) // count-only
			progress([]byte(`{"index":2}`))
			return []byte("doc"), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), j); err != nil {
		t.Fatal(err)
	}
	replay, _, cancel := j.Events().Subscribe(0, 8)
	defer cancel()
	if len(replay) != 3 {
		t.Fatalf("events = %+v, want 2 cells + terminal", replay)
	}
	if replay[0].Type != "cell" || string(replay[0].Cell) != `{"index":0}` {
		t.Errorf("event 1 = %+v", replay[0])
	}
	if replay[1].Type != "cell" || string(replay[1].Cell) != `{"index":2}` {
		t.Errorf("event 2 = %+v", replay[1])
	}
	if replay[2].Type != string(StateDone) {
		t.Errorf("terminal event = %+v", replay[2])
	}
	if st := j.Status(); st.CellsDone != 3 {
		t.Errorf("cells done = %d, want 3 (nil progress still counts)", st.CellsDone)
	}
}

// TestJobFailurePublishesError checks the terminal event of a failed
// job carries the error text.
func TestJobFailurePublishesError(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	defer m.Drain(waitCtx(t))

	j, err := m.Submit(Request{Key: "fail-job", Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			return nil, fmt.Errorf("boom")
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	replay, _, cancel := j.Events().Subscribe(0, 4)
	defer cancel()
	if len(replay) != 1 || replay[0].Type != string(StateFailed) || replay[0].Error != "boom" {
		t.Fatalf("failed job events = %+v, want one failed event carrying the error", replay)
	}
}
