package jobs

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rampage/internal/metrics"
)

// DiskStore is the persistent layer behind the in-memory result LRU:
// content-addressed documents as one file per key, so results survive
// restarts and are deduplicated fleet-wide (a worker, the coordinator
// and a restarted coordinator all address the same bytes by the same
// canonical hash). The guarantees a serving cache needs from disk:
//
//   - Crash safety: documents are written to a temp file and published
//     with an atomic rename, so a partially written file is never
//     visible under its final name. Leftover temp files are removed on
//     startup.
//   - Integrity: every file carries a checksum over key and payload; a
//     corrupt or truncated file reads as a miss and is deleted rather
//     than served.
//   - Bounded footprint: a byte budget is enforced by LRU GC — least
//     recently used documents are removed first.
//   - Restart recovery: opening a store over an existing directory
//     re-indexes the files (recency approximated by mtime) without
//     reading payloads.
//
// All methods are safe for concurrent use.
type DiskStore struct {
	dir    string
	budget int64 // <= 0 means unlimited
	stats  *metrics.ServiceStats

	mu    sync.Mutex
	used  int64
	ll    *list.List // *diskEntry, front = most recently used
	items map[string]*list.Element
}

type diskEntry struct {
	key  string
	size int64 // on-disk file size (header + payload)
}

// File format: magic, little-endian key length, key bytes, SHA-256 of
// (key || payload), payload.
var diskMagic = []byte("RRS1")

const diskHeaderMin = 4 + 4 + sha256.Size

// diskFileExt marks result files; anything else in the directory is
// ignored (temp files are cleaned up on startup).
const diskFileExt = ".res"

// NewDiskStore opens (creating if needed) a store rooted at dir with
// the given byte budget (<= 0 = unlimited). Existing result files are
// re-indexed by modification time; leftover temp files from a crashed
// writer are deleted. stats may be nil.
func NewDiskStore(dir string, budgetBytes int64, stats *metrics.ServiceStats) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: disk store: %w", err)
	}
	s := &DiskStore{
		dir:    dir,
		budget: budgetBytes,
		stats:  stats,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-indexes the directory: result files become entries
// (oldest mtime = least recently used), temp files are removed. Keys
// are read from the file headers, so the index survives any renaming
// scheme change. Unreadable or malformed files are deleted — they
// would read as misses anyway.
func (s *DiskStore) recover() error {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("jobs: disk store: %w", err)
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var files []found
	for _, de := range dirents {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		if !strings.HasSuffix(de.Name(), diskFileExt) {
			// Temp files (and any other stray name) from a crashed
			// writer: never published, safe to delete.
			if strings.HasPrefix(de.Name(), ".tmp-") {
				os.Remove(path)
			}
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		key, ok := readDiskKey(path)
		if !ok {
			os.Remove(path)
			continue
		}
		files = append(files, found{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	for _, f := range files {
		if el, ok := s.items[f.key]; ok {
			// Duplicate key (should not happen): keep the newer file.
			s.used -= el.Value.(*diskEntry).size
			s.ll.Remove(el)
		}
		s.items[f.key] = s.ll.PushFront(&diskEntry{key: f.key, size: f.size})
		s.used += f.size
	}
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// path returns the file name for a key. Keys are hashed into the name
// (they may contain suffixes like ":metrics"); the authoritative key
// lives in the file header.
func (s *DiskStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+diskFileExt)
}

// encodeDisk renders the on-disk representation of (key, val).
func encodeDisk(key string, val []byte) []byte {
	buf := make([]byte, 0, diskHeaderMin+len(key)+len(val))
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(val)
	buf = h.Sum(buf)
	return append(buf, val...)
}

// decodeDisk parses and verifies a file's bytes, returning the payload.
func decodeDisk(key string, raw []byte) ([]byte, bool) {
	gotKey, payload, ok := splitDisk(raw)
	if !ok || gotKey != key {
		return nil, false
	}
	return payload, true
}

// splitDisk parses the header, verifies the checksum and returns
// (key, payload).
func splitDisk(raw []byte) (string, []byte, bool) {
	if len(raw) < diskHeaderMin || !bytes.Equal(raw[:4], diskMagic) {
		return "", nil, false
	}
	klen := int(binary.LittleEndian.Uint32(raw[4:8]))
	if klen < 0 || len(raw) < diskHeaderMin+klen {
		return "", nil, false
	}
	key := string(raw[8 : 8+klen])
	sum := raw[8+klen : 8+klen+sha256.Size]
	payload := raw[8+klen+sha256.Size:]
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), sum) {
		return "", nil, false
	}
	return key, payload, true
}

// readDiskKey extracts the stored key from a file, verifying the full
// checksum (a partially flushed file must not be indexed).
func readDiskKey(path string) (string, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	key, _, ok := splitDisk(raw)
	return key, ok
}

// Get returns the stored document for a key. A missing, truncated or
// corrupt file is a miss; corrupt files are deleted. Hits count
// SvcDiskHit and refresh recency (in memory and, best-effort, on the
// file's mtime so recovery preserves LRU order).
func (s *DiskStore) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.dropLocked(el)
		return nil, false
	}
	val, ok := decodeDisk(key, raw)
	if !ok {
		s.dropLocked(el)
		return nil, false
	}
	s.ll.MoveToFront(el)
	now := time.Now()
	os.Chtimes(path, now, now) // best-effort recency for restart recovery
	s.stats.Add(metrics.SvcDiskHit, 1)
	return val, true
}

// Put stores a document under its content address: temp file in the
// same directory, then an atomic rename, so readers never observe a
// partial write. Re-putting an existing key refreshes recency only
// (content-addressed keys guarantee identical bytes). A value larger
// than the whole budget is not stored.
func (s *DiskStore) Put(key string, val []byte) {
	enc := encodeDisk(key, val)
	size := int64(len(enc))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && size > s.budget {
		return
	}
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.items[key] = s.ll.PushFront(&diskEntry{key: key, size: size})
	s.used += size
	s.stats.Add(metrics.SvcDiskStore, 1)
	s.gcLocked()
}

// gcLocked removes least-recently-used files until the store fits its
// budget. Caller holds the lock.
func (s *DiskStore) gcLocked() {
	for s.budget > 0 && s.used > s.budget && s.ll.Len() > 1 {
		el := s.ll.Back()
		if el == nil {
			return
		}
		s.dropLocked(el)
		s.stats.Add(metrics.SvcDiskEvict, 1)
	}
}

// dropLocked removes an entry and its file. Caller holds the lock.
func (s *DiskStore) dropLocked(el *list.Element) {
	ent := el.Value.(*diskEntry)
	s.ll.Remove(el)
	delete(s.items, ent.key)
	s.used -= ent.size
	os.Remove(s.path(ent.key))
}

// Len returns the number of stored documents.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the on-disk byte total (headers included).
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }
