package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rampage/internal/metrics"
)

// queuedJob builds a bare job for fairQueue unit tests.
func queuedJob(tenant, id string) *Job {
	return &Job{ID: id, Tenant: tenant}
}

// waitForQueueLen polls until the manager's queue settles at n jobs.
func waitForQueueLen(t *testing.T, m *Manager, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if length, _ := m.QueueDepth(); length == n {
			return
		}
		if time.Now().After(deadline) {
			length, _ := m.QueueDepth()
			t.Fatalf("queue never settled at depth %d (now %d)", n, length)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairQueueInterleavesTenants pins the starvation-freedom property
// at the queue level: a tenant that floods the queue first cannot push
// another tenant's lone job to the back. With equal weights the light
// tenant's job is the second dequeue no matter how deep the flood.
func TestFairQueueInterleavesTenants(t *testing.T) {
	q := newFairQueue(64, nil)
	for i := 0; i < 10; i++ {
		if !q.push(queuedJob("heavy", fmt.Sprintf("h%d", i))) {
			t.Fatal("push failed")
		}
	}
	if !q.push(queuedJob("light", "l0")) {
		t.Fatal("push failed")
	}
	var order []string
	for q.len() > 0 {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed with jobs queued")
		}
		order = append(order, j.ID)
	}
	if order[0] != "h0" || order[1] != "l0" {
		t.Fatalf("dequeue order %v, want the light job second", order)
	}
	// After the light tenant drains, the heavy tenant gets the rest in
	// FIFO order.
	for i, id := range order[2:] {
		if want := fmt.Sprintf("h%d", i+1); id != want {
			t.Fatalf("order[%d] = %s, want %s", i+2, id, want)
		}
	}
}

// TestFairQueueWeights checks a weighted tenant dequeues up to its
// weight per ring visit before the cursor moves on.
func TestFairQueueWeights(t *testing.T) {
	q := newFairQueue(64, func(tenant string) int {
		if tenant == "heavy" {
			return 2
		}
		return 1
	})
	for i := 0; i < 4; i++ {
		q.push(queuedJob("heavy", fmt.Sprintf("h%d", i)))
	}
	q.push(queuedJob("light", "l0"))
	var order []string
	for q.len() > 0 {
		j, _ := q.pop()
		order = append(order, j.ID)
	}
	want := []string{"h0", "h1", "l0", "h2", "h3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", order, want)
		}
	}
}

// TestFairQueueCapacityAndClose checks the shared capacity bound and
// that close keeps queued jobs poppable (Drain relies on it).
func TestFairQueueCapacityAndClose(t *testing.T) {
	q := newFairQueue(2, nil)
	if !q.push(queuedJob("a", "1")) || !q.push(queuedJob("b", "2")) {
		t.Fatal("pushes under capacity failed")
	}
	if q.push(queuedJob("c", "3")) {
		t.Fatal("push beyond capacity succeeded")
	}
	q.close()
	if q.push(queuedJob("a", "4")) {
		t.Fatal("push after close succeeded")
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close failed with jobs queued", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue returned a job")
	}
}

// TestLightTenantLatencyUnderFlood is the end-to-end fairness bound:
// with one worker, a heavy tenant floods the queue and a light tenant
// submits one job. Solo, the light job would wait for the single
// in-flight job to finish (one completion ahead of it); under the
// flood, fair queueing guarantees at most two heavy completions ahead
// of it — within 2x its solo latency, counted in completions rather
// than wall-clock so the assertion is deterministic under -race.
func TestLightTenantLatencyUnderFlood(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 32})
	defer m.Drain(waitCtx(t))

	var mu sync.Mutex
	var completions []string
	release := make(chan struct{})
	mkReq := func(tenant, key string) Request {
		return Request{
			Key:    key,
			Tenant: tenant,
			Cells:  1,
			Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				mu.Lock()
				completions = append(completions, key)
				mu.Unlock()
				progress(nil)
				return []byte(key), nil
			},
		}
	}

	// The blocker occupies the worker so every later submission queues
	// behind it deterministically.
	blocker, err := m.Submit(mkReq("heavy", "heavy-0"))
	if err != nil {
		t.Fatal(err)
	}
	var flood []*Job
	for i := 1; i <= 8; i++ {
		j, err := m.Submit(mkReq("heavy", fmt.Sprintf("heavy-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, j)
	}
	light, err := m.Submit(mkReq("light", "light-0"))
	if err != nil {
		t.Fatal(err)
	}

	close(release)
	if _, err := m.Wait(waitCtx(t), light); err != nil {
		t.Fatal(err)
	}
	for _, j := range append(flood, blocker) {
		if _, err := m.Wait(waitCtx(t), j); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	heavyAhead := 0
	for _, key := range completions {
		if key == "light-0" {
			break
		}
		heavyAhead++
	}
	// Solo the light job has one completion ahead of it (the in-flight
	// blocker); the fairness bound allows at most twice that.
	if heavyAhead > 2 {
		t.Fatalf("light job finished after %d heavy jobs (completions %v), want <= 2", heavyAhead, completions)
	}
}

// TestTenantRateLimit checks the token bucket: burst admissions pass,
// the next submission fails with a RateLimitError carrying a positive
// retry hint, and another tenant's bucket is unaffected.
func TestTenantRateLimit(t *testing.T) {
	var stats metrics.ServiceStats
	var tenants metrics.TenantStats
	// Refill is effectively frozen at this rate, so the test is not
	// racing the clock.
	m := NewManager(Config{
		Workers: 2, QueueDepth: 32,
		TenantRate: 1e-9, TenantBurst: 2,
		Stats: &stats, Tenants: &tenants,
	})
	defer m.Drain(waitCtx(t))

	quick := func(tenant, key string) Request {
		return Request{Key: key, Tenant: tenant, Cells: 1,
			Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
				progress(nil)
				return []byte(key), nil
			}}
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(quick("t", fmt.Sprintf("rl-%d", i))); err != nil {
			t.Fatalf("submission %d within burst: %v", i, err)
		}
	}
	_, err := m.Submit(quick("t", "rl-2"))
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("submission beyond burst = %v, want RateLimitError", err)
	}
	if rl.Tenant != "t" || rl.RetryAfter <= 0 {
		t.Fatalf("RateLimitError = %+v, want tenant t and a positive retry hint", rl)
	}
	if _, err := m.Submit(quick("u", "rl-3")); err != nil {
		t.Fatalf("other tenant's submission: %v", err)
	}
	if got := stats.Get(metrics.SvcRateLimited); got != 1 {
		t.Errorf("SvcRateLimited = %d, want 1", got)
	}
	if got := tenants.Get("t", metrics.TenantRateLimited); got != 1 {
		t.Errorf("tenant t rate-limited counter = %d, want 1", got)
	}
	if got := tenants.Get("t", metrics.TenantAccepted); got != 2 {
		t.Errorf("tenant t accepted counter = %d, want 2", got)
	}
}

// TestRateLimiterRefill drives the bucket with a fake clock: an empty
// bucket refills at the configured rate and the reported wait matches
// the deficit.
func TestRateLimiterRefill(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	l := newRateLimiter(2, 1) // 2 tokens/sec, burst 1
	l.now = func() time.Time { return now }

	if _, ok := l.take("t"); !ok {
		t.Fatal("first take from a full bucket failed")
	}
	wait, ok := l.take("t")
	if ok {
		t.Fatal("take from an empty bucket succeeded")
	}
	if want := 500 * time.Millisecond; wait != want {
		t.Fatalf("refill wait = %v, want %v", wait, want)
	}
	now = now.Add(600 * time.Millisecond)
	if _, ok := l.take("t"); !ok {
		t.Fatal("take after refill failed")
	}
	// Refill caps at burst: a long idle stretch doesn't bank tokens.
	now = now.Add(time.Hour)
	if _, ok := l.take("t"); !ok {
		t.Fatal("take after long idle failed")
	}
	if _, ok := l.take("t"); ok {
		t.Fatal("second take succeeded — refill exceeded burst")
	}
}

// TestQueueFullRefundsToken checks a submission rejected for a full
// queue does not also cost the tenant a token: the retry hits
// ErrQueueFull again instead of degrading into a rate-limit rejection.
func TestQueueFullRefundsToken(t *testing.T) {
	m := NewManager(Config{
		Workers: 1, QueueDepth: 1,
		TenantRate: 1e-9, TenantBurst: 3,
	})
	defer m.Drain(waitCtx(t))

	release := make(chan struct{})
	blocking := func(key string) Request {
		return Request{Key: key, Tenant: "t", Cells: 1,
			Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				progress(nil)
				return []byte(key), nil
			}}
	}
	// First job occupies the worker. Wait for the queue to empty before
	// the second submission: with capacity 1 it needs the slot.
	running, err := m.Submit(blocking("qf-0"))
	if err != nil {
		t.Fatal(err)
	}
	waitForQueueLen(t, m, 0)
	queued, err := m.Submit(blocking("qf-1"))
	if err != nil {
		t.Fatal(err)
	}
	// Worker busy + queue full, two of the three burst tokens spent.
	waitForQueueLen(t, m, 1)
	for i := 0; i < 2; i++ {
		_, err = m.Submit(blocking(fmt.Sprintf("qf-overflow-%d", i)))
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow submission %d = %v, want ErrQueueFull (token not refunded?)", i, err)
		}
	}
	close(release)
	if _, err := m.Wait(waitCtx(t), running); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(waitCtx(t), queued); err != nil {
		t.Fatal(err)
	}
}

// TestCancelQueuedJobNeverRuns cancels a job that is still queued
// behind a busy worker: its Do must never run, it reaches
// StateCanceled, and its event stream ends with a canceled terminal
// event.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	var stats metrics.ServiceStats
	m := NewManager(Config{Workers: 1, QueueDepth: 8, Stats: &stats})
	defer m.Drain(waitCtx(t))

	release := make(chan struct{})
	blocker, err := m.Submit(Request{Key: "cq-blocker", Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			progress(nil)
			return []byte("done"), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ran := false
	victim, err := m.Submit(Request{Key: "cq-victim", Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			mu.Lock()
			ran = true
			mu.Unlock()
			return []byte("never"), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(victim.ID) {
		t.Fatal("Cancel returned false for a queued job")
	}
	close(release)
	if _, err := m.Wait(waitCtx(t), blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case <-victim.Done():
	case <-waitCtx(t).Done():
		t.Fatal("canceled queued job never reached a terminal state")
	}
	if st := victim.Status(); st.State != StateCanceled {
		t.Fatalf("victim state = %s, want canceled", st.State)
	}
	mu.Lock()
	if ran {
		t.Error("canceled queued job's Do ran")
	}
	mu.Unlock()
	replay, tail, cancel := victim.Events().Subscribe(0, 4)
	defer cancel()
	if tail != nil {
		t.Error("terminal job's stream still has a live tail")
	}
	if len(replay) != 1 || replay[0].Type != string(StateCanceled) {
		t.Fatalf("victim events = %+v, want a single canceled terminal event", replay)
	}
	if got := stats.Get(metrics.SvcSimRuns); got != 1 {
		t.Errorf("sim runs = %d, want 1 (victim must not have run)", got)
	}
}
