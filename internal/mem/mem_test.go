package mem

import (
	"testing"
	"testing/quick"
)

func TestRefKindString(t *testing.T) {
	cases := []struct {
		k    RefKind
		want string
	}{
		{IFetch, "ifetch"},
		{Load, "load"},
		{Store, "store"},
		{RefKind(9), "RefKind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("RefKind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestRefKindIsData(t *testing.T) {
	if IFetch.IsData() {
		t.Error("IFetch.IsData() = true, want false")
	}
	if !Load.IsData() {
		t.Error("Load.IsData() = false, want true")
	}
	if !Store.IsData() {
		t.Error("Store.IsData() = false, want true")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{PID: 3, Kind: Store, Addr: 0x1000}
	if got, want := r.String(), "p3 store 0x1000"; got != want {
		t.Errorf("Ref.String() = %q, want %q", got, want)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 128, 4096, 1 << 40} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 100, 4097} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[uint64]uint{1: 0, 2: 1, 4: 2, 128: 7, 4096: 12, 5: 2}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestLog2RoundTrip(t *testing.T) {
	f := func(shift uint8) bool {
		s := uint(shift % 63)
		return Log2(1<<s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlign(t *testing.T) {
	if got := AlignDown(0x1234, 0x100); got != 0x1200 {
		t.Errorf("AlignDown = %#x, want 0x1200", got)
	}
	if got := AlignUp(0x1234, 0x100); got != 0x1300 {
		t.Errorf("AlignUp = %#x, want 0x1300", got)
	}
	if got := AlignUp(0x1200, 0x100); got != 0x1200 {
		t.Errorf("AlignUp aligned = %#x, want 0x1200", got)
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(addr uint64, shift uint8) bool {
		align := uint64(1) << (shift % 20)
		d, u := AlignDown(addr, align), AlignUp(addr, align)
		if d%align != 0 || d > addr {
			return false
		}
		// AlignUp may wrap at the very top of the address space;
		// restrict to addresses where it cannot.
		if addr < 1<<50 {
			if u%align != 0 || u < addr || u-d >= 2*align {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatSize(t *testing.T) {
	cases := map[uint64]string{
		128:             "128B",
		4096:            "4KB",
		4 << 20:         "4MB",
		4<<20 + 128<<10: "4.12MB",
		1 << 30:         "1GB",
	}
	for v, want := range cases {
		if got := FormatSize(v); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestNewClock(t *testing.T) {
	c, err := NewClock(200)
	if err != nil {
		t.Fatalf("NewClock(200): %v", err)
	}
	if c.CycleTime() != 5000*Picosecond {
		t.Errorf("200MHz cycle time = %d ps, want 5000", c.CycleTime())
	}
	c4, err := NewClock(4000)
	if err != nil {
		t.Fatalf("NewClock(4000): %v", err)
	}
	if c4.CycleTime() != 250*Picosecond {
		t.Errorf("4GHz cycle time = %d ps, want 250", c4.CycleTime())
	}
	if _, err := NewClock(0); err == nil {
		t.Error("NewClock(0) succeeded, want error")
	}
	if _, err := NewClock(333); err == nil {
		t.Error("NewClock(333) succeeded, want error for non-integral cycle time")
	}
}

func TestClockCyclesFrom(t *testing.T) {
	c := MustClock(1000) // 1 GHz, 1000 ps/cycle
	cases := []struct {
		d    Picos
		want Cycles
	}{
		{0, 0},
		{1, 1},
		{999, 1},
		{1000, 1},
		{1001, 2},
		{50 * Nanosecond, 50},
	}
	for _, tc := range cases {
		if got := c.CyclesFrom(tc.d); got != tc.want {
			t.Errorf("CyclesFrom(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestClockRambusLatencyScales(t *testing.T) {
	// The 50ns Rambus startup costs 10 cycles at 200MHz, 200 at 4GHz:
	// the paper's CPU-DRAM gap in miniature.
	if got := MustClock(200).CyclesFrom(50 * Nanosecond); got != 10 {
		t.Errorf("200MHz: 50ns = %d cycles, want 10", got)
	}
	if got := MustClock(4000).CyclesFrom(50 * Nanosecond); got != 200 {
		t.Errorf("4GHz: 50ns = %d cycles, want 200", got)
	}
}

func TestClockSeconds(t *testing.T) {
	c := MustClock(200)
	if got := c.Seconds(200_000_000); got != 1.0 {
		t.Errorf("Seconds(200M cycles @200MHz) = %g, want 1.0", got)
	}
}

func TestClockString(t *testing.T) {
	cases := map[uint64]string{200: "200MHz", 800: "800MHz", 1000: "1GHz", 4000: "4GHz"}
	for mhz, want := range cases {
		if got := MustClock(mhz).String(); got != want {
			t.Errorf("Clock(%d).String() = %q, want %q", mhz, got, want)
		}
	}
}

func TestClockRoundTripProperty(t *testing.T) {
	c := MustClock(800)
	f := func(n uint32) bool {
		cy := Cycles(n)
		return c.CyclesFrom(c.PicosFrom(cy)) == cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBus(t *testing.T) {
	if _, err := NewBus(15, 3); err == nil {
		t.Error("NewBus(15, 3) succeeded, want error")
	}
	if _, err := NewBus(16, 0); err == nil {
		t.Error("NewBus(16, 0) succeeded, want error")
	}
	b, err := NewBus(16, 3)
	if err != nil {
		t.Fatalf("NewBus(16, 3): %v", err)
	}
	if b.WidthBytes() != 16 || b.Divisor() != 3 {
		t.Errorf("bus = %+v, want width 16 divisor 3", b)
	}
}

func TestBusTransfer(t *testing.T) {
	b := DefaultBus()
	cases := []struct {
		bytes uint64
		bus   uint64
		cpu   Cycles
	}{
		{0, 0, 0},
		{1, 1, 3},
		{16, 1, 3},
		{17, 2, 6},
		{32, 2, 6}, // one L1 block: 2 bus cycles
		{4096, 256, 768},
	}
	for _, tc := range cases {
		if got := b.TransferBusCycles(tc.bytes); got != tc.bus {
			t.Errorf("TransferBusCycles(%d) = %d, want %d", tc.bytes, got, tc.bus)
		}
		if got := b.TransferCPUCycles(tc.bytes); got != tc.cpu {
			t.Errorf("TransferCPUCycles(%d) = %d, want %d", tc.bytes, got, tc.cpu)
		}
	}
}

func TestBusMonotoneProperty(t *testing.T) {
	b := DefaultBus()
	f := func(a, bb uint32) bool {
		x, y := uint64(a), uint64(bb)
		if x > y {
			x, y = y, x
		}
		return b.TransferBusCycles(x) <= b.TransferBusCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
