package mem

import "fmt"

// Bus models the processor–L2 interconnect of §4.4: a 128-bit (16-byte)
// wide bus clocked at one third of the CPU issue rate. L2 (or SRAM main
// memory) accesses are counted in bus cycles and converted to CPU
// cycles through the divisor, so the whole SRAM side of the hierarchy
// scales with the CPU clock, exactly as in the paper.
type Bus struct {
	widthBytes uint64 // bytes moved per bus cycle
	divisor    uint64 // CPU cycles per bus cycle
}

// NewBus constructs a bus. Width must be a power of two; the divisor
// must be positive.
func NewBus(widthBytes, divisor uint64) (Bus, error) {
	if !IsPow2(widthBytes) {
		return Bus{}, fmt.Errorf("mem: bus width %d is not a power of two", widthBytes)
	}
	if divisor == 0 {
		return Bus{}, fmt.Errorf("mem: bus divisor must be positive")
	}
	return Bus{widthBytes: widthBytes, divisor: divisor}, nil
}

// DefaultBus is the paper's bus: 128 bits wide at one third of the CPU
// clock.
func DefaultBus() Bus { return Bus{widthBytes: 16, divisor: 3} }

// WidthBytes returns the number of bytes moved per bus cycle.
func (b Bus) WidthBytes() uint64 { return b.widthBytes }

// Divisor returns the number of CPU cycles per bus cycle.
func (b Bus) Divisor() uint64 { return b.divisor }

// CPUCycles converts bus cycles to CPU cycles.
func (b Bus) CPUCycles(busCycles uint64) Cycles {
	return Cycles(busCycles * b.divisor)
}

// TransferBusCycles returns the number of bus cycles needed to move n
// bytes across the bus (partial beats round up).
func (b Bus) TransferBusCycles(n uint64) uint64 {
	return (n + b.widthBytes - 1) / b.widthBytes
}

// TransferCPUCycles returns the CPU-cycle cost of moving n bytes.
func (b Bus) TransferCPUCycles(n uint64) Cycles {
	return b.CPUCycles(b.TransferBusCycles(n))
}
