package mem

import "fmt"

// Cycles counts CPU cycles at the simulated issue rate. The paper's
// "CPU cycle time" really models a superscalar issue rate (§4.3), so a
// cycle here is one issue slot.
type Cycles uint64

// Picos is a duration in picoseconds. DRAM timing is specified in
// absolute time (it does not scale with the CPU clock), so all device
// latencies are held in picoseconds and converted to cycles through a
// Clock.
type Picos uint64

// Common time units.
const (
	Picosecond  Picos = 1
	Nanosecond  Picos = 1000
	Microsecond Picos = 1000 * 1000
	Millisecond Picos = 1000 * 1000 * 1000
	Second      Picos = 1000 * 1000 * 1000 * 1000
)

// Clock converts between wall-clock time and CPU cycles for one
// simulated issue rate. The paper sweeps issue rates from 200 MHz to
// 4 GHz while holding DRAM timing constant, which is how the growing
// CPU–DRAM gap is modeled: the same 50 ns Rambus latency costs 10
// cycles at 200 MHz but 200 cycles at 4 GHz.
type Clock struct {
	issueMHz  uint64
	cycleTime Picos // picoseconds per CPU cycle
}

// NewClock returns a Clock for the given issue rate in MHz. The issue
// rate must be positive and must divide 1 THz evenly in picoseconds
// (every rate the paper uses does: 200 MHz → 5000 ps, 4 GHz → 250 ps).
func NewClock(issueMHz uint64) (Clock, error) {
	if issueMHz == 0 {
		return Clock{}, fmt.Errorf("mem: issue rate must be positive")
	}
	if uint64(Second)/1_000_000%issueMHz != 0 {
		return Clock{}, fmt.Errorf("mem: issue rate %d MHz does not yield an integral picosecond cycle time", issueMHz)
	}
	return Clock{issueMHz: issueMHz, cycleTime: Picos(uint64(Second) / 1_000_000 / issueMHz)}, nil
}

// MustClock is NewClock for rates known to be valid at compile time; it
// panics on error and is intended for tests and table-driven sweeps
// over the paper's fixed set of issue rates.
func MustClock(issueMHz uint64) Clock {
	c, err := NewClock(issueMHz)
	if err != nil {
		panic(err)
	}
	return c
}

// IssueMHz returns the issue rate in MHz.
func (c Clock) IssueMHz() uint64 { return c.issueMHz }

// CycleTime returns the duration of one CPU cycle.
func (c Clock) CycleTime() Picos { return c.cycleTime }

// CyclesFrom converts a duration to CPU cycles, rounding up: a device
// that is busy for any fraction of a cycle occupies the whole cycle.
func (c Clock) CyclesFrom(d Picos) Cycles {
	return Cycles((uint64(d) + uint64(c.cycleTime) - 1) / uint64(c.cycleTime))
}

// PicosFrom converts a cycle count back to a duration.
func (c Clock) PicosFrom(n Cycles) Picos {
	return Picos(uint64(n) * uint64(c.cycleTime))
}

// Seconds renders a cycle count as seconds of simulated time at this
// clock, for the elapsed-time tables (Tables 3–5 report seconds).
func (c Clock) Seconds(n Cycles) float64 {
	return float64(uint64(n)) * float64(c.cycleTime) / float64(Second)
}

// String describes the clock, e.g. "800MHz" or "4GHz".
func (c Clock) String() string {
	if c.issueMHz >= 1000 && c.issueMHz%1000 == 0 {
		return fmt.Sprintf("%dGHz", c.issueMHz/1000)
	}
	return fmt.Sprintf("%dMHz", c.issueMHz)
}
