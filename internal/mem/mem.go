// Package mem provides the shared vocabulary of the RAMpage simulator:
// address types, memory reference records, power-of-two arithmetic and
// size formatting. Every other package in the simulator builds on these
// definitions, so they are deliberately small and allocation-free.
//
// Two distinct address types are used so that the compiler catches the
// classic simulator bug of mixing virtual and physical addresses:
//
//   - VAddr — a virtual address as issued by a traced program.
//   - PAddr — a physical address in whichever physical space a level of
//     the hierarchy uses (the L2 cache and the RAMpage SRAM main memory
//     each define their own physical space; the DRAM paging device
//     defines a third).
package mem

import "fmt"

// VAddr is a virtual address issued by a simulated program. Virtual
// addresses are per-process; the same VAddr in two processes names
// unrelated data.
type VAddr uint64

// PAddr is a physical address within one physical address space of the
// simulated machine. Which space (L2, SRAM main memory, or DRAM) is
// determined by context; the type exists to keep virtual and physical
// arithmetic from being mixed accidentally.
type PAddr uint64

// PID identifies a simulated process (one interleaved trace stream).
type PID uint16

// KernelPID is the process ID reserved for operating-system activity:
// TLB-miss handlers, page-fault handlers and context-switch code. OS
// references are tagged with this PID so statistics can separate
// application work from memory-management overhead (Figure 4 of the
// paper measures exactly this ratio).
const KernelPID PID = 0xFFFF

// RefKind classifies a memory reference.
type RefKind uint8

const (
	// IFetch is an instruction fetch. Instruction fetches are the only
	// references that cost time when they hit in L1 (one cycle); the
	// paper models data hits and TLB hits as fully pipelined.
	IFetch RefKind = iota
	// Load is a data read.
	Load
	// Store is a data write. Stores are write-allocated and absorbed by
	// a perfect write buffer on hit (zero effective hit time).
	Store
)

// String returns a short human-readable name for the reference kind.
func (k RefKind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("RefKind(%d)", uint8(k))
	}
}

// IsData reports whether the reference goes to the data side of the
// split L1 cache.
func (k RefKind) IsData() bool { return k != IFetch }

// Ref is one memory reference from a trace: a process, a kind and a
// virtual address. Ref is the unit of work for the whole simulator —
// trace generators produce them and hierarchy simulators consume them.
type Ref struct {
	PID  PID
	Kind RefKind
	Addr VAddr
}

// String formats the reference for debugging and trace dumps.
func (r Ref) String() string {
	return fmt.Sprintf("p%d %s 0x%x", r.PID, r.Kind, uint64(r.Addr))
}

// IsPow2 reports whether v is a power of two. Zero is not a power of
// two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)). Log2(0) is 0 by convention; callers that
// need exactness should check IsPow2 first.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// AlignDown rounds addr down to a multiple of align, which must be a
// power of two.
func AlignDown(addr, align uint64) uint64 { return addr &^ (align - 1) }

// AlignUp rounds addr up to a multiple of align, which must be a power
// of two.
func AlignUp(addr, align uint64) uint64 { return (addr + align - 1) &^ (align - 1) }

// FormatSize renders a byte count with a binary-unit suffix, e.g.
// "4KB", "4.125MB", "512B". It is used in table headers and reports.
func FormatSize(bytes uint64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
	)
	switch {
	case bytes >= gb:
		return trimUnit(float64(bytes)/gb, "GB")
	case bytes >= mb:
		return trimUnit(float64(bytes)/mb, "MB")
	case bytes >= kb:
		return trimUnit(float64(bytes)/kb, "KB")
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}

func trimUnit(v float64, unit string) string {
	if v == float64(uint64(v)) {
		return fmt.Sprintf("%d%s", uint64(v), unit)
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}
