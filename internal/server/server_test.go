package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rampage/internal/harness"
	"rampage/internal/metrics"
	"rampage/internal/server"
)

// testScales injects miniature workloads so API tests simulate in
// milliseconds: "tiny" (~100k refs) for correctness paths, "slow"
// (~70M refs, seconds) where a test needs a job to stay in flight
// long enough to observe queue states.
func testScales() map[string]harness.Config {
	tiny := harness.QuickScaled()
	tiny.RefScale = 1.0 / 10000
	slow := harness.QuickScaled()
	slow.RefScale = 1.0 / 16
	return map[string]harness.Config{
		"tiny": tiny,
		"slow": slow,
	}
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func newTestServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	if cfg.Scales == nil {
		cfg.Scales = testScales()
	}
	svc, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTimeout(30 * time.Second)
		defer cancel()
		svc.Drain(drainCtx)
	})
	return ts, svc
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func post(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

func TestListExperiments(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	code, body, _ := get(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var doc struct {
		Experiments []struct {
			ID       string `json:"id"`
			Servable bool   `json:"servable"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	servable := map[string]bool{}
	for _, e := range doc.Experiments {
		servable[e.ID] = e.Servable
	}
	if !servable["table3"] || !servable["fig2"] {
		t.Errorf("table3/fig2 not marked servable: %v", servable)
	}
	if servable["fig5"] {
		t.Error("fig5 has no JSON form but is marked servable")
	}
}

func TestExperimentRequestErrors(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/experiments/nosuch", http.StatusNotFound},
		{"/v1/experiments/fig5", http.StatusBadRequest}, // no JSON form
		{"/v1/experiments/table3?scale=mega", http.StatusBadRequest},
		{"/v1/experiments/table3?seed=abc", http.StatusBadRequest},
		{"/v1/experiments/table3?rates=12,x", http.StatusBadRequest},
		{"/v1/jobs/nosuch", http.StatusNotFound},
	} {
		code, body, _ := get(t, ts.URL+tc.path)
		if code != tc.code {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, code, body, tc.code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("GET %s: error body %q not a JSON error", tc.path, body)
		}
	}
}

// TestExperimentSyncAndCached pins the serving core: a sweep request
// computes once, and the repeat is served byte-identically from the
// cache without another simulation.
func TestExperimentSyncAndCached(t *testing.T) {
	var stats metrics.ServiceStats
	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8, Stats: &stats})
	url := ts.URL + "/v1/experiments/table3?scale=tiny&rates=800&sizes=4096"

	code, first, hdr := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc harness.ExperimentDoc
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != harness.ReportVersion || doc.ID != "table3" || len(doc.Systems) != 2 {
		t.Errorf("doc = version %d id %s systems %d", doc.Version, doc.ID, len(doc.Systems))
	}

	code, second, _ := get(t, url)
	if code != http.StatusOK || !bytes.Equal(first, second) {
		t.Fatalf("repeat not byte-identical (status %d)", code)
	}
	if hits := stats.Get(metrics.SvcCacheHit); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != 1 {
		t.Errorf("sim_runs = %d, want 1 (repeat re-simulated)", runs)
	}

	// An equivalent spelling of the same request — the paper-default
	// grid written out — must be the same cache entry.
	code, third, _ := get(t, ts.URL+"/v1/experiments/table3?scale=tiny&rates=800&sizes=4096&seed=42")
	if code != http.StatusOK || !bytes.Equal(first, third) {
		t.Errorf("equivalent request missed the cache (status %d)", code)
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != 1 {
		t.Errorf("sim_runs = %d after equivalent request, want 1", runs)
	}
}

// TestSingleflightHTTP is the headline concurrency guarantee at the
// HTTP layer: 16 concurrent identical sweep requests produce exactly
// one simulation and 16 byte-identical responses.
func TestSingleflightHTTP(t *testing.T) {
	var stats metrics.ServiceStats
	ts, _ := newTestServer(t, server.Config{Workers: 4, QueueDepth: 32, Stats: &stats})
	url := ts.URL + "/v1/experiments/table3?scale=tiny&rates=800&sizes=4096"

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d err %v", i, resp.StatusCode, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != 1 {
		t.Errorf("sim_runs = %d, want exactly 1", runs)
	}
	// Every other request either collapsed onto the in-flight job or,
	// if it arrived after completion, hit the cache.
	if saved := stats.Get(metrics.SvcCacheDedup) + stats.Get(metrics.SvcCacheHit); saved != n-1 {
		t.Errorf("dedups+hits = %d, want %d", saved, n-1)
	}
}

// TestQueueOverflow429 pins backpressure: with one worker busy and a
// one-deep queue full, the next submission bounces with 429 and a
// Retry-After hint instead of queueing unboundedly.
func TestQueueOverflow429(t *testing.T) {
	var stats metrics.ServiceStats
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1, Stats: &stats})

	submit := func(seed int) (int, []byte, http.Header) {
		body := fmt.Sprintf(`{"kind":"run","scale":"slow","seed":%d,"system":"rampage","issue_mhz":800,"size_bytes":4096}`, seed)
		return post(t, ts.URL+"/v1/jobs", body)
	}
	jobID := func(body []byte) string {
		var st struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
			t.Fatalf("no job id in %s", body)
		}
		return st.ID
	}
	cancelJob := func(id string) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}

	// First job: wait until the worker has dequeued it.
	code, body, _ := submit(1)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, body)
	}
	defer cancelJob(jobID(body))
	deadline := time.Now().Add(20 * time.Second)
	for {
		var health struct {
			QueueLength int `json:"queue_length"`
		}
		_, hb, _ := get(t, ts.URL+"/healthz")
		if err := json.Unmarshal(hb, &health); err != nil {
			t.Fatal(err)
		}
		if health.QueueLength == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never left the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Second fills the queue; third must bounce.
	code, body, _ = submit(2)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, body)
	}
	defer cancelJob(jobID(body))
	code, body, hdr := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d %s, want 429", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	if rej := stats.Get(metrics.SvcJobsRejected); rej != 1 {
		t.Errorf("jobs_rejected = %d, want 1", rej)
	}
}

// TestAsyncJobLifecycle walks submit → poll → result → equivalence
// with the synchronous endpoint, then cancel semantics.
func TestAsyncJobLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})

	code, body, hdr := post(t, ts.URL+"/v1/jobs",
		`{"kind":"run","scale":"tiny","system":"baseline","issue_mhz":800,"size_bytes":128}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Cells int    `json:"cells"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	if st.Cells != 1 {
		t.Errorf("cells = %d, want 1", st.Cells)
	}

	// Poll until terminal.
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ = get(t, ts.URL+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("job ended %s: %s", st.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, result, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, result)
	}
	var doc harness.RunDoc
	if err := json.Unmarshal(result, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "run" || doc.Version != harness.ReportVersion {
		t.Errorf("doc kind=%s version=%d", doc.Kind, doc.Version)
	}

	// The synchronous endpoint must serve the identical bytes (from
	// the cache — same content address).
	code, syncBody, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"baseline","issue_mhz":800,"size_bytes":128}`)
	if code != http.StatusOK || !bytes.Equal(result, syncBody) {
		t.Errorf("sync run differs from async result (status %d)", code)
	}

	// Cancel of a finished job conflicts; cancel of an unknown job 404s.
	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished job: %d, want 409", resp.StatusCode)
	}
	reqDel, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j999999", nil)
	resp, err = http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestRunWithMetrics pins the observer plumbing: a run requested with
// metrics carries the collector's event summary, the plain run does
// not, and the two are distinct cache entries with identical reports.
func TestRunWithMetrics(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	plainBody := `{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":1024}`
	metricBody := `{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":1024,"metrics":true}`

	code, plain, _ := post(t, ts.URL+"/v1/runs", plainBody)
	if code != http.StatusOK {
		t.Fatalf("plain run: %d %s", code, plain)
	}
	code, withMetrics, _ := post(t, ts.URL+"/v1/runs", metricBody)
	if code != http.StatusOK {
		t.Fatalf("metrics run: %d %s", code, withMetrics)
	}
	var plainDoc, metricDoc harness.RunDoc
	if err := json.Unmarshal(plain, &plainDoc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(withMetrics, &metricDoc); err != nil {
		t.Fatal(err)
	}
	if plainDoc.Metrics != nil {
		t.Error("plain run carries a metrics summary")
	}
	if metricDoc.Metrics == nil || len(metricDoc.Metrics.Counts) == 0 {
		t.Fatal("metrics run has no event counts")
	}
	// The observer must not perturb the simulation.
	if !reflect.DeepEqual(plainDoc.Report, metricDoc.Report) {
		t.Error("attaching the observer changed the report")
	}
	// Both variants must be cached independently.
	if code, repeat, _ := post(t, ts.URL+"/v1/runs", metricBody); code != http.StatusOK || !bytes.Equal(withMetrics, repeat) {
		t.Errorf("metrics run repeat not byte-identical (status %d)", code)
	}
}

func TestSubmitJobErrors(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"kind":"dance"}`, http.StatusBadRequest},
		{`{"kind":"experiment","id":"nosuch"}`, http.StatusNotFound},
		{`{"kind":"run","scale":"tiny","system":"warp","issue_mhz":800,"size_bytes":128}`, http.StatusBadRequest},
		{`{"kind":"run","scale":"tiny","system":"rampage","issue_mhz":800,"size_bytes":3000}`, http.StatusBadRequest},
		{`{"kind":"run","unknown_field":1}`, http.StatusBadRequest},
		// extend needs extend_refs, and a base budget to lengthen (the
		// tiny scale is uncapped and the request sets no max_refs).
		{`{"kind":"extend","scale":"tiny","system":"rampage","issue_mhz":800,"size_bytes":128}`, http.StatusBadRequest},
		{`{"kind":"extend","scale":"tiny","system":"rampage","issue_mhz":800,"size_bytes":128,"extend_refs":1000}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		code, body, _ := post(t, ts.URL+"/v1/jobs", tc.body)
		if code != tc.code {
			t.Errorf("POST %s = %d (%s), want %d", tc.body, code, body, tc.code)
		}
	}
}

func TestMetricszShape(t *testing.T) {
	var stats metrics.ServiceStats
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	code, body, _ := get(t, ts.URL+"/metricsz?format=json")
	if code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Cache    struct {
			Entries int   `json:"entries"`
			Bytes   int64 `json:"bytes"`
		} `json:"cache"`
		Queue struct {
			Capacity int `json:"capacity"`
		} `json:"queue"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Counters["cache_hits"]; !ok {
		t.Errorf("counters missing cache_hits: %v", doc.Counters)
	}
	if doc.Queue.Capacity != 4 {
		t.Errorf("queue capacity = %d, want 4", doc.Queue.Capacity)
	}
}

// TestExtendJobWarmStart pins the incremental-run path end to end: a
// budgeted run stores its warm state, an "extend" job lengthens it by
// K references warm-starting from that checkpoint (the service counts
// a checkpoint hit), and the extended document is byte-identical to
// the same budget simulated from scratch on a fresh service.
func TestExtendJobWarmStart(t *testing.T) {
	var stats metrics.ServiceStats
	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8, Stats: &stats})

	code, body, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":512,"max_refs":40000}`)
	if code != http.StatusOK {
		t.Fatalf("base run: %d %s", code, body)
	}

	code, body, _ = post(t, ts.URL+"/v1/jobs",
		`{"kind":"extend","scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":512,"max_refs":40000,"extend_refs":20000}`)
	if code != http.StatusAccepted {
		t.Fatalf("extend submit: %d %s", code, body)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Label string `json:"label"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.Label, "extend:") || !strings.HasSuffix(st.Label, "+20000") {
		t.Errorf("extend job label = %q", st.Label)
	}
	deadline := time.Now().Add(60 * time.Second)
	for st.State != "done" {
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("extend job ended %s: %s", st.State, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("extend job never finished")
		}
		time.Sleep(10 * time.Millisecond)
		code, body, _ = get(t, ts.URL+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %s", code, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
	}
	code, extended, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("extend result: %d %s", code, extended)
	}
	if hits := stats.Get(metrics.SvcCkptHit); hits == 0 {
		t.Error("extend job counted no checkpoint hits; it re-simulated the prefix")
	}

	// A fresh service (empty checkpoint store) simulating the target
	// budget from scratch must produce the identical document.
	ts2, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	code, scratch, _ := post(t, ts2.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":512,"max_refs":60000}`)
	if code != http.StatusOK {
		t.Fatalf("scratch run: %d %s", code, scratch)
	}
	if !bytes.Equal(extended, scratch) {
		t.Error("extended document differs from the from-scratch document")
	}

	// The extend cached at its target budget: the equivalent run
	// request is a pure cache hit serving the same bytes.
	code, repeat, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":512,"max_refs":60000}`)
	if code != http.StatusOK || !bytes.Equal(extended, repeat) {
		t.Errorf("run at the extended budget not served from cache (status %d)", code)
	}

	// /metricsz reports the store.
	code, mz, _ := get(t, ts.URL+"/metricsz?format=json")
	if code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	var doc struct {
		Counters    map[string]uint64 `json:"counters"`
		Checkpoints struct {
			Entries int   `json:"entries"`
			Bytes   int64 `json:"bytes"`
		} `json:"checkpoints"`
	}
	if err := json.Unmarshal(mz, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Checkpoints.Entries == 0 || doc.Checkpoints.Bytes <= 0 {
		t.Errorf("metricsz checkpoints = %+v, want a populated store", doc.Checkpoints)
	}
	if _, ok := doc.Counters["checkpoint_hits"]; !ok {
		t.Errorf("counters missing checkpoint_hits: %v", doc.Counters)
	}
}

// TestServeTable3GoldenE2E is the acceptance gate: the service at the
// default scale serves table3 byte-identical to the committed golden,
// and the repeat is a pure cache hit. It runs the full default-scale
// sweep (~a minute), so it is skipped under -short; the CI golden job
// runs it explicitly.
func TestServeTable3GoldenE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweep; run without -short (CI golden job)")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "table3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stats metrics.ServiceStats
	svc, err := server.New(server.Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTimeout(time.Minute)
		defer cancel()
		svc.Drain(drainCtx)
	})

	code, body, _ := get(t, ts.URL+"/v1/experiments/table3?scale=default")
	if code != http.StatusOK {
		t.Fatalf("status %d: %.200s", code, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatalf("served table3 differs from testdata/golden/table3.json (%d vs %d bytes)", len(body), len(golden))
	}
	runsBefore := stats.Get(metrics.SvcSimRuns)

	code, body2, _ := get(t, ts.URL+"/v1/experiments/table3?scale=default")
	if code != http.StatusOK || !bytes.Equal(body2, golden) {
		t.Fatalf("cached table3 differs from golden (status %d)", code)
	}
	if hits := stats.Get(metrics.SvcCacheHit); hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != runsBefore {
		t.Errorf("sim_runs grew %d -> %d on a cached request", runsBefore, runs)
	}
}

// TestServeFigsGoldenE2E extends the served-equivalence gate to the
// breakdown figures: figs 2-4 at the default scale must come back
// byte-identical to the committed goldens, with repeats served from
// cache. Like the table3 gate it runs full default-scale sweeps, so it
// is skipped under -short and run explicitly by the CI golden job.
func TestServeFigsGoldenE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweeps; run without -short (CI golden job)")
	}
	var stats metrics.ServiceStats
	svc, err := server.New(server.Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTimeout(time.Minute)
		defer cancel()
		svc.Drain(drainCtx)
	})

	var wantHits uint64
	for _, id := range []string{"fig2", "fig3", "fig4"} {
		golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		url := ts.URL + "/v1/experiments/" + id + "?scale=default"
		code, body, _ := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %.200s", id, code, body)
		}
		if !bytes.Equal(body, golden) {
			t.Fatalf("served %s differs from testdata/golden/%s.json (%d vs %d bytes)", id, id, len(body), len(golden))
		}
		runsBefore := stats.Get(metrics.SvcSimRuns)

		code, body2, _ := get(t, url)
		if code != http.StatusOK || !bytes.Equal(body2, golden) {
			t.Fatalf("cached %s differs from golden (status %d)", id, code)
		}
		wantHits++
		if hits := stats.Get(metrics.SvcCacheHit); hits != wantHits {
			t.Errorf("%s: cache_hits = %d, want %d", id, hits, wantHits)
		}
		if runs := stats.Get(metrics.SvcSimRuns); runs != runsBefore {
			t.Errorf("%s: sim_runs grew %d -> %d on a cached request", id, runsBefore, runs)
		}
	}
}

// TestServePoliciesGoldenE2E extends the served-equivalence gate to
// the policy lab: the policies experiment (RAMpage under every
// replacement policy at 1 GHz) at the default scale must come back
// byte-identical to the committed golden, with the repeat a pure cache
// hit. Full default-scale sweep, so skipped under -short and run
// explicitly by the CI golden job.
func TestServePoliciesGoldenE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweep; run without -short (CI golden job)")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "policies.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stats metrics.ServiceStats
	svc, err := server.New(server.Config{Workers: 1, QueueDepth: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTimeout(time.Minute)
		defer cancel()
		svc.Drain(drainCtx)
	})

	code, body, _ := get(t, ts.URL+"/v1/experiments/policies?scale=default")
	if code != http.StatusOK {
		t.Fatalf("status %d: %.200s", code, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatalf("served policies differs from testdata/golden/policies.json (%d vs %d bytes)", len(body), len(golden))
	}
	runsBefore := stats.Get(metrics.SvcSimRuns)

	code, body2, _ := get(t, ts.URL+"/v1/experiments/policies?scale=default")
	if code != http.StatusOK || !bytes.Equal(body2, golden) {
		t.Fatalf("cached policies differs from golden (status %d)", code)
	}
	if runs := stats.Get(metrics.SvcSimRuns); runs != runsBefore {
		t.Errorf("sim_runs grew %d -> %d on a cached request", runsBefore, runs)
	}
}

// TestRunWithPolicy pins the run API's policy plumbing: a RAMpage run
// under a non-clock policy succeeds and its report carries the
// rampage+<policy> name; an unknown policy and a policy on a
// conventional system are 400s; and /metricsz exposes the per-policy
// eviction counters.
func TestRunWithPolicy(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})

	code, body, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":4096,"policy":"fifo"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %.300s", code, body)
	}
	var doc struct {
		Report struct {
			Name string `json:"name"`
		} `json:"report"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Report.Name != "rampage+fifo" {
		t.Errorf("report name = %q, want rampage+fifo", doc.Report.Name)
	}

	// An explicit "clock" is the default policy: same document (and
	// cache entry) as not specifying one.
	_, plain, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":4096}`)
	_, clock, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":4096,"policy":"clock"}`)
	if !bytes.Equal(plain, clock) {
		t.Error("policy=clock document differs from the default-policy document")
	}

	if code, body, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":4096,"policy":"lru"}`); code != http.StatusBadRequest {
		t.Errorf("unknown policy: status %d: %.200s", code, body)
	}
	if code, body, _ := post(t, ts.URL+"/v1/runs",
		`{"scale":"tiny","system":"baseline","issue_mhz":1000,"size_bytes":4096,"policy":"fifo"}`); code != http.StatusBadRequest {
		t.Errorf("policy on baseline: status %d: %.200s", code, body)
	}

	code, body, _ = get(t, ts.URL+"/metricsz?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metricsz status %d", code)
	}
	var mz struct {
		PolicyEvictions map[string]uint64 `json:"policy_evictions"`
	}
	if err := json.Unmarshal(body, &mz); err != nil {
		t.Fatal(err)
	}
	if len(mz.PolicyEvictions) != 5 {
		t.Fatalf("policy_evictions has %d keys, want 5: %v", len(mz.PolicyEvictions), mz.PolicyEvictions)
	}
	if _, ok := mz.PolicyEvictions["fifo"]; !ok {
		t.Errorf("policy_evictions missing fifo: %v", mz.PolicyEvictions)
	}
}
