package server_test

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"rampage/internal/checkpoint"
	"rampage/internal/fleet"
	"rampage/internal/harness"
	"rampage/internal/metrics"
	"rampage/internal/server"
)

// localDoc builds the reference bytes the fleet must match: the plain
// in-process harness rendering of the experiment.
func localDoc(t *testing.T, cfg harness.Config, id string, rates, sizes []uint64) []byte {
	t.Helper()
	doc, err := harness.BuildExperimentDoc(context.Background(), cfg, id, rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startFleetWorker runs an in-process worker against the server's
// coordinator endpoints and cleans it up with the test.
func startFleetWorker(t *testing.T, url, name string) {
	t.Helper()
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		CoordinatorURL: url,
		Name:           name,
		Parallel:       2,
		Checkpoints:    checkpoint.NewStore(8<<20, "", nil),
		Stats:          &metrics.ServiceStats{},
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

func waitForFleetWorkers(t *testing.T, svc *server.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Fleet().LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d fleet workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeExperimentThroughFleet pins the tentpole guarantee at the
// service boundary: with workers registered, an experiment request is
// sharded across the fleet and the served document is byte-identical
// to the in-process harness build; the coordinator itself never
// simulates.
func TestServeExperimentThroughFleet(t *testing.T) {
	var stats metrics.ServiceStats
	ts, svc := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8, Stats: &stats})
	startFleetWorker(t, ts.URL, "w1")
	startFleetWorker(t, ts.URL, "w2")
	waitForFleetWorkers(t, svc, 2)

	url := ts.URL + "/v1/experiments/table3?scale=tiny&rates=200,400&sizes=4096"
	code, body, _ := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("status %d: %.300s", code, body)
	}
	want := localDoc(t, testScales()["tiny"], "table3", []uint64{200, 400}, []uint64{4096})
	if !bytes.Equal(body, want) {
		t.Fatalf("fleet-served document differs from local build (%d vs %d bytes)", len(body), len(want))
	}
	if n := stats.Get(metrics.SvcFleetCompleted); n == 0 {
		t.Error("no cells went through the fleet")
	}
	if n := stats.Get(metrics.SvcFleetLocal); n != 0 {
		t.Errorf("coordinator simulated %d cells itself; want 0 with live workers", n)
	}

	// The assembled document is cached like any local result: a repeat
	// is a cache hit, no new fleet traffic.
	leased := stats.Get(metrics.SvcFleetLeased)
	code, body2, _ := get(t, url)
	if code != http.StatusOK || !bytes.Equal(body2, want) {
		t.Fatalf("repeat request differs (status %d)", code)
	}
	if n := stats.Get(metrics.SvcFleetLeased); n != leased {
		t.Errorf("repeat request leased %d new cells", n-leased)
	}
}

// TestDiskStoreServesAcrossRestart pins the persistence guarantee at
// the service boundary: a document computed before a server restart is
// served byte-identical from the disk store by the next server, with
// zero new simulation.
func TestDiskStoreServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	url := "/v1/experiments/table3?scale=tiny&rates=200,400&sizes=4096"

	ts1, svc1 := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8, DiskDir: dir})
	code, body1, _ := get(t, ts1.URL+url)
	if code != http.StatusOK {
		t.Fatalf("status %d: %.300s", code, body1)
	}
	drainCtx, cancel := contextWithTimeout(30 * time.Second)
	svc1.Drain(drainCtx)
	cancel()
	ts1.Close()

	var stats metrics.ServiceStats
	ts2, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8, DiskDir: dir, Stats: &stats})
	code, body2, _ := get(t, ts2.URL+url)
	if code != http.StatusOK {
		t.Fatalf("restarted status %d: %.300s", code, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("disk-served document differs across restart (%d vs %d bytes)", len(body1), len(body2))
	}
	if n := stats.Get(metrics.SvcDiskHit); n == 0 {
		t.Error("no disk hits on the restarted server")
	}
	if n := stats.Get(metrics.SvcSimRuns); n != 0 {
		t.Errorf("restarted server ran %d simulations; want 0 (disk should answer)", n)
	}
}

// TestFleetWorkersShareCellsAcrossExperiments pins fleet-wide dedup:
// fig2's cells are a subset of table3's grid at the same scale, so
// with a disk store attached, serving table3 first makes fig2 cost
// zero new leases.
func TestFleetWorkersShareCellsAcrossExperiments(t *testing.T) {
	var stats metrics.ServiceStats
	ts, svc := newTestServer(t, server.Config{
		Workers: 2, QueueDepth: 8, Stats: &stats, DiskDir: t.TempDir(),
	})
	startFleetWorker(t, ts.URL, "w1")
	waitForFleetWorkers(t, svc, 1)

	// fig2 pins rate 200; request table3 restricted to that rate so the
	// grids coincide exactly.
	code, body, _ := get(t, ts.URL+"/v1/experiments/table3?scale=tiny&rates=200")
	if code != http.StatusOK {
		t.Fatalf("table3 status %d: %.300s", code, body)
	}
	leased := stats.Get(metrics.SvcFleetLeased)
	if leased == 0 {
		t.Fatal("table3 leased no cells")
	}
	code, body, _ = get(t, ts.URL+"/v1/experiments/fig2?scale=tiny")
	if code != http.StatusOK {
		t.Fatalf("fig2 status %d: %.300s", code, body)
	}
	want := localDoc(t, testScales()["tiny"], "fig2", nil, nil)
	if !bytes.Equal(body, want) {
		t.Fatalf("fig2 assembled from shared cells differs from local build (%d vs %d bytes)", len(body), len(want))
	}
	if n := stats.Get(metrics.SvcFleetLeased); n != leased {
		t.Errorf("fig2 leased %d new cells; want 0 (cells shared with table3)", n-leased)
	}
	if n := stats.Get(metrics.SvcDiskHit); n == 0 {
		t.Error("fig2 took no disk hits")
	}
}
