package server

import (
	"encoding/json"
	"net/http"

	"rampage/internal/regress"
)

// compareRequest is the POST /v1/compare body. Each side is either a
// JSON string naming a finished job (its result document is fetched)
// or an inline result document. golden is the want side, candidate the
// got side — same convention as the regress CLI.
type compareRequest struct {
	Golden    json.RawMessage `json:"golden"`
	Candidate json.RawMessage `json:"candidate"`
}

type compareResponse struct {
	Equal bool     `json:"equal"`
	Diffs []string `json:"diffs,omitempty"`
}

// resolveCompareSide turns one side of a compare request into document
// bytes: a JSON string is a job ID, anything else is taken as an
// inline document.
func (s *Server) resolveCompareSide(raw json.RawMessage, side string) ([]byte, string, bool) {
	if len(raw) == 0 {
		return nil, side + ": missing", false
	}
	var id string
	if err := json.Unmarshal(raw, &id); err == nil {
		j, ok := s.mgr.Get(id)
		if !ok {
			return nil, side + ": unknown job " + id, false
		}
		data, rerr := j.Result()
		if rerr != nil {
			return nil, side + ": job " + id + ": " + rerr.Error(), false
		}
		return data, "", true
	}
	return raw, "", true
}

// handleCompare serves POST /v1/compare: an exact report comparison
// using the same comparator as the tools/regress CLI, so a divergence
// the CLI gate would flag is exactly what this endpoint reports.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad compare request: "+err.Error())
		return
	}
	golden, msg, ok := s.resolveCompareSide(req.Golden, "golden")
	if !ok {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	candidate, msg, ok := s.resolveCompareSide(req.Candidate, "candidate")
	if !ok {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	diffs, err := regress.CompareReportBytes(golden, candidate)
	if err != nil {
		// Hard comparator errors (malformed document, schema version
		// mismatch) are the caller's problem, not a divergence list.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, compareResponse{Equal: len(diffs) == 0, Diffs: diffs})
}
