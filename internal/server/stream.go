package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rampage/internal/harness"
	"rampage/internal/jobs"
	"rampage/internal/policy"
)

// GET /v1/jobs/{id}/events streams a job's sweep cells as they
// complete. With `Accept: text/event-stream` the response is
// Server-Sent Events (one `id:`/`event:`/`data:` frame per event);
// otherwise it is newline-delimited JSON, one jobs.Event per line.
// Either way the stream replays history from the resume cursor
// (?from=N or the Last-Event-ID header; 0 = everything), follows the
// live tail, and ends after the terminal done/failed/canceled event.
// A subscriber that falls more than eventBuffer events behind is
// dropped mid-stream without a terminal event — it reconnects with
// from set to the last sequence it saw and misses nothing. Jobs
// answered straight from the result cache (including the disk store)
// have no recorded events; the handler synthesizes the full burst from
// the cached document so streaming clients are agnostic to cache hits.

// cellPayload is the per-cell document inside a "cell" event: the
// cell's canonical index (ExperimentShape.CellSpecs order — also
// row-major position in the final document), its grid coordinates and
// its compact ReportJSON.
type cellPayload struct {
	Index       int             `json:"index"`
	System      string          `json:"system"`
	SwitchTrace bool            `json:"switch_trace"`
	RateMHz     uint64          `json:"rate_mhz"`
	SizeBytes   uint64          `json:"size_bytes"`
	Report      json.RawMessage `json:"report"`
}

// cellEvent serializes one cell payload for the job event stream; nil
// on a marshal failure (the event is then recorded as count-only
// progress).
func cellEvent(k int, spec harness.RunSpec, report json.RawMessage) []byte {
	label := spec.System.String()
	if p := policy.Normalize(spec.Policy); p != "" {
		label += "+" + p
	}
	b, err := json.Marshal(cellPayload{
		Index:       k,
		System:      label,
		SwitchTrace: spec.SwitchTrace,
		RateMHz:     spec.IssueMHz,
		SizeBytes:   spec.SizeBytes,
		Report:      report,
	})
	if err != nil {
		return nil
	}
	return b
}

// eventBuffer is the per-subscriber channel depth: a subscriber that
// falls this many events behind the publisher is dropped (it resumes
// by sequence). Sized to hold the largest default experiment grid (2
// systems x 6 rates x 6 sizes) plus the terminal event.
const eventBuffer = 128

// parseCursor parses a resume cursor (?from= or Last-Event-ID): the
// sequence number of the last event the client saw. Malformed cursors
// are rejected rather than silently replaying from zero, which would
// duplicate everything the client already has.
func parseCursor(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad resume cursor %q: want a decimal event sequence", v)
	}
	return n, nil
}

// formatSSE renders one event as a Server-Sent Events frame:
//
//	id: <seq>
//	event: <type>
//	data: <compact JSON of the event>
//
// followed by a blank line. The data is the same jobs.Event JSON the
// NDJSON fallback emits, so clients can share one decoder.
func formatSSE(e jobs.Event) ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return b.Bytes(), nil
}

// parseSSE decodes one formatSSE frame back into the event. It is the
// codec's inverse — the round-trip is fuzzed — and doubles as the
// reference client decoder the e2e tests use.
func parseSSE(frame []byte) (jobs.Event, error) {
	var (
		e       jobs.Event
		sawData bool
		id      uint64
		typ     string
	)
	sc := bufio.NewScanner(bytes.NewReader(frame))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame terminator (or trailing blank).
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				return jobs.Event{}, fmt.Errorf("bad SSE id line %q: %w", line, err)
			}
			id = n
		case strings.HasPrefix(line, "event: "):
			typ = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[len("data: "):]), &e); err != nil {
				return jobs.Event{}, fmt.Errorf("bad SSE data line: %w", err)
			}
			sawData = true
		default:
			return jobs.Event{}, fmt.Errorf("unrecognized SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return jobs.Event{}, err
	}
	if !sawData {
		return jobs.Event{}, fmt.Errorf("SSE frame has no data line")
	}
	if e.Seq != id {
		return jobs.Event{}, fmt.Errorf("SSE id %d disagrees with event seq %d", id, e.Seq)
	}
	if e.Type != typ {
		return jobs.Event{}, fmt.Errorf("SSE event type %q disagrees with payload type %q", typ, e.Type)
	}
	return e, nil
}

// synthesizeEvents reconstructs the full event burst for a job that
// was answered from the result cache and therefore never published
// live events: every cell of the cached document in canonical order,
// then the terminal event. Sequence numbers match what a live run
// would have produced only in count, not arrival order — which is
// fine, because a cached job has no live order to preserve.
func synthesizeEvents(data []byte) ([]jobs.Event, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	var events []jobs.Event
	emit := func(payload []byte) {
		events = append(events, jobs.Event{
			Seq:  uint64(len(events) + 1),
			Type: "cell",
			Cell: payload,
		})
	}
	switch probe.Kind {
	case "experiment":
		var doc harness.ExperimentDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, err
		}
		k := 0
		for _, grid := range doc.Systems {
			for r, rate := range doc.RatesMHz {
				for c, size := range doc.SizesBytes {
					if r >= len(grid.Rows) || c >= len(grid.Rows[r]) {
						return nil, fmt.Errorf("document grid is ragged")
					}
					rb, err := json.Marshal(grid.Rows[r][c])
					if err != nil {
						return nil, err
					}
					pb, err := json.Marshal(cellPayload{
						Index:       k,
						System:      grid.System,
						SwitchTrace: grid.SwitchTrace,
						RateMHz:     rate,
						SizeBytes:   size,
						Report:      rb,
					})
					if err != nil {
						return nil, err
					}
					emit(pb)
					k++
				}
			}
		}
	case "run":
		var doc harness.RunDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, err
		}
		rb, err := json.Marshal(doc.Report)
		if err != nil {
			return nil, err
		}
		pb, err := json.Marshal(cellPayload{
			Index:     0,
			System:    doc.Report.Name,
			RateMHz:   doc.Report.ClockMHz,
			SizeBytes: doc.Report.BlockBytes,
			Report:    rb,
		})
		if err != nil {
			return nil, err
		}
		emit(pb)
	default:
		return nil, fmt.Errorf("cannot synthesize events for document kind %q", probe.Kind)
	}
	events = append(events, jobs.Event{Seq: uint64(len(events) + 1), Type: string(jobs.StateDone)})
	return events, nil
}

// handleJobEvents serves GET /v1/jobs/{id}/events.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	cursor := r.URL.Query().Get("from")
	if cursor == "" {
		cursor = r.Header.Get("Last-Event-ID")
	}
	from, err := parseCursor(cursor)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	stream := j.Events()
	var (
		replay []jobs.Event
		tail   <-chan jobs.Event
		cancel func()
	)
	if stream.Len() == 0 && j.Status().State == jobs.StateDone {
		// Cache-hit job: no recorded events. Replay the whole burst
		// from the cached document instead.
		data, rerr := j.Result()
		if rerr != nil {
			writeError(w, http.StatusInternalServerError, rerr.Error())
			return
		}
		all, serr := synthesizeEvents(data)
		if serr != nil {
			writeError(w, http.StatusInternalServerError, serr.Error())
			return
		}
		if from < uint64(len(all)) {
			replay = all[from:]
		}
		cancel = func() {}
	} else {
		replay, tail, cancel = stream.Subscribe(from, eventBuffer)
	}
	defer cancel()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(e jobs.Event) bool {
		var (
			frame []byte
			ferr  error
		)
		if sse {
			frame, ferr = formatSSE(e)
		} else {
			frame, ferr = json.Marshal(e)
			frame = append(frame, '\n')
		}
		if ferr != nil {
			return false
		}
		if _, werr := w.Write(frame); werr != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	for _, e := range replay {
		if !writeEvent(e) || e.Terminal() {
			return
		}
	}
	if tail == nil {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case e, ok := <-tail:
			if !ok {
				// Dropped as a slow subscriber (no terminal event was
				// delivered): end the stream; the client resumes with
				// from = last seen sequence.
				return
			}
			if !writeEvent(e) || e.Terminal() {
				return
			}
		}
	}
}
