// Package server exposes the experiment harness over HTTP: the
// RAMpage experiment service. Requests name experiments or single
// simulation points in the same vocabulary as the CLIs (scales,
// system names, issue-rate/size grids); responses are the exact
// versioned JSON documents rampage-bench and rampage-sim emit, so a
// served table3 is byte-comparable against the committed goldens.
//
// The service layers the jobs manager's guarantees onto HTTP:
// content-addressed caching (a repeated request never re-simulates),
// singleflight (identical concurrent requests share one simulation),
// bounded-queue backpressure (429 + Retry-After instead of unbounded
// latency), cancellation (client disconnect or DELETE aborts the
// underlying sweep), and graceful drain for shutdown.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rampage/internal/checkpoint"
	"rampage/internal/fleet"
	"rampage/internal/harness"
	"rampage/internal/jobs"
	"rampage/internal/metrics"
	"rampage/internal/policy"
)

// Config sizes the service.
type Config struct {
	// Scales maps scale names to harness configurations. Nil selects
	// the standard harness scales (quick, default, full); tests inject
	// smaller ones.
	Scales map[string]harness.Config
	// Workers bounds concurrently running jobs (min 1). Each sweep job
	// additionally parallelizes across its grid cells, governed by
	// SweepParallel.
	Workers int
	// QueueDepth bounds accepted-but-not-running jobs (min 1); beyond
	// it submissions get 429.
	QueueDepth int
	// JobTimeout bounds one job's execution (0 = unlimited).
	JobTimeout time.Duration
	// CacheBytes budgets the result cache (<= 0 = unlimited).
	CacheBytes int64
	// SweepParallel is the per-job grid parallelism (harness
	// Config.Workers; 0 = one per CPU).
	SweepParallel int
	// RetryAfter is the hint returned with 429 responses (default 5s).
	RetryAfter time.Duration
	// TenantRate, when positive, rate-limits each tenant's submissions
	// of real work (jobs per second, accruing up to TenantBurst tokens;
	// see jobs.Config). Exhausted buckets get 429 with a bucket-derived
	// Retry-After. Tenants are named by the X-Tenant header or ?tenant=
	// query parameter; the empty name is the shared anonymous tenant.
	TenantRate  float64
	TenantBurst int
	// TenantWeights sets per-tenant fair-queue weights (absent = 1).
	TenantWeights map[string]int
	// Stats receives the service counters; nil allocates a private set.
	Stats *metrics.ServiceStats
	// TenantStats receives per-tenant counters; nil allocates a private
	// set.
	TenantStats *metrics.TenantStats
	// CheckpointBytes budgets the warm-state checkpoint store's
	// resident bytes (<= 0 = unlimited); CheckpointDir is its disk
	// spill directory ("" = evictions are dropped). Every job's runs
	// share the store, so repeated and extended requests warm-start
	// from the newest dominating checkpoint.
	CheckpointBytes int64
	CheckpointDir   string
	// DiskDir, when set, roots the persistent disk-backed result store
	// behind the in-memory LRU: content-addressed documents that
	// survive restarts and deduplicate cells fleet-wide. DiskBytes is
	// its byte budget (<= 0 = unlimited).
	DiskDir   string
	DiskBytes int64
	// FleetLeaseTTL bounds how long a worker may hold a leased cell
	// without renewing before the coordinator requeues it (0 = the
	// fleet default).
	FleetLeaseTTL time.Duration
}

// Server is the HTTP experiment service.
type Server struct {
	cfg     Config
	mgr     *jobs.Manager
	stats   *metrics.ServiceStats
	tenants *metrics.TenantStats
	ckpts   *checkpoint.Store
	disk    *jobs.DiskStore
	fleet   *fleet.Coordinator
	mux     *http.ServeMux
}

// New builds the service and starts its worker pool. Callers must
// Drain it on shutdown. The only construction failure is an unusable
// disk-store directory.
func New(cfg Config) (*Server, error) {
	if cfg.Stats == nil {
		cfg.Stats = &metrics.ServiceStats{}
	}
	if cfg.TenantStats == nil {
		cfg.TenantStats = &metrics.TenantStats{}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	var disk *jobs.DiskStore
	if cfg.DiskDir != "" {
		d, err := jobs.NewDiskStore(cfg.DiskDir, cfg.DiskBytes, cfg.Stats)
		if err != nil {
			return nil, err
		}
		disk = d
	}
	s := &Server{
		cfg:     cfg,
		stats:   cfg.Stats,
		tenants: cfg.TenantStats,
		ckpts:   checkpoint.NewStore(cfg.CheckpointBytes, cfg.CheckpointDir, cfg.Stats),
		disk:    disk,
		mgr: jobs.NewManager(jobs.Config{
			Workers:       cfg.Workers,
			QueueDepth:    cfg.QueueDepth,
			JobTimeout:    cfg.JobTimeout,
			CacheBytes:    cfg.CacheBytes,
			TenantRate:    cfg.TenantRate,
			TenantBurst:   cfg.TenantBurst,
			TenantWeights: cfg.TenantWeights,
			Stats:         cfg.Stats,
			Tenants:       cfg.TenantStats,
			Disk:          disk,
		}),
		mux: http.NewServeMux(),
	}
	s.fleet = fleet.NewCoordinator(fleet.CoordinatorConfig{
		LeaseTTL: cfg.FleetLeaseTTL,
		Disk:     disk,
		Stats:    cfg.Stats,
		Local: func(ctx context.Context, cell fleet.CellSpec) ([]byte, error) {
			return fleet.ExecuteCell(ctx, cell, s.ckpts)
		},
	})
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/compare", s.handleCompare)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.fleet.Routes(s.mux)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats exposes the counter set (tests assert on it).
func (s *Server) Stats() *metrics.ServiceStats { return s.stats }

// Fleet exposes the coordinator (worker-mode processes and tests talk
// to it directly).
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// Drain stops admitting work and waits for in-flight jobs; if ctx
// expires first, remaining jobs are canceled. The fleet coordinator
// drains first: no new leases are created for new work, but cells
// already queued (they belong to in-flight jobs) keep flowing to
// workers so those jobs can finish before the manager's wait returns.
func (s *Server) Drain(ctx context.Context) error {
	s.fleet.Drain()
	return s.mgr.Drain(ctx)
}

// configFor resolves a scale name and optional seed override into a
// validated harness configuration with the service's sweep
// parallelism applied.
func (s *Server) configFor(scale string, seed *uint64) (harness.Config, error) {
	if scale == "" {
		scale = "default"
	}
	var cfg harness.Config
	if s.cfg.Scales != nil {
		c, ok := s.cfg.Scales[scale]
		if !ok {
			return harness.Config{}, fmt.Errorf("unknown scale %q", scale)
		}
		cfg = c
	} else {
		c, err := harness.ConfigForScale(scale)
		if err != nil {
			return harness.Config{}, err
		}
		cfg = c
	}
	if seed != nil {
		cfg.Seed = *seed
	}
	cfg.Workers = s.cfg.SweepParallel
	if err := cfg.Validate(); err != nil {
		return harness.Config{}, err
	}
	return cfg, nil
}

// experimentRequest names one experiment sweep. Zero grids select the
// paper defaults; the figure experiments pin their own issue rate.
type experimentRequest struct {
	ID         string   `json:"id"`
	Scale      string   `json:"scale,omitempty"`
	Seed       *uint64  `json:"seed,omitempty"`
	RatesMHz   []uint64 `json:"rates_mhz,omitempty"`
	SizesBytes []uint64 `json:"sizes_bytes,omitempty"`
}

// runRequest names one simulation point. Metrics additionally
// attaches an event-probe collector (the PR-2 observer layer) for the
// run and includes its summary in the document — the summary is as
// deterministic as the report, so the result stays cacheable.
// MaxRefs overrides the scale's reference budget, and ExtendRefs asks
// for that budget plus K more references: because the budget is part
// of the cache key but not the checkpoint prefix, an extended run is a
// distinct cached document that warm-starts from the shorter run's
// stored state instead of re-simulating the shared prefix.
type runRequest struct {
	Scale       string  `json:"scale,omitempty"`
	Seed        *uint64 `json:"seed,omitempty"`
	System      string  `json:"system"`
	IssueMHz    uint64  `json:"issue_mhz"`
	SizeBytes   uint64  `json:"size_bytes"`
	SwitchTrace bool    `json:"switch_trace,omitempty"`
	Policy      string  `json:"policy,omitempty"`
	Metrics     bool    `json:"metrics,omitempty"`
	MaxRefs     uint64  `json:"max_refs,omitempty"`
	ExtendRefs  uint64  `json:"extend_refs,omitempty"`
}

// httpError carries a status code out of request-assembly helpers.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errorf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// experimentJob turns an experiment request into a jobs.Request whose
// document is byte-identical to rampage-bench -format json output.
func (s *Server) experimentJob(req experimentRequest) (jobs.Request, error) {
	if !harness.HasJSONForm(req.ID) {
		if _, ok := harness.FindExperiment(req.ID); !ok {
			return jobs.Request{}, errorf(http.StatusNotFound, "unknown experiment %q", req.ID)
		}
		return jobs.Request{}, errorf(http.StatusBadRequest,
			"experiment %q has no JSON form (the service serves tables 3-5 and figs 2-4)", req.ID)
	}
	cfg, err := s.configFor(req.Scale, req.Seed)
	if err != nil {
		return jobs.Request{}, errorf(http.StatusBadRequest, "%v", err)
	}
	cfg.Checkpoints = s.ckpts
	cells, _ := harness.ExperimentCells(req.ID, req.RatesMHz, req.SizesBytes)
	id, rates, sizes := req.ID, req.RatesMHz, req.SizesBytes
	sh, err := harness.ShapeOf(id, rates, sizes)
	if err != nil {
		return jobs.Request{}, errorf(http.StatusBadRequest, "%v", err)
	}
	specs := sh.CellSpecs()
	return jobs.Request{
		Key:   harness.ExperimentKey(cfg, id, rates, sizes),
		Label: "experiment:" + id,
		Cells: cells,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			// Each completed cell is published to the job's event stream
			// as a cell payload: its canonical index (CellSpecs order),
			// grid coordinates and compact ReportJSON.
			emit := func(k int, report json.RawMessage) {
				progress(cellEvent(k, specs[k], report))
			}
			// With live workers, shard the grid across the fleet; the
			// assembled document is byte-identical to the local path.
			// ErrNotWireable (custom profile sets) falls back to local
			// execution; any other fleet error is real.
			if s.fleet.LiveWorkers() > 0 {
				data, err := s.fleet.BuildExperimentDoc(ctx, cfg, id, rates, sizes, emit)
				if err == nil {
					return data, nil
				}
				if !errors.Is(err, fleet.ErrNotWireable) {
					return nil, err
				}
			}
			c := cfg
			c.CellResult = func(k int, rep harness.ReportJSON) {
				rb, err := json.Marshal(rep)
				if err != nil {
					progress(nil) // count the cell even if the payload failed
					return
				}
				emit(k, rb)
			}
			doc, err := harness.BuildExperimentDoc(ctx, c, id, rates, sizes)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			if err := harness.WriteJSON(&buf, doc); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}, nil
}

// runJob turns a run request into a jobs.Request producing the
// rampage-sim -format json document.
func (s *Server) runJob(req runRequest) (jobs.Request, error) {
	cfg, err := s.configFor(req.Scale, req.Seed)
	if err != nil {
		return jobs.Request{}, errorf(http.StatusBadRequest, "%v", err)
	}
	system, err := harness.ParseSystemKind(req.System)
	if err != nil {
		return jobs.Request{}, errorf(http.StatusBadRequest, "%v", err)
	}
	spec := harness.RunSpec{
		System:      system,
		IssueMHz:    req.IssueMHz,
		SizeBytes:   req.SizeBytes,
		SwitchTrace: req.SwitchTrace,
		Policy:      req.Policy,
	}
	if err := spec.Validate(); err != nil {
		return jobs.Request{}, errorf(http.StatusBadRequest, "%v", err)
	}
	if req.MaxRefs > 0 {
		cfg.MaxRefs = req.MaxRefs
	}
	if req.ExtendRefs > 0 {
		if cfg.MaxRefs == 0 {
			return jobs.Request{}, errorf(http.StatusBadRequest,
				"extend_refs needs a base budget (set max_refs or use a budgeted scale)")
		}
		cfg.MaxRefs += req.ExtendRefs
	}
	cfg.Checkpoints = s.ckpts
	key := harness.RunKey(cfg, spec)
	if req.Metrics {
		// The observer never changes the report, but the document gains
		// a metrics section, so it is a distinct cache entry.
		key += ":metrics"
	}
	withMetrics := req.Metrics
	sysLabel := system.String()
	if pol := policy.Normalize(spec.Policy); pol != "" {
		sysLabel += "+" + pol
	}
	label := fmt.Sprintf("run:%s@%dMHz/%dB", sysLabel, spec.IssueMHz, spec.SizeBytes)
	if req.ExtendRefs > 0 {
		label = fmt.Sprintf("extend:%s@%dMHz/%dB+%d", sysLabel, spec.IssueMHz, spec.SizeBytes, req.ExtendRefs)
	}
	return jobs.Request{
		Key:   key,
		Label: label,
		Cells: 1,
		Do: func(ctx context.Context, progress func(cell []byte)) ([]byte, error) {
			c := cfg
			var col *metrics.Collector
			if withMetrics {
				col = metrics.NewCollector(0)
				c.Observer = col
			}
			rep, err := harness.Run(ctx, c, spec)
			if err != nil {
				return nil, err
			}
			if rb, merr := json.Marshal(harness.NewReportJSON(rep)); merr == nil {
				progress(cellEvent(0, spec, rb))
			} else {
				progress(nil)
			}
			var buf bytes.Buffer
			if err := harness.WriteJSON(&buf, harness.NewRunDoc(rep, col)); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}, nil
}

// handleListExperiments inventories the experiments and marks which
// have a JSON form the service can serve.
func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID       string `json:"id"`
		Title    string `json:"title"`
		Servable bool   `json:"servable"`
	}
	var items []item
	for _, e := range harness.Experiments() {
		items = append(items, item{ID: e.ID, Title: e.Title, Servable: harness.HasJSONForm(e.ID)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": items, "scales": s.scaleNames()})
}

func (s *Server) scaleNames() []string {
	if s.cfg.Scales == nil {
		return harness.ScaleNames
	}
	names := make([]string, 0, len(s.cfg.Scales))
	for name := range s.cfg.Scales {
		names = append(names, name)
	}
	return names
}

// handleExperiment serves one experiment synchronously:
// GET /v1/experiments/table3?scale=default&rates=200,400&sizes=4096.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	req := experimentRequest{ID: r.PathValue("id"), Scale: r.URL.Query().Get("scale")}
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad seed %q", v))
			return
		}
		req.Seed = &seed
	}
	var err error
	if req.RatesMHz, err = harness.ParseGridList(r.URL.Query().Get("rates")); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.SizesBytes, err = harness.ParseGridList(r.URL.Query().Get("sizes")); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	jreq, err := s.experimentJob(req)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	s.serveSync(w, r, jreq)
}

// handleRun serves one simulation point synchronously: POST /v1/runs.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	jreq, err := s.runJob(req)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	s.serveSync(w, r, jreq)
}

// tenantOf names the requesting tenant: the X-Tenant header wins,
// then the ?tenant= query parameter; absent both, the shared
// anonymous tenant "".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return r.URL.Query().Get("tenant")
}

// serveSync answers a request from the cache when possible, otherwise
// submits it and blocks until the shared job finishes. Backpressure
// surfaces as 429 with a Retry-After hint; a draining service as 503.
func (s *Server) serveSync(w http.ResponseWriter, r *http.Request, req jobs.Request) {
	req.Tenant = tenantOf(r)
	if data, ok := s.mgr.Lookup(req.Key); ok {
		writeDocument(w, data)
		return
	}
	j, err := s.mgr.Submit(req)
	if err != nil {
		writeSubmitError(w, err, s.cfg.RetryAfter)
		return
	}
	data, err := s.mgr.Wait(r.Context(), j)
	switch {
	case err == nil:
		writeDocument(w, data)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client went away or the job was canceled under it; the
		// job itself keeps running for other waiters unless it too was
		// canceled. 499-style: nothing useful to say.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// jobRequest is the async submission body: kind "experiment", "run" or
// "extend" plus that kind's fields (flattened — embedding the request
// structs would collide on the shared scale/seed tags). An "extend"
// job lengthens a run by extend_refs references on top of its base
// budget, warm-starting from the newest dominating checkpoint.
type jobRequest struct {
	Kind        string   `json:"kind"`
	ID          string   `json:"id,omitempty"`
	Scale       string   `json:"scale,omitempty"`
	Seed        *uint64  `json:"seed,omitempty"`
	RatesMHz    []uint64 `json:"rates_mhz,omitempty"`
	SizesBytes  []uint64 `json:"sizes_bytes,omitempty"`
	System      string   `json:"system,omitempty"`
	IssueMHz    uint64   `json:"issue_mhz,omitempty"`
	SizeBytes   uint64   `json:"size_bytes,omitempty"`
	SwitchTrace bool     `json:"switch_trace,omitempty"`
	Policy      string   `json:"policy,omitempty"`
	Metrics     bool     `json:"metrics,omitempty"`
	MaxRefs     uint64   `json:"max_refs,omitempty"`
	ExtendRefs  uint64   `json:"extend_refs,omitempty"`
}

// handleSubmitJob enqueues work asynchronously: POST /v1/jobs returns
// 202 with the job status; poll GET /v1/jobs/{id} and fetch
// GET /v1/jobs/{id}/result.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var (
		jreq jobs.Request
		err  error
	)
	switch req.Kind {
	case "experiment":
		jreq, err = s.experimentJob(experimentRequest{
			ID: req.ID, Scale: req.Scale, Seed: req.Seed,
			RatesMHz: req.RatesMHz, SizesBytes: req.SizesBytes,
		})
	case "run":
		jreq, err = s.runJob(runRequest{
			Scale: req.Scale, Seed: req.Seed, System: req.System,
			IssueMHz: req.IssueMHz, SizeBytes: req.SizeBytes,
			SwitchTrace: req.SwitchTrace, Policy: req.Policy, Metrics: req.Metrics,
			MaxRefs: req.MaxRefs, ExtendRefs: req.ExtendRefs,
		})
	case "extend":
		if req.ExtendRefs == 0 {
			writeError(w, http.StatusBadRequest, "extend job needs extend_refs > 0")
			return
		}
		jreq, err = s.runJob(runRequest{
			Scale: req.Scale, Seed: req.Seed, System: req.System,
			IssueMHz: req.IssueMHz, SizeBytes: req.SizeBytes,
			SwitchTrace: req.SwitchTrace, Policy: req.Policy, Metrics: req.Metrics,
			MaxRefs: req.MaxRefs, ExtendRefs: req.ExtendRefs,
		})
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown job kind %q (want experiment, run or extend)", req.Kind))
		return
	}
	if err != nil {
		writeRequestError(w, err)
		return
	}
	jreq.Tenant = tenantOf(r)
	j, err := s.mgr.Submit(jreq)
	if err != nil {
		writeSubmitError(w, err, s.cfg.RetryAfter)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.StateDone:
		data, err := j.Result()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeDocument(w, data)
	case jobs.StateFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	case jobs.StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
	default:
		// Still queued or running: 202 tells the poller to come back.
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if !s.mgr.Cancel(id) {
		writeError(w, http.StatusConflict, "job already finished")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	length, capacity := s.mgr.QueueDepth()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"queue_length":   length,
		"queue_capacity": capacity,
	})
}

// handleMetricsz serves the service counters. The default rendering
// is the Prometheus text exposition format (0.0.4) so standard
// scrapers work out of the box; ?format=json or an Accept header
// preferring application/json keeps the legacy structured document.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if wantsJSONMetrics(r) {
		s.writeMetricsJSON(w)
		return
	}
	s.writeMetricsProm(w)
}

func wantsJSONMetrics(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func (s *Server) writeMetricsJSON(w http.ResponseWriter) {
	length, capacity := s.mgr.QueueDepth()
	doc := map[string]any{
		"counters": s.stats.Snapshot(),
		"tenants":  s.tenants.Snapshot(),
		"cache": map[string]any{
			"entries": s.mgr.Cache().Len(),
			"bytes":   s.mgr.Cache().Bytes(),
		},
		"checkpoints": map[string]any{
			"entries": s.ckpts.Len(),
			"bytes":   s.ckpts.Bytes(),
		},
		"queue": map[string]any{
			"length":   length,
			"capacity": capacity,
		},
		"fleet":            s.fleet.Status(),
		"policy_evictions": policy.EvictionsSnapshot(),
	}
	if s.disk != nil {
		doc["disk"] = map[string]any{
			"entries": s.disk.Len(),
			"bytes":   s.disk.Bytes(),
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// writeMetricsProm renders every counter and gauge in the Prometheus
// text format, deterministically ordered: service counters first, then
// the labeled per-policy and per-tenant families, then the gauges.
func (s *Server) writeMetricsProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", metrics.PromContentType)
	p := metrics.NewPromWriter(w)

	for c := metrics.ServiceCounter(0); c < metrics.NumServiceCounters; c++ {
		name := "rampage_" + c.String() + "_total"
		p.Counter(name, "Service counter "+c.String()+".")
		p.SampleUint(name, nil, s.stats.Get(c))
	}

	evictions := policy.EvictionsSnapshot()
	p.Counter("rampage_policy_evictions_total", "SRAM page evictions by replacement policy.")
	for _, pol := range metrics.SortedKeys(evictions) {
		p.SampleUint("rampage_policy_evictions_total", [][2]string{{"policy", pol}}, evictions[pol])
	}

	tenants := s.tenants.Snapshot()
	tenantNames := metrics.SortedKeys(tenants)
	for c := metrics.TenantCounter(0); c < metrics.NumTenantCounters; c++ {
		name := "rampage_" + c.String() + "_total"
		p.Counter(name, "Per-tenant counter "+c.String()+".")
		for _, tenant := range tenantNames {
			p.SampleUint(name, [][2]string{{"tenant", tenant}}, tenants[tenant][c.String()])
		}
	}

	type gauge struct {
		name, help string
		value      uint64
	}
	length, capacity := s.mgr.QueueDepth()
	gauges := []gauge{
		{"rampage_queue_length", "Jobs accepted but not yet running.", uint64(length)},
		{"rampage_queue_capacity", "Queue admission bound.", uint64(capacity)},
		{"rampage_cache_entries", "Result cache entries resident in memory.", uint64(s.mgr.Cache().Len())},
		{"rampage_cache_bytes", "Result cache resident bytes.", uint64(s.mgr.Cache().Bytes())},
		{"rampage_checkpoint_entries", "Warm-state checkpoints resident in memory.", uint64(s.ckpts.Len())},
		{"rampage_checkpoint_bytes", "Warm-state checkpoint resident bytes.", uint64(s.ckpts.Bytes())},
	}
	if s.disk != nil {
		gauges = append(gauges,
			gauge{"rampage_disk_entries", "Persistent result-store entries.", uint64(s.disk.Len())},
			gauge{"rampage_disk_bytes", "Persistent result-store bytes.", uint64(s.disk.Bytes())},
		)
	}
	fs := s.fleet.Status()
	gauges = append(gauges,
		gauge{"rampage_fleet_pending", "Fleet cells awaiting a lease.", uint64(fs.Pending)},
		gauge{"rampage_fleet_leased", "Fleet cells currently leased.", uint64(fs.Leased)},
		gauge{"rampage_fleet_workers", "Registered fleet workers.", uint64(len(fs.Workers))},
	)
	for _, g := range gauges {
		p.Gauge(g.name, g.help)
		p.SampleUint(g.name, nil, g.value)
	}
}

func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeDocument sends a cached/computed report document verbatim —
// the bytes are already the stable WriteJSON rendering, so they pass
// through untouched to stay golden-comparable.
func writeDocument(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeRequestError maps request-assembly errors (which carry their
// own status) onto the response.
func writeRequestError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		writeError(w, he.code, he.msg)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// writeSubmitError maps manager admission errors: a full queue or an
// exhausted tenant token bucket is 429 with a Retry-After hint (the
// bucket's refill time when rate limited), a draining service 503.
func writeSubmitError(w http.ResponseWriter, err error, retryAfter time.Duration) {
	var rl *jobs.RateLimitError
	switch {
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(rl.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "tenant rate limited; retry later")
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
		writeError(w, http.StatusTooManyRequests, "queue full; retry later")
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// retryAfterSeconds rounds a wait up to whole seconds (min 1 — a
// Retry-After of 0 would invite an immediate, pointless retry).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
