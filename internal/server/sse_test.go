package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rampage/internal/harness"
	"rampage/internal/jobs"
)

func sseEvents() []jobs.Event {
	return []jobs.Event{
		{Seq: 1, Type: "cell", Cell: json.RawMessage(`{"index":0,"system":"rampage","switch_trace":false,"rate_mhz":200,"size_bytes":4096,"report":{"name":"rampage"}}`)},
		{Seq: 2, Type: "cell", Cell: json.RawMessage(`{"index":1}`)},
		{Seq: 3, Type: "done"},
		{Seq: 4, Type: "failed", Error: "boom: line\ttab"},
		{Seq: 5, Type: "canceled"},
	}
}

// compactJSON normalizes a raw message for comparison: json.Marshal
// compacts embedded RawMessages, so round-tripped cells can differ
// from the original only in insignificant whitespace.
func compactJSON(t testing.TB, raw json.RawMessage) string {
	t.Helper()
	if len(raw) == 0 {
		return ""
	}
	var b bytes.Buffer
	if err := json.Compact(&b, raw); err != nil {
		t.Fatalf("compact %s: %v", raw, err)
	}
	return b.String()
}

func eventsEqual(t testing.TB, a, b jobs.Event) bool {
	t.Helper()
	return a.Seq == b.Seq && a.Type == b.Type && a.Error == b.Error &&
		compactJSON(t, a.Cell) == compactJSON(t, b.Cell)
}

// TestSSERoundTrip checks parseSSE inverts formatSSE for every event
// shape the stream produces.
func TestSSERoundTrip(t *testing.T) {
	for _, e := range sseEvents() {
		frame, err := formatSSE(e)
		if err != nil {
			t.Fatalf("format %+v: %v", e, err)
		}
		if !bytes.HasSuffix(frame, []byte("\n\n")) {
			t.Fatalf("frame %q does not end with a blank line", frame)
		}
		got, err := parseSSE(frame)
		if err != nil {
			t.Fatalf("parse %q: %v", frame, err)
		}
		if !eventsEqual(t, got, e) {
			t.Fatalf("round trip %+v -> %q -> %+v", e, frame, got)
		}
	}
}

// TestParseSSERejectsMalformed pins the codec's rejection paths: the
// parser must never silently accept a frame whose envelope disagrees
// with its payload.
func TestParseSSERejectsMalformed(t *testing.T) {
	cases := []struct {
		name, frame, wantErr string
	}{
		{"empty", "", "no data line"},
		{"no data", "id: 1\nevent: done\n\n", "no data line"},
		{"bad id", "id: x\nevent: done\ndata: {\"seq\":1,\"type\":\"done\"}\n\n", "bad SSE id line"},
		{"bad json", "id: 1\nevent: done\ndata: {nope\n\n", "bad SSE data line"},
		{"id mismatch", "id: 2\nevent: done\ndata: {\"seq\":1,\"type\":\"done\"}\n\n", "disagrees with event seq"},
		{"type mismatch", "id: 1\nevent: cell\ndata: {\"seq\":1,\"type\":\"done\"}\n\n", "disagrees with payload type"},
		{"junk line", "id: 1\nevent: done\nretry: 5\ndata: {\"seq\":1,\"type\":\"done\"}\n\n", "unrecognized SSE line"},
	}
	for _, tc := range cases {
		_, err := parseSSE([]byte(tc.frame))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: parseSSE error = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

// FuzzSSECodec feeds arbitrary bytes to the SSE parser: anything it
// accepts must re-format and re-parse to the same event, and anything
// else must be rejected with an error, never a panic or a mangled
// event.
func FuzzSSECodec(f *testing.F) {
	for _, e := range sseEvents() {
		frame, err := formatSSE(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte("id: 1\nevent: done\nretry: 5\n\n"))
	f.Add([]byte("data: {\"seq\":0,\"type\":\"\"}\n\n"))
	f.Add([]byte("id: 99999999999999999999\nevent: x\ndata: {}\n\n"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		e, err := parseSSE(frame)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		reframed, err := formatSSE(e)
		if err != nil {
			t.Fatalf("parsed event %+v does not re-format: %v", e, err)
		}
		got, err := parseSSE(reframed)
		if err != nil {
			t.Fatalf("re-formatted frame %q does not re-parse: %v", reframed, err)
		}
		if !eventsEqual(t, got, e) {
			t.Fatalf("codec drift: %+v -> %q -> %+v", e, reframed, got)
		}
	})
}

// TestParseCursor pins resume-cursor parsing: empty means from the
// start, decimal sequences pass through, everything else is rejected.
func TestParseCursor(t *testing.T) {
	if n, err := parseCursor(""); n != 0 || err != nil {
		t.Errorf(`parseCursor("") = (%d, %v)`, n, err)
	}
	if n, err := parseCursor("42"); n != 42 || err != nil {
		t.Errorf(`parseCursor("42") = (%d, %v)`, n, err)
	}
	for _, bad := range []string{"abc", "-1", "1.5", "0x10", " 7", "7 ", "+7"} {
		if _, err := parseCursor(bad); err == nil {
			t.Errorf("parseCursor(%q) accepted a malformed cursor", bad)
		}
	}
}

// TestSynthesizeEventsExperiment checks cache-hit synthesis walks the
// document grid in canonical cell order and ends with a terminal done
// event.
func TestSynthesizeEventsExperiment(t *testing.T) {
	mk := func(name string, clock, block uint64) harness.ReportJSON {
		return harness.ReportJSON{Name: name, ClockMHz: clock, BlockBytes: block}
	}
	doc := harness.ExperimentDoc{
		Version:    harness.ReportVersion,
		Kind:       "experiment",
		ID:         "t",
		Title:      "test grid",
		RatesMHz:   []uint64{100, 200},
		SizesBytes: []uint64{10},
		Systems: []harness.SystemGrid{
			{System: "a", SwitchTrace: false, Rows: [][]harness.ReportJSON{{mk("a", 100, 10)}, {mk("a", 200, 10)}}},
			{System: "b+awrp", SwitchTrace: true, Rows: [][]harness.ReportJSON{{mk("b", 100, 10)}, {mk("b", 200, 10)}}},
		},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	events, err := synthesizeEvents(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 4 cells + done", len(events))
	}
	wantCells := []struct {
		system string
		sw     bool
		rate   uint64
	}{
		{"a", false, 100}, {"a", false, 200},
		{"b+awrp", true, 100}, {"b+awrp", true, 200},
	}
	for i, want := range wantCells {
		e := events[i]
		if e.Seq != uint64(i+1) || e.Type != "cell" {
			t.Fatalf("event %d = %+v", i, e)
		}
		var cell cellPayload
		if err := json.Unmarshal(e.Cell, &cell); err != nil {
			t.Fatal(err)
		}
		if cell.Index != i || cell.System != want.system || cell.SwitchTrace != want.sw ||
			cell.RateMHz != want.rate || cell.SizeBytes != 10 {
			t.Fatalf("cell %d = %+v, want %+v", i, cell, want)
		}
	}
	last := events[len(events)-1]
	if last.Type != "done" || !last.Terminal() || last.Seq != 5 {
		t.Fatalf("terminal event = %+v", last)
	}
}

// TestSynthesizeEventsRun checks the single-cell run form.
func TestSynthesizeEventsRun(t *testing.T) {
	doc := harness.RunDoc{
		Version: harness.ReportVersion,
		Kind:    "run",
		Report:  harness.ReportJSON{Name: "rampage", ClockMHz: 500, BlockBytes: 4096},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	events, err := synthesizeEvents(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Type != "cell" || events[1].Type != "done" {
		t.Fatalf("events = %+v", events)
	}
	var cell cellPayload
	if err := json.Unmarshal(events[0].Cell, &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Index != 0 || cell.System != "rampage" || cell.RateMHz != 500 || cell.SizeBytes != 4096 {
		t.Fatalf("cell = %+v", cell)
	}
}

// TestSynthesizeEventsErrors pins the refusal paths: unknown document
// kinds and ragged grids are errors, not truncated streams.
func TestSynthesizeEventsErrors(t *testing.T) {
	if _, err := synthesizeEvents([]byte(`{"kind":"prose"}`)); err == nil ||
		!strings.Contains(err.Error(), "cannot synthesize") {
		t.Errorf("unknown kind error = %v", err)
	}
	if _, err := synthesizeEvents([]byte(`not json`)); err == nil {
		t.Error("non-JSON document accepted")
	}
	ragged := `{"kind":"experiment","rates_mhz":[100,200],"sizes_bytes":[10],` +
		`"systems":[{"system":"a","rows":[[{"name":"a"}]]}]}`
	if _, err := synthesizeEvents([]byte(ragged)); err == nil ||
		!strings.Contains(err.Error(), "ragged") {
		t.Errorf("ragged grid error = %v", err)
	}
}
