package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rampage/internal/harness"
	"rampage/internal/regress"
	"rampage/internal/server"
)

// streamEvent mirrors jobs.Event on the wire.
type streamEvent struct {
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"`
	Cell  json.RawMessage `json:"cell,omitempty"`
	Error string          `json:"error,omitempty"`
}

// streamCell mirrors the server's per-cell event payload.
type streamCell struct {
	Index       int             `json:"index"`
	System      string          `json:"system"`
	SwitchTrace bool            `json:"switch_trace"`
	RateMHz     uint64          `json:"rate_mhz"`
	SizeBytes   uint64          `json:"size_bytes"`
	Report      json.RawMessage `json:"report"`
}

func terminalType(typ string) bool {
	return typ == "done" || typ == "failed" || typ == "canceled"
}

// streamNDJSON reads a job's event stream (NDJSON form) to its end and
// returns the events. The server ends the stream after the terminal
// event, so a plain read-to-EOF is the whole contract.
func streamNDJSON(t *testing.T, url string) []streamEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: %d %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		var e streamEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// reassemble rebuilds the experiment document from streamed cell
// events, byte-identically to what the harness serves.
func reassemble(t *testing.T, id string, rates, sizes []uint64, events []streamEvent) []byte {
	t.Helper()
	sh, err := harness.ShapeOf(id, rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	want := len(sh.Systems) * len(sh.RatesMHz) * len(sh.SizesBytes)
	reports := make([]harness.ReportJSON, want)
	seen := make([]bool, want)
	for _, e := range events {
		if e.Type != "cell" {
			continue
		}
		var cell streamCell
		if err := json.Unmarshal(e.Cell, &cell); err != nil {
			t.Fatalf("bad cell payload %s: %v", e.Cell, err)
		}
		if cell.Index < 0 || cell.Index >= want {
			t.Fatalf("cell index %d out of range [0,%d)", cell.Index, want)
		}
		if seen[cell.Index] {
			t.Fatalf("cell %d streamed twice", cell.Index)
		}
		seen[cell.Index] = true
		dec := json.NewDecoder(bytes.NewReader(cell.Report))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&reports[cell.Index]); err != nil {
			t.Fatalf("cell %d report: %v", cell.Index, err)
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never streamed (%d events)", i, len(events))
		}
	}
	doc, err := sh.Doc(reports)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkEventInvariants asserts dense sequence numbers and a single
// trailing terminal event.
func checkEventInvariants(t *testing.T, events []streamEvent, wantTerminal string) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want dense numbering from 1", i, e.Seq)
		}
		if terminalType(e.Type) != (i == len(events)-1) {
			t.Fatalf("terminal event out of place: %d/%d %+v", i, len(events), e)
		}
	}
	if last := events[len(events)-1]; last.Type != wantTerminal {
		t.Fatalf("terminal event = %+v, want %q", last, wantTerminal)
	}
}

// TestStreamedCellsReassembleDocuments is the headline streaming
// guarantee: for every experiment with a JSON form, the streamed cell
// events reassemble into a document byte-identical to the job's final
// result.
func TestStreamedCellsReassembleDocuments(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 16})
	rates := []uint64{200, 400}
	sizes := []uint64{256, 1024}
	for _, id := range []string{"table3", "table4", "table5", "fig2", "fig3", "fig4", "policies"} {
		t.Run(id, func(t *testing.T) {
			body := fmt.Sprintf(`{"kind":"experiment","id":%q,"scale":"tiny","rates_mhz":[200,400],"sizes_bytes":[256,1024]}`, id)
			code, resp, _ := post(t, ts.URL+"/v1/jobs", body)
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d %s", code, resp)
			}
			var st struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(resp, &st); err != nil {
				t.Fatal(err)
			}
			events := streamNDJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
			checkEventInvariants(t, events, "done")

			rebuilt := reassemble(t, id, rates, sizes, events)
			code, final, _ := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
			if code != http.StatusOK {
				t.Fatalf("result: %d %s", code, final)
			}
			if !bytes.Equal(rebuilt, final) {
				t.Fatalf("%s: reassembled stream differs from final document (%d vs %d bytes)", id, len(rebuilt), len(final))
			}
		})
	}
}

// TestStreamSSEFrames checks the Server-Sent Events rendering: content
// type, id/event/data frame structure, and agreement with the NDJSON
// events.
func TestStreamSSEFrames(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	body := `{"kind":"experiment","id":"table5","scale":"tiny","rates_mhz":[200],"sizes_bytes":[256,1024]}`
	code, resp, _ := post(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if ct := hresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(hresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := strings.Split(strings.TrimSuffix(string(raw), "\n\n"), "\n\n")
	var events []streamEvent
	for _, frame := range frames {
		lines := strings.Split(frame, "\n")
		if len(lines) != 3 {
			t.Fatalf("frame %q: want id/event/data lines", frame)
		}
		if !strings.HasPrefix(lines[0], "id: ") || !strings.HasPrefix(lines[1], "event: ") || !strings.HasPrefix(lines[2], "data: ") {
			t.Fatalf("frame %q: malformed lines", frame)
		}
		var e streamEvent
		if err := json.Unmarshal([]byte(lines[2][len("data: "):]), &e); err != nil {
			t.Fatalf("frame data: %v", err)
		}
		if fmt.Sprintf("id: %d", e.Seq) != lines[0] || "event: "+e.Type != lines[1] {
			t.Fatalf("frame %q disagrees with its payload %+v", frame, e)
		}
		events = append(events, e)
	}
	checkEventInvariants(t, events, "done")
	// 1 system x 1 rate x 2 sizes + terminal.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
}

// TestStreamResumeCursor checks both resume channels (?from= and
// Last-Event-ID) replay exactly the events past the cursor.
func TestStreamResumeCursor(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	id := runTinyTable5Job(t, ts.URL)
	full := streamNDJSON(t, ts.URL+"/v1/jobs/"+id+"/events")
	checkEventInvariants(t, full, "done")
	if len(full) < 2 {
		t.Fatalf("need at least 2 events, got %d", len(full))
	}

	cursor := full[len(full)-2].Seq
	resumed := streamNDJSON(t, fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, id, cursor))
	if len(resumed) != 1 || !reflect.DeepEqual(resumed[0], full[len(full)-1]) {
		t.Fatalf("?from=%d resumed %+v, want just the terminal event", cursor, resumed)
	}

	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("Last-Event-ID resume returned %d events, want 1", len(lines))
	}

	// A cursor past the end of a finished stream yields no events.
	past := streamNDJSON(t, fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, id, full[len(full)-1].Seq))
	if len(past) != 0 {
		t.Fatalf("past-the-end cursor returned %+v", past)
	}
}

// runTinyTable5Job submits a small table5 job and waits for it.
func runTinyTable5Job(t *testing.T, base string) string {
	t.Helper()
	code, resp, _ := post(t, base+"/v1/jobs", `{"kind":"experiment","id":"table5","scale":"tiny","rates_mhz":[200],"sizes_bytes":[256,1024]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := get(t, base+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var js struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		if js.State == "done" {
			return st.ID
		}
		if js.State == "failed" || js.State == "canceled" {
			t.Fatalf("job ended %s", js.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamBadCursorAndUnknownJob pins the error paths: malformed
// resume cursors are 400 (not a silent replay from zero), unknown jobs
// 404.
func TestStreamBadCursorAndUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	id := runTinyTable5Job(t, ts.URL)
	for _, cursor := range []string{"abc", "-1", "1.5", "0x10"} {
		code, body, _ := get(t, ts.URL+"/v1/jobs/"+id+"/events?from="+cursor)
		if code != http.StatusBadRequest {
			t.Errorf("?from=%s: %d %s, want 400", cursor, code, body)
		}
	}
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: %d, want 400", resp.StatusCode)
	}
	code, _, _ := get(t, ts.URL+"/v1/jobs/nosuch/events")
	if code != http.StatusNotFound {
		t.Errorf("unknown job stream: %d, want 404", code)
	}
}

// TestStreamCancelMidStream opens a stream on a long-running job,
// cancels the job, and requires the stream to end promptly with a
// canceled terminal event — the live half of the drain story.
func TestStreamCancelMidStream(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	code, resp, _ := post(t, ts.URL+"/v1/jobs", `{"kind":"run","scale":"slow","system":"rampage","issue_mhz":1000,"size_bytes":4096}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}

	type streamResult struct {
		events []streamEvent
		err    error
	}
	results := make(chan streamResult, 1)
	go func() {
		hresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			results <- streamResult{nil, err}
			return
		}
		defer hresp.Body.Close()
		var events []streamEvent
		sc := bufio.NewScanner(hresp.Body)
		for sc.Scan() {
			var e streamEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				results <- streamResult{nil, err}
				return
			}
			events = append(events, e)
		}
		results <- streamResult{events, sc.Err()}
	}()

	// Give the subscriber a moment to attach, then cancel the job.
	time.Sleep(100 * time.Millisecond)
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}

	select {
	case r := <-results:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.events) == 0 || r.events[len(r.events)-1].Type != "canceled" {
			t.Fatalf("stream events = %+v, want a canceled terminal event", r.events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream never ended after cancel")
	}
}

// TestStreamDrainMidStream starts a server drain while a subscriber is
// attached to a running job: the drain hard-cancels the job (expired
// drain context) and the subscriber sees a terminal event instead of a
// hung stream.
func TestStreamDrainMidStream(t *testing.T) {
	cfg := server.Config{Workers: 1, QueueDepth: 4, Scales: testScales()}
	svc, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	code, resp, _ := post(t, ts.URL+"/v1/jobs", `{"kind":"run","scale":"slow","system":"rampage","issue_mhz":1000,"size_bytes":4096}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}

	type streamOutcome struct {
		events []streamEvent
		err    error
	}
	done := make(chan streamOutcome, 1)
	go func() {
		hresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
		if err != nil {
			done <- streamOutcome{nil, err}
			return
		}
		defer hresp.Body.Close()
		var events []streamEvent
		sc := bufio.NewScanner(hresp.Body)
		for sc.Scan() {
			var e streamEvent
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				done <- streamOutcome{nil, err}
				return
			}
			events = append(events, e)
		}
		done <- streamOutcome{events, sc.Err()}
	}()

	time.Sleep(100 * time.Millisecond)
	drainCtx, cancel := contextWithTimeout(200 * time.Millisecond)
	defer cancel()
	svc.Drain(drainCtx) // expires, hard-canceling the in-flight job

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if len(out.events) == 0 || !terminalType(out.events[len(out.events)-1].Type) {
			t.Fatalf("stream events = %+v, want a terminal event after drain", out.events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream never ended after drain")
	}
}

// TestStreamCacheAndDiskHitBursts checks jobs answered without running
// — from the in-memory cache, and from the persistent disk store after
// a restart — still serve streaming subscribers a complete synthesized
// burst that reassembles byte-identically.
func TestStreamCacheAndDiskHitBursts(t *testing.T) {
	diskDir := t.TempDir()
	rates := []uint64{200, 400}
	sizes := []uint64{256, 1024}
	body := `{"kind":"experiment","id":"table3","scale":"tiny","rates_mhz":[200,400],"sizes_bytes":[256,1024]}`

	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8, DiskDir: diskDir})
	// Populate cache and disk store.
	code, final, _ := get(t, ts.URL+"/v1/experiments/table3?scale=tiny&rates=200,400&sizes=256,1024")
	if code != http.StatusOK {
		t.Fatalf("populate: %d %.200s", code, final)
	}

	// Memory cache hit: the job is terminal at submission with no live
	// events; the stream must synthesize the full burst.
	id := submitAndWaitDone(t, ts.URL, body)
	events := streamNDJSON(t, ts.URL+"/v1/jobs/"+id+"/events")
	checkEventInvariants(t, events, "done")
	if rebuilt := reassemble(t, "table3", rates, sizes, events); !bytes.Equal(rebuilt, final) {
		t.Fatalf("cache-hit burst reassembly differs (%d vs %d bytes)", len(rebuilt), len(final))
	}

	// Restart: a fresh server over the same disk store answers from
	// disk, again with a synthesized burst.
	ts2, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8, DiskDir: diskDir})
	id2 := submitAndWaitDone(t, ts2.URL, body)
	events2 := streamNDJSON(t, ts2.URL+"/v1/jobs/"+id2+"/events")
	checkEventInvariants(t, events2, "done")
	if rebuilt := reassemble(t, "table3", rates, sizes, events2); !bytes.Equal(rebuilt, final) {
		t.Fatalf("disk-hit burst reassembly differs (%d vs %d bytes)", len(rebuilt), len(final))
	}
	// The synthesized burst also honors resume cursors.
	tail := streamNDJSON(t, fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts2.URL, id2, len(events2)-1))
	if len(tail) != 1 || tail[0].Type != "done" {
		t.Fatalf("synthesized resume = %+v, want just the terminal event", tail)
	}
}

// submitAndWaitDone submits an async job and polls it to done.
func submitAndWaitDone(t *testing.T, base, body string) string {
	t.Helper()
	code, resp, _ := post(t, base+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body, _ := get(t, base+"/v1/jobs/"+st.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var js struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatal(err)
		}
		switch js.State {
		case "done":
			return st.ID
		case "failed", "canceled":
			t.Fatalf("job ended %s", js.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCompareEndpoint checks POST /v1/compare agrees exactly with the
// shared comparator the regress CLI uses, for inline documents, job
// references, and hard errors.
func TestCompareEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})
	goldenPath := filepath.Join("..", "..", "testdata", "golden", "table3.json")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	type compareResp struct {
		Equal bool     `json:"equal"`
		Diffs []string `json:"diffs"`
	}
	compare := func(body string) (int, compareResp, []byte) {
		t.Helper()
		code, raw, _ := post(t, ts.URL+"/v1/compare", body)
		var cr compareResp
		if code == http.StatusOK {
			if err := json.Unmarshal(raw, &cr); err != nil {
				t.Fatal(err)
			}
		}
		return code, cr, raw
	}

	// Self-comparison of a committed golden: equal, like the CLI gate.
	code, cr, raw := compare(fmt.Sprintf(`{"golden":%s,"candidate":%s}`, golden, golden))
	if code != http.StatusOK || !cr.Equal || len(cr.Diffs) != 0 {
		t.Fatalf("golden self-compare = %d %s", code, raw)
	}

	// A perturbed candidate: the endpoint must report exactly the diffs
	// the shared comparator (and therefore the CLI) computes.
	var doc map[string]any
	if err := json.Unmarshal(golden, &doc); err != nil {
		t.Fatal(err)
	}
	doc["title"] = "tampered"
	tampered, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	wantDiffs, err := regress.CompareReportBytes(golden, tampered)
	if err != nil {
		t.Fatal(err)
	}
	code, cr, raw = compare(fmt.Sprintf(`{"golden":%s,"candidate":%s}`, golden, tampered))
	if code != http.StatusOK || cr.Equal {
		t.Fatalf("tampered compare = %d %s", code, raw)
	}
	if !reflect.DeepEqual(cr.Diffs, wantDiffs) {
		t.Fatalf("endpoint diffs %v != comparator diffs %v", cr.Diffs, wantDiffs)
	}

	// Job references: a finished job's document compared against itself
	// inline.
	id := runTinyTable5Job(t, ts.URL)
	codeR, result, _ := get(t, ts.URL+"/v1/jobs/"+id+"/result")
	if codeR != http.StatusOK {
		t.Fatalf("result: %d", codeR)
	}
	code, cr, raw = compare(fmt.Sprintf(`{"golden":%q,"candidate":%s}`, id, result))
	if code != http.StatusOK || !cr.Equal {
		t.Fatalf("job-vs-inline compare = %d %s", code, raw)
	}

	// Hard errors are 400s: unknown job, schema version mismatch,
	// malformed body.
	if code, _, raw = compare(`{"golden":"j999999","candidate":{}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown job compare = %d %s", code, raw)
	}
	doc["version"] = 999
	crossVersion, _ := json.Marshal(doc)
	if code, _, raw = compare(fmt.Sprintf(`{"golden":%s,"candidate":%s}`, golden, crossVersion)); code != http.StatusBadRequest {
		t.Fatalf("cross-version compare = %d %s", code, raw)
	}
	if code, _, raw = compare(`{"golden":`); code != http.StatusBadRequest {
		t.Fatalf("malformed compare = %d %s", code, raw)
	}
	if code, _, raw = compare(`{"candidate":{}}`); code != http.StatusBadRequest {
		t.Fatalf("missing golden compare = %d %s", code, raw)
	}
}

// TestTenantRateLimit429 checks per-tenant admission over HTTP: the
// burst passes, the next submission is 429 with a Retry-After hint,
// and an unrelated tenant is unaffected.
func TestTenantRateLimit429(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{
		Workers: 2, QueueDepth: 16,
		TenantRate: 1e-9, TenantBurst: 1,
	})
	submit := func(tenant string, seed int) (int, []byte, http.Header) {
		t.Helper()
		body := fmt.Sprintf(`{"kind":"run","scale":"tiny","system":"rampage","issue_mhz":1000,"size_bytes":4096,"seed":%d}`, seed)
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data, resp.Header
	}

	if code, body, _ := submit("alice", 1); code != http.StatusAccepted {
		t.Fatalf("first alice submit: %d %s", code, body)
	}
	code, body, hdr := submit("alice", 2)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second alice submit: %d %s, want 429", code, body)
	}
	if !strings.Contains(string(body), "rate limited") {
		t.Errorf("429 body %s does not mention rate limiting", body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	if code, body, _ := submit("bob", 3); code != http.StatusAccepted {
		t.Fatalf("bob submit: %d %s (another tenant's bucket leaked?)", code, body)
	}
}

// TestMetricszPrometheus checks the default /metricsz rendering is
// valid text exposition format: correct content type, a HELP and TYPE
// header for every sampled family, counters suffixed _total, and the
// per-tenant and per-policy labeled families present.
func TestMetricszPrometheus(t *testing.T) {
	ts, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	// Drive one tenant-attributed request so labeled samples exist.
	code, body, _ := get(t, ts.URL+"/v1/experiments/table5?scale=tiny&rates=200&sizes=256&tenant=alice")
	if code != http.StatusOK {
		t.Fatalf("experiment: %d %s", code, body)
	}

	code, raw, hdr := get(t, ts.URL+"/metricsz")
	if code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}

	typed := map[string]string{} // family -> counter|gauge
	helped := map[string]bool{}
	samples := map[string]string{} // full sample key -> value
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge") {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 || parts[3] == "" {
				t.Fatalf("bad HELP line %q", line)
			}
			helped[parts[2]] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line %q", line)
		default:
			idx := strings.LastIndexByte(line, ' ')
			if idx < 0 {
				t.Fatalf("bad sample line %q", line)
			}
			key, value := line[:idx], line[idx+1:]
			family := key
			if b := strings.IndexByte(key, '{'); b >= 0 {
				family = key[:b]
				if !strings.HasSuffix(key, "}") {
					t.Fatalf("unterminated labels in %q", line)
				}
			}
			kind, ok := typed[family]
			if !ok || !helped[family] {
				t.Fatalf("sample %q missing TYPE/HELP headers", line)
			}
			if kind == "counter" && !strings.HasSuffix(family, "_total") {
				t.Errorf("counter family %q not suffixed _total", family)
			}
			if value == "" {
				t.Fatalf("empty value in %q", line)
			}
			samples[key] = value
		}
	}
	for _, want := range []string{
		"rampage_jobs_accepted_total",
		"rampage_sim_runs_total",
		"rampage_queue_length",
		"rampage_queue_capacity",
		"rampage_cache_entries",
		"rampage_fleet_workers",
		`rampage_tenant_jobs_accepted_total{tenant="alice"}`,
		`rampage_tenant_jobs_done_total{tenant="alice"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("sample %q missing from exposition (have %d samples)", want, len(samples))
		}
	}
	if got := samples[`rampage_tenant_jobs_accepted_total{tenant="alice"}`]; got != "1" {
		t.Errorf(`alice accepted = %s, want 1`, got)
	}
}

// TestStreamTable3GoldenScaleE2E streams the full default-scale table3
// job and requires the reassembled document to be byte-identical to
// the committed golden. Full sweep (~a minute): skipped under -short,
// run by the CI streaming job.
func TestStreamTable3GoldenScaleE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweep; run without -short (CI streaming job)")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "table3.json"))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := server.New(server.Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainCtx, cancel := contextWithTimeout(time.Minute)
		defer cancel()
		svc.Drain(drainCtx)
	})

	code, resp, _ := post(t, ts.URL+"/v1/jobs", `{"kind":"experiment","id":"table3","scale":"default"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	events := streamNDJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/events")
	checkEventInvariants(t, events, "done")
	rebuilt := reassemble(t, "table3", nil, nil, events)
	if !bytes.Equal(rebuilt, golden) {
		t.Fatalf("streamed table3 differs from the committed golden (%d vs %d bytes)", len(rebuilt), len(golden))
	}
}
