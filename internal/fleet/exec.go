package fleet

import (
	"context"
	"encoding/json"

	"rampage/internal/checkpoint"
	"rampage/internal/harness"
)

// ExecuteCell runs one sweep cell locally and returns its ReportJSON
// bytes. It is the single execution path shared by workers and by the
// coordinator's no-workers fallback, so a cell's bytes are identical
// wherever it runs: reconstruct the canonical configuration, attach
// the local warm-state checkpoint store (warm restores are
// bit-identical to cold runs), simulate, flatten.
func ExecuteCell(ctx context.Context, cell CellSpec, ckpts *checkpoint.Store) ([]byte, error) {
	cfg := cell.Config.Config()
	cfg.Checkpoints = ckpts
	rep, err := harness.Run(ctx, cfg, cell.Spec)
	if err != nil {
		return nil, err
	}
	return json.Marshal(harness.NewReportJSON(rep))
}

// orderCells returns the leased batch warmest-first against the local
// checkpoint store, per harness.PlanCells: cells a stored checkpoint
// completes outright run (and stream back) first, then resumable ones
// by warmth, then cold cells in lease order. Batches can mix
// configurations (cells from different experiments or scales), so the
// plan is computed per configuration group and groups keep their
// relative order.
func orderCells(cells []CellSpec, ckpts *checkpoint.Store) []CellSpec {
	if ckpts == nil || len(cells) < 2 {
		return cells
	}
	type group struct {
		wire  harness.WireConfig
		cells []CellSpec
	}
	var groups []*group
	byCfg := make(map[harness.WireConfig]*group)
	for _, c := range cells {
		g, ok := byCfg[c.Config]
		if !ok {
			g = &group{wire: c.Config}
			byCfg[c.Config] = g
			groups = append(groups, g)
		}
		g.cells = append(g.cells, c)
	}
	out := make([]CellSpec, 0, len(cells))
	for _, g := range groups {
		cfg := g.wire.Config()
		cfg.Checkpoints = ckpts
		specs := make([]harness.RunSpec, len(g.cells))
		byKey := make(map[harness.RunSpec]CellSpec, len(g.cells))
		for i, c := range g.cells {
			specs[i] = c.Spec
			byKey[c.Spec] = c
		}
		for _, pc := range harness.PlanCells(cfg, specs).Cells {
			out = append(out, byKey[pc.Spec])
		}
	}
	return out
}
