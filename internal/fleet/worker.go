package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rampage/internal/checkpoint"
	"rampage/internal/jobs"
	"rampage/internal/metrics"
)

// WorkerConfig configures one worker process (or in-process worker).
type WorkerConfig struct {
	// CoordinatorURL is the coordinator's base URL, e.g.
	// "http://host:8080". Required.
	CoordinatorURL string
	// Name labels the worker in the coordinator's status document.
	Name string
	// Parallel is how many cells to execute concurrently (default 1) —
	// also the lease batch size, so a worker never hoards cells it
	// cannot start.
	Parallel int
	// Checkpoints, when non-nil, is the worker's local warm-state
	// store; leased batches are ordered warmest-first against it.
	Checkpoints *checkpoint.Store
	// Disk, when non-nil, is the worker's local content-addressed
	// result store. Leased cells are answered from it without
	// re-simulating (cell keys are harness.RunKey hashes, so a stored
	// document is the cell's exact bytes), and freshly simulated cells
	// are written back so a re-lease after coordinator restart or
	// requeue costs one disk read instead of a simulation.
	Disk *jobs.DiskStore
	// Stats receives local counters (sim runs, checkpoint hits); its
	// snapshot piggybacks on lease requests for the coordinator's
	// per-worker rollup. May be nil.
	Stats *metrics.ServiceStats
	// Client is the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Worker pulls cells from a coordinator, executes them locally and
// streams results back. Create with NewWorker, drive with Run.
type Worker struct {
	cfg      WorkerConfig
	client   *http.Client
	logf     func(string, ...any)
	leaseTTL time.Duration
	poll     time.Duration
	id       string

	drain chan struct{} // closed by Drain
	once  sync.Once

	simulated atomic.Uint64 // cells actually simulated (memo misses)
}

// Simulated returns how many leased cells this worker actually
// simulated; cells answered from its local result store don't count.
func (w *Worker) Simulated() uint64 { return w.simulated.Load() }

// executeCell answers one leased cell: local result store first (the
// memoized path), simulation on miss with a write-back so the next
// lease of the same cell is a disk hit.
func (w *Worker) executeCell(ctx context.Context, cell CellSpec) ([]byte, error) {
	if w.cfg.Disk != nil {
		if data, ok := w.cfg.Disk.Get(cell.Key); ok {
			w.logf("cell %s served from local store", shortKey(cell.Key))
			return data, nil
		}
	}
	data, err := ExecuteCell(ctx, cell, w.cfg.Checkpoints)
	if err != nil {
		return nil, err
	}
	w.simulated.Add(1)
	w.cfg.Stats.Add(metrics.SvcSimRuns, 1)
	if w.cfg.Disk != nil {
		w.cfg.Disk.Put(cell.Key, data)
	}
	return data, nil
}

// NewWorker validates cfg and returns a worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.CoordinatorURL == "" {
		return nil, errors.New("fleet: worker needs a coordinator URL")
	}
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	w := &Worker{
		cfg:    cfg,
		client: cfg.Client,
		logf:   cfg.Logf,
		drain:  make(chan struct{}),
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	return w, nil
}

// Drain asks Run to finish in-flight cells, deregister and return.
// Safe to call more than once and from any goroutine.
func (w *Worker) Drain() {
	w.once.Do(func() { close(w.drain) })
}

// Run is the worker loop: register (retrying until the coordinator is
// reachable), then lease → execute warmest-first → complete, renewing
// leases at TTL/3 while cells execute. It returns when Drain is called
// (after finishing in-flight cells and deregistering), when the
// coordinator reports it is draining with no work left, or when ctx is
// canceled — a hard stop that abandons leases for the coordinator to
// requeue.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.logf("worker %s registered with %s (parallel=%d)", w.id, w.cfg.CoordinatorURL, w.cfg.Parallel)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.drain:
			w.deregister()
			return nil
		default:
		}
		lease, err := w.lease(ctx)
		if err != nil {
			if errors.Is(err, ErrUnknownWorker) {
				// Coordinator restarted: our registration is gone.
				w.logf("worker %s unknown to coordinator, re-registering", w.id)
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Coordinator unreachable: back off and retry.
			w.logf("lease failed (%v), retrying", err)
			if !w.sleep(ctx, w.poll) {
				return ctx.Err()
			}
			continue
		}
		if len(lease.Cells) == 0 {
			if lease.Draining {
				w.logf("worker %s: coordinator draining and idle, exiting", w.id)
				w.deregister()
				return nil
			}
			if !w.sleep(ctx, w.poll) {
				return ctx.Err()
			}
			continue
		}
		w.executeBatch(ctx, lease.Cells)
	}
}

// executeBatch runs a leased batch: warmest-first ordering, Parallel
// concurrent executors, one shared renewer keeping all still-running
// leases alive.
func (w *Worker) executeBatch(ctx context.Context, cells []CellSpec) {
	cells = orderCells(cells, w.cfg.Checkpoints)

	// The renewer tracks which keys are still unfinished.
	var mu sync.Mutex
	alive := make(map[string]bool, len(cells))
	for _, c := range cells {
		alive[c.Key] = true
	}
	renewCtx, stopRenew := context.WithCancel(ctx)
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		interval := w.leaseTTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-tick.C:
			}
			mu.Lock()
			keys := make([]string, 0, len(alive))
			for k := range alive {
				keys = append(keys, k)
			}
			mu.Unlock()
			if len(keys) > 0 {
				w.renew(renewCtx, keys)
			}
		}
	}()

	sem := make(chan struct{}, w.cfg.Parallel)
	var wg sync.WaitGroup
	for _, cell := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(cell CellSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			data, err := w.executeCell(ctx, cell)
			mu.Lock()
			delete(alive, cell.Key)
			mu.Unlock()
			if ctx.Err() != nil {
				return // hard stop; lease expiry requeues the cell
			}
			if err != nil {
				w.logf("cell %s failed: %v", shortKey(cell.Key), err)
				w.complete(ctx, CompleteRequest{WorkerID: w.id, Key: cell.Key, Error: err.Error()})
				return
			}
			w.complete(ctx, CompleteRequest{WorkerID: w.id, Key: cell.Key, Report: data})
		}(cell)
	}
	wg.Wait()
	stopRenew()
	renewWG.Wait()
}

// register keeps trying until the coordinator answers or ctx ends.
func (w *Worker) register(ctx context.Context) error {
	req := RegisterRequest{Version: ProtoVersion, Name: w.cfg.Name, Parallel: w.cfg.Parallel}
	backoff := 200 * time.Millisecond
	for {
		var resp RegisterResponse
		err := w.post(ctx, "/fleet/v1/register", req, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.leaseTTL = time.Duration(resp.LeaseTTLMs) * time.Millisecond
			w.poll = time.Duration(resp.PollMs) * time.Millisecond
			if w.poll <= 0 {
				w.poll = 500 * time.Millisecond
			}
			return nil
		}
		// A version-mismatch rejection is permanent; retrying would
		// spin forever against a coordinator that will never accept us.
		var he *httpError
		if errors.As(err, &he) && he.code == http.StatusConflict {
			return fmt.Errorf("fleet: register rejected: %w", err)
		}
		w.logf("register failed (%v), retrying in %v", err, backoff)
		if !w.sleep(ctx, backoff) {
			return ctx.Err()
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	req := LeaseRequest{WorkerID: w.id, Max: w.cfg.Parallel, Counters: w.cfg.Stats.Snapshot()}
	var resp LeaseResponse
	err := w.post(ctx, "/fleet/v1/lease", req, &resp)
	return resp, err
}

func (w *Worker) renew(ctx context.Context, keys []string) {
	w.post(ctx, "/fleet/v1/renew", RenewRequest{WorkerID: w.id, Keys: keys}, &struct{}{})
}

// complete retries with backoff: a result the worker spent real
// simulation time on should survive a transient coordinator blip
// (e.g. a restart). Unknown-worker answers re-register and resend —
// the coordinator accepts results from any registered worker.
func (w *Worker) complete(ctx context.Context, req CompleteRequest) {
	backoff := 200 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		req.WorkerID = w.id
		err := w.post(ctx, "/fleet/v1/complete", req, &struct{}{})
		if err == nil {
			return
		}
		if errors.Is(err, ErrUnknownWorker) {
			if w.register(ctx) != nil {
				return
			}
			continue
		}
		if ctx.Err() != nil {
			return
		}
		w.logf("complete %s failed (%v), retrying in %v", shortKey(req.Key), err, backoff)
		if !w.sleep(ctx, backoff) {
			return
		}
		backoff *= 2
	}
	w.logf("complete %s abandoned; lease expiry will requeue it", shortKey(req.Key))
}

func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.post(ctx, "/fleet/v1/deregister", map[string]string{"worker_id": w.id}, &struct{}{})
}

// sleep waits d or until ctx/drain fires; false means stop sleeping
// because ctx ended.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-w.drain:
		return true
	case <-t.C:
		return true
	}
}

// httpError carries the coordinator's status code and error body.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return fmt.Sprintf("coordinator: %d: %s", e.code, e.msg) }

// Unwrap maps 404 onto ErrUnknownWorker so callers can errors.Is it.
func (e *httpError) Unwrap() error {
	if e.code == http.StatusNotFound {
		return ErrUnknownWorker
	}
	return nil
}

func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.CoordinatorURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &eb)
		return &httpError{code: resp.StatusCode, msg: eb.Error}
	}
	return json.Unmarshal(raw, out)
}
