//go:build race

package fleet_test

// raceEnabled mirrors the test binary's -race flag so the proc tests
// build the server binary with the same instrumentation.
const raceEnabled = true
