package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rampage/internal/jobs"
	"rampage/internal/metrics"
)

// CoordinatorConfig sizes the coordinator.
type CoordinatorConfig struct {
	// LeaseTTL bounds how long a worker may hold a cell without
	// renewing before it is requeued (default 15s). Workers renew at
	// TTL/3, so a dead worker's cells reappear within one TTL.
	LeaseTTL time.Duration
	// PollInterval is the idle poll cadence suggested to workers
	// (default 500ms).
	PollInterval time.Duration
	// MaxAttempts bounds how many times a cell is dispatched before
	// its error is surfaced (default 3). Requeues after worker death
	// count as attempts, so a cell that crashes every worker cannot
	// cycle forever.
	MaxAttempts int
	// Disk, when non-nil, persists completed cell results
	// content-addressed by their run key: cells shared between
	// experiments (or re-run after a restart) are answered from disk
	// instead of re-simulated — fleet-wide dedup.
	Disk *jobs.DiskStore
	// Local executes a cell in-process. It is the fallback when cells
	// are queued but no live worker remains (all died mid-sweep), so a
	// fleet degrades to a single machine instead of hanging. Required.
	Local func(ctx context.Context, cell CellSpec) ([]byte, error)
	// Stats receives fleet counters; may be nil.
	Stats *metrics.ServiceStats
}

// Coordinator owns the cell queue, worker registry and leases. All
// methods are safe for concurrent use.
type Coordinator struct {
	cfg CoordinatorConfig

	mu         sync.Mutex
	draining   bool
	nextWorker uint64
	workers    map[string]*workerState
	tasks      map[string]*task // key -> unfinished task
	pending    []*task          // unleased tasks, FIFO
}

// workerState is the registry row for one worker.
type workerState struct {
	id          string
	name        string
	parallel    int
	lastSeen    time.Time
	inflight    map[string]*task
	cellsDone   uint64
	cellsFailed uint64
	counters    map[string]uint64 // last piggybacked snapshot
}

// task is one cell wanted by at least one in-flight job. Tasks are
// deduplicated by key: concurrent experiments sharing a cell wait on
// the same task.
type task struct {
	cell     CellSpec
	attempts int
	leasedBy string    // worker ID, "local", or "" when pending
	deadline time.Time // lease expiry; zero when pending

	done   chan struct{} // closed on completion
	result []byte        // ReportJSON bytes; nil on err
	err    error
}

// NewCoordinator builds a coordinator. Local must be set.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.Local == nil {
		panic("fleet: CoordinatorConfig.Local is required")
	}
	return &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*task),
	}
}

// Register admits a worker and assigns its ID. A version mismatch is
// rejected — a worker built against another report schema would
// contribute incompatible bytes.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Version != ProtoVersion {
		return RegisterResponse{}, fmt.Errorf("fleet: protocol version %d, coordinator wants %d", req.Version, ProtoVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w%04d", c.nextWorker),
		name:     req.Name,
		parallel: req.Parallel,
		lastSeen: time.Now(),
		inflight: make(map[string]*task),
	}
	c.workers[w.id] = w
	return RegisterResponse{
		WorkerID:   w.id,
		LeaseTTLMs: c.cfg.LeaseTTL.Milliseconds(),
		PollMs:     c.cfg.PollInterval.Milliseconds(),
	}, nil
}

// Deregister removes a worker, requeueing anything it still holds.
func (c *Coordinator) Deregister(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[workerID]; ok {
		c.removeWorkerLocked(w)
	}
}

// Lease hands out up to req.Max pending cells and marks the worker
// seen. During drain no new cells are queued service-wide, so the
// pending tasks a draining coordinator still leases all belong to
// in-flight jobs — handing them out is how the fleet finishes them.
// Draining is reported once the queue is empty so idle workers can
// back off.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return LeaseResponse{}, ErrUnknownWorker
	}
	now := time.Now()
	w.lastSeen = now
	if req.Counters != nil {
		w.counters = req.Counters
	}
	c.reapLocked(now)
	resp := LeaseResponse{PollMs: c.cfg.PollInterval.Milliseconds()}
	max := req.Max
	if max < 1 {
		max = 1
	}
	for len(resp.Cells) < max && len(c.pending) > 0 {
		t := c.pending[0]
		c.pending = c.pending[1:]
		t.leasedBy = w.id
		t.deadline = now.Add(c.cfg.LeaseTTL)
		t.attempts++
		w.inflight[t.cell.Key] = t
		resp.Cells = append(resp.Cells, t.cell)
	}
	c.cfg.Stats.Add(metrics.SvcFleetLeased, uint64(len(resp.Cells)))
	resp.Draining = c.draining && len(c.pending) == 0
	return resp, nil
}

// Renew extends the worker's leases on the named cells.
func (c *Coordinator) Renew(req RenewRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return ErrUnknownWorker
	}
	now := time.Now()
	w.lastSeen = now
	for _, key := range req.Keys {
		if t, ok := w.inflight[key]; ok {
			t.deadline = now.Add(c.cfg.LeaseTTL)
		}
	}
	return nil
}

// Complete records one finished cell. Results for unknown or
// already-finished cells are accepted idempotently (persisted to the
// disk store when one is attached): after a coordinator restart a
// worker may legitimately stream back cells the new coordinator never
// leased. Unknown workers get ErrUnknownWorker so they re-register,
// but their result is still kept.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	w, known := c.workers[req.WorkerID]
	if known {
		w.lastSeen = time.Now()
		delete(w.inflight, req.Key)
	}
	t, active := c.tasks[req.Key]
	if req.Error == "" && c.cfg.Disk != nil && len(req.Report) > 0 {
		c.cfg.Disk.Put(req.Key, req.Report)
	}
	if !active {
		c.mu.Unlock()
		if !known {
			return ErrUnknownWorker
		}
		return nil
	}
	if req.Error != "" {
		if known {
			w.cellsFailed++
		}
		if t.attempts >= c.cfg.MaxAttempts {
			c.cfg.Stats.Add(metrics.SvcFleetFailed, 1)
			c.finishLocked(t, nil, fmt.Errorf("fleet: cell %s (%s @ %d MHz / %d B) failed after %d attempts: %s",
				shortKey(t.cell.Key), t.cell.Spec.System, t.cell.Spec.IssueMHz, t.cell.Spec.SizeBytes, t.attempts, req.Error))
		} else {
			c.requeueLocked(t)
		}
		c.mu.Unlock()
		if !known {
			return ErrUnknownWorker
		}
		return nil
	}
	if known {
		w.cellsDone++
	}
	c.cfg.Stats.Add(metrics.SvcFleetCompleted, 1)
	c.finishLocked(t, req.Report, nil)
	c.mu.Unlock()
	if !known {
		return ErrUnknownWorker
	}
	return nil
}

// finishLocked resolves a task and removes it from the index. Caller
// holds the lock.
func (c *Coordinator) finishLocked(t *task, result []byte, err error) {
	t.result, t.err = result, err
	t.leasedBy = ""
	delete(c.tasks, t.cell.Key)
	close(t.done)
}

// requeueLocked puts a leased task back at the head of the queue.
// Caller holds the lock.
func (c *Coordinator) requeueLocked(t *task) {
	t.leasedBy = ""
	t.deadline = time.Time{}
	c.pending = append([]*task{t}, c.pending...)
	c.cfg.Stats.Add(metrics.SvcFleetRequeued, 1)
}

// staleAfter is how long a worker may be silent before it is presumed
// dead. Idle workers poll every PollInterval and busy ones renew at
// TTL/3, so anything quieter than a full TTL plus slack is gone.
func (c *Coordinator) staleAfter() time.Duration {
	return c.cfg.LeaseTTL + c.cfg.LeaseTTL/2
}

// reapLocked requeues expired leases and drops silent workers. Caller
// holds the lock.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) > c.staleAfter() {
			c.removeWorkerLocked(w)
			continue
		}
		for key, t := range w.inflight {
			if now.After(t.deadline) {
				delete(w.inflight, key)
				c.requeueLocked(t)
			}
		}
	}
}

// removeWorkerLocked drops a worker and requeues its leases. Caller
// holds the lock.
func (c *Coordinator) removeWorkerLocked(w *workerState) {
	for _, t := range w.inflight {
		c.requeueLocked(t)
	}
	delete(c.workers, w.id)
}

// LiveWorkers reports how many workers are currently registered and
// not stale. The answer is advisory — a worker can die right after —
// which is why Execute has the local fallback.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(time.Now())
	return len(c.workers)
}

// Drain stops admitting new work: Execute refuses, and once the
// pending queue empties lease responses tell workers to back off.
// Cells already queued or leased — all owned by in-flight jobs — keep
// flowing to workers so those jobs can finish.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
}

// Draining reports whether Drain was called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Status snapshots the fleet for /metricsz and /fleet/v1/workers,
// including the summed per-worker counter rollup.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(time.Now())
	st := Status{Draining: c.draining, Pending: len(c.pending)}
	var snaps []map[string]uint64
	for _, w := range c.workers {
		st.Leased += len(w.inflight)
		st.Workers = append(st.Workers, WorkerStatus{
			ID:          w.id,
			Name:        w.name,
			Parallel:    w.parallel,
			Inflight:    len(w.inflight),
			CellsDone:   w.cellsDone,
			CellsFailed: w.cellsFailed,
			LastSeenMs:  time.Since(w.lastSeen).Milliseconds(),
			Counters:    w.counters,
		})
		if w.counters != nil {
			snaps = append(snaps, w.counters)
		}
	}
	sortWorkers(st.Workers)
	if len(snaps) > 0 {
		st.Rollup = metrics.SumSnapshots(snaps...)
	}
	return st
}

// Execute resolves a set of cells: disk hits answer immediately,
// duplicates collapse onto in-flight tasks, and the rest are queued
// for workers to lease. It blocks until every cell has a result,
// calling progress once per resolved cell with the cell's index and
// its ReportJSON payload (so callers can stream partial results in
// arrival order), and returns the payloads aligned with cells. If
// live workers disappear while cells are still pending, the
// coordinator executes the stragglers itself so the job finishes
// regardless.
func (c *Coordinator) Execute(ctx context.Context, cells []CellSpec, progress func(i int, report json.RawMessage)) ([]json.RawMessage, error) {
	if progress == nil {
		progress = func(int, json.RawMessage) {}
	}
	results := make([]json.RawMessage, len(cells))
	type wait struct {
		t   *task
		idx []int
	}
	waitByKey := make(map[string]*wait)
	var waits []*wait

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, ErrDraining
	}
	for i, cell := range cells {
		if w, ok := waitByKey[cell.Key]; ok {
			w.idx = append(w.idx, i)
			continue
		}
		if c.cfg.Disk != nil {
			if data, ok := c.cfg.Disk.Get(cell.Key); ok {
				results[i] = data
				progress(i, data)
				continue
			}
		}
		t, ok := c.tasks[cell.Key]
		if !ok {
			t = &task{cell: cell, done: make(chan struct{})}
			c.tasks[cell.Key] = t
			c.pending = append(c.pending, t)
		}
		w := &wait{t: t, idx: []int{i}}
		waitByKey[cell.Key] = w
		waits = append(waits, w)
	}
	c.mu.Unlock()

	// Collect: poll the outstanding tasks, reaping dead workers as we
	// go; when the fleet is empty, pull orphaned cells off the queue
	// and run them locally.
	tick := time.NewTicker(c.cfg.PollInterval / 2)
	defer tick.Stop()
	outstanding := waits
	for len(outstanding) > 0 {
		var still []*wait
		for _, w := range outstanding {
			select {
			case <-w.t.done:
				if w.t.err != nil {
					return nil, w.t.err
				}
				for _, i := range w.idx {
					results[i] = w.t.result
					progress(i, w.t.result)
				}
			default:
				still = append(still, w)
			}
		}
		outstanding = still
		if len(outstanding) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-tick.C:
		}
		c.runOrphansLocally(ctx)
	}
	return results, nil
}

// runOrphansLocally executes pending cells in-process while no live
// worker exists. One cell per call keeps the check cheap and lets a
// rejoining worker take over the remainder of the queue.
func (c *Coordinator) runOrphansLocally(ctx context.Context) {
	c.mu.Lock()
	c.reapLocked(time.Now())
	if len(c.workers) > 0 || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	t := c.pending[0]
	c.pending = c.pending[1:]
	t.leasedBy = "local"
	t.attempts++
	c.mu.Unlock()

	data, err := c.cfg.Local(ctx, t.cell)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			// Canceled, not failed: hand the cell back for whoever
			// still wants it.
			c.requeueLocked(t)
			return
		}
		c.cfg.Stats.Add(metrics.SvcFleetFailed, 1)
		c.finishLocked(t, nil, err)
		return
	}
	if c.cfg.Disk != nil {
		c.cfg.Disk.Put(t.cell.Key, data)
	}
	c.cfg.Stats.Add(metrics.SvcFleetLocal, 1)
	c.cfg.Stats.Add(metrics.SvcFleetCompleted, 1)
	c.finishLocked(t, data, nil)
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func sortWorkers(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
