package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rampage/internal/checkpoint"
	"rampage/internal/harness"
	"rampage/internal/jobs"
	"rampage/internal/metrics"
)

func tinyConfig() harness.Config {
	cfg := harness.QuickScaled()
	cfg.RefScale = 1.0 / 10000
	return cfg
}

// coordServer mounts a coordinator behind an httptest server whose
// backing coordinator can be swapped (simulating a restart).
type coordServer struct {
	mu sync.Mutex
	c  *Coordinator
	ts *httptest.Server
}

func newCoordServer(t *testing.T, c *Coordinator) *coordServer {
	t.Helper()
	cs := &coordServer{c: c}
	cs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs.mu.Lock()
		cur := cs.c
		cs.mu.Unlock()
		mux := http.NewServeMux()
		cur.Routes(mux)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(cs.ts.Close)
	return cs
}

func (cs *coordServer) swap(c *Coordinator) {
	cs.mu.Lock()
	cs.c = c
	cs.mu.Unlock()
}

func startWorker(t *testing.T, url, name string) (*Worker, chan error) {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		CoordinatorURL: url,
		Name:           name,
		Parallel:       2,
		Checkpoints:    checkpoint.NewStore(8<<20, "", nil),
		Stats:          &metrics.ServiceStats{},
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(func() {
		cancel()
		<-done
	})
	go func() { done <- w.Run(ctx) }()
	return w, done
}

// waitForWorkers polls until n workers are live.
func waitForWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d live workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerExecutesExperiment drives the whole loop end to end in
// process: a worker leases a real (tiny) experiment grid over HTTP,
// simulates it, streams results back, and the coordinator's assembled
// document is byte-identical to the local harness build.
func TestWorkerExecutesExperiment(t *testing.T) {
	stats := &metrics.ServiceStats{}
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:     2 * time.Second,
		PollInterval: 20 * time.Millisecond,
		Stats:        stats,
		Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
			t.Error("local fallback ran with a live worker")
			return ExecuteCell(ctx, cell, nil)
		},
	})
	cs := newCoordServer(t, c)
	startWorker(t, cs.ts.URL, "tw")
	waitForWorkers(t, c, 1)

	cfg := tinyConfig()
	rates, sizes := []uint64{200, 400}, []uint64{1 << 12}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var cellsDone int
	got, err := c.BuildExperimentDoc(ctx, cfg, "table3", rates, sizes, func(int, json.RawMessage) { cellsDone++ })
	if err != nil {
		t.Fatal(err)
	}

	doc, err := harness.BuildExperimentDoc(ctx, cfg, "table3", rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatalf("fleet document differs from local build (%d vs %d bytes)", len(got), buf.Len())
	}
	if cellsDone == 0 {
		t.Error("progress callback never fired")
	}
	if n := stats.Get(metrics.SvcFleetCompleted); n == 0 {
		t.Error("no cells completed through the fleet")
	}
	if n := stats.Get(metrics.SvcFleetLocal); n != 0 {
		t.Errorf("fleet_cells_local = %d with a live worker", n)
	}
}

// TestWorkerMemoizesReLeasedCells pins the worker-side result store:
// when the coordinator leases the same cells a second time (here
// because it has no store of its own, as after a restart that lost its
// cache), the worker answers every cell from its local DiskStore with
// ZERO re-simulation, and the assembled document is byte-identical.
func TestWorkerMemoizesReLeasedCells(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:     2 * time.Second,
		PollInterval: 20 * time.Millisecond,
		Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
			t.Error("local fallback ran with a live worker")
			return ExecuteCell(ctx, cell, nil)
		},
	})
	cs := newCoordServer(t, c)

	disk, err := jobs.NewDiskStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{
		CoordinatorURL: cs.ts.URL,
		Name:           "memo",
		Parallel:       2,
		Checkpoints:    checkpoint.NewStore(8<<20, "", nil),
		Disk:           disk,
		Stats:          &metrics.ServiceStats{},
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	t.Cleanup(func() {
		wcancel()
		<-wdone
	})
	go func() { wdone <- w.Run(wctx) }()
	waitForWorkers(t, c, 1)

	cfg := tinyConfig()
	rates, sizes := []uint64{200, 400}, []uint64{1 << 12}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	first, err := c.BuildExperimentDoc(ctx, cfg, "table3", rates, sizes, nil)
	if err != nil {
		t.Fatal(err)
	}
	simulated := w.Simulated()
	if simulated == 0 {
		t.Fatal("first pass simulated nothing")
	}
	if disk.Len() == 0 {
		t.Fatal("no cell results written back to the worker store")
	}

	// Same experiment again: the coordinator (storeless) re-leases every
	// cell; the worker must serve all of them from disk.
	second, err := c.BuildExperimentDoc(ctx, cfg, "table3", rates, sizes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Simulated(); got != simulated {
		t.Errorf("re-leased cells re-simulated: %d runs after second pass, want %d", got, simulated)
	}
	if !bytes.Equal(first, second) {
		t.Error("memoized document differs from the simulated one")
	}
}

// TestWorkerSurvivesCoordinatorRestart pins the re-register path: the
// backing coordinator is replaced (fresh state, no registrations), and
// the worker — told it is unknown — re-registers and keeps serving.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	mkCoord := func() *Coordinator {
		return NewCoordinator(CoordinatorConfig{
			LeaseTTL:     2 * time.Second,
			PollInterval: 20 * time.Millisecond,
			Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
				return ExecuteCell(ctx, cell, nil)
			},
		})
	}
	c1 := mkCoord()
	cs := newCoordServer(t, c1)
	startWorker(t, cs.ts.URL, "tw")
	waitForWorkers(t, c1, 1)

	// "Restart" the coordinator: fresh state, no registrations.
	c2 := mkCoord()
	cs.swap(c2)

	cfg := tinyConfig()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := c2.BuildExperimentDoc(ctx, cfg, "table3", []uint64{200}, []uint64{1 << 12}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty document")
	}
	// The worker, told it is unknown, must re-register with the new
	// coordinator and keep serving.
	waitForWorkers(t, c2, 1)
}

// TestWorkerDrain pins graceful worker shutdown: Drain finishes the
// loop, deregisters and Run returns nil.
func TestWorkerDrain(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:     2 * time.Second,
		PollInterval: 10 * time.Millisecond,
		Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
			return ExecuteCell(ctx, cell, nil)
		},
	})
	cs := newCoordServer(t, c)
	w, done := startWorker(t, cs.ts.URL, "tw")
	waitForWorkers(t, c, 1)
	w.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after Drain")
	}
	if n := c.LiveWorkers(); n != 0 {
		t.Errorf("LiveWorkers = %d after drain, want 0", n)
	}
	done <- nil // satisfy the cleanup reader
}

// lossyTransport lets lease/register traffic through but swallows
// /complete calls (blocking until released, then failing) — the
// network shape of a worker that dies after simulating but before its
// result lands, which forces the requeue path deterministically.
type lossyTransport struct {
	base     http.RoundTripper
	released chan struct{}
}

func (l *lossyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/complete") {
		<-l.released
		return nil, errors.New("victim died")
	}
	return l.base.RoundTrip(r)
}

// TestWorkerHardStopRequeues pins the chaos path in process: a worker
// holding a lease dies without deregistering (its result never
// arrives); the coordinator requeues at the lease deadline and a
// second worker finishes the job.
func TestWorkerHardStopRequeues(t *testing.T) {
	stats := &metrics.ServiceStats{}
	c := NewCoordinator(CoordinatorConfig{
		LeaseTTL:     300 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
		Stats:        stats,
		Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
			return ExecuteCell(ctx, cell, nil)
		},
	})
	cs := newCoordServer(t, c)

	released := make(chan struct{})
	victim, verr := NewWorker(WorkerConfig{
		CoordinatorURL: cs.ts.URL,
		Name:           "victim",
		Parallel:       1,
		Client:         &http.Client{Transport: &lossyTransport{base: http.DefaultTransport, released: released}},
		Logf:           t.Logf,
	})
	if verr != nil {
		t.Fatal(verr)
	}
	vctx, vcancel := context.WithCancel(context.Background())
	vdone := make(chan error, 1)
	go func() { vdone <- victim.Run(vctx) }()

	cfg := tinyConfig()
	type result struct {
		data []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		data, err := c.BuildExperimentDoc(ctx, cfg, "table3", []uint64{200}, []uint64{1 << 12}, nil)
		resCh <- result{data, err}
	}()

	// Wait until the victim holds a lease, then kill it without
	// deregistering.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := c.Status(); st.Leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	vcancel()
	close(released)
	<-vdone

	// A rescuer joins; the requeued cells flow to it and the document
	// completes.
	startWorker(t, cs.ts.URL, "rescuer")
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.data) == 0 {
		t.Fatal("empty document")
	}
	if n := stats.Get(metrics.SvcFleetRequeued); n < 1 {
		t.Errorf("fleet_cells_requeued = %d, want >= 1", n)
	}
}
