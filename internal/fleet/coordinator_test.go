package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rampage/internal/harness"
	"rampage/internal/jobs"
	"rampage/internal/metrics"
)

// fakeCells fabricates wire cells with distinct content addresses; the
// coordinator's dispatch logic never looks inside Config/Spec.
func fakeCells(n int) []CellSpec {
	cells := make([]CellSpec, n)
	for i := range cells {
		cells[i] = CellSpec{Key: fmt.Sprintf("cell-%03d", i)}
	}
	return cells
}

func testCoordinator(t *testing.T, mutate func(*CoordinatorConfig)) (*Coordinator, *metrics.ServiceStats) {
	t.Helper()
	stats := &metrics.ServiceStats{}
	cfg := CoordinatorConfig{
		LeaseTTL:     200 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
		Stats:        stats,
		Local: func(ctx context.Context, cell CellSpec) ([]byte, error) {
			return []byte("local:" + cell.Key), nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewCoordinator(cfg), stats
}

func register(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp, err := c.Register(RegisterRequest{Version: ProtoVersion, Name: name, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	return resp.WorkerID
}

// execAsync starts Execute in the background and returns its results.
func execAsync(c *Coordinator, cells []CellSpec) (chan []json.RawMessage, chan error) {
	resCh := make(chan []json.RawMessage, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := c.Execute(context.Background(), cells, nil)
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

// leaseAll polls until the worker has leased want cells (Execute
// enqueues asynchronously from the test's perspective).
func leaseAll(t *testing.T, c *Coordinator, workerID string, want int) []CellSpec {
	t.Helper()
	var got []CellSpec
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want {
		if time.Now().After(deadline) {
			t.Fatalf("leased %d cells, want %d", len(got), want)
		}
		resp, err := c.Lease(LeaseRequest{WorkerID: workerID, Max: want - len(got)})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, resp.Cells...)
		if len(resp.Cells) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return got
}

func TestCoordinatorLeaseAndComplete(t *testing.T) {
	c, stats := testCoordinator(t, nil)
	w := register(t, c, "w")
	cells := fakeCells(3)
	resCh, errCh := execAsync(c, cells)

	for _, cell := range leaseAll(t, c, w, 3) {
		err := c.Complete(CompleteRequest{WorkerID: w, Key: cell.Key, Report: []byte("r:" + cell.Key)})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := <-resCh, <-errCh
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range cells {
		if string(res[i]) != "r:"+cell.Key {
			t.Errorf("res[%d] = %q, want %q", i, res[i], "r:"+cell.Key)
		}
	}
	if n := stats.Get(metrics.SvcFleetLeased); n != 3 {
		t.Errorf("fleet_cells_leased = %d, want 3", n)
	}
	if n := stats.Get(metrics.SvcFleetCompleted); n != 3 {
		t.Errorf("fleet_cells_completed = %d, want 3", n)
	}
	st := c.Status()
	if len(st.Workers) != 1 || st.Workers[0].CellsDone != 3 {
		t.Errorf("status workers = %+v", st.Workers)
	}
}

// TestCoordinatorDedup pins fleet-wide dedup: the same key appearing
// twice in one Execute, and again in a concurrent Execute, is one
// task, one lease, one simulation.
func TestCoordinatorDedup(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	w := register(t, c, "w")
	shared := CellSpec{Key: "shared"}
	res1, err1 := execAsync(c, []CellSpec{shared, shared})
	res2, err2 := execAsync(c, []CellSpec{shared})

	cell := leaseAll(t, c, w, 1)[0]
	if cell.Key != "shared" {
		t.Fatalf("leased %q", cell.Key)
	}
	// No second task may exist: an extra lease comes back empty.
	if resp, _ := c.Lease(LeaseRequest{WorkerID: w, Max: 10}); len(resp.Cells) != 0 {
		t.Fatalf("duplicate key produced %d extra leases", len(resp.Cells))
	}
	if err := c.Complete(CompleteRequest{WorkerID: w, Key: "shared", Report: []byte("once")}); err != nil {
		t.Fatal(err)
	}
	r1, e1 := <-res1, <-err1
	r2, e2 := <-res2, <-err2
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	if string(r1[0]) != "once" || string(r1[1]) != "once" || string(r2[0]) != "once" {
		t.Errorf("deduped results = %q %q %q", r1[0], r1[1], r2[0])
	}
}

// TestCoordinatorRequeueOnExpiry pins dead-worker recovery: a worker
// that leases a cell and goes silent loses it at the lease deadline,
// and a live worker picks it up.
func TestCoordinatorRequeueOnExpiry(t *testing.T) {
	c, stats := testCoordinator(t, nil)
	dead := register(t, c, "dead")
	resCh, errCh := execAsync(c, fakeCells(1))
	got := leaseAll(t, c, dead, 1)
	// The dead worker never renews. After the TTL, a freshly registered
	// worker inherits the cell.
	live := register(t, c, "live")
	time.Sleep(250 * time.Millisecond)
	inherited := leaseAll(t, c, live, 1)
	if inherited[0].Key != got[0].Key {
		t.Fatalf("inherited %q, want %q", inherited[0].Key, got[0].Key)
	}
	if n := stats.Get(metrics.SvcFleetRequeued); n < 1 {
		t.Errorf("fleet_cells_requeued = %d, want >= 1", n)
	}
	if err := c.Complete(CompleteRequest{WorkerID: live, Key: inherited[0].Key, Report: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	if res, err := <-resCh, <-errCh; err != nil || string(res[0]) != "ok" {
		t.Fatalf("Execute = %q, %v", res, err)
	}
}

// TestCoordinatorIdempotentComplete pins restart tolerance: completing
// a cell twice (or completing a cell the coordinator never leased) is
// accepted, and the result lands in the disk store.
func TestCoordinatorIdempotentComplete(t *testing.T) {
	disk, err := jobs.NewDiskStore(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := testCoordinator(t, func(cfg *CoordinatorConfig) { cfg.Disk = disk })
	w := register(t, c, "w")
	resCh, errCh := execAsync(c, fakeCells(1))
	cell := leaseAll(t, c, w, 1)[0]
	for i := 0; i < 2; i++ {
		if err := c.Complete(CompleteRequest{WorkerID: w, Key: cell.Key, Report: []byte("r")}); err != nil {
			t.Fatalf("complete #%d: %v", i+1, err)
		}
	}
	if res, err := <-resCh, <-errCh; err != nil || string(res[0]) != "r" {
		t.Fatalf("Execute = %q, %v", res, err)
	}
	// A cell from a pre-restart lease: unknown key, still persisted.
	if err := c.Complete(CompleteRequest{WorkerID: w, Key: "never-leased", Report: []byte("orphan")}); err != nil {
		t.Fatal(err)
	}
	if data, ok := disk.Get("never-leased"); !ok || string(data) != "orphan" {
		t.Errorf("orphan result not persisted: %q, %v", data, ok)
	}
	// And a next Execute for that key is a pure disk hit: no lease.
	res, err := c.Execute(context.Background(), []CellSpec{{Key: "never-leased"}}, nil)
	if err != nil || string(res[0]) != "orphan" {
		t.Fatalf("disk-hit Execute = %q, %v", res, err)
	}
}

// TestCoordinatorMaxAttempts pins the poison-cell bound: a cell whose
// execution keeps failing is retried MaxAttempts times, then the
// waiting job gets the error instead of spinning forever.
func TestCoordinatorMaxAttempts(t *testing.T) {
	c, stats := testCoordinator(t, func(cfg *CoordinatorConfig) { cfg.MaxAttempts = 2 })
	w := register(t, c, "w")
	_, errCh := execAsync(c, fakeCells(1))
	for attempt := 0; attempt < 2; attempt++ {
		cell := leaseAll(t, c, w, 1)[0]
		if err := c.Complete(CompleteRequest{WorkerID: w, Key: cell.Key, Error: "boom"}); err != nil {
			t.Fatal(err)
		}
	}
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Execute error = %v", err)
	}
	if n := stats.Get(metrics.SvcFleetFailed); n != 1 {
		t.Errorf("fleet_cells_failed = %d, want 1", n)
	}
}

// TestCoordinatorDrain pins fleet drain: new Execute calls are
// refused, but cells already queued keep leasing out so in-flight jobs
// finish, and an idle worker is told to back off.
func TestCoordinatorDrain(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	w := register(t, c, "w")
	resCh, errCh := execAsync(c, fakeCells(1))
	cells := leaseAll(t, c, w, 1)

	c.Drain()
	if _, err := c.Execute(context.Background(), fakeCells(2), nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("Execute while draining = %v, want ErrDraining", err)
	}
	// The leased cell still completes and the pre-drain job finishes.
	if err := c.Complete(CompleteRequest{WorkerID: w, Key: cells[0].Key, Report: []byte("done")}); err != nil {
		t.Fatal(err)
	}
	if res, err := <-resCh, <-errCh; err != nil || string(res[0]) != "done" {
		t.Fatalf("Execute = %q, %v", res, err)
	}
	resp, err := c.Lease(LeaseRequest{WorkerID: w, Max: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Draining || len(resp.Cells) != 0 {
		t.Errorf("post-drain lease = %+v, want draining and empty", resp)
	}
}

// TestCoordinatorOrphanFallback pins the no-workers degradation: with
// no live worker, Execute runs cells through cfg.Local and finishes.
func TestCoordinatorOrphanFallback(t *testing.T) {
	c, stats := testCoordinator(t, nil)
	cells := fakeCells(2)
	res, err := c.Execute(context.Background(), cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range cells {
		if string(res[i]) != "local:"+cell.Key {
			t.Errorf("res[%d] = %q", i, res[i])
		}
	}
	if n := stats.Get(metrics.SvcFleetLocal); n != 2 {
		t.Errorf("fleet_cells_local = %d, want 2", n)
	}
}

func TestCoordinatorRejectsBadVersionAndUnknownWorker(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	if _, err := c.Register(RegisterRequest{Version: ProtoVersion + 1}); err == nil {
		t.Error("version mismatch accepted")
	}
	if _, err := c.Lease(LeaseRequest{WorkerID: "nope"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("lease from unknown worker = %v", err)
	}
	if err := c.Renew(RenewRequest{WorkerID: "nope"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("renew from unknown worker = %v", err)
	}
	if err := c.Complete(CompleteRequest{WorkerID: "nope", Key: "k", Report: []byte("r")}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("complete from unknown worker = %v", err)
	}
}

// TestCoordinatorStaleWorkerRemoved pins registry hygiene: a worker
// silent for ~1.5 lease TTLs disappears from the registry and its
// cells requeue.
func TestCoordinatorStaleWorkerRemoved(t *testing.T) {
	c, _ := testCoordinator(t, nil)
	register(t, c, "ghost")
	if n := c.LiveWorkers(); n != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", n)
	}
	time.Sleep(350 * time.Millisecond) // > 1.5 * 200ms TTL
	if n := c.LiveWorkers(); n != 0 {
		t.Errorf("LiveWorkers = %d after silence, want 0", n)
	}
}

// TestCellsForKeysMatchRunKeys pins the content addresses the fleet
// dispatches on: they are exactly the harness run keys for the
// reconstructed canonical config, so fleet results, the result cache
// and the disk store all address the same bytes.
func TestCellsForKeysMatchRunKeys(t *testing.T) {
	cfg := harness.QuickScaled()
	cfg.RefScale = 1.0 / 10000
	sh, cells, err := CellsFor(cfg, "table3", []uint64{200}, []uint64{1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	specs := sh.CellSpecs()
	if len(cells) != len(specs) {
		t.Fatalf("%d cells, %d specs", len(cells), len(specs))
	}
	seen := make(map[string]bool)
	for i, cell := range cells {
		if cell.Spec != specs[i] {
			t.Errorf("cell %d spec mismatch", i)
		}
		if want := harness.RunKey(cell.Config.Config(), cell.Spec); cell.Key != want {
			t.Errorf("cell %d key = %s, want %s", i, cell.Key, want)
		}
		if want := harness.RunKey(cfg, cell.Spec); cell.Key != want {
			t.Errorf("cell %d key differs from original-config run key", i)
		}
		if seen[cell.Key] {
			t.Errorf("duplicate key %s", cell.Key)
		}
		seen[cell.Key] = true
	}
}
