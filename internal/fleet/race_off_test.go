//go:build !race

package fleet_test

const raceEnabled = false
