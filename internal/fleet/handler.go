package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Routes mounts the coordinator API on mux under /fleet/v1/. The
// protocol is plain JSON over POST (GET for status): register, lease,
// renew, complete, deregister, workers. Unknown-worker conditions map
// to 404 so clients can distinguish "re-register and retry" from
// transport failures.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/fleet/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeFleet(w, r, &req) {
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			fleetError(w, http.StatusConflict, err)
			return
		}
		fleetJSON(w, resp)
	})
	mux.HandleFunc("/fleet/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeFleet(w, r, &req) {
			return
		}
		resp, err := c.Lease(req)
		if err != nil {
			fleetError(w, statusFor(err), err)
			return
		}
		fleetJSON(w, resp)
	})
	mux.HandleFunc("/fleet/v1/renew", func(w http.ResponseWriter, r *http.Request) {
		var req RenewRequest
		if !decodeFleet(w, r, &req) {
			return
		}
		if err := c.Renew(req); err != nil {
			fleetError(w, statusFor(err), err)
			return
		}
		fleetJSON(w, struct{}{})
	})
	mux.HandleFunc("/fleet/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeFleet(w, r, &req) {
			return
		}
		if err := c.Complete(req); err != nil {
			fleetError(w, statusFor(err), err)
			return
		}
		fleetJSON(w, struct{}{})
	})
	mux.HandleFunc("/fleet/v1/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"worker_id"`
		}
		if !decodeFleet(w, r, &req) {
			return
		}
		c.Deregister(req.WorkerID)
		fleetJSON(w, struct{}{})
	})
	mux.HandleFunc("/fleet/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			fleetError(w, http.StatusMethodNotAllowed, errors.New("fleet: GET only"))
			return
		}
		fleetJSON(w, c.Status())
	})
}

func statusFor(err error) int {
	if errors.Is(err, ErrUnknownWorker) {
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

func decodeFleet(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		fleetError(w, http.StatusMethodNotAllowed, errors.New("fleet: POST only"))
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		fleetError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func fleetJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func fleetError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
