// Package fleet turns the experiment service into a coordinator/worker
// fabric: one rampage-server process (the coordinator) shards sweep
// cells across worker processes running the same binary in -worker
// mode. Dispatch is pull-based work stealing — idle workers lease
// cells over HTTP, so faster machines naturally take more of the grid
// — keyed by the harness's canonical config hashes, which makes cells
// deduplicable fleet-wide and results content-addressed. Leases have a
// TTL: a worker that dies mid-cell simply stops renewing, and the
// coordinator requeues its cells for the survivors. Because the
// simulator is deterministic, any cell may run anywhere (or twice) and
// the assembled document is still byte-identical to a local run.
package fleet

import (
	"encoding/json"
	"errors"

	"rampage/internal/harness"
)

// ProtoVersion gates registration: a worker built against a different
// report schema must not contribute cells (its ReportJSON fields could
// silently differ). It tracks the harness report version.
const ProtoVersion = harness.ReportVersion

// Errors surfaced by the coordinator API.
var (
	// ErrNoWorkers reports that no live worker is registered; callers
	// fall back to local execution.
	ErrNoWorkers = errors.New("fleet: no live workers")
	// ErrDraining reports that the coordinator refuses new work.
	ErrDraining = errors.New("fleet: coordinator is draining")
	// ErrNotWireable reports a configuration that cannot travel to
	// workers (custom profile sets).
	ErrNotWireable = errors.New("fleet: configuration is not serializable for distribution")
	// ErrUnknownWorker reports a lease/renew/complete from a worker ID
	// the coordinator does not know — typically after a coordinator
	// restart. Workers re-register and continue.
	ErrUnknownWorker = errors.New("fleet: unknown worker")
)

// CellSpec is one sweep cell in wire form: the canonical content
// address, the serializable configuration and the simulation point.
// Key is harness.RunKey(Config.Config(), Spec) — the same hash the
// result cache uses — so identical cells collapse across experiments,
// workers and restarts.
type CellSpec struct {
	Key    string             `json:"key"`
	Config harness.WireConfig `json:"config"`
	Spec   harness.RunSpec    `json:"spec"`
}

// RegisterRequest introduces a worker. Version must match the
// coordinator's ProtoVersion.
type RegisterRequest struct {
	Version  int    `json:"version"`
	Name     string `json:"name,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
	PollMs     int64  `json:"poll_ms"`
}

// LeaseRequest asks for up to Max cells. Counters piggybacks the
// worker's local service-counter snapshot for the coordinator's
// per-worker /metricsz rollup.
type LeaseRequest struct {
	WorkerID string            `json:"worker_id"`
	Max      int               `json:"max"`
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// LeaseResponse hands out leased cells. Draining tells the worker the
// coordinator is shutting down (no further cells will come); PollMs is
// the suggested idle poll interval.
type LeaseResponse struct {
	Cells    []CellSpec `json:"cells,omitempty"`
	Draining bool       `json:"draining,omitempty"`
	PollMs   int64      `json:"poll_ms"`
}

// RenewRequest extends the leases on cells the worker is still
// executing; a worker that dies stops renewing and the cells requeue
// at their deadline.
type RenewRequest struct {
	WorkerID string   `json:"worker_id"`
	Keys     []string `json:"keys"`
}

// CompleteRequest streams one finished cell back: the ReportJSON bytes
// on success, or the simulation error. Completion is idempotent — a
// result for an already-finished or unknown cell is accepted (and
// persisted) rather than rejected, since content-addressed results
// from a deterministic simulator cannot conflict.
type CompleteRequest struct {
	WorkerID string          `json:"worker_id"`
	Key      string          `json:"key"`
	Report   json.RawMessage `json:"report,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// WorkerStatus is one worker's row in the coordinator's status
// document (/fleet/v1/workers and the /metricsz fleet section).
type WorkerStatus struct {
	ID          string            `json:"id"`
	Name        string            `json:"name,omitempty"`
	Parallel    int               `json:"parallel"`
	Inflight    int               `json:"inflight"`
	CellsDone   uint64            `json:"cells_done"`
	CellsFailed uint64            `json:"cells_failed"`
	LastSeenMs  int64             `json:"last_seen_ms"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
}

// Status is the coordinator's fleet snapshot: queue depths, per-worker
// rows and the summed per-worker counter rollup.
type Status struct {
	Draining bool              `json:"draining"`
	Pending  int               `json:"pending"`
	Leased   int               `json:"leased"`
	Workers  []WorkerStatus    `json:"workers"`
	Rollup   map[string]uint64 `json:"rollup,omitempty"`
}
