// Multi-process fleet tests: the CI harness behind the fleet job.
// They build the real rampage-server binary (with -race when the test
// binary itself is race-instrumented), boot a coordinator and worker
// processes on localhost, and hold the service to its byte-identity
// guarantees — fresh fleet run, disk-store restart, and a SIGKILLed
// worker mid-sweep must all serve documents byte-identical to the
// committed goldens. Skipped under -short: they run full default-scale
// sweeps.
package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// serverBinary builds cmd/rampage-server once per test run.
func serverBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rampage-fleet-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "rampage-server")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, "rampage/cmd/rampage-server")
		cmd := exec.Command("go", args...)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("go build: %v\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Join(wd, "..", "..")
}

// freePort grabs an ephemeral localhost port. The tiny close-to-bind
// window is fine for tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// proc wraps one fleet process with logging and cleanup. done is
// closed when the process exits.
type proc struct {
	name string
	cmd  *exec.Cmd
	done chan struct{}
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := os.CreateTemp(t.TempDir(), name+"-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{name: name, cmd: cmd, done: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			cmd.Process.Kill()
			<-p.done
		}
		out.Close()
		if t.Failed() {
			if log, err := os.ReadFile(out.Name()); err == nil && len(log) > 0 {
				t.Logf("%s log:\n%s", name, log)
			}
		}
	})
	return p
}

// signal sends sig and waits for exit (up to 30s).
func (p *proc) signal(t *testing.T, sig os.Signal) {
	t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		t.Fatalf("%s: signal: %v", p.name, err)
	}
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not exit after %v", p.name, sig)
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator at %s never became healthy: %v", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// fleetStatus is the subset of the coordinator's worker document the
// tests read.
type fleetStatus struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Workers []struct {
		ID       string `json:"id"`
		Name     string `json:"name"`
		Inflight int    `json:"inflight"`
	} `json:"workers"`
}

func getFleetStatus(t *testing.T, base string) fleetStatus {
	t.Helper()
	resp, err := http.Get(base + "/fleet/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitWorkers(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for len(getFleetStatus(t, base).Workers) < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d workers registered", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getCounters(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metricsz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Counters
}

func getBody(t *testing.T, url string, timeout time.Duration) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func golden(t *testing.T, id string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(), "testdata", "golden", id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func startCoordinator(t *testing.T, bin, storeDir string, extra ...string) (p *proc, base string) {
	t.Helper()
	port := freePort(t)
	base = fmt.Sprintf("http://127.0.0.1:%d", port)
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "2", "-queue", "8",
		"-store-dir", storeDir,
	}
	args = append(args, extra...)
	p = startProc(t, "coordinator", bin, args...)
	waitHealthy(t, base)
	return p, base
}

func startWorkerProc(t *testing.T, bin, base, name string) *proc {
	t.Helper()
	return startProc(t, name, bin,
		"-worker", "-coordinator-url", base, "-worker-name", name, "-fleet-parallel", "1")
}

// TestFleetMultiProcessGolden is the CI fleet gate: a coordinator and
// two worker processes serve all six golden experiments at the default
// scale byte-identical to testdata/golden/, then the whole fleet is
// torn down and a restarted coordinator — no workers at all — serves
// table3 again from its disk store alone, byte-identical, with zero
// new simulation.
func TestFleetMultiProcessGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweeps across processes; run without -short (CI fleet job)")
	}
	bin := serverBinary(t)
	storeDir := filepath.Join(t.TempDir(), "results")

	coord, base := startCoordinator(t, bin, storeDir)
	w1 := startWorkerProc(t, bin, base, "w1")
	w2 := startWorkerProc(t, bin, base, "w2")
	waitWorkers(t, base, 2)

	for _, id := range []string{"table3", "table4", "table5", "fig2", "fig3", "fig4"} {
		code, body := getBody(t, base+"/v1/experiments/"+id+"?scale=default", 10*time.Minute)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %.300s", id, code, body)
		}
		if want := golden(t, id); !bytes.Equal(body, want) {
			t.Fatalf("fleet-served %s differs from golden (%d vs %d bytes)", id, len(body), len(want))
		}
	}
	counters := getCounters(t, base)
	if counters["fleet_cells_completed"] == 0 {
		t.Error("no cells went through the fleet")
	}
	if counters["fleet_cells_local"] != 0 {
		t.Errorf("coordinator simulated %d cells itself with two live workers", counters["fleet_cells_local"])
	}

	// Tear the whole fleet down (workers drain on SIGTERM, coordinator
	// drains and persists), then restart the coordinator alone over the
	// same store directory.
	st := getFleetStatus(t, base)
	if st.Pending != 0 || st.Leased != 0 {
		t.Fatalf("queue not empty before teardown: %+v", st)
	}
	w1.signal(t, syscall.SIGTERM)
	w2.signal(t, syscall.SIGTERM)
	coord.signal(t, syscall.SIGTERM)
	coord2, base2 := startCoordinator(t, bin, storeDir)
	defer coord2.signal(t, syscall.SIGTERM)

	code, body := getBody(t, base2+"/v1/experiments/table3?scale=default", 2*time.Minute)
	if code != http.StatusOK {
		t.Fatalf("restarted: status %d: %.300s", code, body)
	}
	if want := golden(t, "table3"); !bytes.Equal(body, want) {
		t.Fatalf("disk-served table3 differs from golden (%d vs %d bytes)", len(body), len(want))
	}
	counters = getCounters(t, base2)
	if counters["disk_hits"] == 0 {
		t.Error("restarted coordinator took no disk hits")
	}
	if counters["sim_runs"] != 0 {
		t.Errorf("restarted coordinator ran %d simulations; want 0 (disk store should answer)", counters["sim_runs"])
	}
}

// TestFleetWorkerKillChaos is the CI chaos gate: SIGKILL a worker
// while it holds leased cells mid-sweep; the coordinator must requeue
// its cells onto the surviving worker and the final document must
// still match the committed golden byte for byte.
func TestFleetWorkerKillChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale sweep across processes; run without -short (CI fleet job)")
	}
	bin := serverBinary(t)
	storeDir := filepath.Join(t.TempDir(), "results")

	_, base := startCoordinator(t, bin, storeDir, "-lease-ttl", "3s")
	victim := startWorkerProc(t, bin, base, "victim")
	startWorkerProc(t, bin, base, "survivor")
	waitWorkers(t, base, 2)

	// Submit table3 asynchronously so the test can watch the fleet
	// while the sweep runs.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"kind":"experiment","id":"table3","scale":"default"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("job submit: status %d, id %q", resp.StatusCode, job.ID)
	}

	// Wait until the victim holds leased cells, then SIGKILL it —
	// no drain, no deregister, mid-simulation.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var inflight int
		for _, w := range getFleetStatus(t, base).Workers {
			if w.Name == "victim" {
				inflight = w.Inflight
			}
		}
		if inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never held a lease")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-victim.done

	// The job must still finish, and its document must match the
	// golden exactly.
	deadline = time.Now().Add(10 * time.Minute)
	for {
		code, body := getBody(t, base+"/v1/jobs/"+job.ID+"/result", time.Minute)
		if code == http.StatusOK {
			if want := golden(t, "table3"); !bytes.Equal(body, want) {
				t.Fatalf("post-chaos table3 differs from golden (%d vs %d bytes)", len(body), len(want))
			}
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("job result: status %d: %.300s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish after worker kill")
		}
		time.Sleep(250 * time.Millisecond)
	}
	counters := getCounters(t, base)
	if counters["fleet_cells_requeued"] == 0 {
		t.Error("no cells were requeued after the worker was SIGKILLed")
	}
	if counters["fleet_cells_completed"] == 0 {
		t.Error("no cells completed through the fleet")
	}
}
