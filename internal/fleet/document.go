package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"rampage/internal/harness"
)

// CellsFor expands an experiment into its wire cells: the grid's run
// specs, each content-addressed by harness.RunKey over the canonical
// configuration. ErrNotWireable marks configurations that cannot be
// distributed (custom profile sets) — callers fall back to local
// execution.
func CellsFor(cfg harness.Config, id string, rates, sizes []uint64) (harness.ExperimentShape, []CellSpec, error) {
	wc, ok := harness.NewWireConfig(cfg)
	if !ok {
		return harness.ExperimentShape{}, nil, ErrNotWireable
	}
	sh, err := harness.ShapeOf(id, rates, sizes)
	if err != nil {
		return harness.ExperimentShape{}, nil, err
	}
	canonical := wc.Config()
	specs := sh.CellSpecs()
	cells := make([]CellSpec, len(specs))
	for i, spec := range specs {
		cells[i] = CellSpec{Key: harness.RunKey(canonical, spec), Config: wc, Spec: spec}
	}
	return sh, cells, nil
}

// BuildExperimentDoc assembles one experiment document through the
// fleet: expand the grid to content-addressed cells, Execute them
// (disk hits, worker leases, local fallback), then fold the per-cell
// ReportJSON payloads back into the same document BuildExperimentDoc
// in the harness would have produced — byte-identical, which the
// equivalence tests pin. progress (may be nil) is called once per
// resolved cell with the cell's canonical index (CellSpecs order) and
// its compact ReportJSON payload, so callers can stream cells live.
func (c *Coordinator) BuildExperimentDoc(ctx context.Context, cfg harness.Config, id string, rates, sizes []uint64, progress func(i int, report json.RawMessage)) ([]byte, error) {
	sh, cells, err := CellsFor(cfg, id, rates, sizes)
	if err != nil {
		return nil, err
	}
	raws, err := c.Execute(ctx, cells, progress)
	if err != nil {
		return nil, err
	}
	reports := make([]harness.ReportJSON, len(raws))
	for i, raw := range raws {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&reports[i]); err != nil {
			return nil, fmt.Errorf("fleet: cell %s returned malformed report: %w", shortKey(cells[i].Key), err)
		}
	}
	doc, err := sh.Doc(reports)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := harness.WriteJSON(&buf, doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
