package core

import (
	"testing"

	"rampage/internal/mem"
	"rampage/internal/synth"
)

// tiny returns a small memory: 64KB SRAM, 4KB pages => 16 frames,
// a few of which are pinned for the OS.
func tiny(t *testing.T) *Memory {
	t.Helper()
	m, err := New(Config{TotalBytes: 64 << 10, PageBytes: 4096, TLBEntries: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TotalBytes: 64 << 10, PageBytes: 0, TLBEntries: 8},
		{TotalBytes: 64 << 10, PageBytes: 3000, TLBEntries: 8},
		{TotalBytes: 0, PageBytes: 4096, TLBEntries: 8},
		{TotalBytes: 4096 + 100, PageBytes: 4096, TLBEntries: 8},
		{TotalBytes: 64 << 10, PageBytes: 4096, TLBEntries: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTagBonus(t *testing.T) {
	// §4.5: a 4MB cache with 128B lines carries ~128KB of tags.
	if got := TagBonus(4<<20, 128); got != 128<<10 {
		t.Errorf("TagBonus(4MB, 128B) = %d, want 128KB", got)
	}
	// The bonus scales down with block size.
	if got := TagBonus(4<<20, 4096); got != 4<<10 {
		t.Errorf("TagBonus(4MB, 4KB) = %d, want 4KB", got)
	}
}

func TestOSReservationTooBig(t *testing.T) {
	// 8KB SRAM with 128B pages cannot hold the OS region.
	if _, err := New(Config{TotalBytes: 8 << 10, PageBytes: 128, TLBEntries: 8}); err == nil {
		t.Error("OS reservation larger than SRAM accepted")
	}
}

func TestOSPagesScaleWithPageSize(t *testing.T) {
	// §4.5: the OS takes few pages at 4KB and many at 128B. Absolute
	// counts depend on structure sizes; the scaling direction must hold
	// and the byte footprint must grow as pages shrink (bigger table).
	big, err := New(Config{TotalBytes: 1 << 20, PageBytes: 4096, TLBEntries: 64})
	if err != nil {
		t.Fatalf("New(4KB pages): %v", err)
	}
	small, err := New(Config{TotalBytes: 1 << 20, PageBytes: 128, TLBEntries: 64})
	if err != nil {
		t.Fatalf("New(128B pages): %v", err)
	}
	if small.OSPages() <= big.OSPages() {
		t.Errorf("OS pages: 128B=%d, 4KB=%d; want more pages at 128B", small.OSPages(), big.OSPages())
	}
	if small.OSBytes() <= big.OSBytes() {
		t.Errorf("OS bytes: 128B=%d, 4KB=%d; want more bytes at 128B (bigger page table)", small.OSBytes(), big.OSBytes())
	}
}

func TestFirstTouchFaults(t *testing.T) {
	m := tiny(t)
	out, err := m.Translate(1, 0x10000, false)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if !out.TLBMiss || out.Fault == nil {
		t.Fatalf("first touch: TLBMiss=%v Fault=%v, want miss+fault", out.TLBMiss, out.Fault)
	}
	if !out.Fault.FirstTouch {
		t.Error("first touch not flagged")
	}
	if out.Fault.VictimValid {
		t.Error("first touch in empty memory evicted a page")
	}
	if len(out.PTProbes) == 0 || len(out.Fault.UpdateAddrs) == 0 {
		t.Error("fault outcome missing handler addresses")
	}
	s := m.Stats()
	if s.PageFaults != 1 || s.TLBMisses != 1 || s.FirstTouches != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTLBHitAfterFill(t *testing.T) {
	m := tiny(t)
	m.Translate(1, 0x10000, false)
	out, err := m.Translate(1, 0x10008, false)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if out.TLBMiss || out.Fault != nil {
		t.Error("second access to the same page missed")
	}
}

func TestTranslationStable(t *testing.T) {
	m := tiny(t)
	a, _ := m.Translate(1, 0x10000, false)
	b, _ := m.Translate(1, 0x10004, false)
	if b.Addr != a.Addr+4 {
		t.Errorf("offsets not preserved: %#x then %#x", a.Addr, b.Addr)
	}
	// Different processes with the same VA get different frames.
	c, _ := m.Translate(2, 0x10000, false)
	if c.Addr>>12 == a.Addr>>12 {
		t.Error("two processes share an SRAM frame")
	}
}

func TestUserAddressesAboveOSRegion(t *testing.T) {
	m := tiny(t)
	out, _ := m.Translate(1, 0x10000, false)
	if uint64(out.Addr) < m.OSPages()*m.PageBytes() {
		t.Errorf("user page allocated at %#x inside pinned OS region", out.Addr)
	}
}

func TestReplacementAfterCapacity(t *testing.T) {
	m := tiny(t) // 16 frames minus OS pages
	userFrames := m.Frames() - m.OSPages()
	// Touch one more page than fits.
	for i := uint64(0); i <= userFrames; i++ {
		if _, err := m.Translate(1, mem.VAddr(0x100000+i*4096), false); err != nil {
			t.Fatalf("Translate %d: %v", i, err)
		}
	}
	s := m.Stats()
	if s.PageFaults != userFrames+1 {
		t.Errorf("page faults = %d, want %d", s.PageFaults, userFrames+1)
	}
	// The last fault must have replaced something.
	out, _ := m.Translate(1, 0x100000, false) // first page was the clock victim region
	_ = out
	if m.Stats().PageFaults == s.PageFaults {
		t.Log("first page still resident (clock chose another victim) — acceptable")
	}
}

func TestVictimFaultReportsL1Purge(t *testing.T) {
	m := tiny(t)
	userFrames := m.Frames() - m.OSPages()
	var lastFault *Fault
	for i := uint64(0); i <= userFrames; i++ {
		out, err := m.Translate(1, mem.VAddr(0x100000+i*4096), false)
		if err != nil {
			t.Fatal(err)
		}
		if out.Fault != nil && out.Fault.VictimValid {
			lastFault = out.Fault
		}
	}
	if lastFault == nil {
		t.Fatal("no replacement fault observed past capacity")
	}
	if uint64(lastFault.VictimPageAddr) < m.OSPages()*m.PageBytes() {
		t.Errorf("victim page %#x inside pinned OS region", lastFault.VictimPageAddr)
	}
	if len(lastFault.ScanAddrs) == 0 {
		t.Error("replacement fault has no clock-scan addresses")
	}
	if len(lastFault.UpdateAddrs) < 2 {
		t.Error("replacement fault should update victim and new entries")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	m := tiny(t)
	userFrames := m.Frames() - m.OSPages()
	// Dirty every page, then overflow and check that some victim was
	// written back.
	for i := uint64(0); i < userFrames; i++ {
		m.Translate(1, mem.VAddr(0x100000+i*4096), true)
	}
	var sawDirtyVictim bool
	for i := userFrames; i < userFrames+4; i++ {
		out, _ := m.Translate(1, mem.VAddr(0x100000+i*4096), false)
		if out.Fault != nil && out.Fault.VictimDirty {
			sawDirtyVictim = true
		}
	}
	if !sawDirtyVictim {
		t.Error("no dirty victim written back after dirtying all pages")
	}
	if m.Stats().Writebacks == 0 {
		t.Error("writeback counter is zero")
	}
}

func TestMarkDirtyCausesWriteback(t *testing.T) {
	m := tiny(t)
	out, _ := m.Translate(1, 0x100000, false) // clean fill
	m.MarkDirty(out.Addr)                     // L1 write-back lands on the page
	// Evict everything.
	userFrames := m.Frames() - m.OSPages()
	dirtyEvictions := 0
	for i := uint64(1); i <= userFrames+2; i++ {
		o, _ := m.Translate(1, mem.VAddr(0x200000+i*4096), false)
		if o.Fault != nil && o.Fault.VictimDirty {
			dirtyEvictions++
		}
	}
	if dirtyEvictions == 0 {
		t.Error("page dirtied via MarkDirty never written back")
	}
}

func TestTLBInvalidatedOnReplacement(t *testing.T) {
	// §2.3: "If a page is replaced from the SRAM main memory, its entry
	// (if it has one) in the TLB is flushed."
	m, err := New(Config{TotalBytes: 64 << 10, PageBytes: 4096, TLBEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	m.Translate(1, 0x100000, false)
	userFrames := m.Frames() - m.OSPages()
	// Fill the rest and overflow until 0x100000's page is replaced.
	replaced := false
	for i := uint64(1); i < userFrames*3 && !replaced; i++ {
		m.Translate(1, mem.VAddr(0x100000+i*4096), false)
		if !m.Resident(1, 0x100000) {
			replaced = true
		}
	}
	if !replaced {
		t.Fatal("page never replaced; test needs more pressure")
	}
	// The next access must be a full fault (TLB entry was flushed, so
	// no stale translation can be returned).
	out, _ := m.Translate(1, 0x100000, false)
	if !out.TLBMiss || out.Fault == nil {
		t.Error("access to replaced page used a stale TLB entry")
	}
	if out.Fault.FirstTouch {
		t.Error("refault flagged as first touch")
	}
}

func TestKernelPhys(t *testing.T) {
	m := tiny(t)
	pa, err := m.KernelPhys(synth.KernelBase)
	if err != nil || pa != 0 {
		t.Errorf("KernelPhys(base) = (%#x, %v), want (0, nil)", pa, err)
	}
	pa, err = m.KernelPhys(synth.KernelBase + 100)
	if err != nil || pa != 100 {
		t.Errorf("KernelPhys(base+100) = (%#x, %v)", pa, err)
	}
	if _, err := m.KernelPhys(synth.KernelBase + mem.VAddr(m.OSPages()*m.PageBytes())); err == nil {
		t.Error("kernel address beyond OS region accepted")
	}
	if _, err := m.KernelPhys(0x1000); err == nil {
		t.Error("user address accepted by KernelPhys")
	}
}

func TestKernelTranslate(t *testing.T) {
	m := tiny(t)
	out, err := m.Translate(mem.KernelPID, synth.KernelBase+0x10, false)
	if err != nil {
		t.Fatalf("kernel translate: %v", err)
	}
	if out.TLBMiss || out.Fault != nil {
		t.Error("kernel access went through TLB/fault path")
	}
	if out.Addr != 0x10 {
		t.Errorf("kernel addr = %#x, want 0x10", out.Addr)
	}
	// Kernel accesses never consume TLB entries.
	if m.TLBStats().Hits+m.TLBStats().Misses != 0 {
		t.Error("kernel access touched the TLB")
	}
}

func TestOSRegionNeverEvicted(t *testing.T) {
	m := tiny(t)
	userFrames := m.Frames() - m.OSPages()
	for i := uint64(0); i < userFrames*4; i++ {
		out, err := m.Translate(1, mem.VAddr(0x100000+i*4096), false)
		if err != nil {
			t.Fatal(err)
		}
		if out.Fault != nil && out.Fault.VictimValid {
			if uint64(out.Fault.VictimPageAddr)>>12 < m.OSPages() {
				t.Fatalf("OS frame %d evicted", uint64(out.Fault.VictimPageAddr)>>12)
			}
		}
	}
	// Kernel region still translates.
	if _, err := m.Translate(mem.KernelPID, synth.KernelBase, false); err != nil {
		t.Errorf("kernel translation broken after pressure: %v", err)
	}
}

func TestResident(t *testing.T) {
	m := tiny(t)
	if m.Resident(1, 0x100000) {
		t.Error("unmapped page reported resident")
	}
	m.Translate(1, 0x100000, false)
	if !m.Resident(1, 0x100000) {
		t.Error("mapped page not resident")
	}
	if !m.Resident(mem.KernelPID, synth.KernelBase) {
		t.Error("kernel base not resident")
	}
}

func TestUserBytes(t *testing.T) {
	m := tiny(t)
	if got := m.UserBytes(); got != (m.Frames()-m.OSPages())*4096 {
		t.Errorf("UserBytes = %d", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestPinPagePreventsReplacement(t *testing.T) {
	m := tiny(t)
	out, _ := m.Translate(1, 0x100000, false)
	page := out.Addr &^ mem.PAddr(m.PageBytes()-1)
	m.PinPage(page)
	// Thrash hard; the pinned page must survive.
	userFrames := m.Frames() - m.OSPages()
	for i := uint64(1); i < userFrames*4; i++ {
		if _, err := m.Translate(1, mem.VAddr(0x200000+i*4096), false); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Resident(1, 0x100000) {
		t.Error("pinned page was replaced")
	}
	m.UnpinPage(page)
	for i := uint64(1); i < userFrames*4; i++ {
		m.Translate(1, mem.VAddr(0x400000+i*4096), false)
	}
	if m.Resident(1, 0x100000) {
		t.Error("unpinned page survived heavy thrash (clock never chose it)")
	}
}

func TestUnpinPageIgnoresOSRegion(t *testing.T) {
	m := tiny(t)
	// Unpinning an OS page must be a no-op: kernel pages stay pinned.
	m.UnpinPage(0)
	userFrames := m.Frames() - m.OSPages()
	for i := uint64(0); i < userFrames*4; i++ {
		out, err := m.Translate(1, mem.VAddr(0x100000+i*4096), false)
		if err != nil {
			t.Fatal(err)
		}
		if out.Fault != nil && out.Fault.VictimValid && uint64(out.Fault.VictimPageAddr)>>12 < m.OSPages() {
			t.Fatal("OS frame evicted after UnpinPage(0)")
		}
	}
}

func TestPrefetchDirect(t *testing.T) {
	m := tiny(t)
	// Prefetch an unseen page: no TLB entry, but resident.
	f, pa, ok, err := m.Prefetch(1, 0x100)
	if err != nil || !ok {
		t.Fatalf("Prefetch = (%v, %v)", ok, err)
	}
	if f == nil || !f.FirstTouch {
		t.Error("prefetch of unseen page not flagged as first touch")
	}
	if uint64(pa)%m.PageBytes() != 0 {
		t.Errorf("prefetch address %#x not page aligned", pa)
	}
	if m.Stats().Prefetches != 1 {
		t.Errorf("Prefetches = %d, want 1", m.Stats().Prefetches)
	}
	// Prefetching a resident page is a no-op.
	if _, _, ok, _ := m.Prefetch(1, 0x100); ok {
		t.Error("prefetch of resident page succeeded")
	}
	// Kernel prefetch is a no-op.
	if _, _, ok, _ := m.Prefetch(mem.KernelPID, 5); ok {
		t.Error("kernel prefetch succeeded")
	}
	// The first demand access reports the prefetch hit, via the PT walk
	// (no TLB entry was installed).
	out, err := m.Translate(1, mem.VAddr(0x100*m.PageBytes()+8), false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.TLBMiss || out.Fault != nil {
		t.Error("demand access to prefetched page should TLB-miss but not fault")
	}
	if !out.PrefetchHit {
		t.Error("prefetch hit not reported")
	}
	if m.Stats().PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", m.Stats().PrefetchHits)
	}
	// A second access is a plain hit.
	out, _ = m.Translate(1, mem.VAddr(0x100*m.PageBytes()), false)
	if out.PrefetchHit {
		t.Error("prefetch hit reported twice")
	}
}

func TestPrefetchWastedDirect(t *testing.T) {
	m := tiny(t)
	m.Prefetch(1, 0x200)
	// Thrash until the prefetched page is evicted unused.
	userFrames := m.Frames() - m.OSPages()
	for i := uint64(0); i < userFrames*4; i++ {
		m.Translate(2, mem.VAddr(0x400000+i*4096), false)
	}
	if m.Stats().PrefetchWasted != 1 {
		t.Errorf("PrefetchWasted = %d, want 1", m.Stats().PrefetchWasted)
	}
}

func TestDRAMAddressesStable(t *testing.T) {
	m := tiny(t)
	out, _ := m.Translate(1, 0x100000, false)
	addr1 := out.Fault.PageDRAMAddr
	// Evict it, re-fault it: the backing DRAM address must be the same.
	userFrames := m.Frames() - m.OSPages()
	for i := uint64(1); i < userFrames*3; i++ {
		m.Translate(1, mem.VAddr(0x200000+i*4096), false)
	}
	out, _ = m.Translate(1, 0x100000, false)
	if out.Fault == nil {
		t.Skip("page survived the thrash; cannot check refault address")
	}
	if out.Fault.PageDRAMAddr != addr1 {
		t.Errorf("backing address moved: %#x -> %#x", addr1, out.Fault.PageDRAMAddr)
	}
	if out.Fault.FirstTouch {
		t.Error("refault flagged as first touch")
	}
}

func TestDirtyUserPagesDirect(t *testing.T) {
	m := tiny(t)
	if m.DirtyUserPages() != 0 {
		t.Error("fresh memory has dirty pages")
	}
	m.Translate(1, 0x100000, true)
	m.Translate(1, 0x200000, false)
	if got := m.DirtyUserPages(); got != 1 {
		t.Errorf("DirtyUserPages = %d, want 1", got)
	}
}

func TestAccessors(t *testing.T) {
	m := tiny(t)
	if m.Config().PageBytes != 4096 {
		t.Error("Config accessor wrong")
	}
	m.Translate(1, 0x100000, false)
	if m.PTStats().Lookups == 0 {
		t.Error("PTStats not exposed")
	}
}
