// Package core implements the RAMpage SRAM main memory — the paper's
// primary contribution (§2). The lowest SRAM level of the hierarchy is
// managed not as a cache but as a paged, byte-addressed physical main
// memory:
//
//   - allocation and replacement are per page (any virtual page may
//     occupy any frame: full associativity with no hit-time penalty,
//     because a hit needs only a TLB translation, not a tag check);
//   - translation uses a pinned inverted page table (§2.2), so a TLB
//     miss that hits in SRAM never references DRAM;
//   - DRAM below is a paging device (§2.4): on an SRAM page fault a
//     whole page moves over the Rambus channel;
//   - replacement is the clock algorithm (§4.5), with the operating
//     system's own code, data and page table pinned (§4.6);
//   - when a page is replaced, its TLB entry is flushed and any of its
//     blocks in L1 must be purged to keep the hierarchy consistent
//     (§2.3) — the Memory reports the replaced range so the simulator
//     can do that.
//
// Memory is a *functional* model plus event descriptions; all timing
// (handler execution, Rambus transfers) is charged by package sim,
// which replays the handler reference traces this package's outcomes
// describe.
package core

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/pagetable"
	"rampage/internal/synth"
	"rampage/internal/tlb"
)

// Config describes a RAMpage SRAM main memory.
type Config struct {
	// TotalBytes is the SRAM capacity. Per §4.5 this is the comparable
	// cache's size plus its tag budget ("128 Kbytes larger, since it
	// does not need tags"); use TagBonus to compute it.
	TotalBytes uint64
	// PageBytes is the SRAM page size (the swept parameter: 128 B–4 KB).
	PageBytes uint64
	// TLBEntries and TLBAssoc configure the TLB (§4.3: 64 entries,
	// fully associative => TLBAssoc 0).
	TLBEntries int
	TLBAssoc   int
	// Seed drives the TLB's random replacement and seeds the
	// replacement policy's RNG (when the policy uses one).
	Seed uint64
	// Policy names the page-replacement policy ("" means clock, the
	// paper's §4.5 algorithm). See package policy for the vocabulary.
	Policy string
}

// TagBonus returns the tag capacity a conventional cache of cacheBytes
// with the given block size would need: 4 bytes (32 bits of tag plus
// state) per line. At 4 MB and 128 B blocks this is the paper's
// 128 KB; it scales down with larger blocks exactly as §4.5 requires.
func TagBonus(cacheBytes, blockBytes uint64) uint64 {
	return cacheBytes / blockBytes * 4
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PageBytes == 0 || !mem.IsPow2(c.PageBytes) {
		return fmt.Errorf("core: page size %d is not a power of two", c.PageBytes)
	}
	if c.TotalBytes == 0 || c.TotalBytes%c.PageBytes != 0 {
		return fmt.Errorf("core: size %d is not a multiple of page size %d", c.TotalBytes, c.PageBytes)
	}
	if c.TLBEntries == 0 {
		return fmt.Errorf("core: TLB entry count must be positive")
	}
	return nil
}

// Fault describes one SRAM page fault: what the handler must do and
// what the simulator must charge. Slices are valid until the next
// Translate call.
type Fault struct {
	// ScanAddrs are the page-table entry addresses the clock hand
	// examined choosing a victim (empty when a free frame was used).
	ScanAddrs []uint64
	// UpdateAddrs are the table addresses rewritten to unmap the
	// victim and map the new page.
	UpdateAddrs []uint64
	// VictimValid is true when a page was replaced.
	VictimValid bool
	// VictimDirty is true when the replaced page must be written back
	// to DRAM before its frame is reused.
	VictimDirty bool
	// VictimPageAddr is the SRAM physical base of the replaced page;
	// the simulator purges its blocks from L1 (inclusion, §2.3).
	VictimPageAddr mem.PAddr
	// FirstTouch is true when the faulting page had never been
	// resident before (a compulsory fault).
	FirstTouch bool
	// VictimWasPrefetched is true when the replaced page had been
	// prefetched but never demanded — a wasted prefetch.
	VictimWasPrefetched bool
	// VictimTLBEvicted is true when unmapping the victim shot down a
	// live TLB entry (§2.3: "If a page is replaced from the SRAM main
	// memory, its entry ... in the TLB is flushed").
	VictimTLBEvicted bool
	// PageDRAMAddr is the DRAM physical address backing the faulting
	// page; VictimDRAMAddr backs the replaced page (valid when
	// VictimValid). Address-sensitive DRAM models (banked RDRAM) time
	// the transfers with these.
	PageDRAMAddr   uint64
	VictimDRAMAddr uint64
}

// Outcome describes one translation.
type Outcome struct {
	// Addr is the SRAM physical address.
	Addr mem.PAddr
	// TLBMiss is true when the inverted page table had to be walked;
	// PTProbes then lists the table addresses the walk loaded (valid
	// until the next Translate call).
	TLBMiss  bool
	PTProbes []uint64
	// Fault is non-nil when the page had to be brought in from DRAM.
	Fault *Fault
	// PrefetchHit is true when this is the first demand access to a
	// page that a prefetch had already brought in.
	PrefetchHit bool
}

// Stats counts memory-management events.
type Stats struct {
	Translations   uint64
	TLBMisses      uint64
	PageFaults     uint64
	FirstTouches   uint64
	Writebacks     uint64 // dirty pages written back to DRAM
	Prefetches     uint64 // pages brought in ahead of demand
	PrefetchHits   uint64 // prefetched pages later demanded
	PrefetchWasted uint64 // prefetched pages evicted unused
}

// Memory is the RAMpage SRAM main memory manager. It is not safe for
// concurrent use.
type Memory struct {
	cfg        Config
	pt         *pagetable.Inverted
	tlb        *tlb.TLB
	pageShift  uint
	frames     uint64
	osPages    uint64
	osBytes    uint64
	seen       map[seenKey]uint64 // virtual page -> backing DRAM address
	dramNext   uint64             // DRAM allocation watermark
	prefetched []bool             // per-frame: brought in by prefetch, not yet demanded
	stats      Stats

	// Reusable event buffers, valid until the next Translate.
	probeBuf  []uint64
	scanBuf   []uint64
	updateBuf []uint64
	fault     Fault
}

type seenKey struct {
	pid mem.PID
	vpn uint64
}

// New builds the SRAM main memory, reserving and pinning the operating
// system region (fixed kernel span plus the inverted page table) in
// the lowest frames, as §4.5 describes.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	frames := cfg.TotalBytes / cfg.PageBytes
	pt, err := pagetable.New(pagetable.Config{
		Frames:     frames,
		PageBytes:  cfg.PageBytes,
		TableBase:  synth.KernelBase + synth.KernelFixedBytes,
		Policy:     cfg.Policy,
		PolicySeed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tlbCfg := tlb.Config{
		Entries:   cfg.TLBEntries,
		Assoc:     cfg.TLBAssoc,
		PageBytes: cfg.PageBytes,
		Seed:      cfg.Seed,
	}
	tb, err := tlb.New(tlbCfg)
	if err != nil {
		return nil, err
	}
	m := &Memory{
		cfg:        cfg,
		pt:         pt,
		tlb:        tb,
		pageShift:  mem.Log2(cfg.PageBytes),
		frames:     frames,
		seen:       make(map[seenKey]uint64),
		prefetched: make([]bool, frames),
	}
	m.osBytes = synth.KernelFixedBytes + pt.TableBytes()
	m.osPages = (m.osBytes + cfg.PageBytes - 1) / cfg.PageBytes
	if m.osPages >= frames {
		return nil, fmt.Errorf("core: OS reservation (%d pages) exceeds SRAM (%d frames) at page size %d",
			m.osPages, frames, cfg.PageBytes)
	}
	// Pin the OS region in the lowest frames and map it in the page
	// table under the kernel PID so the table is self-describing.
	for i := uint64(0); i < m.osPages; i++ {
		f, ok := pt.AllocFree()
		if !ok || f != i {
			return nil, fmt.Errorf("core: OS frame allocation out of order (got %d, want %d)", f, i)
		}
		vpn := (uint64(synth.KernelBase) >> m.pageShift) + i
		if err := pt.Map(mem.KernelPID, vpn, f); err != nil {
			return nil, err
		}
		pt.Pin(f)
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the counters.
func (m *Memory) Stats() Stats { return m.stats }

// TLBStats exposes the TLB's counters.
func (m *Memory) TLBStats() tlb.Stats { return m.tlb.Stats() }

// SetObserver attaches a metrics observer to the TLB and page table
// (nil detaches). Observation never influences simulated behaviour.
func (m *Memory) SetObserver(obs metrics.Observer) {
	m.tlb.SetObserver(obs)
	m.pt.SetObserver(obs)
}

// PTStats exposes the page table's counters.
func (m *Memory) PTStats() pagetable.Stats { return m.pt.Stats() }

// Frames returns the total number of SRAM page frames.
func (m *Memory) Frames() uint64 { return m.frames }

// OSPages returns the number of pinned operating-system pages — the
// §4.5 reservation (6 pages at 4 KB up to thousands at 128 B).
func (m *Memory) OSPages() uint64 { return m.osPages }

// OSBytes returns the size of the pinned OS region in bytes.
func (m *Memory) OSBytes() uint64 { return m.osBytes }

// PageBytes returns the SRAM page size.
func (m *Memory) PageBytes() uint64 { return m.cfg.PageBytes }

// UserBytes returns the SRAM capacity available to user pages.
func (m *Memory) UserBytes() uint64 { return (m.frames - m.osPages) * m.cfg.PageBytes }

// FreeFrames returns the number of unoccupied SRAM page frames — the
// §4.2 warm-up metric (the hierarchy is warm once this reaches zero).
func (m *Memory) FreeFrames() uint64 { return m.pt.FreeFrames() }

// KernelPhys translates a kernel virtual address directly to its SRAM
// physical address (the OS region is identity-pinned at the bottom of
// SRAM and bypasses the TLB, like a MIPS kseg0 segment).
func (m *Memory) KernelPhys(va mem.VAddr) (mem.PAddr, error) {
	off := uint64(va) - synth.KernelBase
	if uint64(va) < synth.KernelBase || off >= m.osPages*m.cfg.PageBytes {
		return 0, fmt.Errorf("core: kernel address %#x outside pinned OS region", uint64(va))
	}
	return mem.PAddr(off), nil
}

// Translate resolves a user reference to an SRAM physical address,
// performing TLB fill, page-table walk and page replacement as needed.
// The returned Outcome's slices and Fault pointer are valid until the
// next Translate call. Kernel-tagged references must use KernelPhys.
func (m *Memory) Translate(pid mem.PID, va mem.VAddr, write bool) (Outcome, error) {
	if pid == mem.KernelPID {
		pa, err := m.KernelPhys(va)
		if err != nil {
			return Outcome{}, err
		}
		if write {
			m.pt.SetDirty(uint64(pa) >> m.pageShift)
		}
		m.stats.Translations++
		return Outcome{Addr: pa}, nil
	}
	m.stats.Translations++
	if pa, hit := m.tlb.Lookup(pid, va); hit {
		if write {
			m.pt.SetDirty(uint64(pa) >> m.pageShift)
		}
		return Outcome{Addr: pa}, nil
	}
	// TLB miss: walk the pinned inverted page table.
	m.stats.TLBMisses++
	vpn := uint64(va) >> m.pageShift
	m.probeBuf = m.probeBuf[:0]
	frame, probes, found := m.pt.LookupAppend(pid, vpn, m.probeBuf)
	m.probeBuf = probes
	out := Outcome{TLBMiss: true, PTProbes: probes}
	if !found {
		m.stats.PageFaults++
		f, err := m.pageFault(pid, vpn)
		if err != nil {
			return Outcome{}, err
		}
		frame = f
		out.Fault = &m.fault
	} else if m.prefetched[frame] {
		m.prefetched[frame] = false
		m.stats.PrefetchHits++
		out.PrefetchHit = true
	}
	m.tlb.Insert(pid, va, frame)
	if write {
		m.pt.SetDirty(frame)
	}
	out.Addr = mem.PAddr(frame<<m.pageShift | uint64(va)&(m.cfg.PageBytes-1))
	return out, nil
}

// TranslateHit resolves (pid, va) only when the TLB already holds the
// translation, with state and statistics effects identical to what
// Translate would have in that case. It reports false — having touched
// nothing — for kernel references and TLB misses; the caller falls
// back to Translate, which then accounts the miss exactly once. This
// is the batched simulator's fast path.
func (m *Memory) TranslateHit(pid mem.PID, va mem.VAddr, write bool) (mem.PAddr, bool) {
	if pid == mem.KernelPID {
		return 0, false
	}
	pa, hit := m.tlb.TryLookup(pid, va)
	if !hit {
		return 0, false
	}
	m.stats.Translations++
	if write {
		m.pt.SetDirty(uint64(pa) >> m.pageShift)
	}
	return pa, true
}

// Hot is a flattened view of the memory's translation state for the
// simulator's fused TLB→L1 fast path (package sim). A fast-path hit
// replicates TranslateHit exactly: probe TLB.Filter, and on a match
// count a translation and — for a store — set FlagDirty on the frame's
// flags. All slices alias live state; see tlb.Hot and
// pagetable.DirtyHot for the aliasing contracts.
type Hot struct {
	TLB       tlb.Hot
	PTFlags   []uint8
	PageShift uint
	Stats     *Stats
}

// Hot returns the fast-path view. It must be re-captured after the
// machine swaps its Memory (the adaptive resize path builds a new one).
func (m *Memory) Hot() Hot {
	return Hot{
		TLB:       m.tlb.Hot(),
		PTFlags:   m.pt.DirtyHot(),
		PageShift: m.pageShift,
		Stats:     &m.stats,
	}
}

// Recycle returns the memory's page-table slabs to the pagetable arena.
// The Memory must not be used afterwards.
func (m *Memory) Recycle() { m.pt.Recycle() }

// pageFault brings (pid, vpn) into a frame, replacing if necessary,
// and fills m.fault with the event description.
func (m *Memory) pageFault(pid mem.PID, vpn uint64) (uint64, error) {
	m.scanBuf = m.scanBuf[:0]
	m.updateBuf = m.updateBuf[:0]
	m.fault = Fault{}

	frame, free := m.pt.AllocFree()
	if !free {
		victim, scans, ok := m.pt.ClockSelect(m.scanBuf)
		m.scanBuf = scans
		if !ok {
			return 0, fmt.Errorf("core: no replaceable SRAM page (all pinned)")
		}
		vpid, vvpn, dirty, err := m.pt.Unmap(victim)
		if err != nil {
			return 0, err
		}
		m.fault.VictimTLBEvicted = m.tlb.Invalidate(vpid, mem.VAddr(vvpn<<m.pageShift))
		m.fault.VictimDRAMAddr = m.seen[seenKey{vpid, vvpn}]
		m.fault.ScanAddrs = m.scanBuf
		m.fault.VictimValid = true
		m.fault.VictimDirty = dirty
		m.fault.VictimPageAddr = mem.PAddr(victim << m.pageShift)
		if m.prefetched[victim] {
			m.prefetched[victim] = false
			m.stats.PrefetchWasted++
			m.fault.VictimWasPrefetched = true
		}
		if dirty {
			m.stats.Writebacks++
		}
		m.updateBuf = append(m.updateBuf, m.pt.EntryAddr(victim))
		frame = victim
	}
	if err := m.pt.Map(pid, vpn, frame); err != nil {
		return 0, err
	}
	m.updateBuf = append(m.updateBuf, m.pt.EntryAddr(frame))
	m.fault.UpdateAddrs = m.updateBuf

	key := seenKey{pid, vpn}
	dramAddr, ok := m.seen[key]
	if !ok {
		dramAddr = m.dramNext
		m.dramNext += m.cfg.PageBytes
		m.seen[key] = dramAddr
		m.fault.FirstTouch = true
		m.stats.FirstTouches++
	}
	m.fault.PageDRAMAddr = dramAddr
	// Tell the replacement policy about the arrival; a refault (page
	// was resident before and is back) is the signal the adaptive
	// policies key on.
	m.pt.PolicyInsert(frame, !m.fault.FirstTouch)
	return frame, nil
}

// Prefetch brings (pid, vpn) into a frame ahead of demand (the §3.2
// extension: "Prefetch could be added to RAMpage"). It reports false
// with no error when the page is already resident or no frame can be
// freed. On success the returned Fault describes the replacement work
// and the page's SRAM address is returned; no TLB entry is installed
// (the first demand access takes a cheap TLB miss that hits the pinned
// page table). The Fault shares Translate's buffers: consume it before
// the next Translate or Prefetch call.
func (m *Memory) Prefetch(pid mem.PID, vpn uint64) (*Fault, mem.PAddr, bool, error) {
	if pid == mem.KernelPID {
		return nil, 0, false, nil // the OS region is pinned already
	}
	if _, _, found := m.pt.Lookup(pid, vpn); found {
		return nil, 0, false, nil
	}
	frame, err := m.pageFault(pid, vpn)
	if err != nil {
		// "No replaceable frame" is a benign reason to skip a prefetch.
		return nil, 0, false, nil
	}
	m.prefetched[frame] = true
	m.stats.Prefetches++
	return &m.fault, mem.PAddr(frame << m.pageShift), true, nil
}

// PinPage excludes the SRAM page containing pa from replacement.
// Switch-on-miss mode pins a page while its DRAM transfer is in
// flight, exactly as an operating system locks a frame during I/O —
// otherwise the clock hand could steal the page before its blocked
// process ever runs again.
func (m *Memory) PinPage(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame < m.frames {
		m.pt.Pin(frame)
	}
}

// UnpinPage reverses PinPage once the transfer completes.
func (m *Memory) UnpinPage(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame >= m.osPages && frame < m.frames {
		m.pt.Unpin(frame)
	}
}

// MarkDirty records that the SRAM page containing pa received a
// write-back from L1 (its eventual replacement must write it to DRAM).
func (m *Memory) MarkDirty(pa mem.PAddr) {
	frame := uint64(pa) >> m.pageShift
	if frame < m.frames {
		m.pt.SetDirty(frame)
	}
}

// FrameInfo reports a frame's page-table mapping and state, for
// invariant checking.
func (m *Memory) FrameInfo(frame uint64) (pid mem.PID, vpn uint64, valid, dirty, pinned bool) {
	return m.pt.FrameInfo(frame)
}

// ClockHand returns the replacement clock hand's position (zero when
// the configured policy has no hand).
func (m *Memory) ClockHand() uint64 { return m.pt.Hand() }

// PolicyName returns the replacement policy's canonical name.
func (m *Memory) PolicyName() string { return m.pt.PolicyName() }

// CheckPolicyState verifies the replacement policy's internal
// invariants (hand bounds, counter ranges, geometry).
func (m *Memory) CheckPolicyState() error { return m.pt.CheckPolicyState() }

// ForEachTLBEntry invokes fn for every resident TLB translation,
// without touching statistics or replacement state.
func (m *Memory) ForEachTLBEntry(fn func(pid mem.PID, vpn, frame uint64)) {
	m.tlb.ForEachValid(fn)
}

// CheckTLBConsistency verifies the TLB's internal acceleration
// structures against its authoritative entries.
func (m *Memory) CheckTLBConsistency() error { return m.tlb.CheckConsistency() }

// DirtyUserPages returns the number of resident user pages that would
// need writing back to DRAM if the SRAM were flushed — the cost basis
// for a dynamic page-size switch (§6.2).
func (m *Memory) DirtyUserPages() uint64 {
	var n uint64
	for f := m.osPages; f < m.frames; f++ {
		if _, _, valid, dirty, _ := m.pt.FrameInfo(f); valid && dirty {
			n++
		}
	}
	return n
}

// Resident reports whether (pid, va) is currently in SRAM, without
// disturbing TLB or page-table state beyond statistics.
func (m *Memory) Resident(pid mem.PID, va mem.VAddr) bool {
	if pid == mem.KernelPID {
		_, err := m.KernelPhys(va)
		return err == nil
	}
	if m.tlb.Probe(pid, va) {
		return true
	}
	_, _, found := m.pt.Lookup(pid, uint64(va)>>m.pageShift)
	return found
}
