package core

import (
	"sort"

	"rampage/internal/checkpoint"
	"rampage/internal/mem"
)

// EncodeState serializes the SRAM main memory's complete mutable state:
// the inverted page table, the TLB, the DRAM backing map, the
// allocation watermark, the prefetch bits and the counters. Geometry
// (frame count, page size, OS reservation) comes from the configuration
// and is validated on decode, not serialized. The seen map is emitted
// in sorted (pid, vpn) order so encoding is deterministic.
func (m *Memory) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkCore)
	m.pt.EncodeState(e)
	m.tlb.EncodeState(e)
	keys := make([]seenKey, 0, len(m.seen))
	for k := range m.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].vpn < keys[j].vpn
	})
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.U64(uint64(k.pid))
		e.U64(k.vpn)
		e.U64(m.seen[k])
	}
	e.U64(m.dramNext)
	e.Bools(m.prefetched)
	e.U64(m.stats.Translations)
	e.U64(m.stats.TLBMisses)
	e.U64(m.stats.PageFaults)
	e.U64(m.stats.FirstTouches)
	e.U64(m.stats.Writebacks)
	e.U64(m.stats.Prefetches)
	e.U64(m.stats.PrefetchHits)
	e.U64(m.stats.PrefetchWasted)
}

// DecodeState restores state captured by EncodeState into a memory
// built with the identical configuration.
func (m *Memory) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkCore)
	m.pt.DecodeState(d)
	m.tlb.DecodeState(d)
	n := d.U32()
	seen := make(map[seenKey]uint64, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		pid := mem.PID(d.U64())
		vpn := d.U64()
		seen[seenKey{pid, vpn}] = d.U64()
	}
	if d.Err() == nil {
		m.seen = seen
	}
	m.dramNext = d.U64()
	d.BoolsInto(m.prefetched)
	m.stats.Translations = d.U64()
	m.stats.TLBMisses = d.U64()
	m.stats.PageFaults = d.U64()
	m.stats.FirstTouches = d.U64()
	m.stats.Writebacks = d.U64()
	m.stats.Prefetches = d.U64()
	m.stats.PrefetchHits = d.U64()
	m.stats.PrefetchWasted = d.U64()
}
