// Package tlb models the translation lookaside buffer of §4.3: 64
// entries, fully associative, random replacement, one-cycle (fully
// pipelined) hits. The same model, configured with more entries and
// set-associativity, covers the 1K-entry 2-way TLB of the §6.3 future-
// work measurements.
//
// The TLB's role differs between the two hierarchies (§2.3): in the
// baseline it caches virtual→DRAM translations of fixed 4 KB pages; in
// RAMpage it caches virtual→SRAM-main-memory translations whose page
// size is the SRAM page size, so small SRAM pages shrink TLB reach —
// the source of the Figure 4 overhead spike.
//
// Entries are tagged with the owning process (an address-space ID), so
// context switches need not flush; when a page is replaced from the
// SRAM main memory its TLB entry is invalidated (§2.3).
package tlb

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/xrand"
)

// Config describes a TLB.
type Config struct {
	// Entries is the total entry count (power of two).
	Entries int
	// Assoc is ways per set; 0 means fully associative.
	Assoc int
	// PageBytes is the size of the pages being translated (power of
	// two). This is the SRAM page size in RAMpage and the DRAM page
	// size in the baseline.
	PageBytes uint64
	// Seed feeds the deterministic random replacement.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || !mem.IsPow2(uint64(c.Entries)) {
		return fmt.Errorf("tlb: entry count %d is not a positive power of two", c.Entries)
	}
	if c.Assoc < 0 || c.Assoc > c.Entries {
		return fmt.Errorf("tlb: associativity %d out of range", c.Assoc)
	}
	if c.PageBytes == 0 || !mem.IsPow2(c.PageBytes) {
		return fmt.Errorf("tlb: page size %d is not a power of two", c.PageBytes)
	}
	return nil
}

// DefaultConfig is the paper's TLB: 64 entries, fully associative.
func DefaultConfig(pageBytes uint64) Config {
	return Config{Entries: 64, Assoc: 0, PageBytes: pageBytes}
}

// entry is one translation.
type entry struct {
	valid bool
	pid   mem.PID
	vpn   uint64
	frame uint64 // physical frame number in the target space
}

// Stats counts TLB events.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Flushes       uint64
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// TLB is the translation buffer. It is not safe for concurrent use.
type TLB struct {
	cfg     Config
	entries []entry // sets*assoc, set-major
	// keys mirrors entries with one packed word per entry
	// (vpn<<16 | pid, or keyInvalid) so Lookup scans one word per way
	// instead of a four-field struct — the scan is the simulator's
	// hottest loop. entries stays authoritative; a key match is always
	// re-verified against the entry.
	keys      []uint64
	assoc     int
	setMask   uint64
	pageShift uint
	rng       *xrand.RNG
	stats     Stats
	obs       metrics.Observer // nil unless probing is attached
	// filter is a direct-mapped cache of recent hit positions: it maps
	// (vpn^pid)&filterMask to the entry index that last hit for that
	// translation. A
	// filter probe is verified against keys (and then entries), so a
	// stale slot can only cost a fall-through to the scan, never a
	// wrong translation. Replacement is random and hits update no TLB
	// state, so the filter is invisible to simulated behavior.
	filter [filterSlots]int32
}

const (
	filterSlots = 16
	filterMask  = filterSlots - 1
)

// keyInvalid marks an empty slot in the packed key array. Real keys
// can only equal it for virtual page numbers with all of bits 32..47
// set, and the authoritative entry check rejects those false matches.
const keyInvalid = ^uint64(0)

func packKey(pid mem.PID, vpn uint64) uint64 { return vpn<<16 | uint64(pid) }

// New builds a TLB from a validated configuration.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = cfg.Entries
	}
	sets := cfg.Entries / assoc
	if sets*assoc != cfg.Entries || !mem.IsPow2(uint64(sets)) {
		return nil, fmt.Errorf("tlb: %d entries not divisible into %d-way sets", cfg.Entries, assoc)
	}
	keys := make([]uint64, cfg.Entries)
	for i := range keys {
		keys[i] = keyInvalid
	}
	return &TLB{
		cfg:       cfg,
		entries:   make([]entry, cfg.Entries),
		keys:      keys,
		assoc:     assoc,
		setMask:   uint64(sets - 1),
		pageShift: mem.Log2(cfg.PageBytes),
		rng:       xrand.New(cfg.Seed ^ 0x71B),
	}, nil
}

// MustNew is New but panics on error, for fixed known-good configs.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// SetObserver attaches a metrics observer (nil detaches). The observer
// sees hit/miss/evict/flush events; it never influences TLB behaviour.
func (t *TLB) SetObserver(obs metrics.Observer) { t.obs = obs }

// VPN returns the virtual page number of addr under this TLB's page
// size.
func (t *TLB) VPN(addr mem.VAddr) uint64 { return uint64(addr) >> t.pageShift }

func (t *TLB) set(vpn uint64) []entry {
	base := (vpn & t.setMask) * uint64(t.assoc)
	return t.entries[base : base+uint64(t.assoc)]
}

// Lookup translates (pid, addr). On a hit it returns the physical
// address (frame base plus page offset) and true. On a miss it returns
// false; the caller runs the page-table walk and then calls Insert.
func (t *TLB) Lookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	if pa, ok := t.lookup(pid, addr); ok {
		t.stats.Hits++
		if t.obs != nil {
			t.obs.Count(metrics.EvTLBHit, 1)
		}
		return pa, true
	}
	t.stats.Misses++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBMiss, 1)
	}
	return 0, false
}

// TryLookup is Lookup for a speculative fast path: a hit counts as a
// hit, but a miss leaves the statistics untouched so the caller can
// fall back to the full Lookup-and-walk path, which then records the
// miss exactly once.
func (t *TLB) TryLookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	if pa, ok := t.lookup(pid, addr); ok {
		t.stats.Hits++
		if t.obs != nil {
			t.obs.Count(metrics.EvTLBHit, 1)
		}
		return pa, true
	}
	return 0, false
}

func (t *TLB) lookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	vpn := uint64(addr) >> t.pageShift
	key := packKey(pid, vpn)
	fidx := (vpn ^ uint64(pid)) & filterMask
	if fi := uint64(t.filter[fidx]); t.keys[fi] == key {
		e := &t.entries[fi]
		if e.valid && e.pid == pid && e.vpn == vpn {
			off := uint64(addr) & (t.cfg.PageBytes - 1)
			return mem.PAddr(e.frame<<t.pageShift | off), true
		}
	}
	base := (vpn & t.setMask) * uint64(t.assoc)
	keys := t.keys[base : base+uint64(t.assoc)]
	for i := range keys {
		if keys[i] == key {
			e := &t.entries[base+uint64(i)]
			if e.valid && e.pid == pid && e.vpn == vpn {
				t.filter[fidx] = int32(base + uint64(i))
				off := uint64(addr) & (t.cfg.PageBytes - 1)
				return mem.PAddr(e.frame<<t.pageShift | off), true
			}
		}
	}
	return 0, false
}

// Probe reports whether a translation is present without touching
// statistics.
func (t *TLB) Probe(pid mem.PID, addr mem.VAddr) bool {
	vpn := t.VPN(addr)
	for _, e := range t.set(vpn) {
		if e.valid && e.pid == pid && e.vpn == vpn {
			return true
		}
	}
	return false
}

// Insert installs a translation from (pid, vpn of addr) to the given
// physical frame number, replacing a random entry if the set is full.
func (t *TLB) Insert(pid mem.PID, addr mem.VAddr, frame uint64) {
	vpn := t.VPN(addr)
	base := (vpn & t.setMask) * uint64(t.assoc)
	set := t.entries[base : base+uint64(t.assoc)]
	// Reuse an existing or invalid slot first.
	victim := -1
	for i := range set {
		if set[i].valid && set[i].pid == pid && set[i].vpn == vpn {
			set[i].frame = frame
			return
		}
		if !set[i].valid && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		victim = t.rng.Intn(t.assoc)
	}
	set[victim] = entry{valid: true, pid: pid, vpn: vpn, frame: frame}
	t.keys[base+uint64(victim)] = packKey(pid, vpn)
	t.filter[(vpn^uint64(pid))&filterMask] = int32(base + uint64(victim))
}

// Invalidate removes the translation for (pid, vpn of addr) if present,
// reporting whether it was. The RAMpage page-replacement path uses it
// (§2.3: "If a page is replaced from the SRAM main memory, its entry
// ... in the TLB is flushed").
func (t *TLB) Invalidate(pid mem.PID, addr mem.VAddr) bool {
	vpn := t.VPN(addr)
	base := (vpn & t.setMask) * uint64(t.assoc)
	set := t.entries[base : base+uint64(t.assoc)]
	for i := range set {
		if set[i].valid && set[i].pid == pid && set[i].vpn == vpn {
			set[i] = entry{}
			t.keys[base+uint64(i)] = keyInvalid
			t.stats.Invalidations++
			if t.obs != nil {
				t.obs.Count(metrics.EvTLBEvict, 1)
			}
			return true
		}
	}
	return false
}

// FlushPID removes all translations belonging to pid (used when an
// address space is destroyed).
func (t *TLB) FlushPID(pid mem.PID) {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].pid == pid {
			t.entries[i] = entry{}
			t.keys[i] = keyInvalid
		}
	}
	t.stats.Flushes++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBFlush, 1)
	}
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
		t.keys[i] = keyInvalid
	}
	t.stats.Flushes++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBFlush, 1)
	}
}

// ForEachValid invokes fn for every resident translation, without
// touching statistics or replacement state. The invariant checker uses
// it to verify TLB–page-table coherence.
func (t *TLB) ForEachValid(fn func(pid mem.PID, vpn, frame uint64)) {
	for i := range t.entries {
		if t.entries[i].valid {
			fn(t.entries[i].pid, t.entries[i].vpn, t.entries[i].frame)
		}
	}
}

// CheckConsistency verifies the TLB's internal acceleration structures
// against the authoritative entry array: every valid entry's packed key
// must mirror it, every invalid slot must hold keyInvalid, and every
// filter slot must index a real entry. A violation here means the fast
// lookup path could disagree with the slow one.
func (t *TLB) CheckConsistency() error {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid {
			if want := packKey(e.pid, e.vpn); t.keys[i] != want {
				return fmt.Errorf("tlb: entry %d key %#x does not mirror (pid %d, vpn %#x)", i, t.keys[i], e.pid, e.vpn)
			}
		} else if t.keys[i] != keyInvalid {
			return fmt.Errorf("tlb: invalid entry %d has live key %#x", i, t.keys[i])
		}
	}
	for i, fi := range t.filter {
		if fi < 0 || int(fi) >= len(t.entries) {
			return fmt.Errorf("tlb: filter slot %d indexes out-of-range entry %d", i, fi)
		}
	}
	return nil
}

// Reach returns the bytes of address space the TLB can map when full —
// the quantity that collapses for small RAMpage pages (Figure 4).
func (t *TLB) Reach() uint64 {
	return uint64(t.cfg.Entries) * t.cfg.PageBytes
}
