// Package tlb models the translation lookaside buffer of §4.3: 64
// entries, fully associative, random replacement, one-cycle (fully
// pipelined) hits. The same model, configured with more entries and
// set-associativity, covers the 1K-entry 2-way TLB of the §6.3 future-
// work measurements.
//
// The TLB's role differs between the two hierarchies (§2.3): in the
// baseline it caches virtual→DRAM translations of fixed 4 KB pages; in
// RAMpage it caches virtual→SRAM-main-memory translations whose page
// size is the SRAM page size, so small SRAM pages shrink TLB reach —
// the source of the Figure 4 overhead spike.
//
// Entries are tagged with the owning process (an address-space ID), so
// context switches need not flush; when a page is replaced from the
// SRAM main memory its TLB entry is invalidated (§2.3).
//
// The entry store is columnar — parallel keys/vpns/frames arrays
// instead of an array of structs — so the simulator's hottest loop
// (the hit scan, and the fused TLB→L1 fast path that package sim
// builds over Hot) touches one or two cache lines per probe instead
// of a four-field struct per way.
package tlb

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/xrand"
)

// Config describes a TLB.
type Config struct {
	// Entries is the total entry count (power of two).
	Entries int
	// Assoc is ways per set; 0 means fully associative.
	Assoc int
	// PageBytes is the size of the pages being translated (power of
	// two). This is the SRAM page size in RAMpage and the DRAM page
	// size in the baseline.
	PageBytes uint64
	// Seed feeds the deterministic random replacement.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || !mem.IsPow2(uint64(c.Entries)) {
		return fmt.Errorf("tlb: entry count %d is not a positive power of two", c.Entries)
	}
	if c.Assoc < 0 || c.Assoc > c.Entries {
		return fmt.Errorf("tlb: associativity %d out of range", c.Assoc)
	}
	if c.PageBytes == 0 || !mem.IsPow2(c.PageBytes) {
		return fmt.Errorf("tlb: page size %d is not a power of two", c.PageBytes)
	}
	return nil
}

// DefaultConfig is the paper's TLB: 64 entries, fully associative.
func DefaultConfig(pageBytes uint64) Config {
	return Config{Entries: 64, Assoc: 0, PageBytes: pageBytes}
}

// Stats counts TLB events.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Flushes       uint64
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// TLB is the translation buffer. It is not safe for concurrent use.
//
// The entry store is three parallel arrays indexed by slot:
//
//	keys[i]   = vpns[i]<<16 | pid  (keyInvalid when the slot is free)
//	vpns[i]   = full virtual page number (vpnInvalid when free)
//	frames[i] = physical frame number
//
// A probe matches slot i when keys[i] == packKey(pid, vpn) AND
// vpns[i] == vpn: the vpn comparison is full-width, so equal keys then
// force the low 16 bits — the PID — to be equal too, making the pair
// of comparisons exact without a separate pid column or valid bit.
type TLB struct {
	cfg       Config
	keys      []uint64
	vpns      []uint64
	frames    []uint64
	assoc     int
	setMask   uint64
	pageShift uint
	rng       *xrand.RNG
	stats     Stats
	obs       metrics.Observer // nil unless probing is attached
	// filter is a direct-mapped cache of recent hit positions: it maps
	// (vpn^pid)&FilterMask to the entry index that last hit for that
	// translation. A filter probe is verified against keys and vpns, so
	// a stale slot can only cost a fall-through to the scan, never a
	// wrong translation. Replacement is random and hits update no TLB
	// state, so the filter is invisible to simulated behavior.
	filter []int32
}

// FilterSlots is the size of the hit-position filter. It is behavior-
// invisible (see the filter field), so growing it is purely a host-
// speed knob; 16384 slots keep the filter load factor low across the
// 18-process Table 2 workload — whose processes reuse the same virtual
// page numbers, so slots must separate streams by PID alone, putting
// thousands of distinct (vpn^pid) values in play — while costing only
// 64 KB of host memory.
const (
	FilterSlots = 16384
	FilterMask  = FilterSlots - 1
)

// keyInvalid marks an empty slot in the packed key array, and
// vpnInvalid the matching empty slot in the vpn column. A real
// translation can never present vpn == vpnInvalid (it would need a
// one-byte page size and the very top page of the address space), so
// the two-comparison match in lookup never false-hits a free slot.
const (
	keyInvalid = ^uint64(0)
	vpnInvalid = ^uint64(0)
)

func packKey(pid mem.PID, vpn uint64) uint64 { return vpn<<16 | uint64(pid) }

// PackKey exposes the packed-key encoding for the simulator's fused
// fast path (package sim), which probes Hot views inline.
func PackKey(pid mem.PID, vpn uint64) uint64 { return packKey(pid, vpn) }

// New builds a TLB from a validated configuration.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = cfg.Entries
	}
	sets := cfg.Entries / assoc
	if sets*assoc != cfg.Entries || !mem.IsPow2(uint64(sets)) {
		return nil, fmt.Errorf("tlb: %d entries not divisible into %d-way sets", cfg.Entries, assoc)
	}
	keys := make([]uint64, cfg.Entries)
	vpns := make([]uint64, cfg.Entries)
	for i := range keys {
		keys[i] = keyInvalid
		vpns[i] = vpnInvalid
	}
	return &TLB{
		cfg:       cfg,
		keys:      keys,
		vpns:      vpns,
		frames:    make([]uint64, cfg.Entries),
		assoc:     assoc,
		setMask:   uint64(sets - 1),
		pageShift: mem.Log2(cfg.PageBytes),
		rng:       xrand.New(cfg.Seed ^ 0x71B),
		filter:    make([]int32, FilterSlots),
	}, nil
}

// MustNew is New but panics on error, for fixed known-good configs.
func MustNew(cfg Config) *TLB {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// SetObserver attaches a metrics observer (nil detaches). The observer
// sees hit/miss/evict/flush events; it never influences TLB behaviour.
func (t *TLB) SetObserver(obs metrics.Observer) { t.obs = obs }

// VPN returns the virtual page number of addr under this TLB's page
// size.
func (t *TLB) VPN(addr mem.VAddr) uint64 { return uint64(addr) >> t.pageShift }

// Hot is a flattened, read-mostly view of the TLB for the simulator's
// fused TLB→L1 fast path. The slices alias the TLB's live arrays —
// they are never reallocated after New — so a view captured once stays
// current. A full fast-path probe mirrors lookup exactly:
//
//	fi := Filter[(vpn^pid)&FilterMask]
//	hit := Keys[fi] == PackKey(pid, vpn) && VPNs[fi] == vpn
//	pa  := Frames[fi]<<PageShift | addr&OffMask
//
// and on a filter miss, a scan of the set (base = (vpn&SetMask)*Assoc,
// Assoc consecutive entries) with the same two-compare match, writing
// the hit position back to Filter. A probe that misses both is a true
// TLB miss and must fall back to the TLB's own methods. The caller
// accumulates Stats.Hits batch-locally and flushes through Stats.
type Hot struct {
	Keys      []uint64
	VPNs      []uint64
	Frames    []uint64
	Filter    []int32
	SetMask   uint64
	Assoc     uint64
	PageShift uint
	OffMask   uint64
	Stats     *Stats
}

// Hot returns the fast-path view. The view is invalidated by nothing
// short of building a new TLB.
func (t *TLB) Hot() Hot {
	return Hot{
		Keys:      t.keys,
		VPNs:      t.vpns,
		Frames:    t.frames,
		Filter:    t.filter,
		SetMask:   t.setMask,
		Assoc:     uint64(t.assoc),
		PageShift: t.pageShift,
		OffMask:   t.cfg.PageBytes - 1,
		Stats:     &t.stats,
	}
}

// Lookup translates (pid, addr). On a hit it returns the physical
// address (frame base plus page offset) and true. On a miss it returns
// false; the caller runs the page-table walk and then calls Insert.
func (t *TLB) Lookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	if pa, ok := t.lookup(pid, addr); ok {
		t.stats.Hits++
		if t.obs != nil {
			t.obs.Count(metrics.EvTLBHit, 1)
		}
		return pa, true
	}
	t.stats.Misses++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBMiss, 1)
	}
	return 0, false
}

// TryLookup is Lookup for a speculative fast path: a hit counts as a
// hit, but a miss leaves the statistics untouched so the caller can
// fall back to the full Lookup-and-walk path, which then records the
// miss exactly once.
func (t *TLB) TryLookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	if pa, ok := t.lookup(pid, addr); ok {
		t.stats.Hits++
		if t.obs != nil {
			t.obs.Count(metrics.EvTLBHit, 1)
		}
		return pa, true
	}
	return 0, false
}

func (t *TLB) lookup(pid mem.PID, addr mem.VAddr) (mem.PAddr, bool) {
	vpn := uint64(addr) >> t.pageShift
	key := packKey(pid, vpn)
	fidx := (vpn ^ uint64(pid)) & FilterMask
	if fi := uint64(t.filter[fidx]); t.keys[fi] == key && t.vpns[fi] == vpn {
		off := uint64(addr) & (t.cfg.PageBytes - 1)
		return mem.PAddr(t.frames[fi]<<t.pageShift | off), true
	}
	base := (vpn & t.setMask) * uint64(t.assoc)
	keys := t.keys[base : base+uint64(t.assoc)]
	for i := range keys {
		if keys[i] == key && t.vpns[base+uint64(i)] == vpn {
			t.filter[fidx] = int32(base + uint64(i))
			off := uint64(addr) & (t.cfg.PageBytes - 1)
			return mem.PAddr(t.frames[base+uint64(i)]<<t.pageShift | off), true
		}
	}
	return 0, false
}

// Probe reports whether a translation is present without touching
// statistics.
func (t *TLB) Probe(pid mem.PID, addr mem.VAddr) bool {
	vpn := t.VPN(addr)
	key := packKey(pid, vpn)
	base := (vpn & t.setMask) * uint64(t.assoc)
	for i := base; i < base+uint64(t.assoc); i++ {
		if t.keys[i] == key && t.vpns[i] == vpn {
			return true
		}
	}
	return false
}

// Insert installs a translation from (pid, vpn of addr) to the given
// physical frame number, replacing a random entry if the set is full.
func (t *TLB) Insert(pid mem.PID, addr mem.VAddr, frame uint64) {
	vpn := t.VPN(addr)
	key := packKey(pid, vpn)
	base := (vpn & t.setMask) * uint64(t.assoc)
	// Reuse an existing or invalid slot first.
	victim := int64(-1)
	for i := base; i < base+uint64(t.assoc); i++ {
		if t.keys[i] == key && t.vpns[i] == vpn {
			t.frames[i] = frame
			t.filter[(vpn^uint64(pid))&FilterMask] = int32(i)
			return
		}
		if t.vpns[i] == vpnInvalid && victim < 0 {
			victim = int64(i)
		}
	}
	if victim < 0 {
		victim = int64(base + uint64(t.rng.Intn(t.assoc)))
	}
	t.keys[victim] = key
	t.vpns[victim] = vpn
	t.frames[victim] = frame
	t.filter[(vpn^uint64(pid))&FilterMask] = int32(victim)
}

// Invalidate removes the translation for (pid, vpn of addr) if present,
// reporting whether it was. The RAMpage page-replacement path uses it
// (§2.3: "If a page is replaced from the SRAM main memory, its entry
// ... in the TLB is flushed").
func (t *TLB) Invalidate(pid mem.PID, addr mem.VAddr) bool {
	vpn := t.VPN(addr)
	key := packKey(pid, vpn)
	base := (vpn & t.setMask) * uint64(t.assoc)
	for i := base; i < base+uint64(t.assoc); i++ {
		if t.keys[i] == key && t.vpns[i] == vpn {
			t.clearSlot(i)
			t.stats.Invalidations++
			if t.obs != nil {
				t.obs.Count(metrics.EvTLBEvict, 1)
			}
			return true
		}
	}
	return false
}

func (t *TLB) clearSlot(i uint64) {
	t.keys[i] = keyInvalid
	t.vpns[i] = vpnInvalid
	t.frames[i] = 0
}

// FlushPID removes all translations belonging to pid (used when an
// address space is destroyed).
func (t *TLB) FlushPID(pid mem.PID) {
	for i := range t.keys {
		if t.vpns[i] != vpnInvalid && mem.PID(t.keys[i]) == pid {
			t.clearSlot(uint64(i))
		}
	}
	t.stats.Flushes++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBFlush, 1)
	}
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for i := range t.keys {
		t.clearSlot(uint64(i))
	}
	t.stats.Flushes++
	if t.obs != nil {
		t.obs.Count(metrics.EvTLBFlush, 1)
	}
}

// ForEachValid invokes fn for every resident translation, without
// touching statistics or replacement state. The invariant checker uses
// it to verify TLB–page-table coherence.
func (t *TLB) ForEachValid(fn func(pid mem.PID, vpn, frame uint64)) {
	for i := range t.keys {
		if t.vpns[i] != vpnInvalid {
			fn(mem.PID(t.keys[i]), t.vpns[i], t.frames[i])
		}
	}
}

// CheckConsistency verifies the TLB's internal acceleration structures
// against the authoritative columns: every live slot's packed key must
// mirror its vpn column, every free slot must hold both sentinels, and
// every filter slot must index a real entry. A violation here means
// the fast lookup path could disagree with the slow one.
func (t *TLB) CheckConsistency() error {
	for i := range t.keys {
		if t.vpns[i] != vpnInvalid {
			if want := t.vpns[i]<<16 | t.keys[i]&0xFFFF; t.keys[i] != want {
				return fmt.Errorf("tlb: entry %d key %#x does not mirror vpn %#x", i, t.keys[i], t.vpns[i])
			}
		} else if t.keys[i] != keyInvalid {
			return fmt.Errorf("tlb: free entry %d has live key %#x", i, t.keys[i])
		}
	}
	for i, fi := range t.filter {
		if fi < 0 || int(fi) >= len(t.keys) {
			return fmt.Errorf("tlb: filter slot %d indexes out-of-range entry %d", i, fi)
		}
	}
	return nil
}

// Reach returns the bytes of address space the TLB can map when full —
// the quantity that collapses for small RAMpage pages (Figure 4).
func (t *TLB) Reach() uint64 {
	return uint64(t.cfg.Entries) * t.cfg.PageBytes
}
