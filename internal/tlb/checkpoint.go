package tlb

import "rampage/internal/checkpoint"

// EncodeState serializes the TLB's behavioral state: the entry columns,
// the replacement RNG and the counters. The hit-position filter is NOT
// serialized — it is a verified, behavior-invisible accelerator (see
// the filter field), so leaving it out keeps checkpoint bytes
// independent of which execution path (fused fast path or full lookup)
// produced the state.
func (t *TLB) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkTLB)
	e.U64s(t.keys)
	e.U64s(t.vpns)
	e.U64s(t.frames)
	e.U64(t.rng.State())
	e.U64(t.stats.Hits)
	e.U64(t.stats.Misses)
	e.U64(t.stats.Invalidations)
	e.U64(t.stats.Flushes)
}

// DecodeState restores state captured by EncodeState into the live
// columns and resets the filter to its construction state (slot 0,
// always re-verified before use).
func (t *TLB) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkTLB)
	d.U64sInto(t.keys)
	d.U64sInto(t.vpns)
	d.U64sInto(t.frames)
	t.rng.SetState(d.U64())
	t.stats.Hits = d.U64()
	t.stats.Misses = d.U64()
	t.stats.Invalidations = d.U64()
	t.stats.Flushes = d.U64()
	for i := range t.filter {
		t.filter[i] = 0
	}
}
