package tlb

import (
	"testing"
	"testing/quick"

	"rampage/internal/mem"
)

func paperTLB(t *testing.T, pageBytes uint64) *TLB {
	t.Helper()
	tb, err := New(DefaultConfig(pageBytes))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tb
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Entries: 0, PageBytes: 4096},
		{Entries: 63, PageBytes: 4096},
		{Entries: 64, Assoc: -1, PageBytes: 4096},
		{Entries: 64, Assoc: 128, PageBytes: 4096},
		{Entries: 64, PageBytes: 0},
		{Entries: 64, PageBytes: 3000},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := DefaultConfig(4096).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewRejectsUnevenSets(t *testing.T) {
	// 64 entries at 3-way does not divide evenly.
	if _, err := New(Config{Entries: 64, Assoc: 3, PageBytes: 4096}); err == nil {
		t.Error("uneven set division accepted")
	}
}

func TestLookupInsert(t *testing.T) {
	tb := paperTLB(t, 4096)
	if _, hit := tb.Lookup(1, 0x12345); hit {
		t.Error("cold lookup hit")
	}
	tb.Insert(1, 0x12345, 77)
	pa, hit := tb.Lookup(1, 0x12345)
	if !hit {
		t.Fatal("lookup missed after insert")
	}
	if want := mem.PAddr(77<<12 | 0x345); pa != want {
		t.Errorf("translated to %#x, want %#x", pa, want)
	}
	// Same page, different offset.
	pa, hit = tb.Lookup(1, 0x12FFF)
	if !hit || pa != mem.PAddr(77<<12|0xFFF) {
		t.Errorf("same-page lookup = (%#x, %v)", pa, hit)
	}
	// Different page misses.
	if _, hit := tb.Lookup(1, 0x13000); hit {
		t.Error("different page hit")
	}
	s := tb.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPIDIsolation(t *testing.T) {
	tb := paperTLB(t, 4096)
	tb.Insert(1, 0x1000, 5)
	if _, hit := tb.Lookup(2, 0x1000); hit {
		t.Error("translation leaked across PIDs")
	}
	tb.Insert(2, 0x1000, 9)
	paA, _ := tb.Lookup(1, 0x1000)
	paB, _ := tb.Lookup(2, 0x1000)
	if paA == paB {
		t.Error("two PIDs share a frame mapping")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tb := paperTLB(t, 4096)
	tb.Insert(1, 0x1000, 5)
	tb.Insert(1, 0x1000, 6)
	pa, hit := tb.Lookup(1, 0x1000)
	if !hit || pa>>12 != 6 {
		t.Errorf("updated translation = (%#x, %v), want frame 6", pa, hit)
	}
}

func TestCapacityEviction(t *testing.T) {
	tb := paperTLB(t, 4096)
	// Fill all 64 entries plus one more.
	for i := 0; i < 65; i++ {
		tb.Insert(1, mem.VAddr(i)<<12, uint64(i))
	}
	present := 0
	for i := 0; i < 65; i++ {
		if tb.Probe(1, mem.VAddr(i)<<12) {
			present++
		}
	}
	if present != 64 {
		t.Errorf("%d translations present, want exactly 64", present)
	}
}

func TestInvalidate(t *testing.T) {
	tb := paperTLB(t, 4096)
	tb.Insert(1, 0x5000, 3)
	if !tb.Invalidate(1, 0x5000) {
		t.Error("Invalidate missed present entry")
	}
	if tb.Probe(1, 0x5000) {
		t.Error("entry present after invalidate")
	}
	if tb.Invalidate(1, 0x5000) {
		t.Error("double invalidate reported present")
	}
	if tb.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", tb.Stats().Invalidations)
	}
}

func TestFlushPID(t *testing.T) {
	tb := paperTLB(t, 4096)
	tb.Insert(1, 0x1000, 1)
	tb.Insert(1, 0x2000, 2)
	tb.Insert(2, 0x1000, 3)
	tb.FlushPID(1)
	if tb.Probe(1, 0x1000) || tb.Probe(1, 0x2000) {
		t.Error("PID 1 entries survived FlushPID")
	}
	if !tb.Probe(2, 0x1000) {
		t.Error("PID 2 entry lost in FlushPID(1)")
	}
}

func TestFlushAll(t *testing.T) {
	tb := paperTLB(t, 4096)
	tb.Insert(1, 0x1000, 1)
	tb.Insert(2, 0x2000, 2)
	tb.FlushAll()
	if tb.Probe(1, 0x1000) || tb.Probe(2, 0x2000) {
		t.Error("entries survived FlushAll")
	}
}

func TestSetAssociativeVariant(t *testing.T) {
	// The §6.3 ablation TLB: 1K entries, 2-way.
	tb := MustNew(Config{Entries: 1024, Assoc: 2, PageBytes: 4096})
	// Two VPNs mapping to the same set coexist; a third evicts one.
	sets := uint64(512)
	v1 := mem.VAddr(0) << 12
	v2 := mem.VAddr(sets) << 12
	v3 := mem.VAddr(2*sets) << 12
	tb.Insert(1, v1, 1)
	tb.Insert(1, v2, 2)
	if !tb.Probe(1, v1) || !tb.Probe(1, v2) {
		t.Fatal("2-way set cannot hold two conflicting translations")
	}
	tb.Insert(1, v3, 3)
	n := 0
	for _, v := range []mem.VAddr{v1, v2, v3} {
		if tb.Probe(1, v) {
			n++
		}
	}
	if n != 2 {
		t.Errorf("%d of 3 conflicting translations present, want 2", n)
	}
}

func TestReach(t *testing.T) {
	if got := paperTLB(t, 128).Reach(); got != 64*128 {
		t.Errorf("Reach = %d, want %d (the Figure 4 collapse: 8KB)", got, 64*128)
	}
	if got := paperTLB(t, 4096).Reach(); got != 64*4096 {
		t.Errorf("Reach = %d, want 256KB", got)
	}
}

func TestTranslationProperty(t *testing.T) {
	tb := paperTLB(t, 1024)
	f := func(vaddr uint32, frame uint16) bool {
		v := mem.VAddr(vaddr)
		tb.Insert(3, v, uint64(frame))
		pa, hit := tb.Lookup(3, v)
		if !hit {
			return false
		}
		// Page offset must be preserved; frame must be as inserted.
		return uint64(pa)&1023 == uint64(v)&1023 && uint64(pa)>>10 == uint64(frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissRateAndMustNew(t *testing.T) {
	s := Stats{Hits: 9, Misses: 1}
	if s.MissRate() != 0.1 {
		t.Errorf("MissRate = %g", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}
