package tlb

import (
	"testing"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// TestTLBInvariantsUnderRandomOps drives the TLB with a pseudo-random
// operation mix and checks the structural invariants a translation
// buffer must keep regardless of its (random) replacement choices:
//
//  1. a Lookup hit returns exactly the frame of the latest Insert for
//     that (pid, vpn);
//  2. occupancy never exceeds capacity;
//  3. Invalidate removes exactly the named translation;
//  4. translations never migrate between PIDs.
func TestTLBInvariantsUnderRandomOps(t *testing.T) {
	shapes := []Config{
		{Entries: 64, Assoc: 0, PageBytes: 4096},
		{Entries: 1024, Assoc: 2, PageBytes: 1024},
		{Entries: 16, Assoc: 4, PageBytes: 128},
	}
	for _, cfg := range shapes {
		tb := MustNew(cfg)
		rng := xrand.New(7)
		// Oracle of the latest Insert per (pid, vpn).
		type key struct {
			pid mem.PID
			vpn uint64
		}
		latest := map[key]uint64{}
		for i := 0; i < 100000; i++ {
			pid := mem.PID(rng.Intn(4))
			vpn := rng.Uintn(512)
			va := mem.VAddr(vpn * cfg.PageBytes)
			switch rng.Intn(4) {
			case 0, 1: // lookup
				pa, hit := tb.Lookup(pid, va)
				if hit {
					want, known := latest[key{pid, vpn}]
					if !known {
						t.Fatalf("shape %+v: hit for never-inserted (%d, %#x)", cfg, pid, vpn)
					}
					if uint64(pa)/cfg.PageBytes != want {
						t.Fatalf("shape %+v: stale frame %d, want %d", cfg, uint64(pa)/cfg.PageBytes, want)
					}
				}
			case 2: // insert
				frame := rng.Uintn(1 << 20)
				tb.Insert(pid, va, frame)
				latest[key{pid, vpn}] = frame
				if !tb.Probe(pid, va) {
					t.Fatalf("shape %+v: translation absent right after Insert", cfg)
				}
			case 3: // invalidate
				tb.Invalidate(pid, va)
				if tb.Probe(pid, va) {
					t.Fatalf("shape %+v: translation present after Invalidate", cfg)
				}
			}
		}
		// Occupancy bound: count present translations among the oracle
		// keys; it can never exceed capacity.
		present := 0
		for k := range latest {
			if tb.Probe(k.pid, mem.VAddr(k.vpn*cfg.PageBytes)) {
				present++
			}
		}
		if present > cfg.Entries {
			t.Errorf("shape %+v: %d translations present, capacity %d", cfg, present, cfg.Entries)
		}
	}
}
