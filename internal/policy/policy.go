// Package policy implements pluggable page-replacement policies for
// the inverted page table. The §4.5 clock algorithm the paper
// hardwires is one implementation among several: the package asks the
// paper's question — which memory-management algorithm wins as the
// CPU–DRAM gap grows — forward, with FIFO and seeded-random baselines,
// an AWRP-style adaptive recency+frequency ranking, and a
// Banshee-style bandwidth-aware policy that protects high-reuse pages
// to suppress low-benefit page movement between SRAM and DRAM.
//
// A ReplacementPolicy owns only the replacement-ranking state (clock
// hand, insertion stamps, reuse counters, ...). The page table keeps
// owning the per-frame flag bits — valid, used, dirty, pinned — and
// exposes them to the policy through a read-write View, so the clock
// policy is the literal extraction of the old pagetable.ClockSelect
// loop, byte-identical in behaviour and in checkpoint encoding.
//
// Hook contract, mirrored exactly by the reference models in
// internal/oracle:
//
//   - Touch(frame) fires on every page-table lookup hit — TLB-miss
//     granularity, not per reference, so the TLB-filtered fast paths
//     stay policy-free. (The clock's use bit is likewise set by the
//     table on lookup hits.)
//   - Insert(frame, refault) fires after a fault maps a page; refault
//     reports whether the page had been resident before (it is false
//     on first touch).
//   - Pin(frame) fires when a frame is pinned; eligibility itself is
//     read from the View's pin flag, so implementations may ignore it.
//
// Every policy's state is deterministic and encodable: EncodeState /
// DecodeState plug into the pagetable section of the versioned
// checkpoint codec, and CheckState is the policy-aware generalization
// of the old clock-hand-bounds invariant.
package policy

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rampage/internal/checkpoint"
)

// Per-frame flag bits of the page-table flags column, shared with
// package pagetable (which aliases these values).
const (
	FlagValid  = 1 << iota // frame maps a page
	FlagUsed               // reference bit (set by the table on lookup hits)
	FlagDirty              // page must be written back on replacement
	FlagPinned             // excluded from replacement
)

// View is the policy's window into the page table: the live per-frame
// flags column and the geometry needed to synthesize the table-entry
// addresses a victim scan touches (they become the fault handler's
// data references).
type View struct {
	// Flags aliases the table's live flags column; policies may clear
	// FlagUsed (the clock does) but must not touch other bits.
	Flags []uint8
	// EntryBase is the virtual address of frame 0's table entry;
	// entries are EntrySize bytes apart.
	EntryBase uint64
	EntrySize uint64
}

// EntryAddr returns the virtual address of a frame's table entry.
func (v View) EntryAddr(frame uint64) uint64 {
	return v.EntryBase + frame*v.EntrySize
}

// eligible reports whether a frame may be chosen as a victim.
func (v View) eligible(frame uint64) bool {
	fl := v.Flags[frame]
	return fl&FlagValid != 0 && fl&FlagPinned == 0
}

// ReplacementPolicy chooses victim frames for page replacement. A
// policy is deterministic: the same construction parameters and the
// same hook/selection sequence produce the same victims and the same
// encoded state. Implementations are not safe for concurrent use.
type ReplacementPolicy interface {
	// Name returns the canonical policy name ("clock", "fifo", ...).
	Name() string
	// SelectVictim picks a replaceable frame (valid, unpinned),
	// appending the table-entry address of every frame it examined to
	// scanAddrs. ok is false when no frame is replaceable.
	SelectVictim(v View, scanAddrs []uint64) (victim uint64, _ []uint64, ok bool)
	// Touch records a reference to a resident frame (lookup-hit
	// granularity).
	Touch(frame uint64)
	// Insert records that a fault installed a page into frame; refault
	// is true when the page had been resident before.
	Insert(frame uint64, refault bool)
	// Pin records that the frame was pinned. Eligibility is enforced
	// through the View's pin flag, so this is advisory.
	Pin(frame uint64)
	// EncodeState serializes the policy's mutable state. The clock
	// policy emits exactly the eight bytes (one U64, the hand) the
	// page table historically wrote, keeping old checkpoints valid.
	EncodeState(e *checkpoint.Enc)
	// DecodeState restores state written by EncodeState.
	DecodeState(d *checkpoint.Dec)
	// CheckState validates internal bounds (the policy-aware
	// generalization of the clock-hand invariant) for a table with the
	// given frame count.
	CheckState(frames uint64) error
}

// Canonical policy names. Clock is the paper's default; an empty name
// means clock everywhere a policy is specified.
const (
	Clock     = "clock"
	FIFO      = "fifo"
	Random    = "random"
	AWRP      = "awrp"
	Bandwidth = "bandwidth"
)

// Names returns the canonical policy names in a fixed order (clock
// first, then alphabetical).
func Names() []string {
	return []string{Clock, AWRP, Bandwidth, FIFO, Random}
}

// Normalize maps a policy spelling to its canonical name, with the
// empty string (and "clock") normalizing to "" — the default-policy
// spelling that keeps config hashes and cache keys identical to the
// pre-policy era. It does not validate: use Parse for that.
func Normalize(name string) string {
	if name == Clock {
		return ""
	}
	return name
}

// Label returns the display name for a (possibly normalized) policy.
func Label(name string) string {
	if name == "" {
		return Clock
	}
	return name
}

// Parse validates a policy name and returns its normalized form (""
// for clock). Unknown names are errors listing the vocabulary.
func Parse(name string) (string, error) {
	switch name {
	case "", Clock:
		return "", nil
	case FIFO, Random, AWRP, Bandwidth:
		return name, nil
	}
	return "", fmt.Errorf("policy: unknown replacement policy %q (want one of clock, fifo, random, awrp, bandwidth)", name)
}

// New constructs the named policy for a table with the given frame
// count. seed feeds the seeded policies (random); deterministic
// policies ignore it. The empty name selects clock.
func New(name string, frames, seed uint64) (ReplacementPolicy, error) {
	norm, err := Parse(name)
	if err != nil {
		return nil, err
	}
	if frames == 0 {
		return nil, fmt.Errorf("policy: zero frames")
	}
	switch norm {
	case "":
		return newClock(frames), nil
	case FIFO:
		return newFIFO(frames), nil
	case Random:
		return newRandom(frames, seed), nil
	case AWRP:
		return newAWRP(frames), nil
	case Bandwidth:
		return newBandwidth(frames), nil
	}
	panic("unreachable")
}

// Per-policy eviction counters. These are process-global atomics — the
// /metricsz vocabulary is fixed per policy name, not per machine — and
// are bumped by the page table on every successful victim selection.
var evictions [5]atomic.Uint64

func evictionIndex(name string) int {
	switch Label(name) {
	case Clock:
		return 0
	case FIFO:
		return 1
	case Random:
		return 2
	case AWRP:
		return 3
	case Bandwidth:
		return 4
	}
	return -1
}

// CountEviction records one successful victim selection under the
// named policy.
func CountEviction(name string) {
	if i := evictionIndex(name); i >= 0 {
		evictions[i].Add(1)
	}
}

// EvictionsSnapshot returns the per-policy eviction totals, keyed by
// display name, in sorted key order when ranged with sorted keys.
func EvictionsSnapshot() map[string]uint64 {
	names := Names()
	sort.Strings(names)
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[n] = evictions[evictionIndex(n)].Load()
	}
	return out
}
