package policy

import (
	"fmt"

	"rampage/internal/checkpoint"
	"rampage/internal/xrand"
)

// randomSalt decorrelates the policy's SplitMix64 stream from the
// other consumers of the same base seed (TLB, kernel traces, free-list
// scramble).
const randomSalt = 0xA17C9E4D5B36F208

// randomPolicy evicts a uniformly random eligible frame, drawn from a
// seeded SplitMix64 stream so runs stay bit-for-bit reproducible. It
// is the memoryless baseline the adaptive policies must beat.
type randomPolicy struct {
	frames uint64
	rng    xrand.RNG
}

func newRandom(frames, seed uint64) *randomPolicy {
	p := &randomPolicy{frames: frames}
	p.rng.SetState(seed ^ randomSalt)
	return p
}

func (p *randomPolicy) Name() string { return Random }

// SelectVictim counts the eligible frames, draws a uniform index into
// them, and walks to it. Only the victim's table entry is reported as
// examined. One RNG value is consumed per successful selection and
// none on failure, which pins the stream for the oracle mirror.
func (p *randomPolicy) SelectVictim(v View, scanAddrs []uint64) (uint64, []uint64, bool) {
	var count uint64
	for f := uint64(0); f < p.frames; f++ {
		if v.eligible(f) {
			count++
		}
	}
	if count == 0 {
		return 0, scanAddrs, false
	}
	k := p.rng.Uintn(count)
	for f := uint64(0); f < p.frames; f++ {
		if !v.eligible(f) {
			continue
		}
		if k == 0 {
			return f, append(scanAddrs, v.EntryAddr(f)), true
		}
		k--
	}
	panic("policy: random candidate count drifted during selection")
}

func (p *randomPolicy) Touch(uint64) {}

func (p *randomPolicy) Insert(uint64, bool) {}

func (p *randomPolicy) Pin(uint64) {}

func (p *randomPolicy) EncodeState(e *checkpoint.Enc) { e.U64(p.rng.State()) }

func (p *randomPolicy) DecodeState(d *checkpoint.Dec) { p.rng.SetState(d.U64()) }

// CheckState has no bounds to verify beyond geometry: every RNG state
// is valid.
func (p *randomPolicy) CheckState(frames uint64) error {
	if p.frames != frames {
		return fmt.Errorf("policy: random built for %d frames, table has %d", p.frames, frames)
	}
	return nil
}
