package policy

import (
	"bytes"
	"testing"

	"rampage/internal/checkpoint"
)

const testFrames = 16

// newView builds a standalone flags column with every frame valid and
// used — the state of a freshly filled table.
func newView() View {
	v := View{Flags: make([]uint8, testFrames), EntryBase: 0xF010_1000, EntrySize: 16}
	for f := range v.Flags {
		v.Flags[f] = FlagValid | FlagUsed
	}
	return v
}

// exercise drives a policy through a deterministic mix of hooks and
// selections, the way the fault handler would: touch, insert, select,
// re-mark the victim used (a new page arrived in its frame).
func exercise(p ReplacementPolicy, v View, rounds int) []uint64 {
	var victims []uint64
	for i := 0; i < rounds; i++ {
		f := uint64(i) % testFrames
		p.Touch(f)
		p.Insert(f, i%3 != 0)
		if victim, _, ok := p.SelectVictim(v, nil); ok {
			victims = append(victims, victim)
			v.Flags[victim] |= FlagUsed
		}
	}
	return victims
}

func encoded(p ReplacementPolicy) []byte {
	e := checkpoint.NewEnc()
	p.EncodeState(e)
	return e.Bytes()
}

// TestPolicyCheckpointRoundTrip drives every policy, snapshots its
// state through the checkpoint codec, restores it into a fresh
// instance, and requires (a) the decode to succeed with the buffer
// fully consumed, (b) the restored policy to produce byte-identical
// state and identical victims from there on, and (c) truncated and
// semantically corrupted buffers to be rejected.
func TestPolicyCheckpointRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := New(name, testFrames, 99)
			if err != nil {
				t.Fatal(err)
			}
			v := newView()
			exercise(p, v, 37)
			snap := encoded(p)

			fresh, err := New(name, testFrames, 0) // seed must come from the snapshot, not construction
			if err != nil {
				t.Fatal(err)
			}
			d := checkpoint.NewDec(snap)
			fresh.DecodeState(d)
			if err := d.Err(); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if d.Remaining() != 0 {
				t.Fatalf("decode left %d bytes unread", d.Remaining())
			}
			if got := encoded(fresh); !bytes.Equal(got, snap) {
				t.Fatalf("re-encoded state differs from snapshot (%d vs %d bytes)", len(got), len(snap))
			}
			if err := fresh.CheckState(testFrames); err != nil {
				t.Fatalf("restored state invalid: %v", err)
			}

			// Both copies must continue identically: clone the flags so
			// use-bit clearing stays independent per copy.
			v2 := newView()
			copy(v2.Flags, v.Flags)
			wantVictims := exercise(p, v, 23)
			gotVictims := exercise(fresh, v2, 23)
			if len(wantVictims) != len(gotVictims) {
				t.Fatalf("restored policy chose %d victims, original %d", len(gotVictims), len(wantVictims))
			}
			for i := range wantVictims {
				if wantVictims[i] != gotVictims[i] {
					t.Fatalf("victim %d: restored chose frame %d, original %d", i, gotVictims[i], wantVictims[i])
				}
			}
			if !bytes.Equal(encoded(p), encoded(fresh)) {
				t.Fatal("states diverged after identical post-restore sequences")
			}

			// Truncation is always rejected.
			for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
				if cut >= len(snap) {
					continue
				}
				trunc, err := New(name, testFrames, 0)
				if err != nil {
					t.Fatal(err)
				}
				td := checkpoint.NewDec(snap[:cut])
				trunc.DecodeState(td)
				if td.Err() == nil && td.Remaining() == 0 {
					t.Errorf("truncation to %d bytes accepted", cut)
				}
			}
		})
	}
}

// TestPolicyCheckpointCorruptionRejected plants semantic corruption —
// in-bounds bytes that violate a policy's invariants — and requires
// the decoder (or its CheckState validation) to reject it.
func TestPolicyCheckpointCorruptionRejected(t *testing.T) {
	corrupt := func(name string, mutate func(snap []byte)) {
		t.Helper()
		p, err := New(name, testFrames, 99)
		if err != nil {
			t.Fatal(err)
		}
		v := newView()
		exercise(p, v, 37)
		snap := append([]byte(nil), encoded(p)...)
		mutate(snap)
		fresh, _ := New(name, testFrames, 0)
		d := checkpoint.NewDec(snap)
		fresh.DecodeState(d)
		if d.Err() == nil {
			if err := fresh.CheckState(testFrames); err == nil {
				t.Errorf("%s: corrupted state accepted", name)
			}
		}
	}
	// Clock: hand out of range (first and only u64).
	corrupt(Clock, func(s []byte) { s[0] = 0xFF })
	// FIFO: zero the sequence counter so every stamp exceeds it.
	corrupt(FIFO, func(s []byte) {
		for i := 0; i < 8; i++ {
			s[i] = 0
		}
	})
	// AWRP: weight above the max (layout: tick, then wR).
	corrupt(AWRP, func(s []byte) { s[8] = 0xFF })
	// Bandwidth: hand out of range.
	corrupt(Bandwidth, func(s []byte) { s[0] = 0xFF })
}

// TestPolicyDeterminism pins that two identically constructed policies
// fed identical sequences choose identical victims — including the
// seeded random policy, whose stream is a pure function of the seed.
func TestPolicyDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, testFrames, 1234)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := New(name, testFrames, 1234)
		va, vb := newView(), newView()
		wa := exercise(a, va, 61)
		wb := exercise(b, vb, 61)
		if len(wa) != len(wb) {
			t.Fatalf("%s: %d vs %d victims", name, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("%s: victim %d differs (%d vs %d)", name, i, wa[i], wb[i])
			}
		}
		if !bytes.Equal(encoded(a), encoded(b)) {
			t.Fatalf("%s: encoded states differ after identical sequences", name)
		}
	}
}

// TestParsePolicy pins the vocabulary and the clock normalization that
// keeps pre-policy config hashes valid.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", "", true},
		{"clock", "", true},
		{"fifo", "fifo", true},
		{"random", "random", true},
		{"awrp", "awrp", true},
		{"bandwidth", "bandwidth", true},
		{"lru", "", false},
		{"Clock", "", false},
		{"clock ", "", false},
	} {
		got, err := Parse(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("Parse(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// FuzzParsePolicy fuzzes the policy-name parser: it must never panic,
// accepted names must construct, normalize idempotently and round-trip
// through Label, and every name in the published vocabulary must be
// accepted.
func FuzzParsePolicy(f *testing.F) {
	for _, n := range Names() {
		f.Add(n)
	}
	f.Add("")
	f.Add("lru")
	f.Add("clock\x00")
	f.Add(" fifo")
	f.Fuzz(func(t *testing.T, name string) {
		norm, err := Parse(name)
		if err != nil {
			if _, nerr := New(name, testFrames, 1); nerr == nil {
				t.Fatalf("Parse rejects %q but New accepts it", name)
			}
			return
		}
		if norm != Normalize(name) {
			t.Fatalf("Parse(%q) = %q but Normalize = %q", name, norm, Normalize(name))
		}
		if again, err := Parse(norm); err != nil || again != norm {
			t.Fatalf("normalized form %q does not re-parse: (%q, %v)", norm, again, err)
		}
		if lbl, err := Parse(Label(norm)); err != nil || lbl != norm {
			t.Fatalf("display form %q does not round-trip: (%q, %v)", Label(norm), lbl, err)
		}
		p, err := New(name, testFrames, 1)
		if err != nil {
			t.Fatalf("Parse accepts %q but New rejects it: %v", name, err)
		}
		if p.Name() != Label(norm) {
			t.Fatalf("New(%q).Name() = %q, want %q", name, p.Name(), Label(norm))
		}
	})
}
