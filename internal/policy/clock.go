package policy

import (
	"fmt"

	"rampage/internal/checkpoint"
)

// clockPolicy is the §4.5 clock algorithm, extracted verbatim from the
// page table: "a clock hand advances through the page table, marking
// each page that has previously been marked as 'in use' as 'unused',
// until an 'unused' page is found." The use bit lives in the table's
// flags column (set by the table on lookup hits and maps); the policy
// owns only the hand.
type clockPolicy struct {
	frames uint64
	hand   uint64
}

func newClock(frames uint64) *clockPolicy { return &clockPolicy{frames: frames} }

func (p *clockPolicy) Name() string { return Clock }

// SelectVictim runs the clock hand: clear use bits on referenced
// pages, stop at the first unreferenced, unpinned, valid frame. Two
// full sweeps suffice: the first clears use bits, the second must find
// a clear one unless everything is pinned or invalid.
func (p *clockPolicy) SelectVictim(v View, scanAddrs []uint64) (uint64, []uint64, bool) {
	n := p.frames
	for i := uint64(0); i < 2*n; i++ {
		f := p.hand
		p.hand = (p.hand + 1) % n
		scanAddrs = append(scanAddrs, v.EntryAddr(f))
		fl := v.Flags[f]
		if fl&FlagValid == 0 || fl&FlagPinned != 0 {
			continue
		}
		if fl&FlagUsed != 0 {
			v.Flags[f] = fl &^ FlagUsed
			continue
		}
		return f, scanAddrs, true
	}
	return 0, scanAddrs, false
}

// Touch is a no-op: the clock's reference bit is the table's FlagUsed,
// which the table sets itself.
func (p *clockPolicy) Touch(uint64) {}

// Insert is a no-op: a mapped frame arrives with FlagUsed already set.
func (p *clockPolicy) Insert(uint64, bool) {}

// Pin is a no-op: the hand skips pinned frames via the View.
func (p *clockPolicy) Pin(uint64) {}

// EncodeState writes exactly the one U64 (the hand) the page table
// wrote before the policy extraction, keeping checkpoint bytes
// identical for clock configurations.
func (p *clockPolicy) EncodeState(e *checkpoint.Enc) { e.U64(p.hand) }

// DecodeState restores the hand, rejecting out-of-range values.
func (p *clockPolicy) DecodeState(d *checkpoint.Dec) {
	p.hand = d.U64()
	if d.Err() == nil && p.hand >= p.frames {
		d.Fail("policy: clock hand %d out of range (%d frames)", p.hand, p.frames)
	}
}

// CheckState validates the hand bound — the original clock-hand
// invariant.
func (p *clockPolicy) CheckState(frames uint64) error {
	if p.hand >= frames {
		return fmt.Errorf("policy: clock hand %d out of range (%d frames)", p.hand, frames)
	}
	return nil
}

// Hand exposes the hand position for invariant checks and state
// summaries.
func (p *clockPolicy) Hand() uint64 { return p.hand }
