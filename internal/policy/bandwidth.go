package policy

import (
	"fmt"

	"rampage/internal/checkpoint"
)

// bandwidthReuseCap saturates the per-frame reuse counters (Banshee's
// frequency counters are similarly small).
const bandwidthReuseCap = 15

// bandwidthRefaultCredit is the reuse credit a refaulting page arrives
// with: a page that keeps coming back has demonstrated benefit, so the
// policy protects it immediately instead of making it re-earn credit.
const bandwidthRefaultCredit = 2

// bandwidthPolicy is a Banshee-style bandwidth-aware replacement
// policy: per-frame saturating reuse counters track how much benefit
// keeping a page has produced, and victim selection preferentially
// evicts zero-reuse pages — streaming data that would churn the
// SRAM⇄DRAM channel for no benefit — while the hand's pass decays the
// survivors so stale credit drains away. First-touch pages start at
// zero credit (immediately evictable: low-benefit movement is
// suppressed by making it cheap to undo), refaulting pages start with
// credit.
type bandwidthPolicy struct {
	frames uint64
	hand   uint64
	reuse  []uint8 // per-frame saturating reuse credit
}

func newBandwidth(frames uint64) *bandwidthPolicy {
	return &bandwidthPolicy{frames: frames, reuse: make([]uint8, frames)}
}

func (p *bandwidthPolicy) Name() string { return Bandwidth }

// SelectVictim advances the hand looking for a zero-credit eligible
// frame, decaying the credit of every eligible frame it passes. If two
// full sweeps find none (every resident page has demonstrated reuse),
// the minimum-credit frame seen — post-decay — is the victim.
func (p *bandwidthPolicy) SelectVictim(v View, scanAddrs []uint64) (uint64, []uint64, bool) {
	n := p.frames
	var best uint64
	var bestCredit uint8
	found := false
	for i := uint64(0); i < 2*n; i++ {
		f := p.hand
		p.hand = (p.hand + 1) % n
		scanAddrs = append(scanAddrs, v.EntryAddr(f))
		if !v.eligible(f) {
			continue
		}
		if p.reuse[f] == 0 {
			return f, scanAddrs, true
		}
		p.reuse[f]--
		if !found || p.reuse[f] < bestCredit {
			found, best, bestCredit = true, f, p.reuse[f]
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, scanAddrs, true
}

// Touch earns the frame one unit of reuse credit, saturating at the
// cap.
func (p *bandwidthPolicy) Touch(frame uint64) {
	if p.reuse[frame] < bandwidthReuseCap {
		p.reuse[frame]++
	}
}

// Insert seeds the frame's credit: zero on first touch, a protective
// credit on refault.
func (p *bandwidthPolicy) Insert(frame uint64, refault bool) {
	if refault {
		p.reuse[frame] = bandwidthRefaultCredit
	} else {
		p.reuse[frame] = 0
	}
}

func (p *bandwidthPolicy) Pin(uint64) {}

func (p *bandwidthPolicy) EncodeState(e *checkpoint.Enc) {
	e.U64(p.hand)
	e.U8s(p.reuse)
}

func (p *bandwidthPolicy) DecodeState(d *checkpoint.Dec) {
	p.hand = d.U64()
	d.U8sInto(p.reuse)
	if d.Err() != nil {
		return
	}
	if err := p.CheckState(p.frames); err != nil {
		d.Fail("%v", err)
	}
}

func (p *bandwidthPolicy) CheckState(frames uint64) error {
	if uint64(len(p.reuse)) != frames {
		return fmt.Errorf("policy: bandwidth tracks %d frames, table has %d", len(p.reuse), frames)
	}
	if p.hand >= frames {
		return fmt.Errorf("policy: bandwidth hand %d out of range (%d frames)", p.hand, frames)
	}
	for f, c := range p.reuse {
		if c > bandwidthReuseCap {
			return fmt.Errorf("policy: bandwidth reuse credit %d on frame %d exceeds cap %d", c, f, bandwidthReuseCap)
		}
	}
	return nil
}
