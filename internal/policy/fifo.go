package policy

import (
	"fmt"

	"rampage/internal/checkpoint"
)

// fifoPolicy evicts the oldest resident page by insertion order — the
// classic first-in-first-out baseline. Each Insert stamps the frame
// with a monotonically increasing sequence number; the victim is the
// eligible frame with the smallest stamp (lowest frame index on ties,
// which also covers the never-inserted pinned OS frames at stamp 0).
type fifoPolicy struct {
	frames uint64
	next   uint64   // sequence counter; the next Insert gets next+1
	stamps []uint64 // per-frame insertion stamp
}

func newFIFO(frames uint64) *fifoPolicy {
	return &fifoPolicy{frames: frames, stamps: make([]uint64, frames)}
}

func (p *fifoPolicy) Name() string { return FIFO }

// SelectVictim scans for the eligible frame with the oldest insertion
// stamp. Only the chosen victim's table entry is reported as examined:
// a real FIFO keeps its queue head at hand, it does not walk the
// table.
func (p *fifoPolicy) SelectVictim(v View, scanAddrs []uint64) (uint64, []uint64, bool) {
	var best uint64
	var bestStamp uint64
	found := false
	for f := uint64(0); f < p.frames; f++ {
		if !v.eligible(f) {
			continue
		}
		if !found || p.stamps[f] < bestStamp {
			found, best, bestStamp = true, f, p.stamps[f]
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, append(scanAddrs, v.EntryAddr(best)), true
}

// Touch is a no-op: FIFO ignores references after insertion.
func (p *fifoPolicy) Touch(uint64) {}

// Insert stamps the frame with the next sequence number.
func (p *fifoPolicy) Insert(frame uint64, refault bool) {
	p.next++
	p.stamps[frame] = p.next
}

func (p *fifoPolicy) Pin(uint64) {}

func (p *fifoPolicy) EncodeState(e *checkpoint.Enc) {
	e.U64(p.next)
	e.U64s(p.stamps)
}

func (p *fifoPolicy) DecodeState(d *checkpoint.Dec) {
	p.next = d.U64()
	d.U64sInto(p.stamps)
	if d.Err() != nil {
		return
	}
	for f, s := range p.stamps {
		if s > p.next {
			d.Fail("policy: fifo stamp %d on frame %d exceeds sequence counter %d", s, f, p.next)
			return
		}
	}
}

func (p *fifoPolicy) CheckState(frames uint64) error {
	if uint64(len(p.stamps)) != frames {
		return fmt.Errorf("policy: fifo tracks %d frames, table has %d", len(p.stamps), frames)
	}
	for f, s := range p.stamps {
		if s > p.next {
			return fmt.Errorf("policy: fifo stamp %d on frame %d exceeds sequence counter %d", s, f, p.next)
		}
	}
	return nil
}
