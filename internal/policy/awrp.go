package policy

import (
	"fmt"

	"rampage/internal/checkpoint"
)

// awrpWindow is the adaptation interval: the recency/frequency weight
// is re-evaluated every this many inserts.
const awrpWindow = 256

// awrpWeightMax bounds the recency weight; the frequency weight is the
// complement (awrpWeightMax - wR), so the two always sum to the same
// fixed-point budget.
const awrpWeightMax = 8

// awrpPolicy is an adaptive weight-ranking policy in the AWRP mold:
// every eligible frame is scored by a blend of recency (age since last
// touch) and frequency (a saturating access counter), and the blend's
// weighting adapts online. The score is
//
//	score(f) = (wR+1) * age(f) / (1 + freq(f)*(8-wR))
//
// in integer arithmetic: at wR=8 the divisor is 1 and the policy
// degenerates to strict LRU; at wR=0 frequent pages divide their age
// by up to 1+8*255 and are almost never chosen. The victim is the
// maximum-score frame (lowest index on ties).
//
// Adaptation is a hill climb on the refault rate: Insert reports
// whether the faulting page had been resident before, and every
// awrpWindow inserts the policy compares the window's refault rate
// against the previous window's (cross-multiplied, no floating
// point). A worsening rate flips the adjustment direction; the weight
// then steps one unit, bouncing at the [0, 8] bounds.
type awrpPolicy struct {
	frames uint64
	tick   uint64   // logical time, advanced by Touch and Insert
	last   []uint64 // per-frame tick of the most recent touch/insert
	freq   []uint8  // per-frame saturating access counter

	wR  uint32 // recency weight in [0, awrpWeightMax]
	dir int32  // current hill-climb direction, +1 or -1

	winIns, winRef   uint64 // current adaptation window
	prevIns, prevRef uint64 // previous completed window
}

func newAWRP(frames uint64) *awrpPolicy {
	return &awrpPolicy{
		frames: frames,
		last:   make([]uint64, frames),
		freq:   make([]uint8, frames),
		wR:     awrpWeightMax / 2,
		dir:    1,
	}
}

func (p *awrpPolicy) Name() string { return AWRP }

// score ranks a frame for eviction: older and less frequently touched
// pages score higher.
func (p *awrpPolicy) score(f uint64) uint64 {
	age := p.tick - p.last[f]
	return (uint64(p.wR) + 1) * age / (1 + uint64(p.freq[f])*uint64(awrpWeightMax-p.wR))
}

// SelectVictim picks the maximum-score eligible frame. Only the
// victim's table entry is reported as examined.
func (p *awrpPolicy) SelectVictim(v View, scanAddrs []uint64) (uint64, []uint64, bool) {
	var best, bestScore uint64
	found := false
	for f := uint64(0); f < p.frames; f++ {
		if !v.eligible(f) {
			continue
		}
		if s := p.score(f); !found || s > bestScore {
			found, best, bestScore = true, f, s
		}
	}
	if !found {
		return 0, scanAddrs, false
	}
	return best, append(scanAddrs, v.EntryAddr(best)), true
}

// Touch refreshes the frame's recency and bumps its saturating
// frequency counter.
func (p *awrpPolicy) Touch(frame uint64) {
	p.tick++
	p.last[frame] = p.tick
	if p.freq[frame] < 255 {
		p.freq[frame]++
	}
}

// Insert seeds the frame's score state and advances the adaptation
// window; refault inserts are the signal the hill climb minimizes.
func (p *awrpPolicy) Insert(frame uint64, refault bool) {
	p.tick++
	p.last[frame] = p.tick
	p.freq[frame] = 1
	p.winIns++
	if refault {
		p.winRef++
	}
	if p.winIns >= awrpWindow {
		p.adapt()
	}
}

// adapt closes the window: if the refault rate worsened relative to
// the previous window (winRef/winIns > prevRef/prevIns, compared by
// cross-multiplication), the climb direction flips; then the weight
// steps, bouncing off the bounds.
func (p *awrpPolicy) adapt() {
	if p.prevIns > 0 && p.winRef*p.prevIns > p.prevRef*p.winIns {
		p.dir = -p.dir
	}
	next := int64(p.wR) + int64(p.dir)
	if next < 0 || next > awrpWeightMax {
		p.dir = -p.dir
		next = int64(p.wR) + int64(p.dir)
	}
	p.wR = uint32(next)
	p.prevIns, p.prevRef = p.winIns, p.winRef
	p.winIns, p.winRef = 0, 0
}

func (p *awrpPolicy) Pin(uint64) {}

func (p *awrpPolicy) EncodeState(e *checkpoint.Enc) {
	e.U64(p.tick)
	e.U32(p.wR)
	e.I32(p.dir)
	e.U64(p.winIns)
	e.U64(p.winRef)
	e.U64(p.prevIns)
	e.U64(p.prevRef)
	e.U64s(p.last)
	e.U8s(p.freq)
}

func (p *awrpPolicy) DecodeState(d *checkpoint.Dec) {
	p.tick = d.U64()
	p.wR = d.U32()
	p.dir = d.I32()
	p.winIns = d.U64()
	p.winRef = d.U64()
	p.prevIns = d.U64()
	p.prevRef = d.U64()
	d.U64sInto(p.last)
	d.U8sInto(p.freq)
	if d.Err() != nil {
		return
	}
	if err := p.CheckState(p.frames); err != nil {
		d.Fail("%v", err)
	}
}

func (p *awrpPolicy) CheckState(frames uint64) error {
	if uint64(len(p.last)) != frames {
		return fmt.Errorf("policy: awrp tracks %d frames, table has %d", len(p.last), frames)
	}
	if p.wR > awrpWeightMax {
		return fmt.Errorf("policy: awrp recency weight %d out of range [0, %d]", p.wR, awrpWeightMax)
	}
	if p.dir != 1 && p.dir != -1 {
		return fmt.Errorf("policy: awrp climb direction %d is not ±1", p.dir)
	}
	if p.winIns >= awrpWindow {
		return fmt.Errorf("policy: awrp open window holds %d inserts (limit %d)", p.winIns, awrpWindow)
	}
	if p.winRef > p.winIns || p.prevRef > p.prevIns {
		return fmt.Errorf("policy: awrp refault count exceeds insert count (%d/%d, prev %d/%d)",
			p.winRef, p.winIns, p.prevRef, p.prevIns)
	}
	for f, l := range p.last {
		if l > p.tick {
			return fmt.Errorf("policy: awrp frame %d touched at tick %d, after current tick %d", f, l, p.tick)
		}
	}
	return nil
}
