package harness

import (
	"reflect"
	"strings"
	"testing"
)

// Error-path coverage for the parsers shared by the CLIs and the
// experiment service. The happy paths are covered by the command tests;
// these pin that every malformed input is rejected with a message
// naming the offending piece, instead of leaking a zero value into a
// sweep.

func TestConfigForScaleErrors(t *testing.T) {
	for _, name := range []string{"", "fast", "Default", "quick ", "FULL"} {
		if _, err := ConfigForScale(name); err == nil {
			t.Errorf("ConfigForScale(%q) accepted an unknown scale", name)
		}
	}
	// Every advertised name must resolve.
	for _, name := range ScaleNames {
		if _, err := ConfigForScale(name); err != nil {
			t.Errorf("ConfigForScale(%q): %v", name, err)
		}
	}
}

func TestParseSystemKindErrors(t *testing.T) {
	for _, name := range []string{"", "rampagecs", "RAMPAGE", "4way", "baseline-dm ", "l2"} {
		if _, err := ParseSystemKind(name); err == nil {
			t.Errorf("ParseSystemKind(%q) accepted an unknown system", name)
		}
	}
}

func TestParseGridList(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  []uint64
		errIs string // substring of the expected error; "" = success
	}{
		{"empty selects default", "", nil, ""},
		{"single", "200", []uint64{200}, ""},
		{"list", "200,400,800", []uint64{200, 400, 800}, ""},
		{"whitespace tolerated", " 200 , 400 ", []uint64{200, 400}, ""},
		{"empty element", "200,,800", nil, "bad grid value"},
		{"trailing comma", "200,400,", nil, "bad grid value"},
		{"not a number", "200,fast", nil, "bad grid value"},
		{"negative", "-200", nil, "bad grid value"},
		{"fractional", "2.5", nil, "bad grid value"},
		{"range syntax unsupported", "200-800", nil, "bad grid value"},
		{"overflow", "18446744073709551616", nil, "bad grid value"},
		{"zero rate", "0,400", nil, "zero grid value"},
		{"duplicate rate", "200,400,200", nil, "duplicate grid value"},
		{"duplicate after trim", "400, 400", nil, "duplicate grid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseGridList(tc.in)
			if tc.errIs == "" {
				if err != nil {
					t.Fatalf("ParseGridList(%q): %v", tc.in, err)
				}
				if !reflect.DeepEqual(got, tc.want) {
					t.Errorf("ParseGridList(%q) = %v, want %v", tc.in, got, tc.want)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseGridList(%q) = %v, want error mentioning %q", tc.in, got, tc.errIs)
			}
			if !strings.Contains(err.Error(), tc.errIs) {
				t.Errorf("ParseGridList(%q) error %q does not mention %q", tc.in, err, tc.errIs)
			}
		})
	}
}
