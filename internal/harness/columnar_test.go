package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestGoldenExperimentsColumnarEquivalence proves the columnar feed is
// behavior-invisible end to end: for every experiment with a committed
// golden, the JSON document produced by the default path — columnar
// workload preload, zero-copy column windows into the machines' fused
// batch loops — is byte-identical to the one produced with batching
// disabled, where every reference flows through the per-reference
// trace.Reader interface and Machine.Exec. The runs use a reduced
// scale; the full-scale equivalent is the golden regression gate
// (`make regress`), whose goldens predate the columnar path.
func TestGoldenExperimentsColumnarEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six experiments twice")
	}
	goldenIDs := []string{"table3", "table4", "table5", "fig2", "fig3", "fig4"}
	rates := []uint64{200, 4000}
	sizes := []uint64{256, 2048}
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			columnar := tinyConfig()
			perRef := tinyConfig()
			perRef.DisableBatching = true

			colDoc, err := BuildExperimentDoc(context.Background(), columnar, id, rates, sizes)
			if err != nil {
				t.Fatalf("columnar run: %v", err)
			}
			refDoc, err := BuildExperimentDoc(context.Background(), perRef, id, rates, sizes)
			if err != nil {
				t.Fatalf("per-reference run: %v", err)
			}
			colJSON, err := json.Marshal(colDoc)
			if err != nil {
				t.Fatal(err)
			}
			refJSON, err := json.Marshal(refDoc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(colJSON, refJSON) {
				t.Errorf("columnar-fed report diverges from interface-fed report\ncolumnar: %s\nper-ref:  %s", colJSON, refJSON)
			}
		})
	}
}
