package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"rampage/internal/stats"
)

// csvHeader is the column set WriteSweepCSV emits.
var csvHeader = []string{
	"system", "issue_mhz", "size_bytes", "seconds", "cycles",
	"bench_refs", "os_tlb_refs", "os_fault_refs", "os_switch_refs",
	"tlb_misses", "page_faults", "l1i_misses", "l1d_misses", "l2_misses",
	"writebacks", "switches", "switches_on_miss", "idle_cycles", "resizes",
	"frac_l1i", "frac_l1d", "frac_l2", "frac_dram", "overhead_ratio",
}

// WriteSweepCSV writes one row per (issue rate, size) cell of a sweep
// grid, suitable for external plotting of any paper figure.
func WriteSweepCSV(w io.Writer, rates, sizes []uint64, grid [][]*stats.Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, mhz := range rates {
		for j, size := range sizes {
			r := grid[i][j]
			row := []string{
				r.Name,
				fmt.Sprintf("%d", mhz),
				fmt.Sprintf("%d", size),
				fmt.Sprintf("%.9f", r.Seconds()),
				fmt.Sprintf("%d", r.Cycles),
				fmt.Sprintf("%d", r.BenchRefs),
				fmt.Sprintf("%d", r.OSTLBRefs),
				fmt.Sprintf("%d", r.OSFaultRefs),
				fmt.Sprintf("%d", r.OSSwitchRefs),
				fmt.Sprintf("%d", r.TLBMisses),
				fmt.Sprintf("%d", r.PageFaults),
				fmt.Sprintf("%d", r.L1IMisses),
				fmt.Sprintf("%d", r.L1DMisses),
				fmt.Sprintf("%d", r.L2Misses),
				fmt.Sprintf("%d", r.Writebacks),
				fmt.Sprintf("%d", r.Switches),
				fmt.Sprintf("%d", r.SwitchesOnMiss),
				fmt.Sprintf("%d", r.IdleCycles),
				fmt.Sprintf("%d", r.Resizes),
				fmt.Sprintf("%.6f", r.LevelFraction(stats.L1I)),
				fmt.Sprintf("%.6f", r.LevelFraction(stats.L1D)),
				fmt.Sprintf("%.6f", r.LevelFraction(stats.L2)),
				fmt.Sprintf("%.6f", r.LevelFraction(stats.DRAM)),
				fmt.Sprintf("%.6f", r.OverheadRatio()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
