package harness

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"testing"

	"rampage/internal/checkpoint"
	"rampage/internal/metrics"
)

// ckptTestConfig is a fast configuration with enough references to
// cross several quanta, page faults and TLB refills per system.
func ckptTestConfig() Config {
	cfg := QuickScaled()
	cfg.Processes = 4
	return cfg
}

// ckptTestSpecs covers every machine family: conventional direct-mapped
// and associative L2, RAMpage stall-on-miss, RAMpage switch-on-miss
// (with the switch trace, so the scheduler kernel RNG advances), and
// the adaptive controller.
func ckptTestSpecs() []RunSpec {
	return []RunSpec{
		{System: BaselineDM, IssueMHz: 1000, SizeBytes: 512},
		{System: TwoWayL2, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true},
		{System: RAMpage, IssueMHz: 1000, SizeBytes: 512},
		{System: RAMpageCS, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true},
		{System: RAMpage, IssueMHz: 1000, SizeBytes: 512, AdaptivePages: true},
	}
}

func specName(spec RunSpec) string {
	name := spec.System.String()
	if spec.AdaptivePages {
		name += "-adaptive"
	}
	return name
}

// TestCheckpointResumeMatchesScratch is the tentpole equivalence: a run
// warm-started from a mid-run checkpoint must produce a report
// bit-identical to the same run from scratch.
func TestCheckpointResumeMatchesScratch(t *testing.T) {
	for _, spec := range ckptTestSpecs() {
		spec := spec
		t.Run(specName(spec), func(t *testing.T) {
			t.Parallel()
			cfg := ckptTestConfig()
			cfg.MaxRefs = 240_000
			want, err := Run(context.Background(), cfg, spec)
			if err != nil {
				t.Fatalf("scratch run: %v", err)
			}

			store := checkpoint.NewStore(0, "", nil)
			warm := cfg
			warm.Checkpoints = store
			warm.MaxRefs = 120_000
			if _, err := Run(context.Background(), warm, spec); err != nil {
				t.Fatalf("prefix run: %v", err)
			}
			if store.Len() != 1 {
				t.Fatalf("store holds %d checkpoints, want 1", store.Len())
			}
			warm.MaxRefs = 240_000
			got, err := Run(context.Background(), warm, spec)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if *got != *want {
				t.Errorf("resumed report differs from scratch:\n got: %+v\nwant: %+v", *got, *want)
			}
		})
	}
}

// TestCheckpointResumePerRefAndVerify pins the restore path under the
// per-reference scheduler loop and under the oracle invariant checker:
// both the execution-path knob and -verify must hold on warm starts.
func TestCheckpointResumePerRefAndVerify(t *testing.T) {
	spec := RunSpec{System: RAMpageCS, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true}
	cfg := ckptTestConfig()
	cfg.MaxRefs = 240_000
	want, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}
	for _, mode := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"per-ref", func(c *Config) { c.DisableBatching = true }},
		{"verify", func(c *Config) { c.Verify = true }},
		{"per-ref-verify", func(c *Config) { c.DisableBatching = true; c.Verify = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			warm := ckptTestConfig()
			warm.Checkpoints = checkpoint.NewStore(0, "", nil)
			mode.mutate(&warm)
			warm.MaxRefs = 120_000
			if _, err := Run(context.Background(), warm, spec); err != nil {
				t.Fatalf("prefix run: %v", err)
			}
			warm.MaxRefs = 240_000
			got, err := Run(context.Background(), warm, spec)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if *got != *want {
				t.Errorf("resumed %s report differs from scratch:\n got: %+v\nwant: %+v", mode.name, *got, *want)
			}
		})
	}
}

// TestCheckpointCompleteSkipsRun pins the warm full-restore path: after
// a run stores its final state, re-running the identical request is
// answered entirely from the checkpoint, and by the dominance rules a
// final checkpoint also answers any larger budget.
func TestCheckpointCompleteSkipsRun(t *testing.T) {
	spec := RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 512}
	cfg := ckptTestConfig()
	cfg.MaxRefs = 150_000
	want, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}

	svc := &metrics.ServiceStats{}
	store := checkpoint.NewStore(0, "", svc)
	warm := cfg
	warm.Checkpoints = store
	if _, err := Run(context.Background(), warm, spec); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if got := svc.Get(metrics.SvcCkptMiss); got != 1 {
		t.Errorf("cold run counted %d misses, want 1", got)
	}
	got, err := Run(context.Background(), warm, spec)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if *got != *want {
		t.Errorf("warm report differs from scratch:\n got: %+v\nwant: %+v", *got, *want)
	}
	if hits := svc.Get(metrics.SvcCkptHit); hits != 1 {
		t.Errorf("warm run counted %d hits, want 1", hits)
	}
	if store.Len() != 1 {
		t.Errorf("store holds %d checkpoints after a complete restore, want 1", store.Len())
	}
}

// TestCheckpointFinalAtBudgetNotReused pins the dominance edge: a
// budget-capped run that happens to drain the workload exactly at its
// budget is final, and a later run with that same budget must NOT be
// answered by it — wait, it must: a final checkpoint below the budget
// is complete. The edge that must not reuse is a final checkpoint AT
// the budget, which cannot arise from a budgeted run (a budgeted run
// stopping at its budget is non-final). This test instead pins that an
// uncapped final checkpoint answers larger budgets but is never
// resumed past end-of-stream.
func TestCheckpointFinalAnswersLargerBudget(t *testing.T) {
	spec := RunSpec{System: BaselineDM, IssueMHz: 1000, SizeBytes: 512}
	cfg := ckptTestConfig()
	cfg.ProfileName = "compress" // one short program: drains quickly
	cfg.Processes = 0

	full, err := Run(context.Background(), cfg, spec) // uncapped: drains the stream
	if err != nil {
		t.Fatalf("uncapped run: %v", err)
	}

	store := checkpoint.NewStore(0, "", nil)
	warm := cfg
	warm.Checkpoints = store
	if _, err := Run(context.Background(), warm, spec); err != nil {
		t.Fatalf("cold uncapped run: %v", err)
	}
	// A budget far beyond the stream length: the from-scratch run would
	// drain the stream before the budget, so the final checkpoint is a
	// complete answer.
	warm.MaxRefs = 1 << 40
	got, err := Run(context.Background(), warm, spec)
	if err != nil {
		t.Fatalf("warm over-budget run: %v", err)
	}
	if *got != *full {
		t.Errorf("over-budget warm report differs from uncapped scratch:\n got: %+v\nwant: %+v", *got, *full)
	}
}

// TestSweepWithCheckpoints pins the sweep path end to end: a cold sweep
// populates the store, a warm sweep restores every cell, and both match
// a sweep with no store attached.
func TestSweepWithCheckpoints(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.MaxRefs = 100_000
	rates := []uint64{1000}
	sizes := []uint64{256, 1024}

	want, err := Sweep(context.Background(), cfg, RAMpage, rates, sizes, false)
	if err != nil {
		t.Fatalf("plain sweep: %v", err)
	}

	svc := &metrics.ServiceStats{}
	cfg.Checkpoints = checkpoint.NewStore(0, "", svc)
	cold, err := Sweep(context.Background(), cfg, RAMpage, rates, sizes, false)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	plan := PlanSweep(cfg, RAMpage, rates, sizes, false)
	if plan.Warm != len(rates)*len(sizes) || plan.Complete != len(rates)*len(sizes) {
		t.Errorf("plan after cold sweep: warm=%d complete=%d, want both %d", plan.Warm, plan.Complete, len(rates)*len(sizes))
	}
	warm, err := Sweep(context.Background(), cfg, RAMpage, rates, sizes, false)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	for i := range rates {
		for j := range sizes {
			if *cold[i][j] != *want[i][j] {
				t.Errorf("cold cell [%d][%d] differs from plain sweep", i, j)
			}
			if *warm[i][j] != *want[i][j] {
				t.Errorf("warm cell [%d][%d] differs from plain sweep", i, j)
			}
		}
	}
	if hits := svc.Get(metrics.SvcCkptHit); hits != uint64(len(rates)*len(sizes)) {
		t.Errorf("warm sweep counted %d checkpoint hits, want %d", hits, len(rates)*len(sizes))
	}
}

// TestPlanSweepOrdersWarmFirst pins the planner's ordering contract.
func TestPlanSweepOrdersWarmFirst(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.MaxRefs = 60_000
	cfg.Checkpoints = checkpoint.NewStore(0, "", nil)
	rates := []uint64{1000}
	sizes := []uint64{256, 512, 1024}

	// Warm exactly one cell.
	spec := RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 512}
	if _, err := Run(context.Background(), cfg, spec); err != nil {
		t.Fatalf("warming run: %v", err)
	}
	plan := PlanSweep(cfg, RAMpage, rates, sizes, false)
	if plan.Warm != 1 || plan.Complete != 1 {
		t.Fatalf("plan warm=%d complete=%d, want 1/1", plan.Warm, plan.Complete)
	}
	if got := plan.Cells[0].Spec.SizeBytes; got != 512 {
		t.Errorf("warmest cell has size %d, want the checkpointed 512", got)
	}
	if !plan.Cells[0].Complete {
		t.Errorf("warmest cell not marked complete")
	}
	for _, pc := range plan.Cells[1:] {
		if pc.Complete || pc.Refs != 0 {
			t.Errorf("cold cell %d marked warm", pc.Spec.SizeBytes)
		}
	}
}

// TestCheckpointPrefixKeyExcludesBudget pins the prefix identity: runs
// differing only in MaxRefs share a trajectory; any result-affecting
// spec or config change separates them; custom profile sets disable
// checkpointing entirely.
func TestCheckpointPrefixKeyExcludesBudget(t *testing.T) {
	cfg := ckptTestConfig()
	spec := RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 512}
	base := CheckpointPrefixKey(cfg, spec)
	if base == "" {
		t.Fatal("empty prefix for a checkpointable config")
	}
	budget := cfg
	budget.MaxRefs = 999
	if CheckpointPrefixKey(budget, spec) != base {
		t.Error("MaxRefs changed the prefix; extensions could never share warm-up")
	}
	knobs := cfg
	knobs.DisableBatching = true
	knobs.Verify = true
	knobs.Workers = 3
	if CheckpointPrefixKey(knobs, spec) != base {
		t.Error("execution knobs changed the prefix")
	}
	seed := cfg
	seed.Seed++
	if CheckpointPrefixKey(seed, spec) == base {
		t.Error("seed change kept the prefix")
	}
	spec2 := spec
	spec2.SizeBytes = 1024
	if CheckpointPrefixKey(cfg, spec2) == base {
		t.Error("spec change kept the prefix")
	}
	custom := cfg
	custom.profiles = PhasedTable2()
	if CheckpointPrefixKey(custom, spec) != "" {
		t.Error("custom profile set did not disable checkpointing")
	}
}

// TestGoldenExperimentsCheckpointEquivalence runs every experiment with
// a committed golden three ways — no store, a cold store (captures) and
// the now-warm store (restores every cell) — and demands byte-identical
// JSON documents. This is the checkpoint analogue of the columnar
// equivalence gate: warm state must be invisible in results.
func TestGoldenExperimentsCheckpointEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six experiments three times")
	}
	goldenIDs := []string{"table3", "table4", "table5", "fig2", "fig3", "fig4"}
	rates := []uint64{200, 4000}
	sizes := []uint64{256, 2048}
	for _, id := range goldenIDs {
		t.Run(id, func(t *testing.T) {
			plain := tinyConfig()
			want, err := BuildExperimentDoc(context.Background(), plain, id, rates, sizes)
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			warm := tinyConfig()
			warm.Checkpoints = checkpoint.NewStore(0, "", nil)
			for _, phase := range []string{"cold", "warm"} {
				doc, err := BuildExperimentDoc(context.Background(), warm, id, rates, sizes)
				if err != nil {
					t.Fatalf("%s run: %v", phase, err)
				}
				got, err := json.Marshal(doc)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, wantJSON) {
					t.Errorf("%s store document diverges from plain document\n got: %s\nwant: %s", phase, got, wantJSON)
				}
			}
		})
	}
}

// TestCheckpointBytesExecutionPathInvariant pins a subtle codec
// property: the captured state must not depend on HOW the prefix was
// executed. The batched pipeline, the per-reference loop and a run
// with an observer attached must all store byte-identical checkpoints,
// or a warm start would silently tie results to the producer's
// execution path.
func TestCheckpointBytesExecutionPathInvariant(t *testing.T) {
	spec := RunSpec{System: RAMpageCS, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true}
	base := ckptTestConfig()
	base.MaxRefs = 120_000
	prefix := CheckpointPrefixKey(base, spec)

	capture := func(name string, mutate func(*Config)) []byte {
		t.Helper()
		cfg := base
		cfg.Checkpoints = checkpoint.NewStore(0, "", nil)
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg, spec); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		c, _, ok := cfg.Checkpoints.Nearest(prefix, 0)
		if !ok {
			t.Fatalf("%s run stored no checkpoint", name)
		}
		return c.Payload
	}

	batched := capture("batched", func(c *Config) {})
	perRef := capture("per-ref", func(c *Config) { c.DisableBatching = true })
	observed := capture("observed", func(c *Config) { c.Observer = metrics.NewCollector(0) })
	if !bytes.Equal(batched, perRef) {
		t.Error("per-reference execution produced different checkpoint bytes")
	}
	if !bytes.Equal(batched, observed) {
		t.Error("attaching an observer changed the checkpoint bytes")
	}
}

// TestSeededCheckpointCorruptionDetected proves the differential layer
// catches a corrupted checkpoint the codec cannot: a single bit flipped
// in a serialized counter leaves the stream structurally valid (every
// marker intact, every length right), restores without error, and then
// surfaces as a report divergence against the from-scratch run — the
// same way the reference-oracle differential engine pins simulator
// bugs.
func TestSeededCheckpointCorruptionDetected(t *testing.T) {
	spec := RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 512}
	cfg := ckptTestConfig()
	cfg.MaxRefs = 240_000
	want, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatalf("scratch run: %v", err)
	}

	store := checkpoint.NewStore(0, "", nil)
	prefixCfg := cfg
	prefixCfg.Checkpoints = store
	prefixCfg.MaxRefs = 120_000
	prefixRep, err := Run(context.Background(), prefixCfg, spec)
	if err != nil {
		t.Fatalf("prefix run: %v", err)
	}
	prefix := CheckpointPrefixKey(cfg, spec)
	ck, _, ok := store.Nearest(prefix, cfg.MaxRefs)
	if !ok {
		t.Fatal("prefix checkpoint not stored")
	}

	// Flip the low bit of the serialized cycle counter. The payload
	// embeds the prefix report verbatim, so the capture-time cycle count
	// locates the field without knowing the full layout.
	var needle [8]byte
	binary.LittleEndian.PutUint64(needle[:], uint64(prefixRep.Cycles))
	at := bytes.Index(ck.Payload, needle[:])
	if at < 0 {
		t.Fatal("capture-time cycle count not found in payload; codec layout changed?")
	}
	corrupted := &checkpoint.Checkpoint{Meta: ck.Meta, System: ck.System}
	corrupted.Payload = append([]byte{}, ck.Payload...)
	corrupted.Payload[at] ^= 1

	evil := checkpoint.NewStore(0, "", nil)
	evil.Put(corrupted)
	warm := cfg
	warm.Checkpoints = evil
	got, err := Run(context.Background(), warm, spec)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if *got == *want {
		t.Fatal("corrupted checkpoint produced the scratch report; the fault was silently absorbed")
	}
	if got.Cycles == want.Cycles {
		t.Errorf("cycle counter corruption did not surface in the cycle count: got %d", got.Cycles)
	}
	// An uncorrupted copy of the same checkpoint still resumes cleanly —
	// the divergence above is the corruption, not the restore path.
	clean := checkpoint.NewStore(0, "", nil)
	clean.Put(ck)
	warm.Checkpoints = clean
	if got, err = Run(context.Background(), warm, spec); err != nil || *got != *want {
		t.Errorf("clean resume failed (err %v) or diverged", err)
	}
}
