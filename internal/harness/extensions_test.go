package harness

import (
	"context"
	"strings"
	"testing"
)

func TestRunSDRAMSpec(t *testing.T) {
	cfg := tinyConfig()
	rep, err := Run(context.Background(), cfg, RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 1024, SDRAM: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs == 0 {
		t.Error("SDRAM run executed nothing")
	}
	// §3.3: the 2-byte 1.25ns Rambus and the 128-bit 10ns SDRAM have
	// identical startup latency and peak bandwidth, so for bus-width-
	// multiple transfers the two hierarchies are cycle-identical —
	// which is exactly the paper's claim that its Rambus model "has
	// similar characteristics to an SDRAM implementation".
	rambus, err := Run(context.Background(), cfg, RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != rambus.Cycles {
		t.Errorf("SDRAM (%d cycles) and Rambus (%d) diverge on width-multiple transfers",
			rep.Cycles, rambus.Cycles)
	}
}

func TestRunAdaptiveSpec(t *testing.T) {
	cfg := QuickScaled()
	cfg.RefScale = 1.0 / 2000
	rep, err := Run(context.Background(), cfg, RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 128, AdaptivePages: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "rampage-adaptive" {
		t.Errorf("report name = %q", rep.Name)
	}
	if rep.Resizes == 0 {
		t.Error("adaptive run never resized from 128B under the Table 2 workload")
	}
}

func TestRunAdaptiveIncompatibleWithCS(t *testing.T) {
	cfg := tinyConfig()
	if _, err := Run(context.Background(), cfg, RunSpec{System: RAMpageCS, IssueMHz: 1000, SizeBytes: 128, AdaptivePages: true}); err == nil {
		t.Error("adaptive + switch-on-miss accepted")
	}
}

func TestRunLightweightThreads(t *testing.T) {
	cfg := tinyConfig()
	proc, err := Run(context.Background(), cfg, RunSpec{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 1024, SwitchTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	thr, err := Run(context.Background(), cfg, RunSpec{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 1024, SwitchTrace: true, LightweightThreads: true})
	if err != nil {
		t.Fatal(err)
	}
	if proc.SwitchesOnMiss == 0 {
		t.Skip("no switches on miss at this tiny scale")
	}
	if thr.OSSwitchRefs >= proc.OSSwitchRefs {
		t.Errorf("thread switches executed %d OS refs, process switches %d; want fewer",
			thr.OSSwitchRefs, proc.OSSwitchRefs)
	}
}

func TestProfileNameWorkload(t *testing.T) {
	cfg := tinyConfig()
	cfg.ProfileName = "compress"
	readers, err := cfg.Readers()
	if err != nil {
		t.Fatal(err)
	}
	if len(readers) != 1 {
		t.Fatalf("got %d readers, want 1", len(readers))
	}
	cfg.ProfileName = "nonesuch"
	if _, err := cfg.Readers(); err == nil {
		t.Error("unknown profile name accepted")
	}
}

func TestExtensionExperimentsPresent(t *testing.T) {
	for _, id := range []string{"sdram", "threads", "adaptive", "perbench"} {
		if _, ok := FindExperiment(id); !ok {
			t.Errorf("extension experiment %q missing", id)
		}
	}
}

func TestExtensionExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs extension sweeps")
	}
	cfg := tinyConfig()
	rates := []uint64{4000}
	sizes := []uint64{256, 2048}
	for _, id := range []string{"sdram", "threads", "adaptive"} {
		e, _ := FindExperiment(id)
		out, err := e.Run(context.Background(), cfg, rates, sizes)
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if id != "adaptive" && !strings.Contains(out, "256B") {
			t.Errorf("%s output missing size column:\n%s", id, out)
		}
		if id == "adaptive" && !strings.Contains(out, "resizes") {
			t.Errorf("adaptive output missing resize column:\n%s", out)
		}
	}
	// perbench runs 18 programs x sizes; use one size to keep it quick.
	e, _ := FindExperiment("perbench")
	out, err := e.Run(context.Background(), cfg, nil, []uint64{1024})
	if err != nil {
		t.Fatalf("perbench: %v", err)
	}
	for _, name := range []string{"alvinn", "yacc"} {
		if !strings.Contains(out, name) {
			t.Errorf("perbench output missing %q", name)
		}
	}
}

func TestVerdictAllClaimsPass(t *testing.T) {
	// The repository's self-check: every paper claim must reproduce at
	// the quick scale. This is the headline regression test.
	if testing.Short() {
		t.Skip("full verdict sweep")
	}
	e, ok := FindExperiment("verdict")
	if !ok {
		t.Fatal("verdict experiment missing")
	}
	out, err := e.Run(context.Background(), QuickScaled(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("claims failed:\n%s", out)
	}
	if !strings.Contains(out, "12/12 claims reproduced") {
		t.Errorf("unexpected verdict summary:\n%s", out)
	}
}
