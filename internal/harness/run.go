package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rampage/internal/cache"
	"rampage/internal/checkpoint"
	"rampage/internal/dram"
	"rampage/internal/mem"
	"rampage/internal/oracle"
	"rampage/internal/policy"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// SystemKind selects which machine a run simulates.
type SystemKind uint8

const (
	// BaselineDM is the §4.4 baseline: direct-mapped L2.
	BaselineDM SystemKind = iota
	// TwoWayL2 is the §4.7 comparison: 2-way associative L2, random
	// replacement.
	TwoWayL2
	// RAMpage is the §4.5 machine without context switches on misses.
	RAMpage
	// RAMpageCS is RAMpage with context switches on misses (§4.6).
	RAMpageCS
)

// String names the system as the result tables label it.
func (k SystemKind) String() string {
	switch k {
	case BaselineDM:
		return "baseline-dm"
	case TwoWayL2:
		return "l2-2way"
	case RAMpage:
		return "rampage"
	case RAMpageCS:
		return "rampage-cs"
	default:
		return "unknown"
	}
}

// RunSpec is one simulation point in a sweep.
type RunSpec struct {
	System SystemKind
	// IssueMHz is the CPU issue rate; SizeBytes the L2 block size or
	// SRAM page size.
	IssueMHz  uint64
	SizeBytes uint64
	// SwitchTrace interleaves the context-switch code trace (§4.6) —
	// on for Tables 4–5, off for the Table 3 baseline comparison.
	SwitchTrace bool
	// VictimEntries attaches a victim cache to conventional systems
	// (ablation X3); TLBEntries/TLBAssoc override the TLB (ablation
	// X1, 0 = paper defaults); PipelinedDRAM enables ablation X2;
	// L1Bytes/L1Assoc override the L1 (the §6.3 aggressive-L1 probe).
	VictimEntries int
	TLBEntries    int
	TLBAssoc      int
	PipelinedDRAM bool
	L1Bytes       uint64
	L1Assoc       int
	// SDRAM swaps the Direct Rambus device for the §3.3 wide SDRAM
	// design (same peak bandwidth, coarser granularity).
	SDRAM bool
	// LightweightThreads uses the ~40-reference thread switch on
	// miss-induced switches (§3.2 multithreading).
	LightweightThreads bool
	// AdaptivePages runs the RAMpage machine with the §6.2 dynamic
	// page-size controller (SizeBytes is then the initial page size;
	// requires System == RAMpage).
	AdaptivePages bool
	// PrefetchNext enables sequential next-page prefetch on the RAMpage
	// systems (§3.2 extension).
	PrefetchNext bool
	// DRAMChannels stripes the DRAM across N Rambus channels (§3.3:
	// more bandwidth, unchanged latency). 0 or 1 = single channel.
	DRAMChannels int
	// BankedDRAM replaces the flat Rambus timing with the banked
	// open-row RDRAM model (§6.3 "more sophisticated Direct Rambus
	// simulation").
	BankedDRAM bool
	// Policy selects the SRAM page-replacement policy on the RAMpage
	// systems (see package policy). Empty means clock, the paper's
	// default; the field is omitted from hashing when empty so clock
	// runs keep their pre-policy cache keys and checkpoint prefixes.
	Policy string `json:",omitempty"`
}

// Validate checks a simulation point for configuration mistakes the
// lower layers would otherwise turn into panics or silent defaults,
// returning a descriptive error for each.
func (s RunSpec) Validate() error {
	if s.System > RAMpageCS {
		return fmt.Errorf("harness: unknown system kind %d (want baseline-dm, l2-2way, rampage or rampage-cs)", s.System)
	}
	if _, err := mem.NewClock(s.IssueMHz); err != nil {
		return fmt.Errorf("harness: bad issue rate %d MHz: %w", s.IssueMHz, err)
	}
	if s.SizeBytes == 0 || !mem.IsPow2(s.SizeBytes) {
		return fmt.Errorf("harness: block/page size %d is not a positive power of two", s.SizeBytes)
	}
	if s.VictimEntries < 0 {
		return fmt.Errorf("harness: negative victim-cache entries %d", s.VictimEntries)
	}
	if s.TLBEntries < 0 || s.TLBAssoc < 0 {
		return fmt.Errorf("harness: negative TLB geometry %d entries / %d-way", s.TLBEntries, s.TLBAssoc)
	}
	if s.L1Bytes != 0 && !mem.IsPow2(s.L1Bytes) {
		return fmt.Errorf("harness: L1 size %d is not a power of two", s.L1Bytes)
	}
	if s.L1Assoc < 0 {
		return fmt.Errorf("harness: negative L1 associativity %d", s.L1Assoc)
	}
	if s.DRAMChannels < 0 {
		return fmt.Errorf("harness: negative DRAM channel count %d", s.DRAMChannels)
	}
	if s.SDRAM && s.BankedDRAM {
		return fmt.Errorf("harness: SDRAM and BankedDRAM both set; pick one DRAM model")
	}
	if s.AdaptivePages && s.System != RAMpage && s.System != RAMpageCS {
		return fmt.Errorf("harness: adaptive pages require a RAMpage system, got %s", s.System)
	}
	pol, err := policy.Parse(s.Policy)
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	if pol != "" && s.System != RAMpage && s.System != RAMpageCS {
		return fmt.Errorf("harness: replacement policy %q applies to RAMpage systems only, got %s", s.Policy, s.System)
	}
	return nil
}

// Normalized returns the spec with its policy name canonicalized
// ("clock" becomes "", the default spelling that hashing omits).
func (s RunSpec) Normalized() RunSpec {
	s.Policy = policy.Normalize(s.Policy)
	return s
}

// Run executes one simulation point under the given configuration and
// returns its report. Cancellation of ctx stops the simulation between
// batches and returns ctx.Err().
func Run(ctx context.Context, cfg Config, spec RunSpec) (*stats.Report, error) {
	readers, err := cfg.Readers()
	if err != nil {
		return nil, err
	}
	return runWithReaders(ctx, cfg, spec, readers)
}

// runWithReaders is Run with the workload streams supplied by the
// caller — Sweep uses it to replay one materialized workload across
// every grid cell instead of regenerating it per cell.
func runWithReaders(ctx context.Context, cfg Config, spec RunSpec, readers []trace.Reader) (*stats.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalized()
	params := sim.DefaultParams(spec.IssueMHz)
	params.Seed = cfg.Seed
	if spec.TLBEntries > 0 {
		params.TLBEntries = spec.TLBEntries
		params.TLBAssoc = spec.TLBAssoc
	}
	if spec.PipelinedDRAM {
		params.PipelinedDRAM = true
	}
	if spec.L1Bytes > 0 {
		params.L1Bytes = spec.L1Bytes
	}
	if spec.L1Assoc > 0 {
		params.L1Assoc = spec.L1Assoc
	}
	if spec.SDRAM {
		params.DRAM = dram.NewSDRAM()
	}
	if spec.BankedDRAM {
		params.DRAM = dram.NewRDRAM()
	}
	if spec.DRAMChannels > 1 {
		mc, err := dram.NewMultiChannel(params.DRAM, uint64(spec.DRAMChannels))
		if err != nil {
			return nil, err
		}
		params.DRAM = mc
	}

	var machine sim.Machine
	switch spec.System {
	case BaselineDM, TwoWayL2:
		assoc, l2pol := 1, cache.LRU
		if spec.System == TwoWayL2 {
			assoc, l2pol = 2, cache.RandomRepl
		}
		b, err := sim.NewBaseline(sim.BaselineConfig{
			Params:        params,
			L2Bytes:       cfg.L2Bytes,
			L2Block:       spec.SizeBytes,
			L2Assoc:       assoc,
			L2Policy:      l2pol,
			DRAMBytes:     cfg.DRAMBytes,
			VictimEntries: spec.VictimEntries,
		})
		if err != nil {
			return nil, err
		}
		machine = b
	case RAMpage, RAMpageCS:
		rcfg := sim.RAMpageConfig{
			Params:       params,
			SRAMBytes:    cfg.SRAMBytes(spec.SizeBytes),
			PageBytes:    spec.SizeBytes,
			SwitchOnMiss: spec.System == RAMpageCS,
			PrefetchNext: spec.PrefetchNext,
			Policy:       spec.Policy,
		}
		if spec.AdaptivePages {
			// One epoch should cover a full round-robin rotation so
			// the controller compares like with like — otherwise each
			// epoch samples different programs and the cost signal is
			// noise. Cap the epoch so short runs still adapt.
			epoch := cfg.Quantum * uint64(len(readers))
			total := uint64(synth.Table2TotalMillions() * 1e6 * cfg.RefScale)
			if cfg.MaxRefs > 0 && cfg.MaxRefs < total {
				total = cfg.MaxRefs
			}
			if cap := total / 12; epoch > cap {
				epoch = cap
			}
			if epoch < 20_000 {
				epoch = 20_000
			}
			a, err := sim.NewAdaptiveRAMpage(sim.AdaptiveConfig{
				RAMpageConfig: rcfg,
				SRAMBytesFor:  cfg.SRAMBytes,
				EpochRefs:     epoch,
			})
			if err != nil {
				return nil, err
			}
			machine = a
			break
		}
		r, err := sim.NewRAMpage(rcfg)
		if err != nil {
			return nil, err
		}
		machine = r
	}

	obs := cfg.Observer
	var checker *oracle.InvariantChecker
	if cfg.Verify {
		checker = oracle.NewInvariantChecker(machine, obs)
		obs = checker
	}
	if obs != nil {
		machine.SetObserver(obs)
	}
	sched, err := sim.NewScheduler(machine, readers, sim.SchedulerConfig{
		Quantum:            cfg.Quantum,
		InsertSwitchTrace:  spec.SwitchTrace,
		LightweightThreads: spec.LightweightThreads,
		Seed:               cfg.Seed,
		MaxRefs:            cfg.MaxRefs,
		DisableBatching:    cfg.DisableBatching,
		BatchSize:          cfg.BatchSize,
		Observer:           obs,
	})
	if err != nil {
		return nil, err
	}

	// Warm start: restore the newest dominating checkpoint of this
	// run's prefix. A complete checkpoint IS the finished run; a
	// resumable one fast-forwards the shared warm-up and Run continues
	// from its capture point, bit-identically to a cold run. Runs with
	// a user observer attached never restore: the observer's event
	// summary describes the execution, and a warm start would leave it
	// blind to the restored prefix. They still capture below — the
	// checkpoint bytes are execution-path-independent.
	var prefix string
	if cfg.Checkpoints != nil {
		prefix = CheckpointPrefixKey(cfg, spec)
	}
	restoredComplete := false
	if prefix != "" && cfg.Observer == nil {
		if ck, complete, ok := cfg.Checkpoints.Nearest(prefix, cfg.MaxRefs); ok {
			if err := sim.RestoreState(machine, sched, ck.Payload); err != nil {
				return nil, fmt.Errorf("harness: restoring checkpoint %s@%d: %w", ck.System, ck.Meta.Refs, err)
			}
			if checker != nil {
				// The captured run's transfers were observed by *its*
				// checker; prime this one so its accounting reconciles.
				checker.Resume(machine.Report())
			}
			restoredComplete = complete
		}
	}

	rep := machine.Report()
	if !restoredComplete {
		rep, err = sched.Run(ctx)
		if err != nil {
			return nil, err
		}
	}
	if checker != nil {
		if err := checker.Check(); err != nil {
			return nil, fmt.Errorf("harness: %s @ %d MHz / %d B: %w", spec.System, spec.IssueMHz, spec.SizeBytes, err)
		}
	}
	// Capture before Release recycles the page-table slabs. A run
	// answered entirely by a complete checkpoint has nothing new to
	// store; Put dedups re-captures of an existing (prefix, refs,
	// final) address anyway.
	if prefix != "" && !restoredComplete {
		refs := sched.Executed()
		final := !(cfg.MaxRefs > 0 && refs >= cfg.MaxRefs)
		if payload, err := sim.CaptureState(machine, sched); err == nil {
			cfg.Checkpoints.Put(&checkpoint.Checkpoint{
				Meta:    checkpoint.Meta{Prefix: prefix, Refs: refs, Final: final},
				System:  spec.System.String(),
				Payload: payload,
			})
		}
	}
	// The run is complete and verified: return the machine's pooled
	// resources (page-table arena slabs) for the next run to reuse. The
	// report was extracted above and stays valid.
	if rel, ok := machine.(interface{ Release() }); ok {
		rel.Release()
	}
	return rep, nil
}

// preloadRefsCap bounds workload materialization in Sweep: streams
// totalling more than this many references (9 bytes each in columnar
// form) are regenerated per cell instead of being stored.
const preloadRefsCap = 64 << 20

// workloadKey identifies a materialized workload. The generated
// streams depend only on the seed and the two scales (never on a
// cell's rate, size or system), so sweeps over the same configuration
// — including successive sweeps in one process, as in benchmarks —
// can share one capture.
type workloadKey struct {
	seed      uint64
	refScale  float64
	sizeScale float64
}

// workloadCache holds captured workloads across sweeps, keyed by
// workloadKey; workloadCacheLen approximates its size so a pathological
// caller cycling through configurations cannot grow it without bound.
var (
	workloadCache    sync.Map // workloadKey -> []*trace.ColumnarBuffer
	workloadCacheLen atomic.Int32
)

const workloadCacheCap = 8

// preloadWorkload materializes the configuration's reference streams
// in columnar form so a sweep can replay them across grid cells — and
// later sweeps of the same workload can skip generation entirely. It
// returns nil when the workload is too large to hold (full-scale
// runs), a stream's length is unknown, or a stream is not single-
// process; callers then regenerate per cell as before.
func preloadWorkload(cfg Config) []*trace.ColumnarBuffer {
	key := workloadKey{seed: cfg.Seed, refScale: cfg.RefScale, sizeScale: cfg.SizeScale}
	cacheable := cfg.profiles == nil // custom profile sets are not in the key
	if cacheable {
		if v, ok := workloadCache.Load(key); ok {
			return v.([]*trace.ColumnarBuffer)
		}
	}
	readers, err := cfg.Readers()
	if err != nil {
		return nil
	}
	var total uint64
	for _, r := range readers {
		g, ok := r.(interface{ Remaining() uint64 })
		if !ok {
			return nil
		}
		total += g.Remaining()
	}
	if total > preloadRefsCap {
		return nil
	}
	out := make([]*trace.ColumnarBuffer, len(readers))
	for i, r := range readers {
		want := r.(interface{ Remaining() uint64 }).Remaining()
		buf, err := trace.CaptureColumnar(r, want)
		if err != nil || uint64(buf.Len()) != want {
			return nil // multi-process or shorter than declared; fall back
		}
		out[i] = buf
	}
	if cacheable && workloadCacheLen.Load() < workloadCacheCap {
		if _, loaded := workloadCache.LoadOrStore(key, out); !loaded {
			workloadCacheLen.Add(1)
		}
	}
	return out
}

// Sweep runs a grid of points — every issue rate crossed with every
// size — for one system, returning reports indexed [rate][size]. Cells
// are independent simulations, so they run in parallel across the
// available CPUs; results are deterministic regardless of parallelism.
// The workload is generated once and replayed in every cell (each cell
// gets fresh SliceReaders over the shared, read-only backing slices),
// since the streams are independent of the swept parameters.
// Cancelling ctx abandons unstarted cells, stops in-flight ones at the
// next batch boundary, and returns ctx.Err().
func Sweep(ctx context.Context, cfg Config, system SystemKind, rates, sizes []uint64, switchTrace bool) ([][]*stats.Report, error) {
	return SweepSpec(ctx, cfg, RunSpec{System: system, SwitchTrace: switchTrace}, rates, sizes)
}

// SweepSpec is Sweep over an arbitrary base spec: every grid cell
// copies base with its issue rate and size substituted, so extra spec
// dimensions — replacement policy, DRAM model, prefetch — sweep along
// without widening Sweep's signature for each.
func SweepSpec(ctx context.Context, cfg Config, base RunSpec, rates, sizes []uint64) ([][]*stats.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cellDone := cfg.CellDone
	cellResult := cfg.CellResult
	cfg.Observer = nil // collectors are not safe across parallel cells
	out := make([][]*stats.Report, len(rates))
	for i := range rates {
		out[i] = make([]*stats.Report, len(sizes))
	}
	preloaded := preloadWorkload(cfg)
	cellRun := func(spec RunSpec) (*stats.Report, error) {
		if preloaded == nil {
			return Run(ctx, cfg, spec)
		}
		readers := make([]trace.Reader, len(preloaded))
		for i, buf := range preloaded {
			readers[i] = trace.NewColumnarReader(buf)
		}
		return runWithReaders(ctx, cfg, spec, readers)
	}
	type cell struct{ i, j int }
	// Dispatch order: grid order when cold; warmest-first per the
	// checkpoint planner when a store is attached, so complete restores
	// return immediately and workers spend the sweep on the cold cells.
	order := make([]cell, 0, len(rates)*len(sizes))
	if cfg.Checkpoints != nil {
		rateIdx := make(map[uint64]int, len(rates))
		for i, r := range rates {
			rateIdx[r] = i
		}
		sizeIdx := make(map[uint64]int, len(sizes))
		for j, s := range sizes {
			sizeIdx[s] = j
		}
		for _, pc := range PlanSweepSpec(cfg, base, rates, sizes).Cells {
			order = append(order, cell{rateIdx[pc.Spec.IssueMHz], sizeIdx[pc.Spec.SizeBytes]})
		}
	} else {
		for i := range rates {
			for j := range sizes {
				order = append(order, cell{i, j})
			}
		}
	}
	cells := make(chan cell)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if n := len(rates) * len(sizes); n < workers {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				if failed.Load() {
					continue // drain remaining cells after a failure
				}
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					continue
				}
				spec := base
				spec.IssueMHz = rates[c.i]
				spec.SizeBytes = sizes[c.j]
				rep, err := cellRun(spec)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					continue
				}
				out[c.i][c.j] = rep
				if cellResult != nil {
					cellResult(c.i*len(sizes)+c.j, NewReportJSON(rep))
				}
				if cellDone != nil {
					cellDone()
				}
			}
		}()
	}
	for _, c := range order {
		cells <- c
	}
	close(cells)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Best returns the index and report of the fastest configuration in a
// row of a sweep.
func Best(row []*stats.Report) (int, *stats.Report) {
	best := 0
	for i, r := range row {
		if r.Cycles < row[best].Cycles {
			best = i
		}
	}
	return best, row[best]
}
