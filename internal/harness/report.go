package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"rampage/internal/metrics"
	"rampage/internal/policy"
	"rampage/internal/stats"
)

// ReportVersion is the schema version stamped into every JSON document
// this package emits. Bump it on any incompatible change to the field
// set so tools/regress can refuse to compare mismatched schemas.
const ReportVersion = 1

// ReportJSON is the flattened, stable-schema form of a stats.Report.
// Every field is simulated data — deterministic for a given seed and
// configuration — so golden comparisons may demand exact equality.
type ReportJSON struct {
	Name       string  `json:"name"`
	ClockMHz   uint64  `json:"clock_mhz"`
	BlockBytes uint64  `json:"block_bytes"`
	Cycles     uint64  `json:"cycles"`
	Seconds    float64 `json:"seconds"`

	// LevelCycles attributes simulated time to hierarchy levels, keyed
	// by the paper's figure labels (L1i, L1d, L2/SRAM, DRAM).
	LevelCycles map[string]uint64 `json:"level_cycles"`

	BenchRefs    uint64 `json:"bench_refs"`
	OSTLBRefs    uint64 `json:"os_tlb_refs"`
	OSFaultRefs  uint64 `json:"os_fault_refs"`
	OSSwitchRefs uint64 `json:"os_switch_refs"`

	TLBHits        uint64 `json:"tlb_hits"`
	TLBMisses      uint64 `json:"tlb_misses"`
	TLBEvictions   uint64 `json:"tlb_evictions"`
	ClockScans     uint64 `json:"clock_scans"`
	PageFaults     uint64 `json:"page_faults"`
	L1IMisses      uint64 `json:"l1i_misses"`
	L1DMisses      uint64 `json:"l1d_misses"`
	L2Misses       uint64 `json:"l2_misses"`
	Writebacks     uint64 `json:"writebacks"`
	Switches       uint64 `json:"switches"`
	SwitchesOnMiss uint64 `json:"switches_on_miss"`
	IdleCycles     uint64 `json:"idle_cycles"`
	Resizes        uint64 `json:"resizes"`
	Prefetches     uint64 `json:"prefetches"`
	PrefetchHits   uint64 `json:"prefetch_hits"`
	PrefetchWasted uint64 `json:"prefetch_wasted"`
	PrefetchStalls uint64 `json:"prefetch_stalls"`

	TLBHandlerCycles   uint64 `json:"tlb_handler_cycles"`
	FaultHandlerCycles uint64 `json:"fault_handler_cycles"`
	DRAMTransfers      uint64 `json:"dram_transfers"`
	DRAMBytes          uint64 `json:"dram_bytes"`

	OverheadRatio float64 `json:"overhead_ratio"`
}

// NewReportJSON flattens a stats.Report into its JSON form.
func NewReportJSON(r *stats.Report) ReportJSON {
	levels := make(map[string]uint64, stats.NumLevels)
	for l := stats.Level(0); l < stats.NumLevels; l++ {
		levels[l.String()] = uint64(r.LevelTime[l])
	}
	return ReportJSON{
		Name:               r.Name,
		ClockMHz:           r.Clock.IssueMHz(),
		BlockBytes:         r.BlockBytes,
		Cycles:             uint64(r.Cycles),
		Seconds:            r.Seconds(),
		LevelCycles:        levels,
		BenchRefs:          r.BenchRefs,
		OSTLBRefs:          r.OSTLBRefs,
		OSFaultRefs:        r.OSFaultRefs,
		OSSwitchRefs:       r.OSSwitchRefs,
		TLBHits:            r.TLBHits,
		TLBMisses:          r.TLBMisses,
		TLBEvictions:       r.TLBEvictions,
		ClockScans:         r.ClockScans,
		PageFaults:         r.PageFaults,
		L1IMisses:          r.L1IMisses,
		L1DMisses:          r.L1DMisses,
		L2Misses:           r.L2Misses,
		Writebacks:         r.Writebacks,
		Switches:           r.Switches,
		SwitchesOnMiss:     r.SwitchesOnMiss,
		IdleCycles:         uint64(r.IdleCycles),
		Resizes:            r.Resizes,
		Prefetches:         r.Prefetches,
		PrefetchHits:       r.PrefetchHits,
		PrefetchWasted:     r.PrefetchWasted,
		PrefetchStalls:     r.PrefetchStalls,
		TLBHandlerCycles:   uint64(r.TLBHandlerCycles),
		FaultHandlerCycles: uint64(r.FaultHandlerCycles),
		DRAMTransfers:      r.DRAMTransfers,
		DRAMBytes:          r.DRAMBytes,
		OverheadRatio:      r.OverheadRatio(),
	}
}

// RunDoc is the JSON document for a single simulation run
// (rampage-sim -format json).
type RunDoc struct {
	Version int        `json:"version"`
	Kind    string     `json:"kind"` // "run"
	Report  ReportJSON `json:"report"`
	// Metrics carries the observer's event summary when a collector was
	// attached for the run.
	Metrics *metrics.Summary `json:"metrics,omitempty"`
}

// NewRunDoc wraps one report (and an optional collector summary) in a
// versioned document.
func NewRunDoc(r *stats.Report, c *metrics.Collector) RunDoc {
	doc := RunDoc{Version: ReportVersion, Kind: "run", Report: NewReportJSON(r)}
	if c != nil {
		doc.Metrics = c.Summary()
	}
	return doc
}

// SystemGrid is one system's sweep inside an ExperimentDoc: reports
// indexed [rate][size], matching the document's RatesMHz × SizesBytes.
type SystemGrid struct {
	System      string         `json:"system"`
	SwitchTrace bool           `json:"switch_trace"`
	Rows        [][]ReportJSON `json:"rows"`
}

// ExperimentDoc is the JSON document for one experiment's sweep grids
// (rampage-bench -format json). Only the sweep-structured experiments
// (Tables 3–5, Figures 2–4) have a JSON form; the prose-style artifacts
// keep their text renderings.
type ExperimentDoc struct {
	Version    int          `json:"version"`
	Kind       string       `json:"kind"` // "experiment"
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	RatesMHz   []uint64     `json:"rates_mhz"`
	SizesBytes []uint64     `json:"sizes_bytes"`
	Systems    []SystemGrid `json:"systems"`
}

// jsonExperiments maps the experiments with a JSON form to their sweep
// structure: which systems run, whether the switch trace is inserted,
// any fixed issue rate (0 = the full rate sweep), and the per-system
// replacement policy (nil = clock throughout).
var jsonExperiments = map[string]struct {
	systems     []SystemKind
	switchTrace []bool
	fixedMHz    uint64
	policies    []string
}{
	"table3": {[]SystemKind{BaselineDM, RAMpage}, []bool{false, false}, 0, nil},
	"table4": {[]SystemKind{RAMpageCS, RAMpage}, []bool{true, false}, 0, nil},
	"table5": {[]SystemKind{TwoWayL2}, []bool{true}, 0, nil},
	"fig2":   {[]SystemKind{BaselineDM, RAMpage}, []bool{false, false}, 200, nil},
	"fig3":   {[]SystemKind{BaselineDM, RAMpage}, []bool{false, false}, 4000, nil},
	"fig4":   {[]SystemKind{BaselineDM, RAMpage}, []bool{false, false}, 1000, nil},
	// The policy lab: the RAMpage machine at the paper's 1 GHz midpoint
	// under every replacement policy, swept across the page sizes.
	"policies": {
		[]SystemKind{RAMpage, RAMpage, RAMpage, RAMpage, RAMpage},
		[]bool{false, false, false, false, false},
		1000,
		[]string{policy.Clock, policy.FIFO, policy.Random, policy.AWRP, policy.Bandwidth},
	},
}

// systemLabel names one sweep grid: the system, suffixed with the
// replacement policy when it is not the default clock.
func systemLabel(system SystemKind, pol string) string {
	if p := policy.Normalize(pol); p != "" {
		return system.String() + "+" + p
	}
	return system.String()
}

// HasJSONForm reports whether BuildExperimentDoc supports the
// experiment.
func HasJSONForm(id string) bool {
	_, ok := jsonExperiments[id]
	return ok
}

// normalizeExperimentGrid applies the experiment's sweep shape to a
// requested grid: the paper defaults for empty slices and the figure
// experiments' fixed issue rate. Unknown experiments pass through with
// only the defaults applied.
func normalizeExperimentGrid(id string, rates, sizes []uint64) ([]uint64, []uint64) {
	if shape, ok := jsonExperiments[id]; ok && shape.fixedMHz != 0 {
		rates = []uint64{shape.fixedMHz}
	} else {
		rates = defRates(rates)
	}
	return rates, defSizes(sizes)
}

// ExperimentCells returns the total number of simulation grid cells
// BuildExperimentDoc will run for the experiment (systems × rates ×
// sizes), for job-progress accounting. ok is false when the experiment
// has no JSON form.
func ExperimentCells(id string, rates, sizes []uint64) (int, bool) {
	shape, ok := jsonExperiments[id]
	if !ok {
		return 0, false
	}
	rates, sizes = normalizeExperimentGrid(id, rates, sizes)
	return len(shape.systems) * len(rates) * len(sizes), true
}

// ExperimentShape is the resolved sweep structure of a JSON-form
// experiment: the normalized grid plus the systems it crosses. It is
// the unit a fleet coordinator shards — CellSpecs enumerates the
// simulation points and Doc reassembles their reports into the exact
// document BuildExperimentDoc would have produced.
type ExperimentShape struct {
	ID         string
	Title      string
	RatesMHz   []uint64
	SizesBytes []uint64
	// Systems, SwitchTrace and Policies are parallel: one sweep grid
	// per entry. An empty policy string means clock.
	Systems     []SystemKind
	SwitchTrace []bool
	Policies    []string
}

// ShapeOf resolves an experiment's sweep shape under a requested grid
// (empty slices select the paper defaults; the figure experiments pin
// their own issue rate). Experiments without a JSON form error.
func ShapeOf(id string, rates, sizes []uint64) (ExperimentShape, error) {
	shape, ok := jsonExperiments[id]
	if !ok {
		return ExperimentShape{}, fmt.Errorf("harness: experiment %q has no JSON form", id)
	}
	exp, ok := FindExperiment(id)
	if !ok {
		return ExperimentShape{}, fmt.Errorf("harness: unknown experiment %q", id)
	}
	rates, sizes = normalizeExperimentGrid(id, rates, sizes)
	policies := make([]string, len(shape.systems))
	for i := range policies {
		if shape.policies != nil {
			policies[i] = policy.Normalize(shape.policies[i])
		}
	}
	return ExperimentShape{
		ID:          id,
		Title:       exp.Title,
		RatesMHz:    rates,
		SizesBytes:  sizes,
		Systems:     shape.systems,
		SwitchTrace: shape.switchTrace,
		Policies:    policies,
	}, nil
}

// CellSpecs enumerates every simulation point of the experiment in the
// document's canonical order: systems outermost, then rates, then
// sizes. Doc expects reports aligned with this order.
func (sh ExperimentShape) CellSpecs() []RunSpec {
	specs := make([]RunSpec, 0, len(sh.Systems)*len(sh.RatesMHz)*len(sh.SizesBytes))
	for i, system := range sh.Systems {
		for _, rate := range sh.RatesMHz {
			for _, size := range sh.SizesBytes {
				specs = append(specs, RunSpec{
					System:      system,
					IssueMHz:    rate,
					SizeBytes:   size,
					SwitchTrace: sh.SwitchTrace[i],
					Policy:      sh.Policies[i],
				})
			}
		}
	}
	return specs
}

// Doc assembles the experiment document from per-cell reports aligned
// with CellSpecs order. The result is byte-identical (under WriteJSON)
// to BuildExperimentDoc running the sweeps itself — that equivalence
// is what lets a fleet scatter the cells and still serve goldens.
func (sh ExperimentShape) Doc(reports []ReportJSON) (ExperimentDoc, error) {
	want := len(sh.Systems) * len(sh.RatesMHz) * len(sh.SizesBytes)
	if len(reports) != want {
		return ExperimentDoc{}, fmt.Errorf("harness: %s: got %d cell reports, want %d", sh.ID, len(reports), want)
	}
	doc := ExperimentDoc{
		Version:    ReportVersion,
		Kind:       "experiment",
		ID:         sh.ID,
		Title:      sh.Title,
		RatesMHz:   sh.RatesMHz,
		SizesBytes: sh.SizesBytes,
	}
	k := 0
	for i, system := range sh.Systems {
		rows := make([][]ReportJSON, len(sh.RatesMHz))
		for r := range sh.RatesMHz {
			rows[r] = make([]ReportJSON, len(sh.SizesBytes))
			for c := range sh.SizesBytes {
				rows[r][c] = reports[k]
				k++
			}
		}
		doc.Systems = append(doc.Systems, SystemGrid{
			System:      systemLabel(system, sh.Policies[i]),
			SwitchTrace: sh.SwitchTrace[i],
			Rows:        rows,
		})
	}
	return doc, nil
}

// BuildExperimentDoc runs an experiment's sweeps and returns the
// versioned JSON document. It supports the sweep-structured experiments
// (table3, table4, table5, fig2, fig3, fig4); others return an error.
// Cancelling ctx aborts the underlying sweeps and returns ctx.Err().
func BuildExperimentDoc(ctx context.Context, cfg Config, id string, rates, sizes []uint64) (ExperimentDoc, error) {
	sh, err := ShapeOf(id, rates, sizes)
	if err != nil {
		return ExperimentDoc{}, err
	}
	doc := ExperimentDoc{
		Version:    ReportVersion,
		Kind:       "experiment",
		ID:         sh.ID,
		Title:      sh.Title,
		RatesMHz:   sh.RatesMHz,
		SizesBytes: sh.SizesBytes,
	}
	for i, system := range sh.Systems {
		st := sh.SwitchTrace[i]
		base := RunSpec{System: system, SwitchTrace: st, Policy: sh.Policies[i]}
		scfg := cfg
		if outer := cfg.CellResult; outer != nil {
			// Re-base each sweep's rate-major cell indices onto the
			// document's canonical CellSpecs order (systems outermost).
			offset := i * len(sh.RatesMHz) * len(sh.SizesBytes)
			scfg.CellResult = func(k int, rep ReportJSON) { outer(offset+k, rep) }
		}
		grid, err := SweepSpec(ctx, scfg, base, sh.RatesMHz, sh.SizesBytes)
		if err != nil {
			return ExperimentDoc{}, err
		}
		rows := make([][]ReportJSON, len(grid))
		for r, row := range grid {
			rows[r] = make([]ReportJSON, len(row))
			for c, rep := range row {
				rows[r][c] = NewReportJSON(rep)
			}
		}
		doc.Systems = append(doc.Systems, SystemGrid{
			System:      systemLabel(system, sh.Policies[i]),
			SwitchTrace: st,
			Rows:        rows,
		})
	}
	return doc, nil
}

// WriteJSON encodes a document with stable indentation and a trailing
// newline — the byte layout committed goldens use.
func WriteJSON(w io.Writer, doc any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
