package harness

// WireConfig is the serializable projection of a Config: exactly the
// result-affecting fields the canonical cache key covers, in wire
// (JSON) form. It is how sweep cells travel between a fleet
// coordinator and its workers — a worker reconstructing a Config from
// a WireConfig is guaranteed the same report bytes the coordinator
// would have produced locally, because everything excluded (execution
// knobs, observers, stores) is pinned by the equivalence tests as
// having no effect on results.
type WireConfig struct {
	Seed        uint64  `json:"seed"`
	RefScale    float64 `json:"ref_scale"`
	SizeScale   float64 `json:"size_scale"`
	L2Bytes     uint64  `json:"l2_bytes"`
	DRAMBytes   uint64  `json:"dram_bytes"`
	Quantum     uint64  `json:"quantum"`
	Processes   int     `json:"processes,omitempty"`
	ProfileName string  `json:"profile,omitempty"`
	MaxRefs     uint64  `json:"max_refs,omitempty"`
}

// NewWireConfig projects a Config onto its wire form. ok is false for
// configurations whose workload identity the projection cannot carry
// (custom profile sets) — those must not be distributed.
func NewWireConfig(cfg Config) (WireConfig, bool) {
	if cfg.profiles != nil {
		return WireConfig{}, false
	}
	return WireConfig{
		Seed:        cfg.Seed,
		RefScale:    cfg.RefScale,
		SizeScale:   cfg.SizeScale,
		L2Bytes:     cfg.L2Bytes,
		DRAMBytes:   cfg.DRAMBytes,
		Quantum:     cfg.Quantum,
		Processes:   cfg.Processes,
		ProfileName: cfg.ProfileName,
		MaxRefs:     cfg.MaxRefs,
	}, true
}

// Config reconstructs the harness configuration: the canonical fields
// verbatim, every execution knob zero. Callers attach their own local
// checkpoint store and parallelism before running.
func (w WireConfig) Config() Config {
	return Config{
		Seed:        w.Seed,
		RefScale:    w.RefScale,
		SizeScale:   w.SizeScale,
		L2Bytes:     w.L2Bytes,
		DRAMBytes:   w.DRAMBytes,
		Quantum:     w.Quantum,
		Processes:   w.Processes,
		ProfileName: w.ProfileName,
		MaxRefs:     w.MaxRefs,
	}
}
