package harness

import (
	"context"
	"fmt"
	"strings"

	"rampage/internal/dram"
	"rampage/internal/stats"
)

// claim is one of the paper's comparative claims, checked
// programmatically against this repository's measurements.
type claim struct {
	id     string
	text   string
	pass   bool
	detail string
}

// runVerdict reruns the core sweeps at the configured scale and checks
// the paper's claims one by one, printing PASS/FAIL per claim. It is
// the repository's self-test of the reproduction (EXPERIMENTS.md is
// the prose version).
func runVerdict(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	lo, hi := rates[0], rates[len(rates)-1]
	sweepRates := []uint64{lo, hi}

	base, err := Sweep(ctx, cfg, BaselineDM, sweepRates, sizes, false)
	if err != nil {
		return "", err
	}
	rp, err := Sweep(ctx, cfg, RAMpage, sweepRates, sizes, false)
	if err != nil {
		return "", err
	}
	cs, err := Sweep(ctx, cfg, RAMpageCS, sweepRates, sizes, true)
	if err != nil {
		return "", err
	}
	tw, err := Sweep(ctx, cfg, TwoWayL2, sweepRates, sizes, true)
	if err != nil {
		return "", err
	}

	var claims []claim
	add := func(id, text string, pass bool, detail string) {
		claims = append(claims, claim{id, text, pass, detail})
	}

	// Table 1 (§3.5): the two cost examples.
	rows := dram.Table1()
	last := rows[len(rows)-1]
	add("T1-rambus", "4KB Rambus transfer costs ~2,600 instructions at 1GHz",
		last.RambusCost1GHz >= 2500 && last.RambusCost1GHz <= 2700,
		fmt.Sprintf("measured %d", last.RambusCost1GHz))
	add("T1-disk", "4KB disk transfer costs ~10M instructions at 1GHz",
		last.DiskCost1GHz >= 9_000_000 && last.DiskCost1GHz <= 11_000_000,
		fmt.Sprintf("measured %d", last.DiskCost1GHz))

	// Table 3: RAMpage loses at the smallest page at the slow clock.
	add("T3-smallpage", "RAMpage performs badly at the smallest SRAM page (TLB overhead)",
		rp[0][0].Cycles > base[0][0].Cycles,
		fmt.Sprintf("rampage %.4fs vs baseline %.4fs at %s/%dB",
			rp[0][0].Seconds(), base[0][0].Seconds(), rp[0][0].Clock, sizes[0]))

	// Table 3: best-vs-best win at the fast clock, growing with the gap.
	_, bLo := Best(base[0])
	_, rLo := Best(rp[0])
	_, bHi := Best(base[1])
	_, rHi := Best(rp[1])
	gainLo := float64(bLo.Cycles) / float64(rLo.Cycles)
	gainHi := float64(bHi.Cycles) / float64(rHi.Cycles)
	add("T3-win", "best RAMpage beats best baseline at the fastest clock",
		gainHi >= 1.0, fmt.Sprintf("ratio %.3f", gainHi))
	add("T3-growth", "RAMpage's advantage grows with the CPU-DRAM gap",
		gainHi > gainLo, fmt.Sprintf("%.3f @slow -> %.3f @fast", gainLo, gainHi))

	// Table 4: switch-on-miss pays off as the gap grows.
	_, cLo := Best(cs[0])
	_, cHi := Best(cs[1])
	csLo := float64(rLo.Cycles) / float64(cLo.Cycles)
	csHi := float64(rHi.Cycles) / float64(cHi.Cycles)
	add("T4-growth", "the value of a context switch on a miss increases with CPU speed",
		csHi > csLo, fmt.Sprintf("speedup %.3f @slow -> %.3f @fast", csLo, csHi))
	add("T4-win", "switch-on-miss is a net win at the fastest clock",
		csHi >= 1.0, fmt.Sprintf("speedup %.3f", csHi))

	// Table 5 / Figure 5: 2-way competitive, RAMpage ahead at the gap's
	// far end.
	_, tHi := Best(tw[1])
	add("F5-crossover", "RAMpage-CS matches or beats the 2-way L2 at the fastest clock",
		cHi.Cycles <= tHi.Cycles,
		fmt.Sprintf("rampage-cs %.4fs vs 2-way %.4fs", cHi.Seconds(), tHi.Seconds()))

	// Figures 2-3: DRAM share grows with the clock; RAMpage more
	// tolerant.
	bFracLo := bLo.LevelFraction(stats.DRAM)
	bFracHi := bHi.LevelFraction(stats.DRAM)
	rFracLo := rLo.LevelFraction(stats.DRAM)
	rFracHi := rHi.LevelFraction(stats.DRAM)
	add("F23-dram-grows", "DRAM's share of run time grows with the issue rate",
		bFracHi > bFracLo && rFracHi > rFracLo,
		fmt.Sprintf("baseline %.0f%%->%.0f%%, rampage %.0f%%->%.0f%%",
			100*bFracLo, 100*bFracHi, 100*rFracLo, 100*rFracHi))
	add("F23-tolerant", "RAMpage is more tolerant of DRAM latency than the baseline",
		rFracHi < bFracHi,
		fmt.Sprintf("%.0f%% vs %.0f%% at the fastest clock", 100*rFracHi, 100*bFracHi))

	// Figure 4: baseline overhead flat; RAMpage overhead falls steeply
	// with page size.
	var bMin, bMax float64 = 2, 0
	for _, r := range base[1] {
		o := r.OverheadRatio()
		if o < bMin {
			bMin = o
		}
		if o > bMax {
			bMax = o
		}
	}
	add("F4-flat", "baseline handler overhead is flat across block sizes",
		bMax-bMin < 0.02, fmt.Sprintf("spread %.3f", bMax-bMin))
	first := rp[1][0].OverheadRatio()
	lastO := rp[1][len(sizes)-1].OverheadRatio()
	add("F4-cliff", "RAMpage handler overhead collapses as pages grow",
		first > 4*lastO && first > 0.2,
		fmt.Sprintf("%.1f%% at %dB -> %.1f%% at %dB", 100*first, sizes[0], 100*lastO, sizes[len(sizes)-1]))

	var b strings.Builder
	b.WriteString("Self-check of the paper's comparative claims at this scale:\n\n")
	passed := 0
	for _, c := range claims {
		mark := "FAIL"
		if c.pass {
			mark = "PASS"
			passed++
		}
		fmt.Fprintf(&b, "  [%s] %-14s %s\n%s%s\n", mark, c.id, c.text,
			strings.Repeat(" ", 24), c.detail)
	}
	fmt.Fprintf(&b, "\n%d/%d claims reproduced.\n", passed, len(claims))
	return b.String(), nil
}
