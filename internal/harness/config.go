// Package harness configures and runs the paper's experiments: the
// elapsed-time sweeps of Tables 3–5 and the breakdown figures 2–5,
// plus the ablations listed in DESIGN.md. It owns the scaled default
// configuration (smaller memories and shorter traces with preserved
// footprint-to-capacity ratios) and the full-scale paper configuration.
package harness

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rampage/internal/checkpoint"
	"rampage/internal/core"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// IssueRatesMHz is the paper's issue-rate sweep (§4.3: 200 MHz–4 GHz).
var IssueRatesMHz = []uint64{200, 400, 800, 1000, 2000, 4000}

// BlockSizes is the paper's block/page-size sweep (§4.4: 128 B–4 KB).
var BlockSizes = []uint64{128, 256, 512, 1024, 2048, 4096}

// Config describes one experimental setup: workload scaling plus
// memory capacities.
type Config struct {
	// Seed drives every deterministic choice.
	Seed uint64
	// RefScale scales the Table 2 reference counts; SizeScale scales
	// both workload footprints and is matched by the L2/SRAM capacity
	// below.
	RefScale  float64
	SizeScale float64
	// L2Bytes is the conventional L2 capacity (4 MB in the paper,
	// scaled by default). The RAMpage SRAM size is derived from it.
	L2Bytes uint64
	// DRAMBytes bounds the "infinite" DRAM (must exceed the scaled
	// workload footprint).
	DRAMBytes uint64
	// Quantum is the scheduler time slice in references (§4.2:
	// 500,000; scaled by default so the switch *rate* per reference
	// matches the paper).
	Quantum uint64
	// Processes limits the workload to the first N Table 2 programs
	// (0 = all 18). ProfileName instead selects exactly one program by
	// name (for per-benchmark studies).
	Processes   int
	ProfileName string
	// MaxRefs caps application references per run (0 = run traces to
	// completion).
	MaxRefs uint64
	// Workers bounds Sweep's simulation parallelism (0 = one worker per
	// CPU). Results are deterministic regardless of the setting.
	Workers int
	// DisableBatching forces the scheduler's per-reference execution
	// loop instead of the batched pipeline. The two produce
	// bit-identical reports; this is an equivalence-testing and
	// debugging knob.
	DisableBatching bool
	// BatchSize overrides the scheduler's read-ahead window (0 = the
	// scheduler default). Any positive value yields the same reports.
	BatchSize uint64
	// Observer, when non-nil, is attached to the machine and the
	// scheduler for the run: it receives event probes and periodic Tick
	// calls but never influences the simulation (reports stay
	// bit-identical). A metrics.Collector is not safe for concurrent
	// use, so Sweep ignores this field — observers are per-run only.
	Observer metrics.Observer
	// CellDone, when non-nil, is invoked by Sweep once per completed
	// grid cell, from the worker goroutines — it must be safe for
	// concurrent use. The experiment service uses it for job progress;
	// it never influences results and is excluded from cache keys.
	CellDone func()
	// CellResult, when non-nil, receives each completed cell's report as
	// the sweep produces it, tagged with the cell's canonical index:
	// SweepSpec numbers cells rate-major (i*len(sizes)+j) and
	// BuildExperimentDoc re-bases per system so indices match
	// ExperimentShape.CellSpecs order. Like CellDone it is called from
	// the worker goroutines (must be concurrency-safe), never influences
	// results, and is excluded from cache keys. The experiment service
	// streams these as live job events.
	CellResult func(index int, rep ReportJSON)
	// Checkpoints, when non-nil, attaches a warm-state checkpoint store:
	// runs capture their final machine+scheduler state and later runs of
	// the same warm-up prefix restore the newest dominating checkpoint
	// instead of re-simulating it. Restored runs are bit-identical to
	// from-scratch runs, so — like Verify and the execution knobs — the
	// store is excluded from result cache keys. The store is safe for
	// concurrent use and may be shared across sweeps.
	Checkpoints *checkpoint.Store
	// Verify attaches the oracle invariant checker (package oracle) to
	// every run: machine-level invariants are asserted online and a
	// violation fails the run with a descriptive error. Observation is
	// read-only — reports stay bit-identical — so, like the execution
	// knobs above, Verify is excluded from result cache keys. Each run
	// gets its own checker, so verified sweeps remain parallel-safe.
	Verify bool

	// profiles, when non-nil, replaces the Table 2 profile set (used by
	// the phased-workload experiment).
	profiles []synth.Profile
}

// FullScale returns the paper's exact configuration: 4 MB L2, 1.1
// billion references, 500 k-reference quantum. A full sweep at this
// scale takes hours; use DefaultScaled for interactive work.
func FullScale() Config {
	return Config{
		Seed:      42,
		RefScale:  1.0,
		SizeScale: 1.0,
		L2Bytes:   4 << 20,
		DRAMBytes: 256 << 20,
		Quantum:   500_000,
	}
}

// DefaultScaled returns the scaled default: memories and footprints at
// 1/8, traces at 1/48 (~23 M combined references), quantum scaled with
// the footprint (1/8) so a process still amortizes its working-set
// reload over the same fraction of its slice as in the paper. Capacity
// ratios — the quantity the paper's comparisons depend on — are
// preserved.
func DefaultScaled() Config {
	return Config{
		Seed:      42,
		RefScale:  1.0 / 48,
		SizeScale: 1.0 / 8,
		L2Bytes:   512 << 10,
		DRAMBytes: 64 << 20,
		Quantum:   500_000 / 8,
	}
}

// QuickScaled returns a much smaller configuration for smoke tests and
// testing.B benchmarks: ~1.1 M references against 1/16-scale memories.
func QuickScaled() Config {
	return Config{
		Seed:      42,
		RefScale:  1.0 / 1000,
		SizeScale: 1.0 / 16,
		L2Bytes:   256 << 10,
		DRAMBytes: 32 << 20,
		Quantum:   500_000 / 16,
	}
}

// Validate checks the configuration, returning a descriptive error for
// every way a Config can be malformed (zero or negative scales, broken
// capacities, unknown profiles) instead of letting the machine layers
// panic or silently default.
func (c Config) Validate() error {
	if c.RefScale <= 0 || c.SizeScale <= 0 {
		return fmt.Errorf("harness: scales must be positive (RefScale=%g, SizeScale=%g)", c.RefScale, c.SizeScale)
	}
	if math.IsNaN(c.RefScale) || math.IsInf(c.RefScale, 0) ||
		math.IsNaN(c.SizeScale) || math.IsInf(c.SizeScale, 0) {
		return fmt.Errorf("harness: scales must be finite (RefScale=%g, SizeScale=%g)", c.RefScale, c.SizeScale)
	}
	if c.L2Bytes == 0 || !mem.IsPow2(c.L2Bytes) {
		return fmt.Errorf("harness: L2 size %d is not a positive power of two", c.L2Bytes)
	}
	if c.DRAMBytes != 0 && !mem.IsPow2(c.DRAMBytes) {
		return fmt.Errorf("harness: DRAM size %d is not a power of two", c.DRAMBytes)
	}
	if c.Quantum == 0 {
		return fmt.Errorf("harness: zero scheduling quantum (references per time slice)")
	}
	if c.Processes < 0 {
		return fmt.Errorf("harness: negative process count %d", c.Processes)
	}
	if c.Workers < 0 {
		return fmt.Errorf("harness: negative sweep worker count %d", c.Workers)
	}
	if c.ProfileName != "" && c.profiles == nil {
		if _, ok := synth.FindProfile(c.ProfileName); !ok {
			return fmt.Errorf("harness: unknown profile %q (see Table2 for the workload inventory)", c.ProfileName)
		}
	}
	return nil
}

// ScaleNames lists the named configurations ConfigForScale accepts.
var ScaleNames = []string{"quick", "default", "full"}

// ConfigForScale maps a workload-scale name shared by the CLIs and the
// experiment service ("quick", "default", "full") to its configuration.
func ConfigForScale(name string) (Config, error) {
	switch name {
	case "quick":
		return QuickScaled(), nil
	case "default":
		return DefaultScaled(), nil
	case "full":
		return FullScale(), nil
	default:
		return Config{}, fmt.Errorf("harness: unknown scale %q (want quick, default or full)", name)
	}
}

// ParseSystemKind maps the user-facing system names (CLI flags, API
// requests) to a SystemKind, accepting the short aliases the CLIs have
// always taken.
func ParseSystemKind(name string) (SystemKind, error) {
	switch name {
	case "baseline", "baseline-dm", "dm":
		return BaselineDM, nil
	case "2way", "l2-2way":
		return TwoWayL2, nil
	case "rampage":
		return RAMpage, nil
	case "rampage-cs", "cs":
		return RAMpageCS, nil
	default:
		return 0, fmt.Errorf("harness: unknown system %q (want baseline, 2way, rampage or rampage-cs)", name)
	}
}

// ParseGridList parses a comma-separated list of issue rates or sizes
// ("200,400,800"); an empty string selects the paper default (nil).
// Zero values and duplicates are rejected here, with the offending
// entry named, instead of surfacing later as a confusing per-cell
// simulation error (zero) or silently running the same cell twice
// (duplicate).
func ParseGridList(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	seen := make(map[uint64]bool, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("harness: bad grid value %q: %w", part, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("harness: zero grid value %q (rates and sizes must be positive)", part)
		}
		if seen[v] {
			return nil, fmt.Errorf("harness: duplicate grid value %d", v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

// SRAMBytes returns the RAMpage SRAM capacity for a given page size:
// the L2 capacity plus the tag budget the cache would have spent,
// rounded up to a whole page (§4.5: "128 Kbytes larger ... scaled down
// for larger page sizes").
func (c Config) SRAMBytes(pageBytes uint64) uint64 {
	bonus := mem.AlignUp(core.TagBonus(c.L2Bytes, pageBytes), pageBytes)
	return c.L2Bytes + bonus
}

// Readers builds the per-process workload streams: one generator per
// Table 2 program, deterministic for the configuration's seed.
func (c Config) Readers() ([]trace.Reader, error) {
	profiles := c.profiles
	if profiles == nil {
		profiles = synth.Table2()
	}
	if c.ProfileName != "" {
		p, ok := synth.FindProfile(c.ProfileName)
		if !ok {
			return nil, fmt.Errorf("harness: unknown profile %q", c.ProfileName)
		}
		profiles = []synth.Profile{p}
	} else if c.Processes > 0 && c.Processes < len(profiles) {
		profiles = profiles[:c.Processes]
	}
	readers := make([]trace.Reader, 0, len(profiles))
	for _, p := range profiles {
		g, err := synth.NewGenerator(p, synth.Options{
			Seed:      c.Seed,
			RefScale:  c.RefScale,
			SizeScale: c.SizeScale,
		})
		if err != nil {
			return nil, err
		}
		readers = append(readers, g)
	}
	return readers, nil
}
