package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"

	"rampage/internal/checkpoint"
)

// Warm-state checkpointing: runWithReaders captures the complete
// machine+scheduler state when a run finishes (at its reference budget
// or at end of workload) and, on later runs of the same warm-up prefix,
// restores the newest dominating checkpoint instead of re-simulating
// the shared prefix. Restored runs are bit-identical to from-scratch
// runs — the golden suite and the oracle lockstep tests pin this — so
// checkpointing, like the result cache, is invisible in results and
// excluded from cache keys.

// ckptPrefixDoc is the hashed identity of a warm-up trajectory: every
// result-affecting field except the reference budget (runs differing
// only in MaxRefs share a trajectory — that is the whole point), salted
// with the checkpoint format version so a format bump invalidates every
// stored checkpoint at the key level.
type ckptPrefixDoc struct {
	Format  uint32          `json:"ckpt_format"`
	Version int             `json:"v"`
	Config  canonicalConfig `json:"config"`
	Spec    RunSpec         `json:"spec"`
}

// CheckpointPrefixKey returns the warm-up prefix hash for (cfg, spec):
// the address under which the run's checkpoints are stored and looked
// up. It returns "" — disabling checkpointing — for configurations
// whose workload identity is not captured by the canonical config
// (custom profile sets), mirroring the workload cache's cacheability
// rule.
func CheckpointPrefixKey(cfg Config, spec RunSpec) string {
	if cfg.profiles != nil {
		return ""
	}
	cc := canonicalOf(cfg)
	cc.MaxRefs = 0
	doc := ckptPrefixDoc{
		Format:  checkpoint.FormatVersion,
		Version: ReportVersion,
		Config:  cc,
		Spec:    spec.Normalized(),
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic("harness: checkpoint prefix encoding failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// PlanCell is one grid cell's warm-state outlook.
type PlanCell struct {
	Spec   RunSpec
	Prefix string
	// Refs is the warmest usable checkpoint's reference count;
	// Complete means restoring it finishes the run outright. Both are
	// zero/false for cold cells.
	Refs     uint64
	Complete bool
}

// SweepPlan orders a sweep's grid cells by how much stored warm state
// they can reuse.
type SweepPlan struct {
	// Cells holds every grid cell, warmest first: complete restores,
	// then resumable ones by descending reference count, then cold
	// cells in grid order.
	Cells []PlanCell
	// Warm counts cells with any usable checkpoint; Complete counts
	// those needing no simulation at all.
	Warm, Complete int
}

// PlanSweep consults the configuration's checkpoint store and returns
// the sweep's cells grouped and ordered by shared warm-up prefix.
// Sweep dispatches cells in this order when a store is attached:
// complete cells return immediately and resumable cells finish early,
// so workers spend the sweep's wall-clock on the genuinely cold cells.
// With no store attached every cell is cold and grid order is kept.
func PlanSweep(cfg Config, system SystemKind, rates, sizes []uint64, switchTrace bool) SweepPlan {
	return PlanSweepSpec(cfg, RunSpec{System: system, SwitchTrace: switchTrace}, rates, sizes)
}

// PlanSweepSpec is PlanSweep over an arbitrary base spec: every grid
// cell copies base with its rate and size substituted, so swept
// dimensions beyond the classic four (replacement policy, DRAM model,
// ...) ride along.
func PlanSweepSpec(cfg Config, base RunSpec, rates, sizes []uint64) SweepPlan {
	specs := make([]RunSpec, 0, len(rates)*len(sizes))
	for _, rate := range rates {
		for _, size := range sizes {
			spec := base
			spec.IssueMHz = rate
			spec.SizeBytes = size
			specs = append(specs, spec)
		}
	}
	return PlanCells(cfg, specs)
}

// PlanCells orders an arbitrary set of cells warmest-first against the
// configuration's checkpoint store — the same policy PlanSweep applies
// to a grid. Fleet workers use it to order a leased batch so complete
// restores return immediately and the batch's wall-clock goes to the
// cold cells.
func PlanCells(cfg Config, specs []RunSpec) SweepPlan {
	var plan SweepPlan
	for _, spec := range specs {
		pc := PlanCell{Spec: spec, Prefix: CheckpointPrefixKey(cfg, spec)}
		if cfg.Checkpoints != nil && pc.Prefix != "" {
			if refs, complete, ok := cfg.Checkpoints.Peek(pc.Prefix, cfg.MaxRefs); ok {
				pc.Refs, pc.Complete = refs, complete
				plan.Warm++
				if complete {
					plan.Complete++
				}
			}
		}
		plan.Cells = append(plan.Cells, pc)
	}
	sort.SliceStable(plan.Cells, func(i, j int) bool {
		a, b := plan.Cells[i], plan.Cells[j]
		if a.Complete != b.Complete {
			return a.Complete
		}
		return a.Refs > b.Refs
	})
	return plan
}
