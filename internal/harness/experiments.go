package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rampage/internal/dram"
	"rampage/internal/mem"
	"rampage/internal/stats"
	"rampage/internal/synth"
)

// Experiment is one reproducible paper artifact: a table, a figure or
// an ablation. Run returns the formatted result text.
type Experiment struct {
	// ID is the registry key ("table3", "fig4", "bigtlb", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment under cfg with the given issue-rate
	// and size sweeps (empty slices select the paper defaults).
	Run func(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error)
}

// Experiments returns the registry, in paper order.
func Experiments() []Experiment {
	return append([]Experiment{
		{"table1", "Table 1: % bandwidth efficiency, Direct Rambus vs disk", runTable1},
		{"table2", "Table 2: workload inventory (synthetic profiles)", runTable2},
		{"table3", "Table 3: run times, baseline direct-mapped L2 vs RAMpage", runTable3},
		{"table4", "Table 4: RAMpage with context switches on misses", runTable4},
		{"table5", "Table 5: 2-way associative L2 with context switches", runTable5},
		{"fig2", "Figure 2: fraction of time per level, 200MHz", runFig2},
		{"fig3", "Figure 3: fraction of time per level, 4GHz", runFig3},
		{"fig4", "Figure 4: TLB miss + page fault handling overheads", runFig4},
		{"fig5", "Figure 5: RAMpage-CS vs 2-way L2 relative speed", runFig5},
		{"bigtlb", "Ablation X1 (§6.3): 1K-entry 2-way TLB", runBigTLB},
		{"pipelined", "Ablation X2 (§6.3): pipelined Direct Rambus", runPipelined},
		{"victim", "Ablation X3 (§3.2): victim cache on the baseline", runVictim},
		{"biglone", "Ablation (§6.3): aggressive 64KB 8-way L1", runBigL1},
	}, extensionExperiments()...)
}

// FindExperiment looks up an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func defRates(rates []uint64) []uint64 {
	if len(rates) == 0 {
		return IssueRatesMHz
	}
	return rates
}

func defSizes(sizes []uint64) []uint64 {
	if len(sizes) == 0 {
		return BlockSizes
	}
	return sizes
}

// --- Table 1 ---

func runTable1(context.Context, Config, []uint64, []uint64) (string, error) {
	return dram.FormatTable1(dram.Table1()), nil
}

// --- Table 2 ---

func runTable2(ctx context.Context, cfg Config, _, _ []uint64) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-36s %10s %10s\n", "program", "description", "ifetch(M)", "total(M)")
	profiles := synth.Table2()
	var sumI, sumT float64
	for _, p := range profiles {
		fmt.Fprintf(&b, "%-12s %-36s %10.1f %10.1f\n", p.Name, p.Description, p.IFetchMillions, p.TotalMillions)
		sumI += p.IFetchMillions
		sumT += p.TotalMillions
	}
	fmt.Fprintf(&b, "%-12s %-36s %10.1f %10.1f\n", "TOTAL", "", sumI, sumT)
	fmt.Fprintf(&b, "\nconfigured scales: refs x%.5f, sizes x%.4f => ~%.1fM simulated references\n",
		cfg.RefScale, cfg.SizeScale, sumT*cfg.RefScale)
	return b.String(), nil
}

// --- Table 3 ---

func runTable3(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	base, err := Sweep(ctx, cfg, BaselineDM, rates, sizes, false)
	if err != nil {
		return "", err
	}
	rp, err := Sweep(ctx, cfg, RAMpage, rates, sizes, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Elapsed simulated time (s); per issue rate: baseline direct-mapped L2 on top, RAMpage below.\n")
	b.WriteString(formatPairedGrid(rates, sizes, base, rp))
	b.WriteString("\nbest-vs-best:\n")
	for i, mhz := range rates {
		bi, bb := Best(base[i])
		ri, rr := Best(rp[i])
		gain := float64(bb.Cycles)/float64(rr.Cycles) - 1
		fmt.Fprintf(&b, "  %7s: baseline %.4fs @%s, rampage %.4fs @%s => rampage %+.1f%%\n",
			mem.MustClock(mhz), bb.Seconds(), mem.FormatSize(sizes[bi]),
			rr.Seconds(), mem.FormatSize(sizes[ri]), 100*gain)
	}
	return b.String(), nil
}

// --- Table 4 ---

func runTable4(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	cs, err := Sweep(ctx, cfg, RAMpageCS, rates, sizes, true)
	if err != nil {
		return "", err
	}
	plain, err := Sweep(ctx, cfg, RAMpage, rates, sizes, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("RAMpage with context switches on misses: run times (s) and speedup vs RAMpage without switches.\n")
	b.WriteString(formatGrid(rates, sizes, cs, func(r *stats.Report) string {
		return fmt.Sprintf("%.4f", r.Seconds())
	}))
	b.WriteString("\nspeedup vs no switch (same page size):\n")
	b.WriteString(formatGridPair(rates, sizes, cs, plain, func(a, p *stats.Report) string {
		return fmt.Sprintf("%.3f", float64(p.Cycles)/float64(a.Cycles))
	}))
	b.WriteString("\nbest-time speedup per issue rate:\n")
	for i, mhz := range rates {
		_, bc := Best(cs[i])
		_, bp := Best(plain[i])
		fmt.Fprintf(&b, "  %7s: %.3fx\n", mem.MustClock(mhz), float64(bp.Cycles)/float64(bc.Cycles))
	}
	return b.String(), nil
}

// --- Table 5 ---

func runTable5(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	tw, err := Sweep(ctx, cfg, TwoWayL2, rates, sizes, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("2-way associative L2 (random replacement) with context-switch traces: run times (s).\n")
	b.WriteString(formatGrid(rates, sizes, tw, func(r *stats.Report) string {
		return fmt.Sprintf("%.4f", r.Seconds())
	}))
	return b.String(), nil
}

// --- Figures 2 & 3 ---

func runFigLevels(ctx context.Context, cfg Config, mhz uint64, sizes []uint64) (string, error) {
	sizes = defSizes(sizes)
	base, err := Sweep(ctx, cfg, BaselineDM, []uint64{mhz}, sizes, false)
	if err != nil {
		return "", err
	}
	rp, err := Sweep(ctx, cfg, RAMpage, []uint64{mhz}, sizes, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	systems := []struct {
		name string
		row  []*stats.Report
	}{
		{"direct-mapped L2", base[0]},
		{"RAMpage", rp[0]},
	}
	for _, sys := range systems {
		name, row := sys.name, sys.row
		fmt.Fprintf(&b, "%s @%s — fraction of run time per level:\n", name, mem.MustClock(mhz))
		fmt.Fprintf(&b, "  %-8s", "size")
		for l := stats.Level(0); l < stats.NumLevels; l++ {
			fmt.Fprintf(&b, " %8s", l)
		}
		fmt.Fprintf(&b, " %8s\n", "CPU")
		for j, size := range sizes {
			r := row[j]
			fmt.Fprintf(&b, "  %-8s", mem.FormatSize(size))
			var acc float64
			for l := stats.Level(0); l < stats.NumLevels; l++ {
				f := r.LevelFraction(l)
				acc += f
				fmt.Fprintf(&b, " %7.1f%%", 100*f)
			}
			fmt.Fprintf(&b, " %7.1f%%\n", 100*(1-acc))
		}
		b.WriteString("\n")
		b.WriteString(stats.FormatLevelBars(row, 60))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runFig2(ctx context.Context, cfg Config, _, sizes []uint64) (string, error) {
	return runFigLevels(ctx, cfg, 200, sizes)
}
func runFig3(ctx context.Context, cfg Config, _, sizes []uint64) (string, error) {
	return runFigLevels(ctx, cfg, 4000, sizes)
}

// --- Figure 4 ---

func runFig4(ctx context.Context, cfg Config, _, sizes []uint64) (string, error) {
	sizes = defSizes(sizes)
	base, err := Sweep(ctx, cfg, BaselineDM, []uint64{1000}, sizes, false)
	if err != nil {
		return "", err
	}
	rp, err := Sweep(ctx, cfg, RAMpage, []uint64{1000}, sizes, false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("TLB miss + page fault handling overhead (handler refs / benchmark refs):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "size", "baseline", "rampage")
	for j, size := range sizes {
		fmt.Fprintf(&b, "%-10s %11.1f%% %11.1f%%\n", mem.FormatSize(size),
			100*base[0][j].OverheadRatio(), 100*rp[0][j].OverheadRatio())
	}
	return b.String(), nil
}

// --- Figure 5 ---

func runFig5(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	cs, err := Sweep(ctx, cfg, RAMpageCS, rates, sizes, true)
	if err != nil {
		return "", err
	}
	tw, err := Sweep(ctx, cfg, TwoWayL2, rates, sizes, true)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Relative slowdown vs the best time at each issue rate (0 = best; n means 1.n x slower).\n")
	b.WriteString("\nRAMpage (context switches on misses):\n")
	b.WriteString(relativeGrid(rates, sizes, cs, tw, true))
	b.WriteString("\n2-way associative L2:\n")
	b.WriteString(relativeGrid(rates, sizes, cs, tw, false))
	return b.String(), nil
}

// relativeGrid renders the Figure 5 measure for one of the two systems
// against the per-rate best across both.
func relativeGrid(rates, sizes []uint64, cs, tw [][]*stats.Report, pickCS bool) string {
	var b strings.Builder
	b.WriteString(header(sizes))
	for i, mhz := range rates {
		_, bc := Best(cs[i])
		_, bt := Best(tw[i])
		best := bc.Cycles
		if bt.Cycles < best {
			best = bt.Cycles
		}
		row := cs[i]
		if !pickCS {
			row = tw[i]
		}
		fmt.Fprintf(&b, "%-8s", mem.MustClock(mhz))
		for _, r := range row {
			fmt.Fprintf(&b, " %8.3f", float64(r.Cycles)/float64(best)-1)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Ablations ---

func runBigTLB(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("RAMpage run time (s) with the paper TLB (64 fully-assoc) vs a 1K-entry 2-way TLB (§6.3):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "page", "tlb-64", "tlb-1k")
	for _, size := range sizes {
		small, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		big, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, TLBEntries: 1024, TLBAssoc: 2})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f\n", mem.FormatSize(size), small.Seconds(), big.Seconds())
	}
	return b.String(), nil
}

func runPipelined(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("RAMpage-CS run time (s), unpipelined vs pipelined Direct Rambus (§6.3):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "page", "unpipelined", "pipelined")
	for _, size := range sizes {
		plain, err := Run(ctx, cfg, RunSpec{System: RAMpageCS, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true})
		if err != nil {
			return "", err
		}
		pipe, err := Run(ctx, cfg, RunSpec{System: RAMpageCS, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true, PipelinedDRAM: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f\n", mem.FormatSize(size), plain.Seconds(), pipe.Seconds())
	}
	return b.String(), nil
}

func runVictim(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("Baseline direct-mapped L2 run time (s), with and without a 16-entry victim cache (§3.2):\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "block", "plain", "victim")
	for _, size := range sizes {
		plain, err := Run(ctx, cfg, RunSpec{System: BaselineDM, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		vc, err := Run(ctx, cfg, RunSpec{System: BaselineDM, IssueMHz: mhz, SizeBytes: size, VictimEntries: 16})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f\n", mem.FormatSize(size), plain.Seconds(), vc.Seconds())
	}
	return b.String(), nil
}

func runBigL1(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("Run time (s) with the aggressive L1 of §6.3 (64KB each, 8-way):\n")
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "size", "2way-bigL1", "rampage-bigL1")
	for _, size := range sizes {
		tw, err := Run(ctx, cfg, RunSpec{System: TwoWayL2, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true, L1Bytes: 64 << 10, L1Assoc: 8})
		if err != nil {
			return "", err
		}
		rp, err := Run(ctx, cfg, RunSpec{System: RAMpageCS, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true, L1Bytes: 64 << 10, L1Assoc: 8})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %14.4f %14.4f\n", mem.FormatSize(size), tw.Seconds(), rp.Seconds())
	}
	return b.String(), nil
}

// --- grid formatting ---

func header(sizes []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "issue")
	for _, s := range sizes {
		fmt.Fprintf(&b, " %8s", mem.FormatSize(s))
	}
	b.WriteString("\n")
	return b.String()
}

func formatGrid(rates, sizes []uint64, grid [][]*stats.Report, cell func(*stats.Report) string) string {
	var b strings.Builder
	b.WriteString(header(sizes))
	for i, mhz := range rates {
		fmt.Fprintf(&b, "%-8s", mem.MustClock(mhz))
		for _, r := range grid[i] {
			fmt.Fprintf(&b, " %8s", cell(r))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func formatGridPair(rates, sizes []uint64, a, p [][]*stats.Report, cell func(a, p *stats.Report) string) string {
	var b strings.Builder
	b.WriteString(header(sizes))
	for i, mhz := range rates {
		fmt.Fprintf(&b, "%-8s", mem.MustClock(mhz))
		for j := range sizes {
			fmt.Fprintf(&b, " %8s", cell(a[i][j], p[i][j]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// formatPairedGrid renders the paper's Table 3 layout: for each issue
// rate, the cache-based hierarchy on top and RAMpage below.
func formatPairedGrid(rates, sizes []uint64, top, bottom [][]*stats.Report) string {
	var b strings.Builder
	b.WriteString(header(sizes))
	for i, mhz := range rates {
		fmt.Fprintf(&b, "%-8s", mem.MustClock(mhz))
		for _, r := range top[i] {
			fmt.Fprintf(&b, " %8.4f", r.Seconds())
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-8s", "")
		for _, r := range bottom[i] {
			fmt.Fprintf(&b, " %8.4f", r.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// SortedExperimentIDs returns the registry keys in order.
func SortedExperimentIDs() []string {
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
