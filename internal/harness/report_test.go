package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"rampage/internal/metrics"
)

// TestObserverRunEquivalence is the harness-level read-only guarantee:
// a full scheduled run produces a bit-identical report with a collector
// attached, and the collector's counts agree with the report where the
// probe sites mirror a counter.
func TestObserverRunEquivalence(t *testing.T) {
	cfg := tinyConfig()
	spec := RunSpec{System: RAMpageCS, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true}
	plain, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(100_000)
	cfg.Observer = col
	observed, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observer perturbed the report:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	counts := col.Counts()
	if counts[metrics.EvContextSwitch] != observed.Switches {
		t.Errorf("context switches: collector %d, report %d", counts[metrics.EvContextSwitch], observed.Switches)
	}
	if counts[metrics.EvSwitchOnMiss] != observed.SwitchesOnMiss {
		t.Errorf("switches on miss: collector %d, report %d", counts[metrics.EvSwitchOnMiss], observed.SwitchesOnMiss)
	}
	if counts[metrics.EvPageFault] != observed.PageFaults {
		t.Errorf("page faults: collector %d, report %d", counts[metrics.EvPageFault], observed.PageFaults)
	}
	if h := col.Hist(metrics.EvDRAMTransfer); h.Count != observed.DRAMTransfers || h.Sum != observed.DRAMBytes {
		t.Errorf("dram transfers: collector %d/%d bytes, report %d/%d bytes",
			h.Count, h.Sum, observed.DRAMTransfers, observed.DRAMBytes)
	}
	if len(col.Snapshots()) == 0 {
		t.Error("expected interval snapshots from the scheduler's Tick calls")
	}
}

// TestRunDocJSON checks the versioned single-run document shape.
func TestRunDocJSON(t *testing.T) {
	cfg := tinyConfig()
	col := metrics.NewCollector(100_000)
	cfg.Observer = col
	rep, err := Run(context.Background(), cfg, RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewRunDoc(rep, col)); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if v, _ := doc["version"].(float64); int(v) != ReportVersion {
		t.Errorf("version = %v, want %d", doc["version"], ReportVersion)
	}
	if doc["kind"] != "run" {
		t.Errorf("kind = %v, want run", doc["kind"])
	}
	report, ok := doc["report"].(map[string]any)
	if !ok {
		t.Fatal("missing report object")
	}
	for _, key := range []string{"name", "clock_mhz", "block_bytes", "cycles", "seconds",
		"level_cycles", "tlb_hits", "tlb_misses", "page_faults", "dram_transfers", "overhead_ratio"} {
		if _, ok := report[key]; !ok {
			t.Errorf("report missing key %q", key)
		}
	}
	met, ok := doc["metrics"].(map[string]any)
	if !ok {
		t.Fatal("missing metrics object (collector was attached)")
	}
	if c, ok := met["counts"].(map[string]any); !ok || len(c) == 0 {
		t.Error("metrics.counts missing or empty")
	}
}

// TestBuildExperimentDoc runs a small table3 sweep into the JSON form
// and checks the grid shape and identifying fields.
func TestBuildExperimentDoc(t *testing.T) {
	cfg := tinyConfig()
	rates := []uint64{1000}
	sizes := []uint64{512, 1024}
	doc, err := BuildExperimentDoc(context.Background(), cfg, "table3", rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != ReportVersion || doc.Kind != "experiment" || doc.ID != "table3" {
		t.Errorf("doc header = %d/%s/%s", doc.Version, doc.Kind, doc.ID)
	}
	wantSystems := []string{"baseline-dm", "rampage"}
	if len(doc.Systems) != len(wantSystems) {
		t.Fatalf("systems = %d, want %d", len(doc.Systems), len(wantSystems))
	}
	for i, sys := range doc.Systems {
		if sys.System != wantSystems[i] {
			t.Errorf("system[%d] = %s, want %s", i, sys.System, wantSystems[i])
		}
		if len(sys.Rows) != len(rates) || len(sys.Rows[0]) != len(sizes) {
			t.Fatalf("grid shape %dx%d, want %dx%d", len(sys.Rows), len(sys.Rows[0]), len(rates), len(sizes))
		}
		for j, rep := range sys.Rows[0] {
			if rep.ClockMHz != rates[0] || rep.BlockBytes != sizes[j] {
				t.Errorf("cell [0][%d] = %dMHz/%dB, want %dMHz/%dB",
					j, rep.ClockMHz, rep.BlockBytes, rates[0], sizes[j])
			}
			if rep.Cycles == 0 || rep.BenchRefs == 0 {
				t.Errorf("cell [0][%d] has empty measurements", j)
			}
		}
	}
}

// TestBuildExperimentDocDeterministic pins the property the CI golden
// gate relies on: building the same document twice yields identical
// bytes.
func TestBuildExperimentDocDeterministic(t *testing.T) {
	cfg := tinyConfig()
	encode := func() []byte {
		doc, err := BuildExperimentDoc(context.Background(), cfg, "fig4", nil, []uint64{512, 1024})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, doc); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := encode(), encode(); !bytes.Equal(a, b) {
		t.Error("experiment document is not byte-stable across builds")
	}
}

// TestBuildExperimentDocUnsupported checks the error path and the
// HasJSONForm predicate.
func TestBuildExperimentDocUnsupported(t *testing.T) {
	for _, id := range []string{"table1", "table2", "fig5", "nope"} {
		if HasJSONForm(id) {
			t.Errorf("HasJSONForm(%q) = true", id)
		}
		if _, err := BuildExperimentDoc(context.Background(), tinyConfig(), id, nil, nil); err == nil {
			t.Errorf("BuildExperimentDoc(%q) succeeded, want error", id)
		}
	}
	for _, id := range []string{"table3", "table4", "table5", "fig2", "fig3", "fig4"} {
		if !HasJSONForm(id) {
			t.Errorf("HasJSONForm(%q) = false", id)
		}
	}
}
