package harness

import (
	"context"
	"fmt"
	"strings"

	"rampage/internal/mem"
	"rampage/internal/policy"
	"rampage/internal/sim"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// extensionExperiments returns the experiments for the paper's
// future-work directions implemented in this repository (beyond the
// §6.3 ablations in experiments.go):
//
//   - sdram: swap the Direct Rambus for the §3.3 wide SDRAM design;
//   - threads: lightweight thread switches on misses (§3.2);
//   - adaptive: dynamic SRAM page sizing (§6.2);
//   - perbench: per-program optimal page size (§6.3 "differences in
//     individual application behaviour").
func extensionExperiments() []Experiment {
	return []Experiment{
		{"sdram", "Extension (§3.3): SDRAM in place of Direct Rambus", runSDRAM},
		{"threads", "Extension (§3.2): lightweight thread switch on miss", runThreads},
		{"adaptive", "Extension (§6.2): dynamic SRAM page sizing", runAdaptive},
		{"perbench", "Extension (§6.3): per-program optimal page size", runPerBench},
		{"prefetch", "Extension (§3.2): sequential next-page prefetch", runPrefetch},
		{"channels", "Extension (§3.3): multiple Rambus channels", runChannels},
		{"banked", "Extension (§6.3): banked open-row RDRAM timing", runBanked},
		{"policies", "Policy lab: SRAM page replacement (clock/fifo/random/awrp/bandwidth)", runPolicies},
		{"verdict", "Self-check: every paper claim, PASS/FAIL", runVerdict},
		{"phased", "Extension (§6.2): adaptive paging on a phased workload", runPhased},
		{"warmup", "§4.2 warm-up analysis: references to fill the SRAM", runWarmup},
	}
}

// runPolicies is the policy lab's text form: the RAMpage machine at
// the paper's 1 GHz midpoint under every replacement policy, swept
// across the page sizes, with PASS/FAIL verdicts on the structural
// claims the lab depends on. The JSON form of the same grid is the
// "policies" experiment document (testdata/golden/policies.json).
func runPolicies(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	sizes = defSizes(sizes)
	const mhz = 1000
	type row struct {
		name    string
		reports []*stats.Report
	}
	rows := make([]row, 0, len(policy.Names()))
	for _, pol := range policy.Names() {
		reports := make([]*stats.Report, len(sizes))
		for j, size := range sizes {
			rep, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, Policy: pol})
			if err != nil {
				return "", err
			}
			reports[j] = rep
		}
		rows = append(rows, row{pol, reports})
	}

	var b strings.Builder
	b.WriteString("SRAM page-replacement policies on the RAMpage machine at 1GHz.\n")
	b.WriteString("clock is the paper's §4.5 algorithm; fifo/random are baselines; awrp\n")
	b.WriteString("adapts a recency+frequency ranking; bandwidth protects high-reuse\n")
	b.WriteString("pages to suppress low-benefit SRAM<->DRAM page movement.\n\n")
	fmt.Fprintf(&b, "%-11s", "policy")
	for _, s := range sizes {
		fmt.Fprintf(&b, " %9s", mem.FormatSize(s))
	}
	fmt.Fprintf(&b, " %12s\n", "faults@best")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s", r.name)
		best := 0
		for j, rep := range r.reports {
			fmt.Fprintf(&b, " %9.4f", rep.Seconds())
			if rep.Cycles < r.reports[best].Cycles {
				best = j
			}
		}
		fmt.Fprintf(&b, " %12d\n", r.reports[best].PageFaults)
	}

	// Verdicts: the structural facts the policy dimension guarantees.
	bestSecs := func(r row) float64 {
		_, rep := Best(r.reports)
		return rep.Seconds()
	}
	sameWork := true
	for _, r := range rows[1:] {
		for j := range sizes {
			if r.reports[j].BenchRefs != rows[0].reports[j].BenchRefs {
				sameWork = false
			}
		}
	}
	byName := make(map[string]row, len(rows))
	for _, r := range rows {
		byName[r.name] = r
	}
	rerun, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: sizes[len(sizes)-1], Policy: policy.AWRP})
	if err != nil {
		return "", err
	}
	deterministic := rerun.Cycles == byName[policy.AWRP].reports[len(sizes)-1].Cycles
	random := bestSecs(byName[policy.Random])
	informed := random
	for _, name := range []string{policy.Clock, policy.AWRP, policy.Bandwidth, policy.FIFO} {
		if s := bestSecs(byName[name]); s < informed {
			informed = s
		}
	}
	b.WriteString("\n")
	verdict := func(id, text string, pass bool, detail string) {
		mark := "FAIL"
		if pass {
			mark = "PASS"
		}
		fmt.Fprintf(&b, "  [%s] %-12s %s (%s)\n", mark, id, text, detail)
	}
	verdict("P-workload", "every policy executes the identical workload", sameWork,
		fmt.Sprintf("bench refs %d", rows[0].reports[0].BenchRefs))
	verdict("P-determinism", "policy runs are bit-reproducible", deterministic,
		fmt.Sprintf("awrp repeat: %d cycles", rerun.Cycles))
	verdict("P-informed", "an informed policy beats blind random at its best point", informed <= random,
		fmt.Sprintf("best informed %.4fs vs random %.4fs", informed, random))
	return b.String(), nil
}

// runWarmup reproduces the §4.2 warm-up measurement: "For 128-byte
// SRAM pages, it takes about 50-million references before every page
// in the RAMpage SRAM main memory is occupied; this figure drops off
// with page size to about 25-million references" (at 4 KB). The
// absolute counts scale with the configuration; the ~2x ratio between
// the ends of the sweep is the reproduction target.
func runWarmup(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	sizes = defSizes(sizes)
	var b strings.Builder
	b.WriteString("References until every SRAM page frame is occupied (§4.2 warm-up):\n")
	fmt.Fprintf(&b, "%-10s %14s %12s\n", "page", "refs-to-fill", "frames")
	var first, last float64
	for i, size := range sizes {
		refs, frames, err := warmupRefs(cfg, size)
		if err != nil {
			return "", err
		}
		if i == 0 {
			first = float64(refs)
		}
		if i == len(sizes)-1 {
			last = float64(refs)
		}
		fmt.Fprintf(&b, "%-10s %14d %12d\n", mem.FormatSize(size), refs, frames)
	}
	if last > 0 {
		fmt.Fprintf(&b, "\nsmallest/largest page fill ratio: %.2fx (paper: ~2x, 50M vs 25M refs)\n", first/last)
	}
	return b.String(), nil
}

// warmupRefs feeds the interleaved workload to a RAMpage machine until
// the SRAM is full, returning the references consumed.
func warmupRefs(cfg Config, pageBytes uint64) (uint64, uint64, error) {
	params := sim.DefaultParams(1000)
	params.Seed = cfg.Seed
	machine, err := sim.NewRAMpage(sim.RAMpageConfig{
		Params:    params,
		SRAMBytes: cfg.SRAMBytes(pageBytes),
		PageBytes: pageBytes,
	})
	if err != nil {
		return 0, 0, err
	}
	readers, err := cfg.Readers()
	if err != nil {
		return 0, 0, err
	}
	il, err := trace.NewInterleaver(readers, cfg.Quantum)
	if err != nil {
		return 0, 0, err
	}
	mm := machine.Memory()
	frames := mm.Frames() - mm.OSPages()
	var n uint64
	for mm.FreeFrames() > 0 {
		ref, err := il.Next()
		if err != nil {
			// Workload exhausted before the SRAM filled: report what
			// was consumed.
			return n, frames, nil
		}
		if _, err := machine.Exec(ref); err != nil {
			return 0, 0, err
		}
		n++
	}
	return n, frames, nil
}

// PhasedTable2 returns the Table 2 profiles with explicit program
// phases: each multi-region program first concentrates on its first
// region, then on the remainder, then mixes — the input/compute/output
// structure real programs have and the situation §6.2's dynamic page
// sizing is motivated by.
func PhasedTable2() []synth.Profile {
	profiles := synth.Table2()
	for i, p := range profiles {
		if len(p.Regions) < 2 {
			continue
		}
		first := make([]float64, len(p.Regions))
		rest := make([]float64, len(p.Regions))
		mixed := make([]float64, len(p.Regions))
		for j, r := range p.Regions {
			mixed[j] = r.Weight
			if j == 0 {
				first[j] = r.Weight
			} else {
				rest[j] = r.Weight
			}
		}
		profiles[i].Phases = []synth.Phase{
			{Frac: 1, Weights: first},
			{Frac: 1, Weights: rest},
			{Frac: 1, Weights: mixed},
		}
	}
	return profiles
}

func runPhased(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	phasedCfg := cfg
	phasedCfg.profiles = PhasedTable2()
	var b strings.Builder
	b.WriteString("Adaptive page sizing on a *phased* workload (input/compute/output\n")
	b.WriteString("phases per program) — the situation §6.2's dynamic tuning targets.\n")
	fmt.Fprintf(&b, "%-14s %12s\n", "config", "seconds")
	var best float64
	for _, size := range sizes {
		rep, err := Run(ctx, phasedCfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		if best == 0 || rep.Seconds() < best {
			best = rep.Seconds()
		}
		fmt.Fprintf(&b, "fixed %-8s %12.4f\n", mem.FormatSize(size), rep.Seconds())
	}
	adaptive, err := Run(ctx, phasedCfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: sizes[0], AdaptivePages: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%-14s %12.4f  (%d resizes; best fixed %.4f)\n",
		"adaptive", adaptive.Seconds(), adaptive.Resizes, best)
	return b.String(), nil
}

func runBanked(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("Flat 50ns-per-reference Rambus vs the banked open-row RDRAM model\n")
	b.WriteString("(§6.3). Row-buffer hits start in 20ns instead of 50ns, so workloads\n")
	b.WriteString("with DRAM-page locality gain; transfers spanning rows pay per row.\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s\n", "size", "base-flat", "base-banked", "rp-flat", "rp-banked")
	for _, size := range sizes {
		bf, err := Run(ctx, cfg, RunSpec{System: BaselineDM, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		bb, err := Run(ctx, cfg, RunSpec{System: BaselineDM, IssueMHz: mhz, SizeBytes: size, BankedDRAM: true})
		if err != nil {
			return "", err
		}
		rf, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		rb, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, BankedDRAM: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f %12.4f %12.4f\n", mem.FormatSize(size),
			bf.Seconds(), bb.Seconds(), rf.Seconds(), rb.Seconds())
	}
	return b.String(), nil
}

func runChannels(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("RAMpage run time (s) with the DRAM striped across Rambus channels\n")
	b.WriteString("(§3.3: more channels raise bandwidth but not latency, so big pages\n")
	b.WriteString("benefit most and the 50ns startup bounds the gain at small pages).\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "page", "x1", "x2", "x4")
	for _, size := range sizes {
		fmt.Fprintf(&b, "%-10s", mem.FormatSize(size))
		for _, ch := range []int{1, 2, 4} {
			rep, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, DRAMChannels: ch})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, " %10.4f", rep.Seconds())
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runPrefetch(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("RAMpage run time (s) with sequential next-page prefetch (§3.2:\n")
	b.WriteString("\"Prefetch could be added to RAMpage\"). Hits/issued shows accuracy.\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %14s\n", "page", "demand", "prefetch", "speedup", "hits/issued")
	for _, size := range sizes {
		plain, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		pf, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, PrefetchNext: true})
		if err != nil {
			return "", err
		}
		ratio := "-"
		if pf.Prefetches > 0 {
			ratio = fmt.Sprintf("%d/%d", pf.PrefetchHits, pf.Prefetches)
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f %10.3f %14s\n", mem.FormatSize(size),
			plain.Seconds(), pf.Seconds(), float64(plain.Cycles)/float64(pf.Cycles), ratio)
	}
	return b.String(), nil
}

func runSDRAM(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	b.WriteString("RAMpage run time (s): Direct Rambus vs the same-peak SDRAM (§3.3).\n")
	b.WriteString("With equal startup latency and peak bandwidth the two hierarchies are\n")
	b.WriteString("cycle-identical on width-multiple transfers, demonstrating the paper's\n")
	b.WriteString("claim that its Rambus model matches an SDRAM implementation.\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "page", "rambus", "sdram")
	for _, size := range sizes {
		rambus, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
		if err != nil {
			return "", err
		}
		sdram, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size, SDRAM: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f\n", mem.FormatSize(size), rambus.Seconds(), sdram.Seconds())
	}
	return b.String(), nil
}

func runThreads(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	mhz := rates[len(rates)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "RAMpage with switches on misses: full process switch (~%d refs) vs\n",
		synth.ContextSwitchRefCount())
	fmt.Fprintf(&b, "lightweight thread switch (~%d refs) on miss-induced switches (§3.2).\n",
		synth.ThreadSwitchRefCount())
	fmt.Fprintf(&b, "%-10s %12s %12s %10s\n", "page", "process", "thread", "speedup")
	for _, size := range sizes {
		proc, err := Run(ctx, cfg, RunSpec{System: RAMpageCS, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true})
		if err != nil {
			return "", err
		}
		thr, err := Run(ctx, cfg, RunSpec{System: RAMpageCS, IssueMHz: mhz, SizeBytes: size, SwitchTrace: true, LightweightThreads: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f %10.3f\n", mem.FormatSize(size),
			proc.Seconds(), thr.Seconds(), float64(proc.Cycles)/float64(thr.Cycles))
	}
	return b.String(), nil
}

func runAdaptive(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	rates, sizes = defRates(rates), defSizes(sizes)
	var b strings.Builder
	b.WriteString("Dynamic SRAM page sizing (§6.2): a hill-climbing controller\n")
	b.WriteString("starts at the smallest paper page size and retunes on epoch cost,\n")
	b.WriteString("paying a full SRAM flush for every probe.\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %9s\n", "issue", "fixed-128B", "fixed-best", "adaptive", "resizes")
	for _, mhz := range rates {
		worst, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: sizes[0]})
		if err != nil {
			return "", err
		}
		var best *struct{ s float64 }
		for _, size := range sizes {
			r, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: size})
			if err != nil {
				return "", err
			}
			if best == nil || r.Seconds() < best.s {
				best = &struct{ s float64 }{r.Seconds()}
			}
		}
		adaptive, err := Run(ctx, cfg, RunSpec{System: RAMpage, IssueMHz: mhz, SizeBytes: sizes[0], AdaptivePages: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-8s %14.4f %14.4f %14.4f %9d\n", mem.MustClock(mhz),
			worst.Seconds(), best.s, adaptive.Seconds(), adaptive.Resizes)
	}
	return b.String(), nil
}

func runPerBench(ctx context.Context, cfg Config, rates, sizes []uint64) (string, error) {
	sizes = defSizes(sizes)
	var b strings.Builder
	b.WriteString("Per-program optimal RAMpage page size at 1GHz (§6.3: \"variation can\n")
	b.WriteString("make a difference in individual programs\"). Times in simulated ms.\n")
	fmt.Fprintf(&b, "%-12s", "program")
	for _, s := range sizes {
		fmt.Fprintf(&b, " %8s", mem.FormatSize(s))
	}
	fmt.Fprintf(&b, " %8s\n", "best")
	for _, p := range synth.Table2() {
		pcfg := cfg
		pcfg.ProfileName = p.Name
		fmt.Fprintf(&b, "%-12s", p.Name)
		bestIdx, bestMS := 0, 0.0
		for j, size := range sizes {
			rep, err := Run(ctx, pcfg, RunSpec{System: RAMpage, IssueMHz: 1000, SizeBytes: size})
			if err != nil {
				return "", err
			}
			ms := rep.Seconds() * 1000
			fmt.Fprintf(&b, " %8.2f", ms)
			if j == 0 || ms < bestMS {
				bestIdx, bestMS = j, ms
			}
		}
		fmt.Fprintf(&b, " %8s\n", mem.FormatSize(sizes[bestIdx]))
	}
	return b.String(), nil
}
