package harness

import (
	"context"
	"testing"
)

// TestRunVerifyEquivalence pins the -verify contract: running a cell
// under the invariant checker neither fails a healthy machine nor
// perturbs its report — verified and unverified runs are bit-identical.
func TestRunVerifyEquivalence(t *testing.T) {
	cfg := QuickScaled()
	cfg.MaxRefs = 60_000
	for _, system := range []SystemKind{BaselineDM, TwoWayL2, RAMpage, RAMpageCS} {
		spec := RunSpec{System: system, IssueMHz: 800, SizeBytes: 1024,
			SwitchTrace: system == RAMpageCS}
		plain, err := Run(context.Background(), cfg, spec)
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		vcfg := cfg
		vcfg.Verify = true
		verified, err := Run(context.Background(), vcfg, spec)
		if err != nil {
			t.Fatalf("%s verified: %v", system, err)
		}
		if *plain != *verified {
			t.Errorf("%s: verified report differs from plain report", system)
		}
	}
}
