package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"rampage/internal/synth"
)

// TestWireConfigRoundTrip pins the fleet's correctness foundation: a
// Config projected to wire form and reconstructed remotely must hash
// to the same canonical keys, so a worker's content addresses agree
// with the coordinator's.
func TestWireConfigRoundTrip(t *testing.T) {
	cfg := QuickScaled()
	cfg.RefScale = 1.0 / 10000
	cfg.MaxRefs = 12345
	cfg.Workers = 7 // execution knob: must not affect the wire form

	wc, ok := NewWireConfig(cfg)
	if !ok {
		t.Fatal("standard config not wireable")
	}
	// JSON round-trip, as the cell travels over HTTP.
	raw, err := json.Marshal(wc)
	if err != nil {
		t.Fatal(err)
	}
	var back WireConfig
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != wc {
		t.Fatalf("wire round-trip changed config: %+v vs %+v", back, wc)
	}
	got := back.Config()
	spec := RunSpec{System: RAMpage, IssueMHz: 400, SizeBytes: 1 << 12}
	if RunKey(got, spec) != RunKey(cfg, spec) {
		t.Error("run key differs after wire round-trip")
	}
	if ExperimentKey(got, "table3", nil, nil) != ExperimentKey(cfg, "table3", nil, nil) {
		t.Error("experiment key differs after wire round-trip")
	}

	// A custom profile set cannot travel.
	custom := cfg
	custom.profiles = []synth.Profile{}
	if _, ok := NewWireConfig(custom); ok {
		t.Error("config with custom profiles reported wireable")
	}
}

// TestShapeAssemblyEquivalence pins the fleet's byte-identity
// guarantee at its root: running each cell independently, marshaling
// the report to JSON (the worker's wire step), unmarshaling it back
// (the coordinator's) and folding via ExperimentShape.Doc yields
// exactly the bytes BuildExperimentDoc produces in one process.
func TestShapeAssemblyEquivalence(t *testing.T) {
	cfg := QuickScaled()
	cfg.RefScale = 1.0 / 10000
	rates, sizes := []uint64{200, 400}, []uint64{1 << 12}
	ctx := context.Background()

	doc, err := BuildExperimentDoc(ctx, cfg, "table3", rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSON(&want, doc); err != nil {
		t.Fatal(err)
	}

	sh, err := ShapeOf("table3", rates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	specs := sh.CellSpecs()
	reports := make([]ReportJSON, len(specs))
	for i, spec := range specs {
		rep, err := Run(ctx, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		// Wire round-trip: worker marshal, coordinator unmarshal.
		raw, err := json.Marshal(NewReportJSON(rep))
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	cellDoc, err := sh.Doc(reports)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteJSON(&got, cellDoc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("per-cell assembly differs from monolithic build (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// TestShapeDocValidates pins the guard rails around assembly.
func TestShapeDocValidates(t *testing.T) {
	sh, err := ShapeOf("table3", []uint64{200}, []uint64{1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Doc(make([]ReportJSON, 1)); err == nil {
		t.Error("Doc accepted wrong report count")
	}
	if _, err := ShapeOf("nope", nil, nil); err == nil {
		t.Error("ShapeOf accepted unknown experiment")
	}
	if _, err := ShapeOf("table1", nil, nil); err == nil {
		t.Error("ShapeOf accepted an experiment with no JSON form")
	}
}

// TestPlanCellsMatchesPlanSweep pins that the batch-order API the
// fleet workers use is the same policy as the grid planner.
func TestPlanCellsMatchesPlanSweep(t *testing.T) {
	cfg := QuickScaled()
	cfg.RefScale = 1.0 / 10000
	rates, sizes := []uint64{200, 400}, []uint64{1 << 12, 1 << 13}
	grid := PlanSweep(cfg, RAMpage, rates, sizes, false)
	specs := make([]RunSpec, len(grid.Cells))
	for i, pc := range grid.Cells {
		specs[i] = pc.Spec
	}
	batch := PlanCells(cfg, specs)
	if len(batch.Cells) != len(grid.Cells) {
		t.Fatalf("%d vs %d cells", len(batch.Cells), len(grid.Cells))
	}
	for i := range batch.Cells {
		if batch.Cells[i].Spec != grid.Cells[i].Spec {
			t.Errorf("cell %d: %+v vs %+v", i, batch.Cells[i].Spec, grid.Cells[i].Spec)
		}
	}
}
