package harness

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	base := QuickScaled()
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; "" means valid
	}{
		{"quick default", func(c *Config) {}, ""},
		{"paper default", func(c *Config) { *c = DefaultScaled() }, ""},
		{"full scale", func(c *Config) { *c = FullScale() }, ""},
		{"zero ref scale", func(c *Config) { c.RefScale = 0 }, "scales must be positive"},
		{"negative size scale", func(c *Config) { c.SizeScale = -1 }, "scales must be positive"},
		{"nan scale", func(c *Config) { c.RefScale = math.NaN() }, "scales must be finite"},
		{"inf scale", func(c *Config) { c.SizeScale = math.Inf(1) }, "scales must be finite"},
		{"zero L2", func(c *Config) { c.L2Bytes = 0 }, "not a positive power of two"},
		{"non-pow2 L2", func(c *Config) { c.L2Bytes = 3 << 10 }, "not a positive power of two"},
		{"non-pow2 DRAM", func(c *Config) { c.DRAMBytes = 100 << 20 }, "not a power of two"},
		{"zero DRAM ok", func(c *Config) { c.DRAMBytes = 0 }, ""},
		{"zero quantum", func(c *Config) { c.Quantum = 0 }, "zero scheduling quantum"},
		{"negative processes", func(c *Config) { c.Processes = -2 }, "negative process count"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "negative sweep worker count"},
		{"unknown profile", func(c *Config) { c.ProfileName = "doom" }, "unknown profile"},
		{"known profile", func(c *Config) { c.ProfileName = "compress" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			checkValidation(t, err, tc.wantErr)
		})
	}
}

func TestRunSpecValidate(t *testing.T) {
	base := RunSpec{System: RAMpage, IssueMHz: 800, SizeBytes: 4096}
	cases := []struct {
		name    string
		mutate  func(*RunSpec)
		wantErr string
	}{
		{"valid rampage", func(s *RunSpec) {}, ""},
		{"valid baseline", func(s *RunSpec) { s.System = BaselineDM; s.SizeBytes = 128 }, ""},
		{"unknown system", func(s *RunSpec) { s.System = SystemKind(99) }, "unknown system kind"},
		{"zero issue rate", func(s *RunSpec) { s.IssueMHz = 0 }, "bad issue rate"},
		{"zero size", func(s *RunSpec) { s.SizeBytes = 0 }, "not a positive power of two"},
		{"non-pow2 size", func(s *RunSpec) { s.SizeBytes = 3000 }, "not a positive power of two"},
		{"negative victim", func(s *RunSpec) { s.VictimEntries = -1 }, "negative victim-cache entries"},
		{"negative TLB entries", func(s *RunSpec) { s.TLBEntries = -4 }, "negative TLB geometry"},
		{"negative TLB assoc", func(s *RunSpec) { s.TLBAssoc = -1 }, "negative TLB geometry"},
		{"non-pow2 L1", func(s *RunSpec) { s.L1Bytes = 3 << 10 }, "not a power of two"},
		{"zero L1 ok", func(s *RunSpec) { s.L1Bytes = 0 }, ""},
		{"negative L1 assoc", func(s *RunSpec) { s.L1Assoc = -2 }, "negative L1 associativity"},
		{"negative channels", func(s *RunSpec) { s.DRAMChannels = -1 }, "negative DRAM channel count"},
		{"two DRAM models", func(s *RunSpec) { s.SDRAM = true; s.BankedDRAM = true }, "pick one DRAM model"},
		{"adaptive on baseline", func(s *RunSpec) { s.System = BaselineDM; s.AdaptivePages = true }, "adaptive pages require a RAMpage system"},
		{"adaptive on rampage-cs", func(s *RunSpec) { s.System = RAMpageCS; s.AdaptivePages = true }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			err := spec.Validate()
			checkValidation(t, err, tc.wantErr)
		})
	}
}

// TestRunRejectsInvalid pins that validation actually gates execution:
// a malformed config or spec fails fast with the descriptive error, not
// with a panic from the machine layers.
func TestRunRejectsInvalid(t *testing.T) {
	cfg := QuickScaled()
	cfg.Quantum = 0
	if _, err := Run(context.Background(), cfg, RunSpec{System: RAMpage, IssueMHz: 800, SizeBytes: 4096}); err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Errorf("Run with zero quantum: err = %v, want quantum error", err)
	}
	if _, err := Run(context.Background(), QuickScaled(), RunSpec{System: RAMpage, IssueMHz: 800, SizeBytes: 3000}); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("Run with bad size: err = %v, want size error", err)
	}
}

func checkValidation(t *testing.T, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Errorf("unexpected error: %v", err)
		}
		return
	}
	if err == nil {
		t.Errorf("no error, want one containing %q", want)
	} else if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}
