package harness

import "testing"

func validSpec() RunSpec {
	return RunSpec{System: RAMpage, IssueMHz: 800, SizeBytes: 4096}
}

func TestRunKeyStableAndHex(t *testing.T) {
	cfg := QuickScaled()
	k1 := RunKey(cfg, validSpec())
	k2 := RunKey(cfg, validSpec())
	if k1 != k2 {
		t.Errorf("identical requests hash differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a hex SHA-256", k1)
	}
}

func TestRunKeyCoversResultAffectingFields(t *testing.T) {
	cfg := QuickScaled()
	base := RunKey(cfg, validSpec())
	mutations := map[string]func(*Config, *RunSpec){
		"seed":       func(c *Config, s *RunSpec) { c.Seed++ },
		"ref scale":  func(c *Config, s *RunSpec) { c.RefScale *= 2 },
		"size scale": func(c *Config, s *RunSpec) { c.SizeScale *= 2 },
		"l2 bytes":   func(c *Config, s *RunSpec) { c.L2Bytes *= 2 },
		"dram bytes": func(c *Config, s *RunSpec) { c.DRAMBytes *= 2 },
		"quantum":    func(c *Config, s *RunSpec) { c.Quantum *= 2 },
		"processes":  func(c *Config, s *RunSpec) { c.Processes = 4 },
		"profile":    func(c *Config, s *RunSpec) { c.ProfileName = "compress" },
		"max refs":   func(c *Config, s *RunSpec) { c.MaxRefs = 1000 },
		"system":     func(c *Config, s *RunSpec) { s.System = RAMpageCS },
		"issue rate": func(c *Config, s *RunSpec) { s.IssueMHz = 400 },
		"size bytes": func(c *Config, s *RunSpec) { s.SizeBytes = 2048 },
		"switch":     func(c *Config, s *RunSpec) { s.SwitchTrace = true },
		"sdram":      func(c *Config, s *RunSpec) { s.SDRAM = true },
		"adaptive":   func(c *Config, s *RunSpec) { s.AdaptivePages = true },
	}
	for name, mutate := range mutations {
		c, s := cfg, validSpec()
		mutate(&c, &s)
		if RunKey(c, s) == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}

// TestRunKeyIgnoresExecutionKnobs pins the cache-safety contract: the
// knobs the equivalence tests prove have no effect on reports must not
// split the cache, so a cached result can answer requests that differ
// only in how they would have executed.
func TestRunKeyIgnoresExecutionKnobs(t *testing.T) {
	cfg := QuickScaled()
	base := RunKey(cfg, validSpec())
	for name, mutate := range map[string]func(*Config){
		"workers":          func(c *Config) { c.Workers = 7 },
		"disable batching": func(c *Config) { c.DisableBatching = true },
		"batch size":       func(c *Config) { c.BatchSize = 64 },
		"cell done":        func(c *Config) { c.CellDone = func() {} },
		"verify":           func(c *Config) { c.Verify = true },
	} {
		c := cfg
		mutate(&c)
		if RunKey(c, validSpec()) != base {
			t.Errorf("execution knob %s changed the cache key", name)
		}
	}
}

func TestRunAndExperimentKeysDisjoint(t *testing.T) {
	cfg := QuickScaled()
	if RunKey(cfg, validSpec()) == ExperimentKey(cfg, "table3", nil, nil) {
		t.Error("run and experiment keys collide")
	}
	if ExperimentKey(cfg, "table3", nil, nil) == ExperimentKey(cfg, "table4", nil, nil) {
		t.Error("different experiments share a key")
	}
}

// TestExperimentKeyNormalizesGrid pins that a request eliding the paper
// defaults and one spelling them out are the same cache entry.
func TestExperimentKeyNormalizesGrid(t *testing.T) {
	cfg := QuickScaled()
	elided := ExperimentKey(cfg, "table3", nil, nil)
	spelled := ExperimentKey(cfg, "table3", IssueRatesMHz, BlockSizes)
	if elided != spelled {
		t.Error("defaulted and explicit paper grids hash differently")
	}
	custom := ExperimentKey(cfg, "table3", []uint64{800}, []uint64{4096})
	if custom == elided {
		t.Error("custom grid shares the default grid's key")
	}
	// The figure experiments pin their issue rate; a caller-specified
	// rate list is overridden, so it must not split the cache either.
	f1 := ExperimentKey(cfg, "fig2", nil, nil)
	f2 := ExperimentKey(cfg, "fig2", []uint64{123}, nil)
	if f1 != f2 {
		t.Error("fig2 rates are fixed, but the key depends on the request's rates")
	}
}
