package harness

import (
	"math"
	"testing"
)

// FuzzConfigHash guards the service's content-addressed result cache:
// a stale cache hit silently serves wrong results, so the canonical key
// must be (a) stable for identical requests and (b) different whenever
// any result-affecting field differs. The fuzzer drives the
// result-affecting surface of Config and RunSpec; for every generated
// request it asserts stability, that each single-field mutation moves
// the key, and that the execution knobs never do.
func FuzzConfigHash(f *testing.F) {
	f.Add(uint64(42), 1.0/48, 1.0/8, uint64(512<<10), uint64(64<<20),
		uint64(62_500), 0, "", uint64(0), uint8(0), uint64(800), uint64(4096), false)
	f.Add(uint64(7), 1.0, 1.0, uint64(4<<20), uint64(256<<20),
		uint64(500_000), 3, "compress", uint64(1_000_000), uint8(3), uint64(4000), uint64(128), true)
	f.Add(uint64(0), 0.001, 0.25, uint64(1<<10), uint64(0),
		uint64(1), 18, "gcc", uint64(1), uint8(2), uint64(200), uint64(512), false)
	f.Fuzz(func(t *testing.T, seed uint64, refScale, sizeScale float64,
		l2, dram, quantum uint64, processes int, profile string,
		maxRefs uint64, system uint8, mhz, size uint64, switchTrace bool) {
		// Keys are only computed for validated configs; non-finite scales
		// never reach the hasher (Config.Validate rejects them), and JSON
		// cannot encode them.
		if math.IsNaN(refScale) || math.IsInf(refScale, 0) ||
			math.IsNaN(sizeScale) || math.IsInf(sizeScale, 0) {
			t.Skip("non-finite scales are rejected before hashing")
		}
		cfg := Config{
			Seed:        seed,
			RefScale:    refScale,
			SizeScale:   sizeScale,
			L2Bytes:     l2,
			DRAMBytes:   dram,
			Quantum:     quantum,
			Processes:   processes,
			ProfileName: profile,
			MaxRefs:     maxRefs,
		}
		spec := RunSpec{
			System:      SystemKind(system % 4),
			IssueMHz:    mhz,
			SizeBytes:   size,
			SwitchTrace: switchTrace,
		}
		key := RunKey(cfg, spec)
		if key != RunKey(cfg, spec) {
			t.Fatalf("hash not stable for identical request: %s vs %s", key, RunKey(cfg, spec))
		}
		if len(key) != 64 {
			t.Fatalf("key %q is not a hex SHA-256", key)
		}

		// Execution knobs must not split the cache.
		knobs := cfg
		knobs.Workers = 7
		knobs.DisableBatching = true
		knobs.BatchSize = 64
		knobs.Verify = true
		knobs.CellDone = func() {}
		if RunKey(knobs, spec) != key {
			t.Error("execution knobs changed the cache key")
		}

		// Every result-affecting field mutation must move the key. A
		// mutation that happens to produce the same value (float
		// saturation) proves nothing and is skipped.
		type mutated struct {
			name string
			cfg  Config
			spec RunSpec
		}
		var cases []mutated
		add := func(name string, mc Config, ms RunSpec) {
			cases = append(cases, mutated{name, mc, ms})
		}
		{
			c := cfg
			c.Seed++
			add("seed", c, spec)
		}
		if c := cfg; c.RefScale*2 != c.RefScale {
			c.RefScale *= 2
			add("ref scale", c, spec)
		}
		if c := cfg; c.SizeScale*2 != c.SizeScale {
			c.SizeScale *= 2
			add("size scale", c, spec)
		}
		{
			c := cfg
			c.L2Bytes++
			add("l2 bytes", c, spec)
		}
		{
			c := cfg
			c.DRAMBytes++
			add("dram bytes", c, spec)
		}
		{
			c := cfg
			c.Quantum++
			add("quantum", c, spec)
		}
		{
			c := cfg
			c.Processes++
			add("processes", c, spec)
		}
		{
			c := cfg
			c.ProfileName += "x"
			add("profile", c, spec)
		}
		{
			c := cfg
			c.MaxRefs++
			add("max refs", c, spec)
		}
		{
			s := spec
			s.System = SystemKind((system + 1) % 4)
			add("system", cfg, s)
		}
		{
			s := spec
			s.IssueMHz++
			add("issue rate", cfg, s)
		}
		{
			s := spec
			s.SizeBytes++
			add("size bytes", cfg, s)
		}
		{
			s := spec
			s.SwitchTrace = !s.SwitchTrace
			add("switch trace", cfg, s)
		}
		{
			s := spec
			s.VictimEntries++
			add("victim entries", cfg, s)
		}
		{
			s := spec
			s.PipelinedDRAM = !s.PipelinedDRAM
			add("pipelined dram", cfg, s)
		}
		{
			s := spec
			s.SDRAM = !s.SDRAM
			add("sdram", cfg, s)
		}
		{
			s := spec
			s.AdaptivePages = !s.AdaptivePages
			add("adaptive pages", cfg, s)
		}
		for _, m := range cases {
			if RunKey(m.cfg, m.spec) == key {
				t.Errorf("changing %s did not change the cache key", m.name)
			}
		}
	})
}
