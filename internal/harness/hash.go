package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Canonical request hashing for the experiment service's
// content-addressed result cache. Two requests share a key exactly when
// the harness guarantees them bit-identical result documents: the key
// covers every result-affecting field and deliberately excludes the
// execution knobs (Workers, DisableBatching, BatchSize, Observer,
// CellDone, CellResult, Verify) that the batching-equivalence and
// observer-equivalence tests pin as having no effect on reports.

// canonicalConfig is the result-affecting projection of a Config, in a
// fixed field order so its JSON encoding is byte-stable.
type canonicalConfig struct {
	Seed        uint64  `json:"seed"`
	RefScale    float64 `json:"ref_scale"`
	SizeScale   float64 `json:"size_scale"`
	L2Bytes     uint64  `json:"l2_bytes"`
	DRAMBytes   uint64  `json:"dram_bytes"`
	Quantum     uint64  `json:"quantum"`
	Processes   int     `json:"processes"`
	ProfileName string  `json:"profile"`
	MaxRefs     uint64  `json:"max_refs"`
}

func canonicalOf(cfg Config) canonicalConfig {
	return canonicalConfig{
		Seed:        cfg.Seed,
		RefScale:    cfg.RefScale,
		SizeScale:   cfg.SizeScale,
		L2Bytes:     cfg.L2Bytes,
		DRAMBytes:   cfg.DRAMBytes,
		Quantum:     cfg.Quantum,
		Processes:   cfg.Processes,
		ProfileName: cfg.ProfileName,
		MaxRefs:     cfg.MaxRefs,
	}
}

// keyDoc is the hashed request shape. Version salts the key with the
// report schema version so a schema bump can never serve a stale
// cached document.
type keyDoc struct {
	Version int             `json:"v"`
	Kind    string          `json:"kind"`
	Config  canonicalConfig `json:"config"`
	Spec    *RunSpec        `json:"spec,omitempty"`
	ID      string          `json:"id,omitempty"`
	Rates   []uint64        `json:"rates,omitempty"`
	Sizes   []uint64        `json:"sizes,omitempty"`
}

func hashKey(doc keyDoc) string {
	// Struct fields marshal in declaration order and the doc contains
	// no maps, so the encoding — and therefore the hash — is canonical.
	b, err := json.Marshal(doc)
	if err != nil {
		// Only unsupported types can fail here, and keyDoc has none.
		panic("harness: cache key encoding failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// RunKey returns the content-address of one single-run request: the
// hex SHA-256 of the canonical (config, spec) encoding.
func RunKey(cfg Config, spec RunSpec) string {
	spec = spec.Normalized()
	return hashKey(keyDoc{Version: ReportVersion, Kind: "run", Config: canonicalOf(cfg), Spec: &spec})
}

// ExperimentKey returns the content-address of one experiment-sweep
// request. The grid is normalized exactly as BuildExperimentDoc
// normalizes it (paper defaults for empty slices, the fixed issue rate
// for the figure experiments), so requests that elide the defaults and
// requests that spell them out share a key.
func ExperimentKey(cfg Config, id string, rates, sizes []uint64) string {
	rates, sizes = normalizeExperimentGrid(id, rates, sizes)
	return hashKey(keyDoc{Version: ReportVersion, Kind: "experiment", Config: canonicalOf(cfg), ID: id, Rates: rates, Sizes: sizes})
}
