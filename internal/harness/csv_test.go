package harness

import (
	"bytes"
	"context"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteSweepCSV(t *testing.T) {
	cfg := tinyConfig()
	rates := []uint64{200, 4000}
	sizes := []uint64{512, 2048}
	grid, err := Sweep(context.Background(), cfg, RAMpage, rates, sizes, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, rates, sizes, grid); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 1+len(rates)*len(sizes) {
		t.Fatalf("got %d rows, want %d", len(records), 1+len(rates)*len(sizes))
	}
	header := records[0]
	if header[0] != "system" || header[3] != "seconds" {
		t.Errorf("header unexpected: %v", header)
	}
	idx := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %q missing", name)
		return -1
	}
	for _, row := range records[1:] {
		if row[idx("system")] != "rampage" {
			t.Errorf("system = %q", row[0])
		}
		secs, err := strconv.ParseFloat(row[idx("seconds")], 64)
		if err != nil || secs <= 0 {
			t.Errorf("bad seconds %q", row[idx("seconds")])
		}
		// Level fractions must sum to <= 1.
		var sum float64
		for _, col := range []string{"frac_l1i", "frac_l1d", "frac_l2", "frac_dram"} {
			f, err := strconv.ParseFloat(row[idx(col)], 64)
			if err != nil || f < 0 || f > 1 {
				t.Errorf("bad fraction %q in %s", row[idx(col)], col)
			}
			sum += f
		}
		if sum > 1.000001 {
			t.Errorf("level fractions sum to %f > 1", sum)
		}
	}
	// Rows must cover the full grid in order.
	if records[1][idx("issue_mhz")] != "200" || records[1][idx("size_bytes")] != "512" {
		t.Errorf("first data row = %v", records[1])
	}
	last := records[len(records)-1]
	if last[idx("issue_mhz")] != "4000" || last[idx("size_bytes")] != "2048" {
		t.Errorf("last data row = %v", last)
	}
	_ = strings.TrimSpace("")
}
