package harness

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// equivSpecs covers every SystemKind plus the scheduler features that
// interact with batching: switch traces, switch-on-miss blocking,
// lightweight threads and the adaptive epoch controller.
var equivSpecs = []RunSpec{
	{System: BaselineDM, IssueMHz: 1000, SizeBytes: 128},
	{System: TwoWayL2, IssueMHz: 4000, SizeBytes: 1024, SwitchTrace: true},
	{System: RAMpage, IssueMHz: 1000, SizeBytes: 1024},
	{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 512, SwitchTrace: true},
	{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 128, SwitchTrace: true, LightweightThreads: true},
	{System: RAMpage, IssueMHz: 4000, SizeBytes: 512, AdaptivePages: true},
}

// runBothPaths executes one spec through the per-reference loop and
// the batched loop and fails unless the reports are bit-identical.
func runBothPaths(t *testing.T, cfg Config, spec RunSpec) {
	t.Helper()
	cfg.DisableBatching = true
	perRef, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatalf("per-ref run: %v", err)
	}
	cfg.DisableBatching = false
	batched, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}
	if !reflect.DeepEqual(perRef, batched) {
		t.Errorf("reports diverge (batch=%d):\nper-ref: %+v\nbatched: %+v", cfg.BatchSize, perRef, batched)
	}
}

// TestBatchedPathEquivalence asserts the batched scheduler pipeline
// produces bit-identical reports to the per-reference loop for all
// four systems (plus the threads and adaptive extensions).
func TestBatchedPathEquivalence(t *testing.T) {
	cfg := tinyConfig()
	for _, spec := range equivSpecs {
		spec := spec
		name := spec.System.String()
		if spec.LightweightThreads {
			name += "-threads"
		}
		if spec.AdaptivePages {
			name += "-adaptive"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runBothPaths(t, cfg, spec)
		})
	}
}

// TestBatchedPathEquivalenceBatchSizes sweeps the read-ahead window —
// including a degenerate single-reference window and a window spanning
// whole quanta — on the system with the most scheduler interaction.
func TestBatchedPathEquivalenceBatchSizes(t *testing.T) {
	cfg := tinyConfig()
	spec := RunSpec{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 512, SwitchTrace: true}
	for _, batch := range []uint64{1, 7, 64, cfg.Quantum} {
		batch := batch
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			t.Parallel()
			c := cfg
			c.BatchSize = batch
			runBothPaths(t, c, spec)
		})
	}
}

// TestBatchedPathEquivalenceMaxRefs checks that the MaxRefs cutoff
// lands on the same reference in both paths, including when it falls
// mid-window.
func TestBatchedPathEquivalenceMaxRefs(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxRefs = 12_345
	cfg.BatchSize = 64
	runBothPaths(t, cfg, RunSpec{System: RAMpageCS, IssueMHz: 4000, SizeBytes: 512, SwitchTrace: true})
}

// TestSweepPreloadEquivalence pins Sweep's materialized-workload
// replay against direct Run calls (which regenerate their streams):
// every grid cell must be bit-identical.
func TestSweepPreloadEquivalence(t *testing.T) {
	cfg := tinyConfig()
	rates := []uint64{1000, 4000}
	sizes := []uint64{128, 1024}
	grid, err := Sweep(context.Background(), cfg, RAMpageCS, rates, sizes, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range rates {
		for j, size := range sizes {
			direct, err := Run(context.Background(), cfg, RunSpec{System: RAMpageCS, IssueMHz: rate, SizeBytes: size, SwitchTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(grid[i][j], direct) {
				t.Errorf("cell %dMHz/%dB diverges from direct run:\nsweep: %+v\ndirect: %+v", rate, size, grid[i][j], direct)
			}
		}
	}
}

// FuzzBatchEquivalence fuzzes (seed, batch size, issue rate, page
// size) through the switch-on-miss system, asserting bit-identical
// reports between the two scheduler paths. The seed corpus pins the
// ISSUE-mandated batch sizes {1, 7, 64, quantum}, so `go test` always
// replays them even when no fuzz engine is attached.
func FuzzBatchEquivalence(f *testing.F) {
	quantum := QuickScaled().Quantum
	f.Add(uint64(42), uint64(1), uint64(4000), uint64(512))
	f.Add(uint64(42), uint64(7), uint64(4000), uint64(512))
	f.Add(uint64(42), uint64(64), uint64(1000), uint64(128))
	f.Add(uint64(42), quantum, uint64(4000), uint64(1024))
	f.Add(uint64(7), uint64(13), uint64(2000), uint64(256))
	f.Fuzz(func(t *testing.T, seed, batch, rateMHz, pageBytes uint64) {
		cfg := tinyConfig()
		cfg.Seed = seed
		cfg.Processes = 4
		cfg.MaxRefs = 30_000
		cfg.BatchSize = 1 + batch%uint64(2*quantum) // clamp to a sane window
		rates := []uint64{200, 1000, 2000, 4000}
		sizes := []uint64{128, 256, 512, 1024, 2048, 4096}
		spec := RunSpec{
			System:      RAMpageCS,
			IssueMHz:    rates[rateMHz%uint64(len(rates))],
			SizeBytes:   sizes[pageBytes%uint64(len(sizes))],
			SwitchTrace: true,
		}
		runBothPaths(t, cfg, spec)
	})
}
