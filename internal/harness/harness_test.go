package harness

import (
	"context"
	"strings"
	"testing"
)

// tinyConfig is small enough for unit tests: ~100k references.
func tinyConfig() Config {
	cfg := QuickScaled()
	cfg.RefScale = 1.0 / 10000
	return cfg
}

func TestSRAMBytes(t *testing.T) {
	cfg := FullScale()
	// §4.5: 4MB cache + 128KB of tags at 128B blocks = 4.125MB.
	if got := cfg.SRAMBytes(128); got != 4<<20+128<<10 {
		t.Errorf("SRAMBytes(128) = %d, want 4.125MB", got)
	}
	// The bonus scales down with page size: at 4KB it is one page.
	if got := cfg.SRAMBytes(4096); got != 4<<20+4<<10 {
		t.Errorf("SRAMBytes(4096) = %d, want 4MB+4KB", got)
	}
	// Always a whole number of pages.
	for _, p := range BlockSizes {
		if cfg.SRAMBytes(p)%p != 0 {
			t.Errorf("SRAMBytes(%d) not page-aligned", p)
		}
	}
}

func TestReaders(t *testing.T) {
	cfg := tinyConfig()
	readers, err := cfg.Readers()
	if err != nil {
		t.Fatal(err)
	}
	if len(readers) != 18 {
		t.Errorf("got %d readers, want 18", len(readers))
	}
	cfg.Processes = 3
	readers, err = cfg.Readers()
	if err != nil {
		t.Fatal(err)
	}
	if len(readers) != 3 {
		t.Errorf("got %d readers, want 3", len(readers))
	}
}

func TestRunAllSystems(t *testing.T) {
	cfg := tinyConfig()
	for _, sys := range []SystemKind{BaselineDM, TwoWayL2, RAMpage, RAMpageCS} {
		rep, err := Run(context.Background(), cfg, RunSpec{System: sys, IssueMHz: 1000, SizeBytes: 512, SwitchTrace: true})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if rep.BenchRefs == 0 || rep.Cycles == 0 {
			t.Errorf("%s: empty run %+v", sys, rep)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := tinyConfig()
	spec := RunSpec{System: RAMpageCS, IssueMHz: 2000, SizeBytes: 1024, SwitchTrace: true}
	a, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.PageFaults != b.PageFaults {
		t.Errorf("runs differ: %d/%d vs %d/%d cycles/faults", a.Cycles, a.PageFaults, b.Cycles, b.PageFaults)
	}
}

func TestSweepAndBest(t *testing.T) {
	cfg := tinyConfig()
	grid, err := Sweep(context.Background(), cfg, BaselineDM, []uint64{200, 4000}, []uint64{256, 1024}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 2 {
		t.Fatalf("grid shape %dx%d, want 2x2", len(grid), len(grid[0]))
	}
	i, best := Best(grid[0])
	for _, r := range grid[0] {
		if r.Cycles < best.Cycles {
			t.Errorf("Best missed a faster cell")
		}
	}
	_ = i
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 13 {
		t.Fatalf("registry has %d experiments, want >= 13", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5"} {
		if _, ok := FindExperiment(id); !ok {
			t.Errorf("paper artifact %q missing from registry", id)
		}
	}
	if _, ok := FindExperiment("nonesuch"); ok {
		t.Error("FindExperiment(nonesuch) succeeded")
	}
	if len(SortedExperimentIDs()) != len(exps) {
		t.Error("SortedExperimentIDs length mismatch")
	}
}

func TestTable1Experiment(t *testing.T) {
	e, _ := FindExperiment("table1")
	out, err := e.Run(context.Background(), tinyConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4096") || !strings.Contains(out, "rambus") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}
}

func TestTable2Experiment(t *testing.T) {
	e, _ := FindExperiment("table2")
	out, err := e.Run(context.Background(), tinyConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alvinn", "compress", "yacc", "TOTAL"} {
		if !strings.Contains(out, name) {
			t.Errorf("table2 output missing %q", name)
		}
	}
}

func TestAllSimulationExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	cfg := tinyConfig()
	rates := []uint64{200, 4000}
	sizes := []uint64{256, 2048}
	for _, e := range Experiments() {
		out, err := e.Run(context.Background(), cfg, rates, sizes)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", e.ID)
		}
	}
}

func TestShapeRAMpageVsBaseline(t *testing.T) {
	// The headline claims of Table 3 at a reduced but meaningful scale:
	// RAMpage must lose at 128B pages (TLB overhead) and its best
	// configuration must improve relative to the baseline's best as the
	// CPU-DRAM gap grows.
	if testing.Short() {
		t.Skip("shape validation run")
	}
	cfg := QuickScaled()
	sizes := []uint64{128, 1024, 4096}
	gains := map[uint64]float64{}
	for _, mhz := range []uint64{200, 4000} {
		base, err := Sweep(context.Background(), cfg, BaselineDM, []uint64{mhz}, sizes, false)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := Sweep(context.Background(), cfg, RAMpage, []uint64{mhz}, sizes, false)
		if err != nil {
			t.Fatal(err)
		}
		// RAMpage at 128B pages must lose to the baseline at 128B
		// blocks when the clock is slow enough that handler execution
		// dominates (at 4GHz the baseline's DRAM stalls can outweigh
		// the handler overhead even at this page size).
		if mhz == 200 && rp[0][0].Cycles < base[0][0].Cycles {
			t.Errorf("@%dMHz RAMpage wins at 128B pages; TLB overhead should prevent that", mhz)
		}
		_, bb := Best(base[0])
		_, rb := Best(rp[0])
		gains[mhz] = float64(bb.Cycles) / float64(rb.Cycles)
	}
	if gains[4000] <= gains[200] {
		t.Errorf("RAMpage advantage did not grow with the CPU-DRAM gap: %.3f @200MHz vs %.3f @4GHz",
			gains[200], gains[4000])
	}
	if gains[4000] < 1.0 {
		t.Errorf("RAMpage best loses to baseline best at 4GHz (ratio %.3f)", gains[4000])
	}
}

func TestSystemKindString(t *testing.T) {
	want := map[SystemKind]string{
		BaselineDM: "baseline-dm", TwoWayL2: "l2-2way",
		RAMpage: "rampage", RAMpageCS: "rampage-cs", SystemKind(99): "unknown",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", k, got, s)
		}
	}
}
