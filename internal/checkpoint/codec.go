// Package checkpoint provides warm-state checkpointing for the
// simulator: a versioned, deterministic binary codec for machine and
// scheduler state, a content-addressed checkpoint container, and a
// byte-budget LRU store with optional disk spill.
//
// The motivation is §4.2 of the paper: warming the SRAM main memory
// alone costs 25–50 M references, and every grid cell of a sweep used
// to re-pay that warm-up from a cold machine. Cells that share a
// warm-up prefix (same seed, workload, capacities and quantum,
// differing only in post-warm-up knobs such as the reference budget)
// can instead restore one checkpoint. Correctness is absolute: a
// restored run is bit-identical to a from-scratch run, enforced by the
// golden suite and the reference-oracle lockstep.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FormatVersion is the on-disk format version. It is baked into the
// encoded header and the content-address prefix, so any incompatible
// codec change invalidates old checkpoints instead of misdecoding them.
const FormatVersion = 1

// magic identifies a checkpoint byte stream.
const magic = 0x52504B31 // "RPK1"

// Enc is an append-only little-endian encoder. Encoding is
// deterministic: the same state always produces the same bytes.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with some initial capacity.
func NewEnc() *Enc { return &Enc{buf: make([]byte, 0, 4096)} }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// I32 appends an int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Marker appends a component sentinel. Decoders verify markers, so a
// misaligned or mismatched stream fails loudly at the component
// boundary instead of silently misdecoding the rest.
func (e *Enc) Marker(m uint32) { e.U32(m) }

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U64s appends a length-prefixed []uint64.
func (e *Enc) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// I64s appends a length-prefixed []int64.
func (e *Enc) I64s(v []int64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Enc) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I32(x)
	}
}

// U8s appends a length-prefixed []uint8.
func (e *Enc) U8s(v []uint8) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Bools appends a length-prefixed []bool.
func (e *Enc) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// Dec is a bounds-checked little-endian decoder with a sticky error:
// after the first failure every further read returns zero values and
// the error is reported by Err. Decoders never panic on truncated or
// garbage input.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over b. The slice is not copied.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Fail records an error (the first one sticks).
func (d *Dec) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// need reports whether n more bytes are available, recording an error
// if not.
func (d *Dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.Fail("truncated input: need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads a boolean, rejecting non-canonical encodings.
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.Fail("bad bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// I32 reads an int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Marker consumes a component sentinel and fails unless it matches.
func (d *Dec) Marker(want uint32) {
	at := d.off
	got := d.U32()
	if d.err == nil && got != want {
		d.Fail("bad marker at offset %d: got %#x, want %#x", at, got, want)
	}
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := int(d.U32())
	if d.err != nil || !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// length reads a slice length prefix and verifies it matches want —
// component state is decoded in place into live arrays, so a geometry
// mismatch is a configuration error, not a resize.
func (d *Dec) length(want int) bool {
	at := d.off
	n := int(d.U32())
	if d.err != nil {
		return false
	}
	if n != want {
		d.Fail("length mismatch at offset %d: encoded %d, live %d", at, n, want)
		return false
	}
	return true
}

// U64sInto decodes a []uint64 into dst, requiring equal length.
func (d *Dec) U64sInto(dst []uint64) {
	if !d.length(len(dst)) || !d.need(8*len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
	}
}

// I64sInto decodes a []int64 into dst, requiring equal length.
func (d *Dec) I64sInto(dst []int64) {
	if !d.length(len(dst)) || !d.need(8*len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
}

// I32sInto decodes a []int32 into dst, requiring equal length.
func (d *Dec) I32sInto(dst []int32) {
	if !d.length(len(dst)) || !d.need(4*len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
}

// U8sInto decodes a []uint8 into dst, requiring equal length.
func (d *Dec) U8sInto(dst []uint8) {
	if !d.length(len(dst)) || !d.need(len(dst)) {
		return
	}
	copy(dst, d.buf[d.off:d.off+len(dst)])
	d.off += len(dst)
}

// BoolsInto decodes a []bool into dst, requiring equal length.
func (d *Dec) BoolsInto(dst []bool) {
	if !d.length(len(dst)) || !d.need(len(dst)) {
		return
	}
	for i := range dst {
		b := d.buf[d.off]
		d.off++
		if b > 1 {
			d.Fail("bad bool byte %d at offset %d", b, d.off-1)
			return
		}
		dst[i] = b == 1
	}
}
