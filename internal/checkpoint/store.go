package checkpoint

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rampage/internal/metrics"
)

// Store is a content-addressed checkpoint store: an in-memory
// byte-budget LRU with optional disk spill. Entries are addressed by
// (warm-up prefix hash, reference count, finality); lookups ask for
// the newest checkpoint dominating a target reference budget. It is
// safe for concurrent use — sweep cells share one store.
type Store struct {
	mu      sync.Mutex
	budget  int64      // resident-byte budget; <= 0 means unlimited
	bytes   int64      // resident bytes
	ll      *list.List // *entry, front = most recently used
	entries map[string]*entry
	dir     string // spill directory; "" disables spilling
	svc     *metrics.ServiceStats
}

// entry is one stored checkpoint. Metadata stays in memory even when
// the encoded bytes have been spilled to disk, so dominance lookups
// never touch the filesystem.
type entry struct {
	key  string
	meta Meta
	mem  []byte        // encoded checkpoint; nil when spilled
	path string        // spill file; "" when resident only
	elem *list.Element // non-nil while resident in the LRU
}

// NewStore returns a store with the given resident-byte budget
// (<= 0 = unlimited) and spill directory ("" = evictions are dropped
// instead of spilled). svc may be nil; when set, the store counts
// hits, misses and evictions on it.
func NewStore(budgetBytes int64, dir string, svc *metrics.ServiceStats) *Store {
	return &Store{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*entry),
		dir:     dir,
		svc:     svc,
	}
}

// entryKey addresses one checkpoint within the store.
func entryKey(m Meta) string {
	return fmt.Sprintf("%s@%d/%t", m.Prefix, m.Refs, m.Final)
}

// Put stores a checkpoint. Re-putting an existing (prefix, refs,
// final) address refreshes its recency and keeps the first bytes —
// checkpoints are deterministic, so the payloads are identical.
func (s *Store) Put(c *Checkpoint) {
	enc := c.Encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	key := entryKey(c.Meta)
	if e, ok := s.entries[key]; ok {
		if e.elem != nil {
			s.ll.MoveToFront(e.elem)
		}
		return
	}
	e := &entry{key: key, meta: c.Meta, mem: enc}
	if s.budget > 0 && int64(len(enc)) > s.budget {
		// Larger than the whole budget: straight to disk, or refuse.
		if s.dir == "" {
			return
		}
		if s.spill(e) {
			s.entries[key] = e
		}
		return
	}
	s.entries[key] = e
	e.elem = s.ll.PushFront(e)
	s.bytes += int64(len(enc))
	s.evictOver()
}

// evictOver spills or drops least-recently-used residents until the
// resident bytes fit the budget. Caller holds the lock.
func (s *Store) evictOver() {
	for s.budget > 0 && s.bytes > s.budget {
		back := s.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		s.bytes -= int64(len(e.mem))
		e.elem = nil
		s.svc.Add(metrics.SvcCkptEvict, 1)
		if s.dir != "" && e.path == "" && s.spill(e) {
			e.mem = nil
			continue
		}
		if e.path == "" {
			delete(s.entries, e.key) // nowhere to spill: dropped
		} else {
			e.mem = nil // already on disk
		}
	}
}

// spill writes an entry's encoded bytes to the spill directory,
// reporting success. Failures leave the entry unspilled.
func (s *Store) spill(e *entry) bool {
	sum := sha256.Sum256([]byte(e.key))
	path := filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".ckpt")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, e.mem, 0o644); err != nil {
		return false
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return false
	}
	e.path = path
	return true
}

// usable classifies a stored checkpoint against a target reference
// budget (0 = run to end of workload):
//
//   - complete: restoring it IS the finished run. A final checkpoint
//     strictly below the budget qualifies (the from-scratch run would
//     have drained the workload, end-of-stream switch traces and all,
//     before reaching the budget); so does a non-final checkpoint at
//     exactly the budget (both stop at the budget check before any
//     end-of-stream handling). A final checkpoint at exactly the
//     budget does NOT qualify: the budgeted run stops before executing
//     the end-of-stream context switches the final state contains.
//   - resume: restoring it and running on reaches the target.
func usable(m Meta, maxRefs uint64) (complete, resume bool) {
	if maxRefs == 0 {
		if m.Final {
			return true, false
		}
		return false, true
	}
	if m.Final {
		return m.Refs < maxRefs, false
	}
	if m.Refs == maxRefs {
		return true, false
	}
	return false, m.Refs < maxRefs
}

// Nearest returns the best stored checkpoint for reaching maxRefs
// references under the given warm-up prefix: a complete answer when
// one exists, otherwise the resumable checkpoint with the most
// references already executed. ok is false when nothing helps (a cold
// run is required).
func (s *Store) Nearest(prefix string, maxRefs uint64) (c *Checkpoint, complete bool, ok bool) {
	s.mu.Lock()
	var best *entry
	var bestComplete bool
	for _, e := range s.entries {
		comp, res := usable(e.meta, maxRefs)
		if e.meta.Prefix != prefix || (!comp && !res) {
			continue
		}
		if best == nil ||
			(comp && !bestComplete) ||
			(comp == bestComplete && e.meta.Refs > best.meta.Refs) {
			best, bestComplete = e, comp
		}
	}
	if best == nil {
		s.mu.Unlock()
		s.svc.Add(metrics.SvcCkptMiss, 1)
		return nil, false, false
	}
	enc, err := s.load(best)
	s.mu.Unlock()
	if err != nil {
		s.svc.Add(metrics.SvcCkptMiss, 1)
		return nil, false, false
	}
	ck, err := Decode(enc)
	if err != nil {
		s.mu.Lock()
		s.drop(best)
		s.mu.Unlock()
		s.svc.Add(metrics.SvcCkptMiss, 1)
		return nil, false, false
	}
	s.svc.Add(metrics.SvcCkptHit, 1)
	return ck, bestComplete, true
}

// load returns an entry's encoded bytes, reading them back from the
// spill file and re-admitting them to the resident LRU when needed.
// Caller holds the lock.
func (s *Store) load(e *entry) ([]byte, error) {
	if e.mem != nil {
		if e.elem != nil {
			s.ll.MoveToFront(e.elem)
		}
		return e.mem, nil
	}
	enc, err := os.ReadFile(e.path)
	if err != nil {
		s.drop(e)
		return nil, err
	}
	if s.budget <= 0 || int64(len(enc)) <= s.budget {
		e.mem = enc
		e.elem = s.ll.PushFront(e)
		s.bytes += int64(len(enc))
		s.evictOver()
	}
	return enc, nil
}

// drop removes an entry entirely. Caller holds the lock.
func (s *Store) drop(e *entry) {
	if e.elem != nil {
		s.ll.Remove(e.elem)
		s.bytes -= int64(len(e.mem))
		e.elem = nil
	}
	delete(s.entries, e.key)
	if e.path != "" {
		os.Remove(e.path)
	}
}

// Peek reports whether a checkpoint usable for reaching maxRefs exists
// under the prefix, and how warm it is, without loading bytes, touching
// recency or counting a hit or miss. Sweep planners use it to order
// cells; the answer is advisory — a concurrent eviction can invalidate
// it before Nearest runs.
func (s *Store) Peek(prefix string, maxRefs uint64) (refs uint64, complete, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.meta.Prefix != prefix {
			continue
		}
		comp, res := usable(e.meta, maxRefs)
		if !comp && !res {
			continue
		}
		if !ok || (comp && !complete) || (comp == complete && e.meta.Refs > refs) {
			refs, complete, ok = e.meta.Refs, comp, true
		}
	}
	return refs, complete, ok
}

// Len returns the number of stored checkpoints (resident + spilled).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the resident (in-memory) byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
