package checkpoint

import "fmt"

// Component sentinel markers. Each serialized component opens with its
// marker so a stream that drifts out of alignment fails at the next
// boundary with a precise error. Values are arbitrary but fixed.
const (
	MarkCache     uint32 = 0xC0DE0001
	MarkVictim    uint32 = 0xC0DE0002
	MarkTLB       uint32 = 0xC0DE0003
	MarkPageTable uint32 = 0xC0DE0004
	MarkCore      uint32 = 0xC0DE0005
	MarkDRAM      uint32 = 0xC0DE0006
	MarkReport    uint32 = 0xC0DE0007
	MarkBaseline  uint32 = 0xC0DE0008
	MarkRAMpage   uint32 = 0xC0DE0009
	MarkAdaptive  uint32 = 0xC0DE000A
	MarkScheduler uint32 = 0xC0DE000B
	MarkEnd       uint32 = 0xC0DE00FF
)

// Meta identifies a checkpoint within the content-addressed store.
type Meta struct {
	// Prefix is the warm-up prefix hash: the canonical hash of every
	// configuration field that shapes machine state up to the capture
	// point (config sans reference budget, the run spec, and the
	// workload identity), salted with FormatVersion.
	Prefix string
	// Refs is the cumulative number of application references executed
	// at the capture point.
	Refs uint64
	// Final is true when the run drained its workload to end-of-stream
	// (rather than stopping at a reference budget). A final checkpoint
	// is a complete answer for any larger budget; a non-final one can
	// be resumed toward any budget at or beyond Refs.
	Final bool
}

// Checkpoint is one captured machine+scheduler state.
type Checkpoint struct {
	Meta Meta
	// System is the machine's report name, recorded for diagnostics and
	// cross-checked on restore.
	System string
	// Payload is the component-encoded state (see internal/sim).
	Payload []byte
}

// Encode serializes the checkpoint with its versioned header.
func (c *Checkpoint) Encode() []byte {
	e := NewEnc()
	e.U32(magic)
	e.U32(FormatVersion)
	e.String(c.Meta.Prefix)
	e.U64(c.Meta.Refs)
	e.Bool(c.Meta.Final)
	e.String(c.System)
	e.U32(uint32(len(c.Payload)))
	e.buf = append(e.buf, c.Payload...)
	e.Marker(MarkEnd)
	return e.Bytes()
}

// Decode parses an encoded checkpoint, rejecting truncated or corrupt
// input without panicking. Unknown format versions are refused —
// old checkpoints are invalidated, never misread.
func Decode(b []byte) (*Checkpoint, error) {
	d := NewDec(b)
	if m := d.U32(); d.Err() == nil && m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	if v := d.U32(); d.Err() == nil && v != FormatVersion {
		return nil, fmt.Errorf("checkpoint: format version %d, want %d", v, FormatVersion)
	}
	c := &Checkpoint{}
	c.Meta.Prefix = d.String()
	c.Meta.Refs = d.U64()
	c.Meta.Final = d.Bool()
	c.System = d.String()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() < n {
		return nil, fmt.Errorf("checkpoint: truncated payload: need %d bytes, have %d", n, d.Remaining())
	}
	c.Payload = make([]byte, n)
	copy(c.Payload, d.buf[d.off:d.off+n])
	d.off += n
	d.Marker(MarkEnd)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", d.Remaining())
	}
	return c, nil
}
