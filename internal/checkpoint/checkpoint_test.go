package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rampage/internal/metrics"
)

func mkCkpt(prefix string, refs uint64, final bool, payload []byte) *Checkpoint {
	return &Checkpoint{
		Meta:    Meta{Prefix: prefix, Refs: refs, Final: final},
		System:  "test-machine",
		Payload: payload,
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	for _, c := range []*Checkpoint{
		mkCkpt("abc123", 500_000, false, []byte{1, 2, 3, 0xFF}),
		mkCkpt("", 0, true, nil),
		mkCkpt("deadbeef", 1<<40, true, bytes.Repeat([]byte{0xAB}, 4096)),
	} {
		enc := c.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Meta != c.Meta || got.System != c.System || !bytes.Equal(got.Payload, c.Payload) {
			t.Errorf("round trip changed the checkpoint: got %+v want %+v", got, c)
		}
		if re := got.Encode(); !bytes.Equal(re, enc) {
			t.Error("re-encode is not byte-identical")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := mkCkpt("abc", 42, false, []byte{9, 9, 9}).Encode()

	// Every strict prefix must fail cleanly (truncation at any point).
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage is refused.
	if _, err := Decode(append(append([]byte{}, valid...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Bad magic and unknown format version are refused.
	bad := append([]byte{}, valid...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte{}, valid...)
	bad[4] ^= 0xFF // format version field
	if _, err := Decode(bad); err == nil {
		t.Error("unknown format version accepted")
	}
}

func TestUsableDominance(t *testing.T) {
	for _, tc := range []struct {
		name             string
		meta             Meta
		maxRefs          uint64
		complete, resume bool
	}{
		{"uncapped wants final", Meta{Refs: 100, Final: true}, 0, true, false},
		{"uncapped resumes non-final", Meta{Refs: 100, Final: false}, 0, false, true},
		{"final below budget is complete", Meta{Refs: 100, Final: true}, 200, true, false},
		{"final at budget unusable", Meta{Refs: 200, Final: true}, 200, false, false},
		{"final beyond budget unusable", Meta{Refs: 300, Final: true}, 200, false, false},
		{"non-final at budget is complete", Meta{Refs: 200, Final: false}, 200, true, false},
		{"non-final below budget resumes", Meta{Refs: 100, Final: false}, 200, false, true},
		{"non-final beyond budget unusable", Meta{Refs: 300, Final: false}, 200, false, false},
	} {
		comp, res := usable(tc.meta, tc.maxRefs)
		if comp != tc.complete || res != tc.resume {
			t.Errorf("%s: usable(%+v, %d) = (%t, %t), want (%t, %t)",
				tc.name, tc.meta, tc.maxRefs, comp, res, tc.complete, tc.resume)
		}
	}
}

func TestStoreNearestPicksWarmest(t *testing.T) {
	svc := &metrics.ServiceStats{}
	s := NewStore(0, "", svc)
	s.Put(mkCkpt("p", 100, false, []byte{1}))
	s.Put(mkCkpt("p", 300, false, []byte{3}))
	s.Put(mkCkpt("p", 200, false, []byte{2}))
	s.Put(mkCkpt("other", 400, false, []byte{4}))

	c, complete, ok := s.Nearest("p", 500)
	if !ok || complete || c.Meta.Refs != 300 {
		t.Fatalf("Nearest(p, 500) = (%+v, %t, %t), want the 300-ref resume", c, complete, ok)
	}
	// A final checkpoint below the budget beats any resume.
	s.Put(mkCkpt("p", 250, true, []byte{5}))
	if c, complete, ok = s.Nearest("p", 500); !ok || !complete || c.Meta.Refs != 250 {
		t.Fatalf("Nearest with a final answer = (%+v, %t, %t), want the complete 250", c, complete, ok)
	}
	// Unknown prefix misses.
	if _, _, ok = s.Nearest("nope", 500); ok {
		t.Error("unknown prefix produced a checkpoint")
	}
	if svc.Get(metrics.SvcCkptHit) != 2 || svc.Get(metrics.SvcCkptMiss) != 1 {
		t.Errorf("hit/miss = %d/%d, want 2/1",
			svc.Get(metrics.SvcCkptHit), svc.Get(metrics.SvcCkptMiss))
	}
}

func TestStoreLRUEvictsToDisk(t *testing.T) {
	dir := t.TempDir()
	svc := &metrics.ServiceStats{}
	payload := bytes.Repeat([]byte{7}, 256)
	one := mkCkpt("a", 1, false, payload)
	budget := int64(len(one.Encode())*2 + 1) // room for two residents

	s := NewStore(budget, dir, svc)
	s.Put(one)
	s.Put(mkCkpt("b", 1, false, payload))
	s.Put(mkCkpt("c", 1, false, payload)) // evicts "a" (LRU) to disk
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (spilled entries still count)", s.Len())
	}
	if s.Bytes() > budget {
		t.Errorf("resident bytes %d exceed budget %d", s.Bytes(), budget)
	}
	if svc.Get(metrics.SvcCkptEvict) != 1 {
		t.Errorf("evictions = %d, want 1", svc.Get(metrics.SvcCkptEvict))
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("spill files = %v, want exactly one", files)
	}
	// The spilled checkpoint is still served, byte-identical.
	c, _, ok := s.Nearest("a", 0)
	if !ok || !bytes.Equal(c.Payload, payload) {
		t.Fatalf("spilled checkpoint not restored: ok=%t", ok)
	}
	// A corrupt spill file is dropped on load, not served or kept.
	s2 := NewStore(budget, dir, nil)
	s2.Put(mkCkpt("x", 1, false, payload))
	s2.Put(mkCkpt("y", 1, false, payload))
	s2.Put(mkCkpt("z", 1, false, payload))
	files, _ = filepath.Glob(filepath.Join(dir, "*.ckpt"))
	for _, f := range files {
		os.WriteFile(f, []byte("garbage"), 0o644)
	}
	if _, _, ok := s2.Nearest("x", 0); ok {
		t.Error("corrupt spill file served")
	}
	if s2.Len() != 2 {
		t.Errorf("corrupt entry not dropped: Len = %d, want 2", s2.Len())
	}
}

func TestStoreDropInsteadOfSpill(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 256)
	one := mkCkpt("a", 1, false, payload)
	budget := int64(len(one.Encode()) + 1) // room for one resident
	s := NewStore(budget, "", nil)         // no spill directory
	s.Put(one)
	s.Put(mkCkpt("b", 1, false, payload)) // evicts and drops "a"
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (no spill dir: eviction drops)", s.Len())
	}
	if _, _, ok := s.Nearest("a", 0); ok {
		t.Error("dropped checkpoint still served")
	}
}

func TestStorePeekIsAdvisoryOnly(t *testing.T) {
	svc := &metrics.ServiceStats{}
	s := NewStore(0, "", svc)
	s.Put(mkCkpt("p", 100, false, []byte{1}))
	s.Put(mkCkpt("p", 50, true, []byte{2}))

	refs, complete, ok := s.Peek("p", 500)
	if !ok || !complete || refs != 50 {
		t.Errorf("Peek = (%d, %t, %t), want the complete 50", refs, complete, ok)
	}
	if refs, complete, ok = s.Peek("p", 100); !ok || !complete || refs != 100 {
		t.Errorf("Peek at-budget = (%d, %t, %t), want the complete 100", refs, complete, ok)
	}
	if _, _, ok = s.Peek("nope", 0); ok {
		t.Error("Peek found an unknown prefix")
	}
	if h, m := svc.Get(metrics.SvcCkptHit), svc.Get(metrics.SvcCkptMiss); h != 0 || m != 0 {
		t.Errorf("Peek counted hits/misses: %d/%d", h, m)
	}
}

// FuzzCheckpointRoundTrip drives Decode with arbitrary bytes: it must
// never panic, and any input it accepts must re-encode byte-identically
// (the codec has exactly one encoding per checkpoint).
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(mkCkpt("abc123", 500_000, false, []byte{1, 2, 3}).Encode())
	f.Add(mkCkpt("", 0, true, nil).Encode())
	f.Add(mkCkpt("ff00", 1<<40, true, bytes.Repeat([]byte{0xAB}, 64)).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x4B, 0x50, 0x52})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		re := c.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input re-encodes differently:\n in: %x\nout: %x", data, re)
		}
		c2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint rejected: %v", err)
		}
		if c2.Meta != c.Meta || c2.System != c.System || !bytes.Equal(c2.Payload, c.Payload) {
			t.Fatal("second decode disagrees with the first")
		}
	})
}
