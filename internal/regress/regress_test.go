package regress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDir locates the repo's committed golden documents.
const goldenDir = "../../testdata/golden"

func goldenFiles(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(goldenDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no goldens under %s", goldenDir)
	}
	return paths
}

// TestGoldensSelfCompare runs every committed golden against itself
// through each comparator entry point: all must report zero diffs.
func TestGoldensSelfCompare(t *testing.T) {
	for _, path := range goldenFiles(t) {
		diffs, err := CompareReportFiles(path, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(diffs) != 0 {
			t.Fatalf("%s differs from itself: %v", path, diffs)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		diffs, err = CompareReportBytes(raw, raw)
		if err != nil || len(diffs) != 0 {
			t.Fatalf("%s bytes self-compare = (%v, %v)", path, diffs, err)
		}
	}
	diffs, err := CompareReportDirs(goldenDir, goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("golden directory differs from itself: %v", diffs)
	}
}

// perturb decodes a document, applies edit, and re-encodes it.
func perturb(t *testing.T, path string, edit func(doc map[string]any)) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	edit(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPerturbedGoldenDiverges checks a single changed leaf in each
// golden produces a diff naming its path, and that diff counts are
// bounded by MaxDiffs.
func TestPerturbedGoldenDiverges(t *testing.T) {
	for _, path := range goldenFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := perturb(t, path, func(doc map[string]any) {
			doc["title"] = "tampered"
		})
		diffs, err := CompareReportBytes(raw, got)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(diffs) == 0 {
			t.Fatalf("%s: tampered title not detected", path)
		}
		found := false
		for _, d := range diffs {
			if strings.Contains(d, "$.title") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: diffs %v never name $.title", path, diffs)
		}
		if len(diffs) > MaxDiffs {
			t.Fatalf("%s: %d diffs exceed MaxDiffs", path, len(diffs))
		}
	}
}

// TestVersionMismatchIsHardError checks cross-version comparison
// refuses rather than diffing.
func TestVersionMismatchIsHardError(t *testing.T) {
	path := goldenFiles(t)[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := perturb(t, path, func(doc map[string]any) {
		doc["version"] = float64(999)
	})
	if _, err := CompareReportBytes(raw, got); err == nil || !strings.Contains(err.Error(), "schema version mismatch") {
		t.Fatalf("cross-version compare error = %v, want a schema version refusal", err)
	}
}

// TestCompareReportDirsMissingFile checks a one-sided document is a
// hard error in either direction, never a silent skip.
func TestCompareReportDirsMissingFile(t *testing.T) {
	a := t.TempDir()
	b := t.TempDir()
	doc := []byte(`{"version":1,"kind":"experiment"}`)
	for _, dir := range []string{a, b} {
		if err := os.WriteFile(filepath.Join(dir, "shared.json"), doc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(a, "only-golden.json"), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareReportDirs(a, b); err == nil || !strings.Contains(err.Error(), "candidate never produced it") {
		t.Fatalf("missing candidate error = %v", err)
	}
	if err := os.Remove(filepath.Join(a, "only-golden.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(b, "only-candidate.json"), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareReportDirs(a, b); err == nil || !strings.Contains(err.Error(), "no golden to compare against") {
		t.Fatalf("missing golden error = %v", err)
	}
}

// TestCompareBench covers the tolerance comparison: regressions beyond
// tol fail, improvements and new benchmarks pass, subset mode skips
// missing entries, and disjoint name sets are refused.
func TestCompareBench(t *testing.T) {
	golden := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkA", NsPerOp: 90}, // repeated samples fold to the min
		{Name: "BenchmarkB", NsPerOp: 200},
	}
	ok := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 93},  // +3.3% within 5%
		{Name: "BenchmarkB", NsPerOp: 150}, // improvement
		{Name: "BenchmarkC", NsPerOp: 1},   // new benchmark: fine
	}
	diffs, err := CompareBench(golden, ok, 0.05, false)
	if err != nil || len(diffs) != 0 {
		t.Fatalf("within-tolerance compare = (%v, %v)", diffs, err)
	}

	slow := []BenchResult{
		{Name: "BenchmarkA", NsPerOp: 120}, // +33% over the 90 floor
		{Name: "BenchmarkB", NsPerOp: 200},
	}
	diffs, err = CompareBench(golden, slow, 0.05, false)
	if err != nil || len(diffs) != 1 || !strings.Contains(diffs[0], "BenchmarkA") {
		t.Fatalf("regression compare = (%v, %v)", diffs, err)
	}

	partial := []BenchResult{{Name: "BenchmarkA", NsPerOp: 90}}
	if diffs, err = CompareBench(golden, partial, 0.05, false); err != nil || len(diffs) != 1 {
		t.Fatalf("missing benchmark without -subset = (%v, %v)", diffs, err)
	}
	if diffs, err = CompareBench(golden, partial, 0.05, true); err != nil || len(diffs) != 0 {
		t.Fatalf("missing benchmark with -subset = (%v, %v)", diffs, err)
	}

	disjoint := []BenchResult{{Name: "BenchmarkZ", NsPerOp: 1}}
	if _, err = CompareBench(golden, disjoint, 0.05, false); err == nil || !strings.Contains(err.Error(), "different tags?") {
		t.Fatalf("disjoint compare error = %v, want a refusal", err)
	}
}

func TestIsDir(t *testing.T) {
	if !IsDir(t.TempDir()) {
		t.Error("IsDir(tempdir) = false")
	}
	if IsDir(filepath.Join(t.TempDir(), "nope")) {
		t.Error("IsDir(missing) = true")
	}
}
