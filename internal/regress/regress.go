// Package regress compares experiment result documents and benchmark
// snapshots against committed goldens. It is the comparator behind the
// tools/regress CLI (which stays a thin wrapper) and the server's
// POST /v1/compare endpoint, so the gate logic — exact report diffs
// with version checking, tolerance-based bench comparison, hard errors
// for missing files — lives in exactly one place.
//
// Throughout, the first argument is the golden (want) and the second
// the candidate (got). A nil diff slice means the documents match; a
// non-nil error means the comparison itself was impossible (malformed
// input, missing file, mismatched schema version) and should be
// treated as a hard failure, not a divergence list.
package regress

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

func loadJSON(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// IsDir reports whether the path names a directory — the CLI uses it
// to pick between file and directory report mode.
func IsDir(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// CompareReportDirs diffs every *.json under two directories. The file
// sets must be identical: a document present on only one side is a
// hard error, not a skip — a deleted golden or a missing candidate
// must fail the gate, never silently shrink it.
func CompareReportDirs(goldenDir, gotDir string) ([]string, error) {
	goldenFiles, err := jsonSet(goldenDir)
	if err != nil {
		return nil, err
	}
	gotFiles, err := jsonSet(gotDir)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(goldenFiles))
	for name := range goldenFiles {
		names[name] = true
	}
	for name := range gotFiles {
		names[name] = true
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no *.json documents under %s or %s", goldenDir, gotDir)
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	var diffs []string
	for _, name := range ordered {
		switch {
		case !goldenFiles[name]:
			return nil, fmt.Errorf("%s exists only in %s — no golden to compare against (stale or deleted golden?)", name, gotDir)
		case !gotFiles[name]:
			return nil, fmt.Errorf("%s exists only in %s — candidate never produced it", name, goldenDir)
		}
		fileDiffs, err := CompareReportFiles(filepath.Join(goldenDir, name), filepath.Join(gotDir, name))
		if err != nil {
			return nil, err
		}
		for _, d := range fileDiffs {
			diffs = append(diffs, name+": "+d)
		}
	}
	return diffs, nil
}

// jsonSet lists the *.json file names directly under dir.
func jsonSet(dir string) (map[string]bool, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, de := range dirents {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".json" {
			set[de.Name()] = true
		}
	}
	return set, nil
}

// CompareReportFiles diffs two simulator JSON documents exactly.
func CompareReportFiles(goldenPath, gotPath string) ([]string, error) {
	var golden, got any
	if err := loadJSON(goldenPath, &golden); err != nil {
		return nil, err
	}
	if err := loadJSON(gotPath, &got); err != nil {
		return nil, err
	}
	return CompareReportValues(golden, got)
}

// CompareReportBytes diffs two serialized simulator JSON documents
// exactly — the in-memory form of CompareReportFiles, used by the
// server's compare endpoint.
func CompareReportBytes(golden, got []byte) ([]string, error) {
	var gv, cv any
	if err := json.Unmarshal(golden, &gv); err != nil {
		return nil, fmt.Errorf("golden document: %w", err)
	}
	if err := json.Unmarshal(got, &cv); err != nil {
		return nil, fmt.Errorf("candidate document: %w", err)
	}
	return CompareReportValues(gv, cv)
}

// CompareReportValues diffs two decoded JSON documents exactly, after
// refusing a comparison across schema versions.
func CompareReportValues(golden, got any) ([]string, error) {
	if gv, ok := version(golden); ok {
		if cv, ok := version(got); ok && gv != cv {
			return nil, fmt.Errorf("schema version mismatch: golden v%d, got v%d — regenerate the golden", gv, cv)
		}
	}
	return diffValues("$", golden, got, nil), nil
}

// version extracts a document's schema version when present.
func version(doc any) (int, bool) {
	m, ok := doc.(map[string]any)
	if !ok {
		return 0, false
	}
	v, ok := m["version"].(float64)
	return int(v), ok
}

// MaxDiffs bounds a diff report so a wholesale divergence stays
// readable.
const MaxDiffs = 50

// diffValues recursively compares two decoded JSON values, appending
// human-readable mismatches with their paths.
func diffValues(path string, want, got any, diffs []string) []string {
	if len(diffs) >= MaxDiffs {
		return diffs
	}
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return append(diffs, fmt.Sprintf("%s: golden is an object, got %T", path, got))
		}
		keys := make([]string, 0, len(w))
		for k := range w {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				diffs = append(diffs, fmt.Sprintf("%s.%s: missing in candidate", path, k))
				continue
			}
			diffs = diffValues(path+"."+k, w[k], gv, diffs)
		}
		for k := range g {
			if _, ok := w[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s.%s: not in golden", path, k))
			}
		}
		return diffs
	case []any:
		g, ok := got.([]any)
		if !ok {
			return append(diffs, fmt.Sprintf("%s: golden is an array, got %T", path, got))
		}
		if len(w) != len(g) {
			return append(diffs, fmt.Sprintf("%s: length %d, got %d", path, len(w), len(g)))
		}
		for i := range w {
			diffs = diffValues(fmt.Sprintf("%s[%d]", path, i), w[i], g[i], diffs)
		}
		return diffs
	default:
		if !reflect.DeepEqual(want, got) {
			diffs = append(diffs, fmt.Sprintf("%s: golden %v, got %v", path, want, got))
		}
		return diffs
	}
}

// BenchResult is the subset of a tools/benchjson entry the bench mode
// compares.
type BenchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// bestByName folds repeated -count samples to each benchmark's minimum
// ns/op, preserving first-seen order.
func bestByName(results []BenchResult) ([]string, map[string]float64) {
	best := make(map[string]float64)
	var order []string
	for _, r := range results {
		if v, ok := best[r.Name]; !ok || r.NsPerOp < v {
			if !ok {
				order = append(order, r.Name)
			}
			best[r.Name] = r.NsPerOp
		}
	}
	return order, best
}

// CompareBench checks every golden benchmark exists in the candidate
// and did not regress beyond tol (relative). New benchmarks in the
// candidate are fine; improvements are fine. With subset, golden
// benchmarks absent from the candidate are skipped (the candidate ran
// a filtered -bench pattern) instead of failing.
//
// Snapshots with zero benchmark names in common are refused outright:
// tolerance comparison of disjoint name sets either fails on every
// golden entry (noise) or, under -subset, vacuously passes — both mean
// the two files almost certainly came from different benchmark tags.
func CompareBench(golden, got []BenchResult, tol float64, subset bool) ([]string, error) {
	order, want := bestByName(golden)
	_, have := bestByName(got)
	overlap := 0
	for _, name := range order {
		if _, ok := have[name]; ok {
			overlap++
		}
	}
	if overlap == 0 {
		return nil, fmt.Errorf("no benchmark names in common (golden has %d, candidate %d) — different tags? refusing a comparison that cannot detect regressions", len(want), len(have))
	}
	var diffs []string
	for _, name := range order {
		g, ok := have[name]
		if !ok {
			if !subset {
				diffs = append(diffs, fmt.Sprintf("%s: missing from candidate", name))
			}
			continue
		}
		w := want[name]
		if w <= 0 {
			continue
		}
		if rel := g/w - 1; rel > tol {
			diffs = append(diffs, fmt.Sprintf("%s: %.0f ns/op vs golden %.0f (%+.1f%% > %+.1f%% allowed)",
				name, g, w, 100*rel, 100*tol))
		}
	}
	return diffs, nil
}

// CompareBenchFiles is CompareBench over two snapshot files, refusing
// a nonsensical tolerance or an empty golden.
func CompareBenchFiles(goldenPath, gotPath string, tol float64, subset bool) ([]string, error) {
	if tol < 0 || math.IsNaN(tol) {
		return nil, fmt.Errorf("bad -tol %v", tol)
	}
	var golden, got []BenchResult
	if err := loadJSON(goldenPath, &golden); err != nil {
		return nil, err
	}
	if err := loadJSON(gotPath, &got); err != nil {
		return nil, err
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries", goldenPath)
	}
	return CompareBench(golden, got, tol, subset)
}
