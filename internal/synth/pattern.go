package synth

import (
	"fmt"

	"rampage/internal/xrand"
)

// Pattern names a data access pattern within one memory region. The
// patterns cover the locality classes that distinguish the SPEC92 and
// utility programs of Table 2: dense array sweeps, strided sweeps,
// uniformly random scatter (hash tables), hot/cold skewed access
// (symbol tables), serialized pointer chasing (linked structures) and
// stack-frame access.
type Pattern uint8

const (
	// Sequential walks the region byte-block by byte-block with a fixed
	// element size, wrapping at the end — a dense array sweep.
	Sequential Pattern = iota
	// Strided walks the region with a configurable stride — a
	// column-major or blocked matrix sweep.
	Strided
	// Random touches uniformly random elements of the region — hash
	// table probing with no locality beyond the element.
	Random
	// HotCold touches a small hot subset of the region most of the time
	// and the remainder occasionally — skewed symbol-table access.
	HotCold
	// PointerChase jumps to a pseudo-random successor determined by the
	// current position, modeling linked-list traversal: successive
	// addresses are decorrelated but the walk revisits the same cycle
	// of elements.
	PointerChase
	// Stack accesses wander near a moving top-of-stack with small
	// offsets — call-frame locals.
	Stack
)

// String returns the pattern's name.
func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case HotCold:
		return "hotcold"
	case PointerChase:
		return "chase"
	case Stack:
		return "stack"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Region describes one data region of a synthetic program's address
// space and how it is accessed.
type Region struct {
	// Name labels the region in dumps ("weights", "hashtab", ...).
	Name string
	// Size is the region's extent in bytes. Scaled by Profile scaling.
	Size uint64
	// Weight is the relative probability that a data reference goes to
	// this region.
	Weight float64
	// Pattern selects the access pattern.
	Pattern Pattern
	// Stride is the step in bytes for Strided (ignored otherwise; a
	// zero stride defaults to Elem).
	Stride uint64
	// Elem is the element size in bytes (defaults to 8). Consecutive
	// Sequential accesses advance by Elem.
	Elem uint64
	// StoreFrac is the fraction of references to this region that are
	// stores.
	StoreFrac float64
	// HotFrac is, for HotCold, the fraction of the region that is hot
	// (default 1/16); HotProb is the probability an access goes to the
	// hot subset (default 0.9).
	HotFrac, HotProb float64
}

// regionState is the per-run cursor state for a region.
type regionState struct {
	spec   Region
	base   uint64 // virtual base address
	size   uint64 // scaled size, aligned to elem
	elem   uint64
	stride uint64
	cursor uint64 // offset within region
	depth  uint64 // Stack: current depth in bytes
}

func newRegionState(spec Region, base, scaledSize uint64) *regionState {
	elem := spec.Elem
	if elem == 0 {
		elem = 8
	}
	stride := spec.Stride
	if stride == 0 {
		stride = elem
	}
	size := scaledSize
	if size < 4*elem {
		size = 4 * elem
	}
	size = size - size%elem
	return &regionState{spec: spec, base: base, size: size, elem: elem, stride: stride}
}

// nextOffset advances the region cursor per its pattern and returns the
// offset of the next access within the region.
func (rs *regionState) nextOffset(r *xrand.RNG) uint64 {
	n := rs.size / rs.elem // number of elements
	switch rs.spec.Pattern {
	case Sequential:
		off := rs.cursor
		rs.cursor += rs.elem
		if rs.cursor >= rs.size {
			rs.cursor = 0
		}
		return off
	case Strided:
		off := rs.cursor
		rs.cursor += rs.stride
		if rs.cursor >= rs.size {
			// Start the next column: shift the origin by one element.
			rs.cursor = (rs.cursor + rs.elem) % rs.stride
		}
		return off
	case Random:
		return r.Uintn(n) * rs.elem
	case HotCold:
		hotFrac := rs.spec.HotFrac
		if hotFrac == 0 {
			hotFrac = 1.0 / 16
		}
		hotProb := rs.spec.HotProb
		if hotProb == 0 {
			hotProb = 0.93
		}
		hotElems := uint64(float64(n) * hotFrac)
		if hotElems == 0 {
			hotElems = 1
		}
		if r.Chance(hotProb) {
			return r.Uintn(hotElems) * rs.elem
		}
		return r.Uintn(n) * rs.elem
	case PointerChase:
		// The successor of element i is a fixed pseudo-random function
		// of i, so the walk follows the same linked structure each lap.
		// Real linked structures have allocation locality -- nodes
		// allocated together link to one another -- so 7/8 of links
		// stay within a 64-element neighbourhood and 1/8 jump anywhere.
		cur := rs.cursor / rs.elem
		h := xrand.Mix(cur*0x9E3779B97F4A7C15 + 0x1234567)
		var next uint64
		if h%8 != 0 && n > 64 {
			next = (cur &^ 63) + (h>>16)%64
			if next >= n {
				next = h % n
			}
		} else {
			next = (h >> 16) % n
		}
		rs.cursor = next * rs.elem
		return cur * rs.elem
	case Stack:
		// Push/pop with small biased random walk; access near the top.
		frame := rs.elem * 8
		if r.Chance(0.5) && rs.depth+frame < rs.size {
			rs.depth += frame
		} else if rs.depth >= frame {
			rs.depth -= frame
		}
		off := rs.depth + r.Uintn(8)*rs.elem
		if off >= rs.size {
			off = rs.size - rs.elem
		}
		return off
	default:
		return 0
	}
}
