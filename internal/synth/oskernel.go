package synth

import (
	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// Kernel builds the operating-system reference traces that the paper
// interleaves with the benchmark workload:
//
//   - the TLB-miss handler, which walks the inverted page table
//     (§2.2–2.3: a hash probe plus collision-chain loads);
//   - the page-fault handler, which runs the clock replacement scan
//     and updates the page table (§4.5);
//   - the context-switch code, "approximately 400 references per
//     context switch ... based on a standard textbook algorithm"
//     (§4.6).
//
// The builders take the *data* addresses the handler touches (actual
// page-table entries, chosen by the page-table model) and wrap them in
// the handler's instruction fetches and bookkeeping accesses, so the
// simulated cache sees a faithful mix of OS code and data traffic.
//
// Kernel virtual layout: handler code and private data live in a
// reserved kernel range. In the RAMpage hierarchy this range is pinned
// in the SRAM main memory (so handlers never fault to DRAM, §2.3); in
// the baseline it is ordinary cacheable memory.
const (
	// KernelBase is the start of the kernel virtual range.
	KernelBase = 0xF000_0000
	// Handler code footprints within the kernel range.
	tlbHandlerCode   = KernelBase + 0x0000 // 256 B loop
	tlbHandlerSize   = 256
	faultHandlerCode = KernelBase + 0x0400 // 1 KB
	faultHandlerSize = 1024
	switchCode       = KernelBase + 0x1000 // 2 KB
	switchCodeSize   = 2048
	// KernelDataBase holds scheduler queues and process control blocks.
	KernelDataBase = KernelBase + 0x2000
	pcbSize        = 512 // bytes of PCB state saved/restored per switch
	maxPCBs        = 32  // PCB slots; PIDs wrap beyond this
	queueBase      = KernelDataBase + maxPCBs*pcbSize
	// KernelFixedBytes is the span of the fixed kernel region (handler
	// code, PCBs, scheduler queues). The inverted page table is placed
	// immediately after it; together they form the pinned operating-
	// system reservation of §4.5.
	KernelFixedBytes = 0x8000
)

// Kernel is a builder for OS reference traces. It is deterministic for
// a given seed and safe to reuse across events; it is not safe for
// concurrent use.
type Kernel struct {
	rng *xrand.RNG
}

// NewKernel returns a Kernel with the given deterministic seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: xrand.New(seed ^ 0xBADC0FFEE)}
}

// RNGState exposes the kernel's random state for checkpointing (the
// context-switch queue walk consumes random numbers, so mid-run state
// must survive a save/restore to keep the stream bit-identical).
func (k *Kernel) RNGState() uint64 { return k.rng.State() }

// SetRNGState restores a state captured with RNGState.
func (k *Kernel) SetRNGState(s uint64) { k.rng.SetState(s) }

// kref makes a kernel-tagged reference.
func kref(kind mem.RefKind, addr uint64) mem.Ref {
	return mem.Ref{PID: mem.KernelPID, Kind: kind, Addr: mem.VAddr(addr)}
}

// appendCode appends n sequential instruction fetches from the handler
// code region starting at base (wrapping within size).
func appendCode(dst []mem.Ref, base, size uint64, start, n int) []mem.Ref {
	for i := 0; i < n; i++ {
		off := uint64((start+i)*4) % size
		dst = append(dst, kref(mem.IFetch, base+off))
	}
	return dst
}

// AppendTLBMiss appends the TLB-miss handler trace: a short prologue,
// one load per page-table entry probed (the hash bucket and any
// collision-chain entries), and an epilogue that refills the TLB.
// entryAddrs are the virtual addresses of the inverted-page-table
// entries the walk touches, in probe order.
func (k *Kernel) AppendTLBMiss(dst []mem.Ref, entryAddrs []uint64) []mem.Ref {
	// Prologue: save state, compute the hash (~10 instructions).
	dst = appendCode(dst, tlbHandlerCode, tlbHandlerSize, 0, 10)
	pc := 10
	for _, ea := range entryAddrs {
		// Compare tag, follow chain (~3 instructions per probe).
		dst = append(dst, kref(mem.Load, ea))
		dst = appendCode(dst, tlbHandlerCode, tlbHandlerSize, pc, 3)
		pc += 3
	}
	// Epilogue: write the TLB entry, restore, return (~8 instructions).
	dst = appendCode(dst, tlbHandlerCode, tlbHandlerSize, pc, 8)
	return dst
}

// AppendPageFault appends the page-fault handler trace: a longer
// prologue, a load per clock-scan probe (scanAddrs: the page-table
// entries whose use bits the clock hand examines and clears — each is
// a read-modify-write), stores that rewrite the victim's and the new
// page's entries (updateAddrs), and an epilogue. The DRAM transfer
// itself is timed by the simulator, not represented here.
func (k *Kernel) AppendPageFault(dst []mem.Ref, scanAddrs, updateAddrs []uint64) []mem.Ref {
	dst = appendCode(dst, faultHandlerCode, faultHandlerSize, 0, 20)
	pc := 20
	for _, sa := range scanAddrs {
		dst = append(dst, kref(mem.Load, sa))
		dst = append(dst, kref(mem.Store, sa)) // clear the use bit
		dst = appendCode(dst, faultHandlerCode, faultHandlerSize, pc, 4)
		pc += 4
	}
	for _, ua := range updateAddrs {
		dst = append(dst, kref(mem.Load, ua))
		dst = append(dst, kref(mem.Store, ua))
		dst = appendCode(dst, faultHandlerCode, faultHandlerSize, pc, 3)
		pc += 3
	}
	dst = appendCode(dst, faultHandlerCode, faultHandlerSize, pc, 15)
	return dst
}

// AppendContextSwitch appends the context-switch trace: roughly 400
// references per §4.6 — register/PCB save for the outgoing process,
// scheduler queue manipulation, and PCB restore for the incoming
// process. PIDs select the PCB addresses so repeated switches between
// the same processes reuse the same cache lines.
func (k *Kernel) AppendContextSwitch(dst []mem.Ref, oldPID, newPID mem.PID) []mem.Ref {
	oldPCB := KernelDataBase + uint64(oldPID%maxPCBs)*pcbSize
	newPCB := KernelDataBase + uint64(newPID%maxPCBs)*pcbSize
	queues := uint64(queueBase)

	// Save the outgoing context: ~56 store/ifetch pairs.
	pc := 0
	for i := 0; i < 56; i++ {
		dst = appendCode(dst, switchCode, switchCodeSize, pc, 2)
		pc += 2
		dst = append(dst, kref(mem.Store, oldPCB+uint64(i*8)%pcbSize))
	}
	// Scheduler: walk the ready queue (~20 loads with some bookkeeping).
	for i := 0; i < 20; i++ {
		dst = appendCode(dst, switchCode, switchCodeSize, pc, 3)
		pc += 3
		dst = append(dst, kref(mem.Load, queues+k.rng.Uintn(64)*8))
	}
	// Restore the incoming context: ~56 load/ifetch pairs.
	for i := 0; i < 56; i++ {
		dst = appendCode(dst, switchCode, switchCodeSize, pc, 2)
		pc += 2
		dst = append(dst, kref(mem.Load, newPCB+uint64(i*8)%pcbSize))
	}
	return dst
}

// ContextSwitchRefCount returns the length of one context-switch trace
// (for budgeting; the paper quotes ~400).
func ContextSwitchRefCount() int {
	k := NewKernel(0)
	return len(k.AppendContextSwitch(nil, 0, 1))
}

// AppendThreadSwitch appends a lightweight thread-switch trace: the
// §3.2/§6.3 multithreading extension, where "a cheaper mechanism for
// context switching ... would make better use of the relatively small
// miss cost of a page fault to DRAM". Only a register window and a
// thread pointer move — roughly 40 references instead of ~400: a short
// code burst plus 8 stores (outgoing registers) and 8 loads (incoming).
func (k *Kernel) AppendThreadSwitch(dst []mem.Ref, oldPID, newPID mem.PID) []mem.Ref {
	oldTCB := KernelDataBase + uint64(oldPID%maxPCBs)*pcbSize
	newTCB := KernelDataBase + uint64(newPID%maxPCBs)*pcbSize
	pc := 0
	for i := 0; i < 8; i++ {
		dst = appendCode(dst, switchCode, switchCodeSize, pc, 1)
		pc++
		dst = append(dst, kref(mem.Store, oldTCB+uint64(i*8)))
	}
	for i := 0; i < 8; i++ {
		dst = appendCode(dst, switchCode, switchCodeSize, pc, 1)
		pc++
		dst = append(dst, kref(mem.Load, newTCB+uint64(i*8)))
	}
	dst = appendCode(dst, switchCode, switchCodeSize, pc, 8)
	return dst
}

// ThreadSwitchRefCount returns the length of one thread-switch trace.
func ThreadSwitchRefCount() int {
	k := NewKernel(0)
	return len(k.AppendThreadSwitch(nil, 0, 1))
}
