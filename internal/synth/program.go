package synth

import (
	"fmt"
	"io"

	"rampage/internal/mem"
	"rampage/internal/xrand"
)

// Profile describes one synthetic benchmark: its published reference
// mix from Table 2 of the paper, its instruction footprint, and the
// data regions it touches. Profiles are value types; generating from a
// profile never mutates it.
type Profile struct {
	// Name is the Table 2 program name (e.g. "compress").
	Name string
	// Description matches the Table 2 description column.
	Description string
	// IFetchMillions and TotalMillions are the Table 2 columns:
	// instruction fetches and total references, in millions, for the
	// full-scale trace.
	IFetchMillions float64
	TotalMillions  float64
	// CodeBytes is the instruction footprint at full scale.
	CodeBytes uint64
	// HotCodeFrac is the fraction of the code containing the hot loops
	// (defaults to 1/8); LoopMeanIter is the mean loop trip count
	// (defaults to 16); LoopMeanBody is the mean loop body size in
	// bytes (defaults to 128).
	HotCodeFrac  float64
	LoopMeanIter float64
	LoopMeanBody float64
	// Regions are the data regions. Weights are relative.
	Regions []Region
	// Phases optionally divides the run into program phases, each with
	// its own per-region weight vector (real programs move between an
	// input phase, a compute phase, an output phase, ...). Empty means
	// one phase using the Regions' own weights. Phase fractions are
	// normalized over the run.
	Phases []Phase
}

// Phase is one program phase: a fraction of the run during which the
// given per-region weights replace the profiles' defaults. A zero
// weight silences a region for the phase.
type Phase struct {
	// Frac is the phase's share of the run (relative; normalized).
	Frac float64
	// Weights has one entry per profile region.
	Weights []float64
}

// IFetchFrac returns the fraction of references that are instruction
// fetches.
func (p Profile) IFetchFrac() float64 {
	if p.TotalMillions == 0 {
		return 1
	}
	return p.IFetchMillions / p.TotalMillions
}

// Refs returns the number of references a generator with the given
// scale produces.
func (p Profile) Refs(scale float64) uint64 {
	return uint64(p.TotalMillions * 1e6 * scale)
}

// Options configures trace generation from a Profile.
type Options struct {
	// Seed selects the deterministic random stream. The profile name is
	// mixed in, so the same seed may be shared across benchmarks.
	Seed uint64
	// RefScale multiplies the reference count; SizeScale multiplies all
	// footprint sizes (code and data regions). 1.0 is the paper's full
	// scale; the default 0 means 1.0 for both. They are independent so
	// the harness can scale memory capacities and trace lengths by
	// different factors while keeping footprint-to-capacity ratios
	// faithful.
	RefScale  float64
	SizeScale float64
	// Scale, when non-zero, sets both RefScale and SizeScale — a
	// convenience for proportional scaling.
	Scale float64
	// PID tags the generated references (default 0; interleaving
	// retags).
	PID mem.PID
}

// refScale and sizeScale resolve the effective factors.
func (o Options) refScale() float64 {
	if o.Scale != 0 {
		return o.Scale
	}
	if o.RefScale != 0 {
		return o.RefScale
	}
	return 1.0
}

func (o Options) sizeScale() float64 {
	if o.Scale != 0 {
		return o.Scale
	}
	if o.SizeScale != 0 {
		return o.SizeScale
	}
	return 1.0
}

// Virtual address space layout for synthetic programs. The layout is
// shared by all processes — physical tagging in the simulated caches
// plus per-process translation keeps them distinct, exactly as a real
// multiprogrammed system would.
const (
	codeBase    = 0x0040_0000
	dataBase    = 0x1000_0000
	regionAlign = 1 << 22 // regions start on 4MB virtual boundaries
)

// Generator produces a deterministic reference stream for one profile.
// It implements trace.Reader.
type Generator struct {
	prof     Profile
	pid      mem.PID
	rng      *xrand.RNG
	left     uint64
	dataFrac float64

	regions   []*regionState
	weightSum float64
	weights   []float64 // current per-region weights (phase-dependent)

	total       uint64
	phaseEnds   []uint64    // absolute emitted-reference phase boundaries
	phaseWeight [][]float64 // per-phase weight vectors
	phaseIdx    int

	codeSize  uint64
	pc        uint64 // offset within code
	loopStart uint64
	loopEnd   uint64
	iterLeft  uint64

	hotCodeFrac  float64
	loopMeanIter float64
	loopMeanBody float64
}

// NewGenerator builds a Generator for profile p. It returns an error
// for degenerate profiles (no references, no regions with positive
// weight when data references are required).
func NewGenerator(p Profile, opts Options) (*Generator, error) {
	refScale, sizeScale := opts.refScale(), opts.sizeScale()
	if refScale < 0 || sizeScale < 0 {
		return nil, fmt.Errorf("synth: negative scale (refs %g, sizes %g)", refScale, sizeScale)
	}
	total := p.Refs(refScale)
	if total == 0 {
		return nil, fmt.Errorf("synth: profile %q yields zero references at scale %g", p.Name, refScale)
	}
	g := &Generator{
		prof:         p,
		pid:          opts.PID,
		rng:          xrand.New(opts.Seed ^ hashName(p.Name)),
		left:         total,
		total:        total,
		dataFrac:     1 - p.IFetchFrac(),
		hotCodeFrac:  defaultF(p.HotCodeFrac, 1.0/8),
		loopMeanIter: defaultF(p.LoopMeanIter, 16),
		loopMeanBody: defaultF(p.LoopMeanBody, 128),
	}
	g.codeSize = uint64(float64(p.CodeBytes) * sizeScale)
	if g.codeSize < 1024 {
		g.codeSize = 1024
	}
	g.codeSize = mem.AlignUp(g.codeSize, 64)

	base := uint64(dataBase)
	for _, spec := range p.Regions {
		scaled := uint64(float64(spec.Size) * sizeScale)
		rs := newRegionState(spec, base, scaled)
		g.regions = append(g.regions, rs)
		g.weightSum += spec.Weight
		base = mem.AlignUp(base+rs.size+regionAlign, regionAlign)
	}
	if g.dataFrac > 0 && g.weightSum <= 0 {
		return nil, fmt.Errorf("synth: profile %q needs data regions with positive weight", p.Name)
	}
	if err := g.buildPhases(p, total); err != nil {
		return nil, err
	}
	g.newLoop()
	return g, nil
}

// buildPhases validates the phase schedule and sets the initial weight
// vector.
func (g *Generator) buildPhases(p Profile, total uint64) error {
	base := make([]float64, len(p.Regions))
	for i, r := range p.Regions {
		base[i] = r.Weight
	}
	if len(p.Phases) == 0 {
		g.weights = base
		return nil
	}
	var fracSum float64
	for i, ph := range p.Phases {
		if len(ph.Weights) != len(p.Regions) {
			return fmt.Errorf("synth: profile %q phase %d has %d weights for %d regions",
				p.Name, i, len(ph.Weights), len(p.Regions))
		}
		if ph.Frac <= 0 {
			return fmt.Errorf("synth: profile %q phase %d has non-positive fraction", p.Name, i)
		}
		var sum float64
		for _, w := range ph.Weights {
			if w < 0 {
				return fmt.Errorf("synth: profile %q phase %d has a negative weight", p.Name, i)
			}
			sum += w
		}
		if g.dataFrac > 0 && sum <= 0 {
			return fmt.Errorf("synth: profile %q phase %d silences every region", p.Name, i)
		}
		fracSum += ph.Frac
	}
	var acc float64
	g.phaseEnds = make([]uint64, len(p.Phases))
	g.phaseWeight = make([][]float64, len(p.Phases))
	for i, ph := range p.Phases {
		acc += ph.Frac
		g.phaseEnds[i] = uint64(float64(total) * acc / fracSum)
		g.phaseWeight[i] = ph.Weights
	}
	g.phaseEnds[len(p.Phases)-1] = total // absorb rounding
	g.setPhase(0)
	return nil
}

// setPhase installs phase i's weight vector.
func (g *Generator) setPhase(i int) {
	g.phaseIdx = i
	g.weights = g.phaseWeight[i]
	g.weightSum = 0
	for _, w := range g.weights {
		g.weightSum += w
	}
}

// advancePhase moves to the next phase when the emitted count crosses
// a boundary.
func (g *Generator) advancePhase() {
	if g.phaseEnds == nil {
		return
	}
	emitted := g.total - g.left
	for g.phaseIdx < len(g.phaseEnds)-1 && emitted >= g.phaseEnds[g.phaseIdx] {
		g.setPhase(g.phaseIdx + 1)
	}
}

func defaultF(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

// hashName mixes a profile name into the seed so equal seeds give
// independent streams per benchmark.
func hashName(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// Remaining returns the number of references still to be generated.
func (g *Generator) Remaining() uint64 { return g.left }

// Next implements trace.Reader.
func (g *Generator) Next() (mem.Ref, error) {
	if g.left == 0 {
		return mem.Ref{}, io.EOF
	}
	g.advancePhase()
	g.left--
	if g.rng.Chance(g.dataFrac) {
		return g.nextData(), nil
	}
	return g.nextIFetch(), nil
}

// ReadBatch implements trace.BatchReader. A batch never crosses a
// phase boundary, so checking the phase schedule once per batch
// consumes the random stream in exactly the order repeated Next calls
// would — the two paths generate bit-identical traces.
func (g *Generator) ReadBatch(dst []mem.Ref) (int, error) {
	if g.left == 0 {
		return 0, io.EOF
	}
	if len(dst) == 0 {
		return 0, nil
	}
	g.advancePhase()
	n := uint64(len(dst))
	if n > g.left {
		n = g.left
	}
	if g.phaseEnds != nil && g.phaseIdx < len(g.phaseEnds)-1 {
		if until := g.phaseEnds[g.phaseIdx] - (g.total - g.left); until < n {
			n = until
		}
	}
	for i := uint64(0); i < n; i++ {
		g.left--
		if g.rng.Chance(g.dataFrac) {
			dst[i] = g.nextData()
		} else {
			dst[i] = g.nextIFetch()
		}
	}
	return int(n), nil
}

// nextIFetch advances the program counter through the current loop.
func (g *Generator) nextIFetch() mem.Ref {
	addr := mem.VAddr(codeBase + g.pc)
	g.pc += 4
	if g.pc >= g.loopEnd {
		if g.iterLeft > 0 {
			g.iterLeft--
			g.pc = g.loopStart
		} else {
			g.newLoop()
		}
	}
	return mem.Ref{PID: g.pid, Kind: mem.IFetch, Addr: addr}
}

// newLoop picks the next loop: usually within the hot fraction of the
// code, occasionally anywhere (a call into colder code).
func (g *Generator) newLoop() {
	hot := uint64(float64(g.codeSize) * g.hotCodeFrac)
	if hot < 256 {
		hot = 256
	}
	if hot > g.codeSize {
		hot = g.codeSize
	}
	var start uint64
	if g.rng.Chance(0.9) {
		start = g.rng.Uintn(hot/4) * 4
	} else {
		start = g.rng.Uintn(g.codeSize/4) * 4
	}
	body := 32 + g.rng.Geometric(g.loopMeanBody/4)*4
	if start+body > g.codeSize {
		start = g.codeSize - body
		if start > g.codeSize { // underflow: body larger than code
			start = 0
			body = g.codeSize
		}
	}
	g.loopStart = start
	g.loopEnd = start + body
	g.pc = start
	g.iterLeft = g.rng.Geometric(g.loopMeanIter)
}

// nextData picks a region by weight and an offset by its pattern.
func (g *Generator) nextData() mem.Ref {
	rs := g.pickRegion()
	off := rs.nextOffset(g.rng)
	kind := mem.Load
	if g.rng.Chance(rs.spec.StoreFrac) {
		kind = mem.Store
	}
	return mem.Ref{PID: g.pid, Kind: kind, Addr: mem.VAddr(rs.base + off)}
}

func (g *Generator) pickRegion() *regionState {
	x := g.rng.Float() * g.weightSum
	last := g.regions[len(g.regions)-1]
	for i, rs := range g.regions {
		w := g.weights[i]
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return rs
		}
		last = rs
	}
	return last
}
