package synth

// Table2 returns the 18 benchmark profiles of the paper's Table 2 with
// the published instruction-fetch and total reference counts (in
// millions). The combined workload totals ~1.1 billion references at
// full scale, matching §4.2.
//
// Region structures are chosen per program class:
//
//   - SPECfp92 array codes (alvinn, ear, hydro2d, mdljdp2, mdljsp2,
//     nasa7, su2cor, swm256, wave5): large sequential/strided sweeps
//     over multi-megabyte arrays — capacity-dominated behaviour that a
//     bigger transfer unit and full associativity both help.
//   - SPECint92/utility codes (awk, cexp, compress, sc, sed, tex,
//     uncompress, yacc, ora): smaller working sets with random or
//     skewed (hot/cold) access — conflict- and TLB-sensitive.
//
// Sizes are full-scale; the harness scales them together with the
// memory capacities.
func Table2() []Profile {
	const (
		kb = 1 << 10
		mb = 1 << 20
	)
	return []Profile{
		{
			Name: "alvinn", Description: "neural net training (fp92)",
			IFetchMillions: 59.0, TotalMillions: 72.8,
			CodeBytes: 48 * kb,
			Regions: []Region{
				{Name: "weights", Size: 1 * mb, Weight: 5, Pattern: Sequential, Elem: 8, StoreFrac: 0.45},
				{Name: "inputs", Size: 256 * kb, Weight: 2, Pattern: Sequential, Elem: 8},
				{Name: "activations", Size: 64 * kb, Weight: 2, Pattern: HotCold, StoreFrac: 0.3},
			},
		},
		{
			Name: "awk", Description: "unix text utility",
			IFetchMillions: 62.8, TotalMillions: 86.4,
			CodeBytes: 128 * kb,
			Regions: []Region{
				{Name: "input", Size: 512 * kb, Weight: 3, Pattern: Sequential, Elem: 1},
				{Name: "symtab", Size: 256 * kb, Weight: 3, Pattern: HotCold, HotProb: 0.9, StoreFrac: 0.2},
				{Name: "fields", Size: 32 * kb, Weight: 2, Pattern: HotCold, StoreFrac: 0.3},
				{Name: "stack", Size: 64 * kb, Weight: 2, Pattern: Stack, StoreFrac: 0.4},
			},
		},
		{
			Name: "cexp", Description: "expression evaluator (int92)",
			IFetchMillions: 28.5, TotalMillions: 37.5,
			CodeBytes: 96 * kb,
			Regions: []Region{
				{Name: "ast", Size: 512 * kb, Weight: 3, Pattern: PointerChase, StoreFrac: 0.15},
				{Name: "symtab", Size: 128 * kb, Weight: 3, Pattern: HotCold, StoreFrac: 0.2},
				{Name: "stack", Size: 64 * kb, Weight: 2, Pattern: Stack, StoreFrac: 0.4},
			},
		},
		{
			Name: "compress", Description: "file compression (int92)",
			IFetchMillions: 8.0, TotalMillions: 10.5,
			CodeBytes: 24 * kb, HotCodeFrac: 0.5, LoopMeanIter: 64,
			Regions: []Region{
				{Name: "input", Size: 512 * kb, Weight: 3, Pattern: Sequential, Elem: 1},
				{Name: "hashtab", Size: 256 * kb, Weight: 4, Pattern: HotCold, HotFrac: 1.0 / 8, HotProb: 0.92, StoreFrac: 0.25},
				{Name: "output", Size: 512 * kb, Weight: 1, Pattern: Sequential, Elem: 1, StoreFrac: 1.0},
			},
		},
		{
			Name: "ear", Description: "human ear simulator (fp92)",
			IFetchMillions: 65.0, TotalMillions: 80.4,
			CodeBytes: 64 * kb,
			Regions: []Region{
				{Name: "signal", Size: 768 * kb, Weight: 4, Pattern: Sequential, Elem: 8, StoreFrac: 0.3},
				{Name: "filters", Size: 256 * kb, Weight: 4, Pattern: Sequential, Elem: 8},
				{Name: "state", Size: 64 * kb, Weight: 1, Pattern: HotCold, StoreFrac: 0.5},
			},
		},
		{
			Name: "sc", Description: "spreadsheet calculator (int92)",
			IFetchMillions: 78.8, TotalMillions: 100.0,
			CodeBytes: 192 * kb,
			Regions: []Region{
				{Name: "cells", Size: 1 * mb, Weight: 4, Pattern: PointerChase, StoreFrac: 0.2},
				{Name: "formulas", Size: 256 * kb, Weight: 3, Pattern: HotCold, StoreFrac: 0.1},
				{Name: "stack", Size: 64 * kb, Weight: 2, Pattern: Stack, StoreFrac: 0.4},
			},
		},
		{
			Name: "hydro2d", Description: "hydrodynamics (fp92)",
			IFetchMillions: 8.2, TotalMillions: 11.0,
			CodeBytes: 64 * kb, LoopMeanIter: 64,
			Regions: []Region{
				{Name: "grid-u", Size: 768 * kb, Weight: 3, Pattern: Sequential, Elem: 8, StoreFrac: 0.3},
				{Name: "grid-v", Size: 768 * kb, Weight: 3, Pattern: Strided, Elem: 8, Stride: 256, StoreFrac: 0.3},
			},
		},
		{
			Name: "mdljdp2", Description: "molecular dynamics, double (fp92)",
			IFetchMillions: 65.0, TotalMillions: 84.2,
			CodeBytes: 48 * kb,
			Regions: []Region{
				{Name: "positions", Size: 768 * kb, Weight: 4, Pattern: Sequential, Elem: 8},
				{Name: "pairs", Size: 256 * kb, Weight: 3, Pattern: HotCold, HotFrac: 1.0 / 8, HotProb: 0.85},
				{Name: "forces", Size: 384 * kb, Weight: 2, Pattern: Sequential, Elem: 8, StoreFrac: 0.6},
			},
		},
		{
			Name: "mdljsp2", Description: "molecular dynamics, single (fp92)",
			IFetchMillions: 65.0, TotalMillions: 77.0,
			CodeBytes: 48 * kb,
			Regions: []Region{
				{Name: "positions", Size: 512 * kb, Weight: 4, Pattern: Sequential, Elem: 4},
				{Name: "pairs", Size: 512 * kb, Weight: 3, Pattern: HotCold, HotFrac: 1.0 / 8, HotProb: 0.92, Elem: 4},
				{Name: "forces", Size: 192 * kb, Weight: 2, Pattern: Sequential, Elem: 4, StoreFrac: 0.6},
			},
		},
		{
			Name: "nasa7", Description: "NASA kernels (fp92)",
			IFetchMillions: 65.0, TotalMillions: 99.7,
			CodeBytes: 96 * kb, LoopMeanIter: 32,
			Regions: []Region{
				{Name: "matrix-a", Size: 768 * kb, Weight: 3, Pattern: Strided, Elem: 8, Stride: 256, StoreFrac: 0.2},
				{Name: "matrix-b", Size: 768 * kb, Weight: 3, Pattern: Sequential, Elem: 8, StoreFrac: 0.2},
				{Name: "work", Size: 256 * kb, Weight: 2, Pattern: Sequential, Elem: 8, StoreFrac: 0.5},
			},
		},
		{
			Name: "ora", Description: "ray tracing (fp92)",
			IFetchMillions: 65.0, TotalMillions: 82.9,
			CodeBytes: 32 * kb, HotCodeFrac: 0.5,
			Regions: []Region{
				// ora famously fits in cache: a small, hot working set.
				{Name: "scene", Size: 96 * kb, Weight: 5, Pattern: HotCold, StoreFrac: 0.1},
				{Name: "stack", Size: 32 * kb, Weight: 3, Pattern: Stack, StoreFrac: 0.4},
			},
		},
		{
			Name: "sed", Description: "unix stream editor",
			IFetchMillions: 7.7, TotalMillions: 9.8,
			CodeBytes: 48 * kb,
			Regions: []Region{
				{Name: "input", Size: 256 * kb, Weight: 4, Pattern: Sequential, Elem: 1},
				{Name: "patterns", Size: 32 * kb, Weight: 3, Pattern: HotCold},
				{Name: "output", Size: 256 * kb, Weight: 1, Pattern: Sequential, Elem: 1, StoreFrac: 1.0},
			},
		},
		{
			Name: "su2cor", Description: "quantum physics (fp92)",
			IFetchMillions: 65.0, TotalMillions: 88.8,
			CodeBytes: 96 * kb,
			Regions: []Region{
				{Name: "lattice", Size: 1 * mb, Weight: 4, Pattern: Strided, Elem: 8, Stride: 256, StoreFrac: 0.25},
				{Name: "propagators", Size: 512 * kb, Weight: 3, Pattern: Sequential, Elem: 8, StoreFrac: 0.3},
			},
		},
		{
			Name: "swm256", Description: "shallow water model (fp92)",
			IFetchMillions: 65.0, TotalMillions: 87.4,
			CodeBytes: 48 * kb, LoopMeanIter: 64,
			Regions: []Region{
				{Name: "fields", Size: 512 * kb, Weight: 6, Pattern: Sequential, Elem: 8, StoreFrac: 0.35},
				{Name: "boundaries", Size: 128 * kb, Weight: 1, Pattern: Strided, Elem: 8, Stride: 256, StoreFrac: 0.3},
			},
		},
		{
			Name: "tex", Description: "text formatter",
			IFetchMillions: 50.3, TotalMillions: 66.8,
			CodeBytes: 256 * kb, HotCodeFrac: 1.0 / 16,
			Regions: []Region{
				{Name: "fonts", Size: 512 * kb, Weight: 3, Pattern: HotCold},
				{Name: "input", Size: 256 * kb, Weight: 2, Pattern: Sequential, Elem: 1},
				{Name: "boxes", Size: 512 * kb, Weight: 3, Pattern: PointerChase, StoreFrac: 0.25},
				{Name: "output", Size: 256 * kb, Weight: 1, Pattern: Sequential, Elem: 1, StoreFrac: 1.0},
			},
		},
		{
			Name: "uncompress", Description: "file decompression (int92)",
			IFetchMillions: 5.7, TotalMillions: 7.5,
			CodeBytes: 24 * kb, HotCodeFrac: 0.5, LoopMeanIter: 64,
			Regions: []Region{
				{Name: "input", Size: 512 * kb, Weight: 2, Pattern: Sequential, Elem: 1},
				{Name: "codetab", Size: 256 * kb, Weight: 4, Pattern: HotCold, HotFrac: 1.0 / 8, HotProb: 0.92, StoreFrac: 0.15},
				{Name: "output", Size: 512 * kb, Weight: 2, Pattern: Sequential, Elem: 1, StoreFrac: 1.0},
			},
		},
		{
			Name: "wave5", Description: "particle-in-cell plasma (fp92)",
			IFetchMillions: 65.0, TotalMillions: 78.3,
			CodeBytes: 96 * kb,
			Regions: []Region{
				{Name: "particles", Size: 1 * mb, Weight: 4, Pattern: Sequential, Elem: 8, StoreFrac: 0.4},
				{Name: "fields", Size: 1 * mb, Weight: 3, Pattern: HotCold, HotFrac: 1.0 / 8, HotProb: 0.92, StoreFrac: 0.2},
			},
		},
		{
			Name: "yacc", Description: "parser generator",
			IFetchMillions: 9.7, TotalMillions: 12.1,
			CodeBytes: 64 * kb,
			Regions: []Region{
				{Name: "tables", Size: 256 * kb, Weight: 4, Pattern: HotCold, StoreFrac: 0.25},
				{Name: "grammar", Size: 128 * kb, Weight: 2, Pattern: PointerChase},
				{Name: "stack", Size: 32 * kb, Weight: 2, Pattern: Stack, StoreFrac: 0.4},
			},
		},
	}
}

// FindProfile returns the Table 2 profile with the given name.
func FindProfile(name string) (Profile, bool) {
	for _, p := range Table2() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Table2TotalMillions returns the combined reference count of the full
// workload in millions (~1093, the paper's "1.1 billion").
func Table2TotalMillions() float64 {
	var sum float64
	for _, p := range Table2() {
		sum += p.TotalMillions
	}
	return sum
}
