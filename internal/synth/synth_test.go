package synth

import (
	"io"
	"math"
	"testing"
	"testing/quick"

	"rampage/internal/mem"
	"rampage/internal/trace"
	"rampage/internal/xrand"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := xrand.New(42), xrand.New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := xrand.New(43)
	same := 0
	a = xrand.New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGUintnRange(t *testing.T) {
	r := xrand.New(7)
	f := func(n uint16) bool {
		bound := uint64(n)%1000 + 1
		v := r.Uintn(bound)
		return v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float()
		if v < 0 || v >= 1 {
			t.Fatalf("float() = %g out of [0,1)", v)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := xrand.New(11)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uintn(buckets)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/buckets) > n/buckets*0.1 {
			t.Errorf("bucket %d has %d hits, want ~%d", i, c, n/buckets)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := xrand.New(13)
	const n = 50000
	var sum uint64
	for i := 0; i < n; i++ {
		sum += r.Geometric(16)
	}
	mean := float64(sum) / n
	if mean < 12 || mean > 20 {
		t.Errorf("geometric(16) sample mean = %.2f, want ~16", mean)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "sequential", Strided: "strided", Random: "random",
		HotCold: "hotcold", PointerChase: "chase", Stack: "stack",
		Pattern(99): "Pattern(99)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestRegionOffsetsInBounds(t *testing.T) {
	r := xrand.New(1)
	for _, pat := range []Pattern{Sequential, Strided, Random, HotCold, PointerChase, Stack} {
		spec := Region{Name: "r", Size: 64 << 10, Pattern: pat, Stride: 1 << 10}
		rs := newRegionState(spec, 0x1000_0000, spec.Size)
		for i := 0; i < 10000; i++ {
			off := rs.nextOffset(r)
			if off >= rs.size {
				t.Fatalf("%s: offset %d out of region of size %d", pat, off, rs.size)
			}
		}
	}
}

func TestSequentialPatternAdvances(t *testing.T) {
	rs := newRegionState(Region{Size: 1024, Pattern: Sequential, Elem: 8}, 0, 1024)
	r := xrand.New(1)
	prev := rs.nextOffset(r)
	for i := 0; i < 100; i++ {
		off := rs.nextOffset(r)
		want := (prev + 8) % 1024
		if off != want {
			t.Fatalf("sequential offset %d, want %d", off, want)
		}
		prev = off
	}
}

func TestPointerChaseDeterministicSuccessor(t *testing.T) {
	// The same element must always be followed by the same successor.
	mk := func() *regionState {
		return newRegionState(Region{Size: 4096, Pattern: PointerChase}, 0, 4096)
	}
	a, b := mk(), mk()
	r1, r2 := xrand.New(1), xrand.New(2) // rng is unused by chase, but differ anyway
	for i := 0; i < 1000; i++ {
		if a.nextOffset(r1) != b.nextOffset(r2) {
			t.Fatal("pointer chase depends on RNG; successors must be stable")
		}
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(Profile{Name: "empty"}, Options{}); err == nil {
		t.Error("zero-reference profile accepted")
	}
	p := Profile{Name: "nodata", TotalMillions: 1, IFetchMillions: 0.5}
	if _, err := NewGenerator(p, Options{Scale: 0.001}); err == nil {
		t.Error("data-referencing profile with no regions accepted")
	}
	p2 := Profile{Name: "x", TotalMillions: 1, IFetchMillions: 1}
	if _, err := NewGenerator(p2, Options{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestGeneratorRefCount(t *testing.T) {
	p, ok := FindProfile("compress")
	if !ok {
		t.Fatal("compress profile missing")
	}
	g, err := NewGenerator(p, Options{Seed: 1, Scale: 0.001})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	want := p.Refs(0.001)
	var n uint64
	for {
		_, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		n++
	}
	if n != want {
		t.Errorf("generated %d refs, want %d", n, want)
	}
	if g.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", g.Remaining())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := FindProfile("awk")
	mk := func() []mem.Ref {
		g, err := NewGenerator(p, Options{Seed: 99, Scale: 0.0005})
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		refs, err := trace.Drain(g)
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
		return refs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	p, _ := FindProfile("awk")
	g1, _ := NewGenerator(p, Options{Seed: 1, Scale: 0.0002})
	g2, _ := NewGenerator(p, Options{Seed: 2, Scale: 0.0002})
	a, _ := trace.Drain(g1)
	b, _ := trace.Drain(g2)
	same := 0
	for i := range a {
		if i < len(b) && a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorIFetchFraction(t *testing.T) {
	for _, name := range []string{"alvinn", "compress", "tex"} {
		p, _ := FindProfile(name)
		g, err := NewGenerator(p, Options{Seed: 5, Scale: 0.002})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := trace.Collect(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := float64(s.IFetches()) / float64(s.Total)
		want := p.IFetchFrac()
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: ifetch fraction %.3f, want %.3f ± 0.02", name, got, want)
		}
	}
}

func TestGeneratorPIDTag(t *testing.T) {
	p, _ := FindProfile("sed")
	g, _ := NewGenerator(p, Options{Seed: 1, Scale: 0.001, PID: 7})
	refs, _ := trace.Drain(g)
	for _, r := range refs[:100] {
		if r.PID != 7 {
			t.Fatalf("ref has PID %d, want 7", r.PID)
		}
	}
}

func TestTable2Inventory(t *testing.T) {
	profiles := Table2()
	if len(profiles) != 18 {
		t.Fatalf("Table2 has %d profiles, want 18", len(profiles))
	}
	names := map[string]bool{}
	for _, p := range profiles {
		if names[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		names[p.Name] = true
		if p.IFetchMillions <= 0 || p.TotalMillions <= 0 {
			t.Errorf("%s: missing Table 2 counts", p.Name)
		}
		if p.IFetchMillions >= p.TotalMillions {
			t.Errorf("%s: ifetches %.1f >= total %.1f", p.Name, p.IFetchMillions, p.TotalMillions)
		}
		if p.CodeBytes == 0 || len(p.Regions) == 0 {
			t.Errorf("%s: incomplete profile", p.Name)
		}
	}
	// §4.2: the combined workload totals 1.1 billion references.
	if tot := Table2TotalMillions(); math.Abs(tot-1093.1) > 1 {
		t.Errorf("combined total = %.1f M, want ~1093 M (1.1 billion)", tot)
	}
}

func TestFindProfile(t *testing.T) {
	if _, ok := FindProfile("compress"); !ok {
		t.Error("FindProfile(compress) failed")
	}
	if _, ok := FindProfile("nonesuch"); ok {
		t.Error("FindProfile(nonesuch) succeeded")
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Table2() {
		g, err := NewGenerator(p, Options{Seed: 3, Scale: 0.0005})
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		s, err := trace.Collect(g)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if s.Total == 0 {
			t.Errorf("%s: empty trace", p.Name)
		}
		// Every profile must touch code and (given the Table 2 mixes)
		// produce both loads and at least some stores.
		if s.IFetches() == 0 || s.Loads() == 0 {
			t.Errorf("%s: degenerate mix %+v", p.Name, s.ByKind)
		}
	}
}

func TestKernelTLBMissTrace(t *testing.T) {
	k := NewKernel(1)
	entries := []uint64{0xF100_0000, 0xF100_0040}
	refs := k.AppendTLBMiss(nil, entries)
	var loads, fetches int
	for _, r := range refs {
		if r.PID != mem.KernelPID {
			t.Fatalf("kernel ref has PID %d", r.PID)
		}
		switch r.Kind {
		case mem.Load:
			loads++
		case mem.IFetch:
			fetches++
		}
	}
	if loads != len(entries) {
		t.Errorf("TLB miss trace has %d loads, want %d", loads, len(entries))
	}
	if fetches < 15 {
		t.Errorf("TLB miss trace has %d ifetches, want >= 15", fetches)
	}
	// The entry loads must reference exactly the given addresses.
	var got []uint64
	for _, r := range refs {
		if r.Kind == mem.Load {
			got = append(got, uint64(r.Addr))
		}
	}
	for i, e := range entries {
		if got[i] != e {
			t.Errorf("probe %d loads %#x, want %#x", i, got[i], e)
		}
	}
}

func TestKernelPageFaultTrace(t *testing.T) {
	k := NewKernel(1)
	scan := []uint64{0xF200_0000, 0xF200_0040, 0xF200_0080}
	update := []uint64{0xF200_0040, 0xF200_1000}
	refs := k.AppendPageFault(nil, scan, update)
	var stores int
	for _, r := range refs {
		if r.Kind == mem.Store {
			stores++
		}
	}
	if stores != len(scan)+len(update) {
		t.Errorf("page fault trace has %d stores, want %d", stores, len(scan)+len(update))
	}
	if len(refs) < 40 {
		t.Errorf("page fault trace has %d refs, want >= 40", len(refs))
	}
}

func TestKernelContextSwitchTrace(t *testing.T) {
	n := ContextSwitchRefCount()
	// §4.6: approximately 400 references per context switch.
	if n < 350 || n > 470 {
		t.Errorf("context switch trace has %d refs, want ~400", n)
	}
	k := NewKernel(1)
	refs := k.AppendContextSwitch(nil, 2, 3)
	var stores, loads int
	for _, r := range refs {
		if r.PID != mem.KernelPID {
			t.Fatal("context switch ref not kernel-tagged")
		}
		switch r.Kind {
		case mem.Store:
			stores++
		case mem.Load:
			loads++
		}
	}
	if stores == 0 || loads == 0 {
		t.Errorf("context switch trace: %d stores, %d loads; want both > 0", stores, loads)
	}
}

func TestKernelAppendReusesBuffer(t *testing.T) {
	k := NewKernel(1)
	buf := make([]mem.Ref, 0, 1024)
	out := k.AppendTLBMiss(buf, []uint64{0xF0000000})
	if &out[0] != &buf[:1][0] {
		t.Error("AppendTLBMiss reallocated despite sufficient capacity")
	}
}

func TestPhaseValidation(t *testing.T) {
	base := Profile{
		Name: "p", TotalMillions: 1, IFetchMillions: 0.5, CodeBytes: 4096,
		Regions: []Region{{Name: "a", Size: 8192, Weight: 1}, {Name: "b", Size: 8192, Weight: 1}},
	}
	bad := base
	bad.Phases = []Phase{{Frac: 1, Weights: []float64{1}}} // wrong arity
	if _, err := NewGenerator(bad, Options{Scale: 0.001}); err == nil {
		t.Error("phase with wrong weight arity accepted")
	}
	bad = base
	bad.Phases = []Phase{{Frac: 0, Weights: []float64{1, 1}}}
	if _, err := NewGenerator(bad, Options{Scale: 0.001}); err == nil {
		t.Error("zero-fraction phase accepted")
	}
	bad = base
	bad.Phases = []Phase{{Frac: 1, Weights: []float64{0, 0}}}
	if _, err := NewGenerator(bad, Options{Scale: 0.001}); err == nil {
		t.Error("all-silent phase accepted")
	}
	bad = base
	bad.Phases = []Phase{{Frac: 1, Weights: []float64{-1, 2}}}
	if _, err := NewGenerator(bad, Options{Scale: 0.001}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestPhasesSteerRegions(t *testing.T) {
	// Two equal phases, each touching exactly one region: the first
	// half of the data refs must land in region a, the second in b.
	p := Profile{
		Name: "phased", TotalMillions: 0.2, IFetchMillions: 0.1, CodeBytes: 4096,
		Regions: []Region{
			{Name: "a", Size: 64 << 10, Weight: 1, Pattern: Sequential},
			{Name: "b", Size: 64 << 10, Weight: 1, Pattern: Sequential},
		},
		Phases: []Phase{
			{Frac: 1, Weights: []float64{1, 0}},
			{Frac: 1, Weights: []float64{0, 1}},
		},
	}
	g, err := NewGenerator(p, Options{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := trace.Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	half := len(refs) / 2
	// Region b starts at the second region base; region a at dataBase.
	// Data refs in the first half must be below the second region.
	var wrongFirst, wrongSecond int
	for i, r := range refs {
		if r.Kind == mem.IFetch {
			continue
		}
		inA := uint64(r.Addr) < dataBase+(1<<22)
		if i < half && !inA {
			wrongFirst++
		}
		if i >= half+1000 && inA {
			wrongSecond++
		}
	}
	if wrongFirst > 0 || wrongSecond > 0 {
		t.Errorf("phase steering leaked: %d region-b refs in phase 1, %d region-a refs in phase 2",
			wrongFirst, wrongSecond)
	}
}

func TestPhasesPreserveRefCount(t *testing.T) {
	p, _ := FindProfile("compress")
	p.Phases = []Phase{
		{Frac: 1, Weights: []float64{1, 0, 0}},
		{Frac: 2, Weights: []float64{0, 1, 1}},
	}
	g, err := NewGenerator(p, Options{Seed: 1, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Total != p.Refs(0.001) {
		t.Errorf("phased run emitted %d refs, want %d", s.Total, p.Refs(0.001))
	}
}

func TestThreadSwitchShorterThanContextSwitch(t *testing.T) {
	ts, cs := ThreadSwitchRefCount(), ContextSwitchRefCount()
	if ts >= cs/5 {
		t.Errorf("thread switch (%d refs) not much cheaper than context switch (%d)", ts, cs)
	}
	if ts < 20 || ts > 60 {
		t.Errorf("thread switch = %d refs, want ~40", ts)
	}
}
