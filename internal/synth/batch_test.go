package synth

import (
	"errors"
	"io"
	"testing"

	"rampage/internal/mem"
)

// TestGeneratorReadBatchMatchesNext drains two identically-seeded
// generators — one reference at a time and in deliberately odd batch
// sizes — and requires the exact same stream. This pins the batched
// path's RNG call order: phases must advance once per reference window
// exactly as the scalar path does.
func TestGeneratorReadBatchMatchesNext(t *testing.T) {
	p, ok := FindProfile("swm256")
	if !ok {
		t.Fatal("swm256 profile missing")
	}
	opts := Options{Seed: 11, RefScale: 1.0 / 2000, SizeScale: 1.0 / 16}
	scalar, err := NewGenerator(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewGenerator(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want []mem.Ref
	for {
		ref, err := scalar.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ref)
	}
	var got []mem.Ref
	buf := make([]mem.Ref, 0, 257)
	for size := 1; ; size = size%257 + 1 { // cycle through window sizes
		n, err := batched.ReadBatch(buf[:size])
		got = append(got, buf[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("stream lengths differ: batched %d vs scalar %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ref %d differs: batched %+v vs scalar %+v", i, got[i], want[i])
		}
	}
}

// TestGeneratorReadBatchZeroAlloc pins the generator's batched fill:
// steady-state batches must not allocate.
func TestGeneratorReadBatchZeroAlloc(t *testing.T) {
	p, ok := FindProfile("swm256")
	if !ok {
		t.Fatal("swm256 profile missing")
	}
	g, err := NewGenerator(p, Options{Seed: 1, RefScale: 1, SizeScale: 1.0 / 8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]mem.Ref, 256)
	if _, err := g.ReadBatch(buf); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if n, err := g.ReadBatch(buf); err != nil || n == 0 {
			t.Fatalf("ReadBatch = %d, %v", n, err)
		}
	})
	if allocs != 0 {
		t.Errorf("ReadBatch allocates %.1f times per batch", allocs)
	}
}
