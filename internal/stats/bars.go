package stats

import (
	"fmt"
	"strings"

	"rampage/internal/mem"
)

// levelGlyphs are the bar characters per level: instruction L1, data
// L1, L2/SRAM, DRAM; the remainder of the bar (pipelined CPU work, if
// any) is left blank.
var levelGlyphs = [NumLevels]byte{'i', 'd', 'S', 'D'}

// FormatLevelBars renders a row of reports as ASCII stacked bars of
// per-level run-time fractions — a terminal rendition of the paper's
// Figures 2 and 3. Each bar is width characters; segments use 'i'
// (L1i), 'd' (L1d), 'S' (L2/SRAM) and 'D' (DRAM).
func FormatLevelBars(reports []*Report, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	for _, r := range reports {
		bar := make([]byte, 0, width)
		for l := Level(0); l < NumLevels; l++ {
			n := int(r.LevelFraction(l)*float64(width) + 0.5)
			for i := 0; i < n && len(bar) < width; i++ {
				bar = append(bar, levelGlyphs[l])
			}
		}
		for len(bar) < width {
			bar = append(bar, ' ')
		}
		fmt.Fprintf(&b, "%-6s |%s|\n", mem.FormatSize(r.BlockBytes), bar)
	}
	b.WriteString(fmt.Sprintf("        i=L1i d=L1d S=L2/SRAM D=DRAM (bar = 100%% of run time)\n"))
	return b.String()
}
