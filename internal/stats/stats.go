// Package stats accumulates the measurements the paper reports:
// elapsed simulated time (Tables 3–5), the fraction of run time spent
// in each level of the hierarchy (Figures 2–3), and the memory-
// management software overhead ratio (Figure 4).
package stats

import (
	"fmt"
	"strings"

	"rampage/internal/mem"
)

// Level identifies a level of the simulated hierarchy for time
// attribution, following the paper's Figure 2 breakdown.
type Level uint8

const (
	// L1I is instruction-fetch time: L1 instruction hits plus the L1i
	// share of inclusion maintenance.
	L1I Level = iota
	// L1D is the L1 data cache's share of inclusion maintenance (data
	// hits are fully pipelined and cost nothing, §4.3).
	L1D
	// L2 is time spent accessing the second SRAM level — the L2 cache
	// or the RAMpage SRAM main memory: miss penalties and write-backs.
	L2
	// DRAM is time stalled on the Rambus channel (block and page
	// transfers, and idle waits for in-flight pages).
	DRAM
	// NumLevels is the number of attribution levels.
	NumLevels
)

// String names the level as the paper's figures do.
func (l Level) String() string {
	switch l {
	case L1I:
		return "L1i"
	case L1D:
		return "L1d"
	case L2:
		return "L2/SRAM"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Report is the complete measurement record of one simulation run.
type Report struct {
	// Name labels the configuration ("baseline", "rampage", ...).
	Name string
	// Clock is the issue rate the run simulated.
	Clock mem.Clock
	// BlockBytes is the L2 block size or SRAM page size swept.
	BlockBytes uint64

	// Cycles is total simulated time.
	Cycles mem.Cycles
	// LevelTime attributes time to hierarchy levels; the remainder
	// (Cycles - sum) is pipelined execution not attributable to a
	// stall.
	LevelTime [NumLevels]mem.Cycles

	// BenchRefs counts application references executed; OS reference
	// counts are split by purpose for the Figure 4 ratio.
	BenchRefs      uint64
	OSTLBRefs      uint64 // TLB-miss handler references
	OSFaultRefs    uint64 // page-fault handler references
	OSSwitchRefs   uint64 // context-switch code references
	TLBHits        uint64
	TLBMisses      uint64
	TLBEvictions   uint64 // translations shot down by page replacement (§2.3)
	ClockScans     uint64 // page-table entries the clock hand examined (§4.5)
	PageFaults     uint64
	L1IMisses      uint64
	L1DMisses      uint64
	L2Misses       uint64     // baseline only: misses from L2 to DRAM
	Writebacks     uint64     // blocks or pages written back to DRAM
	Switches       uint64     // context switches at time-slice boundaries
	SwitchesOnMiss uint64     // RAMpage: context switches taken on faults
	IdleCycles     mem.Cycles // CS-on-miss: all processes blocked
	Resizes        uint64     // adaptive RAMpage: dynamic page-size switches
	Prefetches     uint64     // pages brought in ahead of demand (§3.2 extension)
	PrefetchHits   uint64     // prefetched pages later demanded
	PrefetchWasted uint64     // prefetched pages evicted unused
	PrefetchStalls uint64     // demand accesses that waited for an in-flight prefetch

	// TLBHandlerCycles and FaultHandlerCycles are the simulated time
	// spent replaying the TLB-miss and page-fault handler traces — the
	// software-management cost Figure 4 normalizes by references.
	TLBHandlerCycles   mem.Cycles
	FaultHandlerCycles mem.Cycles
	// DRAMTransfers counts real transfers on the Rambus channel (block
	// fills, page fetches and write-backs); DRAMBytes their total size.
	DRAMTransfers uint64
	DRAMBytes     uint64
}

// Seconds returns the elapsed simulated time — the Tables 3–5 metric.
func (r *Report) Seconds() float64 { return r.Clock.Seconds(r.Cycles) }

// Charge adds cycles to both the total and a level's attribution.
func (r *Report) Charge(l Level, c mem.Cycles) {
	r.Cycles += c
	r.LevelTime[l] += c
}

// LevelFraction returns the fraction of total run time spent in a
// level — the Figures 2–3 metric.
func (r *Report) LevelFraction(l Level) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.LevelTime[l]) / float64(r.Cycles)
}

// OverheadRatio returns the Figure 4 metric: "the ratio of additional
// TLB miss and page fault handling references to the total number of
// references in the benchmark trace files".
func (r *Report) OverheadRatio() float64 {
	if r.BenchRefs == 0 {
		return 0
	}
	return float64(r.OSTLBRefs+r.OSFaultRefs) / float64(r.BenchRefs)
}

// OSRefs returns all operating-system references executed.
func (r *Report) OSRefs() uint64 { return r.OSTLBRefs + r.OSFaultRefs + r.OSSwitchRefs }

// String renders a one-run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s @%s block/page %s: %.4fs (%d cycles)\n",
		r.Name, r.Clock, mem.FormatSize(r.BlockBytes), r.Seconds(), r.Cycles)
	for l := Level(0); l < NumLevels; l++ {
		fmt.Fprintf(&b, "  %-8s %6.2f%%\n", l, 100*r.LevelFraction(l))
	}
	fmt.Fprintf(&b, "  refs: bench %d, OS %d (tlb %d, fault %d, switch %d); overhead ratio %.3f\n",
		r.BenchRefs, r.OSRefs(), r.OSTLBRefs, r.OSFaultRefs, r.OSSwitchRefs, r.OverheadRatio())
	fmt.Fprintf(&b, "  events: tlbmiss %d, fault %d, l1i-miss %d, l1d-miss %d, l2-miss %d, wb %d, switch %d (+%d on miss)\n",
		r.TLBMisses, r.PageFaults, r.L1IMisses, r.L1DMisses, r.L2Misses, r.Writebacks, r.Switches, r.SwitchesOnMiss)
	fmt.Fprintf(&b, "  mgmt: tlb-hit %d, tlb-evict %d, clock-scan %d, handler cycles tlb %d / fault %d, dram xfers %d (%s)\n",
		r.TLBHits, r.TLBEvictions, r.ClockScans, r.TLBHandlerCycles, r.FaultHandlerCycles,
		r.DRAMTransfers, mem.FormatSize(r.DRAMBytes))
	return b.String()
}
