package stats

import (
	"rampage/internal/checkpoint"
	"rampage/internal/mem"
)

// EncodeState serializes the report's numeric measurements in field
// declaration order. Name, Clock and BlockBytes identify the
// configuration, come from construction, and are not serialized.
func (r *Report) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkReport)
	e.U64(uint64(r.Cycles))
	for l := Level(0); l < NumLevels; l++ {
		e.U64(uint64(r.LevelTime[l]))
	}
	e.U64(r.BenchRefs)
	e.U64(r.OSTLBRefs)
	e.U64(r.OSFaultRefs)
	e.U64(r.OSSwitchRefs)
	e.U64(r.TLBHits)
	e.U64(r.TLBMisses)
	e.U64(r.TLBEvictions)
	e.U64(r.ClockScans)
	e.U64(r.PageFaults)
	e.U64(r.L1IMisses)
	e.U64(r.L1DMisses)
	e.U64(r.L2Misses)
	e.U64(r.Writebacks)
	e.U64(r.Switches)
	e.U64(r.SwitchesOnMiss)
	e.U64(uint64(r.IdleCycles))
	e.U64(r.Resizes)
	e.U64(r.Prefetches)
	e.U64(r.PrefetchHits)
	e.U64(r.PrefetchWasted)
	e.U64(r.PrefetchStalls)
	e.U64(uint64(r.TLBHandlerCycles))
	e.U64(uint64(r.FaultHandlerCycles))
	e.U64(r.DRAMTransfers)
	e.U64(r.DRAMBytes)
}

// DecodeState restores measurements captured by EncodeState.
func (r *Report) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkReport)
	r.Cycles = mem.Cycles(d.U64())
	for l := Level(0); l < NumLevels; l++ {
		r.LevelTime[l] = mem.Cycles(d.U64())
	}
	r.BenchRefs = d.U64()
	r.OSTLBRefs = d.U64()
	r.OSFaultRefs = d.U64()
	r.OSSwitchRefs = d.U64()
	r.TLBHits = d.U64()
	r.TLBMisses = d.U64()
	r.TLBEvictions = d.U64()
	r.ClockScans = d.U64()
	r.PageFaults = d.U64()
	r.L1IMisses = d.U64()
	r.L1DMisses = d.U64()
	r.L2Misses = d.U64()
	r.Writebacks = d.U64()
	r.Switches = d.U64()
	r.SwitchesOnMiss = d.U64()
	r.IdleCycles = mem.Cycles(d.U64())
	r.Resizes = d.U64()
	r.Prefetches = d.U64()
	r.PrefetchHits = d.U64()
	r.PrefetchWasted = d.U64()
	r.PrefetchStalls = d.U64()
	r.TLBHandlerCycles = mem.Cycles(d.U64())
	r.FaultHandlerCycles = mem.Cycles(d.U64())
	r.DRAMTransfers = d.U64()
	r.DRAMBytes = d.U64()
}
