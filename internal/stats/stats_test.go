package stats

import (
	"strings"
	"testing"

	"rampage/internal/mem"
)

func TestLevelString(t *testing.T) {
	want := map[Level]string{L1I: "L1i", L1D: "L1d", L2: "L2/SRAM", DRAM: "DRAM", Level(9): "Level(9)"}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", l, got, s)
		}
	}
}

func TestChargeAccumulates(t *testing.T) {
	r := Report{Clock: mem.MustClock(200)}
	r.Charge(L1I, 10)
	r.Charge(DRAM, 30)
	if r.Cycles != 40 {
		t.Errorf("Cycles = %d, want 40", r.Cycles)
	}
	if r.LevelTime[L1I] != 10 || r.LevelTime[DRAM] != 30 {
		t.Errorf("LevelTime = %v", r.LevelTime)
	}
	if got := r.LevelFraction(DRAM); got != 0.75 {
		t.Errorf("LevelFraction(DRAM) = %g, want 0.75", got)
	}
}

func TestLevelFractionEmpty(t *testing.T) {
	var r Report
	if r.LevelFraction(L1I) != 0 {
		t.Error("fraction of empty report != 0")
	}
}

func TestSeconds(t *testing.T) {
	r := Report{Clock: mem.MustClock(200), Cycles: 200_000_000}
	if got := r.Seconds(); got != 1.0 {
		t.Errorf("Seconds = %g, want 1.0", got)
	}
}

func TestOverheadRatio(t *testing.T) {
	r := Report{BenchRefs: 1000, OSTLBRefs: 100, OSFaultRefs: 50, OSSwitchRefs: 400}
	// Figure 4 excludes context-switch references.
	if got := r.OverheadRatio(); got != 0.15 {
		t.Errorf("OverheadRatio = %g, want 0.15", got)
	}
	if got := r.OSRefs(); got != 550 {
		t.Errorf("OSRefs = %d, want 550", got)
	}
	var empty Report
	if empty.OverheadRatio() != 0 {
		t.Error("empty OverheadRatio != 0")
	}
}

func TestString(t *testing.T) {
	r := Report{Name: "rampage", Clock: mem.MustClock(1000), BlockBytes: 1024, Cycles: 100}
	s := r.String()
	for _, want := range []string{"rampage", "1GHz", "1KB", "DRAM"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestFormatLevelBars(t *testing.T) {
	r := &Report{Name: "x", Clock: mem.MustClock(200), BlockBytes: 1024}
	r.Charge(L1I, 25)
	r.Charge(L2, 25)
	r.Charge(DRAM, 50)
	out := FormatLevelBars([]*Report{r}, 40)
	if !strings.Contains(out, "1KB") {
		t.Errorf("missing size label:\n%s", out)
	}
	// 25% of 40 = 10 'i', 10 'S', 20 'D'.
	if !strings.Contains(out, strings.Repeat("i", 10)+strings.Repeat("S", 10)+strings.Repeat("D", 20)) {
		t.Errorf("bar segments wrong:\n%s", out)
	}
	// Default width kicks in for width <= 0.
	if out := FormatLevelBars([]*Report{r}, 0); len(out) == 0 {
		t.Error("zero-width call produced nothing")
	}
}

func TestFormatLevelBarsEmptyReport(t *testing.T) {
	r := &Report{Name: "x", Clock: mem.MustClock(200), BlockBytes: 128}
	out := FormatLevelBars([]*Report{r}, 20)
	if !strings.Contains(out, "|"+strings.Repeat(" ", 20)+"|") {
		t.Errorf("empty report should render a blank bar:\n%s", out)
	}
}
