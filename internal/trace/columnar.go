package trace

import (
	"fmt"
	"io"

	"rampage/internal/mem"
)

// ColumnarBuffer holds a single-process reference stream in
// structure-of-arrays form: one kind byte and one address word per
// reference, with the process ID stored once for the whole stream.
// Compared with a []mem.Ref it drops the per-reference PID and the
// struct padding (9 bytes per reference instead of 16), and a sweep
// can capture a workload once and replay it from the columns in every
// grid cell without regenerating or re-boxing anything.
type ColumnarBuffer struct {
	// PID tags every reference in the stream (synthetic workload
	// generators emit single-process streams; the scheduler retags
	// per simulated process anyway).
	PID mem.PID
	// Kinds and Addrs are parallel columns: reference i is
	// {PID, Kinds[i], Addrs[i]}.
	Kinds []mem.RefKind
	Addrs []mem.VAddr
}

// Len returns the number of references in the buffer.
func (b *ColumnarBuffer) Len() int { return len(b.Kinds) }

// Append adds one reference to the columns.
func (b *ColumnarBuffer) Append(kind mem.RefKind, addr mem.VAddr) {
	b.Kinds = append(b.Kinds, kind)
	b.Addrs = append(b.Addrs, addr)
}

// Ref reconstructs reference i.
func (b *ColumnarBuffer) Ref(i int) mem.Ref {
	return mem.Ref{PID: b.PID, Kind: b.Kinds[i], Addr: b.Addrs[i]}
}

// captureChunk sizes the scratch batch used when draining a Reader
// into columns.
const captureChunk = 4096

// CaptureColumnar drains r — at most limit references, or the whole
// stream when limit is 0 — into a ColumnarBuffer. The stream must be
// single-process: a second PID aborts the capture with an error (the
// caller falls back to row-form preloading). The references read are
// bit-identical to what the same Reader would have delivered to the
// simulator directly, because the drain uses the Reader's own batch
// path.
func CaptureColumnar(r Reader, limit uint64) (*ColumnarBuffer, error) {
	buf := &ColumnarBuffer{}
	if limit > 0 {
		buf.Kinds = make([]mem.RefKind, 0, limit)
		buf.Addrs = make([]mem.VAddr, 0, limit)
	}
	var scratch [captureChunk]mem.Ref
	first := true
	var n uint64
	for {
		chunk := scratch[:]
		if limit > 0 && limit-n < captureChunk {
			chunk = scratch[:limit-n]
		}
		if len(chunk) == 0 {
			return buf, nil
		}
		got, err := ReadBatch(r, chunk)
		for _, ref := range chunk[:got] {
			if first {
				buf.PID = ref.PID
				first = false
			} else if ref.PID != buf.PID {
				return nil, fmt.Errorf("trace: columnar capture saw PIDs %d and %d; stream is not single-process", buf.PID, ref.PID)
			}
			buf.Append(ref.Kind, ref.Addr)
		}
		n += uint64(got)
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return nil, err
		}
		if got == 0 {
			return buf, nil
		}
	}
}

// ColumnarReader replays a ColumnarBuffer. It implements Reader and
// BatchReader; ReadBatch rebuilds references from the columns in one
// tight loop with no per-reference interface dispatch. The buffer is
// not copied — several ColumnarReaders may replay the same buffer
// concurrently (the buffer is read-only while being replayed).
type ColumnarReader struct {
	buf *ColumnarBuffer
	pos int
}

// NewColumnarReader returns a reader positioned at the stream start.
func NewColumnarReader(buf *ColumnarBuffer) *ColumnarReader {
	return &ColumnarReader{buf: buf}
}

// Next implements Reader.
func (r *ColumnarReader) Next() (mem.Ref, error) {
	if r.pos >= r.buf.Len() {
		return mem.Ref{}, io.EOF
	}
	ref := r.buf.Ref(r.pos)
	r.pos++
	return ref, nil
}

// ReadBatch implements BatchReader.
func (r *ColumnarReader) ReadBatch(dst []mem.Ref) (int, error) {
	return r.readBatchPID(dst, r.buf.PID)
}

// readBatchPID is ReadBatch with the PID overridden at materialization
// time — Retag's fused path, sparing its retag pass over dst.
func (r *ColumnarReader) readBatchPID(dst []mem.Ref, pid mem.PID) (int, error) {
	if r.pos >= r.buf.Len() {
		return 0, io.EOF
	}
	kinds := r.buf.Kinds[r.pos:]
	addrs := r.buf.Addrs[r.pos:]
	n := len(dst)
	if n > len(kinds) {
		n = len(kinds)
	}
	addrs = addrs[:len(kinds)]
	for i := 0; i < n; i++ {
		dst[i] = mem.Ref{PID: pid, Kind: kinds[i], Addr: addrs[i]}
	}
	r.pos += n
	return n, nil
}

// Remaining reports how many references are left, satisfying the
// harness's preload-size probe.
func (r *ColumnarReader) Remaining() uint64 { return uint64(r.buf.Len() - r.pos) }

// Reset rewinds to the stream start.
func (r *ColumnarReader) Reset() { r.pos = 0 }

// Tail returns direct views of the unread remainder of the columns.
// The views alias the buffer; a consumer that executes n references
// from them must advance the cursor with Skip(n). This is the zero-copy
// handoff the scheduler uses to feed columnar machines without
// materializing mem.Ref rows.
func (r *ColumnarReader) Tail() ([]mem.RefKind, []mem.VAddr) {
	return r.buf.Kinds[r.pos:], r.buf.Addrs[r.pos:]
}

// Skip advances the cursor past n references consumed via Tail views.
func (r *ColumnarReader) Skip(n int) { r.pos += n }

// ColumnarView unwraps r to its backing ColumnarReader when the stream
// is columnar, together with the PID its references carry (a Retag
// wrapper's override wins). The views obtained from the reader's Tail
// plus that PID reproduce exactly the references r itself would
// deliver.
func ColumnarView(r Reader) (*ColumnarReader, mem.PID, bool) {
	switch v := r.(type) {
	case *ColumnarReader:
		return v, v.buf.PID, true
	case *Retag:
		if cr, ok := v.r.(*ColumnarReader); ok {
			return cr, v.pid, true
		}
	}
	return nil, 0, false
}
