// Package trace defines the trace abstraction that drives the RAMpage
// simulator, together with binary and text trace-file formats, stream
// combinators and a multiprogramming interleaver.
//
// The paper (§4.2) drives its simulations with 1.1 billion references
// from 18 address traces, interleaved every 500,000 references to model
// a multiprogrammed workload. At that scale traces cannot be
// materialised in memory, so the central abstraction is a streaming
// Reader; synthetic workload generators (package synth), trace files
// and combinators all implement it.
package trace

import (
	"errors"
	"io"

	"rampage/internal/mem"
)

// Reader is a stream of memory references. Next returns io.EOF when
// the stream is exhausted; any other error is a malformed or unreadable
// trace.
type Reader interface {
	Next() (mem.Ref, error)
}

// BatchReader is implemented by Readers that can deliver many
// references per call, amortising per-reference dispatch and state-
// machine overhead in the simulator hot loop.
//
// ReadBatch fills dst with up to len(dst) references and returns the
// number written. The first n entries of dst are valid regardless of
// err. End of stream is reported as (0, io.EOF) — implementations may
// return a full or partial batch with a nil error and deliver io.EOF
// on the following call. A non-EOF error may accompany n > 0 when the
// stream failed mid-batch.
type BatchReader interface {
	Reader
	ReadBatch(dst []mem.Ref) (n int, err error)
}

// ReadBatch fills dst from r, using r's native batch path when it has
// one and falling back to a Next loop otherwise. The contract is that
// of BatchReader.ReadBatch.
func ReadBatch(r Reader, dst []mem.Ref) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.ReadBatch(dst)
	}
	for i := range dst {
		ref, err := r.Next()
		if err != nil {
			if i > 0 && err == io.EOF {
				return i, nil // io.EOF again on the next call
			}
			return i, err
		}
		dst[i] = ref
	}
	return len(dst), nil
}

// Writer consumes memory references, typically into a trace file.
type Writer interface {
	Write(mem.Ref) error
}

// ErrCorrupt is returned by file readers when a trace file fails
// structural validation.
var ErrCorrupt = errors.New("trace: corrupt trace file")

// SliceReader replays a fixed slice of references. It is the in-memory
// Reader used throughout the test suite and by small examples.
type SliceReader struct {
	refs []mem.Ref
	pos  int
}

// NewSliceReader returns a Reader over refs. The slice is not copied;
// the caller must not mutate it while reading.
func NewSliceReader(refs []mem.Ref) *SliceReader {
	return &SliceReader{refs: refs}
}

// Next implements Reader.
func (s *SliceReader) Next() (mem.Ref, error) {
	if s.pos >= len(s.refs) {
		return mem.Ref{}, io.EOF
	}
	r := s.refs[s.pos]
	s.pos++
	return r, nil
}

// ReadBatch implements BatchReader.
func (s *SliceReader) ReadBatch(dst []mem.Ref) (int, error) {
	if s.pos >= len(s.refs) {
		return 0, io.EOF
	}
	n := copy(dst, s.refs[s.pos:])
	s.pos += n
	return n, nil
}

// Reset rewinds the reader to the beginning of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }

// Limit wraps r so that at most n references are delivered. It models
// the paper's practice of truncating traces to a fixed reference
// budget.
type Limit struct {
	r         Reader
	remaining uint64
}

// NewLimit returns a Reader that yields at most n references from r.
func NewLimit(r Reader, n uint64) *Limit {
	return &Limit{r: r, remaining: n}
}

// Next implements Reader.
func (l *Limit) Next() (mem.Ref, error) {
	if l.remaining == 0 {
		return mem.Ref{}, io.EOF
	}
	ref, err := l.r.Next()
	if err != nil {
		return mem.Ref{}, err
	}
	l.remaining--
	return ref, nil
}

// ReadBatch implements BatchReader.
func (l *Limit) ReadBatch(dst []mem.Ref) (int, error) {
	if l.remaining == 0 {
		return 0, io.EOF
	}
	if uint64(len(dst)) > l.remaining {
		dst = dst[:l.remaining]
	}
	n, err := ReadBatch(l.r, dst)
	l.remaining -= uint64(n)
	return n, err
}

// Concat chains readers end to end: when one returns io.EOF the next
// takes over.
type Concat struct {
	readers []Reader
}

// NewConcat returns a Reader that drains each reader in turn.
func NewConcat(readers ...Reader) *Concat {
	return &Concat{readers: readers}
}

// Next implements Reader.
func (c *Concat) Next() (mem.Ref, error) {
	for len(c.readers) > 0 {
		ref, err := c.readers[0].Next()
		if err == io.EOF {
			c.readers = c.readers[1:]
			continue
		}
		return ref, err
	}
	return mem.Ref{}, io.EOF
}

// ReadBatch implements BatchReader.
func (c *Concat) ReadBatch(dst []mem.Ref) (int, error) {
	for len(c.readers) > 0 {
		n, err := ReadBatch(c.readers[0], dst)
		if err == io.EOF {
			c.readers = c.readers[1:]
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
	return 0, io.EOF
}

// Counting wraps a Reader and counts the references delivered. The
// simulator uses it to enforce reference budgets and to report
// progress.
type Counting struct {
	r Reader
	n uint64
}

// NewCounting returns a counting wrapper around r.
func NewCounting(r Reader) *Counting { return &Counting{r: r} }

// Next implements Reader.
func (c *Counting) Next() (mem.Ref, error) {
	ref, err := c.r.Next()
	if err == nil {
		c.n++
	}
	return ref, err
}

// ReadBatch implements BatchReader.
func (c *Counting) ReadBatch(dst []mem.Ref) (int, error) {
	n, err := ReadBatch(c.r, dst)
	c.n += uint64(n)
	return n, err
}

// Count returns the number of references delivered so far.
func (c *Counting) Count() uint64 { return c.n }

// Retag wraps a Reader and overrides the PID of every reference. The
// interleaver uses it to assign process identities to per-benchmark
// streams, and the OS-trace machinery uses it to tag handler code with
// mem.KernelPID.
type Retag struct {
	r   Reader
	pid mem.PID
}

// NewRetag returns a Reader identical to r except that every reference
// carries the given PID.
func NewRetag(r Reader, pid mem.PID) *Retag { return &Retag{r: r, pid: pid} }

// Next implements Reader.
func (t *Retag) Next() (mem.Ref, error) {
	ref, err := t.r.Next()
	if err != nil {
		return mem.Ref{}, err
	}
	ref.PID = t.pid
	return ref, nil
}

// ReadBatch implements BatchReader, retagging the delivered batch in
// place. A columnar source gets a fused path that writes the retagged
// PID while materializing references, skipping the second pass.
func (t *Retag) ReadBatch(dst []mem.Ref) (int, error) {
	if cr, ok := t.r.(*ColumnarReader); ok {
		return cr.readBatchPID(dst, t.pid)
	}
	n, err := ReadBatch(t.r, dst)
	for i := 0; i < n; i++ {
		dst[i].PID = t.pid
	}
	return n, err
}

// Drain reads r to exhaustion and returns all references. It is a test
// and tooling helper; do not use it on full-scale synthetic streams.
func Drain(r Reader) ([]mem.Ref, error) {
	var refs []mem.Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return refs, err
		}
		refs = append(refs, ref)
	}
}

// Copy streams every reference from r into w and returns the number
// copied.
func Copy(w Writer, r Reader) (uint64, error) {
	var n uint64
	for {
		ref, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(ref); err != nil {
			return n, err
		}
		n++
	}
}
