package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rampage/internal/mem"
)

func roundTripBinary(t *testing.T, refs []mem.Ref) []mem.Ref {
	t.Helper()
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf)
	if err != nil {
		t.Fatalf("NewFileWriter: %v", err)
	}
	for _, r := range refs {
		if err := fw.Write(r); err != nil {
			t.Fatalf("Write(%v): %v", r, err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	got, err := Drain(fr)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return got
}

func TestBinaryRoundTrip(t *testing.T) {
	refs := []mem.Ref{
		ref(0, mem.IFetch, 0x400000),
		ref(0, mem.IFetch, 0x400004),
		ref(0, mem.Load, 0x10008000),
		ref(3, mem.Store, 0x20),
		ref(0, mem.IFetch, 0x400008),
		ref(3, mem.Load, 0x18),
		ref(mem.KernelPID, mem.IFetch, 0xffff0000),
	}
	got := roundTripBinary(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("round trip yielded %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d: got %v, want %v", i, got[i], refs[i])
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	if got := roundTripBinary(t, nil); len(got) != 0 {
		t.Errorf("empty round trip yielded %d refs", len(got))
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]mem.Ref, int(n))
		for i := range refs {
			refs[i] = mem.Ref{
				PID:  mem.PID(rng.Intn(8)),
				Kind: mem.RefKind(rng.Intn(3)),
				Addr: mem.VAddr(rng.Uint64()),
			}
		}
		var buf bytes.Buffer
		fw, err := NewFileWriter(&buf)
		if err != nil {
			return false
		}
		for _, r := range refs {
			if fw.Write(r) != nil {
				return false
			}
		}
		if fw.Flush() != nil {
			return false
		}
		fr, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		got, err := Drain(fr)
		if err != nil || len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompression(t *testing.T) {
	// Sequential ifetches from one PID should cost ~2 bytes each.
	var buf bytes.Buffer
	fw, _ := NewFileWriter(&buf)
	const n = 1000
	for i := 0; i < n; i++ {
		fw.Write(ref(0, mem.IFetch, 0x400000+uint64(4*i)))
	}
	fw.Flush()
	if perRef := float64(buf.Len()) / n; perRef > 2.5 {
		t.Errorf("sequential trace costs %.2f bytes/ref, want <= 2.5", perRef)
	}
}

func TestBinaryCorruptHeader(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("RM"),
		[]byte("XXXX\x01"),
		[]byte("RMPT\x07"),
	}
	for _, data := range cases {
		if _, err := NewFileReader(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("NewFileReader(%q) = %v, want ErrCorrupt", data, err)
		}
	}
}

func TestBinaryCorruptBody(t *testing.T) {
	// Valid header followed by a record with the same-PID flag set on
	// the first record.
	data := append([]byte("RMPT\x01"), samePIDFlag, 0x00)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Next on corrupt body = %v, want ErrCorrupt", err)
	}
	// Truncated after header byte.
	data = append([]byte("RMPT\x01"), 0x00)
	fr, _ = NewFileReader(bytes.NewReader(data))
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Next on truncated record = %v, want ErrCorrupt", err)
	}
	// Bad kind bits.
	data = append([]byte("RMPT\x01"), 0x03, 0x00, 0x02)
	fr, _ = NewFileReader(bytes.NewReader(data))
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Next on bad kind = %v, want ErrCorrupt", err)
	}
}

func TestBinaryRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	fw, _ := NewFileWriter(&buf)
	if err := fw.Write(mem.Ref{Kind: mem.RefKind(7)}); err == nil {
		t.Error("Write with bad kind succeeded, want error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := []mem.Ref{
		ref(0, mem.IFetch, 0x400000),
		ref(1, mem.Load, 0xdeadbeef),
		ref(2, mem.Store, 0x10),
	}
	var buf bytes.Buffer
	tw := NewTextWriter(&buf)
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	tw.Flush()
	got, err := Drain(NewTextReader(&buf))
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != len(refs) {
		t.Fatalf("got %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d: got %v, want %v", i, got[i], refs[i])
		}
	}
}

func TestTextReaderComments(t *testing.T) {
	in := "# header comment\n\n0 load 0x10\n  # indented comment\n1 s 0x20\n"
	got, err := Drain(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d refs, want 2", len(got))
	}
	if got[1].Kind != mem.Store || got[1].Addr != 0x20 {
		t.Errorf("short-form record parsed as %v", got[1])
	}
}

func TestTextReaderErrors(t *testing.T) {
	bad := []string{
		"0 load",            // missing field
		"x load 0x10",       // bad pid
		"0 jump 0x10",       // bad kind
		"0 load zzz",        // bad addr
		"0 load 0x10 extra", // extra field
	}
	for _, in := range bad {
		_, err := Drain(NewTextReader(strings.NewReader(in)))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("input %q: err = %v, want ErrCorrupt", in, err)
		}
	}
}

func TestCopy(t *testing.T) {
	var buf bytes.Buffer
	fw, _ := NewFileWriter(&buf)
	in := []mem.Ref{ref(0, mem.Load, 1), ref(0, mem.Store, 2)}
	n, err := Copy(fw, NewSliceReader(in))
	if err != nil || n != 2 {
		t.Fatalf("Copy = (%d, %v), want (2, nil)", n, err)
	}
	fw.Flush()
	fr, _ := NewFileReader(&buf)
	got, _ := Drain(fr)
	if len(got) != 2 {
		t.Errorf("copied trace has %d refs, want 2", len(got))
	}
}
