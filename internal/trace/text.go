package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rampage/internal/mem"
)

// Text trace format: one reference per line,
//
//	<pid> <kind> <hex address>
//
// e.g. "3 load 0x10a2f4". Blank lines and lines starting with '#' are
// ignored. The format is intended for hand-written test inputs and for
// inspecting binary traces with rampage-trace.

// TextWriter emits the text trace format.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter returns a text-format Writer.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write implements Writer.
func (tw *TextWriter) Write(r mem.Ref) error {
	_, err := fmt.Fprintf(tw.w, "%d %s 0x%x\n", r.PID, r.Kind, uint64(r.Addr))
	return err
}

// Flush writes buffered lines to the underlying writer.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader parses the text trace format.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader returns a text-format Reader.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{s: bufio.NewScanner(r)}
}

// Next implements Reader.
func (tr *TextReader) Next() (mem.Ref, error) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ref, err := parseTextRef(line)
		if err != nil {
			return mem.Ref{}, fmt.Errorf("%w: line %d: %v", ErrCorrupt, tr.line, err)
		}
		return ref, nil
	}
	if err := tr.s.Err(); err != nil {
		return mem.Ref{}, err
	}
	return mem.Ref{}, io.EOF
}

func parseTextRef(line string) (mem.Ref, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return mem.Ref{}, fmt.Errorf("want 3 fields, got %d", len(fields))
	}
	pid, err := strconv.ParseUint(fields[0], 10, 16)
	if err != nil {
		return mem.Ref{}, fmt.Errorf("bad pid %q", fields[0])
	}
	var kind mem.RefKind
	switch fields[1] {
	case "ifetch", "i":
		kind = mem.IFetch
	case "load", "l", "r":
		kind = mem.Load
	case "store", "s", "w":
		kind = mem.Store
	default:
		return mem.Ref{}, fmt.Errorf("bad kind %q", fields[1])
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return mem.Ref{}, fmt.Errorf("bad address %q", fields[2])
	}
	return mem.Ref{PID: mem.PID(pid), Kind: kind, Addr: mem.VAddr(addr)}, nil
}
