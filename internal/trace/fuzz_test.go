package trace

import (
	"bytes"
	"testing"

	"rampage/internal/mem"
)

// FuzzFileReader feeds arbitrary bytes to the binary trace decoder; it
// must reject or parse them without panicking, and anything it parses
// must re-encode losslessly.
func FuzzFileReader(f *testing.F) {
	// Seed: a valid two-record trace and some corrupt variants.
	var buf bytes.Buffer
	w, _ := NewFileWriter(&buf)
	w.Write(mem.Ref{PID: 1, Kind: mem.IFetch, Addr: 0x400000})
	w.Write(mem.Ref{PID: 1, Kind: mem.Load, Addr: 0x100008})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("RMPT\x01"))
	f.Add([]byte("RMPT\x01\x04\x00"))
	f.Add([]byte("XXXX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		refs, err := Drain(r)
		if err != nil {
			return
		}
		// Round-trip whatever parsed.
		var out bytes.Buffer
		w, err := NewFileWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if err := w.Write(ref); err != nil {
				t.Fatalf("re-encode of parsed ref failed: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewFileReader(&out)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Drain(r2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(got) != len(refs) {
			t.Fatalf("round trip changed length: %d -> %d", len(refs), len(got))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("round trip changed ref %d: %v -> %v", i, refs[i], got[i])
			}
		}
	})
}

// FuzzTextReader does the same for the text format.
func FuzzTextReader(f *testing.F) {
	f.Add("0 load 0x10\n1 s 0x20\n")
	f.Add("# comment\n\n")
	f.Add("garbage line")
	f.Fuzz(func(t *testing.T, data string) {
		r := NewTextReader(bytes.NewReader([]byte(data)))
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
