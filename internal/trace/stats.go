package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"rampage/internal/mem"
)

// Stats summarises a trace stream: total references, breakdown by kind
// and by PID, and the virtual address span touched. rampage-trace uses
// it to reproduce the Table 2 inventory view for generated traces.
type Stats struct {
	Total   uint64
	ByKind  [3]uint64
	ByPID   map[mem.PID]uint64
	MinAddr mem.VAddr
	MaxAddr mem.VAddr
}

// NewStats returns an empty Stats collector.
func NewStats() *Stats {
	return &Stats{ByPID: make(map[mem.PID]uint64), MinAddr: ^mem.VAddr(0)}
}

// Observe records one reference.
func (s *Stats) Observe(r mem.Ref) {
	s.Total++
	if r.Kind <= mem.Store {
		s.ByKind[r.Kind]++
	}
	s.ByPID[r.PID]++
	if r.Addr < s.MinAddr {
		s.MinAddr = r.Addr
	}
	if r.Addr > s.MaxAddr {
		s.MaxAddr = r.Addr
	}
}

// Collect drains r into a Stats summary.
func Collect(r Reader) (*Stats, error) {
	s := NewStats()
	for {
		ref, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return s, nil
			}
			return s, err
		}
		s.Observe(ref)
	}
}

// IFetches returns the number of instruction fetches observed.
func (s *Stats) IFetches() uint64 { return s.ByKind[mem.IFetch] }

// Loads returns the number of loads observed.
func (s *Stats) Loads() uint64 { return s.ByKind[mem.Load] }

// Stores returns the number of stores observed.
func (s *Stats) Stores() uint64 { return s.ByKind[mem.Store] }

// DataRefs returns loads plus stores.
func (s *Stats) DataRefs() uint64 { return s.Loads() + s.Stores() }

// String renders a multi-line report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "refs %d (ifetch %d, load %d, store %d)\n",
		s.Total, s.IFetches(), s.Loads(), s.Stores())
	if s.Total > 0 {
		fmt.Fprintf(&b, "addr span [0x%x, 0x%x]\n", uint64(s.MinAddr), uint64(s.MaxAddr))
	}
	pids := make([]mem.PID, 0, len(s.ByPID))
	for pid := range s.ByPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		fmt.Fprintf(&b, "  pid %d: %d refs\n", pid, s.ByPID[pid])
	}
	return b.String()
}
