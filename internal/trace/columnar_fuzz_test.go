package trace

import (
	"io"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/synth"
)

// FuzzColumnarRoundTrip proves the columnar capture/replay pipeline is
// lossless against the per-reference generator: capturing a synthetic
// workload into a ColumnarBuffer and replaying it through a
// ColumnarReader (in fuzzed batch sizes) must reproduce exactly the
// reference sequence an identical generator delivers one Next() call
// at a time. The fuzzer varies the seed, the Table 2 profile, the
// stream length, the capture limit, and the replay batch size.
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(4000), uint16(0), uint8(64))
	f.Add(uint64(42), uint8(3), uint16(1), uint16(1), uint8(0))
	f.Add(uint64(0xdead), uint8(7), uint16(9999), uint16(512), uint8(255))
	f.Add(uint64(7), uint8(1), uint16(333), uint16(4096), uint8(13))

	profiles := synth.Table2()
	f.Fuzz(func(t *testing.T, seed uint64, profIdx uint8, refSel uint16, limitSel uint16, batchSel uint8) {
		p := profiles[int(profIdx)%len(profiles)]
		wantRefs := uint64(refSel)%20000 + 1
		opts := synth.Options{
			Seed:      seed,
			RefScale:  float64(wantRefs) / (p.TotalMillions * 1e6),
			SizeScale: 1.0 / 1024,
			PID:       7,
		}
		gen, err := synth.NewGenerator(p, opts)
		if err != nil {
			t.Skip("degenerate profile/scale combination")
		}

		limit := uint64(limitSel)
		buf, err := CaptureColumnar(gen, limit)
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		total := uint64(buf.Len()) + gen.Remaining()
		want := total
		if limit > 0 && limit < total {
			want = limit
		}
		if uint64(buf.Len()) != want {
			t.Fatalf("captured %d refs, want %d (limit %d, stream %d)", buf.Len(), want, limit, total)
		}

		replay := NewColumnarReader(buf)
		if replay.Remaining() != uint64(buf.Len()) {
			t.Fatalf("fresh reader Remaining() = %d, want %d", replay.Remaining(), buf.Len())
		}
		batch := int(batchSel)%256 + 1
		oracle, err := synth.NewGenerator(p, opts)
		if err != nil {
			t.Fatalf("second generator with identical options failed: %v", err)
		}
		drainAndCompare(t, replay, oracle, batch, buf.Len())

		// A reset reader must replay the identical stream again.
		replay.Reset()
		oracle2, err := synth.NewGenerator(p, opts)
		if err != nil {
			t.Fatalf("third generator: %v", err)
		}
		drainAndCompare(t, replay, oracle2, batch, buf.Len())
	})
}

// drainAndCompare drains replay in fixed-size ReadBatch windows and
// compares every materialized reference against the oracle generator's
// per-reference Next() stream.
func drainAndCompare(t *testing.T, replay *ColumnarReader, oracle *synth.Generator, batch, total int) {
	t.Helper()
	dst := make([]mem.Ref, batch)
	seen := 0
	for {
		n, err := replay.ReadBatch(dst)
		for i := 0; i < n; i++ {
			want, oerr := oracle.Next()
			if oerr != nil {
				t.Fatalf("oracle ended early at ref %d: %v", seen+i, oerr)
			}
			if dst[i] != want {
				t.Fatalf("ref %d: replay %+v, oracle %+v", seen+i, dst[i], want)
			}
		}
		seen += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("replay error after %d refs: %v", seen, err)
		}
	}
	if seen != total {
		t.Fatalf("replayed %d refs, captured buffer holds %d", seen, total)
	}
	if replay.Remaining() != 0 {
		t.Fatalf("drained reader still reports %d remaining", replay.Remaining())
	}
}
