package trace

import (
	"fmt"
	"io"

	"rampage/internal/mem"
)

// Interleaver merges per-process streams round-robin with a fixed
// reference quantum, reproducing the multiprogramming workload of
// §4.2: "the traces were interleaved, switching to a different trace
// every 500,000 references". Each input stream is retagged with its
// index as the PID. A stream that runs dry is restarted if a factory
// is provided, otherwise it drops out of the rotation; the interleaver
// is exhausted when every stream is.
//
// The interleaver reports quantum boundaries through SwitchCount so
// callers (the simulator's scheduler and the context-switch trace
// inserter) can charge context-switch costs.
type Interleaver struct {
	streams  []Reader
	live     []bool
	liveN    int
	quantum  uint64
	cur      int
	inSlice  uint64
	switches uint64
}

// DefaultQuantum is the paper's time slice: 500,000 references.
const DefaultQuantum = 500_000

// NewInterleaver builds an interleaver over streams with the given
// quantum (references per time slice). Streams are retagged with PIDs
// 0..len-1.
func NewInterleaver(streams []Reader, quantum uint64) (*Interleaver, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("trace: interleaver needs at least one stream")
	}
	if quantum == 0 {
		return nil, fmt.Errorf("trace: interleaver quantum must be positive")
	}
	tagged := make([]Reader, len(streams))
	live := make([]bool, len(streams))
	for i, s := range streams {
		tagged[i] = NewRetag(s, mem.PID(i))
		live[i] = true
	}
	return &Interleaver{
		streams: tagged,
		live:    live,
		liveN:   len(streams),
		quantum: quantum,
	}, nil
}

// Next implements Reader. At each quantum boundary it rotates to the
// next live stream.
func (il *Interleaver) Next() (mem.Ref, error) {
	for il.liveN > 0 {
		if il.inSlice == il.quantum {
			il.rotate()
		}
		if !il.live[il.cur] {
			il.rotate()
			continue
		}
		ref, err := il.streams[il.cur].Next()
		if err == io.EOF {
			il.live[il.cur] = false
			il.liveN--
			continue
		}
		if err != nil {
			return mem.Ref{}, err
		}
		il.inSlice++
		return ref, nil
	}
	return mem.Ref{}, io.EOF
}

// ReadBatch implements BatchReader. A batch never crosses a quantum
// boundary or a stream change, so the delivered reference sequence is
// identical to repeated Next calls.
func (il *Interleaver) ReadBatch(dst []mem.Ref) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	for il.liveN > 0 {
		if il.inSlice == il.quantum {
			il.rotate()
		}
		if !il.live[il.cur] {
			il.rotate()
			continue
		}
		want := uint64(len(dst))
		if left := il.quantum - il.inSlice; left < want {
			want = left
		}
		n, err := ReadBatch(il.streams[il.cur], dst[:want])
		il.inSlice += uint64(n)
		if err == io.EOF {
			il.live[il.cur] = false
			il.liveN--
			if n > 0 {
				return n, nil
			}
			continue
		}
		if n > 0 || err != nil {
			return n, err
		}
	}
	return 0, io.EOF
}

// rotate advances to the next live stream and counts the switch.
func (il *Interleaver) rotate() {
	il.inSlice = 0
	il.switches++
	for i := 1; i <= len(il.streams); i++ {
		next := (il.cur + i) % len(il.streams)
		if il.live[next] {
			il.cur = next
			return
		}
	}
}

// SwitchCount returns the number of quantum-boundary rotations that
// have occurred so far.
func (il *Interleaver) SwitchCount() uint64 { return il.switches }

// CurrentPID returns the PID of the stream the interleaver is currently
// draining.
func (il *Interleaver) CurrentPID() mem.PID { return mem.PID(il.cur) }
