package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rampage/internal/mem"
)

// Binary trace file format
//
// Trace files begin with a fixed header:
//
//	offset 0: magic "RMPT" (4 bytes)
//	offset 4: format version (1 byte, currently 1)
//
// followed by a sequence of records. Each record is:
//
//	header byte: bits 0-1 = RefKind, bit 2 = PID unchanged from the
//	             previous record
//	[uvarint PID]     — only if bit 2 is clear
//	zigzag-varint     — address delta from the previous address seen
//	                    for this PID (first reference for a PID is a
//	                    delta from zero)
//
// Per-PID delta encoding exploits the spatial locality of real traces:
// sequential instruction fetch and strided data sweeps compress to one
// or two bytes per reference.

const (
	fileMagic   = "RMPT"
	fileVersion = 1

	kindMask    = 0x03
	samePIDFlag = 0x04
)

// FileWriter writes the binary trace format to an io.Writer.
type FileWriter struct {
	w       *bufio.Writer
	started bool
	lastPID mem.PID
	lastVA  map[mem.PID]mem.VAddr
	buf     [binary.MaxVarintLen64]byte
}

// NewFileWriter writes the file header and returns a Writer.
func NewFileWriter(w io.Writer) (*FileWriter, error) {
	fw := &FileWriter{
		w:      bufio.NewWriter(w),
		lastVA: make(map[mem.PID]mem.VAddr),
	}
	if _, err := fw.w.WriteString(fileMagic); err != nil {
		return nil, err
	}
	if err := fw.w.WriteByte(fileVersion); err != nil {
		return nil, err
	}
	return fw, nil
}

// Write implements Writer.
func (fw *FileWriter) Write(r mem.Ref) error {
	if r.Kind > mem.Store {
		return fmt.Errorf("trace: cannot encode reference kind %d", r.Kind)
	}
	hdr := byte(r.Kind)
	samePID := fw.started && r.PID == fw.lastPID
	if samePID {
		hdr |= samePIDFlag
	}
	if err := fw.w.WriteByte(hdr); err != nil {
		return err
	}
	if !samePID {
		n := binary.PutUvarint(fw.buf[:], uint64(r.PID))
		if _, err := fw.w.Write(fw.buf[:n]); err != nil {
			return err
		}
	}
	delta := int64(r.Addr) - int64(fw.lastVA[r.PID])
	n := binary.PutVarint(fw.buf[:], delta)
	if _, err := fw.w.Write(fw.buf[:n]); err != nil {
		return err
	}
	fw.started = true
	fw.lastPID = r.PID
	fw.lastVA[r.PID] = r.Addr
	return nil
}

// Flush writes any buffered records to the underlying writer. It must
// be called before the file is closed.
func (fw *FileWriter) Flush() error { return fw.w.Flush() }

// FileReader reads the binary trace format.
type FileReader struct {
	r       *bufio.Reader
	started bool
	lastPID mem.PID
	lastVA  map[mem.PID]mem.VAddr
}

// NewFileReader validates the header and returns a Reader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing version", ErrCorrupt)
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	return &FileReader{r: br, lastVA: make(map[mem.PID]mem.VAddr)}, nil
}

// Next implements Reader.
func (fr *FileReader) Next() (mem.Ref, error) {
	hdr, err := fr.r.ReadByte()
	if err == io.EOF {
		return mem.Ref{}, io.EOF
	}
	if err != nil {
		return mem.Ref{}, err
	}
	kind := mem.RefKind(hdr & kindMask)
	if kind > mem.Store {
		return mem.Ref{}, fmt.Errorf("%w: bad kind %d", ErrCorrupt, kind)
	}
	pid := fr.lastPID
	if hdr&samePIDFlag == 0 {
		v, err := binary.ReadUvarint(fr.r)
		if err != nil {
			return mem.Ref{}, fmt.Errorf("%w: truncated PID", ErrCorrupt)
		}
		if v > uint64(mem.KernelPID) {
			return mem.Ref{}, fmt.Errorf("%w: PID %d out of range", ErrCorrupt, v)
		}
		pid = mem.PID(v)
	} else if !fr.started {
		return mem.Ref{}, fmt.Errorf("%w: first record has same-PID flag", ErrCorrupt)
	}
	delta, err := binary.ReadVarint(fr.r)
	if err != nil {
		return mem.Ref{}, fmt.Errorf("%w: truncated address", ErrCorrupt)
	}
	addr := mem.VAddr(int64(fr.lastVA[pid]) + delta)
	fr.started = true
	fr.lastPID = pid
	fr.lastVA[pid] = addr
	return mem.Ref{PID: pid, Kind: kind, Addr: addr}, nil
}

// ReadBatch implements BatchReader: it decodes records through the
// concrete Next (no interface dispatch) until dst is full or the
// stream ends.
func (fr *FileReader) ReadBatch(dst []mem.Ref) (int, error) {
	for i := range dst {
		ref, err := fr.Next()
		if err != nil {
			if i > 0 && err == io.EOF {
				return i, nil // bufio reports io.EOF again next call
			}
			return i, err
		}
		dst[i] = ref
	}
	return len(dst), nil
}
