package trace

import (
	"io"
	"testing"

	"rampage/internal/mem"
)

func ref(pid mem.PID, kind mem.RefKind, addr uint64) mem.Ref {
	return mem.Ref{PID: pid, Kind: kind, Addr: mem.VAddr(addr)}
}

func mustDrain(t *testing.T, r Reader) []mem.Ref {
	t.Helper()
	refs, err := Drain(r)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return refs
}

func TestSliceReader(t *testing.T) {
	in := []mem.Ref{ref(0, mem.IFetch, 0x100), ref(0, mem.Load, 0x200)}
	r := NewSliceReader(in)
	got := mustDrain(t, r)
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Errorf("Drain = %v, want %v", got, in)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next after exhaustion = %v, want io.EOF", err)
	}
	r.Reset()
	if got := mustDrain(t, r); len(got) != 2 {
		t.Errorf("after Reset got %d refs, want 2", len(got))
	}
}

func TestLimit(t *testing.T) {
	in := make([]mem.Ref, 10)
	for i := range in {
		in[i] = ref(0, mem.Load, uint64(i))
	}
	got := mustDrain(t, NewLimit(NewSliceReader(in), 4))
	if len(got) != 4 {
		t.Fatalf("Limit(4) yielded %d refs, want 4", len(got))
	}
	// Limit larger than the source is capped by the source.
	got = mustDrain(t, NewLimit(NewSliceReader(in), 100))
	if len(got) != 10 {
		t.Errorf("Limit(100) yielded %d refs, want 10", len(got))
	}
	// Zero limit yields nothing.
	got = mustDrain(t, NewLimit(NewSliceReader(in), 0))
	if len(got) != 0 {
		t.Errorf("Limit(0) yielded %d refs, want 0", len(got))
	}
}

func TestConcat(t *testing.T) {
	a := NewSliceReader([]mem.Ref{ref(0, mem.IFetch, 1)})
	b := NewSliceReader(nil)
	c := NewSliceReader([]mem.Ref{ref(0, mem.Load, 2), ref(0, mem.Store, 3)})
	got := mustDrain(t, NewConcat(a, b, c))
	if len(got) != 3 {
		t.Fatalf("Concat yielded %d refs, want 3", len(got))
	}
	if got[0].Addr != 1 || got[1].Addr != 2 || got[2].Addr != 3 {
		t.Errorf("Concat order wrong: %v", got)
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewSliceReader([]mem.Ref{ref(0, mem.Load, 1), ref(0, mem.Load, 2)}))
	mustDrain(t, c)
	if c.Count() != 2 {
		t.Errorf("Count = %d, want 2", c.Count())
	}
}

func TestRetag(t *testing.T) {
	r := NewRetag(NewSliceReader([]mem.Ref{ref(5, mem.Load, 1)}), mem.KernelPID)
	got := mustDrain(t, r)
	if got[0].PID != mem.KernelPID {
		t.Errorf("Retag PID = %d, want KernelPID", got[0].PID)
	}
}

func TestInterleaverRoundRobin(t *testing.T) {
	mk := func(n int) Reader {
		refs := make([]mem.Ref, n)
		for i := range refs {
			refs[i] = ref(0, mem.Load, uint64(i))
		}
		return NewSliceReader(refs)
	}
	il, err := NewInterleaver([]Reader{mk(4), mk(4), mk(4)}, 2)
	if err != nil {
		t.Fatalf("NewInterleaver: %v", err)
	}
	got := mustDrain(t, il)
	if len(got) != 12 {
		t.Fatalf("interleaved %d refs, want 12", len(got))
	}
	wantPIDs := []mem.PID{0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2}
	for i, r := range got {
		if r.PID != wantPIDs[i] {
			t.Fatalf("ref %d has PID %d, want %d (%v)", i, r.PID, wantPIDs[i], got)
		}
	}
	if il.SwitchCount() == 0 {
		t.Error("SwitchCount = 0, want > 0")
	}
}

func TestInterleaverUnevenStreams(t *testing.T) {
	short := NewSliceReader([]mem.Ref{ref(0, mem.Load, 1)})
	long := NewSliceReader([]mem.Ref{
		ref(0, mem.Load, 1), ref(0, mem.Load, 2), ref(0, mem.Load, 3),
		ref(0, mem.Load, 4), ref(0, mem.Load, 5),
	})
	il, err := NewInterleaver([]Reader{short, long}, 2)
	if err != nil {
		t.Fatalf("NewInterleaver: %v", err)
	}
	got := mustDrain(t, il)
	if len(got) != 6 {
		t.Fatalf("interleaved %d refs, want 6", len(got))
	}
	// Stream 0 contributes exactly one ref; the rest come from stream 1.
	var n0 int
	for _, r := range got {
		if r.PID == 0 {
			n0++
		}
	}
	if n0 != 1 {
		t.Errorf("stream 0 contributed %d refs, want 1", n0)
	}
}

func TestInterleaverErrors(t *testing.T) {
	if _, err := NewInterleaver(nil, 10); err == nil {
		t.Error("NewInterleaver(nil) succeeded, want error")
	}
	if _, err := NewInterleaver([]Reader{NewSliceReader(nil)}, 0); err == nil {
		t.Error("NewInterleaver(quantum=0) succeeded, want error")
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Observe(ref(1, mem.IFetch, 0x100))
	s.Observe(ref(1, mem.Load, 0x200))
	s.Observe(ref(2, mem.Store, 0x50))
	if s.Total != 3 || s.IFetches() != 1 || s.Loads() != 1 || s.Stores() != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.DataRefs() != 2 {
		t.Errorf("DataRefs = %d, want 2", s.DataRefs())
	}
	if s.MinAddr != 0x50 || s.MaxAddr != 0x200 {
		t.Errorf("addr span [%#x,%#x], want [0x50,0x200]", s.MinAddr, s.MaxAddr)
	}
	if s.ByPID[1] != 2 || s.ByPID[2] != 1 {
		t.Errorf("ByPID = %v", s.ByPID)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestCollect(t *testing.T) {
	s, err := Collect(NewSliceReader([]mem.Ref{ref(0, mem.Load, 1), ref(0, mem.Load, 2)}))
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if s.Total != 2 {
		t.Errorf("Total = %d, want 2", s.Total)
	}
}
