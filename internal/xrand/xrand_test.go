package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if r.Next() == r.Next() {
		t.Error("zero-value RNG repeats")
	}
}

func TestUintnBounds(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		bound := uint64(n) + 1
		return r.Uintn(bound) < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntn(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestFloatRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Float(); v < 0 || v >= 1 {
			t.Fatalf("Float() = %g", v)
		}
	}
}

func TestChanceExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) fired")
		}
		if !r.Chance(1.1) {
			t.Fatal("Chance(>1) did not fire")
		}
	}
}

func TestGeometric(t *testing.T) {
	r := New(2)
	if v := r.Geometric(0.5); v != 1 {
		t.Errorf("Geometric(<=1) = %d, want 1", v)
	}
	var sum uint64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / n
	if mean < 6 || mean > 10 {
		t.Errorf("Geometric(8) mean = %.2f", mean)
	}
}

func TestMixIsStable(t *testing.T) {
	if Mix(12345) != Mix(12345) {
		t.Error("Mix not a pure function")
	}
	if Mix(1) == Mix(2) {
		t.Error("Mix(1) == Mix(2)")
	}
}
