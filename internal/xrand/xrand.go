// Package xrand provides a tiny deterministic pseudo-random generator
// (SplitMix64) shared by the trace generators and the random
// replacement policies of the cache and TLB models. Unlike math/rand's
// default source it is guaranteed stable across Go releases, which
// keeps every simulation bit-for-bit reproducible from its seed.
package xrand

// RNG is a SplitMix64 generator. The zero value is a valid generator
// seeded with zero; use New to seed explicitly. RNG is not safe for
// concurrent use.
type RNG struct {
	state uint64
}

// New returns a generator with the given seed. Distinct seeds give
// independent streams.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState continues the exact stream.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously captured with State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uintn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uintn(n uint64) uint64 {
	hi, _ := mul64(r.Next(), n)
	return hi
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Uintn(uint64(n))) }

// Float returns a uniform value in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Chance reports true with probability p.
func (r *RNG) Chance(p float64) bool { return r.Float() < p }

// Geometric returns a geometrically distributed value with mean ~mean
// (support 1..), used for loop trip counts and burst lengths.
func (r *RNG) Geometric(mean float64) uint64 {
	if mean <= 1 {
		return 1
	}
	n := uint64(1)
	p := 1 / mean
	for !r.Chance(p) && n < uint64(mean*64) {
		n++
	}
	return n
}

// Mix is a stateless SplitMix64 finalizer: a stable pseudo-random
// function of its argument, useful for giving elements fixed random
// successors (pointer-chase patterns) and for hashing.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}
