package metrics

import (
	"sync"
	"testing"
)

func TestServiceStatsBasics(t *testing.T) {
	var s ServiceStats
	s.Add(SvcCacheHit, 3)
	s.Add(SvcCacheHit, 2)
	s.Add(SvcSimRuns, 1)
	if got := s.Get(SvcCacheHit); got != 5 {
		t.Errorf("cache hits = %d, want 5", got)
	}
	snap := s.Snapshot()
	if len(snap) != int(NumServiceCounters) {
		t.Errorf("snapshot has %d keys, want %d (zeros included)", len(snap), NumServiceCounters)
	}
	if snap["cache_hits"] != 5 || snap["sim_runs"] != 1 || snap["jobs_rejected"] != 0 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestServiceStatsNilReceiver(t *testing.T) {
	var s *ServiceStats
	s.Add(SvcCacheMiss, 1) // must not panic
	if got := s.Get(SvcCacheMiss); got != 0 {
		t.Errorf("nil Get = %d, want 0", got)
	}
	if snap := s.Snapshot(); snap["cache_misses"] != 0 || len(snap) != int(NumServiceCounters) {
		t.Errorf("nil snapshot = %v", snap)
	}
}

func TestServiceStatsConcurrent(t *testing.T) {
	var s ServiceStats
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Add(SvcJobsAccepted, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(SvcJobsAccepted); got != workers*per {
		t.Errorf("concurrent adds = %d, want %d", got, workers*per)
	}
}

func TestServiceCounterNames(t *testing.T) {
	seen := make(map[string]bool)
	for c := ServiceCounter(0); c < NumServiceCounters; c++ {
		name := c.String()
		if name == "unknown" || name == "" {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if NumServiceCounters.String() != "unknown" {
		t.Error("out-of-range counter should be unknown")
	}
}
