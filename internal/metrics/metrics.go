// Package metrics is the simulator's probe layer: a small event
// vocabulary, an Observer interface the model packages call through
// nil-guarded hooks, and a Collector that accumulates counters,
// bounded log2 histograms and periodic interval snapshots.
//
// The package is deliberately dependency-free so every layer of the
// simulator (tlb, pagetable, dram, sim, harness) can import it without
// cycles. Probes are designed for the batched hot loop: with no
// observer attached a probe is a single nil check, and the Collector's
// Count/Observe/Tick paths never allocate, so attaching one does not
// perturb the zero-allocation steady state the batch tests pin.
//
// Probes record *dynamics* — what happened when — and never feed back
// into simulated behaviour: a run's stats.Report is bit-identical with
// or without an observer attached (the harness equivalence tests
// enforce this).
package metrics

import "math/bits"

// Event identifies one probe point in the simulator.
type Event uint8

const (
	// EvTLBHit is a TLB lookup that hit; EvTLBMiss one that walked the
	// page table; EvTLBEvict a translation shot down by page
	// replacement (§2.3); EvTLBFlush a whole-TLB or per-PID flush.
	EvTLBHit Event = iota
	EvTLBMiss
	EvTLBEvict
	EvTLBFlush
	// EvPTProbes observes the chain length of one inverted-page-table
	// walk (the "slower on lookup" cost of §2.2).
	EvPTProbes
	// EvClockSweep observes the entries one clock-hand victim selection
	// examined (§4.5).
	EvClockSweep
	// EvPageFault is one SRAM page-fault handler invocation.
	EvPageFault
	// EvTLBHandlerCycles and EvFaultHandlerCycles observe the simulated
	// cycles one handler-trace replay took.
	EvTLBHandlerCycles
	EvFaultHandlerCycles
	// EvContextSwitch is a quantum-boundary switch; EvSwitchOnMiss a
	// miss-induced switch (§4.6).
	EvContextSwitch
	EvSwitchOnMiss
	// EvDRAMTransfer observes the size in bytes of one real transfer on
	// the Rambus channel (block fills, page fetches, write-backs).
	EvDRAMTransfer
	// EvDRAMRowHit / EvDRAMRowMiss count row-buffer outcomes in the
	// banked RDRAM device (§6.3).
	EvDRAMRowHit
	EvDRAMRowMiss
	// NumEvents is the probe vocabulary size.
	NumEvents
)

// String names the event for reports.
func (e Event) String() string {
	switch e {
	case EvTLBHit:
		return "tlb_hit"
	case EvTLBMiss:
		return "tlb_miss"
	case EvTLBEvict:
		return "tlb_evict"
	case EvTLBFlush:
		return "tlb_flush"
	case EvPTProbes:
		return "pt_probes"
	case EvClockSweep:
		return "clock_sweep"
	case EvPageFault:
		return "page_fault"
	case EvTLBHandlerCycles:
		return "tlb_handler_cycles"
	case EvFaultHandlerCycles:
		return "fault_handler_cycles"
	case EvContextSwitch:
		return "context_switch"
	case EvSwitchOnMiss:
		return "switch_on_miss"
	case EvDRAMTransfer:
		return "dram_transfer"
	case EvDRAMRowHit:
		return "dram_row_hit"
	case EvDRAMRowMiss:
		return "dram_row_miss"
	default:
		return "unknown"
	}
}

// Observer receives probe events. Implementations must not allocate in
// Count, Observe or Tick — they run inside the simulator's hot loops.
// The model packages guard every call with a nil check, so a nil
// observer costs one predictable branch.
type Observer interface {
	// Count adds n occurrences of an event.
	Count(e Event, n uint64)
	// Observe records one occurrence with a magnitude (a chain length,
	// a byte count, a cycle cost): it counts the event and feeds the
	// value into the event's histogram.
	Observe(e Event, v uint64)
	// Tick reports simulated time so the observer can cut periodic
	// interval snapshots. Callers invoke it from scheduling points, not
	// per reference.
	Tick(now uint64)
}

// histBuckets is the histogram resolution: one bucket per power of
// two, covering the full uint64 range (bucket i holds values v with
// bits.Len64(v) == i, i.e. bucket 0 is exactly 0, bucket 1 is 1,
// bucket 2 is 2–3, ...).
const histBuckets = 65

// Histogram is a bounded log2 histogram: fixed storage, no allocation
// on record.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// record adds one value.
func (h *Histogram) record(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Mean returns the average recorded value.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is one interval cut: cumulative counts at a point in
// simulated time.
type Snapshot struct {
	// Now is the simulated cycle at which the snapshot was cut.
	Now uint64 `json:"now"`
	// Counts holds the cumulative per-event counts.
	Counts [NumEvents]uint64 `json:"counts"`
}

// DefaultMaxSnapshots bounds the snapshot ring; once full, further
// ticks stop recording (SnapshotsDropped counts them) so a long run
// cannot grow memory without bound.
const DefaultMaxSnapshots = 1024

// Collector is the standard Observer: per-event counters, per-event
// bounded histograms for Observe'd magnitudes, and periodic cumulative
// snapshots. It is not safe for concurrent use — attach one per run
// (Sweep runs cells in parallel and therefore detaches observers).
type Collector struct {
	counts [NumEvents]uint64
	hists  [NumEvents]Histogram

	interval  uint64 // simulated cycles between snapshots (0 = disabled)
	nextSnap  uint64
	snapshots []Snapshot
	dropped   uint64
}

// NewCollector builds a collector cutting a snapshot every
// intervalCycles of simulated time (0 disables snapshots). Snapshot
// storage is preallocated so Tick never allocates.
func NewCollector(intervalCycles uint64) *Collector {
	c := &Collector{interval: intervalCycles, nextSnap: intervalCycles}
	if intervalCycles > 0 {
		c.snapshots = make([]Snapshot, 0, DefaultMaxSnapshots)
	}
	return c
}

// Count implements Observer.
func (c *Collector) Count(e Event, n uint64) {
	c.counts[e] += n
}

// Observe implements Observer.
func (c *Collector) Observe(e Event, v uint64) {
	c.counts[e]++
	c.hists[e].record(v)
}

// Tick implements Observer: it cuts a snapshot when simulated time has
// crossed the interval boundary. Catch-up is single-step — one
// snapshot per crossing, stamped with the actual time — because the
// simulator's clock can jump by a whole page transfer at once.
func (c *Collector) Tick(now uint64) {
	if c.interval == 0 || now < c.nextSnap {
		return
	}
	if len(c.snapshots) == cap(c.snapshots) {
		c.dropped++
	} else {
		c.snapshots = append(c.snapshots, Snapshot{Now: now, Counts: c.counts})
	}
	for c.nextSnap <= now {
		c.nextSnap += c.interval
	}
}

// Counts returns a copy of the cumulative per-event counters.
func (c *Collector) Counts() [NumEvents]uint64 { return c.counts }

// Hist returns a copy of one event's histogram.
func (c *Collector) Hist(e Event) Histogram { return c.hists[e] }

// Snapshots returns the recorded interval snapshots (shared backing
// array; do not modify).
func (c *Collector) Snapshots() []Snapshot { return c.snapshots }

// SnapshotsDropped returns how many ticks fell past the snapshot cap.
func (c *Collector) SnapshotsDropped() uint64 { return c.dropped }

// HistogramSummary is the JSON form of one event's value distribution.
type HistogramSummary struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Min     uint64            `json:"min"`
	Max     uint64            `json:"max"`
	Mean    float64           `json:"mean"`
	Buckets map[string]uint64 `json:"log2_buckets,omitempty"`
}

// Summary is the JSON-able rollup of a collector's run.
type Summary struct {
	Counts           map[string]uint64           `json:"counts"`
	Histograms       map[string]HistogramSummary `json:"histograms,omitempty"`
	Snapshots        []Snapshot                  `json:"snapshots,omitempty"`
	SnapshotsDropped uint64                      `json:"snapshots_dropped,omitempty"`
}

// bucketLabel names a log2 bucket by its value range.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	lo := uint64(1) << (i - 1)
	hi := lo<<1 - 1
	if lo == hi {
		return itoa(lo)
	}
	return itoa(lo) + "-" + itoa(hi)
}

// itoa formats a uint64 without importing strconv's formatting into
// the hot path (Summary runs once, after the simulation).
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Summary renders the collector for JSON emission. Zero-count events
// are omitted so reports stay readable.
func (c *Collector) Summary() *Summary {
	s := &Summary{Counts: make(map[string]uint64)}
	for e := Event(0); e < NumEvents; e++ {
		if c.counts[e] == 0 {
			continue
		}
		s.Counts[e.String()] = c.counts[e]
		h := &c.hists[e]
		if h.Count == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSummary)
		}
		hs := HistogramSummary{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean(),
			Buckets: make(map[string]uint64),
		}
		for i, n := range h.Buckets {
			if n > 0 {
				hs.Buckets[bucketLabel(i)] = n
			}
		}
		s.Histograms[e.String()] = hs
	}
	s.Snapshots = c.snapshots
	s.SnapshotsDropped = c.dropped
	return s
}
