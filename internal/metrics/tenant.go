package metrics

import "sync"

// TenantCounter identifies one per-tenant serving counter. The tenant
// dimension is open-ended (tenants are client-chosen names), so unlike
// ServiceStats the collector is a mutex-guarded map rather than a fixed
// atomic array.
type TenantCounter uint8

const (
	// TenantAccepted counts jobs admitted to the queue for the tenant;
	// TenantRejected queue-full rejections; TenantRateLimited token-
	// bucket refusals; TenantDone jobs finished successfully (including
	// cache hits, which cost the tenant nothing but answer its request).
	TenantAccepted TenantCounter = iota
	TenantRejected
	TenantRateLimited
	TenantDone
	// NumTenantCounters is the vocabulary size.
	NumTenantCounters
)

// String names the counter for /metricsz documents.
func (c TenantCounter) String() string {
	switch c {
	case TenantAccepted:
		return "tenant_jobs_accepted"
	case TenantRejected:
		return "tenant_jobs_rejected"
	case TenantRateLimited:
		return "tenant_jobs_rate_limited"
	case TenantDone:
		return "tenant_jobs_done"
	default:
		return "unknown"
	}
}

// TenantStats collects per-tenant serving counters. All methods are
// safe for concurrent use and safe on a nil receiver (counts are
// silently discarded), matching ServiceStats so the jobs layer can run
// with metrics detached. The tenant cardinality is bounded to keep a
// client that invents a fresh tenant name per request from growing the
// map without bound; overflow tenants are folded into "other".
type TenantStats struct {
	mu     sync.Mutex
	counts map[string]*[NumTenantCounters]uint64
}

// maxTrackedTenants bounds the tenant label cardinality.
const maxTrackedTenants = 256

// overflowTenant absorbs counts once the cardinality bound is hit.
const overflowTenant = "other"

// Add increments one tenant's counter by n.
func (s *TenantStats) Add(tenant string, c TenantCounter, n uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counts == nil {
		s.counts = make(map[string]*[NumTenantCounters]uint64)
	}
	row, ok := s.counts[tenant]
	if !ok {
		if len(s.counts) >= maxTrackedTenants {
			tenant = overflowTenant
			row = s.counts[tenant]
		}
		if row == nil {
			row = new([NumTenantCounters]uint64)
			s.counts[tenant] = row
		}
	}
	row[c] += n
}

// Get returns one tenant's counter value.
func (s *TenantStats) Get(tenant string, c TenantCounter) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if row, ok := s.counts[tenant]; ok {
		return row[c]
	}
	return 0
}

// Snapshot returns every tenant's counters keyed by tenant then by
// counter name. Tenants appear only once they have recorded a count,
// so the map is empty on an idle service.
func (s *TenantStats) Snapshot() map[string]map[string]uint64 {
	if s == nil {
		return map[string]map[string]uint64{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]uint64, len(s.counts))
	for tenant, row := range s.counts {
		m := make(map[string]uint64, NumTenantCounters)
		for c := TenantCounter(0); c < NumTenantCounters; c++ {
			m[c.String()] = row[c]
		}
		out[tenant] = m
	}
	return out
}
