package metrics

import (
	"fmt"
	"strings"
	"testing"
)

// TestPromWriterFormat pins the text exposition output: HELP/TYPE
// headers per family, label rendering, and integer samples.
func TestPromWriterFormat(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("rampage_requests_total", "Requests served.")
	p.SampleUint("rampage_requests_total", nil, 42)
	p.Counter("rampage_policy_evictions_total", "Evictions by policy.")
	p.SampleUint("rampage_policy_evictions_total", [][2]string{{"policy", "awrp"}}, 7)
	p.SampleUint("rampage_policy_evictions_total", [][2]string{{"policy", "clock"}}, 9)
	p.Gauge("rampage_queue_length", "Queued jobs.")
	p.Sample("rampage_queue_length", nil, 3)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rampage_requests_total Requests served.
# TYPE rampage_requests_total counter
rampage_requests_total 42
# HELP rampage_policy_evictions_total Evictions by policy.
# TYPE rampage_policy_evictions_total counter
rampage_policy_evictions_total{policy="awrp"} 7
rampage_policy_evictions_total{policy="clock"} 9
# HELP rampage_queue_length Queued jobs.
# TYPE rampage_queue_length gauge
rampage_queue_length 3
`
	if b.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPromWriterEscaping checks label values and help text use the
// format's escape rules.
func TestPromWriterEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("m", "line one\nline \\ two")
	p.SampleUint("m", [][2]string{{"tenant", "a\"b\\c\nd"}}, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m line one\\nline \\\\ two\n# TYPE m counter\n" +
		"m{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"
	if b.String() != want {
		t.Fatalf("output %q, want %q", b.String(), want)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestPromWriterStickyError checks the first write error is retained
// and later calls are no-ops.
func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(&errWriter{n: 0})
	p.Counter("rampage_long_family_name_total", "Long.")
	first := p.Err()
	if first == nil {
		t.Fatal("no error after overflowing the sink")
	}
	p.SampleUint("rampage_long_family_name_total", nil, 1)
	if p.Err() != first {
		t.Fatal("sticky error was replaced")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

// TestTenantStats covers the per-tenant collector: nil-safety, counter
// accumulation, snapshot shape and the cardinality bound folding new
// tenants into "other".
func TestTenantStats(t *testing.T) {
	var nilStats *TenantStats
	nilStats.Add("t", TenantAccepted, 1) // must not panic
	if nilStats.Get("t", TenantAccepted) != 0 {
		t.Fatal("nil stats returned a count")
	}
	if snap := nilStats.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil snapshot = %v", snap)
	}

	var s TenantStats
	s.Add("alice", TenantAccepted, 2)
	s.Add("alice", TenantDone, 1)
	s.Add("bob", TenantRateLimited, 3)
	if got := s.Get("alice", TenantAccepted); got != 2 {
		t.Errorf("alice accepted = %d", got)
	}
	snap := s.Snapshot()
	if snap["alice"]["tenant_jobs_accepted"] != 2 || snap["alice"]["tenant_jobs_done"] != 1 {
		t.Errorf("alice snapshot = %v", snap["alice"])
	}
	if snap["bob"]["tenant_jobs_rate_limited"] != 3 {
		t.Errorf("bob snapshot = %v", snap["bob"])
	}

	// Cardinality bound: tenants beyond the cap share "other".
	var bounded TenantStats
	for i := 0; i < maxTrackedTenants; i++ {
		bounded.Add(fmt.Sprintf("tenant-%d", i), TenantAccepted, 1)
	}
	bounded.Add("one-too-many", TenantAccepted, 1)
	bounded.Add("and-another", TenantAccepted, 1)
	if got := bounded.Get(overflowTenant, TenantAccepted); got != 2 {
		t.Errorf("overflow tenant count = %d, want 2", got)
	}
	if got := bounded.Get("one-too-many", TenantAccepted); got != 0 {
		t.Errorf("unbounded tenant tracked past the cap: %d", got)
	}
}

// TestTenantCounterNames pins the counter vocabulary used in /metricsz
// documents.
func TestTenantCounterNames(t *testing.T) {
	want := map[TenantCounter]string{
		TenantAccepted:    "tenant_jobs_accepted",
		TenantRejected:    "tenant_jobs_rejected",
		TenantRateLimited: "tenant_jobs_rate_limited",
		TenantDone:        "tenant_jobs_done",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if NumTenantCounters != 4 {
		t.Errorf("NumTenantCounters = %d (update this test and the name map)", NumTenantCounters)
	}
}
