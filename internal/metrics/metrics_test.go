package metrics

import (
	"encoding/json"
	"testing"
)

func TestEventStrings(t *testing.T) {
	seen := make(map[string]Event)
	for e := Event(0); e < NumEvents; e++ {
		s := e.String()
		if s == "unknown" || s == "" {
			t.Errorf("event %d has no name", e)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("events %d and %d share the name %q", prev, e, s)
		}
		seen[s] = e
	}
	if NumEvents.String() != "unknown" {
		t.Errorf("NumEvents.String() = %q, want unknown", NumEvents.String())
	}
}

func TestCollectorCounts(t *testing.T) {
	c := NewCollector(0)
	c.Count(EvTLBHit, 3)
	c.Count(EvTLBHit, 2)
	c.Count(EvTLBMiss, 1)
	counts := c.Counts()
	if counts[EvTLBHit] != 5 || counts[EvTLBMiss] != 1 {
		t.Errorf("counts = hit %d, miss %d; want 5, 1", counts[EvTLBHit], counts[EvTLBMiss])
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := NewCollector(0)
	// Bucket index is bits.Len64(v): 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3.
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 1 << 40} {
		c.Observe(EvPTProbes, v)
	}
	h := c.Hist(EvPTProbes)
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	if h.Min != 0 || h.Max != 1<<40 {
		t.Errorf("Min/Max = %d/%d, want 0/%d", h.Min, h.Max, uint64(1)<<40)
	}
	if h.Sum != 0+1+2+3+4+7+1<<40 {
		t.Errorf("Sum = %d", h.Sum)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 41: 1}
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if got := h.Mean(); got != float64(h.Sum)/7 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSnapshots(t *testing.T) {
	c := NewCollector(100)
	c.Count(EvPageFault, 1)
	c.Tick(50) // before the first boundary: nothing
	if len(c.Snapshots()) != 0 {
		t.Fatalf("premature snapshot")
	}
	c.Tick(100)
	c.Count(EvPageFault, 2)
	c.Tick(120) // same interval: nothing
	c.Tick(350) // jumped two boundaries: one catch-up snapshot
	snaps := c.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Now != 100 || snaps[0].Counts[EvPageFault] != 1 {
		t.Errorf("snapshot 0 = %+v", snaps[0])
	}
	if snaps[1].Now != 350 || snaps[1].Counts[EvPageFault] != 3 {
		t.Errorf("snapshot 1 = %+v", snaps[1])
	}
	// The next boundary must be past the last tick.
	c.Tick(399)
	if len(c.Snapshots()) != 2 {
		t.Errorf("tick inside the caught-up interval recorded a snapshot")
	}
}

func TestSnapshotBound(t *testing.T) {
	c := NewCollector(1)
	for now := uint64(1); now <= DefaultMaxSnapshots+10; now++ {
		c.Tick(now)
	}
	if got := len(c.Snapshots()); got != DefaultMaxSnapshots {
		t.Errorf("stored %d snapshots, want cap %d", got, DefaultMaxSnapshots)
	}
	if c.SnapshotsDropped() != 10 {
		t.Errorf("dropped = %d, want 10", c.SnapshotsDropped())
	}
}

// TestProbesDoNotAllocate pins the Collector's hot-path contract: an
// attached observer must not add allocations to the simulator loops.
func TestProbesDoNotAllocate(t *testing.T) {
	c := NewCollector(1000)
	var obs Observer = c // through the interface, as the simulator calls it
	var now uint64
	allocs := testing.AllocsPerRun(100, func() {
		now += 100
		obs.Count(EvTLBHit, 1)
		obs.Observe(EvDRAMTransfer, 4096)
		obs.Tick(now)
	})
	if allocs != 0 {
		t.Errorf("probe path allocates %.1f times per round", allocs)
	}
}

func TestSummaryShape(t *testing.T) {
	c := NewCollector(10)
	c.Count(EvTLBHit, 7)
	c.Observe(EvDRAMTransfer, 4096)
	c.Tick(10)
	s := c.Summary()
	if s.Counts["tlb_hit"] != 7 {
		t.Errorf("summary counts = %v", s.Counts)
	}
	if _, ok := s.Counts["tlb_miss"]; ok {
		t.Error("zero-count event present in summary")
	}
	h, ok := s.Histograms["dram_transfer"]
	if !ok || h.Count != 1 || h.Buckets["4096-8191"] != 1 {
		t.Errorf("summary histogram = %+v", h)
	}
	if len(s.Snapshots) != 1 {
		t.Errorf("summary snapshots = %d, want 1", len(s.Snapshots))
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("summary does not marshal: %v", err)
	}
}

func TestBucketLabels(t *testing.T) {
	for i, want := range map[int]string{0: "0", 1: "1", 2: "2-3", 3: "4-7", 13: "4096-8191"} {
		if got := bucketLabel(i); got != want {
			t.Errorf("bucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
}
