package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE header per family followed by
// its samples, one per line, with optional labels. The server's
// /metricsz handler uses it so standard scrapers can consume the
// service counters without a sidecar exporter.
//
// Errors from the underlying writer are sticky: the first one is
// retained, later calls become no-ops, and Err returns it.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps an io.Writer.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// PromContentType is the Content-Type header value for the text
// exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter opens a counter family: HELP and TYPE headers. Samples
// follow via Sample/SampleUint.
func (p *PromWriter) Counter(name, help string) { p.family(name, help, "counter") }

// Gauge opens a gauge family.
func (p *PromWriter) Gauge(name, help string) { p.family(name, help, "gauge") }

func (p *PromWriter) family(name, help, kind string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, kind)
}

// Sample writes one sample line. Labels are emitted in the order
// given; pass nil for an unlabeled sample.
func (p *PromWriter) Sample(name string, labels [][2]string, value float64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %g\n", name, renderLabels(labels), value)
}

// SampleUint writes one sample line with an integer value, avoiding
// the float64 precision loss %g would introduce past 2^53.
func (p *PromWriter) SampleUint(name string, labels [][2]string, value uint64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %d\n", name, renderLabels(labels), value)
}

// Err returns the first underlying write error, if any.
func (p *PromWriter) Err() error { return p.err }

func renderLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the format's label-value escaping:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp applies the format's HELP text escaping: backslash and
// newline (quotes are legal in help text).
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// SortedKeys returns a map's keys in sorted order — Prometheus output
// must be deterministic for the conformance test and for scrape diffs.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
