package metrics

import "sync/atomic"

// ServiceCounter identifies one counter in the experiment service's
// vocabulary. Where the Event probes record *simulated* dynamics from
// inside a single run, service counters record *real* serving
// dynamics — cache behaviour, queue admission, job outcomes — across
// concurrent requests, so their collector must be thread-safe.
type ServiceCounter uint8

const (
	// SvcCacheHit is a request answered from the content-addressed
	// result cache; SvcCacheMiss one whose result had to be computed;
	// SvcCacheDedup one collapsed onto an identical in-flight job
	// (singleflight); SvcCacheEvict an entry pushed out by the byte
	// budget.
	SvcCacheHit ServiceCounter = iota
	SvcCacheMiss
	SvcCacheDedup
	SvcCacheEvict
	// SvcSimRuns counts jobs whose simulation actually executed — the
	// denominator the cache counters save against.
	SvcSimRuns
	// SvcJobsAccepted / SvcJobsRejected count queue admissions and
	// backpressure rejections (HTTP 429); SvcRateLimited counts
	// submissions refused by a tenant's token bucket (also 429, with a
	// bucket-derived Retry-After); the remaining counters are job
	// outcomes.
	SvcJobsAccepted
	SvcJobsRejected
	SvcRateLimited
	SvcJobsDone
	SvcJobsFailed
	SvcJobsCanceled
	// SvcCkptHit is a run warm-started from a stored checkpoint;
	// SvcCkptMiss one that had to start cold; SvcCkptEvict a checkpoint
	// spilled or dropped by the store's resident-byte budget. Together
	// with the store's byte gauge they make the fleet's warm ratio
	// observable on /metricsz.
	SvcCkptHit
	SvcCkptMiss
	SvcCkptEvict
	// SvcDiskHit is a result served from the persistent disk-backed
	// store; SvcDiskStore a document written to it; SvcDiskEvict an
	// entry removed by its byte-budget GC.
	SvcDiskHit
	SvcDiskStore
	SvcDiskEvict
	// Fleet counters: SvcFleetLeased cells handed to workers,
	// SvcFleetCompleted cells whose results came back,
	// SvcFleetRequeued cells reassigned after a worker died or its
	// lease expired, SvcFleetFailed cells that exhausted their retry
	// budget, SvcFleetLocal cells the coordinator executed itself
	// because no live worker remained.
	SvcFleetLeased
	SvcFleetCompleted
	SvcFleetRequeued
	SvcFleetFailed
	SvcFleetLocal
	// NumServiceCounters is the vocabulary size.
	NumServiceCounters
)

// String names the counter for /metricsz documents.
func (c ServiceCounter) String() string {
	switch c {
	case SvcCacheHit:
		return "cache_hits"
	case SvcCacheMiss:
		return "cache_misses"
	case SvcCacheDedup:
		return "cache_inflight_dedups"
	case SvcCacheEvict:
		return "cache_evictions"
	case SvcSimRuns:
		return "sim_runs"
	case SvcJobsAccepted:
		return "jobs_accepted"
	case SvcJobsRejected:
		return "jobs_rejected"
	case SvcRateLimited:
		return "jobs_rate_limited"
	case SvcJobsDone:
		return "jobs_done"
	case SvcJobsFailed:
		return "jobs_failed"
	case SvcJobsCanceled:
		return "jobs_canceled"
	case SvcCkptHit:
		return "checkpoint_hits"
	case SvcCkptMiss:
		return "checkpoint_misses"
	case SvcCkptEvict:
		return "checkpoint_evictions"
	case SvcDiskHit:
		return "disk_hits"
	case SvcDiskStore:
		return "disk_stores"
	case SvcDiskEvict:
		return "disk_evictions"
	case SvcFleetLeased:
		return "fleet_cells_leased"
	case SvcFleetCompleted:
		return "fleet_cells_completed"
	case SvcFleetRequeued:
		return "fleet_cells_requeued"
	case SvcFleetFailed:
		return "fleet_cells_failed"
	case SvcFleetLocal:
		return "fleet_cells_local"
	default:
		return "unknown"
	}
}

// SumSnapshots merges counter snapshots by summing values per name —
// the coordinator's per-worker /metricsz rollup.
func SumSnapshots(snaps ...map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for _, snap := range snaps {
		for name, v := range snap {
			out[name] += v
		}
	}
	return out
}

// ServiceStats is a fixed, allocation-free set of atomic counters.
// All methods are safe for concurrent use and safe on a nil receiver
// (a nil ServiceStats silently discards counts), so the jobs layer can
// run with metrics detached.
type ServiceStats struct {
	counts [NumServiceCounters]atomic.Uint64
}

// Add increments a counter by n.
func (s *ServiceStats) Add(c ServiceCounter, n uint64) {
	if s == nil {
		return
	}
	s.counts[c].Add(n)
}

// Get returns one counter's current value.
func (s *ServiceStats) Get(c ServiceCounter) uint64 {
	if s == nil {
		return 0
	}
	return s.counts[c].Load()
}

// Snapshot returns all counters keyed by name, including zeros so the
// /metricsz document has a stable field set.
func (s *ServiceStats) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, NumServiceCounters)
	for c := ServiceCounter(0); c < NumServiceCounters; c++ {
		if s == nil {
			out[c.String()] = 0
			continue
		}
		out[c.String()] = s.counts[c].Load()
	}
	return out
}
