package dram

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/metrics"
)

// Addressed is a device whose timing depends on where the transfer
// lands, not just its size — the hook for bank/row-buffer models. The
// simulators use TransferTimeAt when the configured device provides
// it, falling back to the flat TransferTime otherwise.
type Addressed interface {
	Device
	// TransferTimeAt returns the time for an n-byte transfer starting
	// at physical address addr. Implementations may keep row-buffer
	// state; calls must reflect the access in that state.
	TransferTimeAt(addr, n uint64) mem.Picos
}

// RDRAM is a banked Rambus DRAM with open-row state — the "more
// sophisticated Direct Rambus simulation" of §6.3. The flat model
// charges every reference the full 50 ns startup; a real RDRAM keeps
// the last row of each bank open in its row buffer, so a reference
// that hits an open row starts much sooner. Transfers that span rows
// pay per crossed row.
//
// RDRAM is stateful (open-row registers); create one per simulated
// machine. It is not safe for concurrent use.
type RDRAM struct {
	// Banks is the number of independent banks (default 16; Direct
	// Rambus parts of the era had 16–32).
	Banks int
	// RowBytes is the row-buffer size (default 2 KB).
	RowBytes uint64
	// RowHit is the startup latency when the row is already open
	// (default 20 ns); RowMiss when it must be activated (default
	// 50 ns, the flat model's figure).
	RowHit  mem.Picos
	RowMiss mem.Picos
	// PerPair is the data rate: time per 2-byte beat (default 1.25 ns).
	PerPair mem.Picos

	openRows []int64 // per bank: open row index, -1 = closed
	stats    RDRAMStats
	obs      metrics.Observer // nil unless probing is attached
}

// RDRAMStats counts row-buffer behaviour.
type RDRAMStats struct {
	RowHits   uint64
	RowMisses uint64
}

// NewRDRAM returns the default banked configuration.
func NewRDRAM() *RDRAM {
	r := &RDRAM{
		Banks:    16,
		RowBytes: 2 << 10,
		RowHit:   20 * mem.Nanosecond,
		RowMiss:  50 * mem.Nanosecond,
		PerPair:  1250 * mem.Picosecond,
	}
	r.reset()
	return r
}

func (r *RDRAM) reset() {
	r.openRows = make([]int64, r.Banks)
	for i := range r.openRows {
		r.openRows[i] = -1
	}
}

// Name implements Device.
func (r *RDRAM) Name() string {
	return fmt.Sprintf("RDRAM (%d banks, %s rows)", r.Banks, mem.FormatSize(r.RowBytes))
}

// TransferTime implements Device with the conservative (row-miss)
// assumption, matching the paper's flat model.
func (r *RDRAM) TransferTime(n uint64) mem.Picos {
	beats := (n + 1) / 2
	return r.RowMiss + mem.Picos(uint64(r.PerPair)*beats)
}

// PeakBandwidth implements Device.
func (r *RDRAM) PeakBandwidth() float64 {
	return 2 / (float64(r.PerPair) / float64(mem.Second))
}

// TransferTimeAt implements Addressed: the transfer walks rows,
// paying the row-hit or row-miss startup per row touched and the beat
// rate for the data.
func (r *RDRAM) TransferTimeAt(addr, n uint64) mem.Picos {
	if r.openRows == nil {
		r.reset()
	}
	var t mem.Picos
	for n > 0 {
		row := int64(addr / r.RowBytes)
		bank := int(uint64(row) % uint64(r.Banks))
		if r.openRows[bank] == row {
			t += r.RowHit
			r.stats.RowHits++
			if r.obs != nil {
				r.obs.Count(metrics.EvDRAMRowHit, 1)
			}
		} else {
			t += r.RowMiss
			r.openRows[bank] = row
			r.stats.RowMisses++
			if r.obs != nil {
				r.obs.Count(metrics.EvDRAMRowMiss, 1)
			}
		}
		chunk := r.RowBytes - addr%r.RowBytes
		if chunk > n {
			chunk = n
		}
		t += mem.Picos(uint64(r.PerPair) * ((chunk + 1) / 2))
		addr += chunk
		n -= chunk
	}
	return t
}

// Stats returns the row-buffer counters.
func (r *RDRAM) Stats() RDRAMStats { return r.stats }

// SetObserver attaches a metrics observer to the row-buffer probes
// (nil detaches). TransferTimeAt is only called for real transfers, so
// the observer sees exactly the channel's activity.
func (r *RDRAM) SetObserver(obs metrics.Observer) { r.obs = obs }

// HitRate returns the fraction of row activations that hit an open
// row.
func (s RDRAMStats) HitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}
