package dram

import (
	"fmt"
	"strings"

	"rampage/internal/mem"
)

// Table1Sizes are the transfer sizes of the paper's Table 1 comparison
// (the text quotes 32 B up to 4 KB units; we sweep the same powers of
// two as the block/page sweep plus the small end).
var Table1Sizes = []uint64{2, 32, 128, 256, 512, 1024, 2048, 4096}

// Table1Row is one line of the efficiency table.
type Table1Row struct {
	Bytes         uint64
	RambusEff     float64 // unpipelined Direct Rambus
	RambusPipeEff float64 // pipelined Direct Rambus (steady state)
	DiskEff       float64
	// RambusCost1GHz is the transfer cost in instructions at a 1 GHz
	// issue rate (the §3.5 example: a 4 KB transfer "costs about 2,600
	// instructions").
	RambusCost1GHz uint64
	DiskCost1GHz   uint64
}

// table1Rambus and table1Disk are the default devices pre-boxed as
// Device values: converting the value structs to the interface on
// every call would allocate, and Table1 runs in a steady-state
// benchmark loop with an allocation guard.
var (
	table1Rambus Device = NewDirectRambus()
	table1Disk   Device = NewDisk()
)

// Table1 computes the efficiency comparison of §3.5. The pipelined
// column reports steady-state efficiency with back-to-back transfers
// (startup fully overlapped), which is how Direct Rambus reaches ~95%
// of peak on small units.
func Table1() []Table1Row {
	rambus, disk := table1Rambus, table1Disk
	clk := mem.MustClock(1000) // 1 GHz issue rate for the cost columns
	rows := make([]Table1Row, 0, len(Table1Sizes))
	for _, n := range Table1Sizes {
		row := Table1Row{
			Bytes:          n,
			RambusEff:      Efficiency(rambus, n),
			RambusPipeEff:  pipelinedEfficiency(rambus, n),
			DiskEff:        Efficiency(disk, n),
			RambusCost1GHz: uint64(clk.CyclesFrom(rambus.TransferTime(n))),
			DiskCost1GHz:   uint64(clk.CyclesFrom(disk.TransferTime(n))),
		}
		rows = append(rows, row)
	}
	return rows
}

// pipelinedEfficiency measures steady-state channel utilization with
// back-to-back n-byte transfers on a pipelined channel. The channel is
// a throwaway value on the stack: its counters are discarded, only the
// completion time matters.
func pipelinedEfficiency(d Device, n uint64) float64 {
	ch := Channel{dev: d, pipelined: true}
	const reps = 1024
	var t mem.Picos
	for i := 0; i < reps; i++ {
		t = ch.Request(0, n) // all issued at time zero: fully queued
	}
	ideal := float64(n*reps) / d.PeakBandwidth() * float64(mem.Second)
	return ideal / float64(t)
}

// FormatTable1 renders the table in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %14s %10s %14s %12s\n",
		"bytes", "rambus %", "rambus-pipe %", "disk %", "rambus@1GHz", "disk@1GHz")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12.1f %14.1f %10.4f %14d %12d\n",
			r.Bytes, 100*r.RambusEff, 100*r.RambusPipeEff, 100*r.DiskEff,
			r.RambusCost1GHz, r.DiskCost1GHz)
	}
	return b.String()
}
