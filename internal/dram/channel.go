package dram

import "rampage/internal/mem"

// Channel adds occupancy to a Device: requests are serialized on the
// channel, and an optionally pipelined channel overlaps a reference's
// startup (row/control packets) with the previous reference's data
// transfer — Direct Rambus's headline feature (§3.3: "it allows
// multiple independent references to be pipelined, allowing a
// theoretical 95% of peak bandwidth ... on units as small as 2
// bytes").
//
// The paper's main results use the unpipelined mode; the pipelined
// mode is the §6.3 future-work ablation. The channel also gives the
// context-switch-on-miss scheduler the completion times it needs to
// overlap DRAM transfers with the execution of other processes.
type Channel struct {
	dev       Device
	pipelined bool
	busyUntil mem.Picos
	stats     ChannelStats
}

// ChannelStats counts channel activity.
type ChannelStats struct {
	// Requests is the number of transfers issued.
	Requests uint64
	// BytesMoved is the total payload.
	BytesMoved uint64
	// BusyTime is the total time the channel was occupied.
	BusyTime mem.Picos
	// QueueTime is the total time requests waited for the channel.
	QueueTime mem.Picos
}

// NewChannel wraps dev. With pipelined set, a request's startup
// latency may overlap the previous request's data phase.
func NewChannel(dev Device, pipelined bool) *Channel {
	return &Channel{dev: dev, pipelined: pipelined}
}

// Device returns the wrapped device.
func (c *Channel) Device() Device { return c.dev }

// Stats returns a copy of the counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// BusyUntil returns the absolute time at which the channel becomes
// idle.
func (c *Channel) BusyUntil() mem.Picos { return c.busyUntil }

// Request issues an n-byte transfer at absolute time now and returns
// the absolute completion time. Requests are serialized: a request
// arriving while the channel is busy waits (unpipelined) or overlaps
// its startup with the in-flight data phase (pipelined).
func (c *Channel) Request(now mem.Picos, n uint64) mem.Picos {
	c.stats.Requests++
	c.stats.BytesMoved += n
	full := c.dev.TransferTime(n)
	start := now
	if c.busyUntil > now {
		c.stats.QueueTime += c.busyUntil - now
		start = c.busyUntil
	}
	var done mem.Picos
	if c.pipelined && c.busyUntil > now {
		// Startup overlaps the in-flight transfer: the data phase
		// begins as soon as the channel frees, provided the startup
		// (issued at now) has elapsed by then.
		startupDone := now + startupTime(c.dev)
		dataStart := maxPicos(c.busyUntil, startupDone)
		done = dataStart + (full - startupTime(c.dev))
	} else {
		done = start + full
	}
	c.stats.BusyTime += done - start
	c.busyUntil = done
	return done
}

// StartupTime extracts the fixed startup latency of a device, used by
// pipelined overlap computations: a pipelined channel can hide this
// portion of a transfer behind the previous transfer's data phase.
func StartupTime(d Device) mem.Picos { return startupTime(d) }

// startupTime extracts the fixed startup latency of a device, used by
// the pipelined overlap computation.
func startupTime(d Device) mem.Picos {
	switch dev := d.(type) {
	case DirectRambus:
		return dev.StartLatency
	case SDRAM:
		return dev.StartLatency
	case Disk:
		return dev.Latency
	case *RDRAM:
		return dev.RowMiss
	case MultiChannel:
		return startupTime(dev.dev)
	default:
		return d.TransferTime(0)
	}
}

func maxPicos(a, b mem.Picos) mem.Picos {
	if a > b {
		return a
	}
	return b
}

// Reset clears the channel's occupancy and statistics.
func (c *Channel) Reset() {
	c.busyUntil = 0
	c.stats = ChannelStats{}
}
