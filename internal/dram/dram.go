// Package dram models the timed devices at the bottom of the simulated
// hierarchies:
//
//   - Direct Rambus as the paper simulates it (§3.3, §4.3): 50 ns
//     before the first datum, then 2 bytes every 1.25 ns, no pipelining
//     of independent references — peak 1.6 GB/s;
//   - a pipelined Direct Rambus channel (the §6.3 future-work variant)
//     in which a reference's control phase overlaps the previous data
//     transfer, approaching the documented 95% of peak bandwidth on
//     small units;
//   - a wide SDRAM system (the §3.3 comparison: 128-bit bus, 50 ns
//     initial delay, 10 ns per beat — the "same 1.5 Gbyte/s" design);
//   - a disk (10 ms latency, 40 MB/s), used only for the Table 1
//     efficiency comparison.
//
// Devices report time; capacity is modeled as infinite ("infinite DRAM
// ... with no misses to disk", §4.3).
package dram

import (
	"fmt"

	"rampage/internal/mem"
)

// Device is a memory or storage device characterized by the time to
// transfer n contiguous bytes starting from an idle state.
type Device interface {
	// Name labels the device in tables.
	Name() string
	// TransferTime returns the total time for one n-byte transfer
	// including startup latency.
	TransferTime(n uint64) mem.Picos
	// PeakBandwidth returns the streaming bandwidth in bytes/second
	// once startup latency is amortized away.
	PeakBandwidth() float64
}

// Efficiency returns the fraction of a device's peak bandwidth
// actually delivered by an n-byte transfer — the Table 1 metric
// ("percentage of available bandwidth actually used").
func Efficiency(d Device, n uint64) float64 {
	if n == 0 {
		return 0
	}
	ideal := float64(n) / d.PeakBandwidth() // seconds at peak
	actual := float64(d.TransferTime(n)) / float64(mem.Second)
	if actual == 0 {
		return 1
	}
	return ideal / actual
}

// DirectRambus is the paper's DRAM: a 2-byte-wide channel clocked at
// 1.25 ns per transfer with 50 ns of startup latency per reference.
type DirectRambus struct {
	// StartLatency is the time before the first datum (default 50 ns).
	StartLatency mem.Picos
	// PerPair is the time per 2-byte beat (default 1.25 ns).
	PerPair mem.Picos
}

// NewDirectRambus returns the §4.3 configuration: 50 ns + 1.25 ns per
// 2 bytes.
func NewDirectRambus() DirectRambus {
	return DirectRambus{
		StartLatency: 50 * mem.Nanosecond,
		PerPair:      1250 * mem.Picosecond,
	}
}

// Name implements Device.
func (d DirectRambus) Name() string { return "Direct Rambus" }

// TransferTime implements Device: startup plus one beat per 2 bytes.
func (d DirectRambus) TransferTime(n uint64) mem.Picos {
	beats := (n + 1) / 2
	return d.StartLatency + mem.Picos(uint64(d.PerPair)*beats)
}

// PeakBandwidth implements Device: 2 bytes per beat.
func (d DirectRambus) PeakBandwidth() float64 {
	return 2 / (float64(d.PerPair) / float64(mem.Second))
}

// SDRAM is the §3.3 comparison design: a wide synchronous DRAM bus
// with an initial delay and a fixed beat time.
type SDRAM struct {
	// StartLatency is the initial delay (default 50 ns).
	StartLatency mem.Picos
	// BeatTime is the bus cycle (default 10 ns).
	BeatTime mem.Picos
	// BusBytes is the bus width in bytes (default 16 = 128 bits).
	BusBytes uint64
}

// NewSDRAM returns the §3.3 configuration: 128-bit bus, 50 ns initial
// delay, 10 ns beats — 1.6 GB/s peak like Direct Rambus.
func NewSDRAM() SDRAM {
	return SDRAM{
		StartLatency: 50 * mem.Nanosecond,
		BeatTime:     10 * mem.Nanosecond,
		BusBytes:     16,
	}
}

// Name implements Device.
func (d SDRAM) Name() string { return "SDRAM" }

// TransferTime implements Device.
func (d SDRAM) TransferTime(n uint64) mem.Picos {
	beats := (n + d.BusBytes - 1) / d.BusBytes
	return d.StartLatency + mem.Picos(uint64(d.BeatTime)*beats)
}

// PeakBandwidth implements Device.
func (d SDRAM) PeakBandwidth() float64 {
	return float64(d.BusBytes) / (float64(d.BeatTime) / float64(mem.Second))
}

// Disk is the Table 1 comparison device: 10 ms latency, 40 MB/s
// transfer.
type Disk struct {
	// Latency is the positioning time (default 10 ms).
	Latency mem.Picos
	// BytesPerSecond is the media rate (default 40 MB/s).
	BytesPerSecond float64
}

// NewDisk returns the Table 1 disk: 10 ms latency, 40 MB/s.
func NewDisk() Disk {
	return Disk{Latency: 10 * mem.Millisecond, BytesPerSecond: 40e6}
}

// Name implements Device.
func (d Disk) Name() string { return "Disk" }

// TransferTime implements Device.
func (d Disk) TransferTime(n uint64) mem.Picos {
	media := float64(n) / d.BytesPerSecond * float64(mem.Second)
	return d.Latency + mem.Picos(media)
}

// PeakBandwidth implements Device.
func (d Disk) PeakBandwidth() float64 { return d.BytesPerSecond }

// String renders a device summary for reports.
func Describe(d Device) string {
	return fmt.Sprintf("%s (peak %.3g MB/s, 4KB transfer %.3g us)",
		d.Name(), d.PeakBandwidth()/1e6,
		float64(d.TransferTime(4096))/float64(mem.Microsecond))
}
