package dram

import (
	"fmt"

	"rampage/internal/mem"
)

// MultiChannel stripes transfers across n independent Rambus channels
// (§3.3: "It is also possible to have multiple Rambus channels to
// increase bandwidth, though latency is not improved"). A transfer's
// data phase shortens by the channel count; the startup latency does
// not.
type MultiChannel struct {
	dev      Device
	channels uint64
}

// NewMultiChannel stripes dev across n channels. n must be positive.
func NewMultiChannel(dev Device, n uint64) (MultiChannel, error) {
	if n == 0 {
		return MultiChannel{}, fmt.Errorf("dram: channel count must be positive")
	}
	return MultiChannel{dev: dev, channels: n}, nil
}

// Name implements Device.
func (m MultiChannel) Name() string {
	return fmt.Sprintf("%s x%d", m.dev.Name(), m.channels)
}

// TransferTime implements Device: the startup is unchanged, the data
// phase divides by the channel count (each channel moves an equal
// stripe; the longest stripe bounds completion).
func (m MultiChannel) TransferTime(n uint64) mem.Picos {
	startup := startupTime(m.dev)
	full := m.dev.TransferTime(n)
	data := full - startup
	stripe := (uint64(data) + m.channels - 1) / m.channels
	return startup + mem.Picos(stripe)
}

// PeakBandwidth implements Device.
func (m MultiChannel) PeakBandwidth() float64 {
	return m.dev.PeakBandwidth() * float64(m.channels)
}

// Channels returns the stripe count.
func (m MultiChannel) Channels() uint64 { return m.channels }
