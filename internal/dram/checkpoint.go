package dram

import "rampage/internal/checkpoint"

// EncodeDeviceState serializes a DRAM device's mutable state. Only the
// banked *RDRAM carries state (open-row registers and row-buffer
// counters); every other device — flat Direct Rambus, SDRAM, disk and
// the MultiChannel wrapper, which never routes Addressed calls to its
// inner devices — is a pure timing function. A presence byte
// distinguishes the cases so encode and decode agree on the device's
// statefulness.
func EncodeDeviceState(e *checkpoint.Enc, d Device) {
	e.Marker(checkpoint.MarkDRAM)
	r, ok := d.(*RDRAM)
	if !ok {
		e.Bool(false)
		return
	}
	e.Bool(true)
	if r.openRows == nil {
		r.reset() // materialize the lazy registers so geometry is fixed
	}
	e.I64s(r.openRows)
	e.U64(r.stats.RowHits)
	e.U64(r.stats.RowMisses)
}

// DecodeDeviceState restores state captured by EncodeDeviceState into
// the same kind of device.
func DecodeDeviceState(d *checkpoint.Dec, dev Device) {
	d.Marker(checkpoint.MarkDRAM)
	stateful := d.Bool()
	r, ok := dev.(*RDRAM)
	if stateful != ok {
		d.Fail("dram: checkpoint statefulness %t does not match device %T", stateful, dev)
		return
	}
	if !stateful {
		return
	}
	if r.openRows == nil {
		r.reset()
	}
	d.I64sInto(r.openRows)
	r.stats.RowHits = d.U64()
	r.stats.RowMisses = d.U64()
}
