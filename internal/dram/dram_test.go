package dram

import (
	"math"
	"testing"
	"testing/quick"

	"rampage/internal/mem"
)

func TestDirectRambusTiming(t *testing.T) {
	d := NewDirectRambus()
	cases := []struct {
		n    uint64
		want mem.Picos
	}{
		{0, 50 * mem.Nanosecond},
		{2, 50*mem.Nanosecond + 1250},
		{1, 50*mem.Nanosecond + 1250},         // partial beat rounds up
		{32, 50*mem.Nanosecond + 16*1250},     // one L1 block: 70 ns
		{4096, 50*mem.Nanosecond + 2048*1250}, // 2610 ns
	}
	for _, tc := range cases {
		if got := d.TransferTime(tc.n); got != tc.want {
			t.Errorf("TransferTime(%d) = %d ps, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRambus4KBCostAbout2600Instructions(t *testing.T) {
	// §3.5: "with a 1GHz issue rate ... a 4Kbyte Direct Rambus transfer
	// costs about 2,600 instructions".
	d := NewDirectRambus()
	clk := mem.MustClock(1000)
	got := clk.CyclesFrom(d.TransferTime(4096))
	if got < 2500 || got > 2700 {
		t.Errorf("4KB Rambus transfer = %d instructions at 1GHz, want ~2600", got)
	}
}

func TestDisk4KBCostAbout10MInstructions(t *testing.T) {
	// §3.5: "a 4Kbyte disk transfer costs about 10-million instructions".
	d := NewDisk()
	clk := mem.MustClock(1000)
	got := clk.CyclesFrom(d.TransferTime(4096))
	if got < 9_000_000 || got > 11_000_000 {
		t.Errorf("4KB disk transfer = %d instructions at 1GHz, want ~10M", got)
	}
}

func TestPeakBandwidths(t *testing.T) {
	// Direct Rambus: 2 bytes / 1.25 ns = 1.6 GB/s (§3.3's "1.5Gbyte/s"
	// rounds the same design).
	if bw := NewDirectRambus().PeakBandwidth(); math.Abs(bw-1.6e9) > 1e6 {
		t.Errorf("Rambus peak = %g B/s, want 1.6e9", bw)
	}
	// SDRAM: 16 bytes / 10 ns = 1.6 GB/s — same peak as Rambus, as the
	// paper observes.
	if bw := NewSDRAM().PeakBandwidth(); math.Abs(bw-1.6e9) > 1e6 {
		t.Errorf("SDRAM peak = %g B/s, want 1.6e9", bw)
	}
	if bw := NewDisk().PeakBandwidth(); bw != 40e6 {
		t.Errorf("disk peak = %g B/s, want 4e7", bw)
	}
}

func TestSDRAMTiming(t *testing.T) {
	d := NewSDRAM()
	// One 128-bit beat.
	if got := d.TransferTime(16); got != 60*mem.Nanosecond {
		t.Errorf("SDRAM 16B = %d ps, want 60ns", got)
	}
	// Partial beat rounds up.
	if got := d.TransferTime(17); got != 70*mem.Nanosecond {
		t.Errorf("SDRAM 17B = %d ps, want 70ns", got)
	}
}

func TestEfficiencyShape(t *testing.T) {
	rambus := NewDirectRambus()
	disk := NewDisk()
	// Efficiency grows with transfer size on both devices.
	prevR, prevD := -1.0, -1.0
	for _, n := range Table1Sizes {
		r, d := Efficiency(rambus, n), Efficiency(disk, n)
		if r <= prevR || d <= prevD {
			t.Fatalf("efficiency not increasing at %d bytes", n)
		}
		if r <= d {
			t.Errorf("at %d bytes Rambus efficiency %.4f <= disk %.6f", n, r, d)
		}
		prevR, prevD = r, d
	}
	// Spot values: 4KB Rambus ~98%, 4KB disk ~1%.
	if e := Efficiency(rambus, 4096); e < 0.97 || e > 0.99 {
		t.Errorf("Rambus 4KB efficiency = %.3f, want ~0.98", e)
	}
	if e := Efficiency(disk, 4096); e > 0.02 {
		t.Errorf("disk 4KB efficiency = %.4f, want ~0.01", e)
	}
	if Efficiency(rambus, 0) != 0 {
		t.Error("zero-byte efficiency != 0")
	}
}

func TestEfficiencyBoundedProperty(t *testing.T) {
	rambus := NewDirectRambus()
	f := func(n uint16) bool {
		e := Efficiency(rambus, uint64(n))
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelSerializes(t *testing.T) {
	ch := NewChannel(NewDirectRambus(), false)
	t1 := ch.Request(0, 128)
	// A second request at time 0 must wait for the first.
	t2 := ch.Request(0, 128)
	single := NewDirectRambus().TransferTime(128)
	if t1 != single {
		t.Errorf("first completion = %d, want %d", t1, single)
	}
	if t2 != 2*single {
		t.Errorf("second completion = %d, want %d (serialized)", t2, 2*single)
	}
	s := ch.Stats()
	if s.Requests != 2 || s.BytesMoved != 256 {
		t.Errorf("stats = %+v", s)
	}
	if s.QueueTime != single {
		t.Errorf("QueueTime = %d, want %d", s.QueueTime, single)
	}
}

func TestChannelIdleGap(t *testing.T) {
	ch := NewChannel(NewDirectRambus(), false)
	done := ch.Request(0, 32)
	// A request after the channel went idle starts immediately.
	later := done + 100*mem.Nanosecond
	t2 := ch.Request(later, 32)
	if t2 != later+NewDirectRambus().TransferTime(32) {
		t.Errorf("idle-channel request delayed: %d", t2)
	}
}

func TestPipelinedChannelOverlapsStartup(t *testing.T) {
	d := NewDirectRambus()
	plain := NewChannel(d, false)
	pipe := NewChannel(d, true)
	const n = 128
	var tPlain, tPipe mem.Picos
	for i := 0; i < 10; i++ {
		tPlain = plain.Request(0, n)
		tPipe = pipe.Request(0, n)
	}
	if tPipe >= tPlain {
		t.Errorf("pipelined back-to-back (%d) not faster than unpipelined (%d)", tPipe, tPlain)
	}
	// Steady state: each extra transfer adds only the data phase.
	dataPhase := d.TransferTime(n) - d.StartLatency
	extra := tPipe - d.TransferTime(n)
	if extra != 9*dataPhase {
		t.Errorf("pipelined marginal cost = %d, want %d", extra/9, dataPhase)
	}
}

func TestPipelinedEfficiency95Percent(t *testing.T) {
	// §3.3: pipelining allows "a theoretical 95% of peak bandwidth ...
	// on units as small as 2 bytes". Steady-state back-to-back small
	// transfers must approach peak.
	rows := Table1()
	small := rows[0] // 2 bytes
	if small.RambusPipeEff < 0.90 {
		t.Errorf("pipelined 2B efficiency = %.3f, want >= 0.90", small.RambusPipeEff)
	}
	if small.RambusEff > 0.05 {
		t.Errorf("unpipelined 2B efficiency = %.3f, want tiny", small.RambusEff)
	}
}

func TestChannelReset(t *testing.T) {
	ch := NewChannel(NewDirectRambus(), false)
	ch.Request(0, 4096)
	ch.Reset()
	if ch.BusyUntil() != 0 || ch.Stats().Requests != 0 {
		t.Error("Reset did not clear channel state")
	}
}

func TestTable1Layout(t *testing.T) {
	rows := Table1()
	if len(rows) != len(Table1Sizes) {
		t.Fatalf("Table1 has %d rows, want %d", len(rows), len(Table1Sizes))
	}
	for i, r := range rows {
		if r.Bytes != Table1Sizes[i] {
			t.Errorf("row %d bytes = %d, want %d", i, r.Bytes, Table1Sizes[i])
		}
	}
	// The §3.5 cost examples.
	last := rows[len(rows)-1]
	if last.Bytes != 4096 {
		t.Fatal("last row is not 4KB")
	}
	if last.RambusCost1GHz < 2500 || last.RambusCost1GHz > 2700 {
		t.Errorf("4KB Rambus cost = %d, want ~2600", last.RambusCost1GHz)
	}
	if last.DiskCost1GHz < 9_000_000 || last.DiskCost1GHz > 11_000_000 {
		t.Errorf("4KB disk cost = %d, want ~10M", last.DiskCost1GHz)
	}
	out := FormatTable1(rows)
	if out == "" {
		t.Error("FormatTable1 empty")
	}
}

func TestDescribe(t *testing.T) {
	if s := Describe(NewDirectRambus()); s == "" {
		t.Error("Describe empty")
	}
}

func TestMultiChannel(t *testing.T) {
	base := NewDirectRambus()
	if _, err := NewMultiChannel(base, 0); err == nil {
		t.Error("zero channels accepted")
	}
	m2, err := NewMultiChannel(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	// §3.3: more channels increase bandwidth but not latency.
	if m2.TransferTime(0) != base.TransferTime(0) {
		t.Error("striping changed the startup latency")
	}
	// A 4KB transfer: 50ns + 2560ns/2 = 1330ns.
	if got := m2.TransferTime(4096); got != 50*mem.Nanosecond+1280*mem.Nanosecond {
		t.Errorf("x2 4KB = %d ps, want 1330ns", got)
	}
	if m2.PeakBandwidth() != 2*base.PeakBandwidth() {
		t.Error("peak bandwidth did not double")
	}
	if m2.Channels() != 2 || m2.Name() == "" {
		t.Error("metadata wrong")
	}
	// Efficiency of small transfers is WORSE with more channels (the
	// startup is amortized over less time).
	if Efficiency(m2, 128) >= Efficiency(base, 128) {
		t.Error("striping should hurt small-transfer efficiency")
	}
}

func TestMultiChannelMonotone(t *testing.T) {
	base := NewDirectRambus()
	prev := base.TransferTime(4096)
	for n := uint64(2); n <= 8; n *= 2 {
		m, _ := NewMultiChannel(base, n)
		cur := m.TransferTime(4096)
		if cur >= prev {
			t.Fatalf("x%d transfer (%d) not faster than x%d (%d)", n, cur, n/2, prev)
		}
		prev = cur
	}
}

func TestRDRAMRowBuffer(t *testing.T) {
	r := NewRDRAM()
	// Cold access: row miss.
	t1 := r.TransferTimeAt(0, 128)
	wantMiss := 50*mem.Nanosecond + 64*1250
	if t1 != wantMiss {
		t.Errorf("cold 128B = %d ps, want %d", t1, wantMiss)
	}
	// Same row again: row hit, 20ns startup.
	t2 := r.TransferTimeAt(128, 128)
	wantHit := 20*mem.Nanosecond + 64*1250
	if t2 != wantHit {
		t.Errorf("warm 128B = %d ps, want %d", t2, wantHit)
	}
	s := r.Stats()
	if s.RowMisses != 1 || s.RowHits != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", s.HitRate())
	}
}

func TestRDRAMRowCrossing(t *testing.T) {
	r := NewRDRAM()
	// A 4KB transfer spans two 2KB rows: two activations.
	r.TransferTimeAt(0, 4096)
	if r.Stats().RowMisses != 2 {
		t.Errorf("4KB cold transfer activated %d rows, want 2", r.Stats().RowMisses)
	}
	// Unaligned: starts mid-row, still walks row boundaries correctly.
	r2 := NewRDRAM()
	r2.TransferTimeAt(1024, 2048) // rows 0 and 1
	if r2.Stats().RowMisses != 2 {
		t.Errorf("unaligned 2KB transfer activated %d rows, want 2", r2.Stats().RowMisses)
	}
}

func TestRDRAMBankConflict(t *testing.T) {
	r := NewRDRAM()
	// Rows 0 and 16 map to bank 0: the second access closes row 0.
	conflictAddr := uint64(16) * r.RowBytes
	r.TransferTimeAt(0, 64)
	r.TransferTimeAt(conflictAddr, 64)
	t3 := r.TransferTimeAt(0, 64) // row 0 was closed: miss again
	if t3 < 50*mem.Nanosecond {
		t.Errorf("bank-conflicted access = %d ps, want a row miss", t3)
	}
	if r.Stats().RowMisses != 3 {
		t.Errorf("RowMisses = %d, want 3", r.Stats().RowMisses)
	}
}

func TestRDRAMFlatFallbackConservative(t *testing.T) {
	r := NewRDRAM()
	flat := r.TransferTime(1024)
	rambus := NewDirectRambus().TransferTime(1024)
	if flat != rambus {
		t.Errorf("RDRAM flat timing %d != paper model %d", flat, rambus)
	}
	if r.PeakBandwidth() != NewDirectRambus().PeakBandwidth() {
		t.Error("peak bandwidth differs from the paper model")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestRDRAMStartupTime(t *testing.T) {
	if StartupTime(NewRDRAM()) != 50*mem.Nanosecond {
		t.Error("RDRAM startup should be the row-miss latency")
	}
	mc, _ := NewMultiChannel(NewDirectRambus(), 2)
	if StartupTime(mc) != 50*mem.Nanosecond {
		t.Error("multi-channel startup should be the inner device's")
	}
}
