package sim

import (
	"fmt"

	"rampage/internal/mem"
	"rampage/internal/stats"
)

// This file implements machine-level invariant checks for the two
// production hierarchies. The checks run only from the invariant
// observer (package oracle) at scheduling points and at run end — never
// inside an Exec — so they see the machines between references, where
// every invariant must hold.

// checkTimeAttribution verifies that total simulated time equals the
// per-level attribution: every cycle is charged through Report.Charge,
// which updates both, so a mismatch means someone advanced time outside
// the accounting.
func checkTimeAttribution(rep *stats.Report) error {
	var sum mem.Cycles
	for l := stats.Level(0); l < stats.NumLevels; l++ {
		sum += rep.LevelTime[l]
	}
	if rep.Cycles != sum {
		return fmt.Errorf("sim: %d total cycles but %d attributed to levels", rep.Cycles, sum)
	}
	return nil
}

// checkDRAMAccounting verifies transfer/byte bookkeeping: every real
// Rambus transfer moves exactly one unit (an L2 block in the baseline,
// an SRAM page in RAMpage).
func checkDRAMAccounting(rep *stats.Report, unitBytes uint64) error {
	if rep.DRAMBytes != rep.DRAMTransfers*unitBytes {
		return fmt.Errorf("sim: %d DRAM transfers of %d bytes should move %d bytes, report says %d",
			rep.DRAMTransfers, unitBytes, rep.DRAMTransfers*unitBytes, rep.DRAMBytes)
	}
	return nil
}

// CheckInvariants verifies the baseline machine's structural
// invariants: time attribution, DRAM transfer accounting, L1⊆L2
// inclusion, TLB–page-table coherence, clock-hand bounds and the pinned
// kernel reservation. It is intended to run between references (from
// the invariant observer), where all of these must hold.
func (b *Baseline) CheckInvariants() error {
	if err := checkTimeAttribution(&b.rep); err != nil {
		return err
	}
	if err := checkDRAMAccounting(&b.rep, b.cfg.L2Block); err != nil {
		return err
	}
	// Inclusion: every valid L1 block's parent L2 block is resident.
	// With a victim cache attached, evicted L2 blocks survive in the
	// victim buffer and strict inclusion no longer holds.
	if b.victim == nil {
		var incErr error
		check := func(side string) func(addr mem.PAddr, dirty bool) {
			return func(addr mem.PAddr, dirty bool) {
				if incErr == nil && !b.l2.Probe(addr) {
					incErr = fmt.Errorf("sim: %s block %#x resident without its L2 parent (inclusion violated)", side, uint64(addr))
				}
			}
		}
		b.l1.inst.ForEachValid(check("L1i"))
		b.l1.data.ForEachValid(check("L1d"))
		if incErr != nil {
			return incErr
		}
	}
	// TLB coherence: every cached translation must agree with the page
	// table.
	frames := b.cfg.DRAMBytes / dramPageBytes
	var tlbErr error
	b.tlb.ForEachValid(func(pid mem.PID, vpn, frame uint64) {
		if tlbErr != nil {
			return
		}
		if frame >= frames {
			tlbErr = fmt.Errorf("sim: TLB maps (pid %d, vpn %#x) to out-of-range frame %d", pid, vpn, frame)
			return
		}
		epid, evpn, valid, _, _ := b.pt.FrameInfo(frame)
		if !valid || epid != pid || evpn != vpn {
			tlbErr = fmt.Errorf("sim: TLB maps (pid %d, vpn %#x) to frame %d, page table has (pid %d, vpn %#x, valid %t)",
				pid, vpn, frame, epid, evpn, valid)
		}
	})
	if tlbErr != nil {
		return tlbErr
	}
	if err := b.tlb.CheckConsistency(); err != nil {
		return err
	}
	if hand := b.pt.Hand(); hand >= frames {
		return fmt.Errorf("sim: clock hand %d out of range (%d frames)", hand, frames)
	}
	// The kernel reservation stays identity-mapped and pinned.
	kpages := (b.kernelBytes + dramPageBytes - 1) / dramPageBytes
	for f := uint64(0); f < kpages; f++ {
		pid, _, valid, _, pinned := b.pt.FrameInfo(f)
		if !valid || !pinned || pid != mem.KernelPID {
			return fmt.Errorf("sim: kernel frame %d no longer pinned (pid %d, valid %t, pinned %t)", f, pid, valid, pinned)
		}
	}
	return nil
}

// CheckInvariants verifies the RAMpage machine's structural invariants:
// time attribution, DRAM page-transfer accounting, L1⊆SRAM residency,
// TLB–page-table coherence, clock-hand bounds and the pinned OS
// reservation. It is intended to run between references (from the
// invariant observer), where all of these must hold.
func (r *RAMpage) CheckInvariants() error {
	if err := checkTimeAttribution(&r.rep); err != nil {
		return err
	}
	// After a Resize, transfers have happened at more than one page
	// size and the fixed-unit identity no longer holds.
	if r.rep.Resizes == 0 {
		if err := checkDRAMAccounting(&r.rep, r.cfg.PageBytes); err != nil {
			return err
		}
	}
	frames := r.mm.Frames()
	pageShift := mem.Log2(r.cfg.PageBytes)
	// Residency: every valid L1 block must belong to a mapped SRAM page
	// (§2.3 inclusion: replaced pages purge their blocks from L1).
	var resErr error
	check := func(side string) func(addr mem.PAddr, dirty bool) {
		return func(addr mem.PAddr, dirty bool) {
			if resErr != nil {
				return
			}
			frame := uint64(addr) >> pageShift
			if frame >= frames {
				resErr = fmt.Errorf("sim: %s block %#x beyond SRAM (%d frames)", side, uint64(addr), frames)
				return
			}
			if _, _, valid, _, _ := r.mm.FrameInfo(frame); !valid {
				resErr = fmt.Errorf("sim: %s block %#x resident in unmapped SRAM frame %d (inclusion violated)", side, uint64(addr), frame)
			}
		}
	}
	r.l1.inst.ForEachValid(check("L1i"))
	r.l1.data.ForEachValid(check("L1d"))
	if resErr != nil {
		return resErr
	}
	var tlbErr error
	r.mm.ForEachTLBEntry(func(pid mem.PID, vpn, frame uint64) {
		if tlbErr != nil {
			return
		}
		if frame >= frames {
			tlbErr = fmt.Errorf("sim: TLB maps (pid %d, vpn %#x) to out-of-range frame %d", pid, vpn, frame)
			return
		}
		epid, evpn, valid, _, _ := r.mm.FrameInfo(frame)
		if !valid || epid != pid || evpn != vpn {
			tlbErr = fmt.Errorf("sim: TLB maps (pid %d, vpn %#x) to frame %d, page table has (pid %d, vpn %#x, valid %t)",
				pid, vpn, frame, epid, evpn, valid)
		}
	})
	if tlbErr != nil {
		return tlbErr
	}
	if err := r.mm.CheckTLBConsistency(); err != nil {
		return err
	}
	if err := r.mm.CheckPolicyState(); err != nil {
		return err
	}
	// The OS reservation stays pinned in the lowest frames.
	for f := uint64(0); f < r.mm.OSPages(); f++ {
		pid, _, valid, _, pinned := r.mm.FrameInfo(f)
		if !valid || !pinned || pid != mem.KernelPID {
			return fmt.Errorf("sim: OS frame %d no longer pinned (pid %d, valid %t, pinned %t)", f, pid, valid, pinned)
		}
	}
	return nil
}
