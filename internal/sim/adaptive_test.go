package sim

import (
	"context"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/trace"
)

func TestResizeRebuildsMemory(t *testing.T) {
	r := testRAMpage(t, 1000, 1024, false)
	// Dirty some pages and warm L1.
	for i := 0; i < 64; i++ {
		if _, err := r.Exec(uref(1, mem.Store, uint64(0x100000+i*1024))); err != nil {
			t.Fatal(err)
		}
	}
	wbBefore := r.Report().Writebacks
	dramBefore := r.Report().LevelTime[3]
	if err := r.Resize(4096, 256<<10+8<<10); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	rep := r.Report()
	if rep.Resizes != 1 {
		t.Errorf("Resizes = %d, want 1", rep.Resizes)
	}
	if rep.Writebacks <= wbBefore {
		t.Error("resize did not write back dirty pages")
	}
	if rep.LevelTime[3] <= dramBefore {
		t.Error("resize charged no DRAM time for the flush")
	}
	// The machine still runs, now with 4KB pages: a fresh access
	// refaults.
	faults := rep.PageFaults
	if _, err := r.Exec(uref(1, mem.Load, 0x100000)); err != nil {
		t.Fatal(err)
	}
	if rep.PageFaults != faults+1 {
		t.Error("access after resize did not refault")
	}
	if r.Memory().PageBytes() != 4096 {
		t.Errorf("page size = %d after resize, want 4096", r.Memory().PageBytes())
	}
}

func TestResizeRefusesInFlight(t *testing.T) {
	r := testRAMpage(t, 1000, 1024, true)
	block, err := r.Exec(uref(1, mem.Load, 0x100000))
	if err != nil {
		t.Fatal(err)
	}
	if block == 0 {
		t.Fatal("expected a blocking fault")
	}
	if err := r.Resize(2048, 256<<10+4<<10); err == nil {
		t.Error("Resize succeeded with a transfer in flight")
	}
}

func TestAdaptiveRejectsSwitchOnMiss(t *testing.T) {
	cfg := AdaptiveConfig{RAMpageConfig: RAMpageConfig{
		Params:       DefaultParams(1000),
		SRAMBytes:    264 << 10,
		PageBytes:    1024,
		SwitchOnMiss: true,
	}}
	if _, err := NewAdaptiveRAMpage(cfg); err == nil {
		t.Error("adaptive machine accepted switch-on-miss")
	}
}

func TestAdaptiveGrowsUnderTLBPressure(t *testing.T) {
	// A workload sweeping a large region with tiny pages drowns in TLB
	// misses; the controller must grow the page size.
	a, err := NewAdaptiveRAMpage(AdaptiveConfig{
		RAMpageConfig: RAMpageConfig{
			Params:    DefaultParams(200), // slow clock: DRAM cheap, handlers dear
			SRAMBytes: 512 << 10,
			PageBytes: 128,
		},
		EpochRefs: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var refs []mem.Ref
	for i := 0; i < 200_000; i++ {
		refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(0x100000 + uint64(i*64)%(256<<10))})
	}
	s, _ := NewScheduler(a, []trace.Reader{trace.NewSliceReader(refs)}, SchedulerConfig{Quantum: 50_000})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resizes == 0 {
		t.Fatal("adaptive controller never resized under TLB pressure")
	}
	if a.PageBytes() <= 128 {
		t.Errorf("page size = %d after TLB pressure, want growth", a.PageBytes())
	}
}

func TestAdaptiveShrinksUnderDRAMPressure(t *testing.T) {
	// Random single-element touches over a huge region with 4KB pages
	// waste whole-page transfers; the controller must shrink.
	a, err := NewAdaptiveRAMpage(AdaptiveConfig{
		RAMpageConfig: RAMpageConfig{
			Params:    DefaultParams(4000), // fast clock: DRAM very dear
			SRAMBytes: 256 << 10,
			PageBytes: 4096,
		},
		EpochRefs: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var refs []mem.Ref
	for i := 0; i < 120_000; i++ {
		// A pseudo-random scatter over 16MB: every touch a fresh page.
		addr := 0x100000 + (uint64(i)*2654435761)%(16<<20)
		refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(addr)})
	}
	s, _ := NewScheduler(a, []trace.Reader{trace.NewSliceReader(refs)}, SchedulerConfig{Quantum: 50_000})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resizes == 0 {
		t.Fatal("adaptive controller never resized under DRAM pressure")
	}
	if a.PageBytes() >= 4096 {
		t.Errorf("page size = %d after DRAM pressure, want shrink", a.PageBytes())
	}
}

func TestAdaptiveBeatsWorstFixedChoice(t *testing.T) {
	// The adaptive machine need not beat the best fixed page size, but
	// it must comfortably beat the worst one on a TLB-hostile workload.
	mkRefs := func() []mem.Ref {
		var refs []mem.Ref
		for i := 0; i < 150_000; i++ {
			refs = append(refs, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%1024)})
			refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(0x100000 + uint64(i*64)%(384<<10))})
		}
		return refs
	}
	fixed, err := NewRAMpage(RAMpageConfig{
		Params: DefaultParams(200), SRAMBytes: 512 << 10, PageBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	sf, _ := NewScheduler(fixed, []trace.Reader{trace.NewSliceReader(mkRefs())}, SchedulerConfig{Quantum: 50_000})
	repFixed, err := sf.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	a, err := NewAdaptiveRAMpage(AdaptiveConfig{
		RAMpageConfig: RAMpageConfig{Params: DefaultParams(200), SRAMBytes: 512 << 10, PageBytes: 128},
		EpochRefs:     20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := NewScheduler(a, []trace.Reader{trace.NewSliceReader(mkRefs())}, SchedulerConfig{Quantum: 50_000})
	repA, err := sa.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if repA.Cycles >= repFixed.Cycles {
		t.Errorf("adaptive (%d cycles) did not beat the stuck-at-128B machine (%d)",
			repA.Cycles, repFixed.Cycles)
	}
}

func TestThreadSwitchCheaperThanProcessSwitch(t *testing.T) {
	// §3.2 multithreading: lightweight switches on misses must lower
	// total time relative to full process switches.
	mkReaders := func() []trace.Reader {
		var rs []trace.Reader
		for p := 0; p < 4; p++ {
			var refs []mem.Ref
			base := uint64(0x1000000 * (p + 1))
			for i := 0; i < 8000; i++ {
				refs = append(refs, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%512)})
				refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(base + uint64(i)*8)})
			}
			rs = append(rs, trace.NewSliceReader(refs))
		}
		return rs
	}
	run := func(threads bool) mem.Cycles {
		r := testRAMpage(t, 4000, 1024, true)
		s, _ := NewScheduler(r, mkReaders(), SchedulerConfig{
			Quantum: 4000, InsertSwitchTrace: true, LightweightThreads: threads,
		})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.SwitchesOnMiss == 0 {
			t.Fatal("no switches on miss")
		}
		return rep.Cycles
	}
	process, thread := run(false), run(true)
	if thread >= process {
		t.Errorf("thread switching (%d cycles) not cheaper than process switching (%d)", thread, process)
	}
}
