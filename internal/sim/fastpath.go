package sim

import (
	"fmt"

	"rampage/internal/cache"
	"rampage/internal/core"
	"rampage/internal/mem"
	"rampage/internal/pagetable"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/tlb"
)

// This file holds the fused TLB→L1 fast paths: the batched executors'
// common case — a user reference whose translation is in the TLB and
// whose block is in a direct-mapped L1 — collapsed into a single
// branch-predictable loop over flattened columnar views (tlb.Hot,
// cache.DMHot, core.Hot). Statistics for fast references accumulate in
// batch-local counters and are flushed before any fallback, so every
// observable value (reports, level times, cache/TLB/core counters) is
// bit-identical to the per-reference path. The fast paths are gated on
// obs == nil: with probes attached the per-event observer streams must
// stay intact, so the machines run the exact per-reference code.
//
// The loops hoist every Hot-view field — slice headers and shift
// scalars — into locals before entering, and the flush helpers take the
// batch counters by value. Both keep the hot state in registers: the
// in-loop stores (filter repair, dirty bits) would otherwise defeat
// alias analysis and force per-iteration reloads, and a flush closure
// would pin the counters to addressable stack slots.

// fastL1 captures the direct-mapped L1 views once at construction; the
// slices alias the caches' live columns and stay current for the
// machine's lifetime.
type fastL1 struct {
	ok       bool
	l1i, l1d cache.DMHot
}

func newFastL1(l1 l1pair) fastL1 {
	ih, iok := l1.inst.DirectHot()
	dh, dok := l1.data.DirectHot()
	if !iok || !dok {
		return fastL1{}
	}
	return fastL1{ok: true, l1i: ih, l1d: dh}
}

// tlbScan is the set-scan half of the tlb.Hot lookup contract, taken
// when the inline filter probe misses: the same two-compare match as
// the TLB's own lookup (the key packs the low 16 PID bits; a full-
// width vpn match forces the rest), repairing the filter on a hit. A
// miss here is a true TLB miss with no state touched. Kept out of line
// so the batch loops' common case — a filter hit — stays small enough
// to inline.
func tlbScan(h *tlb.Hot, key, vpn, fidx, addr uint64) (pa uint64, hit bool) {
	base := (vpn & h.SetMask) * h.Assoc
	keys := h.Keys[base : base+h.Assoc]
	for i := range keys {
		if keys[i] == key && h.VPNs[base+uint64(i)] == vpn {
			h.Filter[fidx] = int32(base + uint64(i))
			return h.Frames[base+uint64(i)]<<h.PageShift | addr&h.OffMask, true
		}
	}
	return 0, false
}

// countRefs is countRef, n references at a time.
func countRefs(rep *stats.Report, class RefClass, n uint64) {
	switch class {
	case ClassBench:
		rep.BenchRefs += n
	case ClassTLB:
		rep.OSTLBRefs += n
	case ClassFault:
		rep.OSFaultRefs += n
	case ClassSwitch:
		rep.OSSwitchRefs += n
	}
}

// flushFast settles the batch-local fast-path counters into the
// machine's observable statistics. Taking them by value keeps the
// loop's accumulators in registers.
func (b *Baseline) flushFast(tlbHits, l1iHits, l1dHits, ifetches uint64) {
	b.rep.TLBHits += tlbHits
	b.rep.BenchRefs += tlbHits
	b.fastTLB.Stats.Hits += tlbHits
	b.rep.Charge(stats.L1I, mem.Cycles(ifetches))
	b.fast.l1i.Stats.Hits += l1iHits
	b.fast.l1d.Stats.Hits += l1dHits
}

// flushTraceFast is flushFast for handler-trace references, which count
// against the handler class instead of TLBHits/BenchRefs.
func (b *Baseline) flushTraceFast(class RefClass, count, l1iHits, l1dHits, ifetches uint64) {
	countRefs(&b.rep, class, count)
	b.rep.Charge(stats.L1I, mem.Cycles(ifetches))
	b.fast.l1i.Stats.Hits += l1iHits
	b.fast.l1d.Stats.Hits += l1dHits
}

// execBatchFast is Baseline.ExecBatch's fused inner loop. Only called
// with obs == nil and direct-mapped L1s.
func (b *Baseline) execBatchFast(refs []mem.Ref) (int, mem.Cycles, error) {
	th := &b.fastTLB
	keys, vpns, frames, filter := th.Keys, th.VPNs, th.Frames, th.Filter
	pageShift, offMask := th.PageShift, th.OffMask
	ih, dh := &b.fast.l1i, &b.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	var tlbHits, l1iHits, l1dHits, ifetches uint64
	for i := range refs {
		ref := refs[i]
		if ref.PID != mem.KernelPID {
			// Inline filter probe (the tlb.Hot contract); the set scan
			// on a filter miss is out of line.
			vpn := uint64(ref.Addr) >> pageShift
			key := tlb.PackKey(ref.PID, vpn)
			fidx := (vpn ^ uint64(ref.PID)) & tlb.FilterMask
			fi := uint64(filter[fidx])
			var pa uint64
			hit := keys[fi] == key && vpns[fi] == vpn
			if hit {
				pa = frames[fi]<<pageShift | uint64(ref.Addr)&offMask
			} else {
				pa, hit = tlbScan(th, key, vpn, fidx, uint64(ref.Addr))
			}
			if hit {
				tlbHits++
				if ref.Kind == mem.IFetch {
					block := pa >> iBlockShift
					set := block & iSetMask
					if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
						ifetches++
						l1iHits++
						continue
					}
				} else {
					block := pa >> dBlockShift
					set := block & dSetMask
					if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
						l1dHits++
						if ref.Kind == mem.Store {
							dDirty[set] = true
						}
						continue
					}
				}
				// TLB hit, L1 miss: settle the deferred counters (the
				// miss path charges rep.Cycles, which handler timing
				// reads) and complete the miss on the exact path.
				b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
				tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
				b.accessL1(ref.Kind, mem.PAddr(pa))
				continue
			}
		}
		// Kernel reference or true TLB miss (the probe above is the
		// complete lookup, so TryLookup would find nothing): the
		// per-reference miss machinery.
		b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
		tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
		if err := b.execOne(ref, ClassBench); err != nil {
			return i, 0, err
		}
	}
	b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
	return len(refs), 0, nil
}

// execTraceFast is Baseline.ExecTrace's fused loop for handler traces,
// which are (almost) entirely kernel-tagged: translation is an identity
// bounds check, so only the L1 probe remains.
func (b *Baseline) execTraceFast(refs []mem.Ref, class RefClass) error {
	ih, dh := &b.fast.l1i, &b.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	kernelBytes := b.kernelBytes
	var count, l1iHits, l1dHits, ifetches uint64
	for i := range refs {
		ref := refs[i]
		if ref.PID == mem.KernelPID {
			off := uint64(ref.Addr) - synth.KernelBase
			if uint64(ref.Addr) >= synth.KernelBase && off < kernelBytes {
				count++
				if ref.Kind == mem.IFetch {
					block := off >> iBlockShift
					set := block & iSetMask
					if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
						ifetches++
						l1iHits++
						continue
					}
				} else {
					block := off >> dBlockShift
					set := block & dSetMask
					if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
						l1dHits++
						if ref.Kind == mem.Store {
							dDirty[set] = true
						}
						continue
					}
				}
				b.flushTraceFast(class, count, l1iHits, l1dHits, ifetches)
				count, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
				b.accessL1(ref.Kind, mem.PAddr(off))
				continue
			}
		}
		// User reference or out-of-range kernel address: the per-
		// reference path (which also produces the exact error text).
		b.flushTraceFast(class, count, l1iHits, l1dHits, ifetches)
		count, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
		if err := b.execOne(ref, class); err != nil {
			return err
		}
	}
	b.flushTraceFast(class, count, l1iHits, l1dHits, ifetches)
	return nil
}

// flushFast settles the batch-local fast-path counters (see
// Baseline.flushFast); mh is the core.Hot captured for this batch.
func (r *RAMpage) flushFast(mh *core.Hot, tlbHits, l1iHits, l1dHits, ifetches uint64) {
	r.rep.TLBHits += tlbHits
	r.rep.BenchRefs += tlbHits
	mh.TLB.Stats.Hits += tlbHits
	mh.Stats.Translations += tlbHits
	r.rep.Charge(stats.L1I, mem.Cycles(ifetches))
	r.fast.l1i.Stats.Hits += l1iHits
	r.fast.l1d.Stats.Hits += l1dHits
}

// flushTraceFast is flushFast for handler-trace references: kernel
// translations count as core translations but not TLB hits.
func (r *RAMpage) flushTraceFast(mh *core.Hot, class RefClass, count, translations, l1iHits, l1dHits, ifetches uint64) {
	countRefs(&r.rep, class, count)
	mh.Stats.Translations += translations
	r.rep.Charge(stats.L1I, mem.Cycles(ifetches))
	r.fast.l1i.Stats.Hits += l1iHits
	r.fast.l1d.Stats.Hits += l1dHits
}

// execBatchFast is RAMpage.ExecBatch's fused inner loop. Only called
// with obs == nil, direct-mapped L1s, and no transfers in flight; it
// returns early (consumed < len(refs)) when a fallback breaks that gate
// so the caller can resume on the per-reference path.
func (r *RAMpage) execBatchFast(refs []mem.Ref) (int, mem.Cycles, error) {
	// r.mmHot tracks r.mm (Resize refreshes it), so no per-call capture.
	mh := &r.mmHot
	th := &mh.TLB
	keys, vpns, frames, filter := th.Keys, th.VPNs, th.Frames, th.Filter
	pageShift, offMask := th.PageShift, th.OffMask
	ptFlags, mmShift := mh.PTFlags, mh.PageShift
	ih, dh := &r.fast.l1i, &r.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	var tlbHits, l1iHits, l1dHits, ifetches uint64
	for i := range refs {
		ref := refs[i]
		if ref.PID != mem.KernelPID {
			vpn := uint64(ref.Addr) >> pageShift
			key := tlb.PackKey(ref.PID, vpn)
			fidx := (vpn ^ uint64(ref.PID)) & tlb.FilterMask
			fi := uint64(filter[fidx])
			var pa uint64
			hit := keys[fi] == key && vpns[fi] == vpn
			if hit {
				pa = frames[fi]<<pageShift | uint64(ref.Addr)&offMask
			} else {
				pa, hit = tlbScan(th, key, vpn, fidx, uint64(ref.Addr))
			}
			if hit {
				tlbHits++
				if ref.Kind == mem.IFetch {
					block := pa >> iBlockShift
					set := block & iSetMask
					if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
						ifetches++
						l1iHits++
						continue
					}
				} else {
					if ref.Kind == mem.Store {
						ptFlags[pa>>mmShift] |= pagetable.FlagDirty
					}
					block := pa >> dBlockShift
					set := block & dSetMask
					if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
						l1dHits++
						if ref.Kind == mem.Store {
							dDirty[set] = true
						}
						continue
					}
				}
				// TLB hit, L1 miss: an SRAM access, never deeper. Settle
				// the deferred counters first — the switch-on-miss fault
				// path reads rep.Cycles.
				r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
				tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
				r.accessL1(ref.Kind, mem.PAddr(pa))
				continue
			}
		}
		// Kernel reference or true TLB miss (the probe above is the
		// complete lookup, so TranslateHit would find nothing): the
		// per-reference miss machinery. The gate held on entry and
		// after every previous fallback.
		r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
		tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
		block, err := r.execOne(ref, ClassBench)
		if err != nil {
			return i, 0, err
		}
		if block != 0 {
			return i, block, nil
		}
		if len(r.inFlight) != 0 || len(r.pending) != 0 {
			// A fault or prefetch put transfers in flight: the fast
			// gate is broken, resume per-reference.
			return i + 1, 0, nil
		}
	}
	r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
	return len(refs), 0, nil
}

// execTraceFast is RAMpage.ExecTrace's fused loop for handler traces.
// Kernel references translate by identity bounds check against the
// pinned OS region and hit SRAM at worst. Called under the same gate as
// execBatchFast; returns the count consumed before a fallback broke it.
func (r *RAMpage) execTraceFast(refs []mem.Ref, class RefClass) (int, error) {
	mh := &r.mmHot
	ptFlags, mmShift := mh.PTFlags, mh.PageShift
	ih, dh := &r.fast.l1i, &r.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	kernelLimit := r.kernelLimit
	var count, translations, l1iHits, l1dHits, ifetches uint64
	for i := range refs {
		ref := refs[i]
		if ref.PID == mem.KernelPID {
			off := uint64(ref.Addr) - synth.KernelBase
			if uint64(ref.Addr) >= synth.KernelBase && off < kernelLimit {
				count++
				translations++
				if ref.Kind == mem.IFetch {
					block := off >> iBlockShift
					set := block & iSetMask
					if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
						ifetches++
						l1iHits++
						continue
					}
				} else {
					if ref.Kind == mem.Store {
						ptFlags[off>>mmShift] |= pagetable.FlagDirty
					}
					block := off >> dBlockShift
					set := block & dSetMask
					if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
						l1dHits++
						if ref.Kind == mem.Store {
							dDirty[set] = true
						}
						continue
					}
				}
				r.flushTraceFast(mh, class, count, translations, l1iHits, l1dHits, ifetches)
				count, translations, l1iHits, l1dHits, ifetches = 0, 0, 0, 0, 0
				r.accessL1(ref.Kind, mem.PAddr(off))
				continue
			}
		}
		// User reference (or out-of-range kernel address): the per-
		// reference path; it can fault and start transfers, breaking
		// the gate.
		r.flushTraceFast(mh, class, count, translations, l1iHits, l1dHits, ifetches)
		count, translations, l1iHits, l1dHits, ifetches = 0, 0, 0, 0, 0
		block, err := r.execOne(ref, class)
		if err != nil {
			return i, err
		}
		if block != 0 {
			return i, fmt.Errorf("sim: pinned OS reference faulted")
		}
		if len(r.inFlight) != 0 || len(r.pending) != 0 {
			return i + 1, nil
		}
	}
	r.flushTraceFast(mh, class, count, translations, l1iHits, l1dHits, ifetches)
	return len(refs), nil
}

// ExecBatchColumnar implements ColumnarMachine: ExecBatch fed from
// columns, skipping row materialization. Semantics mirror ExecBatch
// over the equivalent rows exactly.
func (b *Baseline) ExecBatchColumnar(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (int, mem.Cycles, error) {
	if b.obs == nil && b.fast.ok && pid != mem.KernelPID {
		return b.execBatchFastCols(pid, kinds, addrs)
	}
	for i := range kinds {
		ref := mem.Ref{PID: pid, Kind: kinds[i], Addr: addrs[i]}
		if pid != mem.KernelPID {
			if pa, hit := b.tlb.TryLookup(pid, ref.Addr); hit {
				b.rep.TLBHits++
				b.rep.BenchRefs++
				b.accessL1(ref.Kind, pa)
				continue
			}
		}
		if err := b.execOne(ref, ClassBench); err != nil {
			return i, 0, err
		}
	}
	return len(kinds), 0, nil
}

// execBatchFastCols is execBatchFast reading from columns: the window's
// single PID hoists both the kernel check and the key/filter PID terms
// out of the loop, and each iteration loads 9 bytes instead of a
// 16-byte row.
func (b *Baseline) execBatchFastCols(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (int, mem.Cycles, error) {
	th := &b.fastTLB
	keys, vpns, frames, filter := th.Keys, th.VPNs, th.Frames, th.Filter
	pageShift, offMask := th.PageShift, th.OffMask
	ih, dh := &b.fast.l1i, &b.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	pidTerm := uint64(pid)
	addrs = addrs[:len(kinds)]
	var tlbHits, l1iHits, l1dHits, ifetches uint64
	for i := range kinds {
		kind, addr := kinds[i], uint64(addrs[i])
		vpn := addr >> pageShift
		key := tlb.PackKey(pid, vpn)
		fidx := (vpn ^ pidTerm) & tlb.FilterMask
		fi := uint64(filter[fidx])
		var pa uint64
		hit := keys[fi] == key && vpns[fi] == vpn
		if hit {
			pa = frames[fi]<<pageShift | addr&offMask
		} else {
			pa, hit = tlbScan(th, key, vpn, fidx, addr)
		}
		if hit {
			tlbHits++
			if kind == mem.IFetch {
				block := pa >> iBlockShift
				set := block & iSetMask
				if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
					ifetches++
					l1iHits++
					continue
				}
			} else {
				block := pa >> dBlockShift
				set := block & dSetMask
				if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
					l1dHits++
					if kind == mem.Store {
						dDirty[set] = true
					}
					continue
				}
			}
			b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
			tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
			b.accessL1(kind, mem.PAddr(pa))
			continue
		}
		// True TLB miss: the per-reference miss machinery.
		b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
		tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
		if err := b.execOne(mem.Ref{PID: pid, Kind: kind, Addr: addrs[i]}, ClassBench); err != nil {
			return i, 0, err
		}
	}
	b.flushFast(tlbHits, l1iHits, l1dHits, ifetches)
	return len(kinds), 0, nil
}

// ExecBatchColumnar implements ColumnarMachine (see Baseline's). The
// outer gate loop matches RAMpage.ExecBatch.
func (r *RAMpage) ExecBatchColumnar(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (int, mem.Cycles, error) {
	i := 0
	for i < len(kinds) {
		if r.fast.ok && r.obs == nil && pid != mem.KernelPID && len(r.inFlight) == 0 && len(r.pending) == 0 {
			n, block, err := r.execBatchFastCols(pid, kinds[i:], addrs[i:])
			i += n
			if err != nil {
				return i, 0, err
			}
			if block != 0 {
				return i, block, nil
			}
			continue
		}
		ref := mem.Ref{PID: pid, Kind: kinds[i], Addr: addrs[i]}
		if len(r.inFlight) == 0 && len(r.pending) == 0 {
			if pa, ok := r.mm.TranslateHit(pid, ref.Addr, ref.Kind == mem.Store); ok {
				r.rep.TLBHits++
				r.rep.BenchRefs++
				r.accessL1(ref.Kind, pa)
				i++
				continue
			}
		}
		block, err := r.execOne(ref, ClassBench)
		if err != nil {
			return i, 0, err
		}
		if block != 0 {
			return i, block, nil
		}
		i++
	}
	return len(kinds), 0, nil
}

// execBatchFastCols is RAMpage's execBatchFast reading from columns
// (see Baseline.execBatchFastCols for the shape).
func (r *RAMpage) execBatchFastCols(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (int, mem.Cycles, error) {
	mh := &r.mmHot
	th := &mh.TLB
	keys, vpns, frames, filter := th.Keys, th.VPNs, th.Frames, th.Filter
	pageShift, offMask := th.PageShift, th.OffMask
	ptFlags, mmShift := mh.PTFlags, mh.PageShift
	ih, dh := &r.fast.l1i, &r.fast.l1d
	iTags, iBlockShift, iSetMask, iSetShift := ih.Tags, ih.BlockShift, ih.SetMask, ih.SetShift
	dTags, dBlockShift, dSetMask, dSetShift := dh.Tags, dh.BlockShift, dh.SetMask, dh.SetShift
	dDirty := dh.Dirty
	pidTerm := uint64(pid)
	addrs = addrs[:len(kinds)]
	var tlbHits, l1iHits, l1dHits, ifetches uint64
	for i := range kinds {
		kind, addr := kinds[i], uint64(addrs[i])
		vpn := addr >> pageShift
		key := tlb.PackKey(pid, vpn)
		fidx := (vpn ^ pidTerm) & tlb.FilterMask
		fi := uint64(filter[fidx])
		var pa uint64
		hit := keys[fi] == key && vpns[fi] == vpn
		if hit {
			pa = frames[fi]<<pageShift | addr&offMask
		} else {
			pa, hit = tlbScan(th, key, vpn, fidx, addr)
		}
		if hit {
			tlbHits++
			if kind == mem.IFetch {
				block := pa >> iBlockShift
				set := block & iSetMask
				if tag := block >> iSetShift; iTags[set] == tag && tag != cache.TagInvalid {
					ifetches++
					l1iHits++
					continue
				}
			} else {
				if kind == mem.Store {
					ptFlags[pa>>mmShift] |= pagetable.FlagDirty
				}
				block := pa >> dBlockShift
				set := block & dSetMask
				if tag := block >> dSetShift; dTags[set] == tag && tag != cache.TagInvalid {
					l1dHits++
					if kind == mem.Store {
						dDirty[set] = true
					}
					continue
				}
			}
			r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
			tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
			r.accessL1(kind, mem.PAddr(pa))
			continue
		}
		// True TLB miss: the per-reference miss machinery. The gate held
		// on entry and after every previous fallback.
		r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
		tlbHits, l1iHits, l1dHits, ifetches = 0, 0, 0, 0
		block, err := r.execOne(mem.Ref{PID: pid, Kind: kind, Addr: addrs[i]}, ClassBench)
		if err != nil {
			return i, 0, err
		}
		if block != 0 {
			return i, block, nil
		}
		if len(r.inFlight) != 0 || len(r.pending) != 0 {
			// A fault or prefetch put transfers in flight: the fast
			// gate is broken, resume per-reference.
			return i + 1, 0, nil
		}
	}
	r.flushFast(mh, tlbHits, l1iHits, l1dHits, ifetches)
	return len(kinds), 0, nil
}

// Release returns pooled resources — the inverted page table's arena
// slabs — for reuse by the next machine with the same geometry. The
// machine must not execute references afterwards; its report remains
// readable.
func (b *Baseline) Release() { b.pt.Recycle() }

// Release returns pooled resources (see Baseline.Release).
func (r *RAMpage) Release() { r.mm.Recycle() }
