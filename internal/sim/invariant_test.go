package sim

import (
	"strings"
	"testing"

	"rampage/internal/cache"
	"rampage/internal/core"
	"rampage/internal/mem"
)

// White-box tests for the CheckInvariants methods: corrupt one piece of
// machine state at a time and verify the matching check fires. The
// positive paths (clean runs stay violation-free) are covered
// end-to-end in internal/oracle.

func invariantBaseline(t *testing.T) *Baseline {
	t.Helper()
	b, err := NewBaseline(BaselineConfig{
		Params:    DefaultParams(1000),
		L2Bytes:   128 << 10,
		L2Block:   512,
		L2Assoc:   1,
		L2Policy:  cache.LRU,
		DRAMBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch enough state that the structures are non-trivially populated.
	for i := 0; i < 2_000; i++ {
		ref := mem.Ref{PID: 1, Kind: mem.Store, Addr: mem.VAddr(0x1000_0000 + i*96)}
		if _, err := b.Exec(ref); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func invariantRAMpage(t *testing.T) *RAMpage {
	t.Helper()
	r, err := NewRAMpage(RAMpageConfig{
		Params:    DefaultParams(1000),
		SRAMBytes: 160 << 10,
		PageBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2_000; i++ {
		ref := mem.Ref{PID: 1, Kind: mem.Store, Addr: mem.VAddr(0x1000_0000 + i*96)}
		if _, err := r.Exec(ref); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func wantViolation(t *testing.T, err error, fragment string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption not detected (want error mentioning %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("violation message %q does not mention %q", err, fragment)
	}
}

func TestBaselineInvariantsDetectCorruption(t *testing.T) {
	t.Run("time-attribution", func(t *testing.T) {
		b := invariantBaseline(t)
		b.rep.Cycles++
		wantViolation(t, b.CheckInvariants(), "attributed")
	})
	t.Run("dram-accounting", func(t *testing.T) {
		b := invariantBaseline(t)
		b.rep.DRAMBytes += 7
		wantViolation(t, b.CheckInvariants(), "DRAM")
	})
	t.Run("inclusion", func(t *testing.T) {
		b := invariantBaseline(t)
		// Evict an L2 block behind the machine's back: any L1-resident
		// child of that block now violates inclusion.
		var victim mem.PAddr
		found := false
		b.l1.data.ForEachValid(func(addr mem.PAddr, dirty bool) {
			if !found {
				victim, found = addr, true
			}
		})
		if !found {
			t.Fatal("no valid L1 data block to orphan")
		}
		b.l2.Invalidate(victim)
		wantViolation(t, b.CheckInvariants(), "inclusion")
	})
	t.Run("tlb-coherence", func(t *testing.T) {
		b := invariantBaseline(t)
		// Unmap a frame the TLB still caches.
		var frame uint64
		found := false
		b.tlb.ForEachValid(func(pid mem.PID, vpn, f uint64) {
			if !found {
				frame, found = f, true
			}
		})
		if !found {
			t.Fatal("no valid TLB entry to orphan")
		}
		if _, _, _, err := b.pt.Unmap(frame); err != nil {
			t.Fatal(err)
		}
		wantViolation(t, b.CheckInvariants(), "TLB")
	})
	t.Run("kernel-pin", func(t *testing.T) {
		b := invariantBaseline(t)
		b.pt.Unpin(0)
		wantViolation(t, b.CheckInvariants(), "pinned")
	})
}

func TestRAMpageInvariantsDetectCorruption(t *testing.T) {
	t.Run("time-attribution", func(t *testing.T) {
		r := invariantRAMpage(t)
		r.rep.Cycles++
		wantViolation(t, r.CheckInvariants(), "attributed")
	})
	t.Run("dram-accounting", func(t *testing.T) {
		r := invariantRAMpage(t)
		r.rep.DRAMTransfers++
		wantViolation(t, r.CheckInvariants(), "DRAM")
	})
	t.Run("residency", func(t *testing.T) {
		r := invariantRAMpage(t)
		// Swap in a fresh, empty SRAM memory behind the machine's back:
		// every user-frame block still resident in L1 now points at an
		// unmapped page.
		mm, err := core.New(core.Config{
			TotalBytes: r.cfg.SRAMBytes,
			PageBytes:  r.cfg.PageBytes,
			TLBEntries: r.cfg.TLBEntries,
			TLBAssoc:   r.cfg.TLBAssoc,
			Seed:       r.cfg.Seed + 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.mm = mm
		wantViolation(t, r.CheckInvariants(), "unmapped")
	})
}
