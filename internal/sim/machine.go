package sim

import (
	"rampage/internal/cache"
	"rampage/internal/dram"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/stats"
)

// Machine is a simulated system: it executes references, keeps the
// simulated clock, and accumulates a stats.Report. The scheduler
// drives a Machine with application references and operating-system
// traces.
type Machine interface {
	// Exec runs one application reference. A zero return means the
	// reference completed. A non-zero return (only from a RAMpage
	// machine in switch-on-miss mode) is the absolute cycle at which
	// the reference's page arrives from DRAM: the process must block
	// and the SAME reference must be re-executed after that time.
	Exec(ref mem.Ref) (blockUntil mem.Cycles, err error)
	// ExecBatch runs application references in order, stopping at the
	// first that blocks or errors. consumed is the number of references
	// that completed. When consumed < len(refs) with a nil error and a
	// non-zero blockUntil, refs[consumed] faulted with its page arriving
	// at blockUntil: that reference did NOT execute and must be retried
	// after that time, exactly as with Exec. Machines accelerate the
	// common TLB-hit/L1-hit case with an inlined fast path; the executed
	// reference semantics are bit-identical to repeated Exec calls.
	ExecBatch(refs []mem.Ref) (consumed int, blockUntil mem.Cycles, err error)
	// ExecTrace runs an operating-system reference sequence (handler
	// or context-switch code), accounting it under the given class.
	ExecTrace(refs []mem.Ref, class RefClass) error
	// Now returns the machine's absolute simulated time.
	Now() mem.Cycles
	// AdvanceTo idles the machine to absolute time t (waiting for an
	// in-flight DRAM page with no runnable process); the idle time is
	// attributed to the DRAM level.
	AdvanceTo(t mem.Cycles)
	// Report returns the machine's measurement record. It remains
	// owned by the machine; read it after the run completes.
	Report() *stats.Report
	// SetObserver attaches a metrics observer to the machine and its
	// components (nil detaches). Observation is read-only: the Report
	// is bit-identical with or without an observer attached.
	SetObserver(obs metrics.Observer)
}

// ColumnarMachine is implemented by machines that can execute a batch
// straight from a columnar stream window: one PID for the whole window
// plus parallel kind and address columns. Semantics are exactly those
// of ExecBatch over the equivalent []mem.Ref — same consumed/block/
// error contract, bit-identical reports — minus the row
// materialization. The scheduler uses it whenever a process's stream
// is columnar.
type ColumnarMachine interface {
	ExecBatchColumnar(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (consumed int, blockUntil mem.Cycles, err error)
}

// observeDRAM forwards an observer to DRAM devices that expose probes
// (the banked RDRAM's row-buffer events); flat devices are stateless
// and have nothing to report.
func observeDRAM(d dram.Device, obs metrics.Observer) {
	if o, ok := d.(interface{ SetObserver(metrics.Observer) }); ok {
		o.SetObserver(obs)
	}
}

// l1pair is the split L1 of §4.3 shared by all machines: 16 KB each of
// direct-mapped, physically-indexed instruction and data cache with
// 32-byte blocks.
type l1pair struct {
	inst *cache.Cache
	data *cache.Cache
}

func newL1Pair(p Params) (l1pair, error) {
	mk := func(name string, seedOff uint64) (*cache.Cache, error) {
		return cache.New(cache.Config{
			Name:       name,
			SizeBytes:  p.L1Bytes,
			BlockBytes: p.L1Block,
			Assoc:      p.L1Assoc,
			Policy:     cache.LRU,
			Seed:       p.Seed + seedOff,
		})
	}
	inst, err := mk("L1i", 1)
	if err != nil {
		return l1pair{}, err
	}
	data, err := mk("L1d", 2)
	if err != nil {
		return l1pair{}, err
	}
	return l1pair{inst: inst, data: data}, nil
}

// side returns the cache a reference kind uses.
func (l l1pair) side(kind mem.RefKind) *cache.Cache {
	if kind.IsData() {
		return l.data
	}
	return l.inst
}

// purgeRange invalidates [addr, addr+size) from both L1 sides,
// charging one cycle per present block (tag probe + invalidate) to the
// owning side and the write-back penalty for dirty data blocks. It
// returns the number of dirty blocks purged so the caller can mark the
// underlying page dirty. This is the inclusion-maintenance cost the
// paper's figures show as the (small) L1i/L1d time.
func (l l1pair) purgeRange(addr mem.PAddr, size uint64, rep *stats.Report, wbPenalty mem.Cycles) (dirtyBlocks int) {
	l.inst.InvalidateRange(addr, size, func(b mem.PAddr, dirty bool) {
		rep.Charge(stats.L1I, 1)
	})
	l.data.InvalidateRange(addr, size, func(b mem.PAddr, dirty bool) {
		rep.Charge(stats.L1D, 1)
		if dirty {
			rep.Charge(stats.L2, wbPenalty)
			dirtyBlocks++
		}
	})
	return dirtyBlocks
}
