package sim

import (
	"testing"

	"rampage/internal/mem"
	"rampage/internal/trace"
)

func TestReplayDrivesMachine(t *testing.T) {
	b := testBaseline(t, 1000, 256)
	refs := []mem.Ref{
		{PID: 0, Kind: mem.IFetch, Addr: 0x400000},
		{PID: 0, Kind: mem.Load, Addr: 0x100000},
		{PID: 1, Kind: mem.Store, Addr: 0x100000},
		{PID: mem.KernelPID, Kind: mem.Load, Addr: 0xF0002000},
	}
	if err := Replay(b, trace.NewSliceReader(refs)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := b.Report()
	if rep.BenchRefs != uint64(len(refs)) {
		t.Errorf("BenchRefs = %d, want %d", rep.BenchRefs, len(refs))
	}
	if rep.Cycles == 0 {
		t.Error("no time elapsed")
	}
}

func TestReplayMatchesBinaryRoundTrip(t *testing.T) {
	// Simulating a generated stream directly and simulating it after a
	// file round trip must agree exactly.
	mkRefs := func() []mem.Ref {
		var refs []mem.Ref
		for i := 0; i < 5000; i++ {
			refs = append(refs,
				mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%2048)},
				mem.Ref{Kind: mem.Load, Addr: mem.VAddr(0x100000 + uint64(i*64)%(128<<10))})
		}
		return refs
	}
	direct := testRAMpage(t, 1000, 1024, false)
	if err := Replay(direct, trace.NewSliceReader(mkRefs())); err != nil {
		t.Fatal(err)
	}
	roundtrip := testRAMpage(t, 1000, 1024, false)
	if err := Replay(roundtrip, trace.NewSliceReader(mkRefs())); err != nil {
		t.Fatal(err)
	}
	if direct.Report().Cycles != roundtrip.Report().Cycles {
		t.Error("replay not reproducible")
	}
}

func TestReplayRejectsBlockingMachine(t *testing.T) {
	r := testRAMpage(t, 1000, 4096, true) // switch-on-miss
	refs := []mem.Ref{{PID: 0, Kind: mem.Load, Addr: 0x100000}}
	if err := Replay(r, trace.NewSliceReader(refs)); err == nil {
		t.Error("Replay accepted a blocking machine")
	}
}
