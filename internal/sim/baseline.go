package sim

import (
	"fmt"

	"rampage/internal/cache"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/pagetable"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/tlb"
)

// dramPageBytes is the DRAM page size, held constant while the SRAM
// page / L2 block size is swept ("the DRAM page size is held constant,
// while the SRAM page size is varied", §2.4).
const dramPageBytes = 4096

// BaselineConfig describes a conventional-cache machine: the §4.4
// baseline when L2Assoc == 1 and the §4.7 comparison when L2Assoc == 2
// with random replacement.
type BaselineConfig struct {
	Params
	// L2Bytes is the unified L2 capacity (4 MB in the paper); L2Block
	// the swept block size (128 B – 4 KB); L2Assoc the associativity.
	L2Bytes uint64
	L2Block uint64
	L2Assoc int
	// L2Policy selects replacement for associative L2s (the paper uses
	// random, §4.7).
	L2Policy cache.Policy
	// DRAMBytes bounds the "infinite" DRAM: it must simply exceed the
	// workload footprint so no page ever leaves DRAM (§4.3). Default
	// 64 MB.
	DRAMBytes uint64
	// VictimEntries, when non-zero, attaches a fully-associative
	// victim cache of that many blocks to L2 — the §3.2 hardware
	// alternative, for ablation.
	VictimEntries int
}

// Baseline is the conventional hierarchy: split L1, unified L2, TLB
// translating to DRAM physical addresses, inverted page table in DRAM.
type Baseline struct {
	cfg    BaselineConfig
	l1     l1pair
	l2     *cache.Cache
	victim *cache.VictimCache
	tlb    *tlb.TLB
	pt     *pagetable.Inverted
	kernel *synth.Kernel

	kernelBytes uint64
	rep         stats.Report
	probeBuf    []uint64
	trcBuf      []mem.Ref
	updBuf      []uint64
	obs         metrics.Observer // nil unless probing is attached

	// Fused fast-path views (fastpath.go), captured at construction.
	fast    fastL1
	fastTLB tlb.Hot
}

// NewBaseline builds the machine.
func NewBaseline(cfg BaselineConfig) (*Baseline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = 64 << 20
	}
	if cfg.L1WBPenalty == 0 {
		cfg.L1WBPenalty = 12
	}
	l1, err := newL1Pair(cfg.Params)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cache.Config{
		Name:       "L2",
		SizeBytes:  cfg.L2Bytes,
		BlockBytes: cfg.L2Block,
		Assoc:      cfg.L2Assoc,
		Policy:     cfg.L2Policy,
		Seed:       cfg.Seed + 3,
	})
	if err != nil {
		return nil, err
	}
	tb, err := tlb.New(tlb.Config{
		Entries:   cfg.TLBEntries,
		Assoc:     cfg.TLBAssoc,
		PageBytes: dramPageBytes,
		Seed:      cfg.Seed + 4,
	})
	if err != nil {
		return nil, err
	}
	pt, err := pagetable.New(pagetable.Config{
		Frames:    cfg.DRAMBytes / dramPageBytes,
		PageBytes: dramPageBytes,
		TableBase: synth.KernelBase + synth.KernelFixedBytes,
		// Random page placement, as on a long-running OS: this is what
		// exposes the direct-mapped L2 to conflict misses.
		Scramble:     true,
		ScrambleSeed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	b := &Baseline{
		cfg:    cfg,
		l1:     l1,
		l2:     l2,
		tlb:    tb,
		pt:     pt,
		kernel: synth.NewKernel(cfg.Seed + 5),
	}
	if cfg.VictimEntries > 0 {
		v, err := cache.NewVictim(l2, cfg.VictimEntries)
		if err != nil {
			return nil, err
		}
		b.victim = v
	}
	// Reserve the kernel region (fixed span + the page table itself)
	// at the bottom of DRAM, identity-mapped from the kernel virtual
	// range like a MIPS kseg0 segment.
	b.kernelBytes = synth.KernelFixedBytes + pt.TableBytes()
	kpages := (b.kernelBytes + dramPageBytes - 1) / dramPageBytes
	for i := uint64(0); i < kpages; i++ {
		f, ok := pt.AllocFree()
		if !ok || f != i {
			return nil, fmt.Errorf("sim: kernel DRAM reservation failed at page %d", i)
		}
		if err := pt.Map(mem.KernelPID, (uint64(synth.KernelBase)>>12)+i, f); err != nil {
			return nil, err
		}
		pt.Pin(f)
	}
	name := "baseline-dm"
	if cfg.L2Assoc > 1 {
		name = fmt.Sprintf("l2-%dway", cfg.L2Assoc)
	}
	if cfg.VictimEntries > 0 {
		name += "+victim"
	}
	b.rep = stats.Report{Name: name, Clock: cfg.Clock, BlockBytes: cfg.L2Block}
	b.fast = newFastL1(l1)
	b.fastTLB = tb.Hot()
	return b, nil
}

// Report implements Machine.
func (b *Baseline) Report() *stats.Report { return &b.rep }

// SetObserver implements Machine, threading the observer through the
// TLB, the page table and (when it has probes) the DRAM device.
func (b *Baseline) SetObserver(obs metrics.Observer) {
	b.obs = obs
	b.tlb.SetObserver(obs)
	b.pt.SetObserver(obs)
	observeDRAM(b.cfg.DRAM, obs)
}

// Now implements Machine.
func (b *Baseline) Now() mem.Cycles { return b.rep.Cycles }

// AdvanceTo implements Machine.
func (b *Baseline) AdvanceTo(t mem.Cycles) {
	if t > b.rep.Cycles {
		idle := t - b.rep.Cycles
		b.rep.IdleCycles += idle
		b.rep.Charge(stats.DRAM, idle)
	}
}

// TLBStats exposes the TLB counters.
func (b *Baseline) TLBStats() tlb.Stats { return b.tlb.Stats() }

// L2Stats exposes the L2 cache counters.
func (b *Baseline) L2Stats() cache.Stats { return b.l2.Stats() }

// Exec implements Machine. The baseline never blocks.
func (b *Baseline) Exec(ref mem.Ref) (mem.Cycles, error) {
	return 0, b.execOne(ref, ClassBench)
}

// ExecBatch implements Machine. The common case — a user reference
// whose translation is in the TLB — runs without interface calls or
// the TLB-miss machinery; everything else falls back to the per-
// reference path. The baseline never blocks, so consumed is always
// len(refs) unless an error occurs.
func (b *Baseline) ExecBatch(refs []mem.Ref) (int, mem.Cycles, error) {
	if b.obs == nil && b.fast.ok {
		return b.execBatchFast(refs)
	}
	for i := range refs {
		ref := refs[i]
		if ref.PID != mem.KernelPID {
			if pa, hit := b.tlb.TryLookup(ref.PID, ref.Addr); hit {
				b.rep.TLBHits++
				b.rep.BenchRefs++
				b.accessL1(ref.Kind, pa)
				continue
			}
		}
		if err := b.execOne(ref, ClassBench); err != nil {
			return i, 0, err
		}
	}
	return len(refs), 0, nil
}

// ExecTrace implements Machine.
func (b *Baseline) ExecTrace(refs []mem.Ref, class RefClass) error {
	if b.obs == nil && b.fast.ok {
		return b.execTraceFast(refs, class)
	}
	for _, r := range refs {
		if err := b.execOne(r, class); err != nil {
			return err
		}
	}
	return nil
}

func (b *Baseline) countRef(class RefClass) {
	switch class {
	case ClassBench:
		b.rep.BenchRefs++
	case ClassTLB:
		b.rep.OSTLBRefs++
	case ClassFault:
		b.rep.OSFaultRefs++
	case ClassSwitch:
		b.rep.OSSwitchRefs++
	}
}

func (b *Baseline) execOne(ref mem.Ref, class RefClass) error {
	pa, err := b.translate(ref)
	if err != nil {
		return err
	}
	b.countRef(class)
	b.accessL1(ref.Kind, pa)
	return nil
}

// translate resolves a reference to a DRAM physical address through
// the TLB, running the TLB-miss handler trace when needed.
func (b *Baseline) translate(ref mem.Ref) (mem.PAddr, error) {
	if ref.PID == mem.KernelPID {
		off := uint64(ref.Addr) - synth.KernelBase
		if uint64(ref.Addr) < synth.KernelBase || off >= b.kernelBytes {
			return 0, fmt.Errorf("sim: kernel address %#x outside reserved region", uint64(ref.Addr))
		}
		return mem.PAddr(off), nil
	}
	if pa, hit := b.tlb.Lookup(ref.PID, ref.Addr); hit {
		b.rep.TLBHits++
		return pa, nil
	}
	b.rep.TLBMisses++
	vpn := uint64(ref.Addr) >> 12
	b.probeBuf = b.probeBuf[:0]
	frame, probes, found := b.pt.LookupAppend(ref.PID, vpn, b.probeBuf)
	b.probeBuf = probes
	b.updBuf = b.updBuf[:0]
	if !found {
		// First touch: infinite DRAM hands out a fresh frame; the
		// handler updates the table (a compulsory, disk-free "fault").
		f, ok := b.pt.AllocFree()
		if !ok {
			return 0, fmt.Errorf("sim: DRAM exhausted; raise DRAMBytes above the workload footprint")
		}
		if err := b.pt.Map(ref.PID, vpn, f); err != nil {
			return 0, err
		}
		frame = f
		b.updBuf = append(b.updBuf, b.pt.EntryAddr(f))
	}
	b.tlb.Insert(ref.PID, ref.Addr, frame)
	// Interleave the page-lookup software trace (§4.3).
	b.trcBuf = b.trcBuf[:0]
	b.trcBuf = b.kernel.AppendTLBMiss(b.trcBuf, probes)
	start := b.rep.Cycles
	if err := b.ExecTrace(b.trcBuf, ClassTLB); err != nil {
		return 0, err
	}
	b.rep.TLBHandlerCycles += b.rep.Cycles - start
	if b.obs != nil {
		b.obs.Observe(metrics.EvTLBHandlerCycles, uint64(b.rep.Cycles-start))
	}
	if len(b.updBuf) > 0 {
		b.trcBuf = b.kernel.AppendPageFault(b.trcBuf[:0], nil, b.updBuf)
		start = b.rep.Cycles
		if err := b.ExecTrace(b.trcBuf, ClassFault); err != nil {
			return 0, err
		}
		b.rep.FaultHandlerCycles += b.rep.Cycles - start
		if b.obs != nil {
			b.obs.Observe(metrics.EvFaultHandlerCycles, uint64(b.rep.Cycles-start))
		}
	}
	off := uint64(ref.Addr) & (dramPageBytes - 1)
	return mem.PAddr(frame<<12 | off), nil
}

// accessL1 runs the reference through the split L1 and, on a miss,
// the L2 and DRAM levels, charging time per §4.3–4.4. The hit check is
// the cache's split fast path so the batched executor's common case
// stays a tight loop.
func (b *Baseline) accessL1(kind mem.RefKind, pa mem.PAddr) {
	side := b.l1.side(kind)
	if kind == mem.IFetch {
		// Only instruction fetches add to run time on a hit (§4.3).
		b.rep.Charge(stats.L1I, 1)
	}
	if side.Hit(pa, kind == mem.Store) {
		return
	}
	b.l1Fill(side, kind, pa)
}

// l1Fill completes an L1 miss: fill (write-allocate), miss charge, the
// L2 access, and the dirty-eviction write-back. The fill runs before
// the L2 access, exactly as the combined Access path did, so inclusion
// purges triggered by L2 evictions see the same L1 state.
func (b *Baseline) l1Fill(side *cache.Cache, kind mem.RefKind, pa mem.PAddr) {
	res := side.Access(pa, kind == mem.Store)
	if kind == mem.IFetch {
		b.rep.L1IMisses++
	} else {
		b.rep.L1DMisses++
	}
	b.rep.Charge(stats.L2, b.cfg.L1MissPenalty)
	b.accessL2(pa)
	if res.EvictedDirty {
		// Write the dirty L1 block back to L2 (write-back, §4.3).
		b.rep.Charge(stats.L2, b.cfg.L1WBPenalty)
		b.writebackToL2(res.WritebackAddr)
	}
}

// accessL2 looks up the block containing pa, fetching it from DRAM on
// a miss and maintaining inclusion with L1.
func (b *Baseline) accessL2(pa mem.PAddr) {
	var res cache.Result
	if b.victim != nil {
		vres := b.victim.Access(pa, false)
		if vres.VictimHit {
			// Recovered from the victim buffer: no DRAM traffic.
			b.handleL2Eviction(vres.Result)
			return
		}
		res = vres.Result
	} else {
		res = b.l2.Access(pa, false)
	}
	if res.Hit {
		return
	}
	b.rep.L2Misses++
	b.dramTransfer(uint64(pa) &^ (b.cfg.L2Block - 1))
	b.handleL2Eviction(res)
}

// dramTransfer charges one real L2-block transfer on the Rambus
// channel and accounts it (fills and write-backs alike).
func (b *Baseline) dramTransfer(addr uint64) {
	b.rep.DRAMTransfers++
	b.rep.DRAMBytes += b.cfg.L2Block
	if b.obs != nil {
		b.obs.Observe(metrics.EvDRAMTransfer, b.cfg.L2Block)
	}
	b.rep.Charge(stats.DRAM, b.cfg.transferCyclesAt(addr, b.cfg.L2Block))
}

// handleL2Eviction maintains inclusion (purging the departing block
// from L1) and charges the DRAM write-back for dirty departures.
func (b *Baseline) handleL2Eviction(res cache.Result) {
	if !res.Evicted {
		return
	}
	dirtyL1 := b.l1.purgeRange(res.EvictedAddr, b.cfg.L2Block, &b.rep, b.cfg.L1WBPenalty)
	if res.EvictedDirty || dirtyL1 > 0 {
		b.rep.Writebacks++
		b.dramTransfer(uint64(res.EvictedAddr))
	}
}

// writebackToL2 lands a dirty L1 block in L2. Under inclusion the
// block's parent is present; if it is not (it was displaced by the
// very fill that evicted this block), the write allocates it again.
func (b *Baseline) writebackToL2(addr mem.PAddr) {
	var res cache.Result
	if b.victim != nil {
		vres := b.victim.Access(addr, true)
		if vres.VictimHit {
			b.handleL2Eviction(vres.Result)
			return
		}
		res = vres.Result
	} else {
		res = b.l2.Access(addr, true)
	}
	if res.Hit {
		return
	}
	b.rep.L2Misses++
	b.dramTransfer(uint64(addr) &^ (b.cfg.L2Block - 1))
	b.handleL2Eviction(res)
}
