package sim

import (
	"reflect"
	"testing"

	"rampage/internal/mem"
)

func newBatchBaseline(t *testing.T) *Baseline {
	t.Helper()
	b, err := NewBaseline(BaselineConfig{
		Params:    DefaultParams(1000),
		L2Bytes:   256 << 10,
		L2Block:   1024,
		L2Assoc:   1,
		DRAMBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newBatchRAMpage(t *testing.T) *RAMpage {
	t.Helper()
	r, err := NewRAMpage(RAMpageConfig{
		Params:    DefaultParams(1000),
		SRAMBytes: 264 << 10,
		PageBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// batchWorkload is a small user-mode reference mix: a code loop plus a
// data walk confined to a few pages, so the steady state is all TLB
// and L1 hits with occasional L1 conflict traffic at the start.
func batchWorkload(n int) []mem.Ref {
	refs := make([]mem.Ref, n)
	for i := range refs {
		switch i % 3 {
		case 0:
			refs[i] = mem.Ref{PID: 1, Kind: mem.IFetch, Addr: mem.VAddr(0x1000 + uint64(i%256)*4)}
		case 1:
			refs[i] = mem.Ref{PID: 1, Kind: mem.Load, Addr: mem.VAddr(0x4000 + uint64(i%128)*8)}
		default:
			refs[i] = mem.Ref{PID: 1, Kind: mem.Store, Addr: mem.VAddr(0x5000 + uint64(i%64)*8)}
		}
	}
	return refs
}

// TestExecBatchMatchesExec runs the same reference stream through Exec
// one at a time and through ExecBatch, and requires bit-identical
// reports (the scheduler-level equivalence tests in internal/harness
// cover the blocking switch-on-miss path).
func TestExecBatchMatchesExec(t *testing.T) {
	refs := batchWorkload(4096)
	t.Run("baseline", func(t *testing.T) {
		one, batch := newBatchBaseline(t), newBatchBaseline(t)
		for _, ref := range refs {
			if _, err := one.Exec(ref); err != nil {
				t.Fatal(err)
			}
		}
		for off := 0; off < len(refs); off += 129 { // deliberately unaligned windows
			end := off + 129
			if end > len(refs) {
				end = len(refs)
			}
			n, block, err := batch.ExecBatch(refs[off:end])
			if err != nil || block != 0 || n != end-off {
				t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
			}
		}
		if !reflect.DeepEqual(one.Report(), batch.Report()) {
			t.Errorf("reports diverge:\nexec:  %+v\nbatch: %+v", one.Report(), batch.Report())
		}
	})
	t.Run("rampage", func(t *testing.T) {
		one, batch := newBatchRAMpage(t), newBatchRAMpage(t)
		for _, ref := range refs {
			if _, err := one.Exec(ref); err != nil {
				t.Fatal(err)
			}
		}
		for off := 0; off < len(refs); off += 129 {
			end := off + 129
			if end > len(refs) {
				end = len(refs)
			}
			n, block, err := batch.ExecBatch(refs[off:end])
			if err != nil || block != 0 || n != end-off {
				t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
			}
		}
		if !reflect.DeepEqual(one.Report(), batch.Report()) {
			t.Errorf("reports diverge:\nexec:  %+v\nbatch: %+v", one.Report(), batch.Report())
		}
	})
}

// TestExecBatchZeroAllocSteadyState pins the hot path: once the TLB
// and L1 are warm, executing a batch must not allocate at all.
func TestExecBatchZeroAllocSteadyState(t *testing.T) {
	refs := batchWorkload(512)
	run := func(t *testing.T, m Machine) {
		t.Helper()
		// Warm up: fault the pages in and fill the caches.
		for i := 0; i < 4; i++ {
			if n, block, err := m.ExecBatch(refs); err != nil || block != 0 || n != len(refs) {
				t.Fatalf("warm-up ExecBatch = %d, %d, %v", n, block, err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := m.ExecBatch(refs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state ExecBatch allocates %.1f times per batch", allocs)
		}
	}
	t.Run("baseline", func(t *testing.T) { run(t, newBatchBaseline(t)) })
	t.Run("rampage", func(t *testing.T) { run(t, newBatchRAMpage(t)) })
}

// colsOf splits rows into the single-PID columnar form that
// ExecBatchColumnar consumes.
func colsOf(t *testing.T, refs []mem.Ref) (mem.PID, []mem.RefKind, []mem.VAddr) {
	t.Helper()
	kinds := make([]mem.RefKind, len(refs))
	addrs := make([]mem.VAddr, len(refs))
	for i, r := range refs {
		if r.PID != refs[0].PID {
			t.Fatal("colsOf needs a single-PID stream")
		}
		kinds[i], addrs[i] = r.Kind, r.Addr
	}
	return refs[0].PID, kinds, addrs
}

// TestExecBatchColumnarMatchesExecBatch requires the columnar entry
// point to produce a bit-identical report to row ExecBatch over the
// same stream, including across deliberately unaligned windows.
func TestExecBatchColumnarMatchesExecBatch(t *testing.T) {
	refs := batchWorkload(4096)
	pid, kinds, addrs := colsOf(t, refs)
	run := func(t *testing.T, rows, cols Machine) {
		t.Helper()
		cm, ok := cols.(ColumnarMachine)
		if !ok {
			t.Fatal("machine does not implement ColumnarMachine")
		}
		for off := 0; off < len(refs); off += 129 { // deliberately unaligned windows
			end := off + 129
			if end > len(refs) {
				end = len(refs)
			}
			if n, block, err := rows.ExecBatch(refs[off:end]); err != nil || block != 0 || n != end-off {
				t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
			}
			if n, block, err := cm.ExecBatchColumnar(pid, kinds[off:end], addrs[off:end]); err != nil || block != 0 || n != end-off {
				t.Fatalf("ExecBatchColumnar = %d, %d, %v", n, block, err)
			}
		}
		if !reflect.DeepEqual(rows.Report(), cols.Report()) {
			t.Errorf("reports diverge:\nrows: %+v\ncols: %+v", rows.Report(), cols.Report())
		}
	}
	t.Run("baseline", func(t *testing.T) { run(t, newBatchBaseline(t), newBatchBaseline(t)) })
	t.Run("rampage", func(t *testing.T) { run(t, newBatchRAMpage(t), newBatchRAMpage(t)) })
}

// TestExecBatchColumnarZeroAllocSteadyState pins the columnar hot
// path like TestExecBatchZeroAllocSteadyState pins the row path.
func TestExecBatchColumnarZeroAllocSteadyState(t *testing.T) {
	refs := batchWorkload(2048)
	pid, kinds, addrs := colsOf(t, refs)
	run := func(t *testing.T, m Machine) {
		t.Helper()
		cm := m.(ColumnarMachine)
		for i := 0; i < 4; i++ {
			if n, block, err := cm.ExecBatchColumnar(pid, kinds, addrs); err != nil || block != 0 || n != len(kinds) {
				t.Fatalf("warm-up ExecBatchColumnar = %d, %d, %v", n, block, err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := cm.ExecBatchColumnar(pid, kinds, addrs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("steady-state ExecBatchColumnar allocates %.1f times per batch", allocs)
		}
	}
	t.Run("baseline", func(t *testing.T) { run(t, newBatchBaseline(t)) })
	t.Run("rampage", func(t *testing.T) { run(t, newBatchRAMpage(t)) })
}
