package sim

import (
	"context"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// --- Victim cache on the baseline (ablation X3) ---

func TestBaselineVictimCacheReducesDRAMTraffic(t *testing.T) {
	mk := func(victim int) *Baseline {
		b, err := NewBaseline(BaselineConfig{
			Params:        DefaultParams(1000),
			L2Bytes:       64 << 10, // small L2: conflicts matter
			L2Block:       128,
			L2Assoc:       1,
			DRAMBytes:     16 << 20,
			VictimEntries: victim,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// A ping-pong conflict pattern in L2: two kernel blocks 64KB apart.
	refs := make([]mem.Ref, 0, 4000)
	for i := 0; i < 1000; i++ {
		refs = append(refs, kref(mem.Load, 0), kref(mem.Load, 64<<10))
	}
	plain, vc := mk(0), mk(8)
	if err := plain.ExecTrace(refs, ClassSwitch); err != nil {
		t.Fatal(err)
	}
	if err := vc.ExecTrace(refs, ClassSwitch); err != nil {
		t.Fatal(err)
	}
	if vc.Report().L2Misses >= plain.Report().L2Misses {
		t.Errorf("victim cache did not cut conflict misses: %d vs %d",
			vc.Report().L2Misses, plain.Report().L2Misses)
	}
	if vc.Report().Cycles >= plain.Report().Cycles {
		t.Errorf("victim cache did not cut time: %d vs %d cycles",
			vc.Report().Cycles, plain.Report().Cycles)
	}
}

// --- Pipelined Direct Rambus (ablation X2) ---

func TestRAMpagePipelinedBackToBackFaultCheaper(t *testing.T) {
	// A fault with a dirty victim does a write-back then a fetch; on a
	// pipelined channel the fetch's 50ns startup overlaps the
	// write-back's data phase.
	run := func(pipelined bool) mem.Cycles {
		p := DefaultParams(4000)
		p.PipelinedDRAM = pipelined
		r, err := NewRAMpage(RAMpageConfig{
			Params:    p,
			SRAMBytes: 64 << 10,
			PageBytes: 4096,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Dirty every page, then thrash so every fault writes back.
		for lap := 0; lap < 3; lap++ {
			for i := 0; i < 40; i++ {
				if _, err := r.Exec(uref(1, mem.Store, uint64(0x100000+i*4096))); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Report().LevelTime[stats.DRAM]
	}
	plain, pipe := run(false), run(true)
	if pipe >= plain {
		t.Errorf("pipelined DRAM time %d >= unpipelined %d", pipe, plain)
	}
}

// --- Aggressive L1 (§6.3) ---

func TestAggressiveL1ReducesL1Misses(t *testing.T) {
	run := func(l1Bytes uint64, assoc int) uint64 {
		p := DefaultParams(1000)
		p.L1Bytes = l1Bytes
		p.L1Assoc = assoc
		r, err := NewRAMpage(RAMpageConfig{Params: p, SRAMBytes: 264 << 10, PageBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		// A data working set beyond 16KB but within 64KB.
		for lap := 0; lap < 8; lap++ {
			for i := 0; i < 1500; i++ {
				if _, err := r.Exec(uref(1, mem.Load, uint64(0x100000+i*32))); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Report().L1DMisses
	}
	small, big := run(16<<10, 1), run(64<<10, 8)
	if big >= small {
		t.Errorf("64KB 8-way L1 misses (%d) >= 16KB DM (%d)", big, small)
	}
}

// --- Large TLB (ablation X1) ---

func TestBigTLBReducesHandlerOverhead(t *testing.T) {
	run := func(entries, assoc int) float64 {
		p := DefaultParams(1000)
		p.TLBEntries = entries
		p.TLBAssoc = assoc
		r, err := NewRAMpage(RAMpageConfig{Params: p, SRAMBytes: 1 << 20, PageBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		// Touch 512KB repeatedly: 512 pages vs 64- or 1024-entry TLB.
		for lap := 0; lap < 4; lap++ {
			for i := 0; i < 4000; i++ {
				if _, err := r.Exec(uref(1, mem.Load, uint64(0x100000+i*128))); err != nil {
					t.Fatal(err)
				}
			}
		}
		return r.Report().OverheadRatio()
	}
	small, big := run(64, 0), run(1024, 2)
	if big >= small {
		t.Errorf("1K-entry TLB overhead (%.3f) >= 64-entry (%.3f)", big, small)
	}
}

// --- Scheduler preemption semantics ---

func TestSchedulerResumeOnArrival(t *testing.T) {
	// With switch-on-miss, the faulting process must resume promptly
	// after its page arrives rather than waiting for a full rotation:
	// faults must NOT be amplified relative to the stalling run.
	mkReaders := func() []trace.Reader {
		var rs []trace.Reader
		for p := 0; p < 6; p++ {
			var refs []mem.Ref
			base := uint64(0x1000000 * (p + 1))
			for i := 0; i < 8000; i++ {
				refs = append(refs, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%512)})
				refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(base + uint64(i)*8)})
			}
			rs = append(rs, trace.NewSliceReader(refs))
		}
		return rs
	}
	run := func(switchOnMiss bool) *stats.Report {
		r := testRAMpage(t, 4000, 1024, switchOnMiss)
		s, _ := NewScheduler(r, mkReaders(), SchedulerConfig{Quantum: 4000, InsertSwitchTrace: true})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	stall, cs := run(false), run(true)
	if cs.PageFaults > stall.PageFaults*11/10 {
		t.Errorf("switch-on-miss amplified faults: %d vs %d", cs.PageFaults, stall.PageFaults)
	}
	if cs.Cycles >= stall.Cycles {
		t.Errorf("switch-on-miss (%d cycles) not faster than stalling (%d) on a streaming workload",
			cs.Cycles, stall.Cycles)
	}
}

func TestSchedulerQuantumRoundRobin(t *testing.T) {
	// Without faults the FIFO queue degenerates to round-robin: with
	// two processes and quantum Q, switches happen every Q refs.
	b := testBaseline(t, 200, 128)
	s, _ := NewScheduler(b, []trace.Reader{seqReader(1000, 0x400000), seqReader(1000, 0x400000)},
		SchedulerConfig{Quantum: 250})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 2000 refs at quantum 250: 8 slices, 7 boundary switches (the
	// final EOF transitions are not quantum switches).
	if rep.Switches < 6 || rep.Switches > 8 {
		t.Errorf("Switches = %d, want ~7", rep.Switches)
	}
}

func TestSchedulerSliceStatePreservedAcrossFaults(t *testing.T) {
	// A fault mid-slice must not reset the faulter's remaining slice:
	// total quantum switches should match the no-fault arithmetic.
	r := testRAMpage(t, 4000, 4096, true)
	var refsA, refsB []mem.Ref
	for i := 0; i < 3000; i++ {
		refsA = append(refsA, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(0x1000000 + uint64(i)*16)})
		refsB = append(refsB, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%256)})
	}
	s, _ := NewScheduler(r, []trace.Reader{
		trace.NewSliceReader(refsA), trace.NewSliceReader(refsB),
	}, SchedulerConfig{Quantum: 1000})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 6000 {
		t.Errorf("BenchRefs = %d, want 6000", rep.BenchRefs)
	}
}

func TestKernelTracesThroughBothMachines(t *testing.T) {
	// Every kind of OS trace must execute cleanly on both machines.
	k := synth.NewKernel(1)
	var buf []mem.Ref
	buf = k.AppendTLBMiss(buf, []uint64{synth.KernelBase + 0x6000})
	buf = k.AppendPageFault(buf, []uint64{synth.KernelBase + 0x6100}, []uint64{synth.KernelBase + 0x6200})
	buf = k.AppendContextSwitch(buf, 1, 2)

	b := testBaseline(t, 1000, 256)
	if err := b.ExecTrace(buf, ClassSwitch); err != nil {
		t.Errorf("baseline rejected OS trace: %v", err)
	}
	r := testRAMpage(t, 1000, 1024, false)
	if err := r.ExecTrace(buf, ClassSwitch); err != nil {
		t.Errorf("rampage rejected OS trace: %v", err)
	}
}
