package sim

import (
	"fmt"

	"rampage/internal/core"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/stats"
)

// Resize switches the RAMpage machine to a new SRAM page size and
// capacity — the §6.2 dynamic-page-size mechanism ("the only hardware
// support needed for this is a TLB capable of managing variable page
// sizes"). The switch empties the SRAM main memory: dirty pages are
// written back to DRAM (charged at the old page size), every L1 block
// is invalidated (dirty data blocks pay the write-back penalty), and a
// fresh page table is built. Subsequent accesses refault their pages
// at the new size.
//
// Resize fails while any page transfer is in flight (switch-on-miss
// mode with blocked processes): the in-flight bookkeeping would dangle.
func (r *RAMpage) Resize(pageBytes, sramBytes uint64) error {
	if len(r.inFlight) > 0 {
		return fmt.Errorf("sim: cannot resize pages while transfers are in flight")
	}
	// Write back the dirty contents of the old SRAM.
	dirty := r.mm.DirtyUserPages()
	if dirty > 0 {
		r.rep.Writebacks += dirty
		r.rep.DRAMTransfers += dirty
		r.rep.DRAMBytes += dirty * r.cfg.PageBytes
		if r.obs != nil {
			for i := uint64(0); i < dirty; i++ {
				r.obs.Observe(metrics.EvDRAMTransfer, r.cfg.PageBytes)
			}
		}
		r.rep.Charge(stats.DRAM, mem.Cycles(dirty)*r.cfg.transferCycles(r.cfg.PageBytes))
	}
	// Purge L1: every present block costs a probe cycle; dirty data
	// blocks pay the write-back penalty (their data joins the flush).
	r.l1.inst.Flush(func(mem.PAddr, bool) { r.rep.Charge(stats.L1I, 1) })
	r.l1.data.Flush(func(_ mem.PAddr, d bool) {
		r.rep.Charge(stats.L1D, 1)
		if d {
			r.rep.Charge(stats.L2, r.cfg.L1WBPenalty)
		}
	})
	mm, err := core.New(core.Config{
		TotalBytes: sramBytes,
		PageBytes:  pageBytes,
		TLBEntries: r.cfg.TLBEntries,
		TLBAssoc:   r.cfg.TLBAssoc,
		Seed:       r.cfg.Seed + 6,
		Policy:     r.cfg.Policy,
	})
	if err != nil {
		return err
	}
	r.cfg.PageBytes = pageBytes
	r.cfg.SRAMBytes = sramBytes
	r.mm.Recycle() // the old memory's page-table slabs return to the arena
	r.mm = mm
	r.mmHot = mm.Hot() // refresh the cached fast-path view
	r.kernelLimit = mm.OSPages() * mm.PageBytes()
	r.mm.SetObserver(r.obs) // the rebuilt memory inherits the probes
	r.rep.Resizes++
	return nil
}

// AdaptiveConfig configures the dynamic page-size controller.
type AdaptiveConfig struct {
	RAMpageConfig
	// MinPage and MaxPage bound the page-size search (defaults: the
	// paper's sweep endpoints, 128 B and 4 KB).
	MinPage, MaxPage uint64
	// EpochRefs is the evaluation interval in executed references
	// (default 200,000).
	EpochRefs uint64
	// SRAMBytesFor maps a page size to the SRAM capacity at that size
	// (the tag-bonus scaling of §4.5). Defaults to keeping the initial
	// capacity.
	SRAMBytesFor func(pageBytes uint64) uint64
	// HoldEpochs is how many epochs the controller rests at a plateau
	// before probing again (default 4).
	HoldEpochs int
}

// AdaptiveRAMpage wraps a RAMpage machine with the §6.2 dynamic tuning
// loop — "choosing the SRAM page size on the fly", the flexibility the
// paper argues a software-managed hierarchy has and a hardware cache
// cannot offer.
//
// The controller is an online hill climber on cycles-per-reference:
// every EpochRefs references it measures the epoch's cost, and
//
//   - after a move, if cost improved it keeps moving in the same
//     direction; if cost worsened it reverts and rests;
//   - at a plateau it rests HoldEpochs, then probes (upward by
//     default, downward when DRAM transfer time dwarfs the TLB-handler
//     work — oversized pages waste the channel);
//   - the epoch immediately after any resize is skipped, so the flush
//     transient never pollutes a measurement.
//
// Probes are not free — each resize flushes the SRAM and is charged in
// full — so the controller pays for its own exploration, exactly as a
// real system would.
type AdaptiveRAMpage struct {
	*RAMpage
	cfg AdaptiveConfig

	epochStart   uint64 // BenchRefs at epoch start
	epochCycles  mem.Cycles
	lastTLBRefs  uint64
	lastDRAMTime mem.Cycles
	lastIdle     mem.Cycles

	prevCost float64 // cycles per reference at the best known size
	lastMove int     // +1 doubled, -1 halved, 0 at rest
	skip     bool    // discard the epoch after a resize
	hold     int     // epochs to rest before probing again
	holdCur  int     // current backoff (doubles after fruitless probes)
}

// NewAdaptiveRAMpage builds the adaptive machine. Adaptive mode is
// incompatible with SwitchOnMiss (a resize cannot happen with pages in
// flight, and blocked-process bookkeeping would span the resize).
func NewAdaptiveRAMpage(cfg AdaptiveConfig) (*AdaptiveRAMpage, error) {
	if cfg.SwitchOnMiss {
		return nil, fmt.Errorf("sim: adaptive page sizing is incompatible with switch-on-miss")
	}
	if cfg.MinPage == 0 {
		cfg.MinPage = 128
	}
	if cfg.MaxPage == 0 {
		cfg.MaxPage = 4096
	}
	if cfg.EpochRefs == 0 {
		cfg.EpochRefs = 100_000
	}
	if cfg.HoldEpochs == 0 {
		cfg.HoldEpochs = 4
	}
	if cfg.SRAMBytesFor == nil {
		fixed := cfg.SRAMBytes
		cfg.SRAMBytesFor = func(uint64) uint64 { return fixed }
	}
	inner, err := NewRAMpage(cfg.RAMpageConfig)
	if err != nil {
		return nil, err
	}
	inner.rep.Name = "rampage-adaptive"
	return &AdaptiveRAMpage{RAMpage: inner, cfg: cfg, holdCur: cfg.HoldEpochs}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Exec implements Machine, interposing the epoch controller.
func (a *AdaptiveRAMpage) Exec(ref mem.Ref) (mem.Cycles, error) {
	block, err := a.RAMpage.Exec(ref)
	if err != nil {
		return block, err
	}
	if a.rep.BenchRefs-a.epochStart >= a.cfg.EpochRefs {
		if err := a.evaluate(); err != nil {
			return 0, err
		}
	}
	return block, nil
}

// ExecBatch implements Machine, overriding the embedded RAMpage fast
// path so the epoch controller still runs. Each sub-batch is capped at
// the epoch boundary (BenchRefs advances by exactly one per executed
// application reference), so evaluate fires at precisely the reference
// it would under per-reference Exec calls.
func (a *AdaptiveRAMpage) ExecBatch(refs []mem.Ref) (int, mem.Cycles, error) {
	consumed := 0
	for consumed < len(refs) {
		left := uint64(len(refs) - consumed)
		if done := a.rep.BenchRefs - a.epochStart; done < a.cfg.EpochRefs {
			if until := a.cfg.EpochRefs - done; until < left {
				left = until
			}
		} else {
			left = 1
		}
		n, block, err := a.RAMpage.ExecBatch(refs[consumed : consumed+int(left)])
		consumed += n
		if err != nil {
			return consumed, 0, err
		}
		if a.rep.BenchRefs-a.epochStart >= a.cfg.EpochRefs {
			if err := a.evaluate(); err != nil {
				return consumed, 0, err
			}
		}
		if block != 0 {
			return consumed, block, nil
		}
	}
	return consumed, 0, nil
}

// ExecBatchColumnar implements ColumnarMachine with the same epoch
// chunking as ExecBatch; without this override the promoted RAMpage
// method would run whole windows past epoch boundaries.
func (a *AdaptiveRAMpage) ExecBatchColumnar(pid mem.PID, kinds []mem.RefKind, addrs []mem.VAddr) (int, mem.Cycles, error) {
	consumed := 0
	for consumed < len(kinds) {
		left := uint64(len(kinds) - consumed)
		if done := a.rep.BenchRefs - a.epochStart; done < a.cfg.EpochRefs {
			if until := a.cfg.EpochRefs - done; until < left {
				left = until
			}
		} else {
			left = 1
		}
		end := consumed + int(left)
		n, block, err := a.RAMpage.ExecBatchColumnar(pid, kinds[consumed:end], addrs[consumed:end])
		consumed += n
		if err != nil {
			return consumed, 0, err
		}
		if a.rep.BenchRefs-a.epochStart >= a.cfg.EpochRefs {
			if err := a.evaluate(); err != nil {
				return consumed, 0, err
			}
		}
		if block != 0 {
			return consumed, block, nil
		}
	}
	return consumed, 0, nil
}

// evaluate ends an epoch and runs the hill-climbing step.
func (a *AdaptiveRAMpage) evaluate() error {
	refs := a.rep.BenchRefs - a.epochStart
	cycles := a.rep.Cycles - a.epochCycles
	tlbRefs := a.rep.OSTLBRefs - a.lastTLBRefs
	dramTime := a.rep.LevelTime[stats.DRAM] - a.lastDRAMTime - (a.rep.IdleCycles - a.lastIdle)
	a.epochStart = a.rep.BenchRefs
	a.epochCycles = a.rep.Cycles
	a.lastTLBRefs = a.rep.OSTLBRefs
	a.lastDRAMTime = a.rep.LevelTime[stats.DRAM]
	a.lastIdle = a.rep.IdleCycles
	if refs == 0 {
		return nil
	}
	cost := float64(cycles) / float64(refs)

	if a.skip {
		// Warm-up epoch right after a resize: no judgment.
		a.skip = false
		return nil
	}
	if a.lastMove != 0 {
		switch {
		case cost <= a.prevCost*0.98:
			// The move paid off: bank the gain, keep climbing, and
			// reset the probe backoff.
			a.prevCost = cost
			a.holdCur = a.cfg.HoldEpochs
			return a.move(a.lastMove)
		case cost >= a.prevCost*1.02:
			// The move hurt: undo it and back off exponentially —
			// fruitless probes get rarer and rarer (each one costs a
			// full SRAM flush).
			dir := a.lastMove
			a.lastMove = 0
			a.holdCur = minInt(a.holdCur*2, 64)
			a.hold = a.holdCur
			return a.move(-dir)
		default:
			// Plateau: stay here and back off.
			a.lastMove = 0
			a.holdCur = minInt(a.holdCur*2, 64)
			a.hold = a.holdCur
			a.prevCost = cost
			return nil
		}
	}
	if a.hold > 0 {
		a.hold--
		a.prevCost = cost
		return nil
	}
	// Probe. Default upward (bigger pages cut TLB-handler work and
	// exploit spatial locality); go downward when the channel is being
	// wasted on oversized transfers.
	a.prevCost = cost
	page := a.RAMpage.cfg.PageBytes
	dir := +1
	if float64(dramTime) > 4*float64(tlbRefs) && page > a.cfg.MinPage {
		dir = -1
	}
	if (dir > 0 && page >= a.cfg.MaxPage) || (dir < 0 && page <= a.cfg.MinPage) {
		dir = -dir
	}
	if (dir > 0 && page >= a.cfg.MaxPage) || (dir < 0 && page <= a.cfg.MinPage) {
		return nil // single permitted size
	}
	a.lastMove = dir
	return a.move(dir)
}

// move resizes one step in the given direction, clamped to the bounds,
// and marks the next epoch as warm-up.
func (a *AdaptiveRAMpage) move(dir int) error {
	page := a.RAMpage.cfg.PageBytes
	var next uint64
	if dir > 0 {
		next = page * 2
		if next > a.cfg.MaxPage {
			a.lastMove = 0
			return nil
		}
	} else {
		next = page / 2
		if next < a.cfg.MinPage {
			a.lastMove = 0
			return nil
		}
	}
	a.skip = true
	return a.Resize(next, a.cfg.SRAMBytesFor(next))
}

// PageBytes returns the current SRAM page size.
func (a *AdaptiveRAMpage) PageBytes() uint64 { return a.RAMpage.cfg.PageBytes }
