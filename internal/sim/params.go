// Package sim contains the trace-driven hierarchy simulators that
// produce the paper's results: the baseline conventional-cache machine
// (direct-mapped or 2-way L2, §4.4/§4.7), the RAMpage machine (§4.5),
// and the multiprogramming scheduler with optional context switches on
// misses (§4.6).
//
// The simulators are cycle-accounting models, not event-driven
// pipelines, matching the paper's methodology (§4.3): a single-cycle
// non-superscalar CPU whose issue rate models a superscalar design;
// TLB and L1 data hits fully pipelined (zero time); only instruction
// fetches and miss penalties advance simulated time. DRAM timing is in
// absolute nanoseconds and does not scale with the CPU clock, which is
// how the growing CPU–DRAM gap is modeled.
package sim

import (
	"fmt"

	"rampage/internal/dram"
	"rampage/internal/mem"
)

// Params are the §4.3 common features shared by every simulated
// machine.
type Params struct {
	// Clock is the CPU issue rate.
	Clock mem.Clock
	// L1Bytes is the size of EACH of the split instruction and data
	// caches (16 KB); L1Block their block size (32 B); L1Assoc their
	// associativity (1; the §6.3 "more aggressive L1" ablation uses 8).
	L1Bytes uint64
	L1Block uint64
	L1Assoc int
	// L1MissPenalty is the CPU-cycle cost of an L1 miss satisfied by
	// the next SRAM level (12 = 4 bus cycles at one third the CPU
	// clock, §4.4). L1WBPenalty is the dirty-eviction write-back cost;
	// zero selects the machine default (12 for the baseline, 9 for
	// RAMpage, which has no L2 tag to update — §4.3).
	L1MissPenalty mem.Cycles
	L1WBPenalty   mem.Cycles
	// TLBEntries/TLBAssoc configure the TLB (64 fully associative;
	// assoc 0 = full).
	TLBEntries int
	TLBAssoc   int
	// DRAM is the paging/backing device — Direct Rambus in the paper,
	// but any dram.Device (e.g. the §3.3 SDRAM design) can be swapped
	// in. PipelinedDRAM enables the §6.3 pipelined-channel variant.
	DRAM          dram.Device
	PipelinedDRAM bool
	// Seed drives every deterministic random choice in the machine.
	Seed uint64
}

// DefaultParams returns the §4.3 configuration at the given issue
// rate: 16 KB + 16 KB direct-mapped L1 with 32 B blocks, 12-cycle miss
// penalty, 64-entry fully-associative TLB, unpipelined Direct Rambus.
func DefaultParams(issueMHz uint64) Params {
	return Params{
		Clock:         mem.MustClock(issueMHz),
		L1Bytes:       16 << 10,
		L1Block:       32,
		L1Assoc:       1,
		L1MissPenalty: 12,
		TLBEntries:    64,
		TLBAssoc:      0,
		DRAM:          dram.NewDirectRambus(),
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Clock.IssueMHz() == 0 {
		return fmt.Errorf("sim: zero clock")
	}
	if p.L1Bytes == 0 || p.L1Block == 0 || p.L1Assoc < 1 {
		return fmt.Errorf("sim: incomplete L1 configuration")
	}
	if p.TLBEntries <= 0 {
		return fmt.Errorf("sim: TLB entries must be positive")
	}
	if p.DRAM == nil {
		return fmt.Errorf("sim: no DRAM device configured")
	}
	return nil
}

// transferCycles converts a DRAM transfer of n bytes into CPU cycles
// at this machine's clock.
func (p Params) transferCycles(n uint64) mem.Cycles {
	return p.Clock.CyclesFrom(p.DRAM.TransferTime(n))
}

// dataCycles is the data phase of a transfer alone (without the
// startup latency) — the marginal cost of a back-to-back transfer on a
// pipelined channel (§3.3, the §6.3 ablation).
func (p Params) dataCycles(n uint64) mem.Cycles {
	return p.Clock.CyclesFrom(p.DRAM.TransferTime(n) - dram.StartupTime(p.DRAM))
}

// backToBackCycles is the cost of two page-sized transfers issued back
// to back (victim write-back then fetch): fully serialized on an
// unpipelined channel, startup-overlapped on a pipelined one.
func (p Params) backToBackCycles(n uint64) mem.Cycles {
	if p.PipelinedDRAM {
		return p.transferCycles(n) + p.dataCycles(n)
	}
	return 2 * p.transferCycles(n)
}

// transferCyclesAt times an n-byte transfer at a specific DRAM
// address, exploiting bank/row-buffer state when the device models it
// (dram.Addressed); otherwise it falls back to the flat timing.
func (p Params) transferCyclesAt(addr, n uint64) mem.Cycles {
	if ad, ok := p.DRAM.(dram.Addressed); ok {
		return p.Clock.CyclesFrom(ad.TransferTimeAt(addr, n))
	}
	return p.transferCycles(n)
}

// startupCycles is the device's fixed startup latency in cycles — the
// portion a pipelined channel can overlap.
func (p Params) startupCycles() mem.Cycles {
	return p.Clock.CyclesFrom(dram.StartupTime(p.DRAM))
}

// RefClass classifies executed references for the overhead accounting
// of Figure 4.
type RefClass uint8

const (
	// ClassBench is an application reference from the trace.
	ClassBench RefClass = iota
	// ClassTLB is a TLB-miss handler reference.
	ClassTLB
	// ClassFault is a page-fault handler reference.
	ClassFault
	// ClassSwitch is a context-switch code reference.
	ClassSwitch
)
