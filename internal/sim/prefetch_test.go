package sim

import (
	"context"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/stats"
	"rampage/internal/trace"
)

func prefetchMachine(t *testing.T, mhz uint64, enabled bool) *RAMpage {
	t.Helper()
	r, err := NewRAMpage(RAMpageConfig{
		Params:       DefaultParams(mhz),
		SRAMBytes:    256<<10 + 8<<10,
		PageBytes:    1024,
		PrefetchNext: enabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// streamRefs is a sequential walk: the ideal prefetch customer.
func streamRefs(n int, base uint64) []mem.Ref {
	refs := make([]mem.Ref, 0, 2*n)
	for i := 0; i < n; i++ {
		refs = append(refs,
			mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%512)},
			mem.Ref{Kind: mem.Load, Addr: mem.VAddr(base + uint64(i)*8)})
	}
	return refs
}

func TestPrefetchCoversSequentialFaults(t *testing.T) {
	run := func(enabled bool) *stats.Report {
		r := prefetchMachine(t, 4000, enabled)
		for _, ref := range streamRefs(20000, 0x1000000) {
			if _, err := r.Exec(ref); err != nil {
				t.Fatal(err)
			}
		}
		return r.Report()
	}
	off, on := run(false), run(true)
	if on.Prefetches == 0 {
		t.Fatal("prefetching enabled but nothing prefetched")
	}
	if on.PrefetchHits == 0 {
		t.Error("sequential stream produced no prefetch hits")
	}
	// Prefetch must convert most demand faults into hits: far fewer
	// synchronous faults.
	if on.PageFaults >= off.PageFaults/2 {
		t.Errorf("faults with prefetch = %d, without = %d; want < half", on.PageFaults, off.PageFaults)
	}
	if on.Cycles >= off.Cycles {
		t.Errorf("prefetch (%d cycles) not faster than demand (%d) on a stream", on.Cycles, off.Cycles)
	}
}

func TestPrefetchStallChargesPartialWait(t *testing.T) {
	// Touching the prefetched page immediately after the fault must
	// wait for (part of) the in-flight transfer, not a full fault.
	r := prefetchMachine(t, 4000, true)
	if _, err := r.Exec(uref(1, mem.Load, 0x1000000)); err != nil { // fault + prefetch of next page
		t.Fatal(err)
	}
	before := r.Report().Cycles
	if _, err := r.Exec(uref(1, mem.Load, 0x1000000+1024)); err != nil { // prefetched page
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.PrefetchStalls != 1 {
		t.Errorf("PrefetchStalls = %d, want 1", rep.PrefetchStalls)
	}
	if rep.PageFaults != 1 {
		t.Errorf("PageFaults = %d, want 1 (the second access must not fault)", rep.PageFaults)
	}
	wait := rep.Cycles - before
	full := DefaultParams(4000).transferCycles(1024)
	if wait == 0 || wait > mem.Cycles(float64(full)*1.5) {
		t.Errorf("stall = %d cycles; want partial wait near the transfer time (%d)", wait, full)
	}
}

func TestPrefetchWastedCounted(t *testing.T) {
	// A strided walk that skips every other page wastes half the
	// prefetches; they must eventually be evicted and counted.
	r, err := NewRAMpage(RAMpageConfig{
		Params:       DefaultParams(1000),
		SRAMBytes:    64 << 10, // small: wasted pages get evicted fast
		PageBytes:    4096,
		PrefetchNext: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := r.Exec(uref(1, mem.Load, uint64(0x1000000+i*8192))); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Report()
	if rep.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if rep.PrefetchWasted == 0 {
		t.Error("page-skipping walk produced no wasted prefetches")
	}
	if rep.PrefetchHits != 0 {
		t.Errorf("PrefetchHits = %d on a walk that never touches prefetched pages", rep.PrefetchHits)
	}
}

func TestPrefetchWithSwitchOnMiss(t *testing.T) {
	// Prefetch and switch-on-miss must compose: the workload completes
	// and a demand hit on an in-flight prefetch blocks rather than
	// stalls.
	r, err := NewRAMpage(RAMpageConfig{
		Params:       DefaultParams(4000),
		SRAMBytes:    256<<10 + 8<<10,
		PageBytes:    1024,
		SwitchOnMiss: true,
		PrefetchNext: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	readers := []trace.Reader{
		trace.NewSliceReader(streamRefs(5000, 0x1000000)),
		trace.NewSliceReader(streamRefs(5000, 0x8000000)),
	}
	s, _ := NewScheduler(r, readers, SchedulerConfig{Quantum: 2000, InsertSwitchTrace: true})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 20000 {
		t.Errorf("BenchRefs = %d, want 20000", rep.BenchRefs)
	}
	if rep.Prefetches == 0 || rep.PrefetchHits == 0 {
		t.Errorf("prefetch inactive under CS: %d issued, %d hits", rep.Prefetches, rep.PrefetchHits)
	}
}

func TestPrefetchDeterministic(t *testing.T) {
	run := func() mem.Cycles {
		r := prefetchMachine(t, 2000, true)
		for _, ref := range streamRefs(5000, 0x1000000) {
			if _, err := r.Exec(ref); err != nil {
				t.Fatal(err)
			}
		}
		return r.Report().Cycles
	}
	if run() != run() {
		t.Error("prefetch runs not deterministic")
	}
}
