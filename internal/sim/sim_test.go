package sim

import (
	"context"
	"testing"

	"rampage/internal/mem"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

func testBaseline(t *testing.T, mhz uint64, l2Block uint64) *Baseline {
	t.Helper()
	b, err := NewBaseline(BaselineConfig{
		Params:    DefaultParams(mhz),
		L2Bytes:   256 << 10,
		L2Block:   l2Block,
		L2Assoc:   1,
		DRAMBytes: 16 << 20,
	})
	if err != nil {
		t.Fatalf("NewBaseline: %v", err)
	}
	return b
}

func testRAMpage(t *testing.T, mhz uint64, page uint64, switchOnMiss bool) *RAMpage {
	t.Helper()
	r, err := NewRAMpage(RAMpageConfig{
		Params:       DefaultParams(mhz),
		SRAMBytes:    256<<10 + 8<<10, // 256KB + 8KB tag bonus, page-aligned for 128B..8KB
		PageBytes:    page,
		SwitchOnMiss: switchOnMiss,
	})
	if err != nil {
		t.Fatalf("NewRAMpage: %v", err)
	}
	return r
}

func kref(kind mem.RefKind, off uint64) mem.Ref {
	return mem.Ref{PID: mem.KernelPID, Kind: kind, Addr: mem.VAddr(synth.KernelBase + off)}
}

func uref(pid mem.PID, kind mem.RefKind, addr uint64) mem.Ref {
	return mem.Ref{PID: pid, Kind: kind, Addr: mem.VAddr(addr)}
}

// --- Exact timing arithmetic (kernel path: no TLB, no handlers) ---

func TestBaselineColdIFetchTiming(t *testing.T) {
	// 200MHz, 128B L2 blocks. Cold kernel ifetch: 1 (issue) + 12 (L1
	// miss to L2) + 26 (DRAM: 130ns at 5000ps/cycle) = 39 cycles.
	b := testBaseline(t, 200, 128)
	if err := b.ExecTrace([]mem.Ref{kref(mem.IFetch, 0)}, ClassSwitch); err != nil {
		t.Fatal(err)
	}
	if b.Now() != 39 {
		t.Errorf("cold ifetch = %d cycles, want 39", b.Now())
	}
	// Warm repeat: 1 cycle.
	before := b.Now()
	b.ExecTrace([]mem.Ref{kref(mem.IFetch, 0)}, ClassSwitch)
	if got := b.Now() - before; got != 1 {
		t.Errorf("warm ifetch = %d cycles, want 1", got)
	}
	rep := b.Report()
	if rep.L1IMisses != 1 || rep.L2Misses != 1 {
		t.Errorf("misses: L1i=%d L2=%d, want 1, 1", rep.L1IMisses, rep.L2Misses)
	}
}

func TestBaselineL2HitTiming(t *testing.T) {
	// Two kernel ifetches in the same 128B L2 block but different 32B
	// L1 blocks: the second pays only the 12-cycle L2 hit penalty.
	b := testBaseline(t, 200, 128)
	b.ExecTrace([]mem.Ref{kref(mem.IFetch, 0)}, ClassSwitch)
	before := b.Now()
	b.ExecTrace([]mem.Ref{kref(mem.IFetch, 32)}, ClassSwitch)
	if got := b.Now() - before; got != 13 {
		t.Errorf("L2-hit ifetch = %d cycles, want 13 (1 + 12)", got)
	}
}

func TestBaselineDataHitIsFree(t *testing.T) {
	// §4.3: TLB and L1 data hits are fully pipelined.
	b := testBaseline(t, 200, 128)
	b.ExecTrace([]mem.Ref{kref(mem.Load, 0)}, ClassSwitch) // warm the block
	before := b.Now()
	b.ExecTrace([]mem.Ref{kref(mem.Load, 4), kref(mem.Store, 8)}, ClassSwitch)
	if got := b.Now() - before; got != 0 {
		t.Errorf("warm data refs cost %d cycles, want 0", got)
	}
}

func TestBaselineDRAMScalesWithClock(t *testing.T) {
	// The same cold miss costs more cycles at 4GHz: 1 + 12 + 520
	// (130ns at 250ps).
	b := testBaseline(t, 4000, 128)
	b.ExecTrace([]mem.Ref{kref(mem.IFetch, 0)}, ClassSwitch)
	if b.Now() != 1+12+520 {
		t.Errorf("4GHz cold ifetch = %d cycles, want 533", b.Now())
	}
}

func TestRAMpageKernelMissTiming(t *testing.T) {
	// RAMpage kernel ifetch: SRAM always hits after translation, so a
	// cold L1 miss costs 1 + 12 only — no DRAM reference (§2.3).
	r := testRAMpage(t, 200, 4096, false)
	if err := r.ExecTrace([]mem.Ref{kref(mem.IFetch, 0)}, ClassSwitch); err != nil {
		t.Fatal(err)
	}
	if r.Now() != 13 {
		t.Errorf("RAMpage cold kernel ifetch = %d cycles, want 13", r.Now())
	}
	if r.Report().LevelTime[stats.DRAM] != 0 {
		t.Error("pinned kernel access reached DRAM")
	}
}

func TestRAMpageWritebackPenalty9(t *testing.T) {
	// §4.3: write-backs cost 9 cycles in RAMpage (no L2 tag to update).
	r := testRAMpage(t, 200, 4096, false)
	// Dirty a block, then evict it with a conflicting block (L1 is
	// 16KB direct-mapped).
	r.ExecTrace([]mem.Ref{kref(mem.Store, 0)}, ClassSwitch) // miss+fill: 12
	before := r.Now()
	r.ExecTrace([]mem.Ref{kref(mem.Load, 16<<10)}, ClassSwitch) // conflict
	// Load miss: 12, plus write-back: 9.
	if got := r.Now() - before; got != 21 {
		t.Errorf("miss+writeback = %d cycles, want 21 (12+9)", got)
	}
}

// --- User path: TLB, page table, faults ---

func TestBaselineTLBMissRunsHandler(t *testing.T) {
	b := testBaseline(t, 200, 128)
	if _, err := b.Exec(uref(1, mem.Load, 0x100000)); err != nil {
		t.Fatal(err)
	}
	rep := b.Report()
	if rep.TLBMisses != 1 {
		t.Errorf("TLBMisses = %d, want 1", rep.TLBMisses)
	}
	if rep.OSTLBRefs == 0 {
		t.Error("TLB-miss handler trace not executed")
	}
	if rep.OSFaultRefs == 0 {
		t.Error("first-touch allocation trace not executed")
	}
	if rep.BenchRefs != 1 {
		t.Errorf("BenchRefs = %d, want 1", rep.BenchRefs)
	}
	// Second access to the same page: TLB hit, no more handler refs.
	os := rep.OSTLBRefs
	b.Exec(uref(1, mem.Load, 0x100008))
	if rep.OSTLBRefs != os {
		t.Error("TLB hit ran the handler")
	}
}

func TestRAMpageFaultChargesPageTransfer(t *testing.T) {
	r := testRAMpage(t, 200, 4096, false)
	if _, err := r.Exec(uref(1, mem.Load, 0x100000)); err != nil {
		t.Fatal(err)
	}
	rep := r.Report()
	if rep.PageFaults != 1 {
		t.Fatalf("PageFaults = %d, want 1", rep.PageFaults)
	}
	// The 4KB page transfer is 2610ns = 522 cycles at 200MHz.
	if rep.LevelTime[stats.DRAM] != 522 {
		t.Errorf("DRAM time = %d cycles, want 522", rep.LevelTime[stats.DRAM])
	}
	if rep.OSFaultRefs == 0 || rep.OSTLBRefs == 0 {
		t.Error("fault/TLB handler traces not executed")
	}
}

func TestRAMpageSmallPagesShrinkTLBReach(t *testing.T) {
	// Figure 4: with 128B SRAM pages the 64-entry TLB covers only 8KB,
	// so a strided walk produces far more handler overhead than with
	// 4KB pages.
	run := func(page uint64) float64 {
		r := testRAMpage(t, 200, page, false)
		for i := 0; i < 4000; i++ {
			if _, err := r.Exec(uref(1, mem.Load, uint64(0x100000+i*512))); err != nil {
				t.Fatal(err)
			}
		}
		return r.Report().OverheadRatio()
	}
	small, big := run(128), run(4096)
	if small <= 2*big {
		t.Errorf("overhead ratio 128B=%.3f should far exceed 4KB=%.3f", small, big)
	}
}

func TestRAMpageReplacementPurgesL1(t *testing.T) {
	// After SRAM fills, a fault must evict a page and purge its blocks
	// from L1 (no stale physical blocks may hit).
	r, err := NewRAMpage(RAMpageConfig{
		Params:    DefaultParams(200),
		SRAMBytes: 64 << 10, // small: forces replacement quickly
		PageBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Touch many pages with stores, cycling far beyond capacity.
	for lap := 0; lap < 3; lap++ {
		for i := 0; i < 32; i++ {
			if _, err := r.Exec(uref(1, mem.Store, uint64(0x100000+i*4096))); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := r.Report()
	if rep.PageFaults <= 32 {
		t.Errorf("PageFaults = %d, want > 32 (replacement thrash)", rep.PageFaults)
	}
	if rep.Writebacks == 0 {
		t.Error("dirty pages never written back to DRAM")
	}
}

// --- Scheduler ---

func seqReader(n int, base uint64) trace.Reader {
	refs := make([]mem.Ref, n)
	for i := range refs {
		refs[i] = mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(base + uint64(i*4)%1024)}
	}
	return trace.NewSliceReader(refs)
}

func TestSchedulerRunsAllRefs(t *testing.T) {
	b := testBaseline(t, 200, 128)
	s, err := NewScheduler(b, []trace.Reader{seqReader(1000, 0x400000), seqReader(1000, 0x400000)},
		SchedulerConfig{Quantum: 100})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 2000 {
		t.Errorf("BenchRefs = %d, want 2000", rep.BenchRefs)
	}
	if rep.Switches == 0 {
		t.Error("no context switches with quantum 100 over 2000 refs")
	}
}

func TestSchedulerSwitchTrace(t *testing.T) {
	run := func(insert bool) *stats.Report {
		b := testBaseline(t, 200, 128)
		s, _ := NewScheduler(b, []trace.Reader{seqReader(500, 0x400000), seqReader(500, 0x400000)},
			SchedulerConfig{Quantum: 100, InsertSwitchTrace: insert})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	with, without := run(true), run(false)
	if with.OSSwitchRefs == 0 {
		t.Error("switch trace not interleaved")
	}
	if without.OSSwitchRefs != 0 {
		t.Error("switch trace interleaved when disabled")
	}
	if with.Cycles <= without.Cycles {
		t.Error("switch trace did not add time")
	}
}

func TestSchedulerMaxRefs(t *testing.T) {
	b := testBaseline(t, 200, 128)
	s, _ := NewScheduler(b, []trace.Reader{seqReader(100000, 0x400000)}, SchedulerConfig{MaxRefs: 500})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 500 {
		t.Errorf("BenchRefs = %d, want 500 (MaxRefs)", rep.BenchRefs)
	}
}

func TestSchedulerSwitchOnMissBlocksAndResumes(t *testing.T) {
	// Two processes with disjoint footprints on a RAMpage-CS machine:
	// faults must block one while the other runs, and everything must
	// still complete.
	r := testRAMpage(t, 4000, 4096, true)
	mkProc := func(base uint64) trace.Reader {
		var refs []mem.Ref
		for i := 0; i < 2000; i++ {
			refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(base + uint64(i*256))})
			refs = append(refs, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%256)})
		}
		return trace.NewSliceReader(refs)
	}
	s, _ := NewScheduler(r, []trace.Reader{mkProc(0x1000000), mkProc(0x8000000)},
		SchedulerConfig{Quantum: 1000, InsertSwitchTrace: true})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 8000 {
		t.Errorf("BenchRefs = %d, want 8000", rep.BenchRefs)
	}
	if rep.SwitchesOnMiss == 0 {
		t.Error("no switches on miss despite faults")
	}
	if rep.PageFaults == 0 {
		t.Error("no page faults")
	}
}

func TestSwitchOnMissOverlapsDRAM(t *testing.T) {
	// With several processes, switch-on-miss must beat stalling: the
	// DRAM transfers overlap other processes' execution (§5.4).
	// Each process streams sequentially through its own region: a page
	// fault every 128 data references (1KB page, 8B elements), far
	// apart enough for a fill-in process to do useful work during the
	// ~3.5us transfer.
	mkReaders := func() []trace.Reader {
		var rs []trace.Reader
		for p := 0; p < 4; p++ {
			var refs []mem.Ref
			base := uint64(0x1000000 * (p + 1))
			for i := 0; i < 12000; i++ {
				refs = append(refs, mem.Ref{Kind: mem.IFetch, Addr: mem.VAddr(0x400000 + uint64(i*4)%512)})
				refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(base + uint64(i)*8)})
			}
			rs = append(rs, trace.NewSliceReader(refs))
		}
		return rs
	}
	run := func(switchOnMiss bool) mem.Cycles {
		r := testRAMpage(t, 4000, 1024, switchOnMiss)
		s, _ := NewScheduler(r, mkReaders(), SchedulerConfig{Quantum: 5000, InsertSwitchTrace: true})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.PageFaults == 0 {
			t.Fatal("workload produced no faults")
		}
		return rep.Cycles
	}
	stall, overlap := run(false), run(true)
	if overlap >= stall {
		t.Errorf("switch-on-miss (%d cycles) not faster than stalling (%d)", overlap, stall)
	}
}

func TestSchedulerSingleProcessSwitchOnMiss(t *testing.T) {
	// With one process there is nothing to overlap with: the scheduler
	// must idle-wait for pages, not deadlock.
	r := testRAMpage(t, 1000, 4096, true)
	var refs []mem.Ref
	for i := 0; i < 200; i++ {
		refs = append(refs, mem.Ref{Kind: mem.Load, Addr: mem.VAddr(0x1000000 + uint64(i)*8192)})
	}
	s, _ := NewScheduler(r, []trace.Reader{trace.NewSliceReader(refs)},
		SchedulerConfig{Quantum: 1000})
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BenchRefs != 200 {
		t.Errorf("BenchRefs = %d, want 200", rep.BenchRefs)
	}
	if rep.IdleCycles == 0 {
		t.Error("single-process CS-on-miss never idled for DRAM")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *stats.Report {
		r := testRAMpage(t, 800, 512, true)
		readers := []trace.Reader{seqReader(3000, 0x400000), seqReader(3000, 0x500000)}
		s, _ := NewScheduler(r, readers, SchedulerConfig{Quantum: 700, InsertSwitchTrace: true, Seed: 11})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.PageFaults != b.PageFaults || a.TLBMisses != b.TLBMisses {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err == nil {
		t.Error("zero params validated")
	}
	p := DefaultParams(200)
	if err := p.Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
	p.TLBEntries = 0
	if err := p.Validate(); err == nil {
		t.Error("zero TLB entries validated")
	}
}

func TestNewBaselineErrors(t *testing.T) {
	cfg := BaselineConfig{Params: DefaultParams(200)}
	if _, err := NewBaseline(cfg); err == nil {
		t.Error("baseline without L2 config accepted")
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	b := testBaseline(t, 200, 128)
	if _, err := NewScheduler(b, nil, SchedulerConfig{}); err == nil {
		t.Error("scheduler with no processes accepted")
	}
}

func TestKernelAddressOutOfRange(t *testing.T) {
	b := testBaseline(t, 200, 128)
	bad := mem.Ref{PID: mem.KernelPID, Kind: mem.Load, Addr: 0x1000}
	if err := b.ExecTrace([]mem.Ref{bad}, ClassSwitch); err == nil {
		t.Error("kernel reference outside reserved region accepted")
	}
}

// --- Integration: a scaled Table 2 workload runs end to end ---

func table2Readers(t *testing.T, refScale, sizeScale float64) []trace.Reader {
	t.Helper()
	var readers []trace.Reader
	for _, p := range synth.Table2() {
		g, err := synth.NewGenerator(p, synth.Options{
			Seed: 42, RefScale: refScale, SizeScale: sizeScale,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		readers = append(readers, g)
	}
	return readers
}

func TestIntegrationBaselineVsRAMpage(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	const refScale, sizeScale = 0.0005, 1.0 / 16
	quantum := uint64(2000)

	runBaseline := func() *stats.Report {
		b, err := NewBaseline(BaselineConfig{
			Params:  DefaultParams(4000),
			L2Bytes: 256 << 10, L2Block: 512, L2Assoc: 1,
			DRAMBytes: 32 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := NewScheduler(b, table2Readers(t, refScale, sizeScale), SchedulerConfig{Quantum: quantum})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	runRAMpage := func() *stats.Report {
		r, err := NewRAMpage(RAMpageConfig{
			Params:    DefaultParams(4000),
			SRAMBytes: 256<<10 + 2<<10, // + tag bonus for 512B blocks
			PageBytes: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := NewScheduler(r, table2Readers(t, refScale, sizeScale), SchedulerConfig{Quantum: quantum})
		rep, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, rp := runBaseline(), runRAMpage()
	if base.BenchRefs != rp.BenchRefs {
		t.Errorf("ref counts differ: baseline %d, rampage %d", base.BenchRefs, rp.BenchRefs)
	}
	// Sanity, not a strict performance assertion at this tiny scale:
	// both must see real memory-system activity.
	if base.L2Misses == 0 || rp.PageFaults == 0 {
		t.Errorf("degenerate run: L2Misses=%d faults=%d", base.L2Misses, rp.PageFaults)
	}
	t.Logf("baseline: %v", base)
	t.Logf("rampage:  %v", rp)
}
