package sim

import (
	"reflect"
	"testing"

	"rampage/internal/metrics"
)

// TestExecBatchZeroAllocWithCollector extends the steady-state
// allocation pin to the instrumented path: attaching a Collector must
// not make the batched hot loop allocate either (the probes use fixed
// arrays and preallocated snapshot storage).
func TestExecBatchZeroAllocWithCollector(t *testing.T) {
	refs := batchWorkload(512)
	run := func(t *testing.T, m Machine) {
		t.Helper()
		m.SetObserver(metrics.NewCollector(10_000))
		for i := 0; i < 4; i++ {
			if n, block, err := m.ExecBatch(refs); err != nil || block != 0 || n != len(refs) {
				t.Fatalf("warm-up ExecBatch = %d, %d, %v", n, block, err)
			}
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := m.ExecBatch(refs); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("instrumented ExecBatch allocates %.1f times per batch", allocs)
		}
	}
	t.Run("baseline", func(t *testing.T) { run(t, newBatchBaseline(t)) })
	t.Run("rampage", func(t *testing.T) { run(t, newBatchRAMpage(t)) })
}

// TestObserverDoesNotPerturbReport runs identical machines with and
// without a Collector attached and requires bit-identical reports:
// observation is read-only.
func TestObserverDoesNotPerturbReport(t *testing.T) {
	refs := batchWorkload(4096)
	run := func(t *testing.T, plain, observed Machine) *metrics.Collector {
		t.Helper()
		col := metrics.NewCollector(0)
		observed.SetObserver(col)
		for off := 0; off < len(refs); off += 257 {
			end := off + 257
			if end > len(refs) {
				end = len(refs)
			}
			for _, m := range []Machine{plain, observed} {
				if n, block, err := m.ExecBatch(refs[off:end]); err != nil || block != 0 || n != end-off {
					t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
				}
			}
		}
		if !reflect.DeepEqual(plain.Report(), observed.Report()) {
			t.Errorf("observer perturbed the report:\nplain:    %+v\nobserved: %+v", plain.Report(), observed.Report())
		}
		return col
	}
	t.Run("baseline", func(t *testing.T) {
		col := run(t, newBatchBaseline(t), newBatchBaseline(t))
		counts := col.Counts()
		if counts[metrics.EvTLBHit] == 0 || counts[metrics.EvTLBMiss] == 0 {
			t.Errorf("expected TLB activity, got hit=%d miss=%d", counts[metrics.EvTLBHit], counts[metrics.EvTLBMiss])
		}
		if h := col.Hist(metrics.EvDRAMTransfer); h.Count == 0 {
			t.Error("expected DRAM transfer observations")
		}
	})
	t.Run("rampage", func(t *testing.T) {
		col := run(t, newBatchRAMpage(t), newBatchRAMpage(t))
		counts := col.Counts()
		if counts[metrics.EvPageFault] == 0 {
			t.Error("expected page faults on a cold RAMpage machine")
		}
	})
}

// TestObserverCountsMatchReport pins the probe sites that mirror a
// Report counter one-for-one: the collector and the report must agree
// exactly.
func TestObserverCountsMatchReport(t *testing.T) {
	refs := batchWorkload(4096)
	t.Run("rampage", func(t *testing.T) {
		m := newBatchRAMpage(t)
		col := metrics.NewCollector(0)
		m.SetObserver(col)
		if n, block, err := m.ExecBatch(refs); err != nil || block != 0 || n != len(refs) {
			t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
		}
		rep := m.Report()
		counts := col.Counts()
		if counts[metrics.EvPageFault] != rep.PageFaults {
			t.Errorf("page faults: collector %d, report %d", counts[metrics.EvPageFault], rep.PageFaults)
		}
		h := col.Hist(metrics.EvDRAMTransfer)
		if h.Count != rep.DRAMTransfers || h.Sum != rep.DRAMBytes {
			t.Errorf("dram transfers: collector %d/%d bytes, report %d/%d bytes",
				h.Count, h.Sum, rep.DRAMTransfers, rep.DRAMBytes)
		}
		ht := col.Hist(metrics.EvTLBHandlerCycles)
		if ht.Sum != uint64(rep.TLBHandlerCycles) {
			t.Errorf("tlb handler cycles: collector %d, report %d", ht.Sum, rep.TLBHandlerCycles)
		}
		hf := col.Hist(metrics.EvFaultHandlerCycles)
		if hf.Sum != uint64(rep.FaultHandlerCycles) {
			t.Errorf("fault handler cycles: collector %d, report %d", hf.Sum, rep.FaultHandlerCycles)
		}
	})
	t.Run("baseline", func(t *testing.T) {
		m := newBatchBaseline(t)
		col := metrics.NewCollector(0)
		m.SetObserver(col)
		if n, block, err := m.ExecBatch(refs); err != nil || block != 0 || n != len(refs) {
			t.Fatalf("ExecBatch = %d, %d, %v", n, block, err)
		}
		rep := m.Report()
		counts := col.Counts()
		if counts[metrics.EvTLBHit] != rep.TLBHits {
			t.Errorf("tlb hits: collector %d, report %d", counts[metrics.EvTLBHit], rep.TLBHits)
		}
		h := col.Hist(metrics.EvDRAMTransfer)
		if h.Count != rep.DRAMTransfers || h.Sum != rep.DRAMBytes {
			t.Errorf("dram transfers: collector %d/%d bytes, report %d/%d bytes",
				h.Count, h.Sum, rep.DRAMTransfers, rep.DRAMBytes)
		}
	})
}
