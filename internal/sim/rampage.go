package sim

import (
	"fmt"

	"rampage/internal/core"
	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/policy"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/tlb"
)

// RAMpageConfig describes a RAMpage machine (§4.5): the lowest SRAM
// level is a paged main memory, DRAM is a paging device.
type RAMpageConfig struct {
	Params
	// SRAMBytes is the SRAM main memory capacity. Per §4.5 it is the
	// comparable cache plus its tag budget; harness.SRAMSize computes
	// it. PageBytes is the swept SRAM page size.
	SRAMBytes uint64
	PageBytes uint64
	// SwitchOnMiss enables context switches on page faults (§4.6,
	// Table 4): on a fault the machine starts the DRAM transfer and
	// reports a blocking time instead of stalling.
	SwitchOnMiss bool
	// PrefetchNext enables sequential next-page prefetch (the §3.2
	// extension): every demand fault also starts an asynchronous
	// transfer of the following virtual page. A demand access that
	// arrives before its prefetched page has landed waits only for the
	// remainder of the transfer.
	PrefetchNext bool
	// Policy selects the SRAM page-replacement policy ("" means clock,
	// the paper's §4.5 algorithm). See package policy for the
	// vocabulary. Non-clock machines report as "rampage+<policy>".
	Policy string
}

// RAMpage is the paper's machine: split L1 in front of a software-
// managed SRAM main memory, with the Rambus channel below.
type RAMpage struct {
	cfg    RAMpageConfig
	l1     l1pair
	mm     *core.Memory
	kernel *synth.Kernel

	rep        stats.Report
	chanFreeAt mem.Cycles // Rambus channel occupancy for async transfers
	trcBuf     []mem.Ref
	inFlight   []inFlightPage           // pages pinned while their transfer runs
	pending    map[mem.PAddr]mem.Cycles // in-flight prefetched pages: base -> arrival
	obs        metrics.Observer         // nil unless probing is attached

	// Fused fast-path views (fastpath.go). mmHot caches r.mm.Hot() —
	// capturing it per batch costs a large struct copy on every handler
	// trace — and is refreshed by Resize, the only place r.mm swaps.
	// kernelLimit caches the pinned OS region size likewise.
	fast        fastL1
	mmHot       core.Hot
	kernelLimit uint64
}

// inFlightPage tracks a pinned page whose DRAM transfer completes at
// ready.
type inFlightPage struct {
	page  mem.PAddr
	ready mem.Cycles
}

// NewRAMpage builds the machine. The write-back penalty defaults to 9
// cycles (§4.3: no L2 tag to update) unless explicitly configured.
func NewRAMpage(cfg RAMpageConfig) (*RAMpage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.L1WBPenalty == 0 {
		cfg.L1WBPenalty = 9
	}
	l1, err := newL1Pair(cfg.Params)
	if err != nil {
		return nil, err
	}
	mm, err := core.New(core.Config{
		TotalBytes: cfg.SRAMBytes,
		PageBytes:  cfg.PageBytes,
		TLBEntries: cfg.TLBEntries,
		TLBAssoc:   cfg.TLBAssoc,
		Seed:       cfg.Seed + 6,
		Policy:     cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	name := "rampage"
	if cfg.SwitchOnMiss {
		name = "rampage-cs"
	}
	if pol := policy.Normalize(cfg.Policy); pol != "" {
		name += "+" + pol
	}
	return &RAMpage{
		cfg:         cfg,
		l1:          l1,
		mm:          mm,
		kernel:      synth.NewKernel(cfg.Seed + 7),
		rep:         stats.Report{Name: name, Clock: cfg.Clock, BlockBytes: cfg.PageBytes},
		pending:     make(map[mem.PAddr]mem.Cycles),
		fast:        newFastL1(l1),
		mmHot:       mm.Hot(),
		kernelLimit: mm.OSPages() * mm.PageBytes(),
	}, nil
}

// Memory exposes the SRAM main memory manager (for inspection).
func (r *RAMpage) Memory() *core.Memory { return r.mm }

// TLBStats exposes the TLB counters.
func (r *RAMpage) TLBStats() tlb.Stats { return r.mm.TLBStats() }

// Report implements Machine.
func (r *RAMpage) Report() *stats.Report { return &r.rep }

// SetObserver implements Machine, threading the observer through the
// SRAM main memory (TLB + page table) and the DRAM device.
func (r *RAMpage) SetObserver(obs metrics.Observer) {
	r.obs = obs
	r.mm.SetObserver(obs)
	observeDRAM(r.cfg.DRAM, obs)
}

// Now implements Machine.
func (r *RAMpage) Now() mem.Cycles { return r.rep.Cycles }

// AdvanceTo implements Machine.
func (r *RAMpage) AdvanceTo(t mem.Cycles) {
	if t > r.rep.Cycles {
		idle := t - r.rep.Cycles
		r.rep.IdleCycles += idle
		r.rep.Charge(stats.DRAM, idle)
	}
}

// Exec implements Machine. In switch-on-miss mode a page fault returns
// the absolute cycle at which the page arrives; the reference did not
// execute and must be retried after that time.
func (r *RAMpage) Exec(ref mem.Ref) (mem.Cycles, error) {
	return r.execOne(ref, ClassBench)
}

// ExecBatch implements Machine. The fast path — no transfers in
// flight, a user reference whose translation hits the TLB — skips the
// per-reference event machinery entirely; TLB misses, faults and any
// in-flight-page bookkeeping fall back to the per-reference path. A
// blocking reference stops the batch unconsumed, exactly like Exec.
func (r *RAMpage) ExecBatch(refs []mem.Ref) (int, mem.Cycles, error) {
	i := 0
	for i < len(refs) {
		if r.fast.ok && r.obs == nil && len(r.inFlight) == 0 && len(r.pending) == 0 {
			// Fused loop; it consumes until a blocking fault, an error,
			// or a fallback that put transfers in flight.
			n, block, err := r.execBatchFast(refs[i:])
			i += n
			if err != nil {
				return i, 0, err
			}
			if block != 0 {
				return i, block, nil
			}
			continue
		}
		ref := refs[i]
		if len(r.inFlight) == 0 && len(r.pending) == 0 {
			if pa, ok := r.mm.TranslateHit(ref.PID, ref.Addr, ref.Kind == mem.Store); ok {
				r.rep.TLBHits++
				r.rep.BenchRefs++
				r.accessL1(ref.Kind, pa)
				i++
				continue
			}
		}
		block, err := r.execOne(ref, ClassBench)
		if err != nil {
			return i, 0, err
		}
		if block != 0 {
			return i, block, nil
		}
		i++
	}
	return len(refs), 0, nil
}

// ExecTrace implements Machine. Operating-system references are pinned
// in SRAM (§4.6) and can never fault.
func (r *RAMpage) ExecTrace(refs []mem.Ref, class RefClass) error {
	i := 0
	if r.fast.ok && r.obs == nil && len(r.inFlight) == 0 && len(r.pending) == 0 {
		n, err := r.execTraceFast(refs, class)
		if err != nil {
			return err
		}
		i = n
	}
	for ; i < len(refs); i++ {
		if block, err := r.execOne(refs[i], class); err != nil {
			return err
		} else if block != 0 {
			return fmt.Errorf("sim: pinned OS reference faulted")
		}
	}
	return nil
}

func (r *RAMpage) countRef(class RefClass) {
	switch class {
	case ClassBench:
		r.rep.BenchRefs++
	case ClassTLB:
		r.rep.OSTLBRefs++
	case ClassFault:
		r.rep.OSFaultRefs++
	case ClassSwitch:
		r.rep.OSSwitchRefs++
	}
}

func (r *RAMpage) execOne(ref mem.Ref, class RefClass) (mem.Cycles, error) {
	r.unpinCompleted()
	out, err := r.mm.Translate(ref.PID, ref.Addr, ref.Kind == mem.Store)
	if err != nil {
		return 0, err
	}
	if out.TLBMiss {
		r.rep.TLBMisses++
		// The TLB-miss handler walks the pinned inverted page table;
		// its references hit SRAM by construction (§2.3).
		r.trcBuf = r.kernel.AppendTLBMiss(r.trcBuf[:0], out.PTProbes)
		start := r.rep.Cycles
		if err := r.ExecTrace(r.trcBuf, ClassTLB); err != nil {
			return 0, err
		}
		r.rep.TLBHandlerCycles += r.rep.Cycles - start
		if r.obs != nil {
			r.obs.Observe(metrics.EvTLBHandlerCycles, uint64(r.rep.Cycles-start))
		}
	} else if ref.PID != mem.KernelPID {
		r.rep.TLBHits++
	}
	if out.PrefetchHit {
		r.rep.PrefetchHits++
		// Keep the pipeline primed: a hit on a prefetched page means
		// the stream is sequential, so fetch the next page too.
		if r.cfg.PrefetchNext && ref.PID != mem.KernelPID {
			if err := r.prefetchNext(ref); err != nil {
				return 0, err
			}
		}
	}
	if out.Fault != nil {
		block, err := r.handleFault(out.Fault)
		if err != nil {
			return 0, err
		}
		if r.cfg.PrefetchNext && ref.PID != mem.KernelPID {
			if err := r.prefetchNext(ref); err != nil {
				return 0, err
			}
		}
		if block != 0 {
			// Lock the frame for the duration of its transfer, as an
			// OS locks frames during I/O: the clock hand must not
			// steal the page before the blocked process resumes.
			page := out.Addr &^ mem.PAddr(r.cfg.PageBytes-1)
			r.mm.PinPage(page)
			r.inFlight = append(r.inFlight, inFlightPage{page: page, ready: block})
			return block, nil
		}
	}
	// A demand access to a page whose prefetch is still in flight
	// waits only for the remainder of the transfer.
	if len(r.pending) > 0 {
		page := out.Addr &^ mem.PAddr(r.cfg.PageBytes-1)
		if ready, ok := r.pending[page]; ok {
			if ready > r.rep.Cycles {
				r.rep.PrefetchStalls++
				if r.cfg.SwitchOnMiss && class == ClassBench {
					return ready, nil // block; the reference is retried
				}
				r.rep.Charge(stats.DRAM, ready-r.rep.Cycles)
			}
			delete(r.pending, page)
		}
	}
	r.countRef(class)
	r.accessL1(ref.Kind, out.Addr)
	return 0, nil
}

// prefetchNext starts an asynchronous fetch of the virtual page after
// the one that just faulted (§3.2: sequential one-ahead prefetch). The
// handler work is charged like a page fault; the transfer queues on
// the Rambus channel behind the demand fetch and never stalls the CPU
// directly.
func (r *RAMpage) prefetchNext(ref mem.Ref) error {
	vpn := uint64(ref.Addr)/r.cfg.PageBytes + 1
	f, pa, ok, err := r.mm.Prefetch(ref.PID, vpn)
	if err != nil || !ok {
		return err
	}
	r.rep.Prefetches++
	r.trcBuf = r.kernel.AppendPageFault(r.trcBuf[:0], f.ScanAddrs, f.UpdateAddrs)
	hstart := r.rep.Cycles
	if err := r.ExecTrace(r.trcBuf, ClassFault); err != nil {
		return err
	}
	r.rep.FaultHandlerCycles += r.rep.Cycles - hstart
	if r.obs != nil {
		r.obs.Observe(metrics.EvFaultHandlerCycles, uint64(r.rep.Cycles-hstart))
	}
	cost := r.pageTransferCycles(f)
	start := r.rep.Cycles
	if r.chanFreeAt > start {
		start = r.chanFreeAt
	}
	ready := start + cost
	r.chanFreeAt = ready
	r.mm.PinPage(pa)
	r.inFlight = append(r.inFlight, inFlightPage{page: pa, ready: ready})
	r.pending[pa] = ready
	return nil
}

// unpinCompleted releases in-flight page locks whose transfers have
// finished by the current simulated time.
func (r *RAMpage) unpinCompleted() {
	if len(r.inFlight) == 0 {
		return
	}
	now := r.rep.Cycles
	kept := r.inFlight[:0]
	for _, p := range r.inFlight {
		if p.ready <= now {
			r.mm.UnpinPage(p.page)
			delete(r.pending, p.page)
		} else {
			kept = append(kept, p)
		}
	}
	r.inFlight = kept
}

// handleFault runs the page-fault handler trace, purges the victim
// page from L1, and either stalls on the Rambus transfers or (switch-
// on-miss) schedules them on the channel and returns the completion
// time.
func (r *RAMpage) handleFault(f *core.Fault) (mem.Cycles, error) {
	r.rep.PageFaults++
	if r.obs != nil {
		r.obs.Count(metrics.EvPageFault, 1)
	}
	r.trcBuf = r.kernel.AppendPageFault(r.trcBuf[:0], f.ScanAddrs, f.UpdateAddrs)
	start := r.rep.Cycles
	if err := r.ExecTrace(r.trcBuf, ClassFault); err != nil {
		return 0, err
	}
	r.rep.FaultHandlerCycles += r.rep.Cycles - start
	if r.obs != nil {
		r.obs.Observe(metrics.EvFaultHandlerCycles, uint64(r.rep.Cycles-start))
	}
	total := r.pageTransferCycles(f)
	if r.cfg.SwitchOnMiss {
		start := r.rep.Cycles
		if r.chanFreeAt > start {
			if r.cfg.PipelinedDRAM {
				// The new reference's startup overlaps the in-flight
				// transfer; only its data phase queues behind it.
				startup := r.cfg.transferCycles(r.cfg.PageBytes) - r.cfg.dataCycles(r.cfg.PageBytes)
				if r.rep.Cycles+startup > r.chanFreeAt {
					start = r.rep.Cycles + startup
				} else {
					start = r.chanFreeAt
				}
				total -= startup
			} else {
				start = r.chanFreeAt
			}
		}
		ready := start + total
		r.chanFreeAt = ready
		return ready, nil
	}
	r.rep.Charge(stats.DRAM, total)
	return 0, nil
}

// pageTransferCycles performs the victim bookkeeping for a fault (or
// prefetch) and returns the total Rambus time: the victim write-back
// (when needed) followed by the page fetch, serialized, or startup-
// overlapped on a pipelined channel (§6.3 ablation). With an
// address-sensitive DRAM model the write-back is timed first so the
// fetch sees the row-buffer state it leaves behind.
func (r *RAMpage) pageTransferCycles(f *core.Fault) mem.Cycles {
	var total mem.Cycles
	writeback := r.applyVictim(f)
	if writeback {
		total += r.cfg.transferCyclesAt(f.VictimDRAMAddr, r.cfg.PageBytes)
		r.dramTransfer()
	}
	fetch := r.cfg.transferCyclesAt(f.PageDRAMAddr, r.cfg.PageBytes)
	r.dramTransfer()
	if writeback && r.cfg.PipelinedDRAM {
		// The fetch's startup overlaps the write-back's data phase.
		if s := r.cfg.startupCycles(); fetch > s {
			fetch -= s
		}
	}
	return total + fetch
}

// dramTransfer accounts one real page-sized transfer on the Rambus
// channel (fetch or victim write-back); the caller times it.
func (r *RAMpage) dramTransfer() {
	r.rep.DRAMTransfers++
	r.rep.DRAMBytes += r.cfg.PageBytes
	if r.obs != nil {
		r.obs.Observe(metrics.EvDRAMTransfer, r.cfg.PageBytes)
	}
}

// applyVictim performs the replacement bookkeeping for a fault or
// prefetch: L1 inclusion purge of the departing page (§2.3) and the
// write-back decision. It reports whether the victim must be written
// to DRAM before its frame is reused.
func (r *RAMpage) applyVictim(f *core.Fault) bool {
	r.rep.ClockScans += uint64(len(f.ScanAddrs))
	if f.VictimTLBEvicted {
		r.rep.TLBEvictions++
	}
	writeback := false
	if f.VictimValid {
		// Inclusion: the replaced page's blocks leave L1 (§2.3). Dirty
		// blocks merge into the departing page, dirtying it.
		dirty := r.l1.purgeRange(f.VictimPageAddr, r.cfg.PageBytes, &r.rep, r.cfg.L1WBPenalty)
		writeback = f.VictimDirty || dirty > 0
		if f.VictimWasPrefetched {
			r.rep.PrefetchWasted++
		}
	}
	if writeback {
		r.rep.Writebacks++
	}
	return writeback
}

// accessL1 runs the reference through the split L1. After translation
// the data is guaranteed resident in the SRAM main memory — full
// associativity with no tag check (§2.2) — so an L1 miss costs exactly
// the SRAM access penalty and never goes deeper.
func (r *RAMpage) accessL1(kind mem.RefKind, pa mem.PAddr) {
	side := r.l1.side(kind)
	if kind == mem.IFetch {
		r.rep.Charge(stats.L1I, 1)
	}
	if side.Hit(pa, kind == mem.Store) {
		return
	}
	res := side.Access(pa, kind == mem.Store)
	if kind == mem.IFetch {
		r.rep.L1IMisses++
	} else {
		r.rep.L1DMisses++
	}
	r.rep.Charge(stats.L2, r.cfg.L1MissPenalty)
	if res.EvictedDirty {
		// Write back to SRAM: 9 cycles, no tag update (§4.3). The
		// receiving page becomes dirty.
		r.rep.Charge(stats.L2, r.cfg.L1WBPenalty)
		r.mm.MarkDirty(res.WritebackAddr)
	}
}
