package sim

import (
	"fmt"
	"sort"

	"rampage/internal/checkpoint"
	"rampage/internal/core"
	"rampage/internal/dram"
	"rampage/internal/mem"
	"rampage/internal/trace"
)

// Snapshotter is a machine whose complete simulated state can be
// serialized and restored. A restored machine driven by a restored
// scheduler produces reports bit-identical to an uninterrupted run.
type Snapshotter interface {
	EncodeState(*checkpoint.Enc)
	DecodeState(*checkpoint.Dec)
}

// CaptureState serializes the machine and scheduler into one payload.
// It must be called after Run returns and before the machine is
// released; the scheduler's reference streams are not serialized — only
// their cursors are, because the synthetic generators are pure
// functions of their consumption count.
func CaptureState(m Machine, s *Scheduler) ([]byte, error) {
	snap, ok := m.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: machine %T does not support checkpointing", m)
	}
	e := checkpoint.NewEnc()
	snap.EncodeState(e)
	s.EncodeState(e)
	return e.Bytes(), nil
}

// RestoreState decodes a CaptureState payload into a freshly
// constructed machine and scheduler of the identical configuration.
// The next Run continues exactly where the captured run stopped.
func RestoreState(m Machine, s *Scheduler, payload []byte) error {
	snap, ok := m.(Snapshotter)
	if !ok {
		return fmt.Errorf("sim: machine %T does not support checkpointing", m)
	}
	d := checkpoint.NewDec(payload)
	snap.DecodeState(d)
	s.DecodeState(d)
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("sim: %d trailing bytes after machine state", d.Remaining())
	}
	return nil
}

// EncodeState serializes the scheduler: the cumulative reference count,
// the switch-trace kernel RNG, per-process scheduling state and stream
// cursors, and the ready queue in FIFO order. Pending fault retries and
// read-ahead buffers are NOT serialized: the cursor counts only
// executed references, so a repositioned stream regenerates any
// unexecuted reference (pending retry or buffered read-ahead) on the
// first fetch after resume.
func (s *Scheduler) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkScheduler)
	e.U64(s.executed)
	e.U64(s.kernel.RNGState())
	e.U64(uint64(s.wakeAt))
	running := int32(-1)
	for i, p := range s.procs {
		if p.state == procRunning {
			running = int32(i)
		}
	}
	e.I32(running)
	e.U32(uint32(len(s.procs)))
	for _, p := range s.procs {
		e.U8(uint8(p.state))
		e.U64(uint64(p.readyAt))
		e.U64(p.sliceLeft)
		e.U64(p.done)
	}
	e.U32(uint32(s.queue.len()))
	for i := 0; i < s.queue.n; i++ {
		e.I32(int32(s.queue.buf[(s.queue.head+i)%len(s.queue.buf)]))
	}
}

// DecodeState restores state captured by EncodeState into a scheduler
// built over fresh readers of the same workload, repositioning each
// stream to its cursor, and arms the resume entry path.
func (s *Scheduler) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkScheduler)
	s.executed = d.U64()
	s.kernel.SetRNGState(d.U64())
	s.wakeAt = mem.Cycles(d.U64())
	running := d.I32()
	n := d.U32()
	if d.Err() == nil && int(n) != len(s.procs) {
		d.Fail("sim: checkpoint has %d processes, scheduler has %d", n, len(s.procs))
	}
	if d.Err() != nil {
		return
	}
	for _, p := range s.procs {
		p.state = procState(d.U8())
		p.readyAt = mem.Cycles(d.U64())
		p.sliceLeft = d.U64()
		p.done = d.U64()
		p.hasPend = false
		p.bufPos, p.bufN, p.rdErr = 0, 0, nil
	}
	qn := d.U32()
	if d.Err() == nil && int(qn) > len(s.procs) {
		d.Fail("sim: ready queue length %d exceeds %d processes", qn, len(s.procs))
	}
	if d.Err() != nil {
		return
	}
	s.queue.head, s.queue.n = 0, 0
	for i := uint32(0); i < qn; i++ {
		v := d.I32()
		if d.Err() != nil {
			return
		}
		if v < 0 || int(v) >= len(s.procs) {
			d.Fail("sim: ready queue entry %d out of range", v)
			return
		}
		s.queue.pushBack(int(v))
	}
	if running < -1 || int(running) >= len(s.procs) {
		d.Fail("sim: running process %d out of range", running)
		return
	}
	if running >= 0 && s.procs[running].state != procRunning {
		d.Fail("sim: process %d marked running but has state %d", running, s.procs[running].state)
		return
	}
	for i, p := range s.procs {
		if err := s.repositionReader(p); err != nil {
			d.Fail("sim: repositioning process %d: %v", i, err)
			return
		}
	}
	s.resumed = true
	s.resumeCur = int(running)
}

// repositionReader advances a fresh reader past the p.done references
// the captured run already executed. Columnar streams skip in O(1);
// row streams read and discard, which is exact because the synthetic
// generators produce references as a pure function of consumption
// count.
func (s *Scheduler) repositionReader(p *proc) error {
	if p.done == 0 {
		return nil
	}
	if p.col != nil {
		if rem := p.col.Remaining(); rem < p.done {
			return fmt.Errorf("stream has %d references, cursor wants %d", rem, p.done)
		}
		p.col.Skip(int(p.done))
		return nil
	}
	scratch := make([]mem.Ref, 4096)
	left := p.done
	for left > 0 {
		want := uint64(len(scratch))
		if want > left {
			want = left
		}
		n, err := trace.ReadBatch(p.r, scratch[:want])
		left -= uint64(n)
		if err != nil {
			return fmt.Errorf("stream ended %d references short of cursor %d: %w", left, p.done, err)
		}
		if n == 0 {
			return fmt.Errorf("stream stalled %d references short of cursor %d", left, p.done)
		}
	}
	return nil
}

// EncodeState serializes the baseline machine: both L1 sides, the L2
// (and victim buffer when attached), the TLB, the DRAM-resident page
// table, the handler-trace kernel RNG, the report and the DRAM device.
func (b *Baseline) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkBaseline)
	b.l1.inst.EncodeState(e)
	b.l1.data.EncodeState(e)
	b.l2.EncodeState(e)
	e.Bool(b.victim != nil)
	if b.victim != nil {
		b.victim.EncodeState(e)
	}
	b.tlb.EncodeState(e)
	b.pt.EncodeState(e)
	e.U64(b.kernel.RNGState())
	b.rep.EncodeState(e)
	dram.EncodeDeviceState(e, b.cfg.DRAM)
}

// DecodeState restores state captured by EncodeState, in place: the
// fused fast-path views alias the live cache and TLB columns, so decode
// copies into them rather than replacing them.
func (b *Baseline) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkBaseline)
	b.l1.inst.DecodeState(d)
	b.l1.data.DecodeState(d)
	b.l2.DecodeState(d)
	hasVictim := d.Bool()
	if d.Err() == nil && hasVictim != (b.victim != nil) {
		d.Fail("sim: checkpoint victim-cache presence %t does not match machine %t", hasVictim, b.victim != nil)
	}
	if b.victim != nil && d.Err() == nil {
		b.victim.DecodeState(d)
	}
	b.tlb.DecodeState(d)
	b.pt.DecodeState(d)
	b.kernel.SetRNGState(d.U64())
	b.rep.DecodeState(d)
	dram.DecodeDeviceState(d, b.cfg.DRAM)
}

// EncodeState serializes the RAMpage machine: the L1 pair, the SRAM
// main memory, the handler-trace kernel RNG, the report, the Rambus
// channel occupancy, the in-flight page locks and the prefetch arrival
// map (in sorted address order, for determinism), and the DRAM device.
func (r *RAMpage) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkRAMpage)
	r.encodeRAMpage(e)
}

func (r *RAMpage) encodeRAMpage(e *checkpoint.Enc) {
	r.l1.inst.EncodeState(e)
	r.l1.data.EncodeState(e)
	r.mm.EncodeState(e)
	e.U64(r.kernel.RNGState())
	r.rep.EncodeState(e)
	e.U64(uint64(r.chanFreeAt))
	e.U32(uint32(len(r.inFlight)))
	for _, p := range r.inFlight {
		e.U64(uint64(p.page))
		e.U64(uint64(p.ready))
	}
	addrs := make([]mem.PAddr, 0, len(r.pending))
	for a := range r.pending {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.U32(uint32(len(addrs)))
	for _, a := range addrs {
		e.U64(uint64(a))
		e.U64(uint64(r.pending[a]))
	}
	dram.EncodeDeviceState(e, r.cfg.DRAM)
}

// DecodeState restores state captured by EncodeState, in place (the
// fast-path views alias the live columns).
func (r *RAMpage) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkRAMpage)
	r.decodeRAMpage(d)
}

func (r *RAMpage) decodeRAMpage(d *checkpoint.Dec) {
	r.l1.inst.DecodeState(d)
	r.l1.data.DecodeState(d)
	r.mm.DecodeState(d)
	r.kernel.SetRNGState(d.U64())
	r.rep.DecodeState(d)
	r.chanFreeAt = mem.Cycles(d.U64())
	nf := d.U32()
	if d.Err() != nil {
		return
	}
	r.inFlight = r.inFlight[:0]
	for i := uint32(0); i < nf && d.Err() == nil; i++ {
		page := mem.PAddr(d.U64())
		ready := mem.Cycles(d.U64())
		r.inFlight = append(r.inFlight, inFlightPage{page: page, ready: ready})
	}
	np := d.U32()
	if d.Err() != nil {
		return
	}
	r.pending = make(map[mem.PAddr]mem.Cycles, np)
	for i := uint32(0); i < np && d.Err() == nil; i++ {
		a := mem.PAddr(d.U64())
		r.pending[a] = mem.Cycles(d.U64())
	}
	dram.DecodeDeviceState(d, r.cfg.DRAM)
}

// EncodeState serializes the adaptive machine: the current SRAM
// geometry (the controller may have resized away from the constructed
// page size), the full RAMpage state at that geometry, and the
// hill-climbing controller's state.
func (a *AdaptiveRAMpage) EncodeState(e *checkpoint.Enc) {
	e.Marker(checkpoint.MarkAdaptive)
	e.U64(a.RAMpage.cfg.PageBytes)
	e.U64(a.RAMpage.cfg.SRAMBytes)
	a.encodeRAMpage(e)
	e.U64(a.epochStart)
	e.U64(uint64(a.epochCycles))
	e.U64(a.lastTLBRefs)
	e.U64(uint64(a.lastDRAMTime))
	e.U64(uint64(a.lastIdle))
	e.F64(a.prevCost)
	e.I32(int32(a.lastMove))
	e.Bool(a.skip)
	e.I32(int32(a.hold))
	e.I32(int32(a.holdCur))
}

// DecodeState restores state captured by EncodeState. When the captured
// geometry differs from the constructed one, the SRAM main memory is
// rebuilt at the captured geometry first — directly, with no simulated
// resize cost, since the captured run already paid it — and the cached
// fast-path views are refreshed.
func (a *AdaptiveRAMpage) DecodeState(d *checkpoint.Dec) {
	d.Marker(checkpoint.MarkAdaptive)
	pageBytes := d.U64()
	sramBytes := d.U64()
	if d.Err() != nil {
		return
	}
	if pageBytes != a.RAMpage.cfg.PageBytes || sramBytes != a.RAMpage.cfg.SRAMBytes {
		mm, err := core.New(core.Config{
			TotalBytes: sramBytes,
			PageBytes:  pageBytes,
			TLBEntries: a.RAMpage.cfg.TLBEntries,
			TLBAssoc:   a.RAMpage.cfg.TLBAssoc,
			Seed:       a.RAMpage.cfg.Seed + 6,
			Policy:     a.RAMpage.cfg.Policy,
		})
		if err != nil {
			d.Fail("sim: rebuilding SRAM at checkpoint geometry: %v", err)
			return
		}
		a.RAMpage.cfg.PageBytes = pageBytes
		a.RAMpage.cfg.SRAMBytes = sramBytes
		a.RAMpage.mm.Recycle()
		a.RAMpage.mm = mm
		a.RAMpage.mmHot = mm.Hot()
		a.RAMpage.kernelLimit = mm.OSPages() * mm.PageBytes()
		a.RAMpage.mm.SetObserver(a.RAMpage.obs)
	}
	a.decodeRAMpage(d)
	a.epochStart = d.U64()
	a.epochCycles = mem.Cycles(d.U64())
	a.lastTLBRefs = d.U64()
	a.lastDRAMTime = mem.Cycles(d.U64())
	a.lastIdle = mem.Cycles(d.U64())
	a.prevCost = d.F64()
	a.lastMove = int(d.I32())
	a.skip = d.Bool()
	a.hold = int(d.I32())
	a.holdCur = int(d.I32())
}
