package sim

import (
	"errors"
	"fmt"
	"io"

	"rampage/internal/trace"
)

// Replay drives a machine directly from a pre-interleaved reference
// stream (for example a trace file written by rampage-trace), with no
// scheduler: references execute in stream order, kernel-tagged
// references included. Blocking machines (RAMpage with switch-on-miss)
// are rejected — without a scheduler there is nothing to switch to.
func Replay(m Machine, r trace.Reader) error {
	for {
		ref, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		block, err := m.Exec(ref)
		if err != nil {
			return err
		}
		if block != 0 {
			return fmt.Errorf("sim: Replay cannot drive a switch-on-miss machine (reference blocked)")
		}
	}
}
