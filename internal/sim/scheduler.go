package sim

import (
	"errors"
	"fmt"
	"io"

	"rampage/internal/mem"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// procState is a simulated process's scheduling state.
type procState uint8

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// proc is one simulated process: a reference stream with scheduling
// state.
type proc struct {
	pid       mem.PID
	r         trace.Reader
	state     procState
	readyAt   mem.Cycles // when blocked: page-arrival time
	pending   mem.Ref    // the faulting reference to retry after unblock
	hasPend   bool
	sliceLeft uint64 // references remaining in the current time slice
}

// SchedulerConfig configures the multiprogramming driver.
type SchedulerConfig struct {
	// Quantum is the time slice in references (§4.2: 500,000).
	Quantum uint64
	// InsertSwitchTrace interleaves the ~400-reference context-switch
	// code at every switch (§4.6). Table 3 runs omit it; Tables 4–5
	// include it.
	InsertSwitchTrace bool
	// LightweightThreads replaces the switch code on *miss-induced*
	// switches with a ~40-reference thread switch — the §3.2/§6.3
	// multithreading extension. Quantum-boundary switches still pay
	// the full process-switch cost.
	LightweightThreads bool
	// Seed drives the context-switch trace generator.
	Seed uint64
	// MaxRefs, when non-zero, stops the run after that many
	// application references (for smoke tests and quick sweeps).
	MaxRefs uint64
}

// Scheduler drives a Machine with a multiprogrammed workload.
//
// Time-slice scheduling is round-robin with a fixed reference quantum
// (§4.2). Context switches on misses (§4.6) treat the *miss* as the
// scheduling unit, like a software non-blocking cache: when a page
// fault blocks the running process, another ready process fills the
// gap, and as soon as the page arrives the faulting process preempts
// the fill-in and resumes the remainder of its time slice. Without
// prompt resumption a fault would rotate all working sets through the
// SRAM and amplify faults instead of hiding latency; with it, at most
// a couple of working sets are active between slice boundaries, and
// the trade the paper measures emerges naturally — a switch pair
// (~2×400 references) is only worth taking when the page transfer
// outlasts it, which is why switches on misses pay off as the
// CPU–DRAM gap grows.
type Scheduler struct {
	m      Machine
	cfg    SchedulerConfig
	procs  []*proc
	queue  []int      // FIFO of ready process indices
	wakeAt mem.Cycles // earliest blocked readyAt (0 = none)
	kernel *synth.Kernel
	buf    []mem.Ref
}

// NewScheduler builds a scheduler over one reader per process; the
// reader for process i is tagged PID i.
func NewScheduler(m Machine, readers []trace.Reader, cfg SchedulerConfig) (*Scheduler, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("sim: scheduler needs at least one process")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = trace.DefaultQuantum
	}
	procs := make([]*proc, len(readers))
	queue := make([]int, len(readers))
	for i, r := range readers {
		procs[i] = &proc{pid: mem.PID(i), r: trace.NewRetag(r, mem.PID(i)), sliceLeft: cfg.Quantum}
		queue[i] = i
	}
	return &Scheduler{
		m:      m,
		cfg:    cfg,
		procs:  procs,
		queue:  queue,
		kernel: synth.NewKernel(cfg.Seed + 9),
	}, nil
}

// Run executes the workload to completion and returns the machine's
// report.
func (s *Scheduler) Run() (*stats.Report, error) {
	rep := s.m.Report()
	cur, ok := s.dispatch()
	if !ok {
		return rep, nil
	}
	var executed uint64
	for {
		if s.cfg.MaxRefs > 0 && executed >= s.cfg.MaxRefs {
			return rep, nil
		}
		// Resume-on-arrival: a blocked process whose page has landed
		// preempts the current (fill-in) process immediately.
		if s.wakeAt != 0 && s.m.Now() >= s.wakeAt {
			if woken := s.earliestArrived(); woken >= 0 && woken != cur {
				s.procs[cur].state = procReady
				s.queue = append([]int{cur}, s.queue...) // fill-in keeps priority
				if err := s.switchTrace(rep, cur, woken, true); err != nil {
					return rep, err
				}
				s.procs[woken].state = procRunning
				cur = woken
			}
			s.recomputeWake()
		}
		p := s.procs[cur]
		// Fetch the next reference (a pending fault retry first).
		var ref mem.Ref
		if p.hasPend {
			ref = p.pending
			p.hasPend = false
		} else {
			r, err := p.r.Next()
			if errors.Is(err, io.EOF) {
				p.state = procDone
				next, ok := s.dispatch()
				if !ok {
					return rep, nil // all done
				}
				if err := s.switchTrace(rep, cur, next, false); err != nil {
					return rep, err
				}
				cur = next
				continue
			}
			if err != nil {
				return rep, err
			}
			ref = r
		}
		blockUntil, err := s.m.Exec(ref)
		if err != nil {
			return rep, err
		}
		if blockUntil != 0 {
			if s.wakeAt != 0 {
				// Another page is already in flight: a second switch
				// would drag a third working set into the SRAM and
				// amplify faults instead of hiding latency. Stall this
				// (fill-in) process until its own page arrives; the
				// loop-top preemption hands control back to the
				// original faulter the moment its page lands.
				s.m.AdvanceTo(blockUntil)
				p.pending = ref
				p.hasPend = true
				continue
			}
			// Page fault with switch-on-miss: block this process and
			// run something else while the page is in flight (§4.6).
			p.state = procBlocked
			p.readyAt = blockUntil
			p.pending = ref
			p.hasPend = true
			rep.SwitchesOnMiss++
			if s.wakeAt == 0 || blockUntil < s.wakeAt {
				s.wakeAt = blockUntil
			}
			next, ok := s.dispatch()
			if !ok {
				return rep, fmt.Errorf("sim: no runnable process while pages in flight")
			}
			if err := s.switchTrace(rep, cur, next, true); err != nil {
				return rep, err
			}
			cur = next
			continue
		}
		executed++
		p.sliceLeft--
		if p.sliceLeft == 0 {
			p.sliceLeft = s.cfg.Quantum
			s.admitUnblocked()
			if len(s.queue) > 0 {
				// Round-robin: the running process goes to the back.
				p.state = procReady
				s.queue = append(s.queue, cur)
				next, _ := s.dispatch()
				if next != cur {
					rep.Switches++
					if err := s.switchTrace(rep, cur, next, false); err != nil {
						return rep, err
					}
				}
				cur = next
			}
		}
	}
}

// dispatch pops the next runnable process off the FIFO queue, first
// admitting any blocked processes whose pages have arrived and idling
// the machine forward when nothing is ready but transfers are in
// flight. ok is false when every process is done.
func (s *Scheduler) dispatch() (int, bool) {
	s.admitUnblocked()
	for len(s.queue) == 0 {
		if !s.waitForBlocked() {
			return -1, false
		}
		s.admitUnblocked()
	}
	next := s.queue[0]
	s.queue = s.queue[1:]
	s.procs[next].state = procRunning
	return next, true
}

// earliestArrived returns the blocked process with the earliest
// readyAt that has already arrived, or -1.
func (s *Scheduler) earliestArrived() int {
	now := s.m.Now()
	best := -1
	for i, p := range s.procs {
		if p.state == procBlocked && p.readyAt <= now {
			if best < 0 || p.readyAt < s.procs[best].readyAt {
				best = i
			}
		}
	}
	return best
}

// recomputeWake refreshes the earliest blocked arrival time.
func (s *Scheduler) recomputeWake() {
	s.wakeAt = 0
	for _, p := range s.procs {
		if p.state == procBlocked && (s.wakeAt == 0 || p.readyAt < s.wakeAt) {
			s.wakeAt = p.readyAt
		}
	}
}

// admitUnblocked moves blocked processes whose pages have arrived onto
// the ready queue, in arrival order.
func (s *Scheduler) admitUnblocked() {
	now := s.m.Now()
	for {
		best := -1
		for i, p := range s.procs {
			if p.state == procBlocked && p.readyAt <= now {
				if best < 0 || p.readyAt < s.procs[best].readyAt {
					best = i
				}
			}
		}
		if best < 0 {
			s.recomputeWake()
			return
		}
		s.procs[best].state = procReady
		s.queue = append(s.queue, best)
	}
}

// waitForBlocked advances time to the earliest blocked process's
// page arrival. It reports false when no process is blocked (the
// workload is complete).
func (s *Scheduler) waitForBlocked() bool {
	var earliest mem.Cycles
	found := false
	for _, p := range s.procs {
		if p.state == procBlocked && (!found || p.readyAt < earliest) {
			earliest = p.readyAt
			found = true
		}
	}
	if !found {
		return false
	}
	s.m.AdvanceTo(earliest)
	return true
}

// switchTrace interleaves the context-switch code trace when
// configured. Miss-induced switches use the lightweight thread-switch
// trace when LightweightThreads is set.
func (s *Scheduler) switchTrace(rep *stats.Report, from, to int, onMiss bool) error {
	if to == from {
		return nil
	}
	if s.cfg.InsertSwitchTrace {
		if onMiss && s.cfg.LightweightThreads {
			s.buf = s.kernel.AppendThreadSwitch(s.buf[:0], s.procs[from].pid, s.procs[to].pid)
		} else {
			s.buf = s.kernel.AppendContextSwitch(s.buf[:0], s.procs[from].pid, s.procs[to].pid)
		}
		if err := s.m.ExecTrace(s.buf, ClassSwitch); err != nil {
			return fmt.Errorf("sim: context-switch trace failed: %w", err)
		}
	}
	return nil
}
