package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"rampage/internal/mem"
	"rampage/internal/metrics"
	"rampage/internal/stats"
	"rampage/internal/synth"
	"rampage/internal/trace"
)

// procState is a simulated process's scheduling state.
type procState uint8

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// proc is one simulated process: a reference stream with scheduling
// state.
type proc struct {
	pid       mem.PID
	r         trace.Reader
	state     procState
	readyAt   mem.Cycles // when blocked: page-arrival time
	pending   mem.Ref    // the faulting reference to retry after unblock
	hasPend   bool
	sliceLeft uint64 // references remaining in the current time slice
	done      uint64 // references executed from this stream (checkpoint cursor)

	// Batched-path read-ahead buffer: buf[bufPos:bufN] holds fetched
	// but not yet executed references; rdErr is the stream's terminal
	// error (io.EOF or a failure), delivered once the buffer drains.
	buf    []mem.Ref
	bufPos int
	bufN   int
	rdErr  error

	// col is set when the process's stream is columnar: the batched
	// path then feeds the machine column windows directly (zero-copy)
	// instead of materializing rows into buf.
	col *trace.ColumnarReader
}

// DefaultBatchSize is the per-process read-ahead window of the batched
// scheduler path.
const DefaultBatchSize = 512

// SchedulerConfig configures the multiprogramming driver.
type SchedulerConfig struct {
	// Quantum is the time slice in references (§4.2: 500,000).
	Quantum uint64
	// InsertSwitchTrace interleaves the ~400-reference context-switch
	// code at every switch (§4.6). Table 3 runs omit it; Tables 4–5
	// include it.
	InsertSwitchTrace bool
	// LightweightThreads replaces the switch code on *miss-induced*
	// switches with a ~40-reference thread switch — the §3.2/§6.3
	// multithreading extension. Quantum-boundary switches still pay
	// the full process-switch cost.
	LightweightThreads bool
	// Seed drives the context-switch trace generator.
	Seed uint64
	// MaxRefs, when non-zero, stops the run after that many
	// application references (for smoke tests and quick sweeps).
	MaxRefs uint64
	// DisableBatching forces the original per-reference execution loop.
	// The batched path produces bit-identical reports; this escape
	// hatch exists for equivalence testing and as a debugging aid.
	DisableBatching bool
	// BatchSize is the read-ahead window of the batched path in
	// references (0 = DefaultBatchSize). Any positive value yields the
	// same reports; larger windows amortise more dispatch overhead.
	BatchSize uint64
	// Observer, when non-nil, receives scheduling events (context
	// switches) and periodic Tick calls with the simulated time so it
	// can cut interval snapshots. It never influences scheduling: the
	// report is bit-identical with or without one attached.
	Observer metrics.Observer
}

// readyRing is a fixed-capacity FIFO of process indices with O(1)
// push-front for the resume-on-arrival path (the per-preemption slice
// prepend it replaces allocated on every miss-induced switch). A
// process is enqueued only on its transition to procReady, so at most
// once concurrently: capacity equals the process count and pushes
// cannot overflow.
type readyRing struct {
	buf  []int
	head int
	n    int
}

func newReadyRing(capacity int) readyRing {
	return readyRing{buf: make([]int, capacity)}
}

func (r *readyRing) len() int { return r.n }

func (r *readyRing) pushBack(v int) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *readyRing) pushFront(v int) {
	r.head = (r.head - 1 + len(r.buf)) % len(r.buf)
	r.buf[r.head] = v
	r.n++
}

func (r *readyRing) popFront() int {
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Scheduler drives a Machine with a multiprogrammed workload.
//
// Time-slice scheduling is round-robin with a fixed reference quantum
// (§4.2). Context switches on misses (§4.6) treat the *miss* as the
// scheduling unit, like a software non-blocking cache: when a page
// fault blocks the running process, another ready process fills the
// gap, and as soon as the page arrives the faulting process preempts
// the fill-in and resumes the remainder of its time slice. Without
// prompt resumption a fault would rotate all working sets through the
// SRAM and amplify faults instead of hiding latency; with it, at most
// a couple of working sets are active between slice boundaries, and
// the trade the paper measures emerges naturally — a switch pair
// (~2×400 references) is only worth taking when the page transfer
// outlasts it, which is why switches on misses pay off as the
// CPU–DRAM gap grows.
type Scheduler struct {
	m      Machine
	cfg    SchedulerConfig
	procs  []*proc
	queue  readyRing
	wakeAt mem.Cycles // earliest blocked readyAt (0 = none)
	kernel *synth.Kernel
	buf    []mem.Ref

	// executed counts application references across the scheduler's
	// whole life, surviving checkpoint restores, so a resumed run stops
	// at the same MaxRefs boundary a from-scratch run would.
	executed uint64
	// resumed and resumeCur arm the restore entry path: the first Run
	// iteration after DecodeState re-enters the restored running process
	// instead of dispatching from the queue (the running process is not
	// queued, so a dispatch would pick the wrong one).
	resumed   bool
	resumeCur int
}

// NewScheduler builds a scheduler over one reader per process; the
// reader for process i is tagged PID i.
func NewScheduler(m Machine, readers []trace.Reader, cfg SchedulerConfig) (*Scheduler, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("sim: scheduler needs at least one process")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = trace.DefaultQuantum
	}
	procs := make([]*proc, len(readers))
	queue := newReadyRing(len(readers))
	for i, r := range readers {
		procs[i] = &proc{pid: mem.PID(i), r: trace.NewRetag(r, mem.PID(i)), sliceLeft: cfg.Quantum}
		if cr, _, ok := trace.ColumnarView(procs[i].r); ok {
			// The retag PID is the process PID, so the columns plus
			// p.pid reproduce p.r's stream exactly.
			procs[i].col = cr
		}
		queue.pushBack(i)
	}
	return &Scheduler{
		m:      m,
		cfg:    cfg,
		procs:  procs,
		queue:  queue,
		kernel: synth.NewKernel(cfg.Seed + 9),
	}, nil
}

// ctxCheckMask throttles context-cancellation polls in the
// per-reference loop: ctx.Err takes a lock, so the hot loop only asks
// every 1024 iterations. Cancellation latency stays far below any
// human-visible delay while the steady-state cost is one counter
// increment.
const ctxCheckMask = 1<<10 - 1

// Run executes the workload to completion and returns the machine's
// report, stopping early with ctx.Err() when the context is canceled.
// The batched path and the per-reference path produce bit-identical
// reports; see DESIGN.md's Performance section for the invariant.
func (s *Scheduler) Run(ctx context.Context) (*stats.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.cfg.DisableBatching {
		return s.runPerRef(ctx)
	}
	return s.runBatched(ctx)
}

// runPerRef is the original reference-at-a-time loop, kept as the
// semantic reference for the batched path.
func (s *Scheduler) runPerRef(ctx context.Context) (*stats.Report, error) {
	rep := s.m.Report()
	cur, ok := s.resumeOrDispatch()
	if !ok {
		return rep, nil
	}
	var iter uint64
	for {
		if iter&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
		}
		iter++
		if s.cfg.Observer != nil {
			s.cfg.Observer.Tick(uint64(s.m.Now()))
		}
		if s.cfg.MaxRefs > 0 && s.executed >= s.cfg.MaxRefs {
			return rep, nil
		}
		// Resume-on-arrival: a blocked process whose page has landed
		// preempts the current (fill-in) process immediately.
		if s.wakeAt != 0 && s.m.Now() >= s.wakeAt {
			if woken := s.earliestArrived(); woken >= 0 && woken != cur {
				s.procs[cur].state = procReady
				s.queue.pushFront(cur) // fill-in keeps priority
				if err := s.switchTrace(rep, cur, woken, true); err != nil {
					return rep, err
				}
				s.procs[woken].state = procRunning
				cur = woken
			}
			s.recomputeWake()
		}
		p := s.procs[cur]
		// Fetch the next reference (a pending fault retry first).
		var ref mem.Ref
		if p.hasPend {
			ref = p.pending
			p.hasPend = false
		} else {
			r, err := p.r.Next()
			if errors.Is(err, io.EOF) {
				p.state = procDone
				next, ok := s.dispatch()
				if !ok {
					return rep, nil // all done
				}
				if err := s.switchTrace(rep, cur, next, false); err != nil {
					return rep, err
				}
				cur = next
				continue
			}
			if err != nil {
				return rep, err
			}
			ref = r
		}
		blockUntil, err := s.m.Exec(ref)
		if err != nil {
			return rep, err
		}
		if blockUntil != 0 {
			if s.wakeAt != 0 {
				// Another page is already in flight: a second switch
				// would drag a third working set into the SRAM and
				// amplify faults instead of hiding latency. Stall this
				// (fill-in) process until its own page arrives; the
				// loop-top preemption hands control back to the
				// original faulter the moment its page lands.
				s.m.AdvanceTo(blockUntil)
				p.pending = ref
				p.hasPend = true
				continue
			}
			// Page fault with switch-on-miss: block this process and
			// run something else while the page is in flight (§4.6).
			p.pending = ref
			p.hasPend = true
			s.blockProc(rep, cur, blockUntil)
			next, err := s.resumeAfterBlock(rep, cur)
			if err != nil {
				return rep, err
			}
			cur = next
			continue
		}
		s.executed++
		p.done++
		p.sliceLeft--
		if p.sliceLeft == 0 {
			next, err := s.quantumBoundary(rep, cur)
			if err != nil {
				return rep, err
			}
			cur = next
		}
	}
}

// runBatched is the batched execution loop: it fetches a window of
// references into the process's read-ahead buffer and executes it with
// one ExecBatch call. Semantics are bit-identical to runPerRef:
//
//   - the window never exceeds the slice remainder, so quantum
//     boundaries land on exactly the same reference;
//   - while any page is in flight (wakeAt != 0) the window degrades to
//     a single reference, preserving the per-reference resume-on-
//     arrival preemption check and the stall-retry path;
//   - a blocking reference is left unconsumed at the buffer cursor,
//     which is the batched equivalent of the pending-retry slot;
//   - MaxRefs caps the window, and stream errors surface only after
//     the references read before them have executed, exactly as a
//     per-reference Next loop would.
func (s *Scheduler) runBatched(ctx context.Context) (*stats.Report, error) {
	rep := s.m.Report()
	batchCap := s.cfg.BatchSize
	if batchCap == 0 {
		batchCap = DefaultBatchSize
	}
	// Columnar handoff: when the machine executes columns and a
	// process's stream is columnar, windows go straight from the
	// capture buffer to the machine with no row materialization.
	colExec, _ := s.m.(ColumnarMachine)
	cur, ok := s.resumeOrDispatch()
	if !ok {
		return rep, nil
	}
	for {
		// One poll per batch window (up to BatchSize references), so the
		// cancellation check amortizes like the rest of the dispatch
		// overhead.
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.Tick(uint64(s.m.Now()))
		}
		if s.cfg.MaxRefs > 0 && s.executed >= s.cfg.MaxRefs {
			return rep, nil
		}
		if s.wakeAt != 0 && s.m.Now() >= s.wakeAt {
			if woken := s.earliestArrived(); woken >= 0 && woken != cur {
				s.procs[cur].state = procReady
				s.queue.pushFront(cur) // fill-in keeps priority
				if err := s.switchTrace(rep, cur, woken, true); err != nil {
					return rep, err
				}
				s.procs[woken].state = procRunning
				cur = woken
			}
			s.recomputeWake()
		}
		p := s.procs[cur]
		if colExec != nil && p.col != nil {
			// Columnar window: identical control flow to the row path
			// below, with Tail/Skip standing in for the buffer cursor.
			// The batch-size cap is irrelevant here — the window is
			// bounded by the same slice/wake/MaxRefs limits.
			kinds, addrs := p.col.Tail()
			if len(kinds) == 0 {
				p.state = procDone
				next, ok := s.dispatch()
				if !ok {
					return rep, nil // all done
				}
				if err := s.switchTrace(rep, cur, next, false); err != nil {
					return rep, err
				}
				cur = next
				continue
			}
			window := uint64(len(kinds))
			if window > p.sliceLeft {
				window = p.sliceLeft
			}
			if s.wakeAt != 0 {
				window = 1 // per-reference checks while transfers are in flight
			}
			if s.cfg.MaxRefs > 0 {
				if left := s.cfg.MaxRefs - s.executed; window > left {
					window = left
				}
			}
			consumed, blockUntil, err := colExec.ExecBatchColumnar(p.pid, kinds[:window], addrs[:window])
			p.col.Skip(consumed)
			s.executed += uint64(consumed)
			p.done += uint64(consumed)
			p.sliceLeft -= uint64(consumed)
			if err != nil {
				return rep, err
			}
			if blockUntil != 0 {
				// The reference at the column cursor faulted and must
				// retry after blockUntil.
				if s.wakeAt != 0 {
					s.m.AdvanceTo(blockUntil)
					continue
				}
				s.blockProc(rep, cur, blockUntil)
				next, err := s.resumeAfterBlock(rep, cur)
				if err != nil {
					return rep, err
				}
				cur = next
				continue
			}
			if p.sliceLeft == 0 {
				next, err := s.quantumBoundary(rep, cur)
				if err != nil {
					return rep, err
				}
				cur = next
			}
			continue
		}
		if p.bufPos == p.bufN {
			if p.rdErr == nil {
				if p.buf == nil {
					p.buf = make([]mem.Ref, batchCap)
				}
				n, err := trace.ReadBatch(p.r, p.buf)
				p.bufPos, p.bufN = 0, n
				p.rdErr = err
				if n == 0 && err == nil {
					p.rdErr = io.EOF // defensive: empty read with no error
				}
			}
			if p.bufPos == p.bufN {
				if !errors.Is(p.rdErr, io.EOF) {
					return rep, p.rdErr
				}
				p.state = procDone
				next, ok := s.dispatch()
				if !ok {
					return rep, nil // all done
				}
				if err := s.switchTrace(rep, cur, next, false); err != nil {
					return rep, err
				}
				cur = next
				continue
			}
		}
		window := uint64(p.bufN - p.bufPos)
		if window > p.sliceLeft {
			window = p.sliceLeft
		}
		if s.wakeAt != 0 {
			window = 1 // per-reference checks while transfers are in flight
		}
		if s.cfg.MaxRefs > 0 {
			if left := s.cfg.MaxRefs - s.executed; window > left {
				window = left
			}
		}
		consumed, blockUntil, err := s.m.ExecBatch(p.buf[p.bufPos : p.bufPos+int(window)])
		p.bufPos += consumed
		s.executed += uint64(consumed)
		p.done += uint64(consumed)
		p.sliceLeft -= uint64(consumed)
		if err != nil {
			return rep, err
		}
		if blockUntil != 0 {
			// p.buf[p.bufPos] faulted and must retry after blockUntil.
			if s.wakeAt != 0 {
				// Stall in place; loop-top preemption resumes the
				// original faulter the moment its page lands.
				s.m.AdvanceTo(blockUntil)
				continue
			}
			// Page fault with switch-on-miss: block this process and
			// run something else while the page is in flight (§4.6).
			// The faulting reference stays at p.buf[p.bufPos] — the
			// batched equivalent of the pending-retry slot.
			s.blockProc(rep, cur, blockUntil)
			next, err := s.resumeAfterBlock(rep, cur)
			if err != nil {
				return rep, err
			}
			cur = next
			continue
		}
		if p.sliceLeft == 0 {
			next, err := s.quantumBoundary(rep, cur)
			if err != nil {
				return rep, err
			}
			cur = next
		}
	}
}

// blockProc records a page-fault block for the current process
// (switch-on-miss, §4.6) and updates the wake bookkeeping.
func (s *Scheduler) blockProc(rep *stats.Report, cur int, blockUntil mem.Cycles) {
	p := s.procs[cur]
	p.state = procBlocked
	p.readyAt = blockUntil
	rep.SwitchesOnMiss++
	if s.cfg.Observer != nil {
		s.cfg.Observer.Count(metrics.EvSwitchOnMiss, 1)
	}
	if s.wakeAt == 0 || blockUntil < s.wakeAt {
		s.wakeAt = blockUntil
	}
}

// resumeAfterBlock dispatches the fill-in process after a block and
// charges the miss-induced switch trace.
func (s *Scheduler) resumeAfterBlock(rep *stats.Report, cur int) (int, error) {
	next, ok := s.dispatch()
	if !ok {
		return -1, fmt.Errorf("sim: no runnable process while pages in flight")
	}
	if err := s.switchTrace(rep, cur, next, true); err != nil {
		return -1, err
	}
	return next, nil
}

// quantumBoundary handles an expired time slice: refresh the slice,
// admit arrived processes and rotate round-robin.
func (s *Scheduler) quantumBoundary(rep *stats.Report, cur int) (int, error) {
	p := s.procs[cur]
	p.sliceLeft = s.cfg.Quantum
	s.admitUnblocked()
	if s.queue.len() == 0 {
		return cur, nil
	}
	// Round-robin: the running process goes to the back.
	p.state = procReady
	s.queue.pushBack(cur)
	next, _ := s.dispatch()
	if next != cur {
		rep.Switches++
		if s.cfg.Observer != nil {
			s.cfg.Observer.Count(metrics.EvContextSwitch, 1)
		}
		if err := s.switchTrace(rep, cur, next, false); err != nil {
			return cur, err
		}
	}
	return next, nil
}

// dispatch pops the next runnable process off the FIFO queue, first
// admitting any blocked processes whose pages have arrived and idling
// the machine forward when nothing is ready but transfers are in
// flight. ok is false when every process is done.
func (s *Scheduler) dispatch() (int, bool) {
	s.admitUnblocked()
	for s.queue.len() == 0 {
		if !s.waitForBlocked() {
			return -1, false
		}
		s.admitUnblocked()
	}
	next := s.queue.popFront()
	s.procs[next].state = procRunning
	return next, true
}

// resumeOrDispatch is the Run-loop entry point: after a checkpoint
// restore it re-enters the restored running process (which DecodeState
// left out of the ready queue, exactly as the original run did); on a
// fresh start it dispatches normally.
func (s *Scheduler) resumeOrDispatch() (int, bool) {
	if s.resumed {
		s.resumed = false
		if s.resumeCur >= 0 {
			return s.resumeCur, true
		}
	}
	return s.dispatch()
}

// Executed returns the number of application references executed so
// far, accumulated across checkpoint restores.
func (s *Scheduler) Executed() uint64 { return s.executed }

// earliestArrived returns the blocked process with the earliest
// readyAt that has already arrived, or -1.
func (s *Scheduler) earliestArrived() int {
	now := s.m.Now()
	best := -1
	for i, p := range s.procs {
		if p.state == procBlocked && p.readyAt <= now {
			if best < 0 || p.readyAt < s.procs[best].readyAt {
				best = i
			}
		}
	}
	return best
}

// recomputeWake refreshes the earliest blocked arrival time.
func (s *Scheduler) recomputeWake() {
	s.wakeAt = 0
	for _, p := range s.procs {
		if p.state == procBlocked && (s.wakeAt == 0 || p.readyAt < s.wakeAt) {
			s.wakeAt = p.readyAt
		}
	}
}

// admitUnblocked moves blocked processes whose pages have arrived onto
// the ready queue, in arrival order.
func (s *Scheduler) admitUnblocked() {
	now := s.m.Now()
	for {
		best := -1
		for i, p := range s.procs {
			if p.state == procBlocked && p.readyAt <= now {
				if best < 0 || p.readyAt < s.procs[best].readyAt {
					best = i
				}
			}
		}
		if best < 0 {
			s.recomputeWake()
			return
		}
		s.procs[best].state = procReady
		s.queue.pushBack(best)
	}
}

// waitForBlocked advances time to the earliest blocked process's
// page arrival. It reports false when no process is blocked (the
// workload is complete).
func (s *Scheduler) waitForBlocked() bool {
	var earliest mem.Cycles
	found := false
	for _, p := range s.procs {
		if p.state == procBlocked && (!found || p.readyAt < earliest) {
			earliest = p.readyAt
			found = true
		}
	}
	if !found {
		return false
	}
	s.m.AdvanceTo(earliest)
	return true
}

// switchTrace interleaves the context-switch code trace when
// configured. Miss-induced switches use the lightweight thread-switch
// trace when LightweightThreads is set.
func (s *Scheduler) switchTrace(rep *stats.Report, from, to int, onMiss bool) error {
	if to == from {
		return nil
	}
	if s.cfg.InsertSwitchTrace {
		if onMiss && s.cfg.LightweightThreads {
			s.buf = s.kernel.AppendThreadSwitch(s.buf[:0], s.procs[from].pid, s.procs[to].pid)
		} else {
			s.buf = s.kernel.AppendContextSwitch(s.buf[:0], s.procs[from].pid, s.procs[to].pid)
		}
		if err := s.m.ExecTrace(s.buf, ClassSwitch); err != nil {
			return fmt.Errorf("sim: context-switch trace failed: %w", err)
		}
	}
	return nil
}
